// Communication-avoiding consensus ADMM: fused residual reductions,
// k-step lazy consensus, hierarchical allreduce, and the unified
// iterations/accounting conventions across the blocking, fused, and
// pipelined stopping-test paths.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/uoi_lasso_distributed.hpp"
#include "data/synthetic_regression.hpp"
#include "data/synthetic_var.hpp"
#include "linalg/matrix.hpp"
#include "simcluster/cluster.hpp"
#include "solvers/distributed_admm.hpp"
#include "solvers/lambda_grid.hpp"
#include "var/lag_matrix.hpp"
#include "var/var_distributed.hpp"

using uoi::linalg::Matrix;
using uoi::sim::Cluster;
using uoi::sim::Comm;

namespace {

struct LocalBlock {
  uoi::linalg::ConstMatrixView x;
  std::span<const double> y;
};

LocalBlock local_block(const uoi::data::RegressionDataset& data, const Comm& comm) {
  const std::size_t n = data.x.rows();
  const std::size_t begin = n * comm.rank() / comm.size();
  const std::size_t end = n * (comm.rank() + 1) / comm.size();
  return {data.x.row_block(begin, end - begin),
          std::span<const double>(data.y).subspan(begin, end - begin)};
}

uoi::data::RegressionDataset make_data(std::uint64_t seed = 11,
                                    std::size_t n = 96, std::size_t p = 12) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = n;
  spec.n_features = p;
  spec.support_size = 3;
  spec.seed = seed;
  return uoi::data::make_regression(spec);
}

// An ill-scaled variant that triggers many §3.4.1 rho rescales: the
// residual-balancing path is where fused staleness could diverge from the
// blocking loop if the redo-on-rescale replay were wrong.
uoi::data::RegressionDataset make_rescale_heavy_data() {
  auto data = make_data(29, 64, 10);
  for (std::size_t r = 0; r < data.x.rows(); ++r) {
    auto row = data.x.row(r);
    for (std::size_t c = 0; c < data.x.cols(); ++c) {
      row[c] *= (c % 2 == 0) ? 40.0 : 0.05;
    }
    data.y[r] *= 25.0;
  }
  return data;
}

}  // namespace

TEST(FusedReduction, BitwiseIdenticalToBlockingLoop) {
  const auto data = make_data();
  const double lambda = 0.1 * uoi::solvers::lambda_max(data.x, data.y);

  uoi::solvers::AdmmOptions blocking;
  blocking.fused_residual_reduction = false;
  blocking.consensus_interval = 1;
  auto fused = blocking;
  fused.fused_residual_reduction = true;

  Cluster::run(4, [&](Comm& comm) {
    const auto block = local_block(data, comm);
    const auto a = uoi::solvers::distributed_lasso_admm(comm, block.x,
                                                        block.y, lambda,
                                                        blocking);
    const auto b = uoi::solvers::distributed_lasso_admm(comm, block.x,
                                                        block.y, lambda,
                                                        fused);
    EXPECT_EQ(uoi::linalg::max_abs_diff(a.beta, b.beta), 0.0);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.rho_updates, b.rho_updates);
    EXPECT_EQ(a.primal_residual, b.primal_residual);
    EXPECT_EQ(a.dual_residual, b.dual_residual);
  });
}

TEST(FusedReduction, BitwiseIdenticalUnderHeavyRhoRescaling) {
  const auto data = make_rescale_heavy_data();
  const double lambda = 0.05 * uoi::solvers::lambda_max(data.x, data.y);

  uoi::solvers::AdmmOptions blocking;
  blocking.fused_residual_reduction = false;
  blocking.consensus_interval = 1;
  blocking.rho_update_interval = 2;  // rescale as often as possible
  blocking.eps_abs = 1e-9;
  blocking.eps_rel = 1e-7;
  blocking.max_iterations = 20000;
  auto fused = blocking;
  fused.fused_residual_reduction = true;

  Cluster::run(3, [&](Comm& comm) {
    const auto block = local_block(data, comm);
    const auto a = uoi::solvers::distributed_lasso_admm(comm, block.x,
                                                        block.y, lambda,
                                                        blocking);
    const auto b = uoi::solvers::distributed_lasso_admm(comm, block.x,
                                                        block.y, lambda,
                                                        fused);
    EXPECT_GT(a.rho_updates, 0u);  // the scenario must actually rescale
    EXPECT_EQ(uoi::linalg::max_abs_diff(a.beta, b.beta), 0.0);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.rho_updates, b.rho_updates);
  });
}

TEST(IterationsConvention, AgreesAcrossBlockingFusedAndPipelined) {
  // result.iterations counts the completed ADMM iterations covered by the
  // reported verdict; the stale (fused / pipelined) stopping tests
  // evaluate the same residual sums as the blocking loop, so the first
  // passing verdict — and with it the count — must agree in all modes.
  const auto data = make_data(17);
  const double lambda = 0.1 * uoi::solvers::lambda_max(data.x, data.y);

  uoi::solvers::AdmmOptions blocking;
  blocking.fused_residual_reduction = false;
  blocking.consensus_interval = 1;
  auto fused = blocking;
  fused.fused_residual_reduction = true;
  auto pipelined = blocking;
  pipelined.pipelined_convergence_check = true;

  Cluster::run(4, [&](Comm& comm) {
    const auto block = local_block(data, comm);
    const auto a = uoi::solvers::distributed_lasso_admm(comm, block.x,
                                                        block.y, lambda,
                                                        blocking);
    const auto b = uoi::solvers::distributed_lasso_admm(comm, block.x,
                                                        block.y, lambda,
                                                        fused);
    const auto c = uoi::solvers::distributed_lasso_admm(comm, block.x,
                                                        block.y, lambda,
                                                        pipelined);
    ASSERT_TRUE(a.converged);
    ASSERT_TRUE(b.converged);
    ASSERT_TRUE(c.converged);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.iterations, c.iterations);
  });
}

TEST(Accounting, PinsBytesAndCallsPerIteration) {
  // p = 5, 2 ranks, exactly M = 7 iterations (zero tolerances never
  // converge), no rho adaptation:
  //   blocking : per iteration one p-double + one 3-double reduction
  //              -> 14 calls, 7 * (40 + 24) = 448 bytes
  //   pipelined: same counts, the 3-double ride is nonblocking
  //   fused    : 7 fused (p+3)-double reductions + the 3-double flush
  //              -> 8 calls, 7 * 64 + 24 = 472 bytes
  const auto data = make_data(5, 32, 5);

  uoi::solvers::AdmmOptions base;
  base.eps_abs = 0.0;
  base.eps_rel = 0.0;
  base.adaptive_rho = false;
  base.max_iterations = 7;
  base.consensus_interval = 1;

  auto blocking = base;
  blocking.fused_residual_reduction = false;
  auto fused = base;
  fused.fused_residual_reduction = true;
  auto pipelined = base;
  pipelined.fused_residual_reduction = false;
  pipelined.pipelined_convergence_check = true;

  Cluster::run(2, [&](Comm& comm) {
    const auto block = local_block(data, comm);
    const auto run = [&](const uoi::solvers::AdmmOptions& options) {
      return uoi::solvers::distributed_lasso_admm(comm, block.x, block.y,
                                                  0.5, options);
    };
    const auto a = run(blocking);
    EXPECT_EQ(a.allreduce_calls, 14u);
    EXPECT_EQ(a.allreduce_bytes, 448u);
    EXPECT_EQ(a.consensus_rounds, 7u);
    EXPECT_EQ(a.lazy_iterations, 0u);

    const auto b = run(fused);
    EXPECT_EQ(b.allreduce_calls, 8u);
    EXPECT_EQ(b.allreduce_bytes, 472u);
    EXPECT_EQ(b.consensus_rounds, 7u);

    const auto c = run(pipelined);
    EXPECT_EQ(c.allreduce_calls, 14u);
    EXPECT_EQ(c.allreduce_bytes, 448u);
    EXPECT_EQ(c.consensus_rounds, 7u);

    // Fusion halves the reduction rounds (t + 2 vs 2(t + 1)).
    EXPECT_LE(static_cast<double>(b.allreduce_calls),
              0.6 * static_cast<double>(a.allreduce_calls));
  });
}

TEST(Accounting, LazyConsensusSkipsRounds) {
  const auto data = make_data(7, 48, 6);
  uoi::solvers::AdmmOptions options;
  options.eps_abs = 0.0;
  options.eps_rel = 0.0;
  options.adaptive_rho = false;
  options.max_iterations = 8;
  options.consensus_interval = 4;

  Cluster::run(2, [&](Comm& comm) {
    const auto block = local_block(data, comm);
    const auto fit = uoi::solvers::distributed_lasso_admm(comm, block.x,
                                                          block.y, 0.5,
                                                          options);
    // 8 iterations at k = 4: two consensus rounds, six lazy iterations.
    EXPECT_EQ(fit.consensus_rounds, 2u);
    EXPECT_EQ(fit.lazy_iterations, 6u);
    EXPECT_EQ(fit.consensus_interval, 4u);
  });
}

class LazyConsensusParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LazyConsensusParam, LassoConvergesToK1Solution) {
  const std::size_t k = GetParam();
  const auto data = make_data(23, 128, 16);
  const double lambda = 0.1 * uoi::solvers::lambda_max(data.x, data.y);

  uoi::solvers::AdmmOptions tight;
  tight.eps_abs = 1e-9;
  tight.eps_rel = 1e-7;
  tight.max_iterations = 50000;
  tight.consensus_interval = 1;
  auto lazy = tight;
  lazy.consensus_interval = k;

  Cluster::run(4, [&](Comm& comm) {
    const auto block = local_block(data, comm);
    const auto ref = uoi::solvers::distributed_lasso_admm(comm, block.x,
                                                          block.y, lambda,
                                                          tight);
    const auto fit = uoi::solvers::distributed_lasso_admm(comm, block.x,
                                                          block.y, lambda,
                                                          lazy);
    ASSERT_TRUE(ref.converged);
    ASSERT_TRUE(fit.converged);
    EXPECT_GT(fit.lazy_iterations, 0u);
    EXPECT_LT(fit.consensus_rounds, ref.consensus_rounds);
    EXPECT_LT(uoi::linalg::max_abs_diff(fit.beta, ref.beta), 1e-6);
  });
}

INSTANTIATE_TEST_SUITE_P(Intervals, LazyConsensusParam,
                         ::testing::Values(2, 4));

TEST(LazyConsensus, VarSolverConvergesToK1Solution) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 5;
  spec.seed = 41;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 70;
  sim.seed = 42;
  const Matrix series = uoi::var::simulate(truth, sim);
  const auto lag = uoi::var::build_lag_regression(series, 1);

  uoi::solvers::AdmmOptions tight;
  tight.eps_abs = 1e-9;
  tight.eps_rel = 1e-7;
  tight.max_iterations = 50000;
  tight.consensus_interval = 1;
  auto lazy = tight;
  lazy.consensus_interval = 4;

  Cluster::run(4, [&](Comm& comm) {
    const auto block = uoi::var::distributed_kron_vectorize(comm, lag, 2);
    const uoi::var::DistributedVarAdmmSolver ref_solver(comm, block, tight);
    const uoi::var::DistributedVarAdmmSolver lazy_solver(comm, block, lazy);
    const auto ref = ref_solver.solve(5.0);
    const auto fit = lazy_solver.solve(5.0);
    ASSERT_TRUE(ref.converged);
    ASSERT_TRUE(fit.converged);
    EXPECT_GT(fit.lazy_iterations, 0u);
    EXPECT_LT(uoi::linalg::max_abs_diff(fit.beta, ref.beta), 1e-6);
  });
}

TEST(ResolveConsensusInterval, ExplicitWinsOverEnvironment) {
  ::setenv("UOI_CONSENSUS_INTERVAL", "4", 1);
  EXPECT_EQ(uoi::solvers::resolve_consensus_interval(0), 4u);
  EXPECT_EQ(uoi::solvers::resolve_consensus_interval(1), 1u);
  EXPECT_EQ(uoi::solvers::resolve_consensus_interval(2), 2u);
  ::unsetenv("UOI_CONSENSUS_INTERVAL");
  EXPECT_EQ(uoi::solvers::resolve_consensus_interval(0), 1u);
}

class SchedPolicyBitIdentity
    : public ::testing::TestWithParam<uoi::sched::SchedulePolicy> {};

TEST_P(SchedPolicyBitIdentity, DriverFusedMatchesUnfusedBitwise) {
  // End-to-end: the full distributed UoI_LASSO driver must produce a
  // bitwise-identical model with fused reductions on or off, under every
  // scheduling policy, at the default k = 1.
  const auto data = make_data(3, 72, 10);
  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 3;
  options.n_estimation_bootstraps = 2;
  options.n_lambdas = 3;
  options.schedule = GetParam();
  options.admm.consensus_interval = 1;

  auto fused = options;
  fused.admm.fused_residual_reduction = true;
  auto unfused = options;
  unfused.admm.fused_residual_reduction = false;

  uoi::linalg::Vector beta_fused, beta_unfused;
  Cluster::run(4, [&](Comm& comm) {
    const auto fit =
        uoi::core::uoi_lasso_distributed(comm, data.x, data.y, fused);
    if (comm.rank() == 0) beta_fused = fit.model.beta;
  });
  Cluster::run(4, [&](Comm& comm) {
    const auto fit =
        uoi::core::uoi_lasso_distributed(comm, data.x, data.y, unfused);
    if (comm.rank() == 0) beta_unfused = fit.model.beta;
  });
  ASSERT_EQ(beta_fused.size(), beta_unfused.size());
  EXPECT_EQ(uoi::linalg::max_abs_diff(beta_fused, beta_unfused), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Policies, SchedPolicyBitIdentity,
                         ::testing::Values(uoi::sched::SchedulePolicy::kStatic,
                                           uoi::sched::SchedulePolicy::kCostLpt,
                                           uoi::sched::SchedulePolicy::kWorkSteal));

// ---- hierarchical allreduce ----

struct HierCase {
  int ranks;
  int group_size;  ///< 0 = auto (~sqrt(P))
};

class HierarchicalAllreduce : public ::testing::TestWithParam<HierCase> {};

TEST_P(HierarchicalAllreduce, MatchesStagedOnIntegerPayloads) {
  // Integer-valued payloads make every reduction order exact, so the
  // hierarchical result must equal the staged reference bitwise for any
  // rank count / group size, including groups that do not divide P.
  const auto param = GetParam();
  const std::size_t len = 257;  // not a multiple of any group size
  std::vector<std::vector<double>> expected(
      static_cast<std::size_t>(param.ranks));
  Cluster::run(param.ranks, [&](Comm& comm) {
    std::vector<double> data(len);
    for (std::size_t i = 0; i < len; ++i) {
      data[i] = static_cast<double>((comm.rank() + 1) * (i % 11) - 7);
    }
    comm.allreduce(data, uoi::sim::ReduceOp::kSum);
    expected[static_cast<std::size_t>(comm.rank())] = data;
  });
  Cluster::run(param.ranks, [&](Comm& comm) {
    std::vector<double> data(len);
    for (std::size_t i = 0; i < len; ++i) {
      data[i] = static_cast<double>((comm.rank() + 1) * (i % 11) - 7);
    }
    comm.allreduce_hierarchical(data, uoi::sim::ReduceOp::kSum,
                                param.group_size);
    EXPECT_EQ(data, expected[static_cast<std::size_t>(comm.rank())]);
  });
}

TEST_P(HierarchicalAllreduce, MinMaxAreExact) {
  const auto param = GetParam();
  Cluster::run(param.ranks, [&](Comm& comm) {
    std::vector<double> lo(33), hi(33);
    for (std::size_t i = 0; i < lo.size(); ++i) {
      lo[i] = static_cast<double>(comm.rank()) * 1.5 + static_cast<double>(i);
      hi[i] = lo[i];
    }
    comm.allreduce_hierarchical(lo, uoi::sim::ReduceOp::kMin,
                                param.group_size);
    comm.allreduce_hierarchical(hi, uoi::sim::ReduceOp::kMax,
                                param.group_size);
    for (std::size_t i = 0; i < lo.size(); ++i) {
      EXPECT_EQ(lo[i], static_cast<double>(i));
      EXPECT_EQ(hi[i],
                static_cast<double>(comm.size() - 1) * 1.5 +
                    static_cast<double>(i));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, HierarchicalAllreduce,
    ::testing::Values(HierCase{1, 0}, HierCase{2, 0}, HierCase{3, 2},
                      HierCase{4, 0}, HierCase{5, 2}, HierCase{7, 3},
                      HierCase{8, 0}, HierCase{8, 3}, HierCase{16, 0},
                      HierCase{16, 5}));

TEST(HierarchicalAllreduce, DeterministicAcrossRuns) {
  std::vector<double> first;
  for (int run = 0; run < 2; ++run) {
    Cluster::run(8, [&](Comm& comm) {
      std::vector<double> data(101);
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = 1.0 / (1.0 + static_cast<double>(comm.rank()) +
                         static_cast<double>(i));
      }
      comm.allreduce_hierarchical(data, uoi::sim::ReduceOp::kSum);
      if (comm.rank() == 0) {
        if (run == 0) {
          first = data;
        } else {
          EXPECT_EQ(data, first);
        }
      }
    });
  }
}

TEST(AllreduceAlgo, ParsesNamesAndInheritsAcrossSplit) {
  uoi::sim::AllreduceAlgo algo;
  EXPECT_TRUE(uoi::sim::allreduce_algo_from_string("staged", algo));
  EXPECT_EQ(algo, uoi::sim::AllreduceAlgo::kStaged);
  EXPECT_TRUE(uoi::sim::allreduce_algo_from_string("hier", algo));
  EXPECT_EQ(algo, uoi::sim::AllreduceAlgo::kHierarchical);
  EXPECT_TRUE(uoi::sim::allreduce_algo_from_string("hierarchical", algo));
  EXPECT_EQ(algo, uoi::sim::AllreduceAlgo::kHierarchical);
  EXPECT_TRUE(uoi::sim::allreduce_algo_from_string("rd", algo));
  EXPECT_EQ(algo, uoi::sim::AllreduceAlgo::kRecursiveDoubling);
  EXPECT_TRUE(uoi::sim::allreduce_algo_from_string("ring", algo));
  EXPECT_EQ(algo, uoi::sim::AllreduceAlgo::kRing);
  EXPECT_TRUE(uoi::sim::allreduce_algo_from_string("auto", algo));
  EXPECT_EQ(algo, uoi::sim::AllreduceAlgo::kAuto);
  EXPECT_FALSE(uoi::sim::allreduce_algo_from_string("bogus", algo));

  Cluster::run(4, [&](Comm& comm) {
    comm.set_allreduce_algo(uoi::sim::AllreduceAlgo::kHierarchical);
    auto split = comm.split(comm.rank() % 2, comm.rank());
    EXPECT_EQ(split.allreduce_algo(),
              uoi::sim::AllreduceAlgo::kHierarchical);
  });
}

TEST(AllreduceAlgo, HierarchicalSelectedDeliversSameSums) {
  // Routing the solver's consensus reductions through the hierarchical
  // tree must leave integer-exact sums unchanged.
  Cluster::run(8, [&](Comm& comm) {
    std::vector<double> staged(64), hier(64);
    for (std::size_t i = 0; i < staged.size(); ++i) {
      staged[i] = static_cast<double>(comm.rank() + 2);
      hier[i] = staged[i];
    }
    comm.set_allreduce_algo(uoi::sim::AllreduceAlgo::kStaged);
    comm.allreduce(staged, uoi::sim::ReduceOp::kSum);
    comm.set_allreduce_algo(uoi::sim::AllreduceAlgo::kHierarchical);
    comm.allreduce(hier, uoi::sim::ReduceOp::kSum);
    EXPECT_EQ(staged, hier);
  });
}
