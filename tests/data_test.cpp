// Tests for uoi::data generators: determinism, shape contracts, and the
// statistical structure each generator promises.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/equity.hpp"
#include "data/spikes.hpp"
#include "data/synthetic_regression.hpp"
#include "data/synthetic_var.hpp"
#include "linalg/blas.hpp"
#include "var/granger.hpp"

namespace {

TEST(Regression, ShapesAndDeterminism) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 40;
  spec.n_features = 10;
  spec.support_size = 3;
  const auto a = uoi::data::make_regression(spec);
  const auto b = uoi::data::make_regression(spec);
  EXPECT_EQ(a.x.rows(), 40u);
  EXPECT_EQ(a.x.cols(), 10u);
  EXPECT_EQ(a.y.size(), 40u);
  EXPECT_EQ(uoi::linalg::max_abs_diff(a.x, b.x), 0.0);
  EXPECT_EQ(uoi::linalg::max_abs_diff(a.y, b.y), 0.0);
}

TEST(Regression, SupportSizeAndMagnitudes) {
  uoi::data::RegressionSpec spec;
  spec.n_features = 30;
  spec.support_size = 7;
  spec.coefficient_min = 0.5;
  spec.coefficient_max = 2.0;
  const auto data = uoi::data::make_regression(spec);
  std::size_t nonzero = 0;
  for (const double b : data.beta_true) {
    if (b != 0.0) {
      ++nonzero;
      EXPECT_GE(std::abs(b), 0.5);
      EXPECT_LE(std::abs(b), 2.0);
    }
  }
  EXPECT_EQ(nonzero, 7u);
}

TEST(Regression, NoiselessResidualIsZero) {
  uoi::data::RegressionSpec spec;
  spec.noise_stddev = 0.0;
  const auto data = uoi::data::make_regression(spec);
  for (std::size_t r = 0; r < data.x.rows(); ++r) {
    const double pred = uoi::linalg::dot(data.x.row(r), data.beta_true);
    EXPECT_NEAR(pred, data.y[r], 1e-12);
  }
}

TEST(Regression, CorrelatedDesignHasCorrelation) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 4000;
  spec.n_features = 2;
  spec.support_size = 1;
  spec.feature_correlation = 0.7;
  const auto data = uoi::data::make_regression(spec);
  double c01 = 0.0, v0 = 0.0, v1 = 0.0;
  for (std::size_t r = 0; r < data.x.rows(); ++r) {
    c01 += data.x(r, 0) * data.x(r, 1);
    v0 += data.x(r, 0) * data.x(r, 0);
    v1 += data.x(r, 1) * data.x(r, 1);
  }
  EXPECT_NEAR(c01 / std::sqrt(v0 * v1), 0.7, 0.05);
}

class SparseVarParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SparseVarParam, StableWithRequestedDensity) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 15;
  spec.edges_per_node = 2.0;
  spec.seed = GetParam();
  const auto model = uoi::data::make_sparse_var(spec);
  EXPECT_TRUE(model.is_stable());
  const auto net = uoi::var::GrangerNetwork::from_model(model);
  // ~2 edges per node on average; allow generous slack.
  EXPECT_GT(net.edge_count(), 10u);
  EXPECT_LT(net.edge_count(), 60u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseVarParam,
                         ::testing::Values(1, 2, 3, 10, 99));

TEST(Equity, ShapesTickersSectors) {
  uoi::data::EquitySpec spec;
  spec.n_companies = 50;
  spec.n_weeks = 104;
  const auto data = uoi::data::make_equity(spec);
  EXPECT_EQ(data.weekly_closes.rows(), 104u);
  EXPECT_EQ(data.weekly_differences.rows(), 103u);
  EXPECT_EQ(data.weekly_differences.cols(), 50u);
  EXPECT_EQ(data.tickers.size(), 50u);
  const std::set<std::string> unique(data.tickers.begin(),
                                     data.tickers.end());
  EXPECT_EQ(unique.size(), 50u);
  for (const auto s : data.sector_of) EXPECT_LT(s, spec.n_sectors);
}

TEST(Equity, PricesArePositiveAndDifferencesConsistent) {
  const auto data = uoi::data::make_equity({});
  for (std::size_t w = 0; w < data.weekly_closes.rows(); ++w) {
    for (std::size_t c = 0; c < data.weekly_closes.cols(); ++c) {
      EXPECT_GT(data.weekly_closes(w, c), 0.0);
    }
  }
  for (std::size_t w = 0; w + 1 < data.weekly_closes.rows(); ++w) {
    for (std::size_t c = 0; c < data.weekly_closes.cols(); ++c) {
      EXPECT_NEAR(data.weekly_differences(w, c),
                  data.weekly_closes(w + 1, c) - data.weekly_closes(w, c),
                  1e-9);
    }
  }
}

TEST(Equity, GroundTruthNetworkIsSparseAndSectorBiased) {
  uoi::data::EquitySpec spec;
  spec.n_companies = 60;
  spec.seed = 7;
  const auto data = uoi::data::make_equity(spec);
  const auto net = uoi::var::GrangerNetwork::from_model(data.truth);
  EXPECT_LT(net.density(), 0.15);
  std::size_t within = 0, across = 0;
  for (const auto& e : net.edges()) {
    if (data.sector_of[e.source] == data.sector_of[e.target]) {
      ++within;
    } else {
      ++across;
    }
  }
  // Within-sector edges dominate despite sectors holding ~1/8 of pairs.
  EXPECT_GT(within, across);
}

TEST(Equity, TruthIsStable) {
  const auto data = uoi::data::make_equity({});
  EXPECT_LT(data.truth.companion_spectral_radius(), 0.9);
}

TEST(Spikes, ShapesAndNonNegativity) {
  uoi::data::SpikeSpec spec;
  spec.n_channels = 24;
  spec.n_samples = 400;
  const auto data = uoi::data::make_spikes(spec);
  EXPECT_EQ(data.series.rows(), 400u);
  EXPECT_EQ(data.series.cols(), 24u);
  for (std::size_t t = 0; t < data.counts.rows(); ++t) {
    for (std::size_t c = 0; c < data.counts.cols(); ++c) {
      EXPECT_GE(data.counts(t, c), 0.0);
      EXPECT_NEAR(data.series(t, c), std::sqrt(data.counts(t, c)), 1e-12);
    }
  }
}

TEST(Spikes, MeanRateNearBase) {
  uoi::data::SpikeSpec spec;
  spec.n_channels = 16;
  spec.n_samples = 2000;
  spec.base_rate = 5.0;
  const auto data = uoi::data::make_spikes(spec);
  double total = 0.0;
  for (std::size_t t = 0; t < data.counts.rows(); ++t) {
    for (std::size_t c = 0; c < data.counts.cols(); ++c) {
      total += data.counts(t, c);
    }
  }
  const double mean =
      total / static_cast<double>(data.counts.rows() * data.counts.cols());
  // The latent log-normal factor inflates the mean above base_rate; just
  // require the right order of magnitude.
  EXPECT_GT(mean, 2.0);
  EXPECT_LT(mean, 30.0);
}

TEST(Spikes, TruthNetworkIsSparseAndStable) {
  uoi::data::SpikeSpec spec;
  spec.n_channels = 32;
  const auto data = uoi::data::make_spikes(spec);
  EXPECT_TRUE(data.truth.is_stable());
  const auto net = uoi::var::GrangerNetwork::from_model(data.truth);
  EXPECT_LT(net.density(), 0.25);
}

TEST(Tickers, DeterministicAndUnique) {
  const auto a = uoi::data::make_tickers(100, 5);
  const auto b = uoi::data::make_tickers(100, 5);
  EXPECT_EQ(a, b);
  const std::set<std::string> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), 100u);
  for (const auto& t : a) {
    EXPECT_GE(t.size(), 2u);
    EXPECT_LE(t.size(), 4u);
  }
}

}  // namespace
