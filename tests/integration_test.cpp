// Cross-module integration tests: the full pipelines a user would run,
// exercising io + simcluster + solvers + core/var together.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/metrics.hpp"
#include "core/uoi_lasso.hpp"
#include "core/uoi_lasso_distributed.hpp"
#include "data/equity.hpp"
#include "data/spikes.hpp"
#include "data/synthetic_regression.hpp"
#include "data/synthetic_var.hpp"
#include "io/distribution.hpp"
#include "perfmodel/emulation.hpp"
#include "io/h5lite.hpp"
#include "linalg/blas.hpp"
#include "simcluster/cluster.hpp"
#include "var/granger.hpp"
#include "var/uoi_var.hpp"
#include "var/var_distributed.hpp"

namespace {

using uoi::linalg::Matrix;

class TempDataset {
 public:
  explicit TempDataset(const std::string& name)
      : base_((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempDataset() {
    for (std::uint64_t k = 0; k < 16; ++k) {
      std::error_code ec;
      std::filesystem::remove(uoi::io::stripe_path(base_, k), ec);
    }
  }
  [[nodiscard]] const std::string& base() const { return base_; }

 private:
  std::string base_;
};

TEST(Integration, FileToDistributedUoiLasso) {
  // Dataset on disk -> parallel randomized distribution -> every rank
  // reconstructs the full matrix through window exchange -> distributed
  // UoI_LASSO matches the serial fit on the original data.
  uoi::data::RegressionSpec spec;
  spec.n_samples = 96;
  spec.n_features = 16;
  spec.support_size = 4;
  spec.seed = 41;
  const auto data = uoi::data::make_regression(spec);

  TempDataset tmp("uoi_integration_lasso");
  // Store [X | y] together, as the paper's datasets do.
  Matrix xy(spec.n_samples, spec.n_features + 1);
  for (std::size_t r = 0; r < spec.n_samples; ++r) {
    const auto row = data.x.row(r);
    std::copy(row.begin(), row.end(), xy.row(r).begin());
    xy(r, spec.n_features) = data.y[r];
  }
  uoi::io::write_dataset(tmp.base(), xy, 16, 2);

  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 6;
  options.n_estimation_bootstraps = 4;
  options.n_lambdas = 6;
  const auto serial = uoi::core::UoiLasso(options).fit(data.x, data.y);

  uoi::sim::Cluster::run(4, [&](uoi::sim::Comm& comm) {
    const auto local = uoi::io::randomized_distribute(comm, tmp.base(), 5);
    // Reassemble the full dataset from the shuffled holdings via a window
    // (each rank publishes its rows back at their global positions).
    Matrix assembled(spec.n_samples, spec.n_features + 1);
    uoi::sim::Window window(comm,
                            {assembled.data(), assembled.size()});
    window.fence();
    for (int target = 0; target < comm.size(); ++target) {
      for (std::size_t i = 0; i < local.global_indices.size(); ++i) {
        window.put(target,
                   local.global_indices[i] * (spec.n_features + 1),
                   local.rows.row(i));
      }
    }
    window.fence();

    Matrix x_local(spec.n_samples, spec.n_features);
    uoi::linalg::Vector y_local(spec.n_samples);
    for (std::size_t r = 0; r < spec.n_samples; ++r) {
      const auto row = assembled.row(r);
      std::copy(row.begin(), row.end() - 1, x_local.row(r).begin());
      y_local[r] = row[spec.n_features];
    }
    EXPECT_EQ(uoi::linalg::max_abs_diff(x_local, data.x), 0.0);

    const auto distributed = uoi::core::uoi_lasso_distributed(
        comm, x_local, y_local, options, {2, 1});
    EXPECT_LT(
        uoi::linalg::max_abs_diff(distributed.model.beta, serial.beta),
        2e-3);
  });
}

TEST(Integration, EquityPipelineRecoversSectorStructure) {
  // Synthetic market -> UoI_VAR -> Granger network; the recovered edges
  // must be sparse and biased toward within-sector influence, like the
  // generator.
  uoi::data::EquitySpec spec;
  spec.n_companies = 20;
  spec.n_weeks = 160;
  spec.n_sectors = 4;
  spec.seed = 99;
  const auto market = uoi::data::make_equity(spec);

  uoi::var::UoiVarOptions options;
  options.n_selection_bootstraps = 12;
  options.n_estimation_bootstraps = 5;
  options.n_lambdas = 12;
  const auto fit = uoi::var::UoiVar(options).fit(market.weekly_differences);

  const auto net =
      uoi::var::GrangerNetwork::from_model(fit.model, /*tolerance=*/0.02);
  EXPECT_LT(net.density(), 0.3) << "network is not sparse";

  std::size_t within = 0, across = 0;
  for (const auto& e : net.edges()) {
    if (market.sector_of[e.source] == market.sector_of[e.target]) {
      ++within;
    } else {
      ++across;
    }
  }
  // Recovered edges must be enriched for within-sector pairs relative to
  // the base rate of within-sector ordered pairs (false positives spread
  // uniformly, so enrichment signals the true structure is being found).
  std::size_t within_pairs = 0, total_pairs = 0;
  for (std::size_t i = 0; i < spec.n_companies; ++i) {
    for (std::size_t j = 0; j < spec.n_companies; ++j) {
      if (i == j) continue;
      ++total_pairs;
      if (market.sector_of[i] == market.sector_of[j]) ++within_pairs;
    }
  }
  const double base_rate = static_cast<double>(within_pairs) /
                           static_cast<double>(total_pairs);
  if (within + across >= 10) {
    const double observed = static_cast<double>(within) /
                            static_cast<double>(within + across);
    EXPECT_GT(observed, base_rate) << "no within-sector enrichment";
  }
}

TEST(Integration, SpikePipelineProducesStableSparseModel) {
  uoi::data::SpikeSpec spec;
  spec.n_channels = 12;
  spec.n_samples = 600;
  spec.drive_amplitude = 0.1;
  const auto recording = uoi::data::make_spikes(spec);

  uoi::var::UoiVarOptions options;
  options.n_selection_bootstraps = 10;
  options.n_estimation_bootstraps = 5;
  options.n_lambdas = 10;
  const auto fit = uoi::var::UoiVar(options).fit(recording.series);

  EXPECT_LT(fit.model.companion_spectral_radius(), 1.1);
  const auto net =
      uoi::var::GrangerNetwork::from_model(fit.model, /*tolerance=*/0.02);
  EXPECT_LT(net.density(), 0.6);
}

TEST(Integration, DistributedVarOnEquityMatchesSerial) {
  uoi::data::EquitySpec spec;
  spec.n_companies = 8;
  spec.n_weeks = 90;
  spec.seed = 17;
  const auto market = uoi::data::make_equity(spec);

  uoi::var::UoiVarOptions options;
  options.n_selection_bootstraps = 4;
  options.n_estimation_bootstraps = 3;
  options.n_lambdas = 5;
  // Tight solver tolerances plus a robust support threshold: the serial
  // (structured Kronecker) and distributed (consensus) solvers are
  // different optimizers, so borderline coordinates must not flip the
  // support determination.
  options.admm.eps_abs = 1e-10;
  options.admm.eps_rel = 1e-8;
  options.admm.max_iterations = 20000;
  options.support_tolerance = 1e-5;
  const auto serial =
      uoi::var::UoiVar(options).fit(market.weekly_differences);

  uoi::sim::Cluster::run(4, [&](uoi::sim::Comm& comm) {
    const auto distributed = uoi::var::uoi_var_distributed(
        comm, market.weekly_differences, options, {2, 1}, 2);
    EXPECT_LT(uoi::linalg::max_abs_diff(distributed.model.vec_beta,
                                        serial.vec_beta),
              2e-3);
  });
}

TEST(Integration, ConventionalAndRandomizedDeliverSameData) {
  // Both distribution strategies must deliver the same multiset of rows
  // (just arranged differently) — verified by comparing per-column sums.
  uoi::data::RegressionSpec spec;
  spec.n_samples = 64;
  spec.n_features = 8;
  spec.support_size = 2;
  const auto data = uoi::data::make_regression(spec);
  TempDataset tmp("uoi_integration_same");
  uoi::io::write_dataset(tmp.base(), data.x, 8, 2);

  uoi::sim::Cluster::run(4, [&](uoi::sim::Comm& comm) {
    const auto conventional =
        uoi::io::conventional_distribute(comm, tmp.base());
    const auto randomized =
        uoi::io::randomized_distribute(comm, tmp.base(), 3);

    auto column_sums = [&](const uoi::io::LocalRows& rows) {
      std::vector<double> sums(spec.n_features, 0.0);
      for (std::size_t r = 0; r < rows.rows.rows(); ++r) {
        const auto row = rows.rows.row(r);
        for (std::size_t c = 0; c < row.size(); ++c) sums[c] += row[c];
      }
      comm.allreduce(sums, uoi::sim::ReduceOp::kSum);
      return sums;
    };
    const auto a = column_sums(conventional);
    const auto b = column_sums(randomized);
    for (std::size_t c = 0; c < spec.n_features; ++c) {
      EXPECT_NEAR(a[c], b[c], 1e-9);
    }
  });
}

}  // namespace

namespace scale_stress_tests {

using uoi::linalg::Matrix;

TEST(ScaleStress, TwelveRankVarWithAllParallelismLevels) {
  // P_B x P_lambda x C = 3 x 2 x 2 on 12 ranks, d = 1, p = 14: the
  // largest layout the single-host runtime exercises routinely.
  uoi::data::VarSpec spec;
  spec.n_nodes = 14;
  spec.edges_per_node = 1.5;
  spec.seed = 71;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 280;
  sim.seed = 72;
  const Matrix series = uoi::var::simulate(truth, sim);

  uoi::var::UoiVarOptions options;
  options.n_selection_bootstraps = 6;
  options.n_estimation_bootstraps = 4;
  options.n_lambdas = 6;
  const auto serial = uoi::var::UoiVar(options).fit(series);

  uoi::sim::Cluster::run(12, [&](uoi::sim::Comm& comm) {
    const auto distributed =
        uoi::var::uoi_var_distributed(comm, series, options, {3, 2}, 2);
    EXPECT_LT(uoi::linalg::max_abs_diff(distributed.model.vec_beta,
                                        serial.vec_beta),
              2e-3);
  });
}

TEST(ScaleStress, SixteenRankLassoWithEmulatedNetwork) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 320;
  spec.n_features = 24;
  spec.support_size = 5;
  spec.seed = 73;
  const auto data = uoi::data::make_regression(spec);
  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 8;
  options.n_estimation_bootstraps = 4;
  options.n_lambdas = 6;
  const auto serial = uoi::core::UoiLasso(options).fit(data.x, data.y);

  uoi::sim::Cluster::run(16, [&](uoi::sim::Comm& comm) {
    comm.set_latency_injector(uoi::perf::make_profile_injector(
        uoi::perf::knl_profile(), 4352, /*time_scale=*/1e-4));
    const auto distributed = uoi::core::uoi_lasso_distributed(
        comm, data.x, data.y, options, {4, 2});
    EXPECT_LT(
        uoi::linalg::max_abs_diff(distributed.model.beta, serial.beta),
        2e-3);
  });
}

}  // namespace scale_stress_tests
