// Tests for the elastic-net solver path and UoI_ElasticNet, plus the
// estimation information criteria.

#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.hpp"
#include "core/uoi_elastic_net.hpp"
#include "core/uoi_elastic_net_distributed.hpp"
#include "simcluster/cluster.hpp"
#include "core/uoi_lasso.hpp"
#include "data/synthetic_regression.hpp"
#include "linalg/blas.hpp"
#include "solvers/admm_lasso.hpp"
#include "solvers/lambda_grid.hpp"
#include "solvers/prox.hpp"
#include "solvers/ridge.hpp"

namespace {

using uoi::core::EstimationCriterion;
using uoi::linalg::Matrix;
using uoi::linalg::Vector;

TEST(ElasticNetProx, ReducesToSoftThresholdAtZeroL2) {
  for (const double v : {-3.0, -0.4, 0.0, 0.7, 5.0}) {
    EXPECT_DOUBLE_EQ(uoi::solvers::elastic_net_prox(v, 1.0, 0.0, 2.0),
                     uoi::solvers::soft_threshold(v, 0.5));
  }
}

TEST(ElasticNetProx, ShrinksMoreWithL2) {
  const double plain = uoi::solvers::elastic_net_prox(2.0, 1.0, 0.0, 1.0);
  const double with_l2 = uoi::solvers::elastic_net_prox(2.0, 1.0, 3.0, 1.0);
  EXPECT_GT(plain, with_l2);
  EXPECT_GT(with_l2, 0.0);
}

double elastic_net_objective(uoi::linalg::ConstMatrixView x,
                             std::span<const double> y,
                             std::span<const double> beta, double lambda1,
                             double lambda2) {
  double rss = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double err = uoi::linalg::dot(x.row(r), beta) - y[r];
    rss += err * err;
  }
  return 0.5 * rss + lambda1 * uoi::linalg::nrm1(beta) +
         0.5 * lambda2 * uoi::linalg::nrm2_squared(beta);
}

TEST(ElasticNetSolver, PureL2MatchesRidge) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 60;
  spec.n_features = 12;
  spec.support_size = 12;
  spec.seed = 3;
  const auto data = uoi::data::make_regression(spec);
  uoi::solvers::AdmmOptions options;
  options.eps_abs = 1e-11;
  options.eps_rel = 1e-9;
  options.max_iterations = 50000;
  const uoi::solvers::LassoAdmmSolver solver(data.x, data.y, options);
  const double lambda2 = 4.0;
  const auto fit = solver.solve_elastic_net(0.0, lambda2);
  const Vector ridge_beta = uoi::solvers::ridge(data.x, data.y, lambda2);
  EXPECT_LT(uoi::linalg::max_abs_diff(fit.beta, ridge_beta), 1e-5);
}

class ElasticNetOptimalityParam
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ElasticNetOptimalityParam, BeatsPerturbationsOfItself) {
  const auto [lambda1, lambda2] = GetParam();
  uoi::data::RegressionSpec spec;
  spec.n_samples = 50;
  spec.n_features = 10;
  spec.support_size = 4;
  spec.seed = 5;
  const auto data = uoi::data::make_regression(spec);
  uoi::solvers::AdmmOptions options;
  options.eps_abs = 1e-10;
  options.eps_rel = 1e-8;
  options.max_iterations = 50000;
  const uoi::solvers::LassoAdmmSolver solver(data.x, data.y, options);
  const auto fit = solver.solve_elastic_net(lambda1, lambda2);
  const double base = elastic_net_objective(data.x, data.y, fit.beta,
                                            lambda1, lambda2);
  // Coordinate perturbations must not improve the objective.
  Vector probe = fit.beta;
  for (std::size_t i = 0; i < probe.size(); ++i) {
    for (const double delta : {1e-4, -1e-4}) {
      probe[i] = fit.beta[i] + delta;
      EXPECT_GE(elastic_net_objective(data.x, data.y, probe, lambda1,
                                      lambda2),
                base - 1e-9);
      probe[i] = fit.beta[i];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Penalties, ElasticNetOptimalityParam,
    ::testing::Values(std::make_tuple(2.0, 0.0), std::make_tuple(2.0, 1.0),
                      std::make_tuple(0.5, 5.0), std::make_tuple(10.0, 10.0)));

TEST(UoiElasticNet, RecoversOnCorrelatedDesign) {
  // The motivating case: strongly correlated features, where the pure
  // LASSO's support is unstable across bootstraps.
  uoi::data::RegressionSpec spec;
  spec.n_samples = 250;
  spec.n_features = 30;
  spec.support_size = 6;
  spec.feature_correlation = 0.7;
  spec.noise_stddev = 0.4;
  spec.seed = 7;
  const auto data = uoi::data::make_regression(spec);

  uoi::core::UoiElasticNetOptions options;
  options.n_selection_bootstraps = 12;
  options.n_estimation_bootstraps = 6;
  options.n_lambdas = 10;
  options.l1_ratios = {1.0, 0.5};
  const auto fit = uoi::core::UoiElasticNet(options).fit(data.x, data.y);

  const auto truth = uoi::core::SupportSet::from_beta(data.beta_true);
  const auto support = uoi::core::SupportSet::from_beta(fit.beta, 0.05);
  const auto acc =
      uoi::core::selection_accuracy(support, truth, spec.n_features);
  EXPECT_EQ(acc.false_negatives, 0u);
  EXPECT_LE(acc.false_positives, 2u);
}

TEST(UoiElasticNet, PureL1MatchesUoiLassoSupports) {
  // With l1_ratios = {1.0} and matching hyperparameters/seeds, the
  // candidate supports coincide with UoI_LASSO's.
  uoi::data::RegressionSpec spec;
  spec.n_samples = 120;
  spec.n_features = 15;
  spec.support_size = 4;
  spec.seed = 9;
  const auto data = uoi::data::make_regression(spec);

  uoi::core::UoiElasticNetOptions en_options;
  en_options.n_selection_bootstraps = 8;
  en_options.n_estimation_bootstraps = 4;
  en_options.n_lambdas = 8;
  en_options.l1_ratios = {1.0};
  en_options.seed = 404;
  const auto en = uoi::core::UoiElasticNet(en_options).fit(data.x, data.y);

  uoi::core::UoiLassoOptions lasso_options;
  lasso_options.n_selection_bootstraps = 8;
  lasso_options.n_estimation_bootstraps = 4;
  lasso_options.n_lambdas = 8;
  lasso_options.seed = 404;
  const auto lasso = uoi::core::UoiLasso(lasso_options).fit(data.x, data.y);

  ASSERT_EQ(en.candidate_supports.size(), lasso.candidate_supports.size());
  for (std::size_t j = 0; j < en.candidate_supports.size(); ++j) {
    EXPECT_EQ(en.candidate_supports[j], lasso.candidate_supports[j]);
  }
  EXPECT_LT(uoi::linalg::max_abs_diff(en.beta, lasso.beta), 1e-12);
}

TEST(UoiElasticNet, RejectsBadRatios) {
  uoi::core::UoiElasticNetOptions options;
  options.l1_ratios = {0.0};
  EXPECT_THROW(uoi::core::UoiElasticNet en(options),
               uoi::support::InvalidArgument);
  options.l1_ratios = {};
  EXPECT_THROW(uoi::core::UoiElasticNet en2(options),
               uoi::support::InvalidArgument);
}

// ---- estimation criteria ----

TEST(EstimationCriterion, ScoresOrderParsimonyCorrectly) {
  // Same MSE, bigger support -> worse AIC/BIC; MSE ignores size.
  const double mse = 0.5;
  EXPECT_EQ(uoi::core::estimation_score(EstimationCriterion::kMse, mse, 100,
                                        3),
            uoi::core::estimation_score(EstimationCriterion::kMse, mse, 100,
                                        30));
  EXPECT_LT(uoi::core::estimation_score(EstimationCriterion::kAic, mse, 100,
                                        3),
            uoi::core::estimation_score(EstimationCriterion::kAic, mse, 100,
                                        30));
  EXPECT_LT(uoi::core::estimation_score(EstimationCriterion::kBic, mse, 100,
                                        3),
            uoi::core::estimation_score(EstimationCriterion::kBic, mse, 100,
                                        30));
  // BIC penalizes harder than AIC for n >= 8.
  const double aic_gap =
      uoi::core::estimation_score(EstimationCriterion::kAic, mse, 100, 30) -
      uoi::core::estimation_score(EstimationCriterion::kAic, mse, 100, 3);
  const double bic_gap =
      uoi::core::estimation_score(EstimationCriterion::kBic, mse, 100, 30) -
      uoi::core::estimation_score(EstimationCriterion::kBic, mse, 100, 3);
  EXPECT_GT(bic_gap, aic_gap);
}

TEST(EstimationCriterion, BicNeverSelectsMoreThanMse) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 150;
  spec.n_features = 25;
  spec.support_size = 5;
  spec.noise_stddev = 0.6;
  spec.seed = 11;
  const auto data = uoi::data::make_regression(spec);

  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 10;
  options.n_estimation_bootstraps = 6;
  options.n_lambdas = 10;
  options.criterion = EstimationCriterion::kMse;
  const auto mse_fit = uoi::core::UoiLasso(options).fit(data.x, data.y);
  options.criterion = EstimationCriterion::kBic;
  const auto bic_fit = uoi::core::UoiLasso(options).fit(data.x, data.y);

  // BIC's per-bootstrap winners are never larger supports than MSE's.
  for (std::size_t k = 0; k < options.n_estimation_bootstraps; ++k) {
    const auto mse_size =
        mse_fit.candidate_supports[mse_fit.chosen_support_per_bootstrap[k]]
            .size();
    const auto bic_size =
        bic_fit.candidate_supports[bic_fit.chosen_support_per_bootstrap[k]]
            .size();
    EXPECT_LE(bic_size, mse_size) << "bootstrap " << k;
  }
}

}  // namespace

namespace elastic_net_distributed_tests {

using uoi::linalg::Matrix;

class UoiEnDistParam
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(UoiEnDistParam, MatchesSerialDriver) {
  const auto [ranks, pb, pl] = GetParam();
  uoi::data::RegressionSpec spec;
  spec.n_samples = 140;
  spec.n_features = 16;
  spec.support_size = 4;
  spec.feature_correlation = 0.5;
  spec.seed = 91;
  const auto data = uoi::data::make_regression(spec);

  uoi::core::UoiElasticNetOptions options;
  options.n_selection_bootstraps = 6;
  options.n_estimation_bootstraps = 4;
  options.n_lambdas = 5;
  options.l1_ratios = {1.0, 0.5};
  options.seed = 92;
  options.admm.eps_abs = 1e-9;
  options.admm.eps_rel = 1e-7;
  options.admm.max_iterations = 20000;
  options.support_tolerance = 1e-5;
  const auto serial = uoi::core::UoiElasticNet(options).fit(data.x, data.y);

  uoi::sim::Cluster::run(ranks, [&](uoi::sim::Comm& comm) {
    const auto distributed = uoi::core::uoi_elastic_net_distributed(
        comm, data.x, data.y, options, {pb, pl});
    ASSERT_EQ(distributed.model.candidate_supports.size(),
              serial.candidate_supports.size());
    for (std::size_t c = 0; c < serial.candidate_supports.size(); ++c) {
      EXPECT_EQ(distributed.model.candidate_supports[c],
                serial.candidate_supports[c])
          << "cell " << c;
    }
    EXPECT_EQ(distributed.model.chosen_support_per_bootstrap,
              serial.chosen_support_per_bootstrap);
    EXPECT_LT(uoi::linalg::max_abs_diff(distributed.model.beta, serial.beta),
              2e-3);
  });
}

INSTANTIATE_TEST_SUITE_P(Layouts, UoiEnDistParam,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(2, 1, 1),
                                           std::make_tuple(4, 2, 1),
                                           std::make_tuple(4, 1, 2),
                                           std::make_tuple(6, 2, 3)));

}  // namespace elastic_net_distributed_tests
