// Tests for the run-report analytics stack: the streaming log-bucketed
// latency histogram (support/histogram), structured logging
// (support/log), the Chrome-trace reader, and the RunReport analysis
// (load imbalance, Allreduce skew, critical-path lower bound, latency
// percentiles) both from synthetic inputs and from a real distributed run.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/uoi_lasso_distributed.hpp"
#include "data/synthetic_regression.hpp"
#include "report/run_report.hpp"
#include "report/trace_reader.hpp"
#include "simcluster/cluster.hpp"
#include "solvers/screening.hpp"
#include "support/error.hpp"
#include "support/histogram.hpp"
#include "support/json.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace {

using uoi::report::build_run_report;
using uoi::report::inputs_from_events;
using uoi::report::ReportInputs;
using uoi::report::RunReport;
using uoi::support::LogHistogram;
using uoi::support::TraceCategory;
using uoi::support::TraceEvent;
using uoi::support::Tracer;

// ---------------------------------------------------------------- histogram

TEST(Histogram, EmptyIsAllZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
}

TEST(Histogram, TracksExactSummaryStatistics) {
  LogHistogram h;
  h.add(0.002);
  h.add(0.010);
  h.add(0.050);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.062);
  EXPECT_DOUBLE_EQ(h.min(), 0.002);
  EXPECT_DOUBLE_EQ(h.max(), 0.050);
  EXPECT_NEAR(h.mean(), 0.062 / 3.0, 1e-15);
}

TEST(Histogram, QuantilesWithinBucketResolution) {
  // 1..100 ms uniform: p50 ~ 50 ms, p95 ~ 95 ms. The log buckets have a
  // ratio of ~1.34, so allow ~20% relative error.
  LogHistogram h;
  for (int i = 1; i <= 100; ++i) h.add(1e-3 * i);
  EXPECT_NEAR(h.p50(), 0.050, 0.010);
  EXPECT_NEAR(h.p95(), 0.095, 0.020);
  EXPECT_NEAR(h.p99(), 0.099, 0.020);
  // Quantiles are clamped to the observed range.
  EXPECT_GE(h.quantile(0.0), 0.001);
  EXPECT_LE(h.quantile(1.0), 0.100 + 1e-12);
}

TEST(Histogram, SingleValueQuantilesAreExact) {
  LogHistogram h;
  h.add(0.25);
  // One observation: every quantile clamps to the observed min == max.
  EXPECT_DOUBLE_EQ(h.p50(), 0.25);
  EXPECT_DOUBLE_EQ(h.p99(), 0.25);
}

TEST(Histogram, OutOfRangeValuesClampButKeepExactMinMax) {
  LogHistogram h;
  h.add(1e-12);  // below the 1 ns first bucket
  h.add(1e6);    // above the last bucket
  h.add(-1.0);   // negative clamps to zero
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e6);
}

TEST(Histogram, MergeAddsCountsAndRanges) {
  LogHistogram a, b;
  a.add(0.001);
  a.add(0.002);
  b.add(0.100);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), 0.001);
  EXPECT_DOUBLE_EQ(a.max(), 0.100);
  EXPECT_NEAR(a.sum(), 0.103, 1e-15);
  a.clear();
  EXPECT_EQ(a.count(), 0u);
}

TEST(Histogram, BucketIndexIsMonotone) {
  std::size_t last = 0;
  for (double v = 1e-9; v < 100.0; v *= 3.0) {
    const std::size_t index = LogHistogram::bucket_index(v);
    EXPECT_GE(index, last);
    EXPECT_LT(index, LogHistogram::kBucketCount);
    // The bucket's lower bound must not exceed the value it contains.
    EXPECT_LE(LogHistogram::bucket_lower_bound(index), v * (1.0 + 1e-9));
    last = index;
  }
}

TEST(Histogram, ValueAtBucketLowerBoundLandsInsideItsBucket) {
  // A value sitting exactly on a bucket edge must land in a bucket whose
  // range contains it (floating-point log/exp round-trips may put the edge
  // itself in either neighbor, but never further away).
  for (const std::size_t i : {1u, 10u, 40u, 80u, 95u}) {
    const double edge = LogHistogram::bucket_lower_bound(i);
    const std::size_t index = LogHistogram::bucket_index(edge);
    EXPECT_TRUE(index == i || index + 1 == i) << "edge of bucket " << i
                                              << " landed in " << index;
    EXPECT_LE(LogHistogram::bucket_lower_bound(index), edge * (1.0 + 1e-12));
    EXPECT_GT(LogHistogram::bucket_lower_bound(index + 2), edge);
  }
}

TEST(Histogram, IdenticalSamplesAtABucketEdgeQuantileExactly) {
  // min == max clamping makes every quantile exact even when the sample
  // sits on a bucket boundary where geometric interpolation would
  // otherwise return the edge of the neighboring bucket.
  const double edge = LogHistogram::bucket_lower_bound(40);
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.add(edge);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), edge);
  EXPECT_DOUBLE_EQ(h.p50(), edge);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), edge);
}

TEST(Histogram, QuantileInterpolatesAcrossABucketBoundary) {
  // 50 samples at the geometric midpoint of bucket i, 50 at the midpoint
  // of bucket i+1. The quantile whose target rank is the last observation
  // of the lower bucket interpolates to the shared bucket edge; one rank
  // later lands just above it — the estimate must cross the boundary
  // continuously (no jump past the next midpoint).
  const std::size_t i = LogHistogram::bucket_index(1e-3);
  const double lo = LogHistogram::bucket_lower_bound(i);
  const double edge = LogHistogram::bucket_lower_bound(i + 1);
  const double hi = LogHistogram::bucket_lower_bound(i + 2);
  const double mid_low = std::sqrt(lo * edge);
  const double mid_high = std::sqrt(edge * hi);
  LogHistogram h;
  for (int k = 0; k < 50; ++k) h.add(mid_low);
  for (int k = 0; k < 50; ++k) h.add(mid_high);
  ASSERT_EQ(h.count(), 100u);
  // q = 49/99: target rank 50 = the last sample of the lower bucket;
  // within-bucket fraction 1.0 interpolates to the bucket's upper edge.
  const double at_edge = h.quantile(49.0 / 99.0);
  EXPECT_NEAR(at_edge, edge, edge * 1e-12);
  // q = 50/99: target rank 51 = first sample of the upper bucket; the
  // estimate moves just above the edge, well below the upper midpoint.
  const double past_edge = h.quantile(50.0 / 99.0);
  EXPECT_GE(past_edge, at_edge);
  EXPECT_LT(past_edge, mid_high);
  // Quantiles stay monotone in q across the boundary.
  double last = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double value = h.quantile(q);
    EXPECT_GE(value, last) << "q=" << q;
    last = value;
  }
  // And remain clamped to the observed range at the extremes.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), mid_low);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), mid_high);
}

TEST(Histogram, TracerMaintainsHistogramsMatchingTotals) {
  auto& tracer = Tracer::instance();
  tracer.clear();
  tracer.record("a", TraceCategory::kCommunication, 1, 0.0, 0.010);
  tracer.record("b", TraceCategory::kCommunication, 1, 0.0, 0.020);
  tracer.record("c", TraceCategory::kCommunication, 2, 0.0, 0.040);
  const auto h1 = tracer.histogram(1, TraceCategory::kCommunication);
  EXPECT_EQ(h1.count(),
            tracer.totals(1).of(TraceCategory::kCommunication).calls);
  EXPECT_NEAR(h1.sum(), 0.030, 1e-12);
  const auto merged = tracer.histogram(TraceCategory::kCommunication);
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_DOUBLE_EQ(merged.max(), 0.040);
  tracer.clear();
  EXPECT_EQ(tracer.histogram(TraceCategory::kCommunication).count(), 0u);
}

// ------------------------------------------------------------------ report

/// Two ranks, one collective: rank 0 works 1.0 s then spends 0.2 s in the
/// allreduce; rank 1 works 0.5 s and waits 0.7 s in the same collective.
std::vector<TraceEvent> synthetic_skewed_run() {
  std::vector<TraceEvent> events;
  events.push_back({"work", TraceCategory::kComputation, 0, 0, 0.0, 1.0, {}});
  events.push_back({"allreduce", TraceCategory::kCommunication, 0, 0, 1.0,
                    0.2, {}});
  events.push_back({"work", TraceCategory::kComputation, 1, 1, 0.0, 0.5, {}});
  events.push_back({"allreduce", TraceCategory::kCommunication, 1, 1, 0.5,
                    0.7, {}});
  return events;
}

TEST(RunReport, SyntheticImbalanceAndCriticalPath) {
  const auto inputs = inputs_from_events(synthetic_skewed_run());
  EXPECT_NEAR(inputs.wall_seconds, 1.2, 1e-12);

  const RunReport report = build_run_report(inputs);
  EXPECT_EQ(report.n_ranks, 2);

  // Headline buckets: communication is the per-rank mean (0.45 s), and
  // computation is the wall remainder, so the four buckets sum to wall.
  EXPECT_NEAR(report.communication_seconds, 0.45, 1e-12);
  EXPECT_NEAR(report.computation_seconds, 0.75, 1e-12);
  EXPECT_NEAR(report.buckets_sum(), report.wall_seconds, 1e-12);

  // Imbalance: traced compute 1.0 vs 0.5 -> max/mean 4/3, CV 1/3,
  // straggler rank 0 with +0.25 s excess, flagged.
  EXPECT_NEAR(report.compute_max_over_mean, 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(report.compute_cv, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(report.straggler_rank, 0);
  EXPECT_NEAR(report.straggler_excess_seconds, 0.25, 1e-12);
  EXPECT_TRUE(report.straggler_flagged);

  // Allreduce skew (from comm totals here): 0.7 - 0.2 = 0.5 s.
  EXPECT_NEAR(report.allreduce_skew_seconds, 0.5, 1e-12);
  EXPECT_NEAR(report.allreduce_max_over_mean, 0.7 / 0.45, 1e-12);

  // Critical path (events method): max work (1.0) + fastest instance of
  // the one collective (0.2) = 1.2 = wall, so no balancing slack.
  EXPECT_EQ(report.critical_path_method, "events");
  EXPECT_EQ(report.sync_points, 1u);
  EXPECT_NEAR(report.critical_path_seconds, 1.2, 1e-12);
  EXPECT_NEAR(report.critical_path_fraction, 1.0, 1e-12);

  // Latency table covers both categories.
  ASSERT_EQ(report.latency.size(), 2u);
  EXPECT_EQ(report.latency[0].category, TraceCategory::kComputation);
  EXPECT_EQ(report.latency[0].count, 2u);
  EXPECT_DOUBLE_EQ(report.latency[0].max_seconds, 1.0);

  // Serialized forms carry the schema marker and the headline numbers.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema\":\"uoi-run-report-v2\""), std::string::npos);
  EXPECT_NE(json.find("\"straggler_rank\":0"), std::string::npos);
  EXPECT_NE(json.find("\"method\":\"events\""), std::string::npos);
  // No sched.* metrics fed in -> v1-compatible document: the scheduler
  // section is present but flagged absent, every v1 key unchanged.
  EXPECT_NE(json.find("\"scheduler\":{\"present\":false}"),
            std::string::npos);
  const std::string text = report.to_text();
  EXPECT_NE(text.find("load imbalance"), std::string::npos);
  EXPECT_NE(text.find("critical path"), std::string::npos);
}

TEST(RunReport, TotalsFallbackWhenNoEvents) {
  ReportInputs inputs;
  inputs.wall_seconds = 2.0;
  inputs.totals[0].of(TraceCategory::kComputation) = {4, 1.5};
  inputs.totals[0].of(TraceCategory::kCommunication) = {2, 0.3};
  inputs.totals[1].of(TraceCategory::kComputation) = {4, 1.4};
  inputs.totals[1].of(TraceCategory::kCommunication) = {2, 0.5};
  const RunReport report = build_run_report(inputs);
  EXPECT_EQ(report.critical_path_method, "totals");
  // max work (1.5) + min total comm (0.3) = 1.8 <= wall.
  EXPECT_NEAR(report.critical_path_seconds, 1.8, 1e-12);
  EXPECT_NEAR(report.critical_path_fraction, 0.9, 1e-12);
  EXPECT_FALSE(report.straggler_flagged);  // 1.5/1.45 < 1.25
}

TEST(RunReport, EmptyInputsProduceEmptyReport) {
  const RunReport report = build_run_report(ReportInputs{});
  EXPECT_EQ(report.n_ranks, 0);
  EXPECT_EQ(report.straggler_rank, -1);
  EXPECT_TRUE(report.latency.empty());
  EXPECT_NE(report.to_json().find("uoi-run-report-v2"), std::string::npos);
}

TEST(RunReport, SchedulerSectionAggregatesAgentCounters) {
  ReportInputs inputs;
  inputs.wall_seconds = 1.0;
  // Two agent ranks (0 and 2) exporting sched counters; rank 2 is the
  // busier agent and also carries the calibration error metric.
  using Entry = uoi::support::MetricsRegistry::Entry;
  inputs.metrics = std::vector<Entry>{
      {0, "sched.policy", 3.0},  // kWorkSteal
      {0, "sched.tasks_executed", 4.0},
      {0, "sched.steals_attempted", 2.0},
      {0, "sched.steals_succeeded", 1.0},
      {0, "sched.queue_depth_max", 5.0},
      {2, "sched.policy", 3.0},
      {2, "sched.tasks_executed", 8.0},
      {2, "sched.steals_attempted", 1.0},
      {2, "sched.steals_succeeded", 1.0},
      {2, "sched.queue_depth_max", 7.0},
      {2, "sched.placement_error", 0.25},
  };
  const RunReport report = build_run_report(inputs);
  EXPECT_TRUE(report.scheduler.present);
  EXPECT_EQ(report.scheduler.policy, "work_steal");
  EXPECT_EQ(report.scheduler.agent_ranks, 2);
  EXPECT_DOUBLE_EQ(report.scheduler.tasks_executed, 12.0);
  EXPECT_DOUBLE_EQ(report.scheduler.steals_attempted, 3.0);
  EXPECT_DOUBLE_EQ(report.scheduler.steals_succeeded, 2.0);
  EXPECT_DOUBLE_EQ(report.scheduler.queue_depth_max, 7.0);
  EXPECT_NEAR(report.scheduler.tasks_max_over_mean, 8.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(report.scheduler.placement_error, 0.25);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"scheduler\":{\"present\":true"), std::string::npos);
  EXPECT_NE(json.find("\"policy\":\"work_steal\""), std::string::npos);
  const std::string text = report.to_text();
  EXPECT_NE(text.find("scheduler:"), std::string::npos);
  EXPECT_NE(text.find("work_steal"), std::string::npos);
}

TEST(RunReport, ScreeningSectionAggregatesChainCounters) {
  ReportInputs inputs;
  inputs.wall_seconds = 1.0;
  // Two ranks running screened chains over their own lambda chunks; all
  // counters sum across ranks, the mode is a set-per-rank enum value.
  using Entry = uoi::support::MetricsRegistry::Entry;
  const double strong =
      static_cast<double>(uoi::solvers::ScreenMode::kStrong);
  inputs.metrics = std::vector<Entry>{
      {0, "screen.mode", strong},
      {0, "screen.lambdas", 3.0},
      {0, "screen.survivors", 40.0},
      {0, "screen.kkt_violations", 2.0},
      {0, "screen.kkt_rounds", 4.0},
      {0, "screen.gram_cols_saved", 260.0},
      {0, "screen.canonical_solves", 1.0},
      {0, "screen.total_columns", 300.0},
      {1, "screen.mode", strong},
      {1, "screen.lambdas", 2.0},
      {1, "screen.survivors", 10.0},
      {1, "screen.kkt_violations", 0.0},
      {1, "screen.kkt_rounds", 2.0},
      {1, "screen.gram_cols_saved", 190.0},
      {1, "screen.canonical_solves", 0.0},
      {1, "screen.total_columns", 200.0},
  };
  const RunReport report = build_run_report(inputs);
  EXPECT_TRUE(report.screening.present);
  EXPECT_EQ(report.screening.mode, "strong");
  EXPECT_DOUBLE_EQ(report.screening.lambdas, 5.0);
  EXPECT_DOUBLE_EQ(report.screening.survivors, 50.0);
  EXPECT_DOUBLE_EQ(report.screening.kkt_violations, 2.0);
  EXPECT_DOUBLE_EQ(report.screening.kkt_rounds, 6.0);
  EXPECT_DOUBLE_EQ(report.screening.gram_cols_saved, 450.0);
  EXPECT_DOUBLE_EQ(report.screening.canonical_solves, 1.0);
  EXPECT_DOUBLE_EQ(report.screening.total_columns, 500.0);
  EXPECT_NEAR(report.screening.survivor_fraction, 0.1, 1e-12);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"screening\":{\"present\":true"), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"strong\""), std::string::npos);
  EXPECT_NE(json.find("\"survivor_fraction\":"), std::string::npos);
  const std::string text = report.to_text();
  EXPECT_NE(text.find("screening:"), std::string::npos);

  // Without screen.* metrics the section is present-but-flagged-absent,
  // keeping v1/v2 consumers working unchanged.
  const RunReport empty = build_run_report(ReportInputs{});
  EXPECT_FALSE(empty.screening.present);
  EXPECT_NE(empty.to_json().find("\"screening\":{\"present\":false}"),
            std::string::npos);
}

TEST(RunReport, WriteRunReportFailsWithIoError) {
  const RunReport report;
  EXPECT_THROW(
      uoi::report::write_run_report(report, "/nonexistent-dir/x/report.json"),
      uoi::support::IoError);
}

// ------------------------------------------------------------ trace reader

TEST(TraceReader, RoundTripsTracerOutput) {
  auto& tracer = Tracer::instance();
  tracer.clear();
  tracer.set_capture_events(true);
  tracer.record("alpha", TraceCategory::kCommunication, 0, 0.001, 0.002);
  tracer.record("beta \"quoted\"\n", TraceCategory::kDataIo, 2, 0.003, 0.001);
  tracer.instant("marker", TraceCategory::kFault, 1);
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  tracer.set_capture_events(false);
  tracer.clear();

  std::istringstream in(out.str());
  const auto events = uoi::report::read_chrome_trace(in);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "alpha");
  EXPECT_EQ(events[0].category, TraceCategory::kCommunication);
  EXPECT_EQ(events[0].rank, 0);
  EXPECT_NEAR(events[0].start_seconds, 0.001, 1e-9);
  EXPECT_NEAR(events[0].duration_seconds, 0.002, 1e-9);
  EXPECT_EQ(events[1].name, "marker");
  EXPECT_EQ(events[1].category, TraceCategory::kFault);
  EXPECT_NEAR(events[1].duration_seconds, 0.0, 1e-12);
  // The escaped quote/newline in the name survive the round trip.
  EXPECT_EQ(events[2].name, "beta \"quoted\"\n");
  EXPECT_EQ(events[2].category, TraceCategory::kDataIo);
  EXPECT_EQ(events[2].rank, 2);
}

TEST(TraceReader, AcceptsTraceEventsContainerAndSkipsUnknownPhases) {
  std::istringstream in(
      "{\"otherKey\": [1, 2, {\"x\": null}],\n"
      " \"traceEvents\": [\n"
      "  {\"name\": \"span\", \"cat\": \"distribution\", \"ph\": \"X\","
      "   \"pid\": 3, \"tid\": 0, \"ts\": 1500.0, \"dur\": 250.0},\n"
      "  {\"name\": \"begin\", \"ph\": \"B\", \"pid\": 0, \"ts\": 0},\n"
      "  {\"name\": \"odd cat\", \"cat\": \"martian\", \"ph\": \"X\","
      "   \"pid\": 0, \"ts\": 0, \"dur\": 1}\n"
      " ]}");
  const auto events = uoi::report::read_chrome_trace(in);
  ASSERT_EQ(events.size(), 2u);  // the "B" phase is skipped
  EXPECT_EQ(events[0].name, "span");
  EXPECT_EQ(events[0].category, TraceCategory::kDistribution);
  EXPECT_EQ(events[0].rank, 3);
  EXPECT_NEAR(events[0].start_seconds, 1.5e-3, 1e-12);
  EXPECT_NEAR(events[0].duration_seconds, 2.5e-4, 1e-12);
  // Unknown categories land in computation so no time is dropped.
  EXPECT_EQ(events[1].category, TraceCategory::kComputation);
}

TEST(TraceReader, MalformedJsonThrowsIoError) {
  std::istringstream truncated("[{\"name\": \"x\", ");
  EXPECT_THROW((void)uoi::report::read_chrome_trace(truncated),
               uoi::support::IoError);
  std::istringstream garbage("not json at all");
  EXPECT_THROW((void)uoi::report::read_chrome_trace(garbage),
               uoi::support::IoError);
  EXPECT_THROW(
      (void)uoi::report::read_chrome_trace_file("/nonexistent/trace.json"),
      uoi::support::IoError);
}

TEST(TraceReader, AnalyzePipelineMatchesLiveReport) {
  // Capture a synthetic trace, write it, read it back, and check the
  // report computed from the file matches the one from the live events.
  auto& tracer = Tracer::instance();
  tracer.clear();
  tracer.set_capture_events(true);
  for (const auto& e : synthetic_skewed_run()) {
    tracer.record(e.name, e.category, e.rank, e.start_seconds,
                  e.duration_seconds);
  }
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  tracer.set_capture_events(false);
  tracer.clear();

  std::istringstream in(out.str());
  const auto report =
      build_run_report(inputs_from_events(uoi::report::read_chrome_trace(in)));
  EXPECT_NEAR(report.wall_seconds, 1.2, 1e-6);
  EXPECT_NEAR(report.critical_path_seconds, 1.2, 1e-6);
  EXPECT_EQ(report.straggler_rank, 0);
}

// ----------------------------------------------- end-to-end distributed run

TEST(RunReport, DistributedRunBucketsSumToWall) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 80;
  spec.n_features = 16;
  spec.support_size = 4;
  spec.seed = 31;
  const auto data = uoi::data::make_regression(spec);
  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 6;
  options.n_estimation_bootstraps = 4;
  options.n_lambdas = 6;
  options.seed = 909;

  auto& tracer = Tracer::instance();
  tracer.clear();
  tracer.set_capture_events(true);
  uoi::support::Stopwatch watch;
  uoi::sim::Cluster::run(2, [&](uoi::sim::Comm& comm) {
    (void)uoi::core::uoi_lasso_distributed(comm, data.x, data.y, options);
  });
  const double wall = watch.seconds();
  const auto inputs = uoi::report::collect_inputs(wall);
  tracer.set_capture_events(false);
  tracer.clear();

  const RunReport report = build_run_report(inputs);
  EXPECT_EQ(report.n_ranks, 2);
  EXPECT_GT(report.communication_seconds, 0.0);
  // The four headline buckets sum to the phase wall (computation is the
  // remainder; the clamp only fires if traced non-compute exceeds wall).
  const double traced_non_compute = report.communication_seconds +
                                    report.distribution_seconds +
                                    report.data_io_seconds;
  EXPECT_NEAR(report.buckets_sum(), std::max(wall, traced_non_compute),
              1e-9);
  // The critical-path bound never exceeds the wall, and with events
  // captured it uses the aligned-collective method.
  EXPECT_EQ(report.critical_path_method, "events");
  EXPECT_GT(report.critical_path_seconds, 0.0);
  EXPECT_LE(report.critical_path_seconds, wall + 1e-9);
  EXPECT_GT(report.sync_points, 0u);
  // Percentiles come from the always-on histograms.
  ASSERT_FALSE(report.latency.empty());
  for (const auto& l : report.latency) {
    EXPECT_GT(l.count, 0u);
    EXPECT_LE(l.p50_seconds, l.p95_seconds + 1e-12);
    EXPECT_LE(l.p95_seconds, l.p99_seconds + 1e-12);
  }
}

// -------------------------------------------------------------------- log

TEST(Log, LevelParsing) {
  using uoi::support::LogLevel;
  LogLevel level = LogLevel::kOff;
  EXPECT_TRUE(uoi::support::log_level_from_string("debug", level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(uoi::support::log_level_from_string("warning", level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(uoi::support::log_level_from_string("off", level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_FALSE(uoi::support::log_level_from_string("shout", level));
}

TEST(Log, JsonSinkEscapesAndStructuresFields) {
  using uoi::support::LogFormat;
  using uoi::support::LogLevel;
  const std::string path =
      testing::TempDir() + "/uoi_log_json_sink_test.jsonl";
  std::remove(path.c_str());

  const auto initial_level = uoi::support::log_level();
  uoi::support::set_log_level(LogLevel::kInfo);
  uoi::support::set_log_format(LogFormat::kJson);
  uoi::support::set_log_file(path);
  UOI_LOG_INFO.field("path", "a\"b\\c").field("count", 3)
      << "message with \"quotes\"\nand a newline";
  UOI_LOG_DEBUG << "below threshold; must not appear";
  uoi::support::set_log_file("");
  uoi::support::set_log_format(LogFormat::kText);
  uoi::support::set_log_level(initial_level);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(line.find("\"rank\":"), std::string::npos);
  EXPECT_NE(line.find("\"ts\":"), std::string::npos);
  // Quotes, backslashes, and the newline are escaped (one line per record).
  EXPECT_NE(line.find("message with \\\"quotes\\\"\\nand a newline"),
            std::string::npos);
  EXPECT_NE(line.find("\"path\":\"a\\\"b\\\\c\""), std::string::npos);
  EXPECT_NE(line.find("\"count\":\"3\""), std::string::npos);
  EXPECT_FALSE(std::getline(in, line));  // the debug line was dropped
  std::remove(path.c_str());
}

TEST(Log, TextSinkCarriesRankAndFields) {
  using uoi::support::LogLevel;
  const std::string path = testing::TempDir() + "/uoi_log_text_sink_test.log";
  std::remove(path.c_str());
  const auto initial_level = uoi::support::log_level();
  uoi::support::set_log_level(LogLevel::kWarn);
  uoi::support::set_log_file(path);
  Tracer::set_thread_rank(5);
  UOI_LOG_WARN.field("attempts", 2) << "shrinking";
  Tracer::set_thread_rank(0);
  uoi::support::set_log_file("");
  uoi::support::set_log_level(initial_level);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("[warn ]"), std::string::npos);
  EXPECT_NE(line.find("[rank 5]"), std::string::npos);
  EXPECT_NE(line.find("shrinking attempts=2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Log, SetLogFileThrowsOnBadPath) {
  EXPECT_THROW(uoi::support::set_log_file("/nonexistent-dir/x/y.log"),
               uoi::support::IoError);
}

// ---------------------------------------------------------- category names

TEST(TraceCategoryNames, RoundTrip) {
  using uoi::support::trace_category_from_string;
  for (int c = 0; c < static_cast<int>(TraceCategory::kCategoryCount); ++c) {
    const auto category = static_cast<TraceCategory>(c);
    TraceCategory parsed = TraceCategory::kCategoryCount;
    ASSERT_TRUE(
        trace_category_from_string(uoi::support::to_string(category), parsed));
    EXPECT_EQ(parsed, category);
  }
  TraceCategory parsed = TraceCategory::kComputation;
  EXPECT_FALSE(trace_category_from_string("martian", parsed));
}

}  // namespace
