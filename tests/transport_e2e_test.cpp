// End-to-end tests of the socket transport backend: each test forks a real
// multi-process job (one OS process per rank, wired over Unix-domain
// sockets by setting the $UOI_JOB_* environment the launcher would) and
// asserts the results are bit-identical to the same program run on the
// default thread backend at equal rank counts. The fault test SIGKILLs a
// rank mid-run and requires the survivors to detect the death through the
// transport and recover by shrinking.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/uoi_lasso_distributed.hpp"
#include "data/synthetic_regression.hpp"
#include "data/synthetic_var.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/window.hpp"
#include "var/uoi_var.hpp"
#include "var/var_distributed.hpp"

namespace {

using uoi::sim::Cluster;
using uoi::sim::Comm;
using uoi::sim::ReduceOp;

std::vector<std::uint8_t> as_bytes(const std::vector<double>& values) {
  std::vector<std::uint8_t> bytes(values.size() * sizeof(double));
  std::memcpy(bytes.data(), values.data(), bytes.size());
  return bytes;
}

/// Runs `body` in `n` forked processes wired as one socket job and returns
/// the bytes rank 0's process produced, or nullopt if rank 0 failed or the
/// deadline expired. Children that die by SIGKILL are tolerated (the fault
/// tests plan exactly that); any other abnormal child exit fails the job.
std::optional<std::vector<std::uint8_t>> run_forked_job(
    int n, const std::function<std::vector<std::uint8_t>(Comm&)>& body,
    int timeout_seconds = 90) {
  char dir_template[] = "/tmp/uoi-e2e-XXXXXX";
  const char* dir = ::mkdtemp(dir_template);
  if (dir == nullptr) return std::nullopt;

  int result_pipe[2];
  if (::pipe(result_pipe) != 0) return std::nullopt;

  std::vector<pid_t> children;
  for (int rank = 0; rank < n; ++rank) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::close(result_pipe[0]);
      ::setenv("UOI_TRANSPORT", "socket", 1);
      ::setenv("UOI_JOB_RANK", std::to_string(rank).c_str(), 1);
      ::setenv("UOI_JOB_SIZE", std::to_string(n).c_str(), 1);
      ::setenv("UOI_JOB_DIR", dir, 1);
      try {
        std::vector<std::uint8_t> result;
        Cluster::run(n, [&](Comm& comm) { result = body(comm); });
        if (rank == 0) {
          std::size_t written = 0;
          while (written < result.size()) {
            const ssize_t w = ::write(result_pipe[1], result.data() + written,
                                      result.size() - written);
            if (w < 0 && errno == EINTR) continue;
            if (w <= 0) ::_exit(4);
            written += static_cast<std::size_t>(w);
          }
        }
        ::_exit(0);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[forked rank %d] %s\n", rank, e.what());
        ::_exit(3);
      }
    }
    if (pid < 0) return std::nullopt;
    children.push_back(pid);
  }
  ::close(result_pipe[1]);

  // Drain rank 0's result first: the pipe has finite capacity, so waiting
  // for exits before reading could deadlock on a large payload.
  std::vector<std::uint8_t> result;
  std::uint8_t chunk[4096];
  for (;;) {
    const ssize_t r = ::read(result_pipe[0], chunk, sizeof(chunk));
    if (r > 0) {
      result.insert(result.end(), chunk, chunk + r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    break;
  }
  ::close(result_pipe[0]);

  bool ok = true;
  const time_t deadline = ::time(nullptr) + timeout_seconds;
  for (std::size_t i = 0; i < children.size(); ++i) {
    int status = 0;
    for (;;) {
      const pid_t w = ::waitpid(children[i], &status, WNOHANG);
      if (w == children[i]) break;
      if (::time(nullptr) > deadline) {
        ::kill(children[i], SIGKILL);
        ::waitpid(children[i], &status, 0);
        ok = false;
        break;
      }
      ::usleep(10 * 1000);
    }
    const bool killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!clean && !killed) ok = false;
    if (i == 0 && !clean) ok = false;  // rank 0 must survive and succeed
  }

  // Best-effort rendezvous-dir cleanup (the job unlinks its sockets; a
  // SIGKILLed rank may leave one behind).
  std::string cleanup = "rm -rf " + std::string(dir);
  (void)::system(cleanup.c_str());

  if (!ok) return std::nullopt;
  return result;
}

/// The same SPMD program on the thread backend, returning rank 0's bytes.
std::vector<std::uint8_t> run_thread_job(
    int n, const std::function<std::vector<std::uint8_t>(Comm&)>& body) {
  std::vector<std::uint8_t> result;
  Cluster::run(n, [&](Comm& comm) {
    auto bytes = body(comm);
    if (comm.rank() == 0) result = std::move(bytes);
  });
  return result;
}

/// Collectives + p2p + one-sided windows in one program, so one identity
/// check covers every Comm code path the drivers use.
std::vector<std::uint8_t> comm_exercise(Comm& comm) {
  const int rank = comm.rank();
  const int size = comm.size();
  std::vector<double> out;

  std::vector<double> sum(8);
  for (std::size_t i = 0; i < sum.size(); ++i) {
    sum[i] = static_cast<double>(rank + 1) * static_cast<double>(i + 1) * 0.5;
  }
  comm.allreduce(sum, ReduceOp::kSum);
  out.insert(out.end(), sum.begin(), sum.end());

  std::vector<double> biggest = {static_cast<double>((rank * 7) % 5)};
  comm.allreduce(biggest, ReduceOp::kMax);
  out.push_back(biggest[0]);

  std::vector<double> gathered(static_cast<std::size_t>(size) * 2);
  const std::vector<double> mine = {static_cast<double>(rank),
                                    static_cast<double>(rank) * 1.25};
  comm.allgather(mine, gathered);
  out.insert(out.end(), gathered.begin(), gathered.end());

  // Ring p2p: pass a token around and accumulate it.
  std::vector<double> token = {static_cast<double>(rank) + 0.125};
  std::vector<double> incoming(1);
  const int next = (rank + 1) % size;
  const int prev = (rank + size - 1) % size;
  comm.sendrecv(next, token, prev, incoming, /*tag=*/3);
  out.push_back(incoming[0]);

  // One-sided, in fenced phases so every value is deterministic: reads
  // see only pre-phase state, writers touch disjoint slots, and each
  // rank's fetch_add targets its own offset on rank 0.
  std::vector<double> local(4, static_cast<double>(rank) * 2.0);
  {
    uoi::sim::Window window(comm, local);
    window.fence();
    std::vector<double> remote(4);
    window.get(next, 0, remote);
    out.insert(out.end(), remote.begin(), remote.end());
    window.fence();
    const std::vector<double> payload = {100.0 + rank};
    window.put(next, 2, payload);
    window.fence();
    const double before =
        window.fetch_add(0, static_cast<std::size_t>(rank) % 4, 0.5);
    out.push_back(before);
    window.fence();
    out.insert(out.end(), local.begin(), local.end());
  }
  comm.barrier();
  return as_bytes(out);
}

TEST(TransportE2e, CollectivesP2pAndWindowsBitIdenticalAcrossBackends) {
  const int kRanks = 4;
  const auto thread_bytes = run_thread_job(kRanks, comm_exercise);
  const auto socket_bytes = run_forked_job(kRanks, comm_exercise);
  ASSERT_TRUE(socket_bytes.has_value()) << "socket job failed";
  ASSERT_FALSE(thread_bytes.empty());
  EXPECT_EQ(*socket_bytes, thread_bytes);
}

uoi::core::UoiLassoOptions small_lasso_options() {
  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 6;
  options.n_estimation_bootstraps = 3;
  options.n_lambdas = 5;
  options.seed = 4242;
  return options;
}

std::vector<std::uint8_t> lasso_driver_body(Comm& comm) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 80;
  spec.n_features = 12;
  spec.support_size = 3;
  spec.seed = 99;
  const auto data = uoi::data::make_regression(spec);
  const auto fit = uoi::core::uoi_lasso_distributed(
      comm, data.x, data.y, small_lasso_options(), {1, 1});
  auto beta = fit.model.beta;
  beta.push_back(fit.model.intercept);
  return as_bytes(beta);
}

TEST(TransportE2e, LassoDriverBitIdenticalAcrossBackends) {
  const int kRanks = 2;
  const auto thread_bytes = run_thread_job(kRanks, lasso_driver_body);
  const auto socket_bytes = run_forked_job(kRanks, lasso_driver_body);
  ASSERT_TRUE(socket_bytes.has_value()) << "socket job failed";
  EXPECT_EQ(*socket_bytes, thread_bytes);
}

std::vector<std::uint8_t> var_driver_body(Comm& comm) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 4;
  spec.seed = 7;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 90;
  sim.seed = 8;
  const auto series = uoi::var::simulate(truth, sim);

  uoi::var::UoiVarOptions options;
  options.order = 1;
  options.n_selection_bootstraps = 4;
  options.n_estimation_bootstraps = 2;
  options.n_lambdas = 4;
  options.seed = 4321;
  const auto fit =
      uoi::var::uoi_var_distributed(comm, series, options, {1, 1});
  return as_bytes(fit.model.vec_beta);
}

TEST(TransportE2e, VarDriverBitIdenticalAcrossBackends) {
  const int kRanks = 2;
  const auto thread_bytes = run_thread_job(kRanks, var_driver_body);
  const auto socket_bytes = run_forked_job(kRanks, var_driver_body);
  ASSERT_TRUE(socket_bytes.has_value()) << "socket job failed";
  EXPECT_EQ(*socket_bytes, thread_bytes);
}

std::vector<std::uint8_t> lasso_with_kill_body(Comm& comm) {
  // SIGKILL rank 1 at its 5th collective. On the socket backend that is a
  // real process death: survivors see the connection drop, agree on the
  // failure, shrink, and requeue the dead group's cells.
  auto plan = std::make_shared<uoi::sim::FaultPlan>();
  plan->kills.push_back({1, 5});
  comm.set_fault_plan(plan);

  uoi::data::RegressionSpec spec;
  spec.n_samples = 80;
  spec.n_features = 12;
  spec.support_size = 3;
  spec.seed = 99;
  const auto data = uoi::data::make_regression(spec);
  auto options = small_lasso_options();
  options.recovery.max_recovery_attempts = 1;
  const auto fit = uoi::core::uoi_lasso_distributed(comm, data.x, data.y,
                                                    options, {1, 1});
  auto beta = fit.model.beta;
  beta.push_back(fit.model.intercept);
  return as_bytes(beta);
}

TEST(TransportE2e, SigkilledRankIsDetectedAndSurvivorsRecover) {
  const int kRanks = 3;
  // Reference: the same planned fault on the thread backend (where the
  // "kill" is an in-process unwind). Shrink-and-resume must land both
  // backends on the identical final model.
  const auto thread_bytes = run_thread_job(kRanks, lasso_with_kill_body);
  const auto socket_bytes = run_forked_job(kRanks, lasso_with_kill_body);
  ASSERT_TRUE(socket_bytes.has_value()) << "socket job failed";
  ASSERT_FALSE(thread_bytes.empty());
  EXPECT_EQ(*socket_bytes, thread_bytes);
}

}  // namespace
