// Tests for support/telemetry: the snapshot-line builder / parser
// round-trip, the file-sink emitter lifecycle, env-driven options, the
// `uoi top` renderer, and rejection of malformed or foreign-schema lines.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "support/telemetry.hpp"
#include "support/trace.hpp"

namespace {

using uoi::support::MetricsRegistry;
using uoi::support::parse_telemetry_line;
using uoi::support::render_top;
using uoi::support::TelemetryEmitter;
using uoi::support::TelemetryOptions;
using uoi::support::telemetry_options_from_env;
using uoi::support::TraceCategory;
using uoi::support::Tracer;
using uoi::support::TraceTotals;

/// Resets both process-wide singletons around each test so one test's
/// spans/counters never leak into another's snapshot.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().clear();
    MetricsRegistry::instance().clear();
  }
  void TearDown() override {
    Tracer::instance().clear();
    MetricsRegistry::instance().clear();
  }
};

TEST_F(TelemetryTest, SnapshotLineRoundTripsThroughParser) {
  auto& tracer = Tracer::instance();
  tracer.record("solve", TraceCategory::kComputation, /*rank=*/0, 0.0, 0.25);
  tracer.record("allreduce", TraceCategory::kCommunication, /*rank=*/1, 0.1,
                0.5);
  MetricsRegistry::instance().set(0, "progress.cells_total", 40.0);
  MetricsRegistry::instance().add(0, "progress.cells_done", 12.0);

  std::map<int, TraceTotals> prev;
  const std::string line = TelemetryEmitter::build_snapshot_line(
      /*seq=*/3, /*t_seconds=*/1.5, /*interval_ms=*/250, /*dropped=*/1, prev);

  const auto sample = parse_telemetry_line(line);
  ASSERT_TRUE(sample.valid) << sample.error;
  EXPECT_EQ(sample.seq, 3u);
  EXPECT_DOUBLE_EQ(sample.t_seconds, 1.5);
  EXPECT_EQ(sample.interval_ms, 250);
  EXPECT_EQ(sample.dropped_lines, 1u);
  ASSERT_EQ(sample.ranks.size(), 2u);
  EXPECT_EQ(sample.ranks[0].rank, 0);
  ASSERT_EQ(sample.ranks[0].buckets.count("computation"), 1u);
  const auto& compute = sample.ranks[0].buckets.at("computation");
  EXPECT_EQ(compute.calls, 1u);
  EXPECT_DOUBLE_EQ(compute.seconds, 0.25);
  // First snapshot: no previous totals, delta == cumulative.
  EXPECT_DOUBLE_EQ(compute.delta_seconds, 0.25);
  const auto& comm = sample.ranks[1].buckets.at("communication");
  EXPECT_DOUBLE_EQ(comm.seconds, 0.5);
  EXPECT_DOUBLE_EQ(sample.metric(0, "progress.cells_total"), 40.0);
  EXPECT_DOUBLE_EQ(sample.metric_sum("progress.cells_done"), 12.0);
  EXPECT_DOUBLE_EQ(sample.metric(1, "progress.cells_total"), 0.0);
}

TEST_F(TelemetryTest, DeltaSecondsTracksChangeBetweenSnapshots) {
  auto& tracer = Tracer::instance();
  std::map<int, TraceTotals> prev;
  tracer.record("solve", TraceCategory::kComputation, 0, 0.0, 1.0);
  const auto first =
      parse_telemetry_line(TelemetryEmitter::build_snapshot_line(
          0, 0.5, 500, 0, prev));
  ASSERT_TRUE(first.valid) << first.error;
  EXPECT_DOUBLE_EQ(first.ranks[0].buckets.at("computation").delta_seconds,
                   1.0);
  tracer.record("solve", TraceCategory::kComputation, 0, 1.0, 0.25);
  const auto second =
      parse_telemetry_line(TelemetryEmitter::build_snapshot_line(
          1, 1.0, 500, 0, prev));
  ASSERT_TRUE(second.valid) << second.error;
  const auto& bucket = second.ranks[0].buckets.at("computation");
  EXPECT_DOUBLE_EQ(bucket.seconds, 1.25);  // cumulative
  EXPECT_DOUBLE_EQ(bucket.delta_seconds, 0.25);
  EXPECT_EQ(bucket.calls, 2u);
}

TEST_F(TelemetryTest, EmitterWritesValidLinesToFileSink) {
  const std::string path = "telemetry_test_sink.jsonl";
  Tracer::instance().record("solve", TraceCategory::kComputation, 0, 0.0,
                            0.1);
  TelemetryOptions options;
  options.sink = path;
  options.interval_ms = 10;
  TelemetryEmitter emitter(options);
  ASSERT_TRUE(emitter.start());
  EXPECT_TRUE(emitter.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  emitter.stop();
  EXPECT_FALSE(emitter.running());
  EXPECT_GE(emitter.lines_written(), 1u);
  EXPECT_EQ(emitter.lines_dropped(), 0u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::uint64_t last_seq = 0;
  std::size_t n = 0;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto sample = parse_telemetry_line(line);
    ASSERT_TRUE(sample.valid) << sample.error << "\n" << line;
    if (!first) {
      EXPECT_GT(sample.seq, last_seq);
    }
    last_seq = sample.seq;
    first = false;
    ++n;
  }
  in.close();
  std::remove(path.c_str());
  EXPECT_EQ(n, emitter.lines_written());
}

TEST_F(TelemetryTest, UnopenableSinkDisablesEmitterButRunContinues) {
  TelemetryOptions options;
  options.sink = "/nonexistent-dir-for-telemetry/test.jsonl";
  TelemetryEmitter emitter(options);
  EXPECT_FALSE(emitter.start());
  EXPECT_FALSE(emitter.running());
  emitter.stop();  // must be a safe no-op
  EXPECT_EQ(emitter.lines_written(), 0u);
}

TEST_F(TelemetryTest, EmptySinkIsANoOp) {
  TelemetryEmitter emitter{TelemetryOptions{}};
  EXPECT_FALSE(emitter.start());
  EXPECT_FALSE(emitter.running());
  emitter.stop();
}

TEST_F(TelemetryTest, OptionsFromEnvClampInterval) {
  ::setenv("UOI_TELEMETRY_INTERVAL_MS", "25", 1);
  auto options = telemetry_options_from_env("sink.jsonl");
  EXPECT_EQ(options.sink, "sink.jsonl");
  EXPECT_EQ(options.interval_ms, 25);
  ::setenv("UOI_TELEMETRY_INTERVAL_MS", "1", 1);
  EXPECT_EQ(telemetry_options_from_env("s").interval_ms, 10);  // clamp low
  ::setenv("UOI_TELEMETRY_INTERVAL_MS", "999999999", 1);
  EXPECT_EQ(telemetry_options_from_env("s").interval_ms, 60000);  // clamp hi
  ::setenv("UOI_TELEMETRY_INTERVAL_MS", "not-a-number", 1);
  EXPECT_EQ(telemetry_options_from_env("s").interval_ms, 500);  // default
  ::unsetenv("UOI_TELEMETRY_INTERVAL_MS");
  EXPECT_EQ(telemetry_options_from_env("s").interval_ms, 500);
}

#if defined(__unix__) || defined(__APPLE__)
TEST_F(TelemetryTest, SocketSinkResumesShortWritesWithoutTearingRecords) {
  // Regression test for the short-write bug: a nonblocking send() that
  // takes only a prefix of a record must resume from that offset, not drop
  // the rest — otherwise the consumer sees the tail of one record spliced
  // into the head of the next. Force the condition by making each snapshot
  // line far larger than a socket send buffer (so no single send() can
  // take it whole) and draining the consumer side slowly in small chunks.
  auto& metrics = MetricsRegistry::instance();
  const std::string padding(48, 'x');
  for (int i = 0; i < 6000; ++i) {
    metrics.set(i % 4, "padding." + padding + "." + std::to_string(i), 1.0);
  }

  const std::string path = "telemetry_shortwrite.sock";
  std::remove(path.c_str());
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(path.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)), 0);
  ASSERT_EQ(::listen(listener, 1), 0);

  TelemetryOptions options;
  options.sink = "unix:" + path;
  options.interval_ms = 10;
  TelemetryEmitter emitter(options);
  ASSERT_TRUE(emitter.start());
  const int conn = ::accept(listener, nullptr, nullptr);
  ASSERT_GE(conn, 0);
  // Shrink the kernel buffering as far as it will let us, so backpressure
  // (and with it the partial-send path) kicks in early and often.
  int tiny = 1;
  ::setsockopt(conn, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));

  std::string stream;
  char chunk[4096];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (emitter.lines_written() < 4 &&
         std::chrono::steady_clock::now() < deadline) {
    const ssize_t n = ::recv(conn, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n > 0) {
      stream.append(chunk, static_cast<std::size_t>(n));
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  EXPECT_GE(emitter.lines_written(), 4u);
  emitter.stop();
  // The emitter closed its end; drain the delivered remainder to EOF.
  for (;;) {
    const ssize_t n = ::recv(conn, chunk, sizeof(chunk), 0);
    if (n > 0) {
      stream.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    break;
  }
  ::close(conn);
  ::close(listener);
  std::remove(path.c_str());

  // Every newline-terminated record must parse — a torn record (the
  // pre-fix failure) concatenates two half lines into unparseable JSON.
  // An unterminated trailing fragment is fine: it is a record the close
  // legitimately cut off mid-transmission, and it was never counted in
  // lines_written().
  std::size_t parsed = 0;
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = stream.find('\n', start);
    if (nl == std::string::npos) break;
    const std::string line = stream.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;
    const auto sample = parse_telemetry_line(line);
    EXPECT_TRUE(sample.valid)
        << sample.error << "\nline length " << line.size();
    ++parsed;
  }
  EXPECT_EQ(parsed, emitter.lines_written());
}
#endif

TEST_F(TelemetryTest, ParserRejectsMalformedAndForeignLines) {
  EXPECT_FALSE(parse_telemetry_line("").valid);
  EXPECT_FALSE(parse_telemetry_line("not json at all").valid);
  EXPECT_FALSE(parse_telemetry_line("{\"truncated\":").valid);
  const auto wrong_schema = parse_telemetry_line(
      "{\"schema\":\"uoi-telemetry-v999\",\"seq\":0,\"t\":0,"
      "\"interval_ms\":500,\"dropped_lines\":0,\"ranks\":[],\"metrics\":[]}");
  EXPECT_FALSE(wrong_schema.valid);
  EXPECT_FALSE(wrong_schema.error.empty());
  // An array is valid JSON but not a telemetry object.
  EXPECT_FALSE(parse_telemetry_line("[1,2,3]").valid);
}

TEST_F(TelemetryTest, ParserSkipsUnknownKeysForForwardCompatibility) {
  const auto sample = parse_telemetry_line(
      "{\"schema\":\"uoi-telemetry-v1\",\"seq\":7,\"t\":2.0,"
      "\"interval_ms\":100,\"dropped_lines\":0,"
      "\"future_key\":{\"nested\":[1,2,{\"x\":\"y\"}]},"
      "\"ranks\":[{\"rank\":0,\"extra\":true,\"buckets\":{"
      "\"computation\":{\"calls\":2,\"seconds\":0.5,\"delta_seconds\":0.1,"
      "\"p99\":0.2}}}],\"metrics\":[]}");
  ASSERT_TRUE(sample.valid) << sample.error;
  EXPECT_EQ(sample.seq, 7u);
  ASSERT_EQ(sample.ranks.size(), 1u);
  EXPECT_DOUBLE_EQ(sample.ranks[0].buckets.at("computation").seconds, 0.5);
}

TEST_F(TelemetryTest, RenderTopShowsProgressBucketsAndHealth) {
  auto& tracer = Tracer::instance();
  tracer.record("solve", TraceCategory::kComputation, 0, 0.0, 0.75);
  tracer.record("allreduce", TraceCategory::kCommunication, 0, 0.75, 0.25);
  tracer.record("solve", TraceCategory::kComputation, 1, 0.0, 1.0);
  auto& metrics = MetricsRegistry::instance();
  metrics.set(0, "progress.cells_total", 10.0);
  metrics.add(0, "progress.cells_done", 4.0);
  metrics.add(1, "progress.cells_done", 1.0);
  metrics.add(0, "solver_cache.hits", 30.0);
  metrics.add(0, "solver_cache.misses", 10.0);

  std::map<int, TraceTotals> prev;
  const auto sample = parse_telemetry_line(
      TelemetryEmitter::build_snapshot_line(0, 3.25, 500, 0, prev));
  ASSERT_TRUE(sample.valid) << sample.error;
  const std::string top = render_top(sample);
  EXPECT_NE(top.find("uoi top"), std::string::npos);
  // 5 of 10 cells done -> the progress line carries the counts.
  EXPECT_NE(top.find("5"), std::string::npos);
  EXPECT_NE(top.find("10"), std::string::npos);
  // Solver cache: 30 hits / 40 lookups = 75%.
  EXPECT_NE(top.find("75"), std::string::npos);
  // Both ranks appear in the per-rank table.
  EXPECT_NE(top.find("rank"), std::string::npos);
  EXPECT_NE(top.find("compute"), std::string::npos);
}

TEST_F(TelemetryTest, RenderTopOnInvalidSampleDoesNotCrash) {
  const auto bad = parse_telemetry_line("garbage");
  const std::string top = render_top(bad);
  EXPECT_FALSE(top.empty());
}

}  // namespace
