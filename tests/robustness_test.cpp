// Failure-injection and robustness tests: corrupted datasets, solver
// misuse, pathological inputs, and algebraic property sweeps that go
// beyond the per-module unit tests.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/uoi_lasso_distributed.hpp"
#include "data/synthetic_regression.hpp"
#include "data/synthetic_var.hpp"
#include "io/distribution.hpp"
#include "io/h5lite.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/window.hpp"
#include "solvers/admm_lasso.hpp"
#include "solvers/cd_lasso.hpp"
#include "solvers/distributed_admm.hpp"
#include "solvers/lambda_grid.hpp"
#include "solvers/screening.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "var/var_distributed.hpp"

namespace {

using uoi::linalg::Matrix;
using uoi::linalg::Vector;

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  uoi::support::Xoshiro256 rng(seed);
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal();
  }
  return m;
}

// ---- corrupted datasets ----

class CorruptFile {
 public:
  explicit CorruptFile(const std::string& name)
      : base_((std::filesystem::temp_directory_path() / name).string()) {}
  ~CorruptFile() {
    std::error_code ec;
    std::filesystem::remove(uoi::io::stripe_path(base_, 0), ec);
    std::filesystem::remove(uoi::io::stripe_path(base_, 1), ec);
  }
  [[nodiscard]] const std::string& base() const { return base_; }

 private:
  std::string base_;
};

TEST(FailureInjection, BadMagicRejected) {
  CorruptFile tmp("uoi_bad_magic");
  std::ofstream f(uoi::io::stripe_path(tmp.base(), 0), std::ios::binary);
  const char garbage[64] = "this is not an H5-lite dataset at all!";
  f.write(garbage, sizeof(garbage));
  f.close();
  EXPECT_THROW((void)uoi::io::read_info(tmp.base()), uoi::support::IoError);
}

TEST(FailureInjection, TruncatedHeaderRejected) {
  CorruptFile tmp("uoi_trunc_header");
  std::ofstream f(uoi::io::stripe_path(tmp.base(), 0), std::ios::binary);
  const char partial[10] = {0};
  f.write(partial, sizeof(partial));
  f.close();
  EXPECT_THROW((void)uoi::io::read_info(tmp.base()), uoi::support::IoError);
}

TEST(FailureInjection, TruncatedPayloadRejectedOnRead) {
  CorruptFile tmp("uoi_trunc_payload");
  const Matrix data = random_matrix(20, 4, 1);
  uoi::io::write_dataset(tmp.base(), data, 10, 1);
  // Chop the file short.
  const auto path = uoi::io::stripe_path(tmp.base(), 0);
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 64);

  const uoi::io::DatasetReader reader(tmp.base());
  Matrix out;
  EXPECT_THROW(reader.read_rows(0, 20, out), uoi::support::IoError);
}

TEST(FailureInjection, MissingStripeRejected) {
  CorruptFile tmp("uoi_missing_stripe");
  const Matrix data = random_matrix(20, 4, 2);
  uoi::io::write_dataset(tmp.base(), data, 5, 2);
  std::filesystem::remove(uoi::io::stripe_path(tmp.base(), 1));
  const uoi::io::DatasetReader reader(tmp.base());
  Matrix out;
  EXPECT_THROW(reader.read_rows(0, 20, out), uoi::support::IoError);
}

// ---- solver misuse and pathological inputs ----

TEST(FailureInjection, AdmmThrowsOnDemandWhenNotConverged) {
  const auto data = uoi::data::make_regression({});
  uoi::solvers::AdmmOptions options;
  options.max_iterations = 1;  // cannot converge
  options.throw_on_nonconvergence = true;
  EXPECT_THROW(
      (void)uoi::solvers::lasso_admm(data.x, data.y, 0.1, options),
      uoi::support::ConvergenceError);
  // Default: best effort, no throw.
  options.throw_on_nonconvergence = false;
  const auto fit = uoi::solvers::lasso_admm(data.x, data.y, 0.1, options);
  EXPECT_FALSE(fit.converged);
  EXPECT_EQ(fit.iterations, 1u);
}

TEST(FailureInjection, ConstantFeatureIsHandled) {
  // A zero-variance column (constant feature) must not break the solvers.
  Matrix x = random_matrix(50, 5, 3);
  for (std::size_t r = 0; r < x.rows(); ++r) x(r, 2) = 1.0;
  Vector y(50);
  uoi::support::Xoshiro256 rng(4);
  for (auto& v : y) v = rng.normal();
  const auto admm = uoi::solvers::lasso_admm(x, y, 1.0);
  EXPECT_TRUE(admm.converged);
  const auto cd = uoi::solvers::cd_lasso(x, y, 1.0);
  EXPECT_TRUE(cd.converged);
  EXPECT_LT(uoi::linalg::max_abs_diff(admm.beta, cd.beta), 1e-3);
}

TEST(FailureInjection, AllZeroResponseGivesZeroModel) {
  const Matrix x = random_matrix(30, 6, 5);
  Vector y(30, 0.0);
  const auto fit = uoi::solvers::lasso_admm(x, y, 0.5);
  for (const double b : fit.beta) EXPECT_NEAR(b, 0.0, 1e-9);
  EXPECT_THROW((void)uoi::solvers::lambda_grid_for(x, y, 5),
               uoi::support::InvalidArgument);
}

TEST(FailureInjection, SingleSampleProblems) {
  Matrix x{{1.0, 2.0, 3.0}};
  Vector y{6.0};
  const auto fit = uoi::solvers::lasso_admm(x, y, 0.01);
  // Underdetermined: any fit must at least predict the one sample well.
  const double pred = uoi::linalg::dot(x.row(0), fit.beta);
  EXPECT_NEAR(pred, 6.0, 0.5);
}

TEST(FailureInjection, HugeLambdaGivesEmptyModelEverywhere) {
  const auto data = uoi::data::make_regression({});
  for (const double lambda : {1e6, 1e9, 1e12}) {
    const auto fit = uoi::solvers::lasso_admm(data.x, data.y, lambda);
    for (const double b : fit.beta) EXPECT_DOUBLE_EQ(b, 0.0);
  }
}

// ---- algebraic property sweeps ----

class GemmPropertyParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GemmPropertyParam, AssociativityAndDistributivity) {
  const std::uint64_t seed = GetParam();
  const Matrix a = random_matrix(9, 7, seed);
  const Matrix b = random_matrix(7, 8, seed + 1);
  const Matrix c = random_matrix(8, 6, seed + 2);
  const Matrix b2 = random_matrix(7, 8, seed + 3);

  // (A B) C == A (B C)
  Matrix ab(9, 8), ab_c(9, 6), bc(7, 6), a_bc(9, 6);
  uoi::linalg::gemm(1.0, a, b, 0.0, ab);
  uoi::linalg::gemm(1.0, ab, c, 0.0, ab_c);
  uoi::linalg::gemm(1.0, b, c, 0.0, bc);
  uoi::linalg::gemm(1.0, a, bc, 0.0, a_bc);
  EXPECT_LT(uoi::linalg::max_abs_diff(ab_c, a_bc), 1e-10);

  // A (B + B2) == A B + A B2
  Matrix b_sum(7, 8);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 8; ++j) b_sum(i, j) = b(i, j) + b2(i, j);
  }
  Matrix lhs(9, 8), rhs(9, 8);
  uoi::linalg::gemm(1.0, a, b_sum, 0.0, lhs);
  uoi::linalg::gemm(1.0, a, b, 0.0, rhs);
  uoi::linalg::gemm(1.0, a, b2, 1.0, rhs);
  EXPECT_LT(uoi::linalg::max_abs_diff(lhs, rhs), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GemmPropertyParam,
                         ::testing::Values(10, 20, 30, 40));

class SerialDistributedSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SerialDistributedSweep, LassoAgreesAcrossSeeds) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 80;
  spec.n_features = 12;
  spec.support_size = 3;
  spec.seed = GetParam();
  const auto data = uoi::data::make_regression(spec);
  const double lambda = 0.1 * uoi::solvers::lambda_max(data.x, data.y);
  uoi::solvers::AdmmOptions options;
  options.eps_abs = 1e-9;
  options.eps_rel = 1e-7;
  options.max_iterations = 20000;
  const auto serial = uoi::solvers::lasso_admm(data.x, data.y, lambda, options);
  uoi::sim::Cluster::run(3, [&](uoi::sim::Comm& comm) {
    const std::size_t n = data.x.rows();
    const std::size_t begin = n * comm.rank() / comm.size();
    const std::size_t end = n * (comm.rank() + 1) / comm.size();
    const auto fit = uoi::solvers::distributed_lasso_admm(
        comm, data.x.row_block(begin, end - begin),
        std::span<const double>(data.y).subspan(begin, end - begin), lambda,
        options);
    EXPECT_LT(uoi::linalg::max_abs_diff(fit.beta, serial.beta), 2e-3)
        << "seed " << GetParam();
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerialDistributedSweep,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// ---- misc typed-collective coverage ----

TEST(FailureInjection, ByteBcastWorks) {
  uoi::sim::Cluster::run(3, [&](uoi::sim::Comm& comm) {
    std::vector<std::uint8_t> bytes(5, comm.rank() == 1 ? 0xAB : 0x00);
    comm.bcast(bytes, 1);
    for (const auto b : bytes) EXPECT_EQ(b, 0xAB);
  });
}

// ---- checkpoint durability ----

TEST(FailureInjection, ZeroByteCheckpointReturnsNullopt) {
  const auto path =
      (std::filesystem::temp_directory_path() / "uoi_zero_ckpt.txt").string();
  {
    std::ofstream f(path, std::ios::trunc);
  }
  // A crash that left an empty file must read as "no checkpoint", never
  // throw: the run restarts from scratch.
  EXPECT_FALSE(uoi::core::try_load_checkpoint(path, 1234).has_value());
  std::filesystem::remove(path);
}

TEST(FailureInjection, CheckpointDoneSectionRoundTrips) {
  const auto path =
      (std::filesystem::temp_directory_path() / "uoi_done_ckpt.txt").string();
  uoi::core::SelectionCheckpoint ckpt;
  ckpt.fingerprint = 42;
  ckpt.lambdas = {1.0, 0.5};
  ckpt.counts = Matrix(2, 3, 0.0);
  ckpt.counts(0, 1) = 3.0;
  ckpt.counts(1, 2) = 1.0;
  // Scattered completion map: bootstrap 0 fully done, 1 half done, 2 not.
  ckpt.done = Matrix(3, 2, 0.0);
  ckpt.done(0, 0) = 1.0;
  ckpt.done(0, 1) = 1.0;
  ckpt.done(1, 0) = 1.0;
  EXPECT_EQ(ckpt.completed_prefix(), 1u);
  EXPECT_FALSE(ckpt.is_prefix_consistent());
  ckpt.completed_bootstraps = ckpt.completed_prefix();
  uoi::core::save_checkpoint(path, ckpt);

  const auto restored = uoi::core::try_load_checkpoint(path, 42);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->completed_bootstraps, 1u);
  EXPECT_EQ(restored->lambdas, ckpt.lambdas);
  EXPECT_EQ(uoi::linalg::max_abs_diff(restored->counts, ckpt.counts), 0.0);
  EXPECT_EQ(uoi::linalg::max_abs_diff(restored->done, ckpt.done), 0.0);
  EXPECT_FALSE(restored->is_prefix_consistent());
  // A foreign fingerprint is ignored, not an error.
  EXPECT_FALSE(uoi::core::try_load_checkpoint(path, 43).has_value());
  std::filesystem::remove(path);
}

}  // namespace

// ---- fault injection: the simcluster runtime ----

namespace fault_injection_tests {

using uoi::linalg::Matrix;
using uoi::sim::Cluster;
using uoi::sim::Comm;
using uoi::sim::FaultPlan;
using uoi::sim::RankFailedError;
using uoi::sim::ReduceOp;
using uoi::sim::TransientCommError;
using uoi::sim::Window;

std::shared_ptr<const FaultPlan> kill_plan(int rank, std::uint64_t at) {
  auto plan = std::make_shared<FaultPlan>();
  plan->kills.push_back({rank, at});
  return plan;
}

TEST(FaultInjection, KillDetectShrinkResume) {
  const auto plan = kill_plan(2, 3);
  const auto reports = Cluster::run_collect_reports(4, [&](Comm& comm) {
    comm.set_fault_plan(plan);
    bool detected = false;
    try {
      for (int i = 0; i < 10; ++i) {
        double sum = 1.0;
        comm.allreduce(std::span<double>(&sum, 1), ReduceOp::kSum);
      }
    } catch (const RankFailedError&) {
      detected = true;
    }
    // Only survivors reach this point; the victim unwound above.
    ASSERT_TRUE(detected);
    EXPECT_FALSE(comm.is_alive(2));
    EXPECT_EQ(comm.alive_size(), 3);
    Comm shrunk = comm.shrink();
    EXPECT_EQ(shrunk.size(), 3);
    EXPECT_EQ(shrunk.global_rank(), comm.rank());  // old-rank order
    double sum = 1.0;
    shrunk.allreduce(std::span<double>(&sum, 1), ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(sum, 3.0);
  });
  for (const int r : {0, 1, 3}) {
    EXPECT_GE(reports[r].recovery.rank_failures_detected, 1u) << "rank " << r;
    EXPECT_EQ(reports[r].recovery.shrinks, 1u) << "rank " << r;
  }
}

TEST(FaultInjection, DeadRankRaisesOnOneSidedAndRecv) {
  const auto plan = kill_plan(0, 3);
  Cluster::run(2, [&](Comm& comm) {
    comm.set_fault_plan(plan);
    std::vector<double> buffer(2, comm.rank() + 1.0);
    Window window(comm, buffer);
    bool detected = false;
    try {
      window.fence();
      for (int i = 0; i < 8; ++i) comm.barrier();
    } catch (const RankFailedError&) {
      detected = true;
    }
    ASSERT_TRUE(detected);
    std::vector<double> out(2, 0.0);
    EXPECT_THROW(window.get(0, 0, std::span<double>(out)), RankFailedError);
    double x = 0.0;
    EXPECT_THROW(comm.recv(0, std::span<double>(&x, 1)), RankFailedError);
  });
}

TEST(FaultInjection, TransientWindowFaultIsRetriedAndConverges) {
  auto plan = std::make_shared<FaultPlan>();
  plan->onesided.push_back({/*rank=*/1, /*at_op=*/0, /*count=*/2,
                            FaultPlan::OneSidedKind::kTransient, 0.0});
  const auto reports = Cluster::run_collect_reports(2, [&](Comm& comm) {
    comm.set_fault_plan(plan);
    std::vector<double> buffer(4, comm.rank() == 0 ? 7.0 : 0.0);
    Window window(comm, buffer);
    window.fence();
    if (comm.rank() == 1) {
      std::vector<double> out(4, 0.0);
      uoi::sim::retry_onesided(comm, {}, [&] {
        window.get(0, 0, std::span<double>(out));
      });
      for (const double v : out) EXPECT_DOUBLE_EQ(v, 7.0);
    }
    window.fence();
  });
  EXPECT_EQ(reports[1].recovery.transient_faults, 2u);
  EXPECT_EQ(reports[1].recovery.retries, 2u);
  EXPECT_EQ(reports[1].recovery.giveups, 0u);
  EXPECT_GT(reports[1].recovery.backoff_seconds, 0.0);
}

TEST(FaultInjection, RetryBudgetExhaustionRaisesClearError) {
  auto plan = std::make_shared<FaultPlan>();
  plan->onesided.push_back({/*rank=*/1, /*at_op=*/0, /*count=*/10,
                            FaultPlan::OneSidedKind::kTransient, 0.0});
  const auto reports = Cluster::run_collect_reports(2, [&](Comm& comm) {
    comm.set_fault_plan(plan);
    std::vector<double> buffer(4, 1.0);
    Window window(comm, buffer);
    window.fence();
    if (comm.rank() == 1) {
      std::vector<double> out(4, 0.0);
      bool exhausted = false;
      try {
        uoi::sim::retry_onesided(comm, {}, [&] {
          window.get(0, 0, std::span<double>(out));
        });
      } catch (const TransientCommError& error) {
        exhausted = true;
        EXPECT_NE(std::string(error.what()).find("retry budget exhausted"),
                  std::string::npos)
            << error.what();
      }
      EXPECT_TRUE(exhausted);
    }
    window.fence();
  });
  EXPECT_EQ(reports[1].recovery.giveups, 1u);
  EXPECT_EQ(reports[1].recovery.retries, 3u);  // 4 attempts = 3 retries
}

TEST(FaultInjection, CorruptionFlipsOnePayloadBit) {
  auto plan = std::make_shared<FaultPlan>();
  plan->onesided.push_back({/*rank=*/1, /*at_op=*/0, /*count=*/1,
                            FaultPlan::OneSidedKind::kCorrupt, 0.0});
  Cluster::run(2, [&](Comm& comm) {
    comm.set_fault_plan(plan);
    std::vector<double> buffer(3, comm.rank() == 0 ? 7.0 : 0.0);
    Window window(comm, buffer);
    window.fence();
    if (comm.rank() == 1) {
      std::vector<double> out(3, 0.0);
      window.get(0, 0, std::span<double>(out));
      EXPECT_NE(out[0], 7.0);  // first element corrupted...
      EXPECT_TRUE(std::isfinite(out[0]));
      EXPECT_DOUBLE_EQ(out[1], 7.0);  // ...the rest intact
      EXPECT_DOUBLE_EQ(out[2], 7.0);
      window.get(0, 0, std::span<double>(out));  // next op is clean
      EXPECT_DOUBLE_EQ(out[0], 7.0);
    }
    window.fence();
  });
}

TEST(FaultInjection, DelayFaultConsumesWallTime) {
  auto plan = std::make_shared<FaultPlan>();
  plan->onesided.push_back({/*rank=*/1, /*at_op=*/0, /*count=*/1,
                            FaultPlan::OneSidedKind::kDelay, 0.005});
  Cluster::run(2, [&](Comm& comm) {
    comm.set_fault_plan(plan);
    std::vector<double> buffer(2, 1.0);
    Window window(comm, buffer);
    window.fence();
    if (comm.rank() == 1) {
      std::vector<double> out(2, 0.0);
      uoi::support::Stopwatch watch;
      window.get(0, 0, std::span<double>(out));
      EXPECT_GE(watch.seconds(), 0.005);
    }
    window.fence();
  });
}

TEST(FaultInjection, ReshuffleAbsorbsRandomTransients) {
  const std::size_t n = 40;
  const std::size_t cols = 3;
  uoi::support::Xoshiro256 rng(77);
  Matrix data(n, cols);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < cols; ++c) data(r, c) = rng.normal();
  }
  const auto make_held = [&](const Comm& comm) {
    const std::size_t begin = n * static_cast<std::size_t>(comm.rank()) / 4;
    const std::size_t end =
        n * (static_cast<std::size_t>(comm.rank()) + 1) / 4;
    uoi::io::LocalRows held;
    held.rows = Matrix::from_view(data.row_block(begin, end - begin));
    for (std::size_t g = begin; g < end; ++g) held.global_indices.push_back(g);
    return held;
  };

  std::vector<uoi::io::LocalRows> clean(4);
  Cluster::run(4, [&](Comm& comm) {
    clean[comm.rank()] = uoi::io::reshuffle(comm, make_held(comm), n, 5);
  });

  const auto plan = std::make_shared<FaultPlan>(
      FaultPlan::random_transients(/*seed=*/99, /*n_ranks=*/4, /*max_op=*/10,
                                   /*n_faults=*/5));
  const auto reports = Cluster::run_collect_reports(4, [&](Comm& comm) {
    comm.set_fault_plan(plan);
    const auto shuffled = uoi::io::reshuffle(comm, make_held(comm), n, 5);
    EXPECT_EQ(uoi::linalg::max_abs_diff(shuffled.rows,
                                        clean[comm.rank()].rows),
              0.0);
    EXPECT_EQ(shuffled.global_indices, clean[comm.rank()].global_indices);
  });
  std::uint64_t faults = 0;
  std::uint64_t retries = 0;
  std::uint64_t giveups = 0;
  for (const auto& report : reports) {
    faults += report.recovery.transient_faults;
    retries += report.recovery.retries;
    giveups += report.recovery.giveups;
  }
  EXPECT_GE(faults, 1u);
  EXPECT_GE(retries, 1u);
  EXPECT_EQ(giveups, 0u);
}

}  // namespace fault_injection_tests

// ---- fail-recoverable UoI drivers ----

namespace fault_recovery_tests {

using fault_injection_tests::kill_plan;
using uoi::linalg::Matrix;
using uoi::sim::Cluster;
using uoi::sim::Comm;
using uoi::sim::FaultPlan;
using uoi::sim::RankFailedError;

/// Collectives a rank entered, from its folded CommStats: used to place a
/// kill mid-run as a fraction of the fault-free total.
std::uint64_t collective_calls(const uoi::sim::CommStats& stats) {
  std::uint64_t total = 0;
  for (int c = 0; c < static_cast<int>(uoi::sim::CommCategory::kPointToPoint);
       ++c) {
    total += stats.entries[static_cast<std::size_t>(c)].calls;
  }
  return total;
}

uoi::core::UoiLassoOptions lasso_options() {
  uoi::core::UoiLassoOptions options;
  // Every FaultRecovery test below positions its kill by counting a clean
  // run's collective calls, which is only reproducible under a
  // deterministic schedule — work stealing makes the collective sequence
  // timing-dependent. Pin the policy so the suite is independent of
  // UOI_SCHED_POLICY.
  options.schedule = uoi::sched::SchedulePolicy::kCostLpt;
  options.n_selection_bootstraps = 5;
  options.n_estimation_bootstraps = 3;
  options.n_lambdas = 5;
  options.seed = 909;
  options.admm.eps_abs = 1e-8;
  options.admm.eps_rel = 1e-6;
  options.admm.max_iterations = 5000;
  return options;
}

uoi::data::RegressionDataset lasso_data() {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 80;
  spec.n_features = 16;
  spec.support_size = 4;
  spec.noise_stddev = 0.3;
  spec.seed = 44;
  return uoi::data::make_regression(spec);
}

struct LassoRun {
  std::vector<uoi::core::UoiLassoDistributedResult> results;  // index == rank
  std::vector<uoi::sim::RankReport> reports;
};

LassoRun run_lasso(int ranks, const uoi::data::RegressionDataset& data,
                   const uoi::core::UoiLassoOptions& options,
                   const uoi::core::UoiParallelLayout& layout,
                   std::shared_ptr<const FaultPlan> plan) {
  LassoRun run;
  run.results.resize(static_cast<std::size_t>(ranks));
  run.reports = Cluster::run_collect_reports(ranks, [&](Comm& comm) {
    if (plan != nullptr) comm.set_fault_plan(plan);
    run.results[static_cast<std::size_t>(comm.rank())] =
        uoi::core::uoi_lasso_distributed(comm, data.x, data.y, options,
                                         layout);
  });
  return run;
}

void expect_same_model(const uoi::core::UoiLassoDistributedResult& actual,
                       const uoi::core::UoiLassoDistributedResult& expected,
                       bool bit_identical_counts) {
  if (bit_identical_counts) {
    EXPECT_EQ(uoi::linalg::max_abs_diff(actual.selection_counts,
                                        expected.selection_counts),
              0.0);
  }
  ASSERT_EQ(actual.model.candidate_supports.size(),
            expected.model.candidate_supports.size());
  for (std::size_t j = 0; j < expected.model.candidate_supports.size(); ++j) {
    EXPECT_EQ(actual.model.candidate_supports[j],
              expected.model.candidate_supports[j])
        << "candidate support mismatch at lambda index " << j;
  }
  EXPECT_EQ(actual.model.support, expected.model.support);
}

TEST(FaultRecovery, LassoRankKilledMidSelectionIsBitIdentical) {
  const auto data = lasso_data();
  const auto options = lasso_options();
  const uoi::core::UoiParallelLayout layout{5, 1};  // C = 1 throughout

  const auto clean = run_lasso(5, data, options, layout, nullptr);
  // Kill rank 2 a quarter of the way through its fault-free collective
  // schedule: inside the selection loop, past setup.
  const auto kill_at = collective_calls(clean.reports[2].comm) / 4;
  const auto faulty =
      run_lasso(5, data, options, layout, kill_plan(2, kill_at));

  for (const int r : {0, 1, 3, 4}) {
    const auto& result = faulty.results[static_cast<std::size_t>(r)];
    expect_same_model(result, clean.results[0], /*bit_identical_counts=*/true);
    EXPECT_GE(faulty.reports[static_cast<std::size_t>(r)]
                  .recovery.rank_failures_detected,
              1u)
        << "rank " << r;
    EXPECT_GE(faulty.reports[static_cast<std::size_t>(r)].recovery.shrinks, 1u)
        << "rank " << r;
  }
  // At least one survivor accounted for redistributed selection cells.
  std::uint64_t recovered = 0;
  for (const auto& report : faulty.reports) {
    recovered += report.recovery.cells_recovered;
  }
  EXPECT_GE(recovered, 1u);
}

TEST(FaultRecovery, KillMidChainReplayIsBitIdenticalWithScreening) {
  // A rank killed mid-lambda-chain forces survivors to replay screened
  // chains from a cold ChainScreenState. The replay must land on the same
  // supports and counts bit-for-bit, and the screened faulty run must also
  // match the clean unscreened run (the screening byte-identity contract
  // extends through shrink-and-replay).
  const auto data = lasso_data();
  const uoi::core::UoiParallelLayout layout{5, 1};
  auto options = lasso_options();

  options.screen.mode = uoi::solvers::ScreenMode::kOff;
  const auto clean_off = run_lasso(5, data, options, layout, nullptr);

  options.screen.mode = uoi::solvers::ScreenMode::kStrong;
  const auto clean_strong = run_lasso(5, data, options, layout, nullptr);
  expect_same_model(clean_strong.results[0], clean_off.results[0],
                    /*bit_identical_counts=*/true);

  // Kill inside the screened selection loop, past setup, positioned from
  // the strong-mode clean schedule (screening changes collective counts).
  const auto kill_at = collective_calls(clean_strong.reports[2].comm) / 4;
  const auto faulty =
      run_lasso(5, data, options, layout, kill_plan(2, kill_at));
  for (const int r : {0, 1, 3, 4}) {
    const auto& result = faulty.results[static_cast<std::size_t>(r)];
    expect_same_model(result, clean_strong.results[0],
                      /*bit_identical_counts=*/true);
    expect_same_model(result, clean_off.results[0],
                      /*bit_identical_counts=*/true);
    EXPECT_GE(faulty.reports[static_cast<std::size_t>(r)].recovery.shrinks, 1u)
        << "rank " << r;
  }
}

TEST(FaultRecovery, LassoRecoversAcrossConsensusGroups) {
  const auto data = lasso_data();
  const auto options = lasso_options();
  const uoi::core::UoiParallelLayout layout{2, 1};  // 4 ranks -> C = 2

  const auto clean = run_lasso(4, data, options, layout, nullptr);
  const auto kill_at = (2 * collective_calls(clean.reports[3].comm)) / 5;
  const auto faulty =
      run_lasso(4, data, options, layout, kill_plan(3, kill_at));

  for (const int r : {0, 1, 2}) {
    const auto& result = faulty.results[static_cast<std::size_t>(r)];
    expect_same_model(result, clean.results[0], /*bit_identical_counts=*/true);
    EXPECT_GE(faulty.reports[static_cast<std::size_t>(r)].recovery.shrinks, 1u)
        << "rank " << r;
  }
}

TEST(FaultRecovery, ExhaustedRecoveryBudgetPropagates) {
  const auto data = lasso_data();
  auto options = lasso_options();
  options.recovery.max_recovery_attempts = 0;  // no recovery allowed

  const auto clean = run_lasso(4, data, options, {2, 1}, nullptr);
  const auto kill_at = collective_calls(clean.reports[1].comm) / 3;
  const auto plan = kill_plan(1, kill_at);
  EXPECT_THROW(Cluster::run(4,
                            [&](Comm& comm) {
                              comm.set_fault_plan(plan);
                              (void)uoi::core::uoi_lasso_distributed(
                                  comm, data.x, data.y, options, {2, 1});
                            }),
               RankFailedError);
}

TEST(FaultRecovery, TwoFailuresExhaustSingleRecoveryAttempt) {
  const auto data = lasso_data();
  auto options = lasso_options();
  options.recovery.max_recovery_attempts = 1;
  // Per-bootstrap merges bound how long a failure can stay undetected, so
  // the second death always lands after the first recovery completed.
  const auto path = (std::filesystem::temp_directory_path() /
                     "uoi_two_failures_ckpt.txt")
                        .string();
  std::filesystem::remove(path);
  options.recovery.checkpoint_path = path;
  options.recovery.checkpoint_interval = 1;

  const auto clean = run_lasso(4, data, options, {2, 1}, nullptr);
  std::filesystem::remove(path);
  auto plan = std::make_shared<FaultPlan>();
  plan->kills.push_back({1, collective_calls(clean.reports[1].comm) / 4});
  plan->kills.push_back({2, (3 * collective_calls(clean.reports[2].comm)) / 4});
  EXPECT_THROW(Cluster::run(4,
                            [&](Comm& comm) {
                              comm.set_fault_plan(plan);
                              (void)uoi::core::uoi_lasso_distributed(
                                  comm, data.x, data.y, options, {2, 1});
                            }),
               RankFailedError);
  std::filesystem::remove(path);
}

TEST(FaultRecovery, CheckpointCrashRestartResumesAndMatches) {
  const auto data = lasso_data();
  auto options = lasso_options();
  const uoi::core::UoiParallelLayout layout{5, 1};
  const auto path =
      (std::filesystem::temp_directory_path() / "uoi_restart_ckpt.txt")
          .string();
  std::filesystem::remove(path);

  const auto clean = run_lasso(5, data, options, layout, nullptr);

  // Crash run: checkpoint every bootstrap, kill mid-selection, no recovery
  // budget — the job dies, leaving only the checkpoint behind.
  auto crash_options = options;
  crash_options.recovery.checkpoint_path = path;
  crash_options.recovery.checkpoint_interval = 1;
  crash_options.recovery.max_recovery_attempts = 0;
  const auto kill_at = (2 * collective_calls(clean.reports[2].comm)) / 5;
  const auto plan = kill_plan(2, kill_at);
  EXPECT_THROW(
      Cluster::run(5,
                   [&](Comm& comm) {
                     comm.set_fault_plan(plan);
                     (void)uoi::core::uoi_lasso_distributed(
                         comm, data.x, data.y, crash_options, layout);
                   }),
      RankFailedError);
  ASSERT_TRUE(std::filesystem::exists(path));

  // Restart run: same options, no faults. Selection resumes from the
  // checkpoint and the final model matches the fault-free run exactly.
  auto resume_options = options;
  resume_options.recovery.checkpoint_path = path;
  const auto resumed = run_lasso(5, data, resume_options, layout, nullptr);
  for (std::size_t r = 0; r < 5; ++r) {
    expect_same_model(resumed.results[r], clean.results[0],
                      /*bit_identical_counts=*/true);
    EXPECT_GE(resumed.reports[r].recovery.checkpoint_resumes, 1u)
        << "rank " << r;
  }
  std::filesystem::remove(path);
}

TEST(FaultRecovery, VarRankKilledMidSelectionMatchesFaultFree) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 4;
  spec.edges_per_node = 1.0;
  spec.seed = 61;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 100;
  sim.seed = 62;
  const Matrix series = uoi::var::simulate(truth, sim);

  uoi::var::UoiVarOptions options;
  // Deterministic schedule for the same reason as lasso_options(): the
  // kill point below counts a clean run's collectives.
  options.schedule = uoi::sched::SchedulePolicy::kCostLpt;
  options.n_selection_bootstraps = 4;
  options.n_estimation_bootstraps = 2;
  options.n_lambdas = 4;
  options.seed = 63;
  options.admm.eps_abs = 1e-8;
  options.admm.eps_rel = 1e-6;
  options.admm.max_iterations = 5000;

  std::vector<std::optional<uoi::var::UoiVarDistributedResult>> clean_results(
      4);
  const auto clean_reports = Cluster::run_collect_reports(4, [&](Comm& comm) {
    clean_results[static_cast<std::size_t>(comm.rank())] =
        uoi::var::uoi_var_distributed(comm, series, options, {2, 1}, 2);
  });

  const auto kill_at = collective_calls(clean_reports[3].comm) / 3;
  const auto plan = kill_plan(3, kill_at);
  std::vector<std::optional<uoi::var::UoiVarDistributedResult>> faulty_results(
      4);
  const auto faulty_reports = Cluster::run_collect_reports(4, [&](Comm& comm) {
    comm.set_fault_plan(plan);
    faulty_results[static_cast<std::size_t>(comm.rank())] =
        uoi::var::uoi_var_distributed(comm, series, options, {2, 1}, 2);
  });

  for (const int r : {0, 1, 2}) {
    ASSERT_TRUE(faulty_results[static_cast<std::size_t>(r)].has_value());
    const auto& result = *faulty_results[static_cast<std::size_t>(r)];
    const auto& reference = *clean_results[0];
    EXPECT_EQ(uoi::linalg::max_abs_diff(result.selection_counts,
                                        reference.selection_counts),
              0.0);
    ASSERT_EQ(result.model.candidate_supports.size(),
              reference.model.candidate_supports.size());
    for (std::size_t j = 0; j < reference.model.candidate_supports.size();
         ++j) {
      EXPECT_EQ(result.model.candidate_supports[j],
                reference.model.candidate_supports[j])
          << "candidate support mismatch at lambda index " << j;
    }
    EXPECT_EQ(result.model.support, reference.model.support);
    EXPECT_GE(faulty_reports[static_cast<std::size_t>(r)].recovery.shrinks, 1u)
        << "rank " << r;
  }
}

}  // namespace fault_recovery_tests
