// Failure-injection and robustness tests: corrupted datasets, solver
// misuse, pathological inputs, and algebraic property sweeps that go
// beyond the per-module unit tests.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/synthetic_regression.hpp"
#include "io/h5lite.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "simcluster/cluster.hpp"
#include "solvers/admm_lasso.hpp"
#include "solvers/cd_lasso.hpp"
#include "solvers/distributed_admm.hpp"
#include "solvers/lambda_grid.hpp"
#include "support/rng.hpp"

namespace {

using uoi::linalg::Matrix;
using uoi::linalg::Vector;

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  uoi::support::Xoshiro256 rng(seed);
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal();
  }
  return m;
}

// ---- corrupted datasets ----

class CorruptFile {
 public:
  explicit CorruptFile(const std::string& name)
      : base_((std::filesystem::temp_directory_path() / name).string()) {}
  ~CorruptFile() {
    std::error_code ec;
    std::filesystem::remove(uoi::io::stripe_path(base_, 0), ec);
    std::filesystem::remove(uoi::io::stripe_path(base_, 1), ec);
  }
  [[nodiscard]] const std::string& base() const { return base_; }

 private:
  std::string base_;
};

TEST(FailureInjection, BadMagicRejected) {
  CorruptFile tmp("uoi_bad_magic");
  std::ofstream f(uoi::io::stripe_path(tmp.base(), 0), std::ios::binary);
  const char garbage[64] = "this is not an H5-lite dataset at all!";
  f.write(garbage, sizeof(garbage));
  f.close();
  EXPECT_THROW((void)uoi::io::read_info(tmp.base()), uoi::support::IoError);
}

TEST(FailureInjection, TruncatedHeaderRejected) {
  CorruptFile tmp("uoi_trunc_header");
  std::ofstream f(uoi::io::stripe_path(tmp.base(), 0), std::ios::binary);
  const char partial[10] = {0};
  f.write(partial, sizeof(partial));
  f.close();
  EXPECT_THROW((void)uoi::io::read_info(tmp.base()), uoi::support::IoError);
}

TEST(FailureInjection, TruncatedPayloadRejectedOnRead) {
  CorruptFile tmp("uoi_trunc_payload");
  const Matrix data = random_matrix(20, 4, 1);
  uoi::io::write_dataset(tmp.base(), data, 10, 1);
  // Chop the file short.
  const auto path = uoi::io::stripe_path(tmp.base(), 0);
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 64);

  const uoi::io::DatasetReader reader(tmp.base());
  Matrix out;
  EXPECT_THROW(reader.read_rows(0, 20, out), uoi::support::IoError);
}

TEST(FailureInjection, MissingStripeRejected) {
  CorruptFile tmp("uoi_missing_stripe");
  const Matrix data = random_matrix(20, 4, 2);
  uoi::io::write_dataset(tmp.base(), data, 5, 2);
  std::filesystem::remove(uoi::io::stripe_path(tmp.base(), 1));
  const uoi::io::DatasetReader reader(tmp.base());
  Matrix out;
  EXPECT_THROW(reader.read_rows(0, 20, out), uoi::support::IoError);
}

// ---- solver misuse and pathological inputs ----

TEST(FailureInjection, AdmmThrowsOnDemandWhenNotConverged) {
  const auto data = uoi::data::make_regression({});
  uoi::solvers::AdmmOptions options;
  options.max_iterations = 1;  // cannot converge
  options.throw_on_nonconvergence = true;
  EXPECT_THROW(
      (void)uoi::solvers::lasso_admm(data.x, data.y, 0.1, options),
      uoi::support::ConvergenceError);
  // Default: best effort, no throw.
  options.throw_on_nonconvergence = false;
  const auto fit = uoi::solvers::lasso_admm(data.x, data.y, 0.1, options);
  EXPECT_FALSE(fit.converged);
  EXPECT_EQ(fit.iterations, 1u);
}

TEST(FailureInjection, ConstantFeatureIsHandled) {
  // A zero-variance column (constant feature) must not break the solvers.
  Matrix x = random_matrix(50, 5, 3);
  for (std::size_t r = 0; r < x.rows(); ++r) x(r, 2) = 1.0;
  Vector y(50);
  uoi::support::Xoshiro256 rng(4);
  for (auto& v : y) v = rng.normal();
  const auto admm = uoi::solvers::lasso_admm(x, y, 1.0);
  EXPECT_TRUE(admm.converged);
  const auto cd = uoi::solvers::cd_lasso(x, y, 1.0);
  EXPECT_TRUE(cd.converged);
  EXPECT_LT(uoi::linalg::max_abs_diff(admm.beta, cd.beta), 1e-3);
}

TEST(FailureInjection, AllZeroResponseGivesZeroModel) {
  const Matrix x = random_matrix(30, 6, 5);
  Vector y(30, 0.0);
  const auto fit = uoi::solvers::lasso_admm(x, y, 0.5);
  for (const double b : fit.beta) EXPECT_NEAR(b, 0.0, 1e-9);
  EXPECT_THROW((void)uoi::solvers::lambda_grid_for(x, y, 5),
               uoi::support::InvalidArgument);
}

TEST(FailureInjection, SingleSampleProblems) {
  Matrix x{{1.0, 2.0, 3.0}};
  Vector y{6.0};
  const auto fit = uoi::solvers::lasso_admm(x, y, 0.01);
  // Underdetermined: any fit must at least predict the one sample well.
  const double pred = uoi::linalg::dot(x.row(0), fit.beta);
  EXPECT_NEAR(pred, 6.0, 0.5);
}

TEST(FailureInjection, HugeLambdaGivesEmptyModelEverywhere) {
  const auto data = uoi::data::make_regression({});
  for (const double lambda : {1e6, 1e9, 1e12}) {
    const auto fit = uoi::solvers::lasso_admm(data.x, data.y, lambda);
    for (const double b : fit.beta) EXPECT_DOUBLE_EQ(b, 0.0);
  }
}

// ---- algebraic property sweeps ----

class GemmPropertyParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GemmPropertyParam, AssociativityAndDistributivity) {
  const std::uint64_t seed = GetParam();
  const Matrix a = random_matrix(9, 7, seed);
  const Matrix b = random_matrix(7, 8, seed + 1);
  const Matrix c = random_matrix(8, 6, seed + 2);
  const Matrix b2 = random_matrix(7, 8, seed + 3);

  // (A B) C == A (B C)
  Matrix ab(9, 8), ab_c(9, 6), bc(7, 6), a_bc(9, 6);
  uoi::linalg::gemm(1.0, a, b, 0.0, ab);
  uoi::linalg::gemm(1.0, ab, c, 0.0, ab_c);
  uoi::linalg::gemm(1.0, b, c, 0.0, bc);
  uoi::linalg::gemm(1.0, a, bc, 0.0, a_bc);
  EXPECT_LT(uoi::linalg::max_abs_diff(ab_c, a_bc), 1e-10);

  // A (B + B2) == A B + A B2
  Matrix b_sum(7, 8);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 8; ++j) b_sum(i, j) = b(i, j) + b2(i, j);
  }
  Matrix lhs(9, 8), rhs(9, 8);
  uoi::linalg::gemm(1.0, a, b_sum, 0.0, lhs);
  uoi::linalg::gemm(1.0, a, b, 0.0, rhs);
  uoi::linalg::gemm(1.0, a, b2, 1.0, rhs);
  EXPECT_LT(uoi::linalg::max_abs_diff(lhs, rhs), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GemmPropertyParam,
                         ::testing::Values(10, 20, 30, 40));

class SerialDistributedSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SerialDistributedSweep, LassoAgreesAcrossSeeds) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 80;
  spec.n_features = 12;
  spec.support_size = 3;
  spec.seed = GetParam();
  const auto data = uoi::data::make_regression(spec);
  const double lambda = 0.1 * uoi::solvers::lambda_max(data.x, data.y);
  uoi::solvers::AdmmOptions options;
  options.eps_abs = 1e-9;
  options.eps_rel = 1e-7;
  options.max_iterations = 20000;
  const auto serial = uoi::solvers::lasso_admm(data.x, data.y, lambda, options);
  uoi::sim::Cluster::run(3, [&](uoi::sim::Comm& comm) {
    const std::size_t n = data.x.rows();
    const std::size_t begin = n * comm.rank() / comm.size();
    const std::size_t end = n * (comm.rank() + 1) / comm.size();
    const auto fit = uoi::solvers::distributed_lasso_admm(
        comm, data.x.row_block(begin, end - begin),
        std::span<const double>(data.y).subspan(begin, end - begin), lambda,
        options);
    EXPECT_LT(uoi::linalg::max_abs_diff(fit.beta, serial.beta), 2e-3)
        << "seed " << GetParam();
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerialDistributedSweep,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// ---- misc typed-collective coverage ----

TEST(FailureInjection, ByteBcastWorks) {
  uoi::sim::Cluster::run(3, [&](uoi::sim::Comm& comm) {
    std::vector<std::uint8_t> bytes(5, comm.rank() == 1 ? 0xAB : 0x00);
    comm.bcast(bytes, 1);
    for (const auto b : bytes) EXPECT_EQ(b, 0xAB);
  });
}

}  // namespace
