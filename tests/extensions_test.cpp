// Tests for the library extensions beyond the paper's minimal algorithms:
// intercept fitting, soft intersection, median aggregation, VAR order
// selection, and the complex-eigenvalue-robust stability check.

#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.hpp"
#include "core/uoi_lasso.hpp"
#include "core/uoi_lasso_distributed.hpp"
#include "data/synthetic_regression.hpp"
#include "data/synthetic_var.hpp"
#include "linalg/blas.hpp"
#include "simcluster/cluster.hpp"
#include "var/order_selection.hpp"
#include "var/uoi_var.hpp"
#include "var/var_distributed.hpp"
#include "var/var_model.hpp"

namespace {

using uoi::core::UoiLasso;
using uoi::core::UoiLassoOptions;
using uoi::linalg::Matrix;
using uoi::linalg::Vector;

UoiLassoOptions base_options() {
  UoiLassoOptions options;
  options.n_selection_bootstraps = 10;
  options.n_estimation_bootstraps = 6;
  options.n_lambdas = 10;
  options.seed = 808;
  return options;
}

TEST(Intercept, RecoveredOnShiftedData) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 250;
  spec.n_features = 20;
  spec.support_size = 4;
  spec.noise_stddev = 0.2;
  spec.seed = 3;
  const auto data = uoi::data::make_regression(spec);

  // Shift the response: y' = y + 7.5.
  Vector shifted(data.y);
  for (auto& v : shifted) v += 7.5;

  auto options = base_options();
  options.fit_intercept = true;
  const auto fit = UoiLasso(options).fit(data.x, shifted);
  // X columns are ~zero-mean, so the intercept absorbs the shift.
  EXPECT_NEAR(fit.intercept, 7.5, 0.2);
  const auto est = uoi::core::estimation_accuracy(fit.beta, data.beta_true);
  EXPECT_LT(est.relative_l2, 0.1);
}

TEST(Intercept, ZeroWithoutOption) {
  const auto data = uoi::data::make_regression({});
  const auto fit = UoiLasso(base_options()).fit(data.x, data.y);
  EXPECT_EQ(fit.intercept, 0.0);
}

TEST(Intercept, DistributedMatchesSerial) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 120;
  spec.n_features = 16;
  spec.support_size = 4;
  spec.seed = 5;
  const auto data = uoi::data::make_regression(spec);
  Vector shifted(data.y);
  for (auto& v : shifted) v += 3.0;

  auto options = base_options();
  options.fit_intercept = true;
  options.n_selection_bootstraps = 6;
  options.n_estimation_bootstraps = 4;
  options.n_lambdas = 6;
  const auto serial = UoiLasso(options).fit(data.x, shifted);
  uoi::sim::Cluster::run(4, [&](uoi::sim::Comm& comm) {
    const auto distributed = uoi::core::uoi_lasso_distributed(
        comm, data.x, shifted, options, {2, 2});
    EXPECT_NEAR(distributed.model.intercept, serial.intercept, 1e-3);
    EXPECT_LT(
        uoi::linalg::max_abs_diff(distributed.model.beta, serial.beta), 2e-3);
  });
}

TEST(SoftIntersection, ThresholdArithmetic) {
  UoiLassoOptions options;
  options.n_selection_bootstraps = 10;
  options.intersection_fraction = 1.0;
  EXPECT_EQ(uoi::core::intersection_count_threshold(options), 10u);
  options.intersection_fraction = 0.75;
  EXPECT_EQ(uoi::core::intersection_count_threshold(options), 8u);
  options.intersection_fraction = 0.05;
  EXPECT_EQ(uoi::core::intersection_count_threshold(options), 1u);
}

TEST(SoftIntersection, LoosensSupports) {
  // A lower intersection fraction can only grow the candidate supports.
  uoi::data::RegressionSpec spec;
  spec.n_samples = 120;
  spec.n_features = 30;
  spec.support_size = 6;
  spec.noise_stddev = 0.8;
  spec.seed = 7;
  const auto data = uoi::data::make_regression(spec);

  auto strict = base_options();
  strict.intersection_fraction = 1.0;
  const auto strict_fit = UoiLasso(strict).fit(data.x, data.y);

  auto soft = base_options();
  soft.intersection_fraction = 0.6;
  const auto soft_fit = UoiLasso(soft).fit(data.x, data.y);

  ASSERT_EQ(strict_fit.candidate_supports.size(),
            soft_fit.candidate_supports.size());
  for (std::size_t j = 0; j < strict_fit.candidate_supports.size(); ++j) {
    EXPECT_TRUE(strict_fit.candidate_supports[j].is_subset_of(
        soft_fit.candidate_supports[j]))
        << "strict support not contained in soft support at " << j;
  }
}

TEST(SoftIntersection, DistributedMatchesSerial) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 100;
  spec.n_features = 16;
  spec.support_size = 4;
  spec.noise_stddev = 0.6;
  spec.seed = 11;
  const auto data = uoi::data::make_regression(spec);
  auto options = base_options();
  options.intersection_fraction = 0.7;
  options.n_selection_bootstraps = 6;
  options.n_estimation_bootstraps = 3;
  options.n_lambdas = 6;
  const auto serial = UoiLasso(options).fit(data.x, data.y);
  uoi::sim::Cluster::run(6, [&](uoi::sim::Comm& comm) {
    const auto distributed =
        uoi::core::uoi_lasso_distributed(comm, data.x, data.y, options, {3, 2});
    for (std::size_t j = 0; j < serial.candidate_supports.size(); ++j) {
      EXPECT_EQ(distributed.model.candidate_supports[j],
                serial.candidate_supports[j]);
    }
  });
}

TEST(Aggregation, MedianMatchesHandComputed) {
  using uoi::core::aggregate_estimates;
  using uoi::core::EstimationAggregation;
  const std::vector<Vector> winners{{1.0, 10.0}, {2.0, 20.0}, {9.0, 0.0}};
  const Vector mean =
      aggregate_estimates(winners, EstimationAggregation::kMean);
  EXPECT_DOUBLE_EQ(mean[0], 4.0);
  EXPECT_DOUBLE_EQ(mean[1], 10.0);
  const Vector median =
      aggregate_estimates(winners, EstimationAggregation::kMedian);
  EXPECT_DOUBLE_EQ(median[0], 2.0);
  EXPECT_DOUBLE_EQ(median[1], 10.0);
}

TEST(Aggregation, EvenCountMedianAverages) {
  using uoi::core::aggregate_estimates;
  using uoi::core::EstimationAggregation;
  const std::vector<Vector> winners{{1.0}, {3.0}, {100.0}, {2.0}};
  const Vector median =
      aggregate_estimates(winners, EstimationAggregation::kMedian);
  EXPECT_DOUBLE_EQ(median[0], 2.5);
}

TEST(Aggregation, MedianIsRobustToOneBadBootstrap) {
  // Mean is pulled by an outlier winner; median is not.
  uoi::data::RegressionSpec spec;
  spec.n_samples = 200;
  spec.n_features = 12;
  spec.support_size = 3;
  spec.seed = 13;
  const auto data = uoi::data::make_regression(spec);

  auto options = base_options();
  options.aggregation = uoi::core::EstimationAggregation::kMedian;
  const auto median_fit = UoiLasso(options).fit(data.x, data.y);
  options.aggregation = uoi::core::EstimationAggregation::kMean;
  const auto mean_fit = UoiLasso(options).fit(data.x, data.y);
  // Both recover; median at least as well on the support.
  const auto em = uoi::core::estimation_accuracy(median_fit.beta,
                                                 data.beta_true);
  const auto ea =
      uoi::core::estimation_accuracy(mean_fit.beta, data.beta_true);
  EXPECT_LT(em.relative_l2, 0.15);
  EXPECT_LT(ea.relative_l2, 0.15);
}

TEST(Aggregation, DistributedMedianMatchesSerial) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 100;
  spec.n_features = 14;
  spec.support_size = 3;
  spec.seed = 17;
  const auto data = uoi::data::make_regression(spec);
  auto options = base_options();
  options.aggregation = uoi::core::EstimationAggregation::kMedian;
  options.n_selection_bootstraps = 6;
  options.n_estimation_bootstraps = 5;
  options.n_lambdas = 6;
  const auto serial = UoiLasso(options).fit(data.x, data.y);
  uoi::sim::Cluster::run(4, [&](uoi::sim::Comm& comm) {
    const auto distributed =
        uoi::core::uoi_lasso_distributed(comm, data.x, data.y, options, {2, 1});
    EXPECT_LT(
        uoi::linalg::max_abs_diff(distributed.model.beta, serial.beta), 2e-3);
  });
}

TEST(OrderSelection, RecoversTrueOrderVar1) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 6;
  spec.order = 1;
  spec.seed = 19;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 800;
  sim.seed = 20;
  const auto series = uoi::var::simulate(truth, sim);
  const auto result = uoi::var::select_var_order(series, 4);
  EXPECT_EQ(result.best_order, 1u);
  ASSERT_EQ(result.bic.size(), 4u);
  // BIC penalizes extra lags: order 1 strictly best.
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GT(result.bic[i], result.bic[0]);
  }
}

TEST(OrderSelection, RecoversTrueOrderVar2) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 5;
  spec.order = 2;
  spec.edges_per_node = 1.5;
  spec.seed = 21;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 1500;
  sim.seed = 22;
  const auto series = uoi::var::simulate(truth, sim);
  const auto result = uoi::var::select_var_order(series, 4);
  EXPECT_EQ(result.best_order, 2u);
}

TEST(OrderSelection, CriteriaDisagreeConsistently) {
  // AIC penalizes less than BIC, so AIC's pick is never smaller.
  uoi::data::VarSpec spec;
  spec.n_nodes = 4;
  spec.seed = 23;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 400;
  sim.seed = 24;
  const auto series = uoi::var::simulate(truth, sim);
  const auto bic = uoi::var::select_var_order(
      series, 3, uoi::var::OrderCriterion::kBic);
  const auto aic = uoi::var::select_var_order(
      series, 3, uoi::var::OrderCriterion::kAic);
  EXPECT_GE(aic.best_order, bic.best_order);
}

TEST(OrderSelection, RejectsShortSeries) {
  Matrix tiny(6, 4);
  EXPECT_THROW((void)uoi::var::select_var_order(tiny, 3),
               uoi::support::InvalidArgument);
}

TEST(SpectralRadius, ComplexDominantPairIsHandled) {
  // Rotation-scaled system: eigenvalues 0.9 e^{+-i pi/4} — complex pair
  // with |lambda| = 0.9 exactly; a naive last-ratio power iteration
  // oscillates on this case.
  const double r = 0.9;
  const double c = r * std::cos(M_PI / 4.0);
  const double s = r * std::sin(M_PI / 4.0);
  Matrix a{{c, -s}, {s, c}};
  const uoi::var::VarModel model({a});
  EXPECT_NEAR(model.companion_spectral_radius(), 0.9, 0.01);
  EXPECT_TRUE(model.is_stable());
}

TEST(SpectralRadius, ComplexPairAboveOneDetected) {
  const double r = 1.1;
  const double c = r * std::cos(1.0);
  const double s = r * std::sin(1.0);
  Matrix a{{c, -s}, {s, c}};
  const uoi::var::VarModel model({a});
  EXPECT_NEAR(model.companion_spectral_radius(), 1.1, 0.02);
  EXPECT_FALSE(model.is_stable());
}

TEST(UoiVarSoftIntersection, LoosensSupports) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 8;
  spec.seed = 25;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 300;
  sim.seed = 26;
  const auto series = uoi::var::simulate(truth, sim);

  uoi::var::UoiVarOptions strict;
  strict.n_selection_bootstraps = 8;
  strict.n_estimation_bootstraps = 4;
  strict.n_lambdas = 8;
  auto soft = strict;
  soft.intersection_fraction = 0.5;

  const auto strict_fit = uoi::var::UoiVar(strict).fit(series);
  const auto soft_fit = uoi::var::UoiVar(soft).fit(series);
  for (std::size_t j = 0; j < strict_fit.candidate_supports.size(); ++j) {
    EXPECT_TRUE(strict_fit.candidate_supports[j].is_subset_of(
        soft_fit.candidate_supports[j]));
  }
}

}  // namespace

namespace stability_tests {

TEST(EdgeStability, UnanimousEdgesScoreOne) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 8;
  spec.edges_per_node = 1.5;
  spec.seed = 41;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 600;
  sim.seed = 42;
  const auto series = uoi::var::simulate(truth, sim);

  uoi::var::UoiVarOptions options;
  options.n_selection_bootstraps = 10;
  options.n_estimation_bootstraps = 6;
  options.n_lambdas = 10;
  const auto fit = uoi::var::UoiVar(options).fit(series);

  ASSERT_EQ(fit.selection_frequency.size(), fit.vec_beta.size());
  for (const double f : fit.selection_frequency) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  // Strong true edges should be selected by (nearly) every winner.
  const auto& a = truth.coefficient(0);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      if (std::abs(a(i, j)) > 0.3) {
        EXPECT_GE(fit.edge_stability(i, j), 0.8)
            << "strong edge " << j << "->" << i << " unstable";
      }
    }
  }
}

TEST(EdgeStability, DistributedMatchesSerial) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 6;
  spec.seed = 43;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 200;
  sim.seed = 44;
  const auto series = uoi::var::simulate(truth, sim);

  uoi::var::UoiVarOptions options;
  options.n_selection_bootstraps = 4;
  options.n_estimation_bootstraps = 3;
  options.n_lambdas = 5;
  const auto serial = uoi::var::UoiVar(options).fit(series);
  uoi::sim::Cluster::run(4, [&](uoi::sim::Comm& comm) {
    const auto distributed =
        uoi::var::uoi_var_distributed(comm, series, options, {2, 1}, 2);
    ASSERT_EQ(distributed.model.selection_frequency.size(),
              serial.selection_frequency.size());
    EXPECT_LT(uoi::linalg::max_abs_diff(
                  distributed.model.selection_frequency,
                  serial.selection_frequency),
              1e-12);
  });
}

}  // namespace stability_tests

namespace var_criterion_tests {

TEST(UoiVarCriterion, BicWinnersNeverLargerThanMse) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 8;
  spec.seed = 61;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 300;
  sim.seed = 62;
  const auto series = uoi::var::simulate(truth, sim);

  uoi::var::UoiVarOptions options;
  options.n_selection_bootstraps = 8;
  options.n_estimation_bootstraps = 5;
  options.n_lambdas = 8;
  const auto mse_fit = uoi::var::UoiVar(options).fit(series);
  options.criterion = uoi::core::EstimationCriterion::kBic;
  const auto bic_fit = uoi::var::UoiVar(options).fit(series);

  for (std::size_t k = 0; k < options.n_estimation_bootstraps; ++k) {
    EXPECT_LE(
        bic_fit.candidate_supports[bic_fit.chosen_support_per_bootstrap[k]]
            .size(),
        mse_fit.candidate_supports[mse_fit.chosen_support_per_bootstrap[k]]
            .size())
        << "bootstrap " << k;
  }
}

}  // namespace var_criterion_tests
