// Tests for uoi::perf: the analytic models must reproduce the paper's
// qualitative scaling claims (the "shapes" of Table II and Figs. 2-10) and
// basic monotonicity/consistency properties.

#include <gtest/gtest.h>

#include "perfmodel/collectives.hpp"
#include "perfmodel/io_model.hpp"
#include "perfmodel/kernels.hpp"
#include "perfmodel/lasso_cost.hpp"
#include "perfmodel/machine.hpp"
#include "perfmodel/var_cost.hpp"

namespace {

using uoi::perf::knl_profile;
using uoi::perf::MachineProfile;

constexpr std::uint64_t kGiB = 1ULL << 30;

TEST(Collectives, AllreduceMonotoneInRanksAndBytes) {
  const auto m = knl_profile();
  EXPECT_EQ(uoi::perf::allreduce_time(m, 1, 1024), 0.0);
  double previous = 0.0;
  for (const std::uint64_t p : {2u, 16u, 256u, 4096u, 139264u}) {
    const double t = uoi::perf::allreduce_time(m, p, 160000);
    EXPECT_GT(t, previous);
    previous = t;
  }
  EXPECT_GT(uoi::perf::allreduce_time(m, 64, 1 << 20),
            uoi::perf::allreduce_time(m, 64, 1 << 10));
}

TEST(Collectives, MinMaxEnvelopeWidensWithRanks) {
  const auto m = knl_profile();
  const auto small = uoi::perf::allreduce_minmax(m, 4352, 160000);
  const auto large = uoi::perf::allreduce_minmax(m, 278528, 160000);
  EXPECT_LT(small.t_min, small.t_mean);
  EXPECT_LT(small.t_mean, small.t_max);
  // Relative spread grows with log2(P) — Fig. 5's widening envelope.
  const double spread_small = (small.t_max - small.t_min) / small.t_mean;
  const double spread_large = (large.t_max - large.t_min) / large.t_mean;
  EXPECT_GT(spread_large, spread_small);
}

TEST(IoModel, ReproducesTableTwoShape) {
  // Table II: conventional read takes ~100x-1000x longer than the
  // randomized design, and the gap widens with data size.
  const auto m = knl_profile();
  for (const std::uint64_t gb : {128u, 256u, 512u, 1024u}) {
    const std::uint64_t bytes = gb * kGiB;
    const std::uint64_t cores = gb * 34;  // ~Table I ratio
    const double conventional =
        uoi::perf::conventional_read_time(m, bytes, 64 << 20);
    const double randomized =
        uoi::perf::randomized_read_time(m, bytes, cores, true);
    EXPECT_GT(conventional / randomized, 100.0) << gb << " GB";
  }
}

TEST(IoModel, TableTwoAbsoluteMagnitudes) {
  // Spot-check against the paper's measured values (order of magnitude):
  // 1 TB conventional read 11,732 s; randomized read 8.8 s.
  const auto m = knl_profile();
  const double conventional =
      uoi::perf::conventional_read_time(m, 1024 * kGiB, 64 << 20);
  EXPECT_GT(conventional, 5000.0);
  EXPECT_LT(conventional, 25000.0);
  const double randomized =
      uoi::perf::randomized_read_time(m, 1024 * kGiB, 34816, true);
  EXPECT_GT(randomized, 2.0);
  EXPECT_LT(randomized, 60.0);
}

TEST(IoModel, UnstripedReadIsSlower) {
  // Table II's footnote: the 16 GB dataset was not striped and read slower
  // than far larger striped ones.
  const auto m = knl_profile();
  const double unstriped =
      uoi::perf::randomized_read_time(m, 16 * kGiB, 1088, false);
  const double striped_larger =
      uoi::perf::randomized_read_time(m, 128 * kGiB, 4352, true);
  EXPECT_GT(unstriped, striped_larger);
}

TEST(Kernels, RatesMatchPaperMeasurements) {
  const auto m = knl_profile();
  // 2 m k n flops at 30.83 GFLOPS.
  EXPECT_NEAR(uoi::perf::gemm_time(m, 1000, 1000, 1000),
              2e9 / 30.83e9, 1e-4);
  EXPECT_NEAR(uoi::perf::gemv_time(m, 1000, 1000), 2e6 / 1.12e9, 1e-6);
  EXPECT_NEAR(uoi::perf::trsv_time(m, 1000), 2e6 / 0.011e9, 1e-3);
  EXPECT_NEAR(uoi::perf::spmv_time(m, 1000000), 2e6 / 2.08e9, 1e-6);
}

TEST(Kernels, CacheBoostKicksInForSmallPanels) {
  const auto m = knl_profile();
  const double slow = uoi::perf::gemm_time(m, 100, 100, 100, 1ULL << 30);
  const double fast = uoi::perf::gemm_time(m, 100, 100, 100, 1ULL << 20);
  EXPECT_GT(slow, fast);
  EXPECT_NEAR(slow / fast, m.cache_boost, 1e-9);
}

TEST(LassoModel, WeakScalingShapes) {
  // Fig. 4: computation ~ flat (fixed bytes/core), communication grows
  // with core count.
  const uoi::perf::UoiLassoCostModel model;
  std::vector<double> compute, comm;
  for (const auto& point : uoi::perf::table1_lasso_weak_scaling()) {
    uoi::perf::UoiLassoWorkload w;
    w.data_bytes = point.data_gb * kGiB;
    const auto breakdown = model.run(w, point.cores);
    compute.push_back(breakdown.computation);
    comm.push_back(breakdown.communication);
  }
  // Compute stays within 2x of its first value across a 64x core range.
  for (const double c : compute) {
    EXPECT_GT(c, compute.front() * 0.5);
    EXPECT_LT(c, compute.front() * 2.0);
  }
  // Communication strictly grows.
  for (std::size_t i = 1; i < comm.size(); ++i) {
    EXPECT_GT(comm[i], comm[i - 1]);
  }
}

TEST(LassoModel, StrongScalingShapes) {
  // Fig. 6: computation drops with cores (superlinear at the top end),
  // communication grows.
  const uoi::perf::UoiLassoCostModel model;
  std::vector<uoi::perf::RuntimeBreakdown> runs;
  for (const auto& point : uoi::perf::table1_lasso_strong_scaling()) {
    uoi::perf::UoiLassoWorkload w;
    w.data_bytes = point.data_gb * kGiB;
    runs.push_back(model.run(w, point.cores));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_LT(runs[i].computation, runs[i - 1].computation);
    EXPECT_GT(runs[i].communication, runs[i - 1].communication);
  }
  // Superlinearity at the last doubling: better than 2x reduction.
  const double last_ratio =
      runs[runs.size() - 2].computation / runs.back().computation;
  EXPECT_GT(last_ratio, 2.0);
}

TEST(LassoModel, ParallelismConfigurationsFig3Shape) {
  // Fig. 3 sweeps P_B x P_lambda in {16x2, 8x4, 4x8, 2x16} while doubling
  // data and cores together. The model's qualitative content: the four
  // configurations are within a small factor of each other (total work is
  // symmetric in P_B/P_lambda), and communication grows as ADMM_cores
  // double along the weak-scaled series.
  const uoi::perf::UoiLassoCostModel model;
  const std::pair<std::size_t, std::size_t> configs[] = {
      {16, 2}, {8, 4}, {4, 8}, {2, 16}};
  uoi::perf::UoiLassoWorkload w;
  w.b1 = 48;
  w.b2 = 48;
  w.q = 48;

  // Configurations comparable at fixed size.
  w.data_bytes = 16 * kGiB;
  double lo = 1e300, hi = 0.0;
  for (const auto& [pb, pl] : configs) {
    const double total = model.run(w, 2176, pb, pl).total();
    lo = std::min(lo, total);
    hi = std::max(hi, total);
  }
  EXPECT_LT(hi / lo, 3.0);

  // Communication grows along the weak-scaled series (ADMM_cores 68 ->
  // 544), for every configuration.
  for (const auto& [pb, pl] : configs) {
    double previous = 0.0;
    std::uint64_t cores = 2176;
    for (std::uint64_t gb = 16; gb <= 128; gb *= 2, cores *= 2) {
      w.data_bytes = gb * kGiB;
      const double comm = model.run(w, cores, pb, pl).communication;
      EXPECT_GT(comm, previous);
      previous = comm;
    }
  }

  // And grouping beats dedicating every core to one giant consensus group
  // when bootstraps are plentiful (the reason P_B/P_lambda parallelism
  // exists): fewer sequential tasks per group.
  w.data_bytes = 16 * kGiB;
  const auto flat = model.run(w, 2176, 1, 1);
  const auto grouped = model.run(w, 2176, 4, 8);
  EXPECT_LT(grouped.communication, flat.communication);
}

TEST(VarModelCost, ProblemSizeAccountingMatchesTable1) {
  // 128 GB -> p = 356; 8 TB -> p = 1000 (the paper's feature counts).
  const auto w128 = uoi::perf::UoiVarWorkload::from_problem_gb(128);
  EXPECT_NEAR(static_cast<double>(w128.n_features), 356.0, 4.0);
  const auto w8t = uoi::perf::UoiVarWorkload::from_problem_gb(8192);
  EXPECT_NEAR(static_cast<double>(w8t.n_features), 1000.0, 8.0);
  // p = 1000 gives the paper's headline 1M parameters.
  EXPECT_EQ(w8t.n_coefficients() / 1000000, 1u);
}

TEST(VarModelCost, SparsityFormula) {
  uoi::perf::UoiVarWorkload w;
  w.n_features = 95;
  EXPECT_NEAR(w.design_sparsity(), 0.98947, 1e-4);  // the paper's example
}

TEST(VarModelCost, WeakScalingDistributionDominatesAtLargeScale) {
  // Fig. 9: computation ~ flat; distribution grows and overtakes
  // computation for problems >= 2 TB.
  const uoi::perf::UoiVarCostModel model;
  std::vector<uoi::perf::RuntimeBreakdown> runs;
  for (const auto& point : uoi::perf::table1_var_weak_scaling()) {
    const auto w = uoi::perf::UoiVarWorkload::from_problem_gb(
        static_cast<double>(point.data_gb));
    runs.push_back(model.run(w, point.cores));
  }
  for (const auto& r : runs) {
    EXPECT_GT(r.computation, runs.front().computation * 0.4);
    EXPECT_LT(r.computation, runs.front().computation * 2.5);
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_GT(runs[i].distribution, runs[i - 1].distribution);
  }
  // Crossover: distribution below compute at 128 GB, above at 8 TB.
  EXPECT_LT(runs.front().distribution, runs.front().computation);
  EXPECT_GT(runs.back().distribution, runs.back().computation);
}

TEST(VarModelCost, StrongScalingShapes) {
  // Fig. 10: computation ~ ideal 1/P; distribution grows with P.
  const uoi::perf::UoiVarCostModel model;
  std::vector<uoi::perf::RuntimeBreakdown> runs;
  const auto w = uoi::perf::UoiVarWorkload::from_problem_gb(1024);
  for (const auto& point : uoi::perf::table1_var_strong_scaling()) {
    runs.push_back(model.run(w, point.cores));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_NEAR(runs[i - 1].computation / runs[i].computation, 2.0, 0.2);
    EXPECT_GT(runs[i].distribution, runs[i - 1].distribution);
  }
}

TEST(VarModelCost, ApplicationRuntimesMatchPaperWithinFactor) {
  // §VI absolute calibration points.
  const uoi::perf::UoiVarCostModel model;

  // S&P: 470 companies, 195 samples, 2,176 cores ->
  // compute 376.87 s, kron+vec 16.409 s.
  uoi::perf::UoiVarWorkload stock;
  stock.n_features = 470;
  stock.n_samples = 195;
  const auto sp = model.run(stock, 2176);
  EXPECT_GT(sp.computation, 376.87 / 4.0);
  EXPECT_LT(sp.computation, 376.87 * 4.0);
  EXPECT_GT(sp.distribution, 16.409 / 6.0);
  EXPECT_LT(sp.distribution, 16.409 * 6.0);

  // Neuroscience: 192 channels, 51,111 samples, 81,600 cores ->
  // compute 96.9 s, comm 1598.7 s, distribution 3034.4 s.
  uoi::perf::UoiVarWorkload neuro;
  neuro.n_features = 192;
  neuro.n_samples = 51111;
  const auto nh = model.run(neuro, 81600);
  EXPECT_GT(nh.computation, 96.9 / 4.0);
  EXPECT_LT(nh.computation, 96.9 * 4.0);
  EXPECT_GT(nh.distribution, 3034.4 / 4.0);
  EXPECT_LT(nh.distribution, 3034.4 * 4.0);
  EXPECT_GT(nh.communication, 1598.7 / 4.0);
  EXPECT_LT(nh.communication, 1598.7 * 4.0);
  // The qualitative story: at this scale communication + distribution
  // dwarf computation.
  EXPECT_GT(nh.communication + nh.distribution, nh.computation);
}

TEST(VarModelCost, PbParallelismRelievesDistribution) {
  // §V: "One of the ways to avoid the problem is by utilizing P_B
  // parallelism."
  const uoi::perf::UoiVarCostModel model;
  const auto w = uoi::perf::UoiVarWorkload::from_problem_gb(2048);
  const auto flat = model.run(w, 34816, 1, 1);
  const auto pb = model.run(w, 34816, 5, 1);
  EXPECT_LT(pb.distribution, flat.distribution);
}

}  // namespace

namespace ring_model_tests {

TEST(Collectives, RingVsHalvingDoublingCrossover) {
  // Small payloads favor the log-latency algorithm; the ring's latency
  // term grows linearly with P, so at scale it must not win for the
  // paper's 20k-double arrays.
  const auto m = uoi::perf::knl_profile();
  EXPECT_LT(uoi::perf::allreduce_time(m, 139264, 160000),
            uoi::perf::allreduce_ring_time(m, 139264, 160000));
  // Huge payloads on few ranks: ring's bandwidth optimality wins or ties.
  EXPECT_LE(uoi::perf::allreduce_best_time(m, 16, 1ULL << 30),
            uoi::perf::allreduce_time(m, 16, 1ULL << 30));
  // best() is never worse than either algorithm.
  for (const std::uint64_t p : {2u, 64u, 4096u}) {
    for (const std::uint64_t bytes : {64u, 1u << 20}) {
      const double best = uoi::perf::allreduce_best_time(m, p, bytes);
      EXPECT_LE(best, uoi::perf::allreduce_time(m, p, bytes));
      EXPECT_LE(best, uoi::perf::allreduce_ring_time(m, p, bytes));
    }
  }
}

}  // namespace ring_model_tests
