// Tests for report/event_dag: exact critical-path extraction over
// synthetic stamped event lists (where the true longest path is known by
// construction) and the what-if forward replay, plus the degraded-input
// failure modes (`uoi analyze` falls back to the lower bound on those).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "report/event_dag.hpp"
#include "support/trace.hpp"

namespace {

using uoi::report::exact_critical_path;
using uoi::report::what_if_replay;
using uoi::report::WhatIfScale;
using uoi::support::kFlowRecv;
using uoi::support::kFlowSend;
using uoi::support::TraceCategory;
using uoi::support::TraceEvent;
using uoi::support::TraceStamp;

TraceEvent make_event(std::string name, TraceCategory category, int rank,
                      double start, double duration) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = category;
  e.rank = rank;
  e.start_seconds = start;
  e.duration_seconds = duration;
  return e;
}

TraceEvent make_collective(int rank, double start, double duration,
                           std::int64_t seq, std::int64_t edge,
                           std::int64_t comm = 0) {
  auto e = make_event("allreduce", TraceCategory::kCommunication, rank, start,
                      duration);
  e.stamp.comm = comm;
  e.stamp.seq = seq;
  e.stamp.edge = edge;
  return e;
}

TraceEvent make_p2p(int rank, int peer, double start, double duration,
                    std::int64_t seq, std::int64_t edge, int flow,
                    int tag = 0) {
  auto e = make_event("point-to-point", TraceCategory::kCommunication, rank,
                      start, duration);
  e.stamp.comm = 0;
  e.stamp.seq = seq;
  e.stamp.edge = edge;
  e.stamp.peer = peer;
  e.stamp.tag = tag;
  e.stamp.flow = flow;
  return e;
}

/// Two ranks, one collective. Rank 1 computes 1.0 s before entering the
/// collective; rank 0 computes 0.2 s and waits. The true critical path is
/// rank 0's collective exit <- (cross-rank jump) <- rank 1's compute.
std::vector<TraceEvent> straggler_events() {
  std::vector<TraceEvent> events;
  events.push_back(
      make_event("solve", TraceCategory::kComputation, 0, 0.0, 0.2));
  events.push_back(make_collective(0, 0.2, 0.85, /*seq=*/0, /*edge=*/0));
  events.push_back(
      make_event("solve", TraceCategory::kComputation, 1, 0.0, 1.0));
  events.push_back(make_collective(1, 1.0, 0.05, /*seq=*/0, /*edge=*/0));
  return events;
}

TEST(EventDag, EmptyInputIsInvalid) {
  const auto path = exact_critical_path({});
  EXPECT_FALSE(path.valid);
  EXPECT_FALSE(path.failure.empty());
}

TEST(EventDag, UnstampedEventsAreInvalidWithExplanation) {
  std::vector<TraceEvent> events;
  events.push_back(
      make_event("solve", TraceCategory::kComputation, 0, 0.0, 1.0));
  const auto path = exact_critical_path(events);
  EXPECT_FALSE(path.valid);
  EXPECT_NE(path.failure.find("stamp"), std::string::npos) << path.failure;
}

TEST(EventDag, PathSegmentsTileTheWindowExactly) {
  const auto path = exact_critical_path(straggler_events());
  ASSERT_TRUE(path.valid) << path.failure;
  EXPECT_DOUBLE_EQ(path.window_seconds, 1.05);
  // Segments tile [first start, last end] by construction — the exact-CP
  // reconciliation guarantee RunReport's 1% gate checks in CI.
  EXPECT_NEAR(path.path_seconds, path.window_seconds, 1e-12);
  double sum = 0.0;
  for (const auto& seg : path.segments) sum += seg.duration_seconds;
  EXPECT_NEAR(sum, path.path_seconds, 1e-12);
  EXPECT_EQ(path.n_events, 4u);
  EXPECT_EQ(path.n_stamped, 2u);
  EXPECT_EQ(path.n_collectives, 1u);
}

TEST(EventDag, CollectiveJumpsToLastArriver) {
  const auto path = exact_critical_path(straggler_events());
  ASSERT_TRUE(path.valid) << path.failure;
  // The path must hop rank 0 -> rank 1 (the straggler) and attribute the
  // straggler's compute, not rank 0's wait inside the collective.
  EXPECT_GE(path.n_rank_jumps, 1u);
  EXPECT_NEAR(path.category(TraceCategory::kComputation), 1.0, 1e-9);
  EXPECT_NEAR(path.category(TraceCategory::kCommunication), 0.05, 1e-9);
  bool straggler_compute_on_path = false;
  for (const auto& seg : path.segments) {
    if (seg.rank == 1 && seg.category == TraceCategory::kComputation) {
      straggler_compute_on_path = true;
    }
    EXPECT_NE(seg.rank == 0 && seg.category == TraceCategory::kComputation &&
                  seg.duration_seconds > 0.25,
              true)
        << "rank 0's pre-collective wait must not dominate the path";
  }
  EXPECT_TRUE(straggler_compute_on_path);
}

TEST(EventDag, MatchedRecvJumpsToSender) {
  // Rank 0 sends at t=1.0 after 1.0 s of compute; rank 1 posts the recv at
  // t=0.1, blocks until the message lands at t=1.2, and finishes the copy
  // at t=1.25. The path is recv tail <- sender's deposit <- sender compute.
  std::vector<TraceEvent> events;
  events.push_back(
      make_event("solve", TraceCategory::kComputation, 0, 0.0, 1.0));
  events.push_back(make_p2p(0, 1, 1.0, 0.2, /*seq=*/0, /*edge=*/0,
                            kFlowSend));
  events.push_back(
      make_event("setup", TraceCategory::kComputation, 1, 0.0, 0.1));
  events.push_back(make_p2p(1, 0, 0.1, 1.15, /*seq=*/0, /*edge=*/0,
                            kFlowRecv));
  const auto path = exact_critical_path(events);
  ASSERT_TRUE(path.valid) << path.failure;
  EXPECT_EQ(path.n_matched_p2p, 1u);
  EXPECT_EQ(path.n_rank_jumps, 1u);
  EXPECT_NEAR(path.path_seconds, path.window_seconds, 1e-12);
  // The sender's compute dominates; rank 1's blocked recv must only be
  // charged the post-deposit tail (0.05 s), not the 1.1 s wait.
  EXPECT_NEAR(path.category(TraceCategory::kComputation), 1.0, 1e-9);
  EXPECT_NEAR(path.category(TraceCategory::kCommunication), 0.25, 1e-9);
}

TEST(EventDag, WhatIfFactorOneReproducesMeasuredWall) {
  const auto result = what_if_replay(straggler_events(), {});
  ASSERT_TRUE(result.valid) << result.failure;
  EXPECT_DOUBLE_EQ(result.measured_seconds, 1.05);
  EXPECT_NEAR(result.baseline_seconds, result.measured_seconds, 1e-9);
  EXPECT_NEAR(result.predicted_seconds, result.measured_seconds, 1e-9);
  EXPECT_NEAR(result.speedup(), 1.0, 1e-9);
}

TEST(EventDag, WhatIfZeroCommunicationLeavesComputeBound) {
  const auto result = what_if_replay(
      straggler_events(), {{TraceCategory::kCommunication, 0.0}});
  ASSERT_TRUE(result.valid) << result.failure;
  // With collective service time removed, the run is bounded by the
  // straggler's 1.0 s of compute.
  EXPECT_NEAR(result.predicted_seconds, 1.0, 1e-9);
  EXPECT_GT(result.speedup(), 1.0);
}

TEST(EventDag, WhatIfScalesComputation) {
  const auto result = what_if_replay(straggler_events(),
                                     {{TraceCategory::kComputation, 0.5}});
  ASSERT_TRUE(result.valid) << result.failure;
  // Straggler compute halves to 0.5 s; its collective tail (0.05 s) still
  // gates the release. Rank 0 enters at 0.1 and leaves with the group.
  EXPECT_NEAR(result.predicted_seconds, 0.55, 1e-9);
}

TEST(EventDag, WhatIfReplayDoesNotDeadlockOnChainedDependencies) {
  // collective -> p2p -> collective across three ranks; replay must order
  // releases causally without deadlocking or losing events.
  //   rank 0: solve 0.1 | coll A [0.1,0.35] | send->2 [0.36,0.38]
  //           | coll B [0.39,0.45]
  //   rank 1: solve 0.2 | coll A [0.2,0.35]  | coll B [0.36,0.45]
  //   rank 2: solve 0.3 | coll A [0.3,0.35]  | recv<-0 [0.35,0.39]
  //           | coll B [0.40,0.45]
  std::vector<TraceEvent> events;
  events.push_back(
      make_event("solve", TraceCategory::kComputation, 0, 0.0, 0.1));
  events.push_back(make_collective(0, 0.1, 0.25, /*seq=*/0, /*edge=*/0));
  events.push_back(make_p2p(0, 2, 0.36, 0.02, /*seq=*/1, /*edge=*/0,
                            kFlowSend, /*tag=*/5));
  events.push_back(make_collective(0, 0.39, 0.06, /*seq=*/2, /*edge=*/1));
  events.push_back(
      make_event("solve", TraceCategory::kComputation, 1, 0.0, 0.2));
  events.push_back(make_collective(1, 0.2, 0.15, /*seq=*/0, /*edge=*/0));
  events.push_back(make_collective(1, 0.36, 0.09, /*seq=*/1, /*edge=*/1));
  events.push_back(
      make_event("solve", TraceCategory::kComputation, 2, 0.0, 0.3));
  events.push_back(make_collective(2, 0.3, 0.05, /*seq=*/0, /*edge=*/0));
  events.push_back(make_p2p(2, 0, 0.35, 0.04, /*seq=*/1, /*edge=*/0,
                            kFlowRecv, /*tag=*/5));
  events.push_back(make_collective(2, 0.40, 0.05, /*seq=*/2, /*edge=*/1));

  const auto baseline = what_if_replay(events, {});
  ASSERT_TRUE(baseline.valid) << baseline.failure;
  EXPECT_NEAR(baseline.measured_seconds, 0.45, 1e-12);
  EXPECT_NEAR(baseline.predicted_seconds, baseline.measured_seconds, 1e-9);
  const auto faster = what_if_replay(
      events, {{TraceCategory::kCommunication, 0.5}});
  ASSERT_TRUE(faster.valid) << faster.failure;
  // Hand-replayed: coll A releases at 0.3 (+0.025 service), rank 0
  // deposits at 0.345, rank 2 leaves the recv at 0.35, coll B releases at
  // 0.36 (+0.025) -> 0.385 s wall.
  EXPECT_NEAR(faster.predicted_seconds, 0.385, 1e-9);
  EXPECT_LT(faster.predicted_seconds, baseline.predicted_seconds);
  EXPECT_GE(faster.predicted_seconds, 0.3);  // compute floor remains

  const auto path = exact_critical_path(events);
  ASSERT_TRUE(path.valid) << path.failure;
  EXPECT_NEAR(path.path_seconds, path.window_seconds, 1e-12);
  EXPECT_EQ(path.n_collectives, 2u);
  EXPECT_EQ(path.n_matched_p2p, 1u);
  EXPECT_GE(path.n_rank_jumps, 3u);  // B->last arriver, recv->send, A->last
}

TEST(EventDag, WhatIfEmptyInputIsInvalid) {
  const auto result = what_if_replay({}, {});
  EXPECT_FALSE(result.valid);
  EXPECT_FALSE(result.failure.empty());
}

}  // namespace
