// Tests for the cross-rank causal stamps on uoi::sim communication
// events (support::TraceStamp) and the trace plumbing built on them:
//
//   - every stamped event of a communicator handle carries a monotone
//     per-handle sequence id, including across split/dup children (which
//     deliberately restart at zero on their own comm id);
//   - collectives share one (comm, edge) key across all participating
//     ranks; p2p sends/recvs pair up via per-(peer, tag) edge counters
//     (and survive rank rebinding through global ids);
//   - shrink recovery groups key on a dedicated edge counter even though
//     survivors reach shrink() through asymmetric failure paths;
//   - the Chrome-trace export writes stamp args + Perfetto flow events,
//     and report::read_chrome_trace_file round-trips the stamps;
//   - read_and_merge_trace_files aligns per-rank trace files on shared
//     collective stamps.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "report/trace_reader.hpp"
#include "simcluster/cluster.hpp"
#include "support/trace.hpp"

namespace {

using uoi::sim::Cluster;
using uoi::sim::Comm;
using uoi::sim::FaultPlan;
using uoi::sim::RankFailedError;
using uoi::sim::ReduceOp;
using uoi::support::TraceCategory;
using uoi::support::TraceEvent;
using uoi::support::Tracer;

/// Runs `body` on `ranks` ranks with event capture on and returns the
/// captured events (capture state restored afterwards).
template <typename Body>
std::vector<TraceEvent> capture_run(int ranks, Body&& body) {
  auto& tracer = Tracer::instance();
  tracer.clear();
  tracer.set_capture_events(true);
  Cluster::run(ranks, body);
  auto events = tracer.events();
  tracer.set_capture_events(false);
  tracer.clear();
  return events;
}

std::vector<const TraceEvent*> stamped_of_rank(
    const std::vector<TraceEvent>& events, int rank) {
  std::vector<const TraceEvent*> out;
  for (const auto& e : events) {
    if (e.rank == rank && e.stamp.stamped()) out.push_back(&e);
  }
  return out;
}

TEST(CausalStamp, SequenceIdsAreMonotonePerRank) {
  const auto events = capture_run(3, [](Comm& comm) {
    double x = comm.rank();
    for (int i = 0; i < 4; ++i) {
      comm.allreduce(std::span<double>(&x, 1), ReduceOp::kSum);
    }
    comm.barrier();
    comm.bcast(std::span<double>(&x, 1), 0);
  });
  for (int rank = 0; rank < 3; ++rank) {
    const auto stamped = stamped_of_rank(events, rank);
    ASSERT_FALSE(stamped.empty()) << "rank " << rank;
    // All on the world communicator; seq must be strictly increasing in
    // program (start-time) order, starting at 0.
    std::vector<const TraceEvent*> ordered = stamped;
    std::sort(ordered.begin(), ordered.end(),
              [](const TraceEvent* a, const TraceEvent* b) {
                return a->start_seconds < b->start_seconds;
              });
    for (std::size_t i = 0; i < ordered.size(); ++i) {
      EXPECT_EQ(ordered[i]->stamp.seq, static_cast<std::int64_t>(i))
          << "rank " << rank << " event " << ordered[i]->name;
      EXPECT_EQ(ordered[i]->stamp.comm, ordered[0]->stamp.comm);
    }
  }
}

TEST(CausalStamp, CollectivesShareOneEdgeAcrossRanks) {
  constexpr int kRanks = 4;
  const auto events = capture_run(kRanks, [](Comm& comm) {
    double x = 1.0;
    comm.allreduce(std::span<double>(&x, 1), ReduceOp::kSum);
    comm.barrier();
    comm.allreduce(std::span<double>(&x, 1), ReduceOp::kMax);
  });
  // Group by (comm, edge, name): every group must contain one event per
  // rank — that is the cross-rank matching contract the event DAG uses.
  std::map<std::tuple<std::int64_t, std::int64_t, std::string>, std::set<int>>
      groups;
  for (const auto& e : events) {
    if (!e.stamp.stamped() || e.stamp.edge < 0 || e.stamp.peer >= 0) continue;
    groups[{e.stamp.comm, e.stamp.edge, e.name}].insert(e.rank);
  }
  ASSERT_GE(groups.size(), 3u);
  for (const auto& [key, ranks] : groups) {
    EXPECT_EQ(ranks.size(), static_cast<std::size_t>(kRanks))
        << std::get<2>(key) << " edge " << std::get<1>(key);
  }
}

TEST(CausalStamp, PointToPointEdgesMatchSendToRecv) {
  const auto events = capture_run(2, [](Comm& comm) {
    double buf[2] = {0.0, 0.0};
    if (comm.rank() == 0) {
      for (int i = 0; i < 3; ++i) {
        buf[0] = i;
        comm.send(1, std::span<const double>(buf, 1), /*tag=*/7);
      }
      comm.recv(1, std::span<double>(buf, 1), /*tag=*/9);
    } else {
      for (int i = 0; i < 3; ++i) {
        comm.recv(0, std::span<double>(buf, 1), /*tag=*/7);
      }
      comm.send(0, std::span<const double>(buf, 1), /*tag=*/9);
    }
  });
  using uoi::support::kFlowRecv;
  using uoi::support::kFlowSend;
  // Key a p2p edge by (comm, src, dst, tag, edge); each must appear
  // exactly once per direction.
  std::map<std::tuple<std::int64_t, int, int, int, std::int64_t>, int> sends;
  std::map<std::tuple<std::int64_t, int, int, int, std::int64_t>, int> recvs;
  for (const auto& e : events) {
    if (!e.stamp.stamped() || e.stamp.flow == 0) continue;
    EXPECT_GE(e.stamp.edge, 0);
    EXPECT_GE(e.stamp.peer, 0);
    if (e.stamp.flow == kFlowSend) {
      ++sends[{e.stamp.comm, e.rank, e.stamp.peer, e.stamp.tag,
               e.stamp.edge}];
    } else if (e.stamp.flow == kFlowRecv) {
      ++recvs[{e.stamp.comm, e.stamp.peer, e.rank, e.stamp.tag,
               e.stamp.edge}];
    }
  }
  ASSERT_EQ(sends.size(), 4u);  // 3 on tag 7 + 1 on tag 9
  EXPECT_EQ(recvs.size(), sends.size());
  for (const auto& [key, n] : sends) {
    EXPECT_EQ(n, 1);
    EXPECT_EQ(recvs.count(key), 1u)
        << "unmatched send edge " << std::get<4>(key);
  }
}

TEST(CausalStamp, SplitChildrenGetFreshCommIdAndRestartSeq) {
  const auto events = capture_run(4, [](Comm& comm) {
    double x = 1.0;
    comm.allreduce(std::span<double>(&x, 1), ReduceOp::kSum);
    Comm half = comm.split(comm.rank() % 2, comm.rank());
    half.allreduce(std::span<double>(&x, 1), ReduceOp::kSum);
    half.barrier();
  });
  for (int rank = 0; rank < 4; ++rank) {
    const auto stamped = stamped_of_rank(events, rank);
    std::set<std::int64_t> comm_ids;
    std::map<std::int64_t, std::vector<std::int64_t>> seq_by_comm;
    for (const auto* e : stamped) {
      comm_ids.insert(e->stamp.comm);
      seq_by_comm[e->stamp.comm].push_back(e->stamp.seq);
    }
    // World + this rank's split child (split ids differ by color, but
    // each rank sees exactly two handles).
    EXPECT_EQ(comm_ids.size(), 2u) << "rank " << rank;
    for (auto& [comm_id, seqs] : seq_by_comm) {
      std::sort(seqs.begin(), seqs.end());
      for (std::size_t i = 0; i < seqs.size(); ++i) {
        EXPECT_EQ(seqs[i], static_cast<std::int64_t>(i))
            << "comm " << comm_id << " on rank " << rank;
      }
    }
  }
  // The two split colors are distinct communicators with distinct ids.
  std::set<std::int64_t> split_ids;
  for (const auto& e : events) {
    if (e.stamp.stamped()) split_ids.insert(e.stamp.comm);
  }
  EXPECT_EQ(split_ids.size(), 3u);  // world + 2 colors
}

TEST(CausalStamp, ShrinkEventsShareOneEdgeAcrossSurvivors) {
  auto plan = std::make_shared<FaultPlan>();
  plan->kills.push_back({2, 2});
  const auto events = capture_run(4, [&](Comm& comm) {
    comm.set_fault_plan(plan);
    try {
      for (int i = 0; i < 6; ++i) {
        double x = 1.0;
        comm.allreduce(std::span<double>(&x, 1), ReduceOp::kSum);
      }
    } catch (const RankFailedError&) {
      // Survivors reach shrink() through their own (asymmetric) unwind
      // paths; the dedicated shrink edge must still line them up.
      Comm shrunk = comm.shrink();
      double x = 1.0;
      shrunk.allreduce(std::span<double>(&x, 1), ReduceOp::kSum);
      EXPECT_DOUBLE_EQ(x, 3.0);
      return;
    }
    FAIL() << "fault was never detected";
  });
  std::map<std::int64_t, std::set<int>> shrink_ranks;  // edge -> ranks
  std::int64_t shrink_comm = -1;
  for (const auto& e : events) {
    if (e.name != "shrink" || !e.stamp.stamped()) continue;
    EXPECT_EQ(e.category, TraceCategory::kRecovery);
    shrink_ranks[e.stamp.edge].insert(e.rank);
    shrink_comm = e.stamp.comm;
  }
  ASSERT_EQ(shrink_ranks.size(), 1u) << "one shrink, one edge";
  EXPECT_EQ(shrink_ranks.begin()->second, (std::set<int>{0, 1, 3}));
  // The post-shrink allreduce runs on a fresh communicator id.
  std::set<std::int64_t> post_shrink_comms;
  for (const auto& e : events) {
    if (e.stamp.stamped() && e.stamp.comm != shrink_comm) {
      post_shrink_comms.insert(e.stamp.comm);
    }
  }
  EXPECT_FALSE(post_shrink_comms.empty());
}

TEST(CausalStamp, ChromeTraceRoundTripsStampsAndFlowEvents) {
  const auto events = capture_run(2, [](Comm& comm) {
    double x = 1.0;
    comm.allreduce(std::span<double>(&x, 1), ReduceOp::kSum);
    if (comm.rank() == 0) {
      comm.send(1, std::span<const double>(&x, 1), /*tag=*/3);
    } else {
      comm.recv(0, std::span<double>(&x, 1), /*tag=*/3);
    }
  });
  // Re-record into the tracer and export (capture_run cleared it).
  auto& tracer = Tracer::instance();
  tracer.clear();
  tracer.set_capture_events(true);
  for (const auto& e : events) {
    tracer.record(e.name, e.category, e.rank, e.start_seconds,
                  e.duration_seconds, e.stamp);
  }
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  tracer.set_capture_events(false);
  tracer.clear();
  const std::string json = out.str();
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"edge\":"), std::string::npos);

  const std::string path = "causal_trace_roundtrip.json";
  {
    std::ofstream file(path);
    file << json;
  }
  const auto back = uoi::report::read_chrome_trace_file(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.size(), events.size());  // flow events are filtered out
  std::size_t stamped = 0;
  std::size_t p2p = 0;
  for (const auto& e : back) {
    if (e.stamp.stamped()) ++stamped;
    if (e.stamp.flow != 0) {
      ++p2p;
      EXPECT_GE(e.stamp.peer, 0);
      EXPECT_EQ(e.stamp.tag, 3);
      EXPECT_GE(e.stamp.edge, 0);
    }
  }
  EXPECT_EQ(stamped, events.size());
  EXPECT_EQ(p2p, 2u);
}

TEST(CausalStamp, MergeAlignsPerRankFilesOnSharedCollectives) {
  const auto events = capture_run(2, [](Comm& comm) {
    double x = 1.0;
    for (int i = 0; i < 3; ++i) {
      comm.allreduce(std::span<double>(&x, 1), ReduceOp::kSum);
    }
  });
  // Write each rank's events to its own file, shifting rank 1's clock by
  // a large bogus offset (per-process trace files have distinct epochs).
  auto write_rank_file = [&](int rank, double shift, const std::string& path) {
    auto& tracer = Tracer::instance();
    tracer.clear();
    tracer.set_capture_events(true);
    for (const auto& e : events) {
      if (e.rank != rank) continue;
      tracer.record(e.name, e.category, e.rank, e.start_seconds + shift,
                    e.duration_seconds, e.stamp);
    }
    std::ofstream file(path);
    std::ostringstream out;
    tracer.write_chrome_trace(out);
    file << out.str();
    tracer.set_capture_events(false);
    tracer.clear();
  };
  write_rank_file(0, 0.0, "merge_rank0.json");
  write_rank_file(1, 123.456, "merge_rank1.json");
  const auto merged = uoi::report::read_and_merge_trace_files(
      {"merge_rank0.json", "merge_rank1.json"});
  std::remove("merge_rank0.json");
  std::remove("merge_rank1.json");
  ASSERT_EQ(merged.size(), events.size());
  // After alignment the matched collective exits coincide again: for each
  // (edge) the max-end across ranks must agree within a microsecond-ish
  // tolerance (the exporter quantizes timestamps to microseconds).
  std::map<std::int64_t, std::map<int, double>> ends;  // edge -> rank -> end
  for (const auto& e : merged) {
    if (!e.stamp.stamped() || e.stamp.edge < 0 || e.stamp.peer >= 0) continue;
    ends[e.stamp.edge][e.rank] = e.start_seconds + e.duration_seconds;
  }
  ASSERT_GE(ends.size(), 3u);
  for (const auto& [edge, by_rank] : ends) {
    ASSERT_EQ(by_rank.size(), 2u) << "edge " << edge;
  }
  // The anchor collective's exit matches exactly; later ones stay within
  // the real skew of the original run (sub-millisecond here), proving the
  // 123.456 s bogus offset was removed.
  for (const auto& [edge, by_rank] : ends) {
    const double skew = std::abs(by_rank.at(0) - by_rank.at(1));
    EXPECT_LT(skew, 0.05) << "edge " << edge;
  }
}

}  // namespace
