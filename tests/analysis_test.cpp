// Tests for the VAR analysis tools (impulse responses, FEVD, stationary
// covariance) and the classical Granger F-test baseline.

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic_var.hpp"
#include "linalg/blas.hpp"
#include "support/rng.hpp"
#include "var/analysis.hpp"
#include "var/diagnostics.hpp"
#include "var/granger_test.hpp"
#include "var/var_model.hpp"

namespace {

using uoi::linalg::Matrix;
using uoi::linalg::Vector;
using uoi::var::VarModel;

TEST(ImpulseResponse, Var1PowersOfA) {
  Matrix a{{0.5, 0.2}, {0.0, 0.4}};
  const VarModel model({a});
  const auto phi = uoi::var::impulse_responses(model, 3);
  ASSERT_EQ(phi.size(), 4u);
  // Phi_0 = I.
  EXPECT_DOUBLE_EQ(phi[0](0, 0), 1.0);
  EXPECT_DOUBLE_EQ(phi[0](0, 1), 0.0);
  // Phi_1 = A, Phi_2 = A^2.
  EXPECT_EQ(uoi::linalg::max_abs_diff(phi[1], a), 0.0);
  Matrix a2(2, 2);
  uoi::linalg::gemm(1.0, a, a, 0.0, a2);
  EXPECT_LT(uoi::linalg::max_abs_diff(phi[2], a2), 1e-14);
}

TEST(ImpulseResponse, Var2Recursion) {
  Matrix a1{{0.4}};
  Matrix a2{{0.3}};
  const VarModel model({a1, a2});
  const auto phi = uoi::var::impulse_responses(model, 4);
  // Scalar recursion: phi_h = 0.4 phi_{h-1} + 0.3 phi_{h-2}.
  EXPECT_DOUBLE_EQ(phi[1](0, 0), 0.4);
  EXPECT_NEAR(phi[2](0, 0), 0.4 * 0.4 + 0.3, 1e-14);
  EXPECT_NEAR(phi[3](0, 0), 0.4 * phi[2](0, 0) + 0.3 * phi[1](0, 0), 1e-14);
}

TEST(ImpulseResponse, DecaysForStableSystems) {
  const auto model = uoi::data::make_sparse_var({});
  const auto phi = uoi::var::impulse_responses(model, 80);
  double late = 0.0;
  for (std::size_t i = 0; i < model.dim(); ++i) {
    for (std::size_t k = 0; k < model.dim(); ++k) {
      late = std::max(late, std::abs(phi[80](i, k)));
    }
  }
  EXPECT_LT(late, 1e-3);
}

TEST(Fevd, RowsSumToOneAndOwnShockDominatesAtHorizonOne) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 6;
  spec.seed = 3;
  const auto model = uoi::data::make_sparse_var(spec);
  const auto shares = uoi::var::fevd(model, 5);
  ASSERT_EQ(shares.size(), 5u);
  for (const auto& share : shares) {
    for (std::size_t i = 0; i < 6; ++i) {
      double total = 0.0;
      for (std::size_t k = 0; k < 6; ++k) {
        EXPECT_GE(share(i, k), 0.0);
        total += share(i, k);
      }
      EXPECT_NEAR(total, 1.0, 1e-12);
    }
  }
  // Horizon 1: Phi_0 = I, so each variable's variance is 100% own shock.
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(shares[0](i, i), 1.0, 1e-12);
  }
}

TEST(Fevd, CrossSharesGrowWithHorizonWhenCoupled) {
  Matrix a{{0.5, 0.4}, {0.0, 0.5}};  // variable 1 drives variable 0
  const VarModel model({a});
  const auto shares = uoi::var::fevd(model, 10);
  // Variable 0's variance share from shock 1 grows with horizon.
  EXPECT_GT(shares[9](0, 1), shares[1](0, 1));
  EXPECT_GT(shares[9](0, 1), 0.05);
  // Variable 1 is never influenced by shock 0 (lower-triangular system).
  EXPECT_NEAR(shares[9](1, 0), 0.0, 1e-12);
}

TEST(StationaryCovariance, MatchesScalarFormula) {
  // AR(1): var = sigma^2 / (1 - a^2).
  Matrix a{{0.6}};
  const VarModel model({a});
  const Matrix sigma = uoi::var::stationary_covariance(model, 2.0);
  EXPECT_NEAR(sigma(0, 0), 2.0 / (1.0 - 0.36), 1e-9);
}

TEST(StationaryCovariance, MatchesSimulatedMoments) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 4;
  spec.seed = 5;
  const auto model = uoi::data::make_sparse_var(spec);
  const Matrix sigma = uoi::var::stationary_covariance(model, 1.0);

  uoi::var::SimulateOptions sim;
  sim.n_samples = 60000;
  sim.seed = 6;
  const Matrix series = uoi::var::simulate(model, sim);
  Matrix empirical(4, 4);
  for (std::size_t t = 0; t < series.rows(); ++t) {
    const auto row = series.row(t);
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 4; ++j) {
        empirical(i, j) += row[i] * row[j];
      }
    }
  }
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      empirical(i, j) /= static_cast<double>(series.rows());
      EXPECT_NEAR(empirical(i, j), sigma(i, j),
                  0.05 * std::max(1.0, std::abs(sigma(i, j))))
          << "(" << i << "," << j << ")";
    }
  }
}

TEST(StationaryCovariance, UnstableModelRejected) {
  Matrix a{{1.1}};
  EXPECT_THROW(
      (void)uoi::var::stationary_covariance(VarModel({a})),
      uoi::support::InvalidArgument);
}

// ---- F distribution / Granger tests ----

TEST(FDistribution, KnownQuantiles) {
  // F(1, 10): P(F > 4.96) ~ 0.05; F(5, 20): P(F > 2.71) ~ 0.05.
  EXPECT_NEAR(uoi::var::f_distribution_upper_tail(4.96, 1, 10), 0.05, 0.005);
  EXPECT_NEAR(uoi::var::f_distribution_upper_tail(2.71, 5, 20), 0.05, 0.005);
  // Degenerate ends.
  EXPECT_DOUBLE_EQ(uoi::var::f_distribution_upper_tail(0.0, 3, 7), 1.0);
  EXPECT_LT(uoi::var::f_distribution_upper_tail(1000.0, 3, 7), 1e-6);
}

TEST(FDistribution, MonotoneInF) {
  double previous = 1.0;
  for (const double f : {0.1, 0.5, 1.0, 2.0, 5.0, 20.0}) {
    const double tail = uoi::var::f_distribution_upper_tail(f, 4, 30);
    EXPECT_LT(tail, previous);
    previous = tail;
  }
}

TEST(GrangerFTest, RecoversTrueEdgesOnCleanSystem) {
  // Strong, sparse system with plenty of data: the classical test should
  // find exactly the true edges.
  Matrix a{{0.5, 0.0, 0.0}, {0.45, 0.5, 0.0}, {0.0, 0.0, 0.5}};
  const VarModel truth({a});
  uoi::var::SimulateOptions sim;
  sim.n_samples = 3000;
  sim.seed = 9;
  const Matrix series = uoi::var::simulate(truth, sim);

  const auto tests = uoi::var::granger_f_tests(series, 1);
  ASSERT_EQ(tests.size(), 6u);
  const auto network =
      uoi::var::granger_network_from_tests(tests, 3, 0.05, true);
  ASSERT_EQ(network.edge_count(), 1u);
  EXPECT_EQ(network.edges()[0].source, 0u);
  EXPECT_EQ(network.edges()[0].target, 1u);
}

TEST(GrangerFTest, NullSystemHasCalibratedFalsePositiveRate) {
  // Independent white noise: without correction, each test rejects at
  // ~alpha; with Bonferroni, the network is almost always empty.
  uoi::var::SimulateOptions sim;
  sim.n_samples = 1000;
  sim.seed = 11;
  Matrix zero(5, 5);
  const Matrix series = uoi::var::simulate(VarModel({zero}), sim);
  const auto tests = uoi::var::granger_f_tests(series, 1);
  std::size_t rejections = 0;
  for (const auto& t : tests) {
    if (t.p_value < 0.05) ++rejections;
  }
  EXPECT_LE(rejections, 4u);  // 20 tests at alpha = 0.05 -> expect ~1
  const auto network =
      uoi::var::granger_network_from_tests(tests, 5, 0.05, true);
  EXPECT_LE(network.edge_count(), 1u);
}

TEST(GrangerFTest, Var2CountsBothLagsAsRestrictions) {
  Matrix a1{{0.3, 0.25}, {0.0, 0.3}};
  Matrix a2{{0.2, 0.0}, {0.0, 0.2}};
  const VarModel truth({a1, a2});
  uoi::var::SimulateOptions sim;
  sim.n_samples = 4000;
  sim.seed = 1;  // the null p-value is seed-dependent; 1/40 seeds reject
  const Matrix series = uoi::var::simulate(truth, sim);
  const auto tests = uoi::var::granger_f_tests(series, 2);
  // Edge 1 -> 0 exists (lag-1 coupling 0.25); 0 -> 1 does not.
  for (const auto& t : tests) {
    if (t.source == 1 && t.target == 0) {
      EXPECT_LT(t.p_value, 1e-4);
    } else if (t.source == 0 && t.target == 1) {
      EXPECT_GT(t.p_value, 0.01);
    }
  }
}

}  // namespace

namespace diagnostics_tests {

using uoi::linalg::Matrix;
using uoi::linalg::Vector;
using uoi::var::VarModel;

TEST(ChiSquare, KnownQuantiles) {
  // chi2(1): P(X > 3.841) ~ 0.05; chi2(10): P(X > 18.31) ~ 0.05.
  EXPECT_NEAR(uoi::var::chi_square_upper_tail(3.841, 1), 0.05, 0.002);
  EXPECT_NEAR(uoi::var::chi_square_upper_tail(18.31, 10), 0.05, 0.002);
  EXPECT_DOUBLE_EQ(uoi::var::chi_square_upper_tail(0.0, 5), 1.0);
  EXPECT_LT(uoi::var::chi_square_upper_tail(100.0, 3), 1e-10);
  // Median of chi2(2) is 2 ln 2.
  EXPECT_NEAR(uoi::var::chi_square_upper_tail(2.0 * std::log(2.0), 2), 0.5,
              1e-10);
}

TEST(LjungBox, WhiteNoisePassesAutocorrelatedFails) {
  uoi::support::Xoshiro256 rng(3);
  constexpr std::size_t kT = 2000;
  Vector white(kT), ar(kT);
  double previous = 0.0;
  for (std::size_t t = 0; t < kT; ++t) {
    white[t] = rng.normal();
    previous = 0.6 * previous + rng.normal();
    ar[t] = previous;
  }
  const auto white_test = uoi::var::ljung_box(white, 10);
  EXPECT_GT(white_test.p_value, 0.01);
  const auto ar_test = uoi::var::ljung_box(ar, 10);
  EXPECT_LT(ar_test.p_value, 1e-10);
  EXPECT_NEAR(ar_test.autocorrelations[0], 0.6, 0.05);
}

TEST(VarResiduals, TrueModelLeavesWhiteResiduals) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 5;
  spec.seed = 5;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 1500;
  sim.seed = 6;
  const Matrix series = uoi::var::simulate(truth, sim);

  const auto diagnostics = uoi::var::residual_diagnostics(truth, series, 8);
  ASSERT_EQ(diagnostics.size(), 5u);
  // With the generating model, every variable's residuals are white; a
  // Bonferroni-ish bound keeps the test stable across seeds.
  std::size_t rejections = 0;
  for (const auto& d : diagnostics) {
    if (d.p_value < 0.01) ++rejections;
  }
  EXPECT_LE(rejections, 1u);
}

TEST(VarResiduals, UnderfittedOrderIsFlagged) {
  // Fit a VAR(1)-shaped zero model to strongly autocorrelated data: the
  // diagnostics must reject whiteness loudly.
  uoi::data::VarSpec spec;
  spec.n_nodes = 4;
  spec.self_coefficient = 0.7;
  spec.seed = 7;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 1000;
  sim.seed = 8;
  const Matrix series = uoi::var::simulate(truth, sim);

  Matrix zero(4, 4);
  const VarModel null_model({zero});
  const auto diagnostics =
      uoi::var::residual_diagnostics(null_model, series, 8);
  for (const auto& d : diagnostics) {
    EXPECT_LT(d.p_value, 1e-6);
  }
}

TEST(VarResiduals, ResidualVarianceMatchesDisturbance) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 3;
  spec.seed = 9;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 20000;
  sim.noise_stddev = 1.5;
  sim.seed = 10;
  const Matrix series = uoi::var::simulate(truth, sim);
  const Matrix residuals = uoi::var::var_residuals(truth, series);
  for (std::size_t e = 0; e < 3; ++e) {
    double var = 0.0;
    for (std::size_t t = 0; t < residuals.rows(); ++t) {
      var += residuals(t, e) * residuals(t, e);
    }
    var /= static_cast<double>(residuals.rows());
    EXPECT_NEAR(var, 1.5 * 1.5, 0.1);
  }
}

}  // namespace diagnostics_tests
