// Tests for CSV parsing/writing and VAR model serialization.

#include <gtest/gtest.h>

#include <filesystem>

#include "data/synthetic_var.hpp"
#include "io/csv.hpp"
#include "linalg/blas.hpp"
#include "support/rng.hpp"
#include "var/model_io.hpp"

namespace {

using uoi::linalg::Matrix;

TEST(Csv, ParsesCommaSeparatedWithHeader) {
  const auto data = uoi::io::parse_csv("a,b,c\n1,2,3\n4.5, -6 ,7e-1\n");
  EXPECT_EQ(data.column_labels,
            (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(data.values.rows(), 2u);
  EXPECT_DOUBLE_EQ(data.values(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(data.values(1, 0), 4.5);
  EXPECT_DOUBLE_EQ(data.values(1, 1), -6.0);
  EXPECT_DOUBLE_EQ(data.values(1, 2), 0.7);
}

TEST(Csv, ParsesWhitespaceSeparatedNoHeader) {
  const auto data = uoi::io::parse_csv("1 2\n3\t4\n");
  EXPECT_TRUE(data.column_labels.empty());
  ASSERT_EQ(data.values.rows(), 2u);
  EXPECT_DOUBLE_EQ(data.values(1, 1), 4.0);
}

TEST(Csv, SkipsCommentsAndBlankLines) {
  const auto data = uoi::io::parse_csv("# comment\n\n1,2\n  \n# more\n3,4\n");
  ASSERT_EQ(data.values.rows(), 2u);
  EXPECT_DOUBLE_EQ(data.values(1, 0), 3.0);
}

TEST(Csv, HandlesWindowsLineEndings) {
  const auto data = uoi::io::parse_csv("x,y\r\n1,2\r\n");
  EXPECT_EQ(data.column_labels[1], "y");
  EXPECT_DOUBLE_EQ(data.values(0, 1), 2.0);
}

TEST(Csv, RaggedRowRejected) {
  EXPECT_THROW((void)uoi::io::parse_csv("1,2\n3\n"), uoi::support::IoError);
}

TEST(Csv, NonNumericFieldRejected) {
  EXPECT_THROW((void)uoi::io::parse_csv("1,2\n3,oops\n"),
               uoi::support::IoError);
}

TEST(Csv, RoundTripThroughText) {
  Matrix m{{1.25, -2.0}, {3.0, 1e-7}};
  const auto text = uoi::io::to_csv(m, {"u", "v"});
  const auto back = uoi::io::parse_csv(text);
  EXPECT_EQ(back.column_labels, (std::vector<std::string>{"u", "v"}));
  EXPECT_EQ(uoi::linalg::max_abs_diff(back.values, m), 0.0);
}

TEST(Csv, RoundTripThroughFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "uoi_csv_rt.csv").string();
  Matrix m{{0.1, 0.2, 0.3}};
  uoi::io::write_csv(path, m);
  const auto back = uoi::io::read_csv(path);
  EXPECT_EQ(uoi::linalg::max_abs_diff(back.values, m), 0.0);
  std::filesystem::remove(path);
}

TEST(Csv, HeaderWidthMismatchRejected) {
  Matrix m{{1.0, 2.0}};
  EXPECT_THROW((void)uoi::io::to_csv(m, {"only-one"}),
               uoi::support::DimensionMismatch);
}

TEST(ModelIo, RoundTripsExactly) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 7;
  spec.order = 2;
  spec.seed = 5;
  const auto model = uoi::data::make_sparse_var(spec);
  const auto text = uoi::var::model_to_text(model);
  const auto back = uoi::var::model_from_text(text);
  ASSERT_EQ(back.dim(), model.dim());
  ASSERT_EQ(back.order(), model.order());
  for (std::size_t j = 0; j < model.order(); ++j) {
    EXPECT_EQ(uoi::linalg::max_abs_diff(back.coefficient(j),
                                        model.coefficient(j)),
              0.0);
  }
  EXPECT_EQ(uoi::linalg::max_abs_diff(back.intercept(), model.intercept()),
            0.0);
}

TEST(ModelIo, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "uoi_model_rt.txt").string();
  uoi::data::VarSpec spec;
  spec.n_nodes = 4;
  spec.seed = 6;
  const auto model = uoi::data::make_sparse_var(spec);
  uoi::var::save_model(path, model);
  const auto back = uoi::var::load_model(path);
  EXPECT_EQ(uoi::linalg::max_abs_diff(back.coefficient(0),
                                      model.coefficient(0)),
            0.0);
  std::filesystem::remove(path);
}

TEST(ModelIo, MalformedInputsRejected) {
  EXPECT_THROW((void)uoi::var::model_from_text("not a model"),
               uoi::support::IoError);
  EXPECT_THROW((void)uoi::var::model_from_text("uoi-var-model v1\nd 2\n"),
               uoi::support::IoError);
  EXPECT_THROW(
      (void)uoi::var::model_from_text("uoi-var-model v1\ndim 2 order 1\nA 0\n1 2\n"),
      uoi::support::IoError);
  EXPECT_THROW((void)uoi::var::load_model("/nonexistent/model.txt"),
               uoi::support::IoError);
}

TEST(ModelIo, PreservesStability) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 6;
  spec.seed = 7;
  const auto model = uoi::data::make_sparse_var(spec);
  const auto back = uoi::var::model_from_text(uoi::var::model_to_text(model));
  EXPECT_NEAR(back.companion_spectral_radius(),
              model.companion_spectral_radius(), 1e-12);
}

}  // namespace

namespace csv_property_tests {

using uoi::linalg::Matrix;

class CsvRoundTripSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsvRoundTripSweep, RandomMatricesSurviveTextRoundTrip) {
  uoi::support::Xoshiro256 rng(GetParam());
  const std::size_t rows = 1 + rng.uniform_below(40);
  const std::size_t cols = 1 + rng.uniform_below(12);
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      // Mix magnitudes, signs, and exact zeros.
      switch (rng.uniform_below(4)) {
        case 0:
          m(r, c) = 0.0;
          break;
        case 1:
          m(r, c) = rng.normal() * 1e-9;
          break;
        case 2:
          m(r, c) = rng.normal() * 1e12;
          break;
        default:
          m(r, c) = rng.normal();
      }
    }
  }
  const auto back = uoi::io::parse_csv(uoi::io::to_csv(m));
  ASSERT_EQ(back.values.rows(), rows);
  ASSERT_EQ(back.values.cols(), cols);
  EXPECT_EQ(uoi::linalg::max_abs_diff(back.values, m), 0.0)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace csv_property_tests
