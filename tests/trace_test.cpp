// Tests for the per-rank tracing/metrics subsystem (support/trace) and
// regression tests for the timing-attribution fixes that shipped with it:
//   - Chrome-trace export is well-formed and per-rank deterministic;
//   - driver breakdown buckets are tracer-derived and sum to the phase wall;
//   - NonblockingContext folds its duplicate communicator's stats back into
//     the parent (pipelined runs no longer report zero communication);
//   - IntervalTimer tolerates stop-without-start / double-stop;
//   - Xoshiro256::uniform_below(0) throws instead of silently returning 0.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/uoi_lasso_distributed.hpp"
#include "data/synthetic_regression.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/nonblocking.hpp"
#include "solvers/distributed_admm.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace {

using uoi::sim::Cluster;
using uoi::sim::Comm;
using uoi::support::MetricsRegistry;
using uoi::support::TraceCategory;
using uoi::support::Tracer;
using uoi::support::TraceScope;
using uoi::support::TraceTotals;

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

uoi::core::UoiLassoOptions small_options() {
  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 6;
  options.n_estimation_bootstraps = 4;
  options.n_lambdas = 6;
  options.seed = 909;
  options.admm.eps_abs = 1e-7;
  options.admm.eps_rel = 1e-5;
  options.admm.max_iterations = 2000;
  return options;
}

uoi::data::RegressionDataset small_data() {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 80;
  spec.n_features = 16;
  spec.support_size = 4;
  spec.noise_stddev = 0.3;
  spec.seed = 31;
  return uoi::data::make_regression(spec);
}

TEST(Trace, TotalsArithmetic) {
  TraceTotals a, b;
  a.of(TraceCategory::kCommunication) = {3, 1.5};
  b.of(TraceCategory::kCommunication) = {1, 0.5};
  b.of(TraceCategory::kDataIo) = {2, 0.25};
  a += b;
  EXPECT_EQ(a.of(TraceCategory::kCommunication).calls, 4u);
  EXPECT_DOUBLE_EQ(a.seconds(TraceCategory::kCommunication), 2.0);
  EXPECT_EQ(a.of(TraceCategory::kDataIo).calls, 2u);
  a -= b;
  EXPECT_EQ(a.of(TraceCategory::kCommunication).calls, 3u);
  EXPECT_DOUBLE_EQ(a.seconds(TraceCategory::kCommunication), 1.5);
  EXPECT_EQ(a.of(TraceCategory::kDataIo).calls, 0u);
}

TEST(Trace, ScopeAccumulatesTotalsAndMirrorsTimer) {
  auto& tracer = Tracer::instance();
  tracer.clear();
  uoi::support::IntervalTimer mirror;
  {
    TraceScope span("unit-span", TraceCategory::kComputation, 3, &mirror);
    volatile double sink = 0.0;
    for (int i = 0; i < 10000; ++i) sink = sink + 1.0;
  }
  const TraceTotals totals = tracer.totals(3);
  EXPECT_EQ(totals.of(TraceCategory::kComputation).calls, 1u);
  EXPECT_GT(totals.seconds(TraceCategory::kComputation), 0.0);
  EXPECT_GT(mirror.total_seconds(), 0.0);
  EXPECT_FALSE(mirror.running());
  // Spans on rank 3 must not leak onto other ranks.
  EXPECT_EQ(tracer.totals(0).of(TraceCategory::kComputation).calls, 0u);
  tracer.clear();
  EXPECT_EQ(tracer.totals(3).of(TraceCategory::kComputation).calls, 0u);
}

TEST(Trace, EventsBufferedOnlyWhenCaptureEnabled) {
  auto& tracer = Tracer::instance();
  tracer.clear();
  tracer.set_capture_events(false);
  tracer.record("silent", TraceCategory::kCommunication, 0, 0.0, 1e-3);
  EXPECT_EQ(tracer.event_count(), 0u);
  // Totals accumulate regardless of capture.
  EXPECT_EQ(tracer.totals(0).of(TraceCategory::kCommunication).calls, 1u);
  tracer.set_capture_events(true);
  tracer.record("captured", TraceCategory::kCommunication, 0, 0.0, 1e-3);
  EXPECT_EQ(tracer.event_count(), 1u);
  tracer.set_capture_events(false);
  tracer.clear();
}

TEST(Trace, ChromeTraceJsonIsWellFormed) {
  auto& tracer = Tracer::instance();
  tracer.clear();
  tracer.set_capture_events(true);
  tracer.record("alpha", TraceCategory::kCommunication, 0, 0.001, 0.002);
  tracer.record("beta \"quoted\"\n", TraceCategory::kDataIo, 2, 0.003, 0.001);
  tracer.instant("marker", TraceCategory::kFault, 1);
  tracer.set_capture_events(false);

  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const std::string json = out.str();
  tracer.clear();

  // A JSON array of complete ("ph":"X") events with pid = rank.
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.substr(json.size() - 2), "]\n");
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 3u);
  EXPECT_EQ(count_occurrences(json, "{"), 3u);
  EXPECT_EQ(count_occurrences(json, "}"), 3u);
  EXPECT_EQ(count_occurrences(json, "\"pid\":"), 3u);
  EXPECT_EQ(count_occurrences(json, "\"tid\":"), 3u);
  EXPECT_EQ(count_occurrences(json, "\"ts\":"), 3u);
  EXPECT_EQ(count_occurrences(json, "\"dur\":"), 3u);
  // Events are sorted by (rank, start): rank 0 first, rank 2 last.
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  EXPECT_LT(json.find("\"pid\":0"), json.find("\"pid\":1"));
  EXPECT_LT(json.find("\"pid\":1"), json.find("\"pid\":2"));
  // The quote and newline in the name must be escaped.
  EXPECT_NE(json.find("beta \\\"quoted\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"data-io\""), std::string::npos);
  // ts/dur are microseconds.
  EXPECT_NE(json.find("\"ts\":1000.000000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2000.000000"), std::string::npos);
}

TEST(Trace, DistributedRunYieldsDeterministicPerRankSequence) {
  const auto data = small_data();
  auto options = small_options();
  // Run-to-run trace identity only holds for deterministic schedules; work
  // stealing reorders spans by timing. Pin the policy so the test does not
  // depend on UOI_SCHED_POLICY.
  options.schedule = uoi::sched::SchedulePolicy::kCostLpt;
  auto& tracer = Tracer::instance();

  using Key = std::tuple<int, std::string, int>;
  const auto run_once = [&] {
    tracer.clear();
    tracer.set_capture_events(true);
    Cluster::run(2, [&](Comm& comm) {
      (void)uoi::core::uoi_lasso_distributed(comm, data.x, data.y, options,
                                             {2, 1});
    });
    tracer.set_capture_events(false);
    std::vector<Key> sequence;
    for (const auto& event : tracer.events()) {
      sequence.emplace_back(event.rank, event.name,
                            static_cast<int>(event.category));
    }
    return sequence;
  };

  const auto first = run_once();
  const auto second = run_once();
  tracer.clear();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Trace, BreakdownBucketsSumToPhaseWall) {
  const auto data = small_data();
  const auto options = small_options();
  Tracer::instance().clear();
  Cluster::run(2, [&](Comm& comm) {
    uoi::support::Stopwatch watch;
    const auto result =
        uoi::core::uoi_lasso_distributed(comm, data.x, data.y, options);
    const double wall = watch.seconds();
    const auto& b = result.breakdown;
    EXPECT_GE(b.computation_seconds, 0.0);
    EXPECT_GE(b.communication_seconds, 0.0);
    EXPECT_GE(b.distribution_seconds, 0.0);
    EXPECT_GE(b.data_io_seconds, 0.0);
    const double sum = b.computation_seconds + b.communication_seconds +
                       b.distribution_seconds + b.data_io_seconds;
    // Buckets are derived from the same phase: their sum must track the
    // wall time of the call to within 5% (plus slack for the stopwatch
    // bracketing overhead on very short runs).
    EXPECT_NEAR(sum, wall, 0.05 * wall + 0.005);
    EXPECT_GT(b.communication_seconds, 0.0);
  });
}

// Regression (pipelined-convergence attribution): before the fix, the
// pipelined check's allreduces ran on a duplicate communicator whose stats
// were dropped on destruction, so pipelined runs reported zero
// communication time. The duplicate's stats now fold into the parent.
TEST(TraceRegression, NonblockingDupStatsFoldIntoParent) {
  Cluster::run(2, [&](Comm& comm) {
    const auto before = comm.stats().of(uoi::sim::CommCategory::kAllreduce);
    {
      uoi::sim::NonblockingContext nb(comm);
      std::vector<double> value{1.0};
      auto request = nb.iallreduce(value, uoi::sim::ReduceOp::kSum);
      request.wait();
      EXPECT_DOUBLE_EQ(value[0], 2.0);
    }  // ~NonblockingContext folds the dup's accounting into `comm`.
    const auto after = comm.stats().of(uoi::sim::CommCategory::kAllreduce);
    EXPECT_GT(after.calls, before.calls);
    EXPECT_GT(after.seconds, before.seconds);
  });
}

TEST(TraceRegression, PipelinedDistributedRunReportsCommunication) {
  const auto data = small_data();
  auto options = small_options();
  options.admm.pipelined_convergence_check = true;
  Tracer::instance().clear();
  Cluster::run(2, [&](Comm& comm) {
    const auto result =
        uoi::core::uoi_lasso_distributed(comm, data.x, data.y, options);
    EXPECT_GT(result.breakdown.communication_seconds, 0.0);
    // The dup's allreduce traffic is visible in the parent's stats too.
    EXPECT_GT(comm.stats().of(uoi::sim::CommCategory::kAllreduce).calls, 0u);
  });
}

// Regression (IntervalTimer): stop() without a matching start() used to
// accumulate garbage ("now minus stale last_start"); it is a no-op now.
TEST(TraceRegression, IntervalTimerStopWithoutStartIsNoOp) {
  uoi::support::IntervalTimer timer;
  timer.stop();
  EXPECT_DOUBLE_EQ(timer.total_seconds(), 0.0);
  EXPECT_FALSE(timer.running());
  timer.start();
  EXPECT_TRUE(timer.running());
  timer.stop();
  const double once = timer.total_seconds();
  timer.stop();  // double-stop must not add time
  EXPECT_DOUBLE_EQ(timer.total_seconds(), once);
  timer.clear();
  EXPECT_FALSE(timer.running());
  EXPECT_DOUBLE_EQ(timer.total_seconds(), 0.0);
}

TEST(TraceRegression, IntervalScopeBracketsTimer) {
  uoi::support::IntervalTimer timer;
  {
    uoi::support::IntervalScope scope(timer);
    EXPECT_TRUE(timer.running());
  }
  EXPECT_FALSE(timer.running());
  EXPECT_GE(timer.total_seconds(), 0.0);
}

// Regression (RNG): uniform_below(0) used to silently return 0, masking
// empty-range caller bugs; it must throw now.
TEST(TraceRegression, UniformBelowZeroThrows) {
  uoi::support::Xoshiro256 rng(17);
  EXPECT_THROW((void)rng.uniform_below(0), uoi::support::InvalidArgument);
  EXPECT_EQ(rng.uniform_below(1), 0u);
  for (int i = 0; i < 64; ++i) EXPECT_LT(rng.uniform_below(5), 5u);
}

TEST(Metrics, RegistryBasics) {
  auto& metrics = MetricsRegistry::instance();
  metrics.clear();
  EXPECT_DOUBLE_EQ(metrics.value(0, "missing"), 0.0);
  metrics.add(1, "counter", 2.0);
  metrics.add(1, "counter", 3.0);
  metrics.set(0, "gauge", 7.5);
  EXPECT_DOUBLE_EQ(metrics.value(1, "counter"), 5.0);
  EXPECT_DOUBLE_EQ(metrics.value(0, "gauge"), 7.5);

  const auto snapshot = metrics.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].rank, 0);
  EXPECT_EQ(snapshot[0].name, "gauge");
  EXPECT_EQ(snapshot[1].rank, 1);
  EXPECT_EQ(snapshot[1].name, "counter");

  const std::string json = metrics.to_json();
  EXPECT_NE(json.find("\"metrics\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":5.000000"), std::string::npos);
  metrics.clear();
  EXPECT_TRUE(metrics.snapshot().empty());
}

// Regression (JSON escaping): counter names and span names containing
// quotes, backslashes, or control characters used to produce malformed
// JSON documents. Everything now routes through support/json's escaper.
TEST(TraceRegression, MetricsToJsonEscapesSpecialCharacters) {
  auto& metrics = MetricsRegistry::instance();
  metrics.clear();
  metrics.set(0, "weird \"name\" with \\backslash\\ and \x01 ctrl", 1.0);
  const std::string json = metrics.to_json();
  metrics.clear();
  EXPECT_NE(
      json.find("weird \\\"name\\\" with \\\\backslash\\\\ and \\u0001 ctrl"),
      std::string::npos);
  // No raw control byte or unescaped quote-in-name survives.
  EXPECT_EQ(json.find('\x01'), std::string::npos);
}

TEST(TraceRegression, ChromeTraceEscapesControlCharacters) {
  auto& tracer = Tracer::instance();
  tracer.clear();
  tracer.set_capture_events(true);
  tracer.record("tab\there\x7f high \xc3\xa9",
                TraceCategory::kComputation, 0, 0.0, 1e-3);
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  tracer.set_capture_events(false);
  tracer.clear();
  const std::string json = out.str();
  EXPECT_NE(json.find("tab\\there"), std::string::npos);
  // 0x7f is not a JSON control character and passes through; the UTF-8
  // bytes (negative as signed char) must not turn into spurious \uffffffXX escapes.
  EXPECT_NE(json.find("\x7f high \xc3\xa9"), std::string::npos);
  EXPECT_EQ(json.find("ffffff"), std::string::npos);
}

// Stress: spans recorded from many threads (with rank rebinding mid-flight)
// while another thread snapshots totals/events/histograms. Run under
// ASan/TSan in CI; the assertion here is that nothing tears and the final
// accounting matches exactly.
TEST(TraceStress, ConcurrentSpansRebindsAndSnapshots) {
  auto& tracer = Tracer::instance();
  tracer.clear();
  tracer.set_capture_events(true);

  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load()) {
      (void)tracer.totals();
      (void)tracer.events();
      (void)tracer.all_histograms();
      (void)tracer.ranks();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        // Rebind the thread across two ranks mid-run, as Cluster::run does
        // when a thread is reused for another rank after a shrink.
        Tracer::set_thread_rank(2 * t + (i % 2));
        TraceScope span("stress", TraceCategory::kComputation);
        (void)span;
      }
      Tracer::set_thread_rank(0);
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true);
  snapshotter.join();

  constexpr auto kTotal =
      static_cast<std::uint64_t>(kThreads) * kSpansPerThread;
  EXPECT_EQ(tracer.totals().of(TraceCategory::kComputation).calls, kTotal);
  EXPECT_EQ(tracer.event_count(), kTotal);
  EXPECT_EQ(tracer.histogram(TraceCategory::kComputation).count(), kTotal);
  // Each thread split its spans evenly across its two ranks.
  for (int r = 0; r < 2 * kThreads; ++r) {
    EXPECT_EQ(tracer.totals(r).of(TraceCategory::kComputation).calls,
              kSpansPerThread / 2)
        << "rank " << r;
  }
  tracer.set_capture_events(false);
  tracer.clear();
}

TEST(Metrics, ClusterRunExportsCommAndSolverCounters) {
  const auto data = small_data();
  const auto options = small_options();
  auto& metrics = MetricsRegistry::instance();
  metrics.clear();
  Cluster::run(2, [&](Comm& comm) {
    (void)uoi::core::uoi_lasso_distributed(comm, data.x, data.y, options);
  });
  for (int rank = 0; rank < 2; ++rank) {
    EXPECT_GT(metrics.value(rank, "admm.iterations"), 0.0) << rank;
    EXPECT_GT(metrics.value(rank, "admm.allreduce_calls"), 0.0) << rank;
    EXPECT_GE(metrics.value(rank, "admm.rho_updates"), 0.0) << rank;
    EXPECT_GT(metrics.value(rank, "comm.allreduce.calls"), 0.0) << rank;
    EXPECT_GT(metrics.value(rank, "comm.allreduce.seconds"), 0.0) << rank;
  }
  metrics.clear();
}

}  // namespace
