// Tests for src/transport's wire format: encode/decode round-trips for
// every message type, header structure, rejection of truncated / corrupted
// / desynchronized streams, and a randomized split-point fuzz of the
// incremental FrameReader.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "transport/frame.hpp"

namespace {

using namespace uoi::transport;

// Deterministic LCG so the fuzz splits are reproducible without seeding
// from the clock.
struct Lcg {
  std::uint64_t state;
  std::uint32_t next(std::uint32_t bound) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>((state >> 33) % bound);
  }
};

std::vector<SlotUpdate> sample_updates() {
  SlotUpdate a;
  a.rank = 0;
  a.data = {1, 2, 3, 4, 5};
  SlotUpdate b;
  b.rank = 3;
  b.data = {};  // empty slots travel too
  return {a, b};
}

/// Every message type, with non-default field values, encoded to a frame.
std::vector<Frame> one_of_each() {
  std::vector<Frame> frames;

  HelloMsg hello;
  hello.rank = 7;
  frames.push_back(hello.encode());

  EndpointsMsg endpoints;
  endpoints.paths = {"/tmp/job/ep-0-0.sock", "/tmp/job/ep-0-1.sock", ""};
  frames.push_back(endpoints.encode());

  frames.push_back(GoMsg{}.encode());

  BarrierEnterMsg enter;
  enter.comm_id = -42;  // ids are signed; a negative one must survive
  enter.generation = 0xfeedfacecafeull;
  enter.local_rank = 2;
  enter.updates = sample_updates();
  frames.push_back(enter.encode());

  BarrierReleaseMsg release;
  release.comm_id = 99;
  release.generation = 3;
  release.failed_globals = {1, 5};
  release.updates = sample_updates();
  frames.push_back(release.encode());

  RecoveryEnterMsg recovery_enter;
  recovery_enter.comm_id = 4;
  recovery_enter.round = 2;
  recovery_enter.local_rank = 1;
  recovery_enter.failed_globals = {3};
  frames.push_back(recovery_enter.encode());

  RecoveryReleaseMsg recovery_release;
  recovery_release.comm_id = 4;
  recovery_release.round = 2;
  recovery_release.failed_globals = {3, 6};
  frames.push_back(recovery_release.encode());

  P2pMsg p2p;
  p2p.comm_id = 17;
  p2p.source = 1;
  p2p.destination = 0;
  p2p.tag = -5;
  p2p.data = {0xde, 0xad, 0xbe, 0xef};
  frames.push_back(p2p.encode());

  WinRequestMsg request;
  request.comm_id = 17;
  request.window = 2;
  request.request = 0x123456789abcull;
  request.origin = 3;
  request.op = WinOp::kPut;
  request.offset = 128;
  request.count = 0;
  request.want_crc = 1;
  request.delta = -2.5;
  request.data = {8, 0, 0, 0, 0, 0, 0, 0};
  frames.push_back(request.encode());

  WinReplyMsg reply;
  reply.comm_id = 17;
  reply.request = 0x123456789abcull;
  reply.status = WinStatus::kNoWindow;
  reply.crc = 0xdeadbeef;
  reply.previous = 3.75;
  reply.data = {1, 2, 3};
  frames.push_back(reply.encode());

  HeartbeatMsg heartbeat;
  heartbeat.rank = 5;
  heartbeat.epoch = 0xffffffffffffffffull;  // epochs are full-width
  frames.push_back(heartbeat.encode());

  FailedMsg failed;
  failed.rank = 2;
  frames.push_back(failed.encode());

  RevokeMsg revoke;
  revoke.comm_id = -1;
  frames.push_back(revoke.encode());

  GoodbyeMsg goodbye;
  goodbye.rank = 6;
  frames.push_back(goodbye.encode());

  return frames;
}

TEST(TransportFrame, EveryMessageTypeRoundTrips) {
  const auto frames = one_of_each();
  ASSERT_EQ(frames.size(), 14u);  // one per FrameType

  const auto hello = HelloMsg::decode(frames[0]);
  EXPECT_EQ(hello.rank, 7u);

  const auto endpoints = EndpointsMsg::decode(frames[1]);
  ASSERT_EQ(endpoints.paths.size(), 3u);
  EXPECT_EQ(endpoints.paths[0], "/tmp/job/ep-0-0.sock");
  EXPECT_EQ(endpoints.paths[2], "");

  (void)GoMsg::decode(frames[2]);

  const auto enter = BarrierEnterMsg::decode(frames[3]);
  EXPECT_EQ(enter.comm_id, -42);
  EXPECT_EQ(enter.generation, 0xfeedfacecafeull);
  EXPECT_EQ(enter.local_rank, 2u);
  ASSERT_EQ(enter.updates.size(), 2u);
  EXPECT_EQ(enter.updates[0].data, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(enter.updates[1].rank, 3u);
  EXPECT_TRUE(enter.updates[1].data.empty());

  const auto release = BarrierReleaseMsg::decode(frames[4]);
  EXPECT_EQ(release.failed_globals, (std::vector<std::uint32_t>{1, 5}));
  EXPECT_EQ(release.updates.size(), 2u);

  const auto recovery_enter = RecoveryEnterMsg::decode(frames[5]);
  EXPECT_EQ(recovery_enter.round, 2u);
  EXPECT_EQ(recovery_enter.failed_globals, (std::vector<std::uint32_t>{3}));

  const auto recovery_release = RecoveryReleaseMsg::decode(frames[6]);
  EXPECT_EQ(recovery_release.failed_globals,
            (std::vector<std::uint32_t>{3, 6}));

  const auto p2p = P2pMsg::decode(frames[7]);
  EXPECT_EQ(p2p.comm_id, 17);
  EXPECT_EQ(p2p.tag, -5);
  EXPECT_EQ(p2p.data, (std::vector<std::uint8_t>{0xde, 0xad, 0xbe, 0xef}));

  const auto request = WinRequestMsg::decode(frames[8]);
  EXPECT_EQ(request.op, WinOp::kPut);
  EXPECT_EQ(request.request, 0x123456789abcull);
  EXPECT_EQ(request.offset, 128u);
  EXPECT_EQ(request.want_crc, 1u);
  EXPECT_DOUBLE_EQ(request.delta, -2.5);
  EXPECT_EQ(request.data.size(), 8u);

  const auto reply = WinReplyMsg::decode(frames[9]);
  EXPECT_EQ(reply.status, WinStatus::kNoWindow);
  EXPECT_EQ(reply.crc, 0xdeadbeefu);
  EXPECT_DOUBLE_EQ(reply.previous, 3.75);

  const auto heartbeat = HeartbeatMsg::decode(frames[10]);
  EXPECT_EQ(heartbeat.epoch, 0xffffffffffffffffull);

  EXPECT_EQ(FailedMsg::decode(frames[11]).rank, 2u);
  EXPECT_EQ(RevokeMsg::decode(frames[12]).comm_id, -1);
  EXPECT_EQ(GoodbyeMsg::decode(frames[13]).rank, 6u);
}

TEST(TransportFrame, HeaderLayoutIsLittleEndianWithMagicAndCrc) {
  HeartbeatMsg msg;
  msg.rank = 1;
  msg.epoch = 2;
  const auto bytes = encode_frame(msg.encode());
  ASSERT_GE(bytes.size(), kFrameHeaderBytes);
  // magic "UOIF" little-endian.
  EXPECT_EQ(bytes[0], 0x55u);  // 'U'
  EXPECT_EQ(bytes[1], 0x4fu);  // 'O'
  EXPECT_EQ(bytes[2], 0x49u);  // 'I'
  EXPECT_EQ(bytes[3], 0x46u);  // 'F'
  EXPECT_EQ(bytes[4], static_cast<std::uint8_t>(FrameType::kHeartbeat));
  EXPECT_EQ(bytes[5], 0u);
  const std::uint32_t payload_len = bytes[8] | (bytes[9] << 8) |
                                    (bytes[10] << 16) | (bytes[11] << 24);
  EXPECT_EQ(payload_len, bytes.size() - kFrameHeaderBytes);
}

TEST(TransportFrame, DecodeRejectsWrongTypeAndTrailingGarbage) {
  HelloMsg hello;
  hello.rank = 1;
  Frame frame = hello.encode();
  EXPECT_THROW((void)GoodbyeMsg::decode(frame), FrameError);
  frame.payload.push_back(0);  // trailing garbage after the last field
  EXPECT_THROW((void)HelloMsg::decode(frame), FrameError);
  frame.payload.clear();  // truncation below the fixed fields
  EXPECT_THROW((void)HelloMsg::decode(frame), FrameError);
}

TEST(TransportFrame, ReaderHoldsIncompleteFramesUntilTheBytesArrive) {
  BarrierEnterMsg msg;
  msg.comm_id = 1;
  msg.generation = 1;
  msg.updates = sample_updates();
  const auto bytes = encode_frame(msg.encode());

  FrameReader reader;
  // Feed everything but the last byte: no frame yet, but no error either —
  // a slow sender is not a protocol violation.
  reader.feed({bytes.data(), bytes.size() - 1});
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_GT(reader.pending_bytes(), 0u);
  reader.feed({bytes.data() + bytes.size() - 1, 1});
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, FrameType::kBarrierEnter);
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(TransportFrame, ReaderRejectsCorruptedPayload) {
  P2pMsg msg;
  msg.comm_id = 9;
  msg.data = {10, 20, 30, 40};
  auto bytes = encode_frame(msg.encode());
  bytes[kFrameHeaderBytes + 2] ^= 0x01;  // flip one payload bit in flight

  FrameReader reader;
  reader.feed(bytes);
  EXPECT_THROW((void)reader.next(), FrameError);
}

TEST(TransportFrame, ReaderRejectsBadMagicUnknownTypeAndOversizedLength) {
  const auto good = encode_frame(HelloMsg{}.encode());
  {
    auto bytes = good;
    bytes[0] ^= 0xff;
    FrameReader reader;
    reader.feed(bytes);
    EXPECT_THROW((void)reader.next(), FrameError);
  }
  {
    auto bytes = good;
    bytes[4] = 0xee;  // type far outside the enum
    FrameReader reader;
    reader.feed(bytes);
    EXPECT_THROW((void)reader.next(), FrameError);
  }
  {
    auto bytes = good;
    bytes[11] = 0xff;  // payload_len high byte -> multi-gigabyte claim
    FrameReader reader;
    reader.feed(bytes);
    EXPECT_THROW((void)reader.next(), FrameError);
  }
}

TEST(TransportFrame, ReaderReassemblesRandomlySplitStreams) {
  // The incremental decoder must produce the identical frame sequence no
  // matter how the byte stream is fragmented: single bytes, mid-header
  // splits, several frames coalesced into one chunk.
  std::vector<std::uint8_t> stream;
  std::vector<Frame> sent;
  for (int repeat = 0; repeat < 3; ++repeat) {
    for (auto& frame : one_of_each()) {
      const auto bytes = encode_frame(frame);
      stream.insert(stream.end(), bytes.begin(), bytes.end());
      sent.push_back(std::move(frame));
    }
  }

  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Lcg rng{seed};
    FrameReader reader;
    std::vector<Frame> received;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t n = std::min<std::size_t>(
          1 + rng.next(97), stream.size() - pos);
      reader.feed({stream.data() + pos, n});
      pos += n;
      while (auto frame = reader.next()) received.push_back(std::move(*frame));
    }
    ASSERT_EQ(received.size(), sent.size()) << "seed " << seed;
    for (std::size_t i = 0; i < sent.size(); ++i) {
      EXPECT_EQ(received[i].type, sent[i].type) << "seed " << seed;
      EXPECT_EQ(received[i].payload, sent[i].payload)
          << "seed " << seed << " frame " << i;
    }
    EXPECT_EQ(reader.pending_bytes(), 0u);
  }
}

}  // namespace
