// Tests for uoi::core: support-set algebra, metrics, the serial UoI_LASSO
// driver's statistical behaviour, and serial == distributed agreement
// across P_B x P_lambda x C layouts.

#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.hpp"
#include "core/support_set.hpp"
#include "core/uoi_lasso.hpp"
#include "core/uoi_lasso_distributed.hpp"
#include "data/synthetic_regression.hpp"
#include "linalg/blas.hpp"
#include "simcluster/cluster.hpp"

namespace {

using uoi::core::SupportSet;
using uoi::core::UoiLasso;
using uoi::core::UoiLassoOptions;

TEST(SupportSet, ConstructionSortsAndDedupes) {
  const SupportSet s({5, 1, 3, 1, 5});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.indices(), (std::vector<std::size_t>{1, 3, 5}));
}

TEST(SupportSet, FromBetaWithTolerance) {
  const std::vector<double> beta{0.0, 1e-9, -0.5, 2.0, 1e-5};
  const SupportSet s = SupportSet::from_beta(beta, 1e-6);
  EXPECT_EQ(s.indices(), (std::vector<std::size_t>{2, 3, 4}));
}

TEST(SupportSet, IntersectAndUnite) {
  const SupportSet a({1, 2, 3, 4});
  const SupportSet b({3, 4, 5});
  EXPECT_EQ(a.intersect(b).indices(), (std::vector<std::size_t>{3, 4}));
  EXPECT_EQ(a.unite(b).indices(), (std::vector<std::size_t>{1, 2, 3, 4, 5}));
}

TEST(SupportSet, IntersectionIsSubsetOfOperands) {
  // The defining property of the selection Reduce (eq. 3).
  const SupportSet a({1, 4, 7, 9});
  const SupportSet b({1, 2, 7});
  const SupportSet i = a.intersect(b);
  EXPECT_TRUE(i.is_subset_of(a));
  EXPECT_TRUE(i.is_subset_of(b));
  EXPECT_TRUE(i.is_subset_of(a.unite(b)));
}

TEST(SupportSet, IntersectAllEmptyFamilyIsFull) {
  const auto full = uoi::core::intersect_all({}, 4);
  EXPECT_EQ(full.size(), 4u);
}

TEST(SupportSet, UniteAllEmptyFamilyIsEmpty) {
  EXPECT_TRUE(uoi::core::unite_all({}).empty());
}

TEST(SupportSet, IndicatorRoundTrip) {
  const SupportSet s({0, 3});
  const auto ind = s.indicator(5);
  EXPECT_EQ(ind, (std::vector<double>{1, 0, 0, 1, 0}));
  EXPECT_EQ(SupportSet::from_indicator(ind), s);
}

TEST(SupportSet, DedupePreservesOrder) {
  std::vector<SupportSet> family{SupportSet({1}), SupportSet({2}),
                                 SupportSet({1}), SupportSet{}};
  const auto unique = uoi::core::dedupe_supports(std::move(family));
  ASSERT_EQ(unique.size(), 3u);
  EXPECT_EQ(unique[0], SupportSet({1}));
  EXPECT_EQ(unique[1], SupportSet({2}));
  EXPECT_TRUE(unique[2].empty());
}

TEST(Metrics, ConfusionCountsAndScores) {
  const SupportSet truth({0, 1, 2});
  const SupportSet estimate({1, 2, 3, 4});
  const auto acc = uoi::core::selection_accuracy(estimate, truth, 6);
  EXPECT_EQ(acc.true_positives, 2u);
  EXPECT_EQ(acc.false_positives, 2u);
  EXPECT_EQ(acc.false_negatives, 1u);
  EXPECT_EQ(acc.true_negatives, 1u);
  EXPECT_DOUBLE_EQ(acc.precision(), 0.5);
  EXPECT_NEAR(acc.recall(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(acc.f1(), 2 * 0.5 * (2.0 / 3.0) / (0.5 + 2.0 / 3.0), 1e-12);
}

TEST(Metrics, PerfectSelection) {
  const SupportSet truth({2, 4});
  const auto acc = uoi::core::selection_accuracy(truth, truth, 8);
  EXPECT_DOUBLE_EQ(acc.f1(), 1.0);
  EXPECT_DOUBLE_EQ(acc.mcc(), 1.0);
}

TEST(Metrics, EstimationAccuracy) {
  const std::vector<double> truth{1.0, 0.0, -2.0};
  const std::vector<double> est{1.1, 0.0, -2.1};
  const auto acc = uoi::core::estimation_accuracy(est, truth);
  EXPECT_NEAR(acc.l2_error, std::sqrt(0.01 + 0.01), 1e-12);
  EXPECT_NEAR(acc.max_abs_error, 0.1, 1e-12);
  EXPECT_NEAR(acc.bias_on_support, 0.0, 1e-12);  // +0.1 and -0.1 cancel
}

UoiLassoOptions fast_options() {
  UoiLassoOptions options;
  options.n_selection_bootstraps = 10;
  options.n_estimation_bootstraps = 6;
  options.n_lambdas = 10;
  options.seed = 404;
  options.admm.eps_abs = 1e-8;
  options.admm.eps_rel = 1e-6;
  options.admm.max_iterations = 5000;
  return options;
}

TEST(UoiLasso, RecoversSparseSupport) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 300;
  spec.n_features = 30;
  spec.support_size = 6;
  spec.noise_stddev = 0.3;
  spec.seed = 77;
  const auto data = uoi::data::make_regression(spec);

  const UoiLasso uoi(fast_options());
  const auto result = uoi.fit(data.x, data.y);

  const SupportSet truth = SupportSet::from_beta(data.beta_true);
  // No true feature may be missed (low false negatives)...
  const auto raw =
      uoi::core::selection_accuracy(result.support, truth, spec.n_features);
  EXPECT_EQ(raw.false_negatives, 0u) << "UoI missed true features";
  // ...and any admitted spurious feature must carry negligible weight:
  // above a small magnitude threshold the support is exact (the estimation
  // average dilutes features that win only a minority of bootstraps).
  const SupportSet thresholded = SupportSet::from_beta(result.beta, 0.05);
  const auto acc =
      uoi::core::selection_accuracy(thresholded, truth, spec.n_features);
  EXPECT_EQ(acc.false_negatives, 0u);
  EXPECT_EQ(acc.false_positives, 0u);
  EXPECT_DOUBLE_EQ(acc.f1(), 1.0);
  // Estimation: coefficients close to truth (low bias — the UoI claim).
  const auto est = uoi::core::estimation_accuracy(result.beta, data.beta_true);
  EXPECT_LT(est.relative_l2, 0.05);
  EXPECT_LT(std::abs(est.bias_on_support), 0.05);
}

TEST(UoiLasso, SelectionIntersectionFindsExactSupportOnPath) {
  // The paper's selection claim in isolation: some lambda's intersected
  // support equals the ground truth exactly.
  uoi::data::RegressionSpec spec;
  spec.n_samples = 300;
  spec.n_features = 30;
  spec.support_size = 6;
  spec.noise_stddev = 0.3;
  spec.seed = 77;
  const auto data = uoi::data::make_regression(spec);
  const auto result = UoiLasso(fast_options()).fit(data.x, data.y);
  const SupportSet truth = SupportSet::from_beta(data.beta_true);
  bool found_exact = false;
  for (const auto& s : result.candidate_supports) {
    if (s == truth) found_exact = true;
  }
  EXPECT_TRUE(found_exact)
      << "no candidate support matches the ground truth exactly";
}

TEST(UoiLasso, CandidateSupportsShrinkWithLambda) {
  // Larger lambda -> smaller (or equal) intersected support, monotone on
  // a well-behaved problem.
  const auto data = uoi::data::make_regression({});
  const UoiLasso uoi(fast_options());
  const auto result = uoi.fit(data.x, data.y);
  ASSERT_EQ(result.candidate_supports.size(), result.lambdas.size());
  // lambdas descend, so supports should (weakly) grow along the path.
  for (std::size_t j = 1; j < result.candidate_supports.size(); ++j) {
    EXPECT_GE(result.candidate_supports[j].size() + 2,
              result.candidate_supports[j - 1].size())
        << "support family is wildly non-monotone at " << j;
  }
}

TEST(UoiLasso, DeterministicAcrossRuns) {
  const auto data = uoi::data::make_regression({});
  const UoiLasso uoi(fast_options());
  const auto a = uoi.fit(data.x, data.y);
  const auto b = uoi.fit(data.x, data.y);
  EXPECT_EQ(uoi::linalg::max_abs_diff(a.beta, b.beta), 0.0);
  EXPECT_EQ(a.chosen_support_per_bootstrap, b.chosen_support_per_bootstrap);
}

TEST(UoiLasso, SeedChangesResamples) {
  auto options = fast_options();
  const auto idx_a = uoi::core::selection_bootstrap_indices(options, 100, 0);
  options.seed += 1;
  const auto idx_b = uoi::core::selection_bootstrap_indices(options, 100, 0);
  EXPECT_NE(idx_a, idx_b);
}

TEST(UoiLasso, EstimationSplitIsPartition) {
  const auto options = fast_options();
  const auto split = uoi::core::estimation_split(options, 40, 3);
  std::vector<bool> seen(40, false);
  for (const auto i : split.train) seen[i] = true;
  for (const auto i : split.eval) {
    EXPECT_FALSE(seen[i]) << "train/eval overlap at " << i;
    seen[i] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(UoiLasso, ExplicitLambdaGridIsUsedDescending) {
  auto options = fast_options();
  options.lambdas = {0.1, 10.0, 1.0};
  const auto data = uoi::data::make_regression({});
  const auto grid =
      uoi::core::resolve_lambda_grid(options, data.x, data.y);
  EXPECT_EQ(grid, (std::vector<double>{10.0, 1.0, 0.1}));
}

TEST(UoiLasso, OlsViaAdmmMatchesDirect) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 80;
  spec.n_features = 16;
  spec.support_size = 4;
  spec.seed = 99;
  const auto data = uoi::data::make_regression(spec);
  auto options = fast_options();
  options.n_selection_bootstraps = 5;
  options.n_estimation_bootstraps = 3;
  options.admm.eps_abs = 1e-10;
  options.admm.eps_rel = 1e-8;
  options.admm.max_iterations = 30000;
  const auto direct = UoiLasso(options).fit(data.x, data.y);
  options.ols_via_admm = true;
  const auto via_admm = UoiLasso(options).fit(data.x, data.y);
  EXPECT_LT(uoi::linalg::max_abs_diff(direct.beta, via_admm.beta), 1e-4);
}

struct LayoutCase {
  int ranks;
  int pb;
  int pl;
};

class DistributedUoiParam : public ::testing::TestWithParam<LayoutCase> {};

TEST_P(DistributedUoiParam, MatchesSerialResult) {
  const auto layout_case = GetParam();
  uoi::data::RegressionSpec spec;
  spec.n_samples = 120;
  spec.n_features = 24;
  spec.support_size = 5;
  spec.noise_stddev = 0.3;
  spec.seed = 55;
  const auto data = uoi::data::make_regression(spec);

  auto options = fast_options();
  options.n_selection_bootstraps = 8;
  options.n_estimation_bootstraps = 4;
  options.n_lambdas = 8;
  const auto serial = UoiLasso(options).fit(data.x, data.y);

  uoi::sim::Cluster::run(layout_case.ranks, [&](uoi::sim::Comm& comm) {
    const auto distributed = uoi::core::uoi_lasso_distributed(
        comm, data.x, data.y, options,
        {layout_case.pb, layout_case.pl});
    // Same candidate supports (both intersect the same resampled fits).
    ASSERT_EQ(distributed.model.candidate_supports.size(),
              serial.candidate_supports.size());
    for (std::size_t j = 0; j < serial.candidate_supports.size(); ++j) {
      EXPECT_EQ(distributed.model.candidate_supports[j],
                serial.candidate_supports[j])
          << "candidate support mismatch at lambda index " << j;
    }
    EXPECT_EQ(distributed.model.chosen_support_per_bootstrap,
              serial.chosen_support_per_bootstrap);
    EXPECT_LT(
        uoi::linalg::max_abs_diff(distributed.model.beta, serial.beta),
        2e-3);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, DistributedUoiParam,
    ::testing::Values(LayoutCase{1, 1, 1}, LayoutCase{2, 1, 1},
                      LayoutCase{4, 2, 1}, LayoutCase{4, 1, 2},
                      LayoutCase{8, 2, 2}, LayoutCase{8, 4, 1},
                      LayoutCase{6, 3, 2}));

TEST(DistributedUoi, RejectsLayoutLargerThanCommunicator) {
  const auto data = uoi::data::make_regression({});
  uoi::sim::Cluster::run(4, [&](uoi::sim::Comm& comm) {
    EXPECT_THROW((void)uoi::core::uoi_lasso_distributed(
                     comm, data.x, data.y, fast_options(), {5, 1}),
                 uoi::support::InvalidArgument);
  });
}

// Indivisible layouts are legal since the remainder-tolerant group split:
// 4 ranks under {3, 1} run as three groups of widths {2, 1, 1} and must
// agree with the serial reference exactly like any even layout.
TEST(DistributedUoi, AcceptsIndivisibleLayout) {
  const auto data = uoi::data::make_regression({});
  const auto serial = uoi::core::UoiLasso(fast_options()).fit(data.x, data.y);
  uoi::sim::Cluster::run(4, [&](uoi::sim::Comm& comm) {
    const auto result = uoi::core::uoi_lasso_distributed(
        comm, data.x, data.y, fast_options(), {3, 1});
    EXPECT_EQ(result.model.support.indices(), serial.support.indices());
  });
}

TEST(DistributedUoi, BreakdownBucketsAreNonNegative) {
  const auto data = uoi::data::make_regression({});
  auto options = fast_options();
  options.n_selection_bootstraps = 4;
  options.n_estimation_bootstraps = 2;
  options.n_lambdas = 4;
  uoi::sim::Cluster::run(2, [&](uoi::sim::Comm& comm) {
    const auto result =
        uoi::core::uoi_lasso_distributed(comm, data.x, data.y, options);
    EXPECT_GE(result.breakdown.communication_seconds, 0.0);
    EXPECT_GE(result.breakdown.distribution_seconds, 0.0);
  });
}

}  // namespace
