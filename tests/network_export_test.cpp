// Tests for the Granger network export/analysis utilities and the
// distributed elastic net.

#include <gtest/gtest.h>

#include "data/synthetic_regression.hpp"
#include "linalg/blas.hpp"
#include "simcluster/cluster.hpp"
#include "solvers/admm_lasso.hpp"
#include "solvers/distributed_admm.hpp"
#include "solvers/lambda_grid.hpp"
#include "var/granger.hpp"
#include "var/var_model.hpp"

namespace {

using uoi::linalg::Matrix;
using uoi::var::GrangerNetwork;
using uoi::var::VarModel;

GrangerNetwork chain_network() {
  // 0 -> 1 -> 2, plus 0 -> 3.
  Matrix a(4, 4);
  a(1, 0) = 0.5;
  a(2, 1) = 0.4;
  a(3, 0) = -0.3;
  return GrangerNetwork::from_model(VarModel({a}));
}

TEST(NetworkExport, JsonContainsNodesAndEdges) {
  const auto net = chain_network();
  const auto json = net.to_json({"A", "B", "C", "D"});
  EXPECT_NE(json.find("\"nodes\": [\"A\", \"B\", \"C\", \"D\"]"),
            std::string::npos);
  EXPECT_NE(json.find("{\"source\": 0, \"target\": 1, \"weight\": 0.5}"),
            std::string::npos);
  EXPECT_NE(json.find("\"weight\": -0.3"), std::string::npos);
}

TEST(NetworkExport, AdjacencyMatrixLayout) {
  const auto adjacency = chain_network().to_adjacency_matrix();
  EXPECT_DOUBLE_EQ(adjacency(1, 0), 0.5);   // 0 -> 1
  EXPECT_DOUBLE_EQ(adjacency(2, 1), 0.4);
  EXPECT_DOUBLE_EQ(adjacency(3, 0), -0.3);
  EXPECT_DOUBLE_EQ(adjacency(0, 1), 0.0);   // no reverse edge
}

TEST(NetworkExport, SubgraphRenumbersAndFilters) {
  const auto sub = chain_network().subgraph({0, 1});
  EXPECT_EQ(sub.node_count(), 2u);
  ASSERT_EQ(sub.edge_count(), 1u);  // only 0 -> 1 survives
  EXPECT_EQ(sub.edges()[0].source, 0u);
  EXPECT_EQ(sub.edges()[0].target, 1u);

  // Renumbering follows the node-list order.
  const auto reversed = chain_network().subgraph({1, 0});
  ASSERT_EQ(reversed.edge_count(), 1u);
  EXPECT_EQ(reversed.edges()[0].source, 1u);  // old 0 is new 1
  EXPECT_EQ(reversed.edges()[0].target, 0u);
}

TEST(NetworkExport, DescendantsFollowDirectedPaths) {
  const auto net = chain_network();
  EXPECT_EQ(net.descendants(0), (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(net.descendants(1), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(net.descendants(2), (std::vector<std::size_t>{2}));
}

TEST(NetworkExport, SubgraphRejectsBadNode) {
  EXPECT_THROW((void)chain_network().subgraph({7}),
               uoi::support::InvalidArgument);
}

TEST(DistributedElasticNet, MatchesSerialSolver) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 90;
  spec.n_features = 14;
  spec.support_size = 4;
  spec.feature_correlation = 0.6;
  spec.seed = 3;
  const auto data = uoi::data::make_regression(spec);
  const double lambda1 = 0.1 * uoi::solvers::lambda_max(data.x, data.y);
  const double lambda2 = 2.0;

  uoi::solvers::AdmmOptions options;
  options.eps_abs = 1e-9;
  options.eps_rel = 1e-7;
  options.max_iterations = 30000;
  const uoi::solvers::LassoAdmmSolver serial(data.x, data.y, options);
  const auto reference = serial.solve_elastic_net(lambda1, lambda2);

  uoi::sim::Cluster::run(4, [&](uoi::sim::Comm& comm) {
    const std::size_t n = data.x.rows();
    const std::size_t begin = n * comm.rank() / comm.size();
    const std::size_t end = n * (comm.rank() + 1) / comm.size();
    const uoi::solvers::DistributedLassoAdmmSolver solver(
        comm, data.x.row_block(begin, end - begin),
        std::span<const double>(data.y).subspan(begin, end - begin),
        options);
    const auto fit = solver.solve_elastic_net(lambda1, lambda2);
    EXPECT_TRUE(fit.converged);
    EXPECT_LT(uoi::linalg::max_abs_diff(fit.beta, reference.beta), 2e-3);
  });
}

TEST(DistributedElasticNet, L2ShrinksGroupedCoefficients) {
  // On a correlated design the ridge component spreads weight across the
  // group instead of picking one member — the elastic net's raison d'etre.
  uoi::data::RegressionSpec spec;
  spec.n_samples = 150;
  spec.n_features = 8;
  spec.support_size = 2;
  spec.feature_correlation = 0.9;
  spec.seed = 5;
  const auto data = uoi::data::make_regression(spec);
  const double lambda1 = 0.2 * uoi::solvers::lambda_max(data.x, data.y);

  uoi::sim::Cluster::run(2, [&](uoi::sim::Comm& comm) {
    const std::size_t n = data.x.rows();
    const std::size_t begin = n * comm.rank() / comm.size();
    const std::size_t end = n * (comm.rank() + 1) / comm.size();
    const uoi::solvers::DistributedLassoAdmmSolver solver(
        comm, data.x.row_block(begin, end - begin),
        std::span<const double>(data.y).subspan(begin, end - begin));
    const auto pure_l1 = solver.solve_elastic_net(lambda1, 0.0);
    const auto elastic = solver.solve_elastic_net(lambda1, 20.0);
    // The ridge component strictly shrinks the coefficient norm.
    EXPECT_LT(uoi::linalg::nrm2(elastic.beta),
              uoi::linalg::nrm2(pure_l1.beta));
  });
}

}  // namespace
