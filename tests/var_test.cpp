// Tests for uoi::var: model/stability machinery, lag construction against
// the paper's eqs. 7-8, block bootstrap invariants, Granger extraction,
// serial UoI_VAR recovery, and the distributed Kronecker/vectorization +
// distributed driver against the serial reference.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/metrics.hpp"
#include "data/synthetic_var.hpp"
#include "linalg/blas.hpp"
#include "solvers/admm_lasso_sparse.hpp"
#include "solvers/screening.hpp"
#include "simcluster/cluster.hpp"
#include "var/block_bootstrap.hpp"
#include "var/granger.hpp"
#include "var/lag_matrix.hpp"
#include "var/uoi_var.hpp"
#include "var/var_distributed.hpp"
#include "var/var_model.hpp"

namespace {

using uoi::linalg::Matrix;
using uoi::linalg::Vector;
using uoi::var::VarModel;

TEST(VarModel, CompanionOfVar1IsA1) {
  Matrix a{{0.5, 0.1}, {0.0, 0.3}};
  const VarModel model({a});
  const Matrix c = model.companion();
  EXPECT_EQ(uoi::linalg::max_abs_diff(c, a), 0.0);
}

TEST(VarModel, CompanionShapeForVar2) {
  Matrix a1{{0.5, 0.0}, {0.0, 0.5}};
  Matrix a2{{0.1, 0.0}, {0.0, 0.1}};
  const VarModel model({a1, a2});
  const Matrix c = model.companion();
  ASSERT_EQ(c.rows(), 4u);
  EXPECT_DOUBLE_EQ(c(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(c(0, 2), 0.1);
  EXPECT_DOUBLE_EQ(c(2, 0), 1.0);  // shift block
  EXPECT_DOUBLE_EQ(c(3, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(2, 2), 0.0);
}

TEST(VarModel, SpectralRadiusOfDiagonalSystem) {
  Matrix a{{0.7, 0.0}, {0.0, 0.4}};
  const VarModel model({a});
  EXPECT_NEAR(model.companion_spectral_radius(), 0.7, 1e-6);
  EXPECT_TRUE(model.is_stable());
}

TEST(VarModel, UnstableSystemDetected) {
  Matrix a{{1.05, 0.0}, {0.0, 0.4}};
  const VarModel model({a});
  EXPECT_FALSE(model.is_stable());
}

TEST(VarModel, Var2StabilityThroughCompanion) {
  // x_t = 0.5 x_{t-1} + 0.6 x_{t-2}: roots of z^2 - 0.5 z - 0.6 ->
  // max |root| = (0.5 + sqrt(0.25 + 2.4)) / 2 ~ 1.064 -> unstable.
  Matrix a1{{0.5}};
  Matrix a2{{0.6}};
  const VarModel model({a1, a2});
  EXPECT_GT(model.companion_spectral_radius(), 1.0);
}

TEST(VarModel, VecBRoundTrip) {
  Matrix a1{{0.5, 0.1}, {-0.2, 0.3}};
  Matrix a2{{0.0, 0.05}, {0.07, 0.0}};
  const VarModel model({a1, a2});
  const Vector v = model.vec_b();
  ASSERT_EQ(v.size(), 8u);
  const VarModel back = VarModel::from_vec_b(v, 2, 2);
  EXPECT_EQ(uoi::linalg::max_abs_diff(back.coefficient(0), a1), 0.0);
  EXPECT_EQ(uoi::linalg::max_abs_diff(back.coefficient(1), a2), 0.0);
}

TEST(VarModel, SimulateIsDeterministicAndSized) {
  const auto model = uoi::data::make_sparse_var({});
  uoi::var::SimulateOptions sim;
  sim.n_samples = 100;
  sim.seed = 5;
  const Matrix a = uoi::var::simulate(model, sim);
  const Matrix b = uoi::var::simulate(model, sim);
  EXPECT_EQ(a.rows(), 100u);
  EXPECT_EQ(a.cols(), model.dim());
  EXPECT_EQ(uoi::linalg::max_abs_diff(a, b), 0.0);
}

class StableVarParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StableVarParam, RandomSystemsAreStableAndStationaryish) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 12;
  spec.order = 1 + GetParam() % 2;
  spec.seed = GetParam();
  const auto model = uoi::data::make_sparse_var(spec);
  EXPECT_TRUE(model.is_stable());
  EXPECT_NEAR(model.companion_spectral_radius(), spec.spectral_radius, 0.02);

  // Stationarity smoke test: late-sample variance is bounded (no blow-up).
  uoi::var::SimulateOptions sim;
  sim.n_samples = 500;
  sim.seed = GetParam() * 7 + 1;
  const Matrix series = uoi::var::simulate(model, sim);
  double max_abs = 0.0;
  for (std::size_t t = 400; t < 500; ++t) {
    for (std::size_t c = 0; c < series.cols(); ++c) {
      max_abs = std::max(max_abs, std::abs(series(t, c)));
    }
  }
  EXPECT_LT(max_abs, 50.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StableVarParam,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(LagMatrix, MatchesPaperEquations78) {
  // 4 samples, p = 2, d = 1: Y rows must be X_4, X_3, X_2 (descending),
  // X rows their one-step lags.
  Matrix series{{1, 2}, {3, 4}, {5, 6}, {7, 8}};  // rows are X_1..X_4
  const auto lag = uoi::var::build_lag_regression(series, 1);
  ASSERT_EQ(lag.y.rows(), 3u);
  EXPECT_DOUBLE_EQ(lag.y(0, 0), 7.0);  // X_4
  EXPECT_DOUBLE_EQ(lag.y(1, 0), 5.0);  // X_3
  EXPECT_DOUBLE_EQ(lag.y(2, 1), 4.0);  // X_2
  EXPECT_DOUBLE_EQ(lag.x(0, 0), 5.0);  // X_3 lags X_4
  EXPECT_DOUBLE_EQ(lag.x(2, 1), 2.0);  // X_1 lags X_2
}

TEST(LagMatrix, SecondOrderBlocks) {
  Matrix series{{1, 10}, {2, 20}, {3, 30}, {4, 40}, {5, 50}};
  const auto lag = uoi::var::build_lag_regression(series, 2);
  ASSERT_EQ(lag.y.rows(), 3u);
  ASSERT_EQ(lag.x.cols(), 4u);
  // Row 0: response X_5; lags [X_4', X_3'].
  EXPECT_DOUBLE_EQ(lag.y(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(lag.x(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(lag.x(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(lag.x(0, 3), 30.0);
}

TEST(LagMatrix, NoiselessSystemSolvesExactly) {
  // With zero noise, vec Y = (I (x) X) vec B exactly; verify the
  // vectorization identity end to end.
  uoi::data::VarSpec spec;
  spec.n_nodes = 4;
  spec.seed = 11;
  const auto model = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 50;
  sim.noise_stddev = 0.0;
  sim.seed = 12;
  // Seed rows are noise, so simulate with noise then zero... instead use
  // the recursion directly from a noisy start:
  const Matrix series = uoi::var::simulate(model, sim);
  // With noise_stddev == 0 the first d rows are zero too; the recursion
  // makes the whole series zero. Use a tiny-noise series instead and check
  // the residual of the true parameters is tiny.
  uoi::var::SimulateOptions sim2 = sim;
  sim2.noise_stddev = 1.0;
  const Matrix noisy = uoi::var::simulate(model, sim2);
  const auto lag = uoi::var::build_lag_regression(noisy, model.order());
  const auto problem = uoi::var::vectorize(lag);
  const Vector vb = model.vec_b();
  Vector predicted(problem.design.rows(), 0.0);
  problem.design.gemv(1.0, vb, 0.0, predicted);
  // Residual = noise; with unit noise the mean squared residual ~ 1.
  double mse = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double e = predicted[i] - problem.vec_y[i];
    mse += e * e;
  }
  mse /= static_cast<double>(predicted.size());
  EXPECT_NEAR(mse, 1.0, 0.35);
  (void)series;
}

TEST(BlockBootstrap, IndicesAreBlocksOfConsecutiveTimes) {
  uoi::var::BlockBootstrapOptions options;
  options.block_length = 5;
  options.seed = 3;
  const auto idx = uoi::var::block_bootstrap_indices(40, options);
  ASSERT_EQ(idx.size(), 40u);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    EXPECT_LT(idx[i], 40u);
    if (i % 5 != 0) {
      EXPECT_EQ(idx[i], idx[i - 1] + 1) << "discontinuity inside a block";
    }
  }
}

TEST(BlockBootstrap, DeterministicPerTask) {
  uoi::var::BlockBootstrapOptions options;
  options.seed = 9;
  options.task_a = 1;
  options.task_b = 2;
  const auto a = uoi::var::block_bootstrap_indices(50, options);
  const auto b = uoi::var::block_bootstrap_indices(50, options);
  EXPECT_EQ(a, b);
  options.task_b = 3;
  EXPECT_NE(uoi::var::block_bootstrap_indices(50, options), a);
}

TEST(BlockBootstrap, DefaultBlockLengthHeuristic) {
  EXPECT_EQ(uoi::var::default_block_length(8), 2u);
  EXPECT_EQ(uoi::var::default_block_length(1000), 10u);
}

TEST(Granger, ExtractsEdgesAboveTolerance) {
  Matrix a{{0.5, 0.0, 0.2}, {0.001, 0.4, 0.0}, {0.0, -0.3, 0.6}};
  const VarModel model({a});
  const auto net =
      uoi::var::GrangerNetwork::from_model(model, /*tolerance=*/0.01);
  // Edges (j -> i): 2->0 (0.2), 1->2 (-0.3); 0->1 is below tolerance;
  // self loops dropped.
  EXPECT_EQ(net.edge_count(), 2u);
  const auto in_deg = net.in_degrees();
  EXPECT_EQ(in_deg[0], 1u);
  EXPECT_EQ(in_deg[2], 1u);
  EXPECT_NEAR(net.density(), 2.0 / 6.0, 1e-12);
}

TEST(Granger, SelfLoopsOptional) {
  Matrix a{{0.5, 0.0}, {0.0, 0.4}};
  const VarModel model({a});
  EXPECT_EQ(uoi::var::GrangerNetwork::from_model(model).edge_count(), 0u);
  EXPECT_EQ(uoi::var::GrangerNetwork::from_model(model, 0.0, true).edge_count(),
            2u);
}

TEST(Granger, DotAndEdgeListRender) {
  Matrix a{{0.0, 0.3}, {0.0, 0.0}};
  const VarModel model({a});
  const auto net = uoi::var::GrangerNetwork::from_model(model);
  const auto dot = net.to_dot({"AAA", "BBB"});
  EXPECT_NE(dot.find("\"BBB\" -> \"AAA\""), std::string::npos);
  EXPECT_NE(net.to_edge_list({"AAA", "BBB"}).find("BBB -> AAA"),
            std::string::npos);
}

uoi::var::UoiVarOptions fast_var_options() {
  uoi::var::UoiVarOptions options;
  options.n_selection_bootstraps = 8;
  options.n_estimation_bootstraps = 5;
  options.n_lambdas = 10;
  options.seed = 515;
  options.admm.eps_abs = 1e-8;
  options.admm.eps_rel = 1e-6;
  options.admm.max_iterations = 5000;
  return options;
}

TEST(UoiVar, RecoversSparseNetwork) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 10;
  spec.edges_per_node = 1.5;
  spec.seed = 21;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 600;
  sim.seed = 22;
  const Matrix series = uoi::var::simulate(truth, sim);

  const auto result = uoi::var::UoiVar(fast_var_options()).fit(series);
  EXPECT_NEAR(result.design_sparsity, 0.9, 1e-12);

  // Compare vec-B supports with a magnitude threshold (as in the LASSO
  // test, tiny diluted coefficients are not real selections).
  const auto est_support =
      uoi::core::SupportSet::from_beta(result.vec_beta, 0.05);
  const auto true_support = uoi::core::SupportSet::from_beta(truth.vec_b());
  const auto acc = uoi::core::selection_accuracy(
      est_support, true_support, result.vec_beta.size());
  EXPECT_EQ(acc.false_negatives, 0u) << "missed true edges";
  EXPECT_LE(acc.false_positives, 2u) << "spurious edges";

  // Coefficient accuracy on the true support.
  // Block-bootstrap resampling adds estimation variance relative to the
  // iid-regression case, so the tolerance is looser than UoI_LASSO's.
  const auto est =
      uoi::core::estimation_accuracy(result.vec_beta, truth.vec_b());
  EXPECT_LT(est.relative_l2, 0.3);
}

TEST(UoiVar, StructuredAndSparseBackendsAgree) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 6;
  spec.seed = 23;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 200;
  sim.seed = 24;
  const Matrix series = uoi::var::simulate(truth, sim);

  auto options = fast_var_options();
  options.n_selection_bootstraps = 4;
  options.n_estimation_bootstraps = 3;
  options.n_lambdas = 6;
  options.backend = uoi::var::VarSolverBackend::kStructured;
  const auto structured = uoi::var::UoiVar(options).fit(series);
  options.backend = uoi::var::VarSolverBackend::kSparse;
  const auto sparse = uoi::var::UoiVar(options).fit(series);

  EXPECT_LT(
      uoi::linalg::max_abs_diff(structured.vec_beta, sparse.vec_beta), 1e-4);
  EXPECT_EQ(structured.support, sparse.support);
}

TEST(UoiVar, ScreeningModesAreByteIdenticalEndToEnd) {
  // The canonical two-stage chain contract: off / safe / strong must give
  // bit-for-bit the same VAR fit on both serial backends. Screening only
  // changes which columns get gathered, never the trajectory.
  uoi::data::VarSpec spec;
  spec.n_nodes = 6;
  spec.seed = 31;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 200;
  sim.seed = 32;
  const Matrix series = uoi::var::simulate(truth, sim);

  auto options = fast_var_options();
  options.n_selection_bootstraps = 4;
  options.n_estimation_bootstraps = 3;
  options.n_lambdas = 6;
  for (const auto backend : {uoi::var::VarSolverBackend::kStructured,
                             uoi::var::VarSolverBackend::kSparse}) {
    options.backend = backend;
    options.screen.mode = uoi::solvers::ScreenMode::kOff;
    const auto off = uoi::var::UoiVar(options).fit(series);
    for (const auto mode :
         {uoi::solvers::ScreenMode::kSafe, uoi::solvers::ScreenMode::kStrong}) {
      options.screen.mode = mode;
      const auto screened = uoi::var::UoiVar(options).fit(series);
      EXPECT_EQ(
          uoi::linalg::max_abs_diff(screened.vec_beta, off.vec_beta), 0.0)
          << "backend " << static_cast<int>(backend) << " mode "
          << uoi::solvers::screen_mode_name(mode);
      EXPECT_EQ(screened.support, off.support);
      EXPECT_EQ(screened.lambdas, off.lambdas);
    }
  }
}

TEST(UoiVar, EstimatedModelIsUsuallyStable) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 8;
  spec.seed = 25;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 500;
  sim.seed = 26;
  const auto result =
      uoi::var::UoiVar(fast_var_options()).fit(uoi::var::simulate(truth, sim));
  EXPECT_LT(result.model.companion_spectral_radius(), 1.05);
}

TEST(UoiVar, InterceptRecoveredWhenCentering) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 5;
  spec.seed = 27;
  auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 800;
  sim.seed = 28;
  Matrix series = uoi::var::simulate(truth, sim);
  // Shift the series: X'_t = X_t + c corresponds to mu = (I - sum A_j) c.
  const double shift = 5.0;
  for (std::size_t t = 0; t < series.rows(); ++t) {
    for (std::size_t c = 0; c < series.cols(); ++c) series(t, c) += shift;
  }
  const auto result = uoi::var::UoiVar(fast_var_options()).fit(series);
  Vector expected_mu(5, shift);
  const auto& a = result.model.coefficient(0);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) expected_mu[i] -= a(i, j) * shift;
  }
  EXPECT_LT(uoi::linalg::max_abs_diff(result.model.intercept(), expected_mu),
            0.4);
}

// ---- distributed paths ----

class KronDistParam : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(KronDistParam, AssemblyMatchesSerialVectorization) {
  const auto [ranks, readers] = GetParam();
  uoi::data::VarSpec spec;
  spec.n_nodes = 5;
  spec.seed = 31;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 40;
  sim.seed = 32;
  const Matrix series = uoi::var::simulate(truth, sim);
  const auto lag = uoi::var::build_lag_regression(series, 1);
  const auto problem = uoi::var::vectorize(lag);
  const auto dense_design =
      uoi::linalg::kron_identity_sparse(lag.x, series.cols()).to_dense();

  uoi::sim::Cluster::run(ranks, [&](uoi::sim::Comm& comm) {
    const auto block =
        uoi::var::distributed_kron_vectorize(comm, lag, readers);
    // Every local row must equal the corresponding global row of I (x) X
    // (nonzero payload at the equation's column offset) and of vec Y.
    for (std::size_t i = 0; i < block.y.size(); ++i) {
      const std::size_t global = block.global_row_begin + i;
      EXPECT_DOUBLE_EQ(block.y[i], problem.vec_y[global]);
      const std::size_t e = block.equation_of_row[i];
      for (std::size_t c = 0; c < block.dp; ++c) {
        EXPECT_DOUBLE_EQ(block.x_rows(i, c),
                         dense_design(global, e * block.dp + c));
      }
    }
    // Rows partition [0, total) contiguously.
    std::size_t total = block.y.size();
    std::vector<std::size_t> counts{total};
    std::vector<std::size_t> all(static_cast<std::size_t>(comm.size()));
    comm.allgather(std::span<const std::size_t>(counts),
                   std::span<std::size_t>(all));
    std::size_t sum = 0;
    for (const auto c : all) sum += c;
    EXPECT_EQ(sum, problem.vec_y.size());
  });
}

INSTANTIATE_TEST_SUITE_P(Layouts, KronDistParam,
                         ::testing::Values(std::pair<int, int>{1, 1},
                                           std::pair<int, int>{2, 1},
                                           std::pair<int, int>{4, 2},
                                           std::pair<int, int>{6, 3},
                                           std::pair<int, int>{8, 8}));

TEST(DistributedVarAdmm, MatchesStructuredSolver) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 6;
  spec.seed = 33;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 80;
  sim.seed = 34;
  const Matrix series = uoi::var::simulate(truth, sim);
  const auto lag = uoi::var::build_lag_regression(series, 1);
  const auto problem = uoi::var::vectorize(lag);

  uoi::solvers::AdmmOptions options;
  options.eps_abs = 1e-9;
  options.eps_rel = 1e-7;
  options.max_iterations = 30000;
  const double lambda = 5.0;
  const uoi::solvers::KronLassoAdmmSolver reference(problem.design,
                                                    problem.vec_y, options);
  const auto serial = reference.solve(lambda);

  uoi::sim::Cluster::run(4, [&](uoi::sim::Comm& comm) {
    const auto block = uoi::var::distributed_kron_vectorize(comm, lag, 2);
    const uoi::var::DistributedVarAdmmSolver solver(comm, block, options);
    const auto fit = solver.solve(lambda);
    EXPECT_TRUE(fit.converged);
    EXPECT_LT(uoi::linalg::max_abs_diff(fit.beta, serial.beta), 2e-3);
  });
}

struct VarLayoutCase {
  int ranks;
  int pb;
  int pl;
  int readers;
};

class DistributedUoiVarParam
    : public ::testing::TestWithParam<VarLayoutCase> {};

TEST_P(DistributedUoiVarParam, MatchesSerialDriver) {
  const auto layout = GetParam();
  uoi::data::VarSpec spec;
  spec.n_nodes = 6;
  spec.edges_per_node = 1.5;
  spec.seed = 35;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 150;
  sim.seed = 36;
  const Matrix series = uoi::var::simulate(truth, sim);

  auto options = fast_var_options();
  options.n_selection_bootstraps = 4;
  options.n_estimation_bootstraps = 3;
  options.n_lambdas = 6;
  const auto serial = uoi::var::UoiVar(options).fit(series);

  uoi::sim::Cluster::run(layout.ranks, [&](uoi::sim::Comm& comm) {
    const auto distributed = uoi::var::uoi_var_distributed(
        comm, series, options, {layout.pb, layout.pl}, layout.readers);
    ASSERT_EQ(distributed.model.candidate_supports.size(),
              serial.candidate_supports.size());
    for (std::size_t j = 0; j < serial.candidate_supports.size(); ++j) {
      EXPECT_EQ(distributed.model.candidate_supports[j],
                serial.candidate_supports[j])
          << "candidate support mismatch at lambda " << j;
    }
    EXPECT_EQ(distributed.model.chosen_support_per_bootstrap,
              serial.chosen_support_per_bootstrap);
    EXPECT_LT(uoi::linalg::max_abs_diff(distributed.model.vec_beta,
                                        serial.vec_beta),
              2e-3);
    // Reconstructed coefficient matrices agree too.
    EXPECT_LT(uoi::linalg::max_abs_diff(
                  distributed.model.model.coefficient(0),
                  serial.model.coefficient(0)),
              2e-3);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, DistributedUoiVarParam,
    ::testing::Values(VarLayoutCase{1, 1, 1, 1}, VarLayoutCase{2, 1, 1, 1},
                      VarLayoutCase{4, 2, 1, 2}, VarLayoutCase{4, 1, 2, 1},
                      VarLayoutCase{8, 2, 2, 2}, VarLayoutCase{6, 1, 1, 3}));

}  // namespace

namespace var2_distributed_tests {

using uoi::linalg::Matrix;

TEST(DistributedUoiVar, SecondOrderMatchesSerial) {
  // d = 2 exercises the multi-lag block layout through the whole
  // distributed pipeline (kron assembly width dp = 2p).
  uoi::data::VarSpec spec;
  spec.n_nodes = 4;
  spec.order = 2;
  spec.edges_per_node = 1.0;
  spec.seed = 51;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 240;
  sim.seed = 52;
  const Matrix series = uoi::var::simulate(truth, sim);

  uoi::var::UoiVarOptions options;
  options.order = 2;
  options.n_selection_bootstraps = 4;
  options.n_estimation_bootstraps = 3;
  options.n_lambdas = 5;
  options.admm.eps_abs = 1e-9;
  options.admm.eps_rel = 1e-7;
  options.admm.max_iterations = 20000;
  options.support_tolerance = 1e-5;
  const auto serial = uoi::var::UoiVar(options).fit(series);

  uoi::sim::Cluster::run(4, [&](uoi::sim::Comm& comm) {
    const auto distributed =
        uoi::var::uoi_var_distributed(comm, series, options, {2, 1}, 2);
    EXPECT_LT(uoi::linalg::max_abs_diff(distributed.model.vec_beta,
                                        serial.vec_beta),
              2e-3);
    EXPECT_LT(uoi::linalg::max_abs_diff(
                  distributed.model.model.coefficient(1),
                  serial.model.coefficient(1)),
              2e-3);
  });
}

}  // namespace var2_distributed_tests
