// Tests for the cost-guided task scheduler: grid/seed determinism, the
// remainder-tolerant group split (prime communicator sizes), placement
// policies, cost calibration, the one-sided ticket board under concurrent
// claims (TSan-labeled), and end-to-end schedule invariance of the
// distributed drivers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <set>
#include <vector>

#include "core/distributed_common.hpp"
#include "core/uoi_lasso_distributed.hpp"
#include "data/synthetic_regression.hpp"
#include "data/synthetic_var.hpp"
#include "linalg/matrix.hpp"
#include "sched/cost_model.hpp"
#include "sched/schedule_policy.hpp"
#include "sched/scheduler.hpp"
#include "sched/task_grid.hpp"
#include "sched/work_queue.hpp"
#include "simcluster/cluster.hpp"
#include "var/var_distributed.hpp"

namespace {

using uoi::sched::GroupInfo;
using uoi::sched::SchedulePolicy;
using uoi::sched::TaskGrid;

TEST(TaskGrid, CellIdRoundTripAndChainOwnership) {
  const TaskGrid grid(4, 10, 3, 42);
  EXPECT_EQ(grid.n_cells(), 12u);
  for (std::size_t id = 0; id < grid.n_cells(); ++id) {
    const auto cell = grid.cell(id);
    EXPECT_EQ(grid.cell_id(cell.bootstrap, cell.chain), id);
  }
  // Chains partition the lambda indices by j % n_chains, ascending.
  std::set<std::size_t> seen;
  for (std::size_t c = 0; c < grid.n_chains(); ++c) {
    const auto lambdas = grid.chain_lambdas(c);
    EXPECT_TRUE(std::is_sorted(lambdas.begin(), lambdas.end()));
    for (const std::size_t j : lambdas) {
      EXPECT_EQ(j % grid.n_chains(), c);
      EXPECT_TRUE(seen.insert(j).second);
    }
  }
  EXPECT_EQ(seen.size(), grid.n_lambdas());
}

TEST(TaskGrid, CellSeedsKeyedByCellIdOnly) {
  const TaskGrid grid(6, 8, 4, 12345);
  const TaskGrid same(6, 8, 4, 12345);
  const TaskGrid other_seed(6, 8, 4, 54321);
  std::set<std::uint64_t> seeds;
  for (std::size_t id = 0; id < grid.n_cells(); ++id) {
    // Identical grids give identical seeds (placement-invariant replay);
    // distinct cells and distinct master seeds give distinct streams.
    EXPECT_EQ(grid.cell_seed(id), same.cell_seed(id));
    EXPECT_NE(grid.cell_seed(id), other_seed.cell_seed(id));
    EXPECT_TRUE(seeds.insert(grid.cell_seed(id)).second);
  }
}

// Regression for the group-split degeneration: prime communicator sizes
// used to collapse to a single group because only exact divisors were
// accepted. The remainder-tolerant split keeps all requested groups, with
// the first size % n_groups groups one rank wider.
TEST(GroupWidths, RemainderTolerantAtPrimeSize7) {
  const auto widths = uoi::sched::group_widths(7, 4);
  ASSERT_EQ(widths.size(), 4u);
  EXPECT_EQ(std::accumulate(widths.begin(), widths.end(), 0), 7);
  EXPECT_EQ(widths, (std::vector<int>{2, 2, 2, 1}));
}

TEST(GroupWidths, RemainderTolerantAtPrimeSize11) {
  const auto widths = uoi::sched::group_widths(11, 4);
  ASSERT_EQ(widths.size(), 4u);
  EXPECT_EQ(std::accumulate(widths.begin(), widths.end(), 0), 11);
  EXPECT_EQ(widths, (std::vector<int>{3, 3, 3, 2}));
}

TEST(TaskLayout, UnevenSplitCoversEveryRankAtPrimeSizes) {
  for (const int comm_size : {7, 11}) {
    const int n_groups = 4;  // pb = 2, pl = 2
    const auto widths = uoi::sched::group_widths(comm_size, n_groups);
    std::vector<int> members(static_cast<std::size_t>(n_groups), 0);
    int previous_group = 0;
    for (int rank = 0; rank < comm_size; ++rank) {
      const auto tl =
          uoi::core::detail::make_task_layout(rank, comm_size, 2, 2);
      ASSERT_GE(tl.task_group, 0);
      ASSERT_LT(tl.task_group, n_groups);
      EXPECT_GE(tl.task_group, previous_group);  // contiguous blocks
      previous_group = tl.task_group;
      EXPECT_EQ(tl.c_ranks,
                widths[static_cast<std::size_t>(tl.task_group)]);
      EXPECT_EQ(tl.task_rank,
                members[static_cast<std::size_t>(tl.task_group)]);
      ++members[static_cast<std::size_t>(tl.task_group)];
    }
    for (int g = 0; g < n_groups; ++g) {
      EXPECT_EQ(members[static_cast<std::size_t>(g)],
                widths[static_cast<std::size_t>(g)])
          << "comm_size " << comm_size << " group " << g;
    }
  }
}

TEST(Placement, StaticMatchesHistoricalOwnershipMap) {
  const TaskGrid grid(4, 6, 2, 1);
  std::vector<std::size_t> cells(grid.n_cells());
  std::iota(cells.begin(), cells.end(), 0u);
  const std::vector<double> costs(grid.n_cells(), 1.0);
  const GroupInfo info{4, 0, 0, 2, 2};
  const auto widths = uoi::sched::group_widths(8, 4);
  const auto placement = uoi::sched::plan_placement(
      SchedulePolicy::kStatic, grid, cells, costs, info, widths);
  ASSERT_EQ(placement.size(), 4u);
  for (std::size_t g = 0; g < placement.size(); ++g) {
    for (const std::size_t id : placement[g]) {
      const auto cell = grid.cell(id);
      EXPECT_EQ((cell.bootstrap % 2) * 2 + (cell.chain % 2), g);
    }
  }
}

TEST(Placement, LptIsDeterministicBalancedAndSorted) {
  const TaskGrid grid(8, 8, 4, 7);
  std::vector<std::size_t> cells(grid.n_cells());
  std::iota(cells.begin(), cells.end(), 0u);
  // Heavily skewed costs: chain 0 dominates.
  std::vector<double> costs(grid.n_cells(), 1.0);
  for (std::size_t id = 0; id < costs.size(); ++id) {
    if (grid.cell(id).chain == 0) costs[id] = 10.0;
  }
  const GroupInfo info{4, 0, 0, 2, 2};
  const auto widths = uoi::sched::group_widths(8, 4);
  const auto placement = uoi::sched::plan_placement(
      SchedulePolicy::kCostLpt, grid, cells, costs, info, widths);
  const auto again = uoi::sched::plan_placement(
      SchedulePolicy::kCostLpt, grid, cells, costs, info, widths);
  EXPECT_EQ(placement, again);  // pure function of replicated inputs

  double max_load = 0.0, total = 0.0;
  std::size_t placed = 0;
  for (const auto& queue : placement) {
    EXPECT_TRUE(std::is_sorted(queue.begin(), queue.end()));
    double load = 0.0;
    for (const std::size_t id : queue) load += costs[id];
    max_load = std::max(max_load, load);
    total += load;
    placed += queue.size();
  }
  EXPECT_EQ(placed, grid.n_cells());
  // LPT guarantee: max load <= (4/3 - 1/3m) * OPT <= 4/3 * mean * ... keep
  // a loose bound that static placement (chain 0 -> one group, 80 vs 8)
  // grossly violates.
  EXPECT_LT(max_load / (total / 4.0), 1.5);
}

TEST(CostModel, LambdaWeightsFavorSmallLambdas) {
  const std::vector<double> lambdas{8.0, 4.0, 2.0, 1.0, 0.5};
  const auto weights = uoi::sched::lambda_weights(lambdas);
  ASSERT_EQ(weights.size(), lambdas.size());
  double mean = 0.0;
  for (std::size_t j = 0; j + 1 < weights.size(); ++j) {
    EXPECT_LT(weights[j], weights[j + 1]);  // smaller lambda, more work
  }
  for (const double w : weights) mean += w;
  EXPECT_NEAR(mean / static_cast<double>(weights.size()), 1.0, 1e-12);
}

TEST(CostModel, CalibrationRecoversScaleAndChainSkew) {
  const TaskGrid grid(6, 4, 2, 3);
  const std::vector<double> lambdas{4.0, 2.0, 1.0, 0.5};
  auto predicted = uoi::sched::seeded_costs(grid, lambdas, 10.0);
  // Ground truth: everything 2x the prediction, chain 1 another 3x.
  std::vector<double> measured(predicted.size());
  for (std::size_t id = 0; id < predicted.size(); ++id) {
    measured[id] =
        2.0 * predicted[id] * (grid.cell(id).chain == 1 ? 3.0 : 1.0);
  }
  const auto calibration = uoi::sched::calibrate(grid, predicted, measured);
  EXPECT_GT(calibration.scale, 1.0);
  ASSERT_EQ(calibration.chain_multiplier.size(), grid.n_chains());
  EXPECT_NEAR(
      calibration.chain_multiplier[1] / calibration.chain_multiplier[0], 3.0,
      1e-9);
  // After applying the calibration, the refined costs match the measured
  // pass up to a single global factor.
  auto refined = predicted;
  uoi::sched::apply_calibration(grid, calibration, refined);
  const double ratio0 = measured[0] / refined[0];
  for (std::size_t id = 0; id < refined.size(); ++id) {
    EXPECT_NEAR(measured[id] / refined[id], ratio0, 1e-9 * ratio0);
  }
}

TEST(CostModel, SurvivorWeightsCheapenSparseChains) {
  // 4 lambdas over 2 chains (chain c owns {j : j % 2 == c}). Chain 0's
  // lambdas kept many survivors, chain 1's almost none: after the
  // reweighting chain 1's cells must be proportionally cheaper, with the
  // grid total preserved up to the mean-1 normalization.
  const TaskGrid grid(3, 4, 2, 5);
  std::vector<double> costs(grid.n_cells(), 1.0);
  const std::vector<double> survivors{200.0, 2.0, 200.0, 2.0};
  uoi::sched::apply_survivor_weights(grid, survivors, costs);
  double chain0 = 0.0, chain1 = 0.0;
  for (std::size_t id = 0; id < costs.size(); ++id) {
    (grid.cell(id).chain == 0 ? chain0 : chain1) += costs[id];
  }
  EXPECT_GT(chain0, chain1);
  // weights: chain 0 = 1+200, chain 1 = 1+2, normalized by the mean 102;
  // chain 1's 3/102 hits the 0.1 clamp floor.
  EXPECT_NEAR(chain0 / chain1, (201.0 / 102.0) / 0.1, 1e-9);

  // Unmeasured lambdas (negative) leave their chains untouched.
  std::vector<double> untouched(grid.n_cells(), 1.0);
  const std::vector<double> unmeasured{-1.0, -1.0, -1.0, -1.0};
  uoi::sched::apply_survivor_weights(grid, unmeasured, untouched);
  for (const double cost : untouched) EXPECT_DOUBLE_EQ(cost, 1.0);

  // Partially measured: chain 1 has no measured lambda and keeps weight
  // 1 while chain 0 is normalized against itself (weight exactly 1 when
  // it is the only measured chain).
  std::vector<double> partial(grid.n_cells(), 1.0);
  const std::vector<double> half{50.0, -1.0, 10.0, -1.0};
  uoi::sched::apply_survivor_weights(grid, half, partial);
  for (const double cost : partial) EXPECT_DOUBLE_EQ(cost, 1.0);
}

// ------------------------------------------------- ticket board (TSan)

// Every ticket of a shared victim queue must be claimed exactly once no
// matter how pops and steals interleave. All 8 ranks hammer the same
// counter concurrently; the claim sets must partition [0, N).
TEST(TicketBoardTsan, ConcurrentClaimsAreExactlyOnce) {
  constexpr int kRanks = 8;
  constexpr std::size_t kTickets = 64;
  uoi::sim::Cluster::run(kRanks, [&](uoi::sim::Comm& comm) {
    uoi::sched::TicketBoard board(comm, /*n_groups=*/1, {});
    std::vector<double> claimed(kTickets, 0.0);
    for (;;) {
      const std::size_t ticket = board.take_ticket(0);
      if (ticket >= kTickets) break;  // drained; counter keeps counting
      claimed[ticket] += 1.0;
    }
    EXPECT_GE(board.peek(0), kTickets);
    comm.allreduce(claimed, uoi::sim::ReduceOp::kSum);
    for (std::size_t t = 0; t < kTickets; ++t) {
      EXPECT_EQ(claimed[t], 1.0) << "ticket " << t;
    }
    board.fence();
  });
}

TEST(TicketBoardTsan, PerGroupCountersAreIndependent) {
  constexpr int kRanks = 4;
  uoi::sim::Cluster::run(kRanks, [&](uoi::sim::Comm& comm) {
    uoi::sched::TicketBoard board(comm, /*n_groups=*/kRanks, {});
    // Each rank drains only its own group's queue.
    const int mine = comm.rank();
    const std::size_t depth = 5 + static_cast<std::size_t>(mine);
    std::size_t taken = 0;
    while (board.take_ticket(mine) < depth) ++taken;
    EXPECT_EQ(taken, depth);
    board.fence();
    // Counters advanced independently: each group's board shows exactly
    // its own claims (depth + the final past-the-end probe).
    EXPECT_EQ(board.peek(mine), depth + 1);
    board.fence();
  });
}

// ------------------------------------------ end-to-end schedule invariance

// The three policies must produce bit-identical models on an even layout
// (uniform group width keeps the distributed-ADMM reduction grouping
// fixed). This is the acceptance gate for "placement never enters the
// numerics".
TEST(ScheduleInvariance, LassoModelBitIdenticalAcrossPolicies) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 60;
  spec.n_features = 12;
  spec.support_size = 4;
  spec.seed = 17;
  const auto data = uoi::data::make_regression(spec);

  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 6;
  options.n_estimation_bootstraps = 4;
  options.n_lambdas = 6;
  options.seed = 2024;

  std::vector<uoi::linalg::Vector> betas;
  std::vector<std::vector<std::size_t>> winners;
  for (const SchedulePolicy policy :
       {SchedulePolicy::kStatic, SchedulePolicy::kCostLpt,
        SchedulePolicy::kWorkSteal}) {
    options.schedule = policy;
    uoi::sim::Cluster::run(8, [&](uoi::sim::Comm& comm) {
      const auto result = uoi::core::uoi_lasso_distributed(
          comm, data.x, data.y, options, {2, 2});
      if (comm.rank() == 0) {
        betas.push_back(result.model.beta);
        winners.push_back(result.model.chosen_support_per_bootstrap);
      }
    });
  }
  ASSERT_EQ(betas.size(), 3u);
  for (std::size_t i = 1; i < betas.size(); ++i) {
    EXPECT_EQ(uoi::linalg::max_abs_diff(betas[0], betas[i]), 0.0)
        << "policy index " << i;
    EXPECT_EQ(winners[0], winners[i]);
  }
}

TEST(ScheduleInvariance, VarModelBitIdenticalAcrossPolicies) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 5;
  spec.seed = 7;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 60;
  sim.seed = 8;
  const auto series = uoi::var::simulate(truth, sim);

  uoi::var::UoiVarOptions options;
  options.n_selection_bootstraps = 5;
  options.n_estimation_bootstraps = 3;
  options.n_lambdas = 5;
  options.seed = 99;

  std::vector<uoi::linalg::Vector> betas;
  for (const SchedulePolicy policy :
       {SchedulePolicy::kStatic, SchedulePolicy::kCostLpt,
        SchedulePolicy::kWorkSteal}) {
    options.schedule = policy;
    uoi::sim::Cluster::run(8, [&](uoi::sim::Comm& comm) {
      const auto result =
          uoi::var::uoi_var_distributed(comm, series, options, {2, 2}, 2);
      if (comm.rank() == 0) betas.push_back(result.model.vec_beta);
    });
  }
  ASSERT_EQ(betas.size(), 3u);
  for (std::size_t i = 1; i < betas.size(); ++i) {
    EXPECT_EQ(uoi::linalg::max_abs_diff(betas[0], betas[i]), 0.0)
        << "policy index " << i;
  }
}

}  // namespace
