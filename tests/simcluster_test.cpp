// Tests for the uoi::sim SPMD runtime: collectives against serial
// references, communicator splits, one-sided windows, and statistics.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "simcluster/cluster.hpp"
#include "simcluster/comm.hpp"
#include "simcluster/window.hpp"
#include "support/error.hpp"

namespace {

using uoi::sim::Cluster;
using uoi::sim::Comm;
using uoi::sim::ReduceOp;
using uoi::sim::Window;

class ClusterParam : public ::testing::TestWithParam<int> {};

TEST_P(ClusterParam, BarrierSynchronizesPhases) {
  const int p = GetParam();
  std::atomic<int> arrived{0};
  std::atomic<bool> violated{false};
  Cluster::run(p, [&](Comm& comm) {
    arrived.fetch_add(1);
    comm.barrier();
    if (arrived.load() != p) violated.store(true);
    comm.barrier();
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(ClusterParam, AllreduceSum) {
  const int p = GetParam();
  Cluster::run(p, [&](Comm& comm) {
    std::vector<double> data{static_cast<double>(comm.rank()), 1.0};
    comm.allreduce(data, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(data[0], p * (p - 1) / 2.0);
    EXPECT_DOUBLE_EQ(data[1], static_cast<double>(p));
  });
}

TEST_P(ClusterParam, AllreduceMinMax) {
  const int p = GetParam();
  Cluster::run(p, [&](Comm& comm) {
    std::vector<double> lo{static_cast<double>(comm.rank())};
    comm.allreduce(lo, ReduceOp::kMin);
    EXPECT_DOUBLE_EQ(lo[0], 0.0);
    std::vector<double> hi{static_cast<double>(comm.rank())};
    comm.allreduce(hi, ReduceOp::kMax);
    EXPECT_DOUBLE_EQ(hi[0], static_cast<double>(p - 1));
  });
}

TEST_P(ClusterParam, BcastFromEveryRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; ++root) {
    Cluster::run(p, [&](Comm& comm) {
      std::vector<double> data(3, comm.rank() == root ? 42.0 : 0.0);
      comm.bcast(data, root);
      for (const double v : data) EXPECT_DOUBLE_EQ(v, 42.0);
    });
  }
}

TEST_P(ClusterParam, ReduceToRootOnly) {
  const int p = GetParam();
  Cluster::run(p, [&](Comm& comm) {
    std::vector<double> data{1.0};
    comm.reduce(data, ReduceOp::kSum, 0);
    if (comm.rank() == 0) {
      EXPECT_DOUBLE_EQ(data[0], static_cast<double>(p));
    } else {
      EXPECT_DOUBLE_EQ(data[0], 1.0);  // untouched off-root
    }
  });
}

TEST_P(ClusterParam, GatherAndAllgather) {
  const int p = GetParam();
  Cluster::run(p, [&](Comm& comm) {
    const std::vector<double> mine{static_cast<double>(comm.rank()),
                                   static_cast<double>(comm.rank()) + 0.5};
    std::vector<double> all(2 * static_cast<std::size_t>(p), -1.0);
    comm.allgather(mine, all);
    for (int r = 0; r < p; ++r) {
      EXPECT_DOUBLE_EQ(all[2 * r], static_cast<double>(r));
      EXPECT_DOUBLE_EQ(all[2 * r + 1], static_cast<double>(r) + 0.5);
    }
    std::vector<double> rooted(2 * static_cast<std::size_t>(p), -1.0);
    comm.gather(mine, rooted, p - 1);
    if (comm.rank() == p - 1) {
      EXPECT_DOUBLE_EQ(rooted[0], 0.0);
      EXPECT_DOUBLE_EQ(rooted[2 * (p - 1)], static_cast<double>(p - 1));
    }
  });
}

TEST_P(ClusterParam, ScatterSlices) {
  const int p = GetParam();
  Cluster::run(p, [&](Comm& comm) {
    std::vector<double> send;
    if (comm.rank() == 0) {
      send.resize(static_cast<std::size_t>(p) * 2);
      std::iota(send.begin(), send.end(), 0.0);
    }
    std::vector<double> recv(2, -1.0);
    comm.scatter(send, recv, 0);
    EXPECT_DOUBLE_EQ(recv[0], comm.rank() * 2.0);
    EXPECT_DOUBLE_EQ(recv[1], comm.rank() * 2.0 + 1.0);
  });
}

TEST_P(ClusterParam, AllAgree) {
  const int p = GetParam();
  Cluster::run(p, [&](Comm& comm) {
    EXPECT_TRUE(comm.all_agree(true));
    EXPECT_FALSE(comm.all_agree(comm.rank() != 0));
    EXPECT_TRUE(comm.all_agree(comm.rank() >= 0));
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ClusterParam,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(Cluster, SplitFormsCorrectGroups) {
  Cluster::run(6, [&](Comm& comm) {
    // Two groups of 3: color = rank / 3.
    Comm sub = comm.split(comm.rank() / 3, comm.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), comm.rank() % 3);
    // Group-local reduction stays inside the group.
    std::vector<double> data{static_cast<double>(comm.rank())};
    sub.allreduce(data, ReduceOp::kSum);
    const double expect = comm.rank() < 3 ? 0.0 + 1 + 2 : 3.0 + 4 + 5;
    EXPECT_DOUBLE_EQ(data[0], expect);
  });
}

TEST(Cluster, SplitHonorsKeyOrdering) {
  Cluster::run(4, [&](Comm& comm) {
    // Reverse ordering within one group: key = -rank.
    Comm sub = comm.split(0, -comm.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), 3 - comm.rank());
  });
}

TEST(Cluster, NestedSplits) {
  Cluster::run(8, [&](Comm& comm) {
    Comm half = comm.split(comm.rank() / 4, comm.rank());
    Comm quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    std::vector<double> one{1.0};
    quarter.allreduce(one, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(one[0], 2.0);
  });
}

TEST(Cluster, ExceptionPropagatesAfterJoin) {
  EXPECT_THROW(
      Cluster::run(2,
                   [&](Comm& comm) {
                     comm.barrier();
                     throw std::runtime_error("rank failure");
                   }),
      std::runtime_error);
}

TEST(Window, PutGetAcrossRanks) {
  Cluster::run(4, [&](Comm& comm) {
    std::vector<double> local(4, static_cast<double>(comm.rank()));
    Window win(comm, local);
    win.fence();
    // Everyone writes its rank into slot `rank` of rank 0's buffer.
    const std::vector<double> value{static_cast<double>(comm.rank()) + 10.0};
    win.put(0, static_cast<std::size_t>(comm.rank()), value);
    win.fence();
    if (comm.rank() == 0) {
      for (int r = 0; r < 4; ++r) {
        EXPECT_DOUBLE_EQ(local[static_cast<std::size_t>(r)], r + 10.0);
      }
    }
    // Everyone reads rank 3's buffer.
    std::vector<double> fetched(4, -1.0);
    win.get(3, 0, fetched);
    win.fence();
    for (const double v : fetched) {
      EXPECT_TRUE(v == 3.0 || v == 13.0);  // slot 3 was overwritten on rank 0 only
    }
  });
}

TEST(Window, AccumulateAddsAtomically) {
  Cluster::run(8, [&](Comm& comm) {
    std::vector<double> local(1, 0.0);
    Window win(comm, local);
    win.fence();
    const std::vector<double> one{1.0};
    for (int i = 0; i < 50; ++i) win.accumulate_add(0, 0, one);
    win.fence();
    if (comm.rank() == 0) {
      EXPECT_DOUBLE_EQ(local[0], 400.0);
    }
  });
}

TEST(Window, SizesPerRankDiffer) {
  Cluster::run(3, [&](Comm& comm) {
    std::vector<double> local(static_cast<std::size_t>(comm.rank()) + 1, 1.0);
    Window win(comm, local);
    win.fence();
    EXPECT_EQ(win.size_at(0), 1u);
    EXPECT_EQ(win.size_at(1), 2u);
    EXPECT_EQ(win.size_at(2), 3u);
    EXPECT_EQ(win.local().size(), static_cast<std::size_t>(comm.rank()) + 1);
    win.fence();
  });
}

TEST(Window, OutOfRangeGetThrows) {
  Cluster::run(2, [&](Comm& comm) {
    std::vector<double> local(2, 0.0);
    Window win(comm, local);
    win.fence();
    std::vector<double> big(5);
    bool threw = false;
    try {
      win.get(0, 0, big);
    } catch (const uoi::support::DimensionMismatch&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
    win.fence();
  });
}

TEST(Stats, TracksCallsBytesAndCategories) {
  auto stats = Cluster::run_collect_stats(2, [&](Comm& comm) {
    std::vector<double> data(10, 1.0);
    comm.allreduce(data, ReduceOp::kSum);
    comm.allreduce(data, ReduceOp::kSum);
    comm.bcast(data, 0);
    comm.barrier();
  });
  ASSERT_EQ(stats.size(), 2u);
  for (const auto& s : stats) {
    EXPECT_EQ(s.of(uoi::sim::CommCategory::kAllreduce).calls, 2u);
    EXPECT_EQ(s.of(uoi::sim::CommCategory::kAllreduce).bytes,
              2u * 10u * sizeof(double));
    EXPECT_EQ(s.of(uoi::sim::CommCategory::kBcast).calls, 1u);
    EXPECT_EQ(s.of(uoi::sim::CommCategory::kBarrier).calls, 1u);
    EXPECT_GE(s.collective_seconds(), 0.0);
  }
}

TEST(Stats, OneSidedAccounting) {
  auto stats = Cluster::run_collect_stats(2, [&](Comm& comm) {
    std::vector<double> local(8, 0.0);
    Window win(comm, local);
    win.fence();
    std::vector<double> buf(8);
    win.get(1 - comm.rank(), 0, buf);
    win.fence();
  });
  for (const auto& s : stats) {
    EXPECT_EQ(s.of(uoi::sim::CommCategory::kOneSided).calls, 1u);
    EXPECT_EQ(s.of(uoi::sim::CommCategory::kOneSided).bytes,
              8u * sizeof(double));
  }
}

TEST(Cluster, SingleRankRunsInline) {
  int calls = 0;
  Cluster::run(1, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 1);
    comm.barrier();
    std::vector<double> v{3.0};
    comm.allreduce(v, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(v[0], 3.0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

}  // namespace
