// Tests for the logistic solvers and UoI_Logistic.

#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.hpp"
#include "core/uoi_logistic.hpp"
#include "data/synthetic_regression.hpp"
#include "linalg/blas.hpp"
#include "solvers/logistic.hpp"

namespace {

using uoi::linalg::Matrix;
using uoi::linalg::Vector;

TEST(Sigmoid, StableAtExtremes) {
  EXPECT_DOUBLE_EQ(uoi::solvers::sigmoid(0.0), 0.5);
  EXPECT_NEAR(uoi::solvers::sigmoid(40.0), 1.0, 1e-15);
  EXPECT_NEAR(uoi::solvers::sigmoid(-40.0), 0.0, 1e-15);
  EXPECT_NEAR(uoi::solvers::sigmoid(2.0) + uoi::solvers::sigmoid(-2.0), 1.0,
              1e-15);
  // No overflow at absurd arguments.
  EXPECT_EQ(uoi::solvers::sigmoid(1e6), 1.0);
  EXPECT_EQ(uoi::solvers::sigmoid(-1e6), 0.0);
}

TEST(LogisticLambdaMax, ZeroesTheSolution) {
  const auto data = uoi::data::make_classification({});
  const double hi = uoi::solvers::logistic_lambda_max(data.x, data.y);
  const auto fit = uoi::solvers::logistic_lasso(data.x, data.y, hi * 1.05);
  for (const double b : fit.beta) EXPECT_NEAR(b, 0.0, 1e-5);
}

TEST(LogisticLasso, SubgradientOptimality) {
  uoi::data::ClassificationSpec spec;
  spec.n_samples = 200;
  spec.n_features = 12;
  spec.support_size = 3;
  spec.seed = 5;
  const auto data = uoi::data::make_classification(spec);
  const double lambda =
      0.05 * uoi::solvers::logistic_lambda_max(data.x, data.y);
  uoi::solvers::LogisticOptions options;
  options.tolerance = 1e-10;
  options.max_iterations = 50000;
  const auto fit = uoi::solvers::logistic_lasso(data.x, data.y, lambda,
                                                options);
  EXPECT_TRUE(fit.converged);

  // KKT: |grad_i| <= lambda off-support, = -sign(beta_i) lambda on it;
  // intercept gradient ~ 0.
  Vector residual(data.x.rows());
  double grad_intercept = 0.0;
  for (std::size_t r = 0; r < data.x.rows(); ++r) {
    const double t =
        uoi::linalg::dot(data.x.row(r), fit.beta) + fit.intercept;
    residual[r] = uoi::solvers::sigmoid(t) - data.y[r];
    grad_intercept += residual[r];
  }
  Vector grad(data.x.cols(), 0.0);
  uoi::linalg::gemv_transposed(1.0, data.x, residual, 0.0, grad);
  const double slack = 1e-3 * lambda + 1e-5;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_LE(std::abs(grad[i]), lambda + slack) << "coordinate " << i;
    if (std::abs(fit.beta[i]) > 1e-6) {
      EXPECT_NEAR(grad[i], fit.beta[i] > 0 ? -lambda : lambda, slack);
    }
  }
  EXPECT_NEAR(grad_intercept, 0.0, 1e-4);
}

TEST(LogisticIrls, MatchesProxAtLambdaZero) {
  uoi::data::ClassificationSpec spec;
  spec.n_samples = 300;
  spec.n_features = 6;
  spec.support_size = 3;
  spec.seed = 7;
  const auto data = uoi::data::make_classification(spec);
  std::vector<std::size_t> all{0, 1, 2, 3, 4, 5};

  const auto irls =
      uoi::solvers::logistic_irls_on_support(data.x, data.y, all);
  uoi::solvers::LogisticOptions options;
  options.tolerance = 1e-11;
  options.max_iterations = 200000;
  const auto prox =
      uoi::solvers::logistic_lasso(data.x, data.y, 0.0, options);
  EXPECT_TRUE(irls.converged);
  EXPECT_LT(uoi::linalg::max_abs_diff(irls.beta, prox.beta), 1e-3);
  EXPECT_NEAR(irls.intercept, prox.intercept, 1e-3);
}

TEST(LogisticIrls, EmptySupportFitsInterceptOnly) {
  uoi::data::ClassificationSpec spec;
  spec.n_samples = 500;
  spec.support_size = 0;
  spec.intercept = 1.0;  // base rate sigmoid(1) ~ 0.73
  spec.seed = 9;
  const auto data = uoi::data::make_classification(spec);
  const auto fit =
      uoi::solvers::logistic_irls_on_support(data.x, data.y, {});
  double rate = 0.0;
  for (const double v : data.y) rate += v;
  rate /= static_cast<double>(data.y.size());
  EXPECT_NEAR(uoi::solvers::sigmoid(fit.intercept), rate, 1e-6);
}

TEST(LogisticMetrics, LossAndAccuracyBasics) {
  Matrix x{{1.0}, {1.0}};
  const Vector y{1.0, 0.0};
  const Vector zero{0.0};
  EXPECT_NEAR(uoi::solvers::logistic_log_loss(x, y, zero, 0.0),
              std::log(2.0), 1e-12);
  const Vector strong{10.0};
  EXPECT_DOUBLE_EQ(uoi::solvers::logistic_accuracy(x, y, strong, -5.0), 0.5);
}

TEST(UoiLogistic, RecoversSparseSupport) {
  uoi::data::ClassificationSpec spec;
  spec.n_samples = 600;
  spec.n_features = 20;
  spec.support_size = 4;
  spec.seed = 11;
  const auto data = uoi::data::make_classification(spec);

  uoi::core::UoiLogisticOptions options;
  options.n_selection_bootstraps = 8;
  options.n_estimation_bootstraps = 5;
  options.n_lambdas = 8;
  const auto fit = uoi::core::UoiLogistic(options).fit(data.x, data.y);

  const auto truth = uoi::core::SupportSet::from_beta(data.beta_true);
  const auto support = uoi::core::SupportSet::from_beta(fit.beta, 0.2);
  const auto acc =
      uoi::core::selection_accuracy(support, truth, spec.n_features);
  EXPECT_EQ(acc.false_negatives, 0u) << "missed true features";
  EXPECT_LE(acc.false_positives, 2u) << "spurious features";

  // Signs recovered; held-out-style accuracy well above chance.
  for (std::size_t i = 0; i < spec.n_features; ++i) {
    if (data.beta_true[i] != 0.0) {
      EXPECT_GT(fit.beta[i] * data.beta_true[i], 0.0) << "sign flip at " << i;
    }
  }
  EXPECT_GT(
      uoi::solvers::logistic_accuracy(data.x, data.y, fit.beta, fit.intercept),
      0.85);
}

TEST(UoiLogistic, InterceptRecovered) {
  uoi::data::ClassificationSpec spec;
  spec.n_samples = 800;
  spec.n_features = 10;
  spec.support_size = 2;
  spec.intercept = -1.0;
  spec.seed = 13;
  const auto data = uoi::data::make_classification(spec);
  uoi::core::UoiLogisticOptions options;
  options.n_selection_bootstraps = 6;
  options.n_estimation_bootstraps = 4;
  options.n_lambdas = 8;
  const auto fit = uoi::core::UoiLogistic(options).fit(data.x, data.y);
  EXPECT_NEAR(fit.intercept, -1.0, 0.35);
}

TEST(UoiLogistic, RejectsNonBinaryLabels) {
  Matrix x{{1.0}, {2.0}};
  const Vector y{0.5, 1.0};
  EXPECT_THROW((void)uoi::core::UoiLogistic().fit(x, y),
               uoi::support::InvalidArgument);
}

}  // namespace
