// Factorization-reuse tests: the BootstrapCache LRU, the RidgeGram /
// factor-stage split, the diagonal-shift Cholesky, and the end-to-end
// guarantee that the driver-level solver cache never changes a model —
// cached and cold runs must be bit-identical under every schedule policy
// and across a mid-selection rank failure.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "core/uoi_lasso_distributed.hpp"
#include "data/synthetic_regression.hpp"
#include "data/synthetic_var.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "simcluster/cluster.hpp"
#include "solvers/ridge_system.hpp"
#include "solvers/solver_cache.hpp"
#include "support/rng.hpp"
#include "var/var_distributed.hpp"

namespace {

using uoi::linalg::Matrix;
using uoi::linalg::Vector;
using uoi::sched::SchedulePolicy;
using uoi::solvers::BootstrapCache;

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  uoi::support::Xoshiro256 rng(seed);
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal();
  }
  return m;
}

Vector random_vector(std::size_t n, std::uint64_t seed) {
  uoi::support::Xoshiro256 rng(seed);
  Vector v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

// ---- BootstrapCache unit tests ----

struct FakeEntry {
  std::size_t size = 0;
  int tag = 0;
  [[nodiscard]] std::size_t bytes() const noexcept { return size; }
};

TEST(BootstrapCache, HitReturnsSameObjectAndCountsStats) {
  BootstrapCache cache(1 << 20);
  int builds = 0;
  const auto build = [&] {
    ++builds;
    return std::make_shared<FakeEntry>(FakeEntry{128, builds});
  };
  const auto first = cache.get_or_build<FakeEntry>(0, 7, build);
  const auto second = cache.get_or_build<FakeEntry>(0, 7, build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.bytes_in_use(), 128u);
}

TEST(BootstrapCache, PassIsPartOfTheKey) {
  BootstrapCache cache(1 << 20);
  int builds = 0;
  const auto build = [&] {
    ++builds;
    return std::make_shared<FakeEntry>(FakeEntry{64, builds});
  };
  const auto selection = cache.get_or_build<FakeEntry>(
      uoi::solvers::kSelectionPass, 3, build);
  const auto estimation = cache.get_or_build<FakeEntry>(
      uoi::solvers::kEstimationPass, 3, build);
  EXPECT_EQ(builds, 2);
  EXPECT_NE(selection.get(), estimation.get());
}

TEST(BootstrapCache, ZeroBudgetDisablesStorage) {
  BootstrapCache cache(0);
  EXPECT_FALSE(cache.enabled());
  int builds = 0;
  const auto build = [&] {
    ++builds;
    return std::make_shared<FakeEntry>(FakeEntry{64, builds});
  };
  (void)cache.get_or_build<FakeEntry>(0, 1, build);
  (void)cache.get_or_build<FakeEntry>(0, 1, build);
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.bytes_in_use(), 0u);
}

TEST(BootstrapCache, OversizedEntryIsReturnedButNotStored) {
  BootstrapCache cache(100);
  int builds = 0;
  const auto build = [&] {
    ++builds;
    return std::make_shared<FakeEntry>(FakeEntry{1000, builds});
  };
  const auto entry = cache.get_or_build<FakeEntry>(0, 1, build);
  EXPECT_EQ(entry->size, 1000u);
  EXPECT_EQ(cache.bytes_in_use(), 0u);
  (void)cache.get_or_build<FakeEntry>(0, 1, build);
  EXPECT_EQ(builds, 2);  // never cached, so rebuilt
}

TEST(BootstrapCache, EvictsLeastRecentlyUsedWithinBudget) {
  BootstrapCache cache(256);  // room for two 100-byte entries, not three
  const auto sized = [](std::size_t s) {
    return [s] { return std::make_shared<FakeEntry>(FakeEntry{s, 0}); };
  };
  (void)cache.get_or_build<FakeEntry>(0, 1, sized(100));
  (void)cache.get_or_build<FakeEntry>(0, 2, sized(100));
  (void)cache.get_or_build<FakeEntry>(0, 1, sized(100));  // touch 1
  (void)cache.get_or_build<FakeEntry>(0, 3, sized(100));  // evicts 2
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.bytes_in_use(), 200u);
  (void)cache.get_or_build<FakeEntry>(0, 1, sized(100));  // still resident
  EXPECT_EQ(cache.stats().hits, 2u);
  (void)cache.get_or_build<FakeEntry>(0, 2, sized(100));  // was evicted
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(BootstrapCache, KeepsAtLeastOneEntryEvenOverBudget) {
  BootstrapCache cache(150);
  const auto sized = [](std::size_t s) {
    return [s] { return std::make_shared<FakeEntry>(FakeEntry{s, 0}); };
  };
  (void)cache.get_or_build<FakeEntry>(0, 1, sized(100));
  // 140 fits the budget alone but not alongside key 1: key 1 is evicted,
  // the newcomer stays resident (never evict down to an empty cache).
  (void)cache.get_or_build<FakeEntry>(0, 2, sized(140));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.bytes_in_use(), 140u);
  (void)cache.get_or_build<FakeEntry>(0, 2, sized(140));
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(SolverCacheBudget, OptionWinsOverEnvironment) {
  ::setenv("UOI_SOLVER_CACHE_MB", "64", 1);
  EXPECT_EQ(uoi::solvers::resolve_solver_cache_bytes(8),
            std::size_t{8} << 20);
  EXPECT_EQ(uoi::solvers::resolve_solver_cache_bytes(0), 0u);
  EXPECT_EQ(uoi::solvers::resolve_solver_cache_bytes(-1),
            std::size_t{64} << 20);
  ::unsetenv("UOI_SOLVER_CACHE_MB");
  EXPECT_EQ(uoi::solvers::resolve_solver_cache_bytes(-1),
            std::size_t{256} << 20);
}

// ---- diagonal-shift Cholesky ----

TEST(CholeskyShift, MatchesExplicitlyShiftedMatrixBitwise) {
  for (const std::size_t n : {3u, 40u, 150u}) {
    const Matrix a = random_matrix(n + 5, n, 100 + n);
    Matrix gram(n, n);
    uoi::linalg::syrk_at_a(1.0, a, 0.0, gram);

    Matrix shifted = gram;
    const double rho = 1.75;
    for (std::size_t i = 0; i < n; ++i) shifted(i, i) += rho;

    const uoi::linalg::CholeskyFactor via_shift(gram, rho);
    const uoi::linalg::CholeskyFactor explicit_shift(shifted);
    // Same blocked algorithm on identical values: bitwise equal.
    EXPECT_EQ(uoi::linalg::max_abs_diff(via_shift.lower(),
                                        explicit_shift.lower()),
              0.0)
        << "n = " << n;
  }
}

TEST(CholeskyShift, ReadsOnlyTheLowerTriangle) {
  const std::size_t n = 70;
  const Matrix a = random_matrix(n + 5, n, 300);
  Matrix gram(n, n);
  uoi::linalg::syrk_at_a(1.0, a, 0.0, gram);
  Matrix clean = gram;
  for (std::size_t i = 0; i < n; ++i) clean(i, i) += 0.5;

  // Poison the strict upper triangle; the shift constructor must not care.
  Matrix poisoned = gram;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) poisoned(i, j) = 1e30;
  }
  const uoi::linalg::CholeskyFactor from_poisoned(poisoned, 0.5);
  const uoi::linalg::CholeskyFactor reference(clean);
  EXPECT_EQ(uoi::linalg::max_abs_diff(from_poisoned.lower(),
                                      reference.lower()),
            0.0);
}

// ---- RidgeGram / factor-stage reuse ----

TEST(RidgeSystem, FactorStageMatchesColdStartBitwise) {
  for (const auto& [rows, cols] : {std::pair<std::size_t, std::size_t>{90, 30},
                                  {20, 60} /* Woodbury: rows < cols */}) {
    const Matrix a = random_matrix(rows, cols, 500 + rows);
    const Vector q = random_vector(cols, 600 + rows);
    const double rho = 2.5;

    const uoi::solvers::RidgeSystemSolver cold(a, rho);
    const uoi::solvers::RidgeSystemSolver reused(a, rho, cold.gram());

    Vector x_cold(cols), x_reused(cols);
    cold.solve(q, x_cold);
    reused.solve(q, x_reused);
    EXPECT_EQ(uoi::linalg::max_abs_diff(x_cold, x_reused), 0.0)
        << rows << "x" << cols;
    EXPECT_EQ(cold.uses_woodbury(), rows < cols);
  }
}

TEST(RidgeSystem, SetupFlopsSplitIntoChargedAndAmortized) {
  const Matrix a = random_matrix(80, 24, 700);
  const uoi::solvers::RidgeSystemSolver cold(a, 1.0);
  EXPECT_GT(cold.setup_flops(), 0u);
  EXPECT_EQ(cold.amortized_setup_flops(), 0u);

  // The factor stage charges only the refactorization; the Gram flops move
  // to the amortized column. Together they equal a cold start.
  const uoi::solvers::RidgeSystemSolver reused(a, 3.0, cold.gram());
  EXPECT_LT(reused.setup_flops(), cold.setup_flops());
  EXPECT_EQ(reused.amortized_setup_flops(), cold.gram()->gram_flops());
  EXPECT_EQ(reused.setup_flops() + reused.amortized_setup_flops(),
            cold.setup_flops());
}

TEST(RidgeSystem, RhoChangeOnSharedGramMatchesColdStartAtNewRho) {
  const Matrix a = random_matrix(64, 20, 800);
  const Vector q = random_vector(20, 801);
  const uoi::solvers::RidgeSystemSolver first(a, 1.0);
  const uoi::solvers::RidgeSystemSolver refactored(a, 4.0, first.gram());
  const uoi::solvers::RidgeSystemSolver cold_at_4(a, 4.0);
  Vector x_refactored(20), x_cold(20);
  refactored.solve(q, x_refactored);
  cold_at_4.solve(q, x_cold);
  EXPECT_EQ(uoi::linalg::max_abs_diff(x_refactored, x_cold), 0.0);
}

// ---- end-to-end: cache on/off is bit-identical, all policies ----

TEST(SolverCacheInvariance, LassoCachedAndColdBitIdenticalAcrossPolicies) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 60;
  spec.n_features = 12;
  spec.support_size = 4;
  spec.seed = 21;
  const auto data = uoi::data::make_regression(spec);

  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 6;
  options.n_estimation_bootstraps = 4;
  options.n_lambdas = 8;  // 8 lambdas over P_lambda = 2: multi-chain reuse
  options.seed = 2025;

  std::vector<Vector> betas;
  for (const SchedulePolicy policy :
       {SchedulePolicy::kStatic, SchedulePolicy::kCostLpt,
        SchedulePolicy::kWorkSteal}) {
    for (const long cache_mb : {64L, 0L}) {
      options.schedule = policy;
      options.solver_cache_mb = cache_mb;
      uoi::sim::Cluster::run(8, [&](uoi::sim::Comm& comm) {
        const auto result = uoi::core::uoi_lasso_distributed(
            comm, data.x, data.y, options, {2, 2});
        if (comm.rank() == 0) betas.push_back(result.model.beta);
      });
    }
  }
  ASSERT_EQ(betas.size(), 6u);
  for (std::size_t i = 1; i < betas.size(); ++i) {
    EXPECT_EQ(uoi::linalg::max_abs_diff(betas[0], betas[i]), 0.0)
        << "variant " << i;
  }
}

TEST(SolverCacheInvariance, VarCachedAndColdBitIdenticalAcrossPolicies) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 5;
  spec.seed = 11;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 60;
  sim.seed = 12;
  const auto series = uoi::var::simulate(truth, sim);

  uoi::var::UoiVarOptions options;
  options.n_selection_bootstraps = 5;
  options.n_estimation_bootstraps = 3;
  options.n_lambdas = 6;
  options.seed = 77;

  std::vector<Vector> betas;
  for (const SchedulePolicy policy :
       {SchedulePolicy::kStatic, SchedulePolicy::kCostLpt,
        SchedulePolicy::kWorkSteal}) {
    for (const long cache_mb : {64L, 0L}) {
      options.schedule = policy;
      options.solver_cache_mb = cache_mb;
      uoi::sim::Cluster::run(8, [&](uoi::sim::Comm& comm) {
        const auto result =
            uoi::var::uoi_var_distributed(comm, series, options, {2, 2}, 2);
        if (comm.rank() == 0) betas.push_back(result.model.vec_beta);
      });
    }
  }
  ASSERT_EQ(betas.size(), 6u);
  for (std::size_t i = 1; i < betas.size(); ++i) {
    EXPECT_EQ(uoi::linalg::max_abs_diff(betas[0], betas[i]), 0.0)
        << "variant " << i;
  }
}

// ---- fault replay with the cache enabled ----

/// Collectives a rank entered, from its folded CommStats (same counting
/// scheme as the FaultRecovery suite in robustness_test.cpp).
std::uint64_t collective_calls(const uoi::sim::CommStats& stats) {
  std::uint64_t total = 0;
  for (int c = 0; c < static_cast<int>(uoi::sim::CommCategory::kPointToPoint);
       ++c) {
    total += stats.entries[static_cast<std::size_t>(c)].calls;
  }
  return total;
}

TEST(SolverCacheInvariance, KillMidChainWithCacheEnabledIsBitIdentical) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 80;
  spec.n_features = 16;
  spec.support_size = 4;
  spec.noise_stddev = 0.3;
  spec.seed = 44;
  const auto data = uoi::data::make_regression(spec);

  uoi::core::UoiLassoOptions options;
  // Deterministic schedule: the kill point counts a clean run's
  // collectives, which work stealing would make timing-dependent.
  options.schedule = SchedulePolicy::kCostLpt;
  options.n_selection_bootstraps = 5;
  options.n_estimation_bootstraps = 3;
  options.n_lambdas = 8;  // several chains per bootstrap -> cache hits
  options.seed = 909;
  options.solver_cache_mb = 64;  // explicitly enabled

  std::vector<uoi::core::UoiLassoDistributedResult> clean(5);
  const auto clean_reports =
      uoi::sim::Cluster::run_collect_reports(5, [&](uoi::sim::Comm& comm) {
        clean[static_cast<std::size_t>(comm.rank())] =
            uoi::core::uoi_lasso_distributed(comm, data.x, data.y, options,
                                             {5, 1});
      });

  // Kill rank 2 a third of the way through its collective schedule: inside
  // the selection chain loop, after cached solvers exist. Recovery must
  // discard the pass's caches and replay bit-identically.
  auto plan = std::make_shared<uoi::sim::FaultPlan>();
  plan->kills.push_back({2, collective_calls(clean_reports[2].comm) / 3});
  std::vector<uoi::core::UoiLassoDistributedResult> faulty(5);
  const auto faulty_reports =
      uoi::sim::Cluster::run_collect_reports(5, [&](uoi::sim::Comm& comm) {
        comm.set_fault_plan(plan);
        faulty[static_cast<std::size_t>(comm.rank())] =
            uoi::core::uoi_lasso_distributed(comm, data.x, data.y, options,
                                             {5, 1});
      });

  for (const int r : {0, 1, 3, 4}) {
    const auto& result = faulty[static_cast<std::size_t>(r)];
    EXPECT_EQ(uoi::linalg::max_abs_diff(result.selection_counts,
                                        clean[0].selection_counts),
              0.0)
        << "rank " << r;
    EXPECT_EQ(result.model.support, clean[0].model.support) << "rank " << r;
    EXPECT_EQ(uoi::linalg::max_abs_diff(result.model.beta,
                                        clean[0].model.beta),
              0.0)
        << "rank " << r;
    EXPECT_GE(faulty_reports[static_cast<std::size_t>(r)].recovery.shrinks,
              1u)
        << "rank " << r;
  }
}

}  // namespace
