// Tests for uoi::io: H5-lite round trips (chunking, striping, hyperslabs),
// and the two distribution strategies' correctness invariants.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "io/distribution.hpp"
#include "io/h5lite.hpp"
#include "simcluster/cluster.hpp"
#include "support/rng.hpp"

namespace {

using uoi::linalg::Matrix;

Matrix pattern_matrix(std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = static_cast<double>(r * 1000 + c);
    }
  }
  return m;
}

class TempDataset {
 public:
  explicit TempDataset(const std::string& name)
      : base_((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempDataset() {
    for (std::uint64_t k = 0; k < 64; ++k) {
      std::error_code ec;
      std::filesystem::remove(uoi::io::stripe_path(base_, k), ec);
    }
  }
  [[nodiscard]] const std::string& base() const { return base_; }

 private:
  std::string base_;
};

class H5LiteParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(H5LiteParam, WriteReadRoundTripAcrossChunkingAndStriping) {
  const auto [chunk_rows, stripes] = GetParam();
  TempDataset tmp("uoi_roundtrip_" + std::to_string(chunk_rows) + "_" +
                  std::to_string(stripes));
  const Matrix data = pattern_matrix(37, 5);
  uoi::io::write_dataset(tmp.base(), data, chunk_rows, stripes);

  const uoi::io::DatasetReader reader(tmp.base());
  EXPECT_EQ(reader.info().rows, 37u);
  EXPECT_EQ(reader.info().cols, 5u);
  EXPECT_EQ(reader.info().n_stripes, stripes);

  Matrix all;
  reader.read_rows(0, 37, all);
  EXPECT_EQ(uoi::linalg::max_abs_diff(all, data), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, H5LiteParam,
    ::testing::Combine(::testing::Values(1, 4, 10, 37, 100),
                       ::testing::Values(1, 3, 8)));

TEST(H5Lite, HyperslabReadsArbitraryRanges) {
  TempDataset tmp("uoi_hyperslab");
  const Matrix data = pattern_matrix(50, 3);
  uoi::io::write_dataset(tmp.base(), data, 7, 4);
  const uoi::io::DatasetReader reader(tmp.base());
  for (const auto& [begin, count] :
       {std::pair<std::uint64_t, std::uint64_t>{0, 1}, {13, 21}, {49, 1},
        {6, 8}, {0, 50}}) {
    Matrix slab;
    reader.read_rows(begin, count, slab);
    ASSERT_EQ(slab.rows(), count);
    for (std::uint64_t r = 0; r < count; ++r) {
      EXPECT_DOUBLE_EQ(slab(r, 2), data(begin + r, 2));
    }
  }
}

TEST(H5Lite, ChunkRowCountsAndReopeningReader) {
  TempDataset tmp("uoi_chunks");
  const Matrix data = pattern_matrix(25, 2);
  uoi::io::write_dataset(tmp.base(), data, 10, 2);
  const uoi::io::DatasetReader reader(tmp.base());
  ASSERT_EQ(reader.info().n_chunks(), 3u);
  EXPECT_EQ(reader.chunk_row_count(0), 10u);
  EXPECT_EQ(reader.chunk_row_count(2), 5u);
  Matrix chunk;
  reader.read_chunk_reopening(2, chunk);
  EXPECT_EQ(chunk.rows(), 5u);
  EXPECT_DOUBLE_EQ(chunk(0, 0), data(20, 0));
}

TEST(H5Lite, MissingFileThrows) {
  EXPECT_THROW(uoi::io::DatasetReader("/nonexistent/uoi_nope"),
               uoi::support::IoError);
}

TEST(H5Lite, HyperslabOutOfRangeThrows) {
  TempDataset tmp("uoi_range");
  uoi::io::write_dataset(tmp.base(), pattern_matrix(10, 2), 5, 1);
  const uoi::io::DatasetReader reader(tmp.base());
  Matrix out;
  EXPECT_THROW(reader.read_rows(8, 5, out), uoi::support::InvalidArgument);
}

class DistributionParam : public ::testing::TestWithParam<int> {};

TEST_P(DistributionParam, ConventionalDeliversContiguousBlocks) {
  const int ranks = GetParam();
  TempDataset tmp("uoi_conv_" + std::to_string(ranks));
  const Matrix data = pattern_matrix(41, 4);
  uoi::io::write_dataset(tmp.base(), data, 8, 2);

  uoi::sim::Cluster::run(ranks, [&](uoi::sim::Comm& comm) {
    uoi::io::DistributionTiming timing;
    const auto local =
        uoi::io::conventional_distribute(comm, tmp.base(), &timing);
    // Block r of even slicing, in order.
    const std::size_t begin = 41 * comm.rank() / comm.size();
    const std::size_t end = 41 * (comm.rank() + 1) / comm.size();
    ASSERT_EQ(local.rows.rows(), end - begin);
    for (std::size_t i = 0; i < local.rows.rows(); ++i) {
      EXPECT_EQ(local.global_indices[i], begin + i);
      EXPECT_DOUBLE_EQ(local.rows(i, 1), data(begin + i, 1));
    }
    EXPECT_GE(timing.read_seconds, 0.0);
  });
}

TEST_P(DistributionParam, RandomizedDeliversAPermutation) {
  const int ranks = GetParam();
  TempDataset tmp("uoi_rand_" + std::to_string(ranks));
  const Matrix data = pattern_matrix(53, 3);
  uoi::io::write_dataset(tmp.base(), data, 9, 3);

  // Collect every rank's received global indices and check they partition
  // [0, 53) and that payloads match their labels.
  std::vector<std::vector<std::size_t>> received(
      static_cast<std::size_t>(ranks));
  uoi::sim::Cluster::run(ranks, [&](uoi::sim::Comm& comm) {
    const auto local =
        uoi::io::randomized_distribute(comm, tmp.base(), /*seed=*/99);
    for (std::size_t i = 0; i < local.rows.rows(); ++i) {
      const std::size_t g = local.global_indices[i];
      EXPECT_DOUBLE_EQ(local.rows(i, 0), data(g, 0));
      EXPECT_DOUBLE_EQ(local.rows(i, 2), data(g, 2));
    }
    received[static_cast<std::size_t>(comm.rank())] = local.global_indices;
  });
  std::set<std::size_t> all;
  for (const auto& r : received) all.insert(r.begin(), r.end());
  EXPECT_EQ(all.size(), 53u);
}

TEST_P(DistributionParam, RandomizedIsSeedDeterministic) {
  const int ranks = GetParam();
  TempDataset tmp("uoi_seed_" + std::to_string(ranks));
  uoi::io::write_dataset(tmp.base(), pattern_matrix(30, 2), 10, 1);
  std::vector<std::size_t> first, second, different;
  uoi::sim::Cluster::run(ranks, [&](uoi::sim::Comm& comm) {
    const auto a = uoi::io::randomized_distribute(comm, tmp.base(), 7);
    const auto b = uoi::io::randomized_distribute(comm, tmp.base(), 7);
    const auto c = uoi::io::randomized_distribute(comm, tmp.base(), 8);
    if (comm.rank() == 0) {
      first = a.global_indices;
      second = b.global_indices;
      different = c.global_indices;
    }
  });
  EXPECT_EQ(first, second);
  if (ranks > 1) {
    EXPECT_NE(first, different);
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistributionParam,
                         ::testing::Values(1, 2, 4, 7));

TEST(Distribution, ReshuffleRearrangesBetweenStages) {
  TempDataset tmp("uoi_reshuffle");
  const Matrix data = pattern_matrix(32, 2);
  uoi::io::write_dataset(tmp.base(), data, 8, 1);
  uoi::sim::Cluster::run(4, [&](uoi::sim::Comm& comm) {
    const auto stage1 = uoi::io::randomized_distribute(comm, tmp.base(), 1);
    const auto stage2 = uoi::io::reshuffle(comm, stage1, 32, /*seed=*/2);
    // Payloads still match labels after the second shuffle.
    for (std::size_t i = 0; i < stage2.rows.rows(); ++i) {
      EXPECT_DOUBLE_EQ(stage2.rows(i, 1),
                       data(stage2.global_indices[i], 1));
    }
    // And the arrangement actually changed for someone.
    bool changed = stage1.global_indices != stage2.global_indices;
    std::uint64_t flag = changed ? 1 : 0;
    std::vector<std::uint64_t> flags{flag};
    comm.allreduce(flags, uoi::sim::ReduceOp::kMax);
    EXPECT_EQ(flags[0], 1u);
  });
}

TEST(Distribution, RandomizedSpreadsRowsAcrossRanks) {
  // The point of T2: each rank's holding is a random subsample, not a
  // contiguous block.
  TempDataset tmp("uoi_spread");
  uoi::io::write_dataset(tmp.base(), pattern_matrix(64, 2), 16, 1);
  uoi::sim::Cluster::run(4, [&](uoi::sim::Comm& comm) {
    const auto local = uoi::io::randomized_distribute(comm, tmp.base(), 5);
    // With 64 rows over 4 ranks, a contiguous block would span 16; a random
    // subsample almost surely spans much more.
    std::size_t lo = 64, hi = 0;
    for (const auto g : local.global_indices) {
      lo = std::min(lo, g);
      hi = std::max(hi, g);
    }
    EXPECT_GT(hi - lo, 20u);
  });
}

}  // namespace
