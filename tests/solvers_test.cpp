// Tests for uoi::solvers: LASSO-ADMM optimality (KKT), agreement between
// independent solver implementations (ADMM vs coordinate descent; dense vs
// sparse vs structured vs distributed), OLS correctness, lambda grids.

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic_regression.hpp"
#include "linalg/blas.hpp"
#include "linalg/kron.hpp"
#include "simcluster/cluster.hpp"
#include "solvers/admm_lasso.hpp"
#include "solvers/admm_lasso_sparse.hpp"
#include "solvers/cd_lasso.hpp"
#include "solvers/distributed_admm.hpp"
#include "solvers/lambda_grid.hpp"
#include "solvers/ols.hpp"
#include "solvers/prox.hpp"
#include "solvers/ridge.hpp"
#include "solvers/ridge_system.hpp"
#include "support/rng.hpp"

namespace {

using uoi::linalg::ConstMatrixView;
using uoi::linalg::Matrix;
using uoi::linalg::Vector;

double lasso_objective(ConstMatrixView x, std::span<const double> y,
                       std::span<const double> beta, double lambda) {
  double rss = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double err = uoi::linalg::dot(x.row(r), beta) - y[r];
    rss += err * err;
  }
  return 0.5 * rss + lambda * uoi::linalg::nrm1(beta);
}

/// KKT check for the LASSO: |x_j'(y - X beta)| <= lambda (+tol) everywhere,
/// with equality (sign-matched) on the support.
void expect_kkt(ConstMatrixView x, std::span<const double> y,
                std::span<const double> beta, double lambda, double tol) {
  Vector residual(y.begin(), y.end());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    residual[r] -= uoi::linalg::dot(x.row(r), beta);
  }
  Vector grad(x.cols(), 0.0);
  uoi::linalg::gemv_transposed(1.0, x, residual, 0.0, grad);
  for (std::size_t j = 0; j < x.cols(); ++j) {
    EXPECT_LE(std::abs(grad[j]), lambda + tol) << "coordinate " << j;
    if (std::abs(beta[j]) > 1e-6) {
      EXPECT_NEAR(grad[j], lambda * (beta[j] > 0 ? 1.0 : -1.0), tol)
          << "support coordinate " << j;
    }
  }
}

uoi::data::RegressionDataset small_problem(std::uint64_t seed = 3,
                                           std::size_t n = 60,
                                           std::size_t p = 20) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = n;
  spec.n_features = p;
  spec.support_size = 5;
  spec.noise_stddev = 0.3;
  spec.seed = seed;
  return uoi::data::make_regression(spec);
}

TEST(Prox, SoftThreshold) {
  EXPECT_DOUBLE_EQ(uoi::solvers::soft_threshold(3.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(uoi::solvers::soft_threshold(-3.0, 1.0), -2.0);
  EXPECT_DOUBLE_EQ(uoi::solvers::soft_threshold(0.5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(uoi::solvers::soft_threshold(-0.5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(uoi::solvers::soft_threshold(2.0, 0.0), 2.0);
}

TEST(LambdaGrid, LambdaMaxZeroesTheSolution) {
  const auto data = small_problem();
  const double hi = uoi::solvers::lambda_max(data.x, data.y);
  const auto fit = uoi::solvers::lasso_admm(data.x, data.y, hi * 1.001);
  for (const double b : fit.beta) EXPECT_NEAR(b, 0.0, 1e-6);
}

TEST(LambdaGrid, LogSpacedEndpointsAndMonotone) {
  const auto grid = uoi::solvers::log_spaced_lambdas(10.0, 0.01, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 10.0);
  EXPECT_NEAR(grid.back(), 0.1, 1e-12);
  for (std::size_t i = 1; i < grid.size(); ++i) EXPECT_LT(grid[i], grid[i - 1]);
}

TEST(LambdaGrid, SingleValueGrid) {
  const auto grid = uoi::solvers::log_spaced_lambdas(5.0, 0.1, 1);
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_DOUBLE_EQ(grid[0], 5.0);
}

class AdmmKktParam
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(AdmmKktParam, SatisfiesKktConditions) {
  const auto [seed, lambda_fraction] = GetParam();
  const auto data = small_problem(seed);
  const double lambda =
      lambda_fraction * uoi::solvers::lambda_max(data.x, data.y);
  uoi::solvers::AdmmOptions options;
  options.eps_abs = 1e-9;
  options.eps_rel = 1e-7;
  options.max_iterations = 20000;
  const auto fit = uoi::solvers::lasso_admm(data.x, data.y, lambda, options);
  EXPECT_TRUE(fit.converged);
  expect_kkt(data.x, data.y, fit.beta, lambda, 1e-3 * lambda + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Instances, AdmmKktParam,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0.5, 0.1, 0.01)));

TEST(Admm, MatchesCoordinateDescent) {
  const auto data = small_problem(7);
  const double lambda = 0.1 * uoi::solvers::lambda_max(data.x, data.y);
  uoi::solvers::AdmmOptions options;
  options.eps_abs = 1e-10;
  options.eps_rel = 1e-8;
  options.max_iterations = 50000;
  const auto admm = uoi::solvers::lasso_admm(data.x, data.y, lambda, options);
  uoi::solvers::CdLassoOptions cd_options;
  cd_options.tolerance = 1e-12;
  const auto cd = uoi::solvers::cd_lasso(data.x, data.y, lambda, cd_options);
  EXPECT_TRUE(admm.converged);
  EXPECT_TRUE(cd.converged);
  // Both minimize the same strictly convex-on-support objective.
  const double obj_admm = lasso_objective(data.x, data.y, admm.beta, lambda);
  const double obj_cd = lasso_objective(data.x, data.y, cd.beta, lambda);
  EXPECT_NEAR(obj_admm, obj_cd, 1e-5 * std::abs(obj_cd));
  EXPECT_LT(uoi::linalg::max_abs_diff(admm.beta, cd.beta), 1e-3);
}

TEST(Admm, WoodburyPathWhenWide) {
  // n < p exercises the matrix-inversion-lemma branch.
  uoi::data::RegressionSpec spec;
  spec.n_samples = 30;
  spec.n_features = 80;
  spec.support_size = 4;
  spec.noise_stddev = 0.1;
  spec.seed = 9;
  const auto data = uoi::data::make_regression(spec);
  const double lambda = 0.05 * uoi::solvers::lambda_max(data.x, data.y);
  uoi::solvers::AdmmOptions options;
  options.eps_abs = 1e-9;
  options.eps_rel = 1e-7;
  options.max_iterations = 20000;
  const auto fit = uoi::solvers::lasso_admm(data.x, data.y, lambda, options);
  EXPECT_TRUE(fit.converged);
  expect_kkt(data.x, data.y, fit.beta, lambda, 1e-3 * lambda + 1e-6);
}

TEST(Admm, WarmStartReducesIterations) {
  const auto data = small_problem(11);
  const double hi = uoi::solvers::lambda_max(data.x, data.y);
  const uoi::solvers::LassoAdmmSolver solver(data.x, data.y);
  const auto cold = solver.solve(0.09 * hi);
  const auto path_point = solver.solve(0.1 * hi);
  const auto warm = solver.solve(0.09 * hi, &path_point);
  EXPECT_LE(warm.iterations, cold.iterations);
  EXPECT_LT(uoi::linalg::max_abs_diff(warm.beta, cold.beta), 1e-3);
}

TEST(Admm, LambdaZeroIsOls) {
  const auto data = small_problem(13, 80, 10);
  uoi::solvers::AdmmOptions options;
  options.eps_abs = 1e-11;
  options.eps_rel = 1e-9;
  options.max_iterations = 50000;
  const auto admm = uoi::solvers::lasso_admm(data.x, data.y, 0.0, options);
  const Vector ols = uoi::solvers::ols_direct(data.x, data.y);
  EXPECT_LT(uoi::linalg::max_abs_diff(admm.beta, ols), 1e-5);
}

TEST(Admm, RejectsNegativeLambda) {
  const auto data = small_problem();
  EXPECT_THROW((void)uoi::solvers::lasso_admm(data.x, data.y, -1.0),
               uoi::support::InvalidArgument);
}

TEST(Admm, FlopAccountingIsPositive) {
  const auto data = small_problem();
  const auto fit = uoi::solvers::lasso_admm(data.x, data.y, 0.1);
  EXPECT_GT(fit.flops, 0u);
}

TEST(RidgeSystem, SolvesBothBranches) {
  uoi::support::Xoshiro256 rng(15);
  for (const auto& [n, p] :
       {std::pair<std::size_t, std::size_t>{40, 12}, {12, 40}}) {
    Matrix a(n, p);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < p; ++c) a(r, c) = rng.normal();
    }
    const double rho = 2.5;
    const uoi::solvers::RidgeSystemSolver system(a, rho);
    EXPECT_EQ(system.uses_woodbury(), n < p);
    Vector q(p), x(p);
    for (auto& v : q) v = rng.normal();
    system.solve(q, x);
    // Verify (A'A + rho I) x == q.
    Vector ax(n, 0.0), atax(p, 0.0);
    uoi::linalg::gemv(1.0, a, x, 0.0, ax);
    uoi::linalg::gemv_transposed(1.0, a, ax, 0.0, atax);
    for (std::size_t i = 0; i < p; ++i) atax[i] += rho * x[i];
    EXPECT_LT(uoi::linalg::max_abs_diff(atax, q), 1e-8);
  }
}

TEST(SparseAdmm, MatchesDenseOnSameProblem) {
  const auto data = small_problem(17);
  const double lambda = 0.1 * uoi::solvers::lambda_max(data.x, data.y);
  uoi::solvers::AdmmOptions options;
  options.eps_abs = 1e-9;
  options.eps_rel = 1e-7;
  options.max_iterations = 20000;
  const auto dense = uoi::solvers::lasso_admm(data.x, data.y, lambda, options);
  const auto csr = uoi::linalg::SparseMatrix::from_dense(data.x);
  const uoi::solvers::SparseLassoAdmmSolver sparse(csr, data.y, options);
  const auto sparse_fit = sparse.solve(lambda);
  EXPECT_LT(uoi::linalg::max_abs_diff(dense.beta, sparse_fit.beta), 1e-5);
}

TEST(SparseAdmm, CgFallbackMatchesCholesky) {
  const auto data = small_problem(19);
  const double lambda = 0.1 * uoi::solvers::lambda_max(data.x, data.y);
  const auto csr = uoi::linalg::SparseMatrix::from_dense(data.x);
  uoi::solvers::AdmmOptions options;
  options.eps_abs = 1e-9;
  options.eps_rel = 1e-7;
  options.max_iterations = 20000;
  const uoi::solvers::SparseLassoAdmmSolver with_chol(csr, data.y, options);
  const uoi::solvers::SparseLassoAdmmSolver with_cg(csr, data.y, options,
                                                    /*dense_gram_max_cols=*/0);
  EXPECT_LT(uoi::linalg::max_abs_diff(with_chol.solve(lambda).beta,
                                      with_cg.solve(lambda).beta),
            1e-4);
}

TEST(KronAdmm, MatchesSparseOnBlockDiagonalProblem) {
  // Build a small I (x) X problem directly.
  uoi::support::Xoshiro256 rng(21);
  Matrix x(12, 4);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) x(r, c) = rng.normal();
  }
  const std::size_t blocks = 5;
  const uoi::linalg::KroneckerIdentityOp op(x, blocks);
  Vector y(op.rows());
  for (auto& v : y) v = rng.normal();

  uoi::solvers::AdmmOptions options;
  options.eps_abs = 1e-9;
  options.eps_rel = 1e-7;
  options.max_iterations = 20000;
  const uoi::solvers::KronLassoAdmmSolver structured(op, y, options);
  const auto csr = uoi::linalg::kron_identity_sparse(x, blocks);
  const uoi::solvers::SparseLassoAdmmSolver sparse(csr, y, options);

  const double lambda = 0.5;
  EXPECT_LT(uoi::linalg::max_abs_diff(structured.solve(lambda).beta,
                                      sparse.solve(lambda).beta),
            1e-5);
}

class DistributedAdmmParam : public ::testing::TestWithParam<int> {};

TEST_P(DistributedAdmmParam, MatchesSerialAcrossRankCounts) {
  const int ranks = GetParam();
  const auto data = small_problem(23, 64, 16);
  const double lambda = 0.1 * uoi::solvers::lambda_max(data.x, data.y);
  uoi::solvers::AdmmOptions options;
  options.eps_abs = 1e-9;
  options.eps_rel = 1e-7;
  options.max_iterations = 30000;
  const auto serial = uoi::solvers::lasso_admm(data.x, data.y, lambda, options);

  uoi::sim::Cluster::run(ranks, [&](uoi::sim::Comm& comm) {
    const std::size_t n = data.x.rows();
    const std::size_t begin = n * comm.rank() / comm.size();
    const std::size_t end = n * (comm.rank() + 1) / comm.size();
    const auto local_x = data.x.row_block(begin, end - begin);
    const std::span<const double> local_y =
        std::span<const double>(data.y).subspan(begin, end - begin);
    const auto fit = uoi::solvers::distributed_lasso_admm(
        comm, local_x, local_y, lambda, options);
    EXPECT_TRUE(fit.converged);
    EXPECT_LT(uoi::linalg::max_abs_diff(fit.beta, serial.beta), 2e-3);
    EXPECT_GT(fit.allreduce_calls, 0u);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistributedAdmmParam,
                         ::testing::Values(1, 2, 4, 8));

TEST(DistributedAdmm, OlsModeMatchesDirect) {
  const auto data = small_problem(29, 100, 12);
  const Vector ols = uoi::solvers::ols_direct(data.x, data.y);
  uoi::solvers::AdmmOptions options;
  options.eps_abs = 1e-10;
  options.eps_rel = 1e-8;
  options.max_iterations = 50000;
  uoi::sim::Cluster::run(4, [&](uoi::sim::Comm& comm) {
    const std::size_t n = data.x.rows();
    const std::size_t begin = n * comm.rank() / comm.size();
    const std::size_t end = n * (comm.rank() + 1) / comm.size();
    const auto fit = uoi::solvers::distributed_lasso_admm(
        comm, data.x.row_block(begin, end - begin),
        std::span<const double>(data.y).subspan(begin, end - begin),
        /*lambda=*/0.0, options);
    EXPECT_LT(uoi::linalg::max_abs_diff(fit.beta, ols), 1e-4);
  });
}

TEST(Ols, RecoversExactCoefficientsWithoutNoise) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 50;
  spec.n_features = 8;
  spec.support_size = 8;
  spec.noise_stddev = 0.0;
  spec.seed = 31;
  const auto data = uoi::data::make_regression(spec);
  const Vector beta = uoi::solvers::ols_direct(data.x, data.y);
  EXPECT_LT(uoi::linalg::max_abs_diff(beta, data.beta_true), 1e-8);
}

TEST(Ols, SupportRestrictionZeroPadsOffSupport) {
  const auto data = small_problem(33);
  const std::vector<std::size_t> support{1, 5, 7};
  const Vector beta =
      uoi::solvers::ols_direct_on_support(data.x, data.y, support);
  ASSERT_EQ(beta.size(), data.x.cols());
  for (std::size_t j = 0; j < beta.size(); ++j) {
    const bool on_support =
        std::find(support.begin(), support.end(), j) != support.end();
    if (!on_support) {
      EXPECT_DOUBLE_EQ(beta[j], 0.0);
    }
  }
}

TEST(Ols, EmptySupportIsZeroModel) {
  const auto data = small_problem(34);
  const Vector beta = uoi::solvers::ols_direct_on_support(data.x, data.y, {});
  for (const double b : beta) EXPECT_DOUBLE_EQ(b, 0.0);
}

TEST(Ols, AdmmVariantMatchesDirect) {
  const auto data = small_problem(35);
  const std::vector<std::size_t> support{0, 3, 9, 14};
  uoi::solvers::AdmmOptions options;
  options.eps_abs = 1e-11;
  options.eps_rel = 1e-9;
  options.max_iterations = 50000;
  const Vector direct =
      uoi::solvers::ols_direct_on_support(data.x, data.y, support);
  const Vector admm =
      uoi::solvers::ols_admm_on_support(data.x, data.y, support, options);
  EXPECT_LT(uoi::linalg::max_abs_diff(direct, admm), 1e-5);
}

TEST(Ols, MseAndRSquared) {
  Matrix x{{1.0}, {2.0}, {3.0}};
  const Vector y{2.0, 4.0, 6.0};
  const Vector perfect{2.0};
  EXPECT_NEAR(uoi::solvers::mean_squared_error(x, y, perfect), 0.0, 1e-15);
  EXPECT_NEAR(uoi::solvers::r_squared(x, y, perfect), 1.0, 1e-15);
  const Vector zero{0.0};
  EXPECT_LT(uoi::solvers::r_squared(x, y, zero), 0.0 + 1e-12);
}

TEST(CdLasso, CvPicksReasonableLambdaAndRecovers) {
  const auto data = small_problem(37, 120, 15);
  const auto cv = uoi::solvers::cv_lasso(data.x, data.y, 30, 4);
  EXPECT_GT(cv.best_lambda, 0.0);
  ASSERT_EQ(cv.cv_mse.size(), cv.lambda_path.size());
  // The fit should recover the true support (possibly with extras — LASSO's
  // known false-positive tendency, the paper's motivation for UoI).
  for (std::size_t j = 0; j < data.beta_true.size(); ++j) {
    if (data.beta_true[j] != 0.0) {
      EXPECT_GT(std::abs(cv.beta[j]), 1e-4) << "missed true feature " << j;
    }
  }
}

TEST(Ridge, ShrinksTowardZero) {
  const auto data = small_problem(39);
  const Vector small_penalty = uoi::solvers::ridge(data.x, data.y, 1e-6);
  const Vector big_penalty = uoi::solvers::ridge(data.x, data.y, 1e6);
  EXPECT_GT(uoi::linalg::nrm2(small_penalty), uoi::linalg::nrm2(big_penalty));
  EXPECT_LT(uoi::linalg::nrm2(big_penalty), 1e-2);
  // Tiny penalty approximates OLS.
  const Vector ols = uoi::solvers::ols_direct(data.x, data.y);
  EXPECT_LT(uoi::linalg::max_abs_diff(small_penalty, ols), 1e-4);
}

}  // namespace
