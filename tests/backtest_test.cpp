// Tests for the rolling-origin backtester and heavy-tailed simulation.

#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.hpp"
#include "data/synthetic_var.hpp"
#include "var/backtest.hpp"
#include "var/uoi_var.hpp"
#include "var/var_model.hpp"

namespace {

using uoi::linalg::Matrix;

TEST(Backtest, OlsVarBeatsBaselinesOnPersistentSystem) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 5;
  spec.self_coefficient = 0.6;
  spec.seed = 3;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 500;
  sim.seed = 4;
  const Matrix series = uoi::var::simulate(truth, sim);

  const auto result =
      uoi::var::backtest_var(series, uoi::var::ols_var_fitter(1));
  EXPECT_GT(result.n_forecasts, 100u);
  EXPECT_GT(result.n_refits, 5u);
  EXPECT_LT(result.model_mse, result.persistence_mse);
  EXPECT_LT(result.model_mse, result.mean_mse);
  EXPECT_LT(result.skill_vs_persistence(), 1.0);
  // The true disturbance variance floors the 1-step MSE at ~1.
  EXPECT_GT(result.model_mse, 0.8);
  EXPECT_LT(result.model_mse, 1.5);
}

TEST(Backtest, TrueModelFitterIsNearOptimal) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 4;
  spec.seed = 5;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 400;
  sim.seed = 6;
  const Matrix series = uoi::var::simulate(truth, sim);

  const auto oracle = uoi::var::backtest_var(
      series, [&](uoi::linalg::ConstMatrixView) { return truth; });
  const auto fitted =
      uoi::var::backtest_var(series, uoi::var::ols_var_fitter(1));
  // The estimated model cannot beat the oracle by more than noise jitter.
  EXPECT_GT(fitted.model_mse, oracle.model_mse * 0.95);
  EXPECT_LT(fitted.model_mse, oracle.model_mse * 1.3);
}

TEST(Backtest, MultiStepHorizonDegradesGracefully) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 4;
  spec.self_coefficient = 0.6;
  spec.seed = 7;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 400;
  sim.seed = 8;
  const Matrix series = uoi::var::simulate(truth, sim);

  uoi::var::BacktestOptions h1, h4;
  h4.horizon = 4;
  const auto one = uoi::var::backtest_var(
      series, uoi::var::ols_var_fitter(1), h1);
  const auto four = uoi::var::backtest_var(
      series, uoi::var::ols_var_fitter(1), h4);
  EXPECT_GT(four.model_mse, one.model_mse);
}

TEST(Backtest, RejectsDegenerateRanges) {
  Matrix tiny(10, 2);
  uoi::var::BacktestOptions options;
  options.first_origin = 9;
  EXPECT_THROW((void)uoi::var::backtest_var(
                   tiny, uoi::var::ols_var_fitter(1), options),
               uoi::support::InvalidArgument);
}

TEST(StudentT, UnitVarianceAfterRescaling) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 1;
  spec.self_coefficient = 0.0;
  spec.edges_per_node = 0.0;
  spec.seed = 9;
  // A pure-noise "VAR": variance of the series == disturbance variance.
  Matrix zero(1, 1);
  const uoi::var::VarModel white({zero});
  uoi::var::SimulateOptions sim;
  sim.n_samples = 60000;
  sim.student_t_dof = 4.0;
  sim.seed = 10;
  const Matrix series = uoi::var::simulate(white, sim);
  double var = 0.0, kurt = 0.0;
  for (std::size_t t = 0; t < series.rows(); ++t) {
    var += series(t, 0) * series(t, 0);
  }
  var /= static_cast<double>(series.rows());
  for (std::size_t t = 0; t < series.rows(); ++t) {
    const double z2 = series(t, 0) * series(t, 0) / var;
    kurt += z2 * z2;
  }
  kurt /= static_cast<double>(series.rows());
  EXPECT_NEAR(var, 1.0, 0.1);
  EXPECT_GT(kurt, 4.0);  // heavier than the Gaussian's 3
}

TEST(StudentT, SelectionSurvivesHeavyTails) {
  // UoI_VAR's selection should hold up under t(4) disturbances — the
  // robustness property bootstrap-based intersection buys.
  uoi::data::VarSpec spec;
  spec.n_nodes = 8;
  spec.edges_per_node = 1.5;
  spec.seed = 11;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 600;
  sim.student_t_dof = 4.0;
  sim.seed = 12;
  const Matrix series = uoi::var::simulate(truth, sim);

  uoi::var::UoiVarOptions options;
  options.n_selection_bootstraps = 10;
  options.n_estimation_bootstraps = 6;
  options.n_lambdas = 10;
  const auto fit = uoi::var::UoiVar(options).fit(series);

  const auto est = uoi::core::SupportSet::from_beta(fit.vec_beta, 0.05);
  const auto ref = uoi::core::SupportSet::from_beta(truth.vec_b(), 1e-9);
  const auto acc =
      uoi::core::selection_accuracy(est, ref, fit.vec_beta.size());
  EXPECT_EQ(acc.false_negatives, 0u);
  EXPECT_LE(acc.false_positives, 6u);  // heavy tails admit a few extras
}

TEST(StudentT, RejectsLowDof) {
  Matrix zero(1, 1);
  const uoi::var::VarModel white({zero});
  uoi::var::SimulateOptions sim;
  sim.n_samples = 10;
  sim.student_t_dof = 1.5;
  EXPECT_THROW((void)uoi::var::simulate(white, sim),
               uoi::support::InvalidArgument);
}

}  // namespace
