// Statistical property sweeps: UoI selection quality across a grid of
// problem regimes (dimension, sparsity, noise, correlation). These encode
// the framework's *claims* as properties that must hold in every regime
// where they statistically should — zero missed features at adequate
// sample sizes, and fewer false positives than the LASSO baseline when
// aggregated across the sweep.

#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.hpp"
#include "core/uoi_lasso.hpp"
#include "data/synthetic_regression.hpp"
#include "solvers/cd_lasso.hpp"

namespace {

struct Regime {
  std::size_t n;
  std::size_t p;
  std::size_t k;
  double noise;
  double correlation;
};

class UoiRegimeSweep : public ::testing::TestWithParam<Regime> {};

TEST_P(UoiRegimeSweep, NoMissedFeaturesAndBoundedFalsePositives) {
  const Regime regime = GetParam();
  uoi::data::RegressionSpec spec;
  spec.n_samples = regime.n;
  spec.n_features = regime.p;
  spec.support_size = regime.k;
  spec.noise_stddev = regime.noise;
  spec.feature_correlation = regime.correlation;
  spec.coefficient_min = 0.75;  // keep the betamin condition comfortable
  spec.seed = 1000 + regime.n + regime.p;
  const auto data = uoi::data::make_regression(spec);

  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 12;
  options.n_estimation_bootstraps = 6;
  options.n_lambdas = 12;
  options.seed = 7 + regime.p;
  const auto fit = uoi::core::UoiLasso(options).fit(data.x, data.y);

  const auto truth = uoi::core::SupportSet::from_beta(data.beta_true);
  const auto support = uoi::core::SupportSet::from_beta(fit.beta, 0.05);
  const auto acc =
      uoi::core::selection_accuracy(support, truth, regime.p);
  EXPECT_EQ(acc.false_negatives, 0u)
      << "missed features at n=" << regime.n << " p=" << regime.p;
  // FP bound: generous per-regime cap; the aggregate comparison with the
  // baseline below is the sharp claim.
  EXPECT_LE(acc.false_positives, regime.p / 5)
      << "too many spurious features at n=" << regime.n;
  // Estimation quality: relative error bounded away from disaster.
  const auto est =
      uoi::core::estimation_accuracy(fit.beta, data.beta_true);
  EXPECT_LT(est.relative_l2, 0.35);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, UoiRegimeSweep,
    ::testing::Values(Regime{200, 20, 4, 0.3, 0.0},   // easy
                      Regime{200, 40, 6, 0.5, 0.0},   // moderate p
                      Regime{300, 40, 6, 0.5, 0.5},   // correlated
                      Regime{400, 60, 8, 0.7, 0.3},   // noisy
                      Regime{150, 30, 3, 0.4, 0.6},   // small n, correlated
                      Regime{500, 25, 10, 0.5, 0.0}   // denser truth
                      ));

TEST(UoiVsLassoAggregate, FewerFalsePositivesAcrossTheSweep) {
  // The paper's core statistical claim, aggregated over regimes: UoI
  // accumulates strictly fewer false positives than CV-LASSO at equal
  // (zero) false negatives.
  const Regime regimes[] = {{200, 20, 4, 0.3, 0.0},
                            {200, 40, 6, 0.5, 0.0},
                            {300, 40, 6, 0.5, 0.5},
                            {150, 30, 3, 0.4, 0.6}};
  std::size_t uoi_fp = 0, lasso_fp = 0, uoi_fn = 0, lasso_fn = 0;
  for (const auto& regime : regimes) {
    uoi::data::RegressionSpec spec;
    spec.n_samples = regime.n;
    spec.n_features = regime.p;
    spec.support_size = regime.k;
    spec.noise_stddev = regime.noise;
    spec.feature_correlation = regime.correlation;
    spec.coefficient_min = 0.75;
    spec.seed = 2000 + regime.n;
    const auto data = uoi::data::make_regression(spec);
    const auto truth = uoi::core::SupportSet::from_beta(data.beta_true);

    uoi::core::UoiLassoOptions options;
    options.n_selection_bootstraps = 12;
    options.n_estimation_bootstraps = 6;
    options.n_lambdas = 12;
    const auto fit = uoi::core::UoiLasso(options).fit(data.x, data.y);
    const auto uoi_acc = uoi::core::selection_accuracy(
        uoi::core::SupportSet::from_beta(fit.beta, 0.05), truth, regime.p);
    uoi_fp += uoi_acc.false_positives;
    uoi_fn += uoi_acc.false_negatives;

    const auto cv = uoi::solvers::cv_lasso(data.x, data.y, 20, 4);
    const auto cv_acc = uoi::core::selection_accuracy(
        uoi::core::SupportSet::from_beta(cv.beta, 0.05), truth, regime.p);
    lasso_fp += cv_acc.false_positives;
    lasso_fn += cv_acc.false_negatives;
  }
  EXPECT_EQ(uoi_fn, 0u);
  EXPECT_EQ(lasso_fn, 0u);
  EXPECT_LT(uoi_fp, lasso_fp)
      << "UoI did not beat CV-LASSO on false positives in aggregate";
}

}  // namespace
