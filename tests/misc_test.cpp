// Coverage for the remaining small surfaces: logging, formatting edge
// cases, matrix odds and ends, window accumulate patterns, sparse edge
// cases, and distributed-driver corner configurations.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/checkpoint.hpp"
#include "core/predict.hpp"
#include "core/uoi_logistic.hpp"
#include "core/uoi_lasso_distributed.hpp"
#include "data/synthetic_regression.hpp"
#include "linalg/blas.hpp"
#include "linalg/sparse.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/window.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

namespace {

using uoi::linalg::Matrix;
using uoi::linalg::SparseMatrix;
using uoi::linalg::Vector;

TEST(Logging, LevelGateAndRestore) {
  const auto initial = uoi::support::log_level();
  uoi::support::set_log_level(uoi::support::LogLevel::kOff);
  UOI_LOG_ERROR << "must not crash while disabled";
  uoi::support::set_log_level(uoi::support::LogLevel::kDebug);
  EXPECT_EQ(uoi::support::log_level(), uoi::support::LogLevel::kDebug);
  UOI_LOG_DEBUG << "streamed " << 42 << " pieces";
  uoi::support::set_log_level(initial);
}

TEST(Format, ScientificAndFixed) {
  EXPECT_EQ(uoi::support::format_sci(12345.678, 2), "1.23e+04");
  EXPECT_EQ(uoi::support::format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(uoi::support::format_fixed(-0.5, 0), "-0");
}

TEST(Format, SubMillisecondDurations) {
  EXPECT_EQ(uoi::support::format_seconds(5e-7), "500 ns");
  EXPECT_EQ(uoi::support::format_seconds(-1.0), "0 ns");
}

TEST(Table, CsvEscapesQuotesAndNewlines) {
  uoi::support::Table t({"a", "b"});
  t.add_row({"say \"hi\"", "line1\nline2"});
  const auto csv = t.to_csv();
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(csv.find("\"line1\nline2\""), std::string::npos);
}

TEST(Matrix, ColExtractionAndEquality) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  const Vector col1 = m.col(1);
  EXPECT_EQ(col1, (Vector{2, 4, 6}));
  Matrix same{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m, same);
  same(0, 0) = 9;
  EXPECT_NE(m, same);
  EXPECT_THROW((void)m.col(5), uoi::support::DimensionMismatch);
}

TEST(Matrix, EmptyAndResize) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  m.resize(3, 2);
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.size(), 6u);
  m.fill(7.0);
  EXPECT_DOUBLE_EQ(m(2, 1), 7.0);
}

TEST(Sparse, EmptyMatrixOperations) {
  SparseMatrix s(3, 4);
  EXPECT_EQ(s.nnz(), 0u);
  EXPECT_DOUBLE_EQ(s.sparsity(), 1.0);
  Vector x(4, 1.0), y(3, 5.0);
  s.gemv(1.0, x, 0.0, y);
  for (const double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Sparse, GemvBetaAccumulates) {
  Matrix dense{{1.0, 0.0}, {0.0, 2.0}};
  const auto s = SparseMatrix::from_dense(dense);
  Vector x{3.0, 4.0}, y{10.0, 20.0};
  s.gemv(1.0, x, 0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0 + 3.0);
  EXPECT_DOUBLE_EQ(y[1], 10.0 + 8.0);
}

TEST(Window, ManyToOneAccumulatePattern) {
  // The reduction-via-window pattern the paper's distribution layer uses.
  uoi::sim::Cluster::run(6, [&](uoi::sim::Comm& comm) {
    std::vector<double> local(3, 0.0);
    uoi::sim::Window win(comm, local);
    win.fence();
    const std::vector<double> contribution{
        1.0, static_cast<double>(comm.rank()), 0.5};
    win.accumulate_add(0, 0, contribution);
    win.fence();
    if (comm.rank() == 0) {
      EXPECT_DOUBLE_EQ(local[0], 6.0);
      EXPECT_DOUBLE_EQ(local[1], 15.0);  // 0+1+2+3+4+5
      EXPECT_DOUBLE_EQ(local[2], 3.0);
    }
  });
}

TEST(Window, GetIntoOwnBuffer) {
  uoi::sim::Cluster::run(3, [&](uoi::sim::Comm& comm) {
    std::vector<double> local(2, static_cast<double>(comm.rank()));
    uoi::sim::Window win(comm, local);
    win.fence();
    std::vector<double> self(2);
    win.get(comm.rank(), 0, self);
    EXPECT_DOUBLE_EQ(self[0], static_cast<double>(comm.rank()));
    win.fence();
  });
}

TEST(DistributedUoi, MoreBootstrapGroupsThanBootstraps) {
  // P_B > B1: some task groups own no selection bootstraps and must still
  // participate in every collective without deadlock.
  uoi::data::RegressionSpec spec;
  spec.n_samples = 60;
  spec.n_features = 10;
  spec.support_size = 3;
  spec.seed = 3;
  const auto data = uoi::data::make_regression(spec);
  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 2;  // < P_B = 4
  options.n_estimation_bootstraps = 2;
  options.n_lambdas = 4;
  uoi::sim::Cluster::run(4, [&](uoi::sim::Comm& comm) {
    const auto result = uoi::core::uoi_lasso_distributed(
        comm, data.x, data.y, options, {4, 1});
    EXPECT_EQ(result.model.candidate_supports.size(), 4u);
  });
}

TEST(DistributedUoi, SingleLambda) {
  const auto data = uoi::data::make_regression({});
  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 3;
  options.n_estimation_bootstraps = 2;
  options.lambdas = {1.0};
  uoi::sim::Cluster::run(2, [&](uoi::sim::Comm& comm) {
    const auto result =
        uoi::core::uoi_lasso_distributed(comm, data.x, data.y, options);
    EXPECT_EQ(result.model.lambdas.size(), 1u);
  });
}

TEST(Gemv, ZeroSizedEdges) {
  Matrix m(0, 3);
  Vector x(3, 1.0), y(0);
  uoi::linalg::gemv(1.0, m, x, 0.0, y);  // must not crash
  EXPECT_TRUE(y.empty());
}

}  // namespace

namespace checkpoint_tests {

using uoi::linalg::Matrix;

TEST(Checkpoint, RoundTripAndFingerprintGate) {
  uoi::core::SelectionCheckpoint checkpoint;
  checkpoint.fingerprint = 0xabcdef;
  checkpoint.completed_bootstraps = 7;
  checkpoint.lambdas = {3.0, 1.0, 0.5};
  checkpoint.counts = Matrix(3, 4);
  checkpoint.counts(1, 2) = 5.0;

  const std::string path =
      (std::filesystem::temp_directory_path() / "uoi_ckpt_rt.txt").string();
  uoi::core::save_checkpoint(path, checkpoint);

  const auto loaded = uoi::core::try_load_checkpoint(path, 0xabcdef);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->completed_bootstraps, 7u);
  EXPECT_EQ(loaded->lambdas, checkpoint.lambdas);
  EXPECT_DOUBLE_EQ(loaded->counts(1, 2), 5.0);

  // Wrong fingerprint: treated as a foreign file.
  EXPECT_FALSE(uoi::core::try_load_checkpoint(path, 0x999).has_value());
  // Missing file: nullopt, no throw.
  EXPECT_FALSE(
      uoi::core::try_load_checkpoint(path + ".nope", 0xabcdef).has_value());
  std::filesystem::remove(path);
}

TEST(Checkpoint, ResumedFitMatchesUninterrupted) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 120;
  spec.n_features = 16;
  spec.support_size = 4;
  spec.seed = 5;
  const auto data = uoi::data::make_regression(spec);

  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 8;
  options.n_estimation_bootstraps = 4;
  options.n_lambdas = 6;
  const uoi::core::UoiLasso uoi(options);
  const auto reference = uoi.fit(data.x, data.y);

  const std::string path =
      (std::filesystem::temp_directory_path() / "uoi_ckpt_resume.txt")
          .string();
  std::filesystem::remove(path);

  // Simulate an interruption: run with only 3 bootstraps' worth of budget
  // by checkpointing a partial configuration... the honest way: run the
  // full checkpointed fit once (writes the file), truncate the recorded
  // progress back to 3, then resume — the resumed result must equal the
  // uninterrupted reference bit for bit (deterministic resampling).
  (void)uoi.fit_with_checkpoint(data.x, data.y, path);
  {
    std::ifstream f(path);
    std::stringstream buffer;
    buffer << f.rdbuf();
    auto checkpoint =
        uoi::core::SelectionCheckpoint::from_text(buffer.str());
    // Recompute the counts as they stood after 3 bootstraps: subtract is
    // impossible without re-running, so instead truncate by re-running
    // fit_with_checkpoint from scratch with a 3-bootstrap variant... keep
    // it simple: zero the counts and set progress to 0 — resume must then
    // redo everything and still match.
    checkpoint.completed_bootstraps = 0;
    checkpoint.counts.fill(0.0);
    uoi::core::save_checkpoint(path, checkpoint);
  }
  const auto resumed = uoi.fit_with_checkpoint(data.x, data.y, path);
  EXPECT_EQ(uoi::linalg::max_abs_diff(resumed.beta, reference.beta), 0.0);
  for (std::size_t j = 0; j < reference.candidate_supports.size(); ++j) {
    EXPECT_EQ(resumed.candidate_supports[j], reference.candidate_supports[j]);
  }
  std::filesystem::remove(path);
}

TEST(Checkpoint, PartialResumeProducesSameResult) {
  // Directly exercise mid-run resume: capture the checkpoint after the
  // full run, rewind `completed_bootstraps` to 5 while keeping the first
  // 5 bootstraps' counts — rebuilt by a 5-bootstrap fit with the same
  // seed — and resume.
  uoi::data::RegressionSpec spec;
  spec.n_samples = 100;
  spec.n_features = 12;
  spec.support_size = 3;
  spec.seed = 7;
  const auto data = uoi::data::make_regression(spec);

  uoi::core::UoiLassoOptions full_options;
  full_options.n_selection_bootstraps = 8;
  full_options.n_estimation_bootstraps = 3;
  full_options.n_lambdas = 5;
  const uoi::core::UoiLasso full(full_options);
  const auto reference = full.fit(data.x, data.y);

  // A 5-bootstrap run writes a checkpoint whose counts equal the first 5
  // bootstraps of the 8-bootstrap run (same seed, same per-k streams) —
  // but its fingerprint encodes B1=5, so patch both fields.
  auto partial_options = full_options;
  partial_options.n_selection_bootstraps = 5;
  const std::string path =
      (std::filesystem::temp_directory_path() / "uoi_ckpt_partial.txt")
          .string();
  std::filesystem::remove(path);
  (void)uoi::core::UoiLasso(partial_options)
      .fit_with_checkpoint(data.x, data.y, path);
  {
    std::ifstream f(path);
    std::stringstream buffer;
    buffer << f.rdbuf();
    auto checkpoint =
        uoi::core::SelectionCheckpoint::from_text(buffer.str());
    checkpoint.fingerprint = full.selection_fingerprint(
        data.x.rows(), data.x.cols(), checkpoint.lambdas);
    uoi::core::save_checkpoint(path, checkpoint);
  }
  const auto resumed = full.fit_with_checkpoint(data.x, data.y, path);
  EXPECT_EQ(uoi::linalg::max_abs_diff(resumed.beta, reference.beta), 0.0);
  std::filesystem::remove(path);
}

}  // namespace checkpoint_tests

namespace predict_tests {

using uoi::linalg::Matrix;
using uoi::linalg::Vector;

TEST(Predict, LinearWithAndWithoutIntercept) {
  Matrix x{{1.0, 2.0}, {3.0, 4.0}};
  const Vector beta{0.5, -1.0};
  const Vector no_icpt = uoi::core::predict(x, beta);
  EXPECT_DOUBLE_EQ(no_icpt[0], 0.5 - 2.0);
  EXPECT_DOUBLE_EQ(no_icpt[1], 1.5 - 4.0);
  const Vector with_icpt = uoi::core::predict(x, beta, 10.0);
  EXPECT_DOUBLE_EQ(with_icpt[0], 10.0 + 0.5 - 2.0);
}

TEST(Predict, LassoFitEndToEnd) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 200;
  spec.n_features = 12;
  spec.support_size = 3;
  spec.noise_stddev = 0.2;
  spec.seed = 81;
  const auto data = uoi::data::make_regression(spec);
  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 8;
  options.n_estimation_bootstraps = 4;
  options.n_lambdas = 8;
  const auto fit = uoi::core::UoiLasso(options).fit(data.x, data.y);
  const Vector preds = uoi::core::predict(fit, data.x);
  // In-sample R^2 near 1 for this low-noise problem.
  double ss_res = 0.0, ss_tot = 0.0, mean = 0.0;
  for (const double v : data.y) mean += v;
  mean /= static_cast<double>(data.y.size());
  for (std::size_t i = 0; i < data.y.size(); ++i) {
    ss_res += (preds[i] - data.y[i]) * (preds[i] - data.y[i]);
    ss_tot += (data.y[i] - mean) * (data.y[i] - mean);
  }
  EXPECT_GT(1.0 - ss_res / ss_tot, 0.95);
}

TEST(Predict, LogisticProbabilitiesAndLabels) {
  uoi::data::ClassificationSpec spec;
  spec.n_samples = 300;
  spec.n_features = 8;
  spec.support_size = 2;
  spec.seed = 83;
  const auto data = uoi::data::make_classification(spec);
  uoi::core::UoiLogisticOptions options;
  options.n_selection_bootstraps = 6;
  options.n_estimation_bootstraps = 4;
  options.n_lambdas = 6;
  const auto fit = uoi::core::UoiLogistic(options).fit(data.x, data.y);
  const Vector probs = uoi::core::predict_proba(fit, data.x);
  for (const double p : probs) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  const Vector labels = uoi::core::predict_labels(fit, data.x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_TRUE(labels[i] == 0.0 || labels[i] == 1.0);
    if (labels[i] == data.y[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) /
                static_cast<double>(labels.size()),
            0.75);
}

}  // namespace predict_tests

namespace rng_stream_tests {

TEST(RngStreams, TaskStreamsAreStatisticallyIndependent) {
  // Correlation between adjacent task streams must be negligible: the UoI
  // guarantees rest on bootstrap independence.
  constexpr int kDraws = 20000;
  auto a = uoi::support::Xoshiro256::for_task(42, 0);
  auto b = uoi::support::Xoshiro256::for_task(42, 1);
  double sum_ab = 0.0, sum_a = 0.0, sum_b = 0.0, sum_a2 = 0.0, sum_b2 = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = a.normal();
    const double y = b.normal();
    sum_ab += x * y;
    sum_a += x;
    sum_b += y;
    sum_a2 += x * x;
    sum_b2 += y * y;
  }
  const double n = kDraws;
  const double cov = sum_ab / n - (sum_a / n) * (sum_b / n);
  const double var_a = sum_a2 / n - (sum_a / n) * (sum_a / n);
  const double var_b = sum_b2 / n - (sum_b / n) * (sum_b / n);
  const double corr = cov / std::sqrt(var_a * var_b);
  EXPECT_LT(std::abs(corr), 0.03);
}

TEST(RngStreams, UniformityChiSquare) {
  // 16-bin chi-square on uniform(): statistic ~ chi2(15); 99.9th
  // percentile ~ 37.7.
  auto rng = uoi::support::Xoshiro256::for_task(7, 99);
  constexpr int kBins = 16;
  constexpr int kDraws = 64000;
  int histogram[kBins] = {0};
  for (int i = 0; i < kDraws; ++i) {
    ++histogram[static_cast<int>(rng.uniform() * kBins)];
  }
  const double expected = static_cast<double>(kDraws) / kBins;
  double chi2 = 0.0;
  for (const int count : histogram) {
    const double d = count - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 37.7);
}

}  // namespace rng_stream_tests
