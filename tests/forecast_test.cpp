// Tests for VAR forecasting, the unconditional mean, and the parallel
// series loader.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "data/synthetic_var.hpp"
#include "io/h5lite.hpp"
#include "linalg/blas.hpp"
#include "simcluster/cluster.hpp"
#include "var/var_distributed.hpp"
#include "var/var_model.hpp"

namespace {

using uoi::linalg::Matrix;
using uoi::linalg::Vector;
using uoi::var::VarModel;

TEST(Forecast, OneStepMatchesManualRecursion) {
  Matrix a{{0.5, 0.2}, {-0.1, 0.3}};
  const VarModel model({a}, Vector{1.0, -2.0});
  Matrix history{{0.4, 0.6}, {1.0, 2.0}};
  const Matrix fc = uoi::var::forecast(model, history, 1);
  ASSERT_EQ(fc.rows(), 1u);
  EXPECT_NEAR(fc(0, 0), 1.0 + 0.5 * 1.0 + 0.2 * 2.0, 1e-14);
  EXPECT_NEAR(fc(0, 1), -2.0 - 0.1 * 1.0 + 0.3 * 2.0, 1e-14);
}

TEST(Forecast, Var2UsesBothLags) {
  Matrix a1{{0.4}};
  Matrix a2{{0.3}};
  const VarModel model({a1, a2});
  Matrix history{{2.0}, {5.0}};  // x_{t-1} = 2 (older), x_t = 5 (newest)
  const Matrix fc = uoi::var::forecast(model, history, 2);
  EXPECT_NEAR(fc(0, 0), 0.4 * 5.0 + 0.3 * 2.0, 1e-14);  // 2.6
  EXPECT_NEAR(fc(1, 0), 0.4 * 2.6 + 0.3 * 5.0, 1e-14);
}

TEST(Forecast, ConvergesToUnconditionalMean) {
  Matrix a{{0.6, 0.1}, {0.0, 0.5}};
  const VarModel model({a}, Vector{1.0, 1.0});
  const Vector mean = uoi::var::unconditional_mean(model);
  // Verify (I - A) mean == mu.
  EXPECT_NEAR((1.0 - 0.6) * mean[0] - 0.1 * mean[1], 1.0, 1e-10);
  EXPECT_NEAR((1.0 - 0.5) * mean[1], 1.0, 1e-10);

  Matrix history{{10.0, -10.0}};
  const Matrix fc = uoi::var::forecast(model, history, 200);
  EXPECT_NEAR(fc(199, 0), mean[0], 1e-6);
  EXPECT_NEAR(fc(199, 1), mean[1], 1e-6);
}

TEST(Forecast, UnstableModelMeanThrows) {
  Matrix a{{1.2}};
  const VarModel model({a});
  EXPECT_THROW((void)uoi::var::unconditional_mean(model),
               uoi::support::InvalidArgument);
}

TEST(Forecast, RejectsShortHistory) {
  Matrix a1{{0.4}};
  Matrix a2{{0.3}};
  const VarModel model({a1, a2});
  Matrix history{{1.0}};
  EXPECT_THROW((void)uoi::var::forecast(model, history, 1),
               uoi::support::InvalidArgument);
}

TEST(Forecast, BeatsNaiveOnSimulatedData) {
  // One-step forecasts from the true model must beat the "persistence"
  // forecast (x_{t+1} = x_t) on mean squared error.
  uoi::data::VarSpec spec;
  spec.n_nodes = 6;
  spec.seed = 31;
  const auto model = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 400;
  sim.seed = 32;
  const Matrix series = uoi::var::simulate(model, sim);

  double model_sse = 0.0, naive_sse = 0.0;
  for (std::size_t t = 50; t + 1 < series.rows(); ++t) {
    const auto history = series.row_block(0, t + 1);
    const Matrix fc = uoi::var::forecast(model, history, 1);
    for (std::size_t c = 0; c < series.cols(); ++c) {
      const double err = fc(0, c) - series(t + 1, c);
      model_sse += err * err;
      const double naive = series(t, c) - series(t + 1, c);
      naive_sse += naive * naive;
    }
  }
  EXPECT_LT(model_sse, naive_sse);
}

class LoadSeriesParam : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(LoadSeriesParam, ReplicatesTheFileOnEveryRank) {
  const auto [ranks, readers] = GetParam();
  uoi::data::VarSpec spec;
  spec.n_nodes = 5;
  spec.seed = 33;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 64;
  sim.seed = 34;
  const Matrix series = uoi::var::simulate(truth, sim);

  const std::string base =
      (std::filesystem::temp_directory_path() /
       ("uoi_series_" + std::to_string(ranks) + "_" +
        std::to_string(readers)))
          .string();
  uoi::io::write_dataset(base, series, 16, 2);

  uoi::sim::Cluster::run(ranks, [&](uoi::sim::Comm& comm) {
    const Matrix loaded =
        uoi::var::load_series_distributed(comm, base, readers);
    EXPECT_EQ(uoi::linalg::max_abs_diff(loaded, series), 0.0)
        << "rank " << comm.rank();
  });
  for (std::uint64_t k = 0; k < 2; ++k) {
    std::error_code ec;
    std::filesystem::remove(uoi::io::stripe_path(base, k), ec);
  }
}

INSTANTIATE_TEST_SUITE_P(Layouts, LoadSeriesParam,
                         ::testing::Values(std::pair<int, int>{1, 1},
                                           std::pair<int, int>{4, 1},
                                           std::pair<int, int>{4, 2},
                                           std::pair<int, int>{6, 6}));

}  // namespace
