// Tests for the Poisson solvers and UoI_Poisson.

#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.hpp"
#include "core/uoi_poisson.hpp"
#include "data/synthetic_regression.hpp"
#include "linalg/blas.hpp"
#include "solvers/poisson.hpp"

namespace {

using uoi::linalg::Matrix;
using uoi::linalg::Vector;

TEST(PoissonLambdaMax, ZeroesTheSolution) {
  const auto data = uoi::data::make_poisson_counts({});
  const double hi = uoi::solvers::poisson_lambda_max(data.x, data.y);
  const auto fit = uoi::solvers::poisson_lasso(data.x, data.y, hi * 1.05);
  for (const double b : fit.beta) EXPECT_NEAR(b, 0.0, 1e-5);
  // The intercept-only model matches the empirical mean.
  double y_bar = 0.0;
  for (const double v : data.y) y_bar += v;
  y_bar /= static_cast<double>(data.y.size());
  EXPECT_NEAR(std::exp(fit.intercept), y_bar, 0.15 * y_bar);
}

TEST(PoissonLasso, SubgradientOptimality) {
  uoi::data::PoissonSpec spec;
  spec.n_samples = 250;
  spec.n_features = 10;
  spec.support_size = 3;
  spec.seed = 5;
  const auto data = uoi::data::make_poisson_counts(spec);
  const double lambda =
      0.05 * uoi::solvers::poisson_lambda_max(data.x, data.y);
  uoi::solvers::PoissonOptions options;
  options.tolerance = 1e-10;
  const auto fit =
      uoi::solvers::poisson_lasso(data.x, data.y, lambda, options);
  EXPECT_TRUE(fit.converged);

  // KKT: grad = X'(mu - y); |grad_i| <= lambda off-support, sign-matched
  // on it; intercept gradient ~ 0.
  Vector residual(data.x.rows());
  double grad_intercept = 0.0;
  for (std::size_t r = 0; r < data.x.rows(); ++r) {
    const double eta =
        uoi::linalg::dot(data.x.row(r), fit.beta) + fit.intercept;
    residual[r] = std::exp(eta) - data.y[r];
    grad_intercept += residual[r];
  }
  Vector grad(data.x.cols(), 0.0);
  uoi::linalg::gemv_transposed(1.0, data.x, residual, 0.0, grad);
  const double slack = 1e-3 * lambda + 1e-4;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_LE(std::abs(grad[i]), lambda + slack) << "coordinate " << i;
    if (std::abs(fit.beta[i]) > 1e-6) {
      EXPECT_NEAR(grad[i], fit.beta[i] > 0 ? -lambda : lambda, slack);
    }
  }
  EXPECT_NEAR(grad_intercept, 0.0, 1e-3);
}

TEST(PoissonIrls, RecoversTrueParametersOnLargeSample) {
  uoi::data::PoissonSpec spec;
  spec.n_samples = 4000;
  spec.n_features = 6;
  spec.support_size = 3;
  spec.seed = 7;
  const auto data = uoi::data::make_poisson_counts(spec);
  std::vector<std::size_t> all{0, 1, 2, 3, 4, 5};
  const auto fit = uoi::solvers::poisson_irls_on_support(data.x, data.y, all);
  EXPECT_TRUE(fit.converged);
  EXPECT_LT(uoi::linalg::max_abs_diff(fit.beta, data.beta_true), 0.06);
  EXPECT_NEAR(fit.intercept, data.intercept_true, 0.05);
}

TEST(PoissonDeviance, SaturatedFitIsZeroAndWorseFitsArePositive) {
  uoi::data::PoissonSpec spec;
  spec.n_samples = 200;
  spec.seed = 9;
  const auto data = uoi::data::make_poisson_counts(spec);
  const Vector zero(spec.n_features, 0.0);
  const double bad =
      uoi::solvers::poisson_deviance(data.x, data.y, zero, 0.0);
  const double better = uoi::solvers::poisson_deviance(
      data.x, data.y, data.beta_true, data.intercept_true);
  EXPECT_GT(bad, better);
  EXPECT_GT(better, 0.0);
}

TEST(PoissonDeviance, RejectsNegativeCounts) {
  Matrix x{{1.0}, {1.0}};
  const Vector y{-1.0, 2.0};
  EXPECT_THROW((void)uoi::solvers::poisson_lambda_max(x, y),
               uoi::support::InvalidArgument);
}

TEST(UoiPoisson, RecoversSparseSupport) {
  uoi::data::PoissonSpec spec;
  spec.n_samples = 600;
  spec.n_features = 15;
  spec.support_size = 3;
  spec.seed = 11;
  const auto data = uoi::data::make_poisson_counts(spec);

  uoi::core::UoiPoissonOptions options;
  options.n_selection_bootstraps = 8;
  options.n_estimation_bootstraps = 5;
  options.n_lambdas = 8;
  const auto fit = uoi::core::UoiPoisson(options).fit(data.x, data.y);

  const auto truth = uoi::core::SupportSet::from_beta(data.beta_true);
  const auto support = uoi::core::SupportSet::from_beta(fit.beta, 0.05);
  const auto acc =
      uoi::core::selection_accuracy(support, truth, spec.n_features);
  EXPECT_EQ(acc.false_negatives, 0u) << "missed true features";
  EXPECT_LE(acc.false_positives, 2u) << "spurious features";
  // Sign recovery and intercept.
  for (std::size_t i = 0; i < spec.n_features; ++i) {
    if (data.beta_true[i] != 0.0) {
      EXPECT_GT(fit.beta[i] * data.beta_true[i], 0.0) << "sign flip at " << i;
    }
  }
  EXPECT_NEAR(fit.intercept, data.intercept_true, 0.2);
}

TEST(UoiPoisson, RejectsNegativeResponses) {
  Matrix x{{1.0}, {2.0}};
  const Vector y{3.0, -1.0};
  EXPECT_THROW((void)uoi::core::UoiPoisson().fit(x, y),
               uoi::support::InvalidArgument);
}

}  // namespace
