// Tests for the Standardizer and the distributed logistic solver.

#include <gtest/gtest.h>

#include <cmath>

#include "core/standardize.hpp"
#include "data/synthetic_regression.hpp"
#include "linalg/blas.hpp"
#include "simcluster/cluster.hpp"
#include "core/metrics.hpp"
#include "core/uoi_logistic_distributed.hpp"
#include "solvers/distributed_logistic.hpp"
#include "solvers/logistic.hpp"
#include "support/rng.hpp"

namespace {

using uoi::core::Standardizer;
using uoi::linalg::Matrix;
using uoi::linalg::Vector;

TEST(Standardizer, TransformedColumnsAreZScored) {
  uoi::support::Xoshiro256 rng(3);
  Matrix x(200, 4);
  for (std::size_t r = 0; r < 200; ++r) {
    x(r, 0) = 100.0 + 5.0 * rng.normal();
    x(r, 1) = -2.0 + 0.01 * rng.normal();
    x(r, 2) = rng.normal();
    x(r, 3) = 7.0;  // constant column
  }
  const auto scaler = Standardizer::fit(x);
  const Matrix z = scaler.transform(x);
  for (std::size_t c = 0; c < 4; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::size_t r = 0; r < 200; ++r) mean += z(r, c);
    mean /= 200.0;
    for (std::size_t r = 0; r < 200; ++r) {
      var += (z(r, c) - mean) * (z(r, c) - mean);
    }
    var /= 200.0;
    EXPECT_NEAR(mean, 0.0, 1e-10) << "column " << c;
    if (c < 3) {
      EXPECT_NEAR(var, 1.0, 1e-10) << "column " << c;
    } else {
      EXPECT_NEAR(var, 0.0, 1e-12);  // constant column maps to zeros
    }
  }
}

TEST(Standardizer, CoefficientBackTransformPreservesPredictions) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 80;
  spec.n_features = 6;
  spec.support_size = 3;
  spec.seed = 5;
  auto data = uoi::data::make_regression(spec);
  // Give the columns wildly different scales.
  for (std::size_t r = 0; r < data.x.rows(); ++r) {
    data.x(r, 0) *= 1000.0;
    data.x(r, 1) *= 0.001;
  }
  const auto scaler = Standardizer::fit(data.x);
  const Matrix z = scaler.transform(data.x);

  // Any (beta_std, b_std) pair must predict identically after mapping.
  uoi::support::Xoshiro256 rng(6);
  Vector beta_std(6);
  for (auto& v : beta_std) v = rng.normal();
  const double b_std = rng.normal();
  const Vector beta = scaler.coefficients_to_original(beta_std);
  const double b = scaler.intercept_to_original(beta_std, b_std);

  for (std::size_t r = 0; r < data.x.rows(); ++r) {
    const double pred_std =
        uoi::linalg::dot(z.row(r), beta_std) + b_std;
    const double pred_orig =
        uoi::linalg::dot(data.x.row(r), beta) + b;
    EXPECT_NEAR(pred_std, pred_orig, 1e-8);
  }
}

TEST(Standardizer, WidthMismatchThrows) {
  Matrix x(10, 3, 1.0);
  x(0, 0) = 2.0;  // avoid an all-constant fit edge
  const auto scaler = Standardizer::fit(x);
  Matrix wrong(5, 2);
  EXPECT_THROW((void)scaler.transform(wrong),
               uoi::support::DimensionMismatch);
}

// ---- distributed logistic ----

class DistLogisticParam : public ::testing::TestWithParam<int> {};

TEST_P(DistLogisticParam, MatchesSerialFistaAcrossRankCounts) {
  const int ranks = GetParam();
  uoi::data::ClassificationSpec spec;
  spec.n_samples = 240;
  spec.n_features = 10;
  spec.support_size = 3;
  spec.seed = 7;
  const auto data = uoi::data::make_classification(spec);
  const double lambda =
      0.05 * uoi::solvers::logistic_lambda_max(data.x, data.y);

  uoi::solvers::LogisticOptions serial_options;
  serial_options.tolerance = 1e-10;
  serial_options.max_iterations = 100000;
  const auto serial =
      uoi::solvers::logistic_lasso(data.x, data.y, lambda, serial_options);

  uoi::solvers::AdmmOptions options;
  options.eps_abs = 1e-8;
  options.eps_rel = 1e-6;
  options.max_iterations = 5000;
  uoi::sim::Cluster::run(ranks, [&](uoi::sim::Comm& comm) {
    const std::size_t n = data.x.rows();
    const std::size_t begin = n * comm.rank() / comm.size();
    const std::size_t end = n * (comm.rank() + 1) / comm.size();
    const auto fit = uoi::solvers::distributed_logistic_lasso(
        comm, data.x.row_block(begin, end - begin),
        std::span<const double>(data.y).subspan(begin, end - begin), lambda,
        options);
    EXPECT_TRUE(fit.converged);
    EXPECT_LT(uoi::linalg::max_abs_diff(fit.beta, serial.beta), 5e-3);
    EXPECT_NEAR(fit.intercept, serial.intercept, 5e-3);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistLogisticParam,
                         ::testing::Values(1, 2, 4, 6));

TEST(DistLogistic, InterceptIsNotPenalized) {
  // A strong base rate with no informative features: lambda should zero
  // the coefficients but leave the intercept free to match the base rate.
  uoi::data::ClassificationSpec spec;
  spec.n_samples = 400;
  spec.n_features = 5;
  spec.support_size = 0;
  spec.intercept = 1.5;
  spec.seed = 9;
  const auto data = uoi::data::make_classification(spec);
  const double lambda =
      2.0 * uoi::solvers::logistic_lambda_max(data.x, data.y);
  uoi::sim::Cluster::run(2, [&](uoi::sim::Comm& comm) {
    const std::size_t n = data.x.rows();
    const std::size_t begin = n * comm.rank() / comm.size();
    const std::size_t end = n * (comm.rank() + 1) / comm.size();
    const auto fit = uoi::solvers::distributed_logistic_lasso(
        comm, data.x.row_block(begin, end - begin),
        std::span<const double>(data.y).subspan(begin, end - begin), lambda);
    for (const double b : fit.beta) EXPECT_NEAR(b, 0.0, 1e-6);
    double rate = 0.0;
    for (const double v : data.y) rate += v;
    rate /= static_cast<double>(data.y.size());
    EXPECT_NEAR(uoi::solvers::sigmoid(fit.intercept), rate, 0.02);
  });
}

}  // namespace

namespace uoi_logistic_distributed_tests {

using uoi::linalg::Matrix;
using uoi::linalg::Vector;

class UoiLogisticDistParam
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(UoiLogisticDistParam, AgreesWithSerialDriver) {
  const auto [ranks, pb, pl] = GetParam();
  uoi::data::ClassificationSpec spec;
  spec.n_samples = 300;
  spec.n_features = 12;
  spec.support_size = 3;
  spec.seed = 21;
  const auto data = uoi::data::make_classification(spec);

  uoi::core::UoiLogisticOptions options;
  options.n_selection_bootstraps = 6;
  options.n_estimation_bootstraps = 4;
  options.n_lambdas = 6;
  options.seed = 31;
  const auto serial = uoi::core::UoiLogistic(options).fit(data.x, data.y);

  uoi::sim::Cluster::run(ranks, [&](uoi::sim::Comm& comm) {
    const auto distributed = uoi::core::uoi_logistic_distributed(
        comm, data.x, data.y, options, {pb, pl});
    // The selection solvers differ (FISTA serial vs consensus ADMM
    // distributed), so assert statistical agreement rather than identical
    // iterates: same strong features, close coefficients.
    const auto serial_support =
        uoi::core::SupportSet::from_beta(serial.beta, 0.15);
    const auto dist_support =
        uoi::core::SupportSet::from_beta(distributed.model.beta, 0.15);
    EXPECT_EQ(serial_support, dist_support);
    EXPECT_LT(uoi::linalg::max_abs_diff(distributed.model.beta, serial.beta),
              0.3);
    EXPECT_NEAR(distributed.model.intercept, serial.intercept, 0.2);
    // Both recover the truth's strong features.
    const auto truth = uoi::core::SupportSet::from_beta(data.beta_true);
    const auto acc = uoi::core::selection_accuracy(dist_support, truth,
                                                   spec.n_features);
    EXPECT_EQ(acc.false_negatives, 0u);
  });
}

INSTANTIATE_TEST_SUITE_P(Layouts, UoiLogisticDistParam,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(2, 1, 1),
                                           std::make_tuple(4, 2, 1),
                                           std::make_tuple(4, 1, 2),
                                           std::make_tuple(6, 3, 2)));

}  // namespace uoi_logistic_distributed_tests
