// Tests for point-to-point messaging and the ring allreduce.

#include <gtest/gtest.h>

#include <numeric>

#include "simcluster/cluster.hpp"
#include "simcluster/comm.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace {

using uoi::sim::Cluster;
using uoi::sim::Comm;
using uoi::sim::ReduceOp;

TEST(PointToPoint, SimpleExchange) {
  Cluster::run(2, [&](Comm& comm) {
    std::vector<double> mine{static_cast<double>(comm.rank()) + 1.0, 2.0};
    std::vector<double> theirs(2, -1.0);
    comm.sendrecv(1 - comm.rank(), mine, 1 - comm.rank(), theirs);
    EXPECT_DOUBLE_EQ(theirs[0], static_cast<double>(1 - comm.rank()) + 1.0);
    EXPECT_DOUBLE_EQ(theirs[1], 2.0);
  });
}

TEST(PointToPoint, TagsKeepMessagesApart) {
  Cluster::run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> a{1.0};
      const std::vector<double> b{2.0};
      comm.send(1, a, /*tag=*/7);
      comm.send(1, b, /*tag=*/8);
    } else {
      std::vector<double> out(1);
      // Receive in the opposite order of sending: tags must select.
      comm.recv(0, out, /*tag=*/8);
      EXPECT_DOUBLE_EQ(out[0], 2.0);
      comm.recv(0, out, /*tag=*/7);
      EXPECT_DOUBLE_EQ(out[0], 1.0);
    }
  });
}

TEST(PointToPoint, FifoPerTag) {
  Cluster::run(2, [&](Comm& comm) {
    constexpr int kMessages = 32;
    if (comm.rank() == 0) {
      for (int i = 0; i < kMessages; ++i) {
        const std::vector<double> v{static_cast<double>(i)};
        comm.send(1, v, /*tag=*/3);
      }
    } else {
      std::vector<double> out(1);
      for (int i = 0; i < kMessages; ++i) {
        comm.recv(0, out, /*tag=*/3);
        EXPECT_DOUBLE_EQ(out[0], static_cast<double>(i));
      }
    }
  });
}

TEST(PointToPoint, RingPattern) {
  // Every rank passes a token around the full ring.
  const int p = 5;
  Cluster::run(p, [&](Comm& comm) {
    std::vector<double> token{static_cast<double>(comm.rank())};
    for (int step = 0; step < p; ++step) {
      std::vector<double> incoming(1);
      comm.sendrecv((comm.rank() + 1) % p, token,
                    (comm.rank() - 1 + p) % p, incoming, step);
      token = incoming;
    }
    // After p hops the token returns home.
    EXPECT_DOUBLE_EQ(token[0], static_cast<double>(comm.rank()));
  });
}

TEST(PointToPoint, SizeMismatchThrows) {
  Cluster::run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> v{1.0, 2.0, 3.0};
      comm.send(1, v);
    } else {
      std::vector<double> out(2);  // wrong size
      bool threw = false;
      try {
        comm.recv(0, out);
      } catch (const uoi::support::DimensionMismatch&) {
        threw = true;
      }
      EXPECT_TRUE(threw);
    }
  });
}

TEST(PointToPoint, StatsTracked) {
  auto stats = Cluster::run_collect_stats(2, [&](Comm& comm) {
    std::vector<double> v(4, 1.0);
    comm.sendrecv(1 - comm.rank(), v, 1 - comm.rank(), v);
  });
  for (const auto& s : stats) {
    EXPECT_EQ(s.of(uoi::sim::CommCategory::kPointToPoint).calls, 2u);
    EXPECT_EQ(s.of(uoi::sim::CommCategory::kPointToPoint).bytes,
              2u * 4u * sizeof(double));
  }
}

class RingAllreduceParam
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(RingAllreduceParam, MatchesStagedAllreduce) {
  const auto [ranks, length] = GetParam();
  Cluster::run(ranks, [&](Comm& comm) {
    uoi::support::Xoshiro256 rng(static_cast<std::uint64_t>(comm.rank()) + 7);
    std::vector<double> staged(length), ring(length);
    for (std::size_t i = 0; i < length; ++i) {
      staged[i] = rng.normal();
      ring[i] = staged[i];
    }
    comm.allreduce(staged, ReduceOp::kSum);
    comm.allreduce_ring(ring, ReduceOp::kSum);
    for (std::size_t i = 0; i < length; ++i) {
      EXPECT_NEAR(ring[i], staged[i], 1e-11 * (std::abs(staged[i]) + 1.0));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RingAllreduceParam,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(std::size_t{1}, std::size_t{7},
                                         std::size_t{64},
                                         std::size_t{1000})));

TEST(RingAllreduce, MinAndMaxOps) {
  Cluster::run(4, [&](Comm& comm) {
    std::vector<double> lo{static_cast<double>(comm.rank()), 5.0};
    comm.allreduce_ring(lo, ReduceOp::kMin);
    EXPECT_DOUBLE_EQ(lo[0], 0.0);
    EXPECT_DOUBLE_EQ(lo[1], 5.0);
    std::vector<double> hi{static_cast<double>(comm.rank())};
    comm.allreduce_ring(hi, ReduceOp::kMax);
    EXPECT_DOUBLE_EQ(hi[0], 3.0);
  });
}

TEST(RingAllreduce, ShortVectorWithManyRanks) {
  // length < ranks: some chunks are empty; must still be correct.
  Cluster::run(8, [&](Comm& comm) {
    std::vector<double> v{1.0, 2.0};
    comm.allreduce_ring(v, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(v[0], 8.0);
    EXPECT_DOUBLE_EQ(v[1], 16.0);
  });
}

TEST(RingAllreduce, BackToBackCallsDoNotCrossTalk) {
  Cluster::run(4, [&](Comm& comm) {
    for (int round = 0; round < 10; ++round) {
      std::vector<double> v(17, static_cast<double>(round + comm.rank()));
      comm.allreduce_ring(v, ReduceOp::kSum);
      const double expect = 4.0 * round + (0 + 1 + 2 + 3);
      for (const double x : v) EXPECT_DOUBLE_EQ(x, expect);
    }
  });
}

}  // namespace

namespace recursive_doubling_tests {

using uoi::sim::Cluster;
using uoi::sim::Comm;
using uoi::sim::ReduceOp;

class RecursiveDoublingParam
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(RecursiveDoublingParam, MatchesStagedAllreduce) {
  const auto [ranks, length] = GetParam();
  Cluster::run(ranks, [&](Comm& comm) {
    uoi::support::Xoshiro256 rng(static_cast<std::uint64_t>(comm.rank()) + 3);
    std::vector<double> staged(length), rd(length);
    for (std::size_t i = 0; i < length; ++i) {
      staged[i] = rng.normal();
      rd[i] = staged[i];
    }
    comm.allreduce(staged, ReduceOp::kSum);
    comm.allreduce_recursive_doubling(rd, ReduceOp::kSum);
    for (std::size_t i = 0; i < length; ++i) {
      EXPECT_NEAR(rd[i], staged[i], 1e-11 * (std::abs(staged[i]) + 1.0));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RecursiveDoublingParam,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 7, 8),
                       ::testing::Values(std::size_t{1}, std::size_t{33},
                                         std::size_t{500})));

TEST(RecursiveDoubling, IdenticalResultOnEveryRank) {
  Cluster::run(6, [&](Comm& comm) {
    std::vector<double> v{static_cast<double>(comm.rank()) * 1.7, -2.0};
    comm.allreduce_recursive_doubling(v, ReduceOp::kMax);
    EXPECT_DOUBLE_EQ(v[0], 5.0 * 1.7);
    EXPECT_DOUBLE_EQ(v[1], -2.0);
  });
}

TEST(RecursiveDoubling, BackToBackNoCrossTalk) {
  Cluster::run(5, [&](Comm& comm) {
    for (int round = 0; round < 8; ++round) {
      std::vector<double> v(11, 1.0 + round);
      comm.allreduce_recursive_doubling(v, ReduceOp::kSum);
      for (const double x : v) EXPECT_DOUBLE_EQ(x, 5.0 * (1.0 + round));
    }
  });
}

}  // namespace recursive_doubling_tests

namespace allgatherv_tests {

using uoi::sim::Cluster;
using uoi::sim::Comm;

TEST(AllgatherVariable, ConcatenatesInRankOrder) {
  Cluster::run(4, [&](Comm& comm) {
    // Rank r contributes r elements (rank 0 contributes none).
    std::vector<double> mine(static_cast<std::size_t>(comm.rank()),
                             static_cast<double>(comm.rank()));
    std::vector<std::size_t> counts;
    const auto all = comm.allgather_variable(mine, &counts);
    ASSERT_EQ(counts, (std::vector<std::size_t>{0, 1, 2, 3}));
    ASSERT_EQ(all.size(), 6u);
    EXPECT_DOUBLE_EQ(all[0], 1.0);
    EXPECT_DOUBLE_EQ(all[1], 2.0);
    EXPECT_DOUBLE_EQ(all[2], 2.0);
    EXPECT_DOUBLE_EQ(all[5], 3.0);
  });
}

TEST(AllgatherVariable, WithoutCountsPointer) {
  Cluster::run(2, [&](Comm& comm) {
    const std::vector<double> mine{static_cast<double>(comm.rank()) + 0.5};
    const auto all = comm.allgather_variable(mine);
    ASSERT_EQ(all.size(), 2u);
    EXPECT_DOUBLE_EQ(all[0], 0.5);
    EXPECT_DOUBLE_EQ(all[1], 1.5);
  });
}

}  // namespace allgatherv_tests
