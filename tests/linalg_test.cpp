// Unit + property tests for uoi::linalg: dense kernels against naive
// references, Cholesky round-trips, sparse CSR semantics, and the
// Kronecker/vectorization identities the VAR rearrangement relies on.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "linalg/blas.hpp"
#include "support/error.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/kron.hpp"
#include "linalg/matrix.hpp"
#include "linalg/simd.hpp"
#include "linalg/sparse.hpp"
#include "support/rng.hpp"

namespace {

using uoi::linalg::ConstMatrixView;
using uoi::linalg::Matrix;
using uoi::linalg::SparseMatrix;
using uoi::linalg::Vector;

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  uoi::support::Xoshiro256 rng(seed);
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal();
  }
  return m;
}

Vector random_vector(std::size_t n, std::uint64_t seed) {
  uoi::support::Xoshiro256 rng(seed);
  Vector v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

Matrix naive_gemm(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      c(i, j) = acc;
    }
  }
  return c;
}

TEST(Matrix, InitializerListAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), uoi::support::DimensionMismatch);
}

TEST(Matrix, GatherRowsAndCols) {
  Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const std::vector<std::size_t> rows{2, 0};
  const Matrix gr = m.gather_rows(rows);
  EXPECT_DOUBLE_EQ(gr(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(gr(1, 2), 3.0);
  const std::vector<std::size_t> cols{1};
  const Matrix gc = m.gather_cols(cols);
  EXPECT_EQ(gc.cols(), 1u);
  EXPECT_DOUBLE_EQ(gc(2, 0), 8.0);
}

TEST(Matrix, TransposedRoundTrip) {
  const Matrix m = random_matrix(5, 3, 1);
  EXPECT_EQ(uoi::linalg::max_abs_diff(m.transposed().transposed(), m), 0.0);
}

TEST(Matrix, RowBlockViewsShareData) {
  const Matrix m = random_matrix(6, 4, 2);
  const ConstMatrixView block = m.row_block(2, 3);
  EXPECT_EQ(block.rows(), 3u);
  EXPECT_DOUBLE_EQ(block(0, 1), m(2, 1));
  const Matrix copy = Matrix::from_view(block);
  EXPECT_DOUBLE_EQ(copy(2, 3), m(4, 3));
}

TEST(Blas, DotAxpyNrm) {
  const Vector x{1.0, 2.0, 3.0};
  Vector y{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(uoi::linalg::dot(x, y), 32.0);
  uoi::linalg::axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  EXPECT_DOUBLE_EQ(uoi::linalg::nrm1(x), 6.0);
  EXPECT_DOUBLE_EQ(uoi::linalg::nrm2_squared(x), 14.0);
  EXPECT_NEAR(uoi::linalg::nrm2(x), std::sqrt(14.0), 1e-15);
}

TEST(Blas, Dist2Nrm1AxpyVectorizedPathsMatchNaive) {
  // Lengths straddling the four-accumulator unroll (remainders 0..3).
  for (const std::size_t n : {1u, 5u, 127u, 128u, 130u, 1000u}) {
    const Vector x = random_vector(n, 40 + n);
    const Vector y = random_vector(n, 41 + n);
    double d2 = 0.0, l1 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      d2 += (x[i] - y[i]) * (x[i] - y[i]);
      l1 += std::abs(x[i]);
    }
    EXPECT_NEAR(uoi::linalg::dist2(x, y), std::sqrt(d2), 1e-12 * (1.0 + d2));
    EXPECT_NEAR(uoi::linalg::nrm1(x), l1, 1e-12 * (1.0 + l1));
    Vector z = y;
    uoi::linalg::axpy(2.5, x, z);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(z[i], y[i] + 2.5 * x[i]);
    }
  }
}

TEST(Blas, SyrkBlockedCrossesTileBoundaries) {
  // Sizes around the 64-wide panel / 256-deep k blocking of syrk_at_a,
  // including remainders in both dimensions.
  for (const auto [rows, cols] :
       {std::array<std::size_t, 2>{300, 150}, {256, 64}, {257, 65},
        {64, 130}}) {
    const Matrix a = random_matrix(rows, cols, 50 + rows);
    Matrix g(cols, cols);
    uoi::linalg::syrk_at_a(1.0, a, 0.0, g);
    const Matrix expect = naive_gemm(a.transposed(), a);
    EXPECT_LT(uoi::linalg::max_abs_diff(g, expect),
              1e-10 * static_cast<double>(rows))
        << rows << "x" << cols;
    // Symmetry must hold exactly: the lower triangle is mirrored.
    for (std::size_t i = 0; i < cols; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        EXPECT_EQ(g(i, j), g(j, i));
      }
    }
  }
}

TEST(Blas, GemvMatchesNaive) {
  const Matrix a = random_matrix(7, 5, 3);
  const Vector x = random_vector(5, 4);
  Vector y(7, 1.0);
  uoi::linalg::gemv(2.0, a, x, 0.5, y);
  for (std::size_t i = 0; i < 7; ++i) {
    double expect = 0.5;
    for (std::size_t j = 0; j < 5; ++j) expect += 2.0 * a(i, j) * x[j];
    EXPECT_NEAR(y[i], expect, 1e-12);
  }
}

TEST(Blas, GemvTransposedMatchesNaive) {
  const Matrix a = random_matrix(7, 5, 5);
  const Vector x = random_vector(7, 6);
  Vector y(5, 0.0);
  uoi::linalg::gemv_transposed(1.0, a, x, 0.0, y);
  for (std::size_t j = 0; j < 5; ++j) {
    double expect = 0.0;
    for (std::size_t i = 0; i < 7; ++i) expect += a(i, j) * x[i];
    EXPECT_NEAR(y[j], expect, 1e-12);
  }
}

TEST(Blas, GemmMatchesNaiveAcrossShapes) {
  for (const auto [m, k, n] :
       {std::array<std::size_t, 3>{3, 4, 5}, {1, 7, 2}, {65, 70, 33},
        {128, 300, 17}}) {
    const Matrix a = random_matrix(m, k, m * 100 + k);
    const Matrix b = random_matrix(k, n, n * 100 + k);
    Matrix c(m, n);
    uoi::linalg::gemm(1.0, a, b, 0.0, c);
    EXPECT_LT(uoi::linalg::max_abs_diff(c, naive_gemm(a, b)), 1e-10)
        << "shape " << m << "x" << k << "x" << n;
  }
}

TEST(Blas, GemmAccumulatesWithBeta) {
  const Matrix a = random_matrix(4, 4, 10);
  const Matrix b = random_matrix(4, 4, 11);
  Matrix c(4, 4, 1.0);
  uoi::linalg::gemm(1.0, a, b, 2.0, c);
  const Matrix ab = naive_gemm(a, b);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(c(i, j), ab(i, j) + 2.0, 1e-12);
    }
  }
}

TEST(Blas, SyrkMatchesAtA) {
  const Matrix a = random_matrix(9, 6, 12);
  Matrix g(6, 6);
  uoi::linalg::syrk_at_a(1.0, a, 0.0, g);
  const Matrix expect = naive_gemm(a.transposed(), a);
  EXPECT_LT(uoi::linalg::max_abs_diff(g, expect), 1e-11);
}

TEST(Blas, GemmAtBMatchesNaive) {
  const Matrix a = random_matrix(8, 3, 13);
  const Matrix b = random_matrix(8, 5, 14);
  Matrix c(3, 5);
  uoi::linalg::gemm_at_b(1.0, a, b, 0.0, c);
  EXPECT_LT(uoi::linalg::max_abs_diff(c, naive_gemm(a.transposed(), b)),
            1e-11);
}

TEST(Blas, ShapeMismatchThrows) {
  const Matrix a = random_matrix(3, 4, 15);
  const Matrix b = random_matrix(5, 2, 16);
  Matrix c(3, 2);
  EXPECT_THROW(uoi::linalg::gemm(1.0, a, b, 0.0, c),
               uoi::support::DimensionMismatch);
}

class CholeskyParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskyParam, FactorReconstructsAndSolves) {
  const std::size_t n = GetParam();
  const Matrix a = random_matrix(n + 3, n, 17 + n);
  Matrix spd(n, n);
  uoi::linalg::syrk_at_a(1.0, a, 0.0, spd);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 1.0;

  const uoi::linalg::CholeskyFactor factor(spd);
  // L L' == A
  const Matrix l = factor.lower();
  const Matrix reconstructed = naive_gemm(l, l.transposed());
  EXPECT_LT(uoi::linalg::max_abs_diff(reconstructed, spd), 1e-9);

  // Solve check: A x = b.
  const Vector b = random_vector(n, 18 + n);
  Vector x(n);
  factor.solve(b, x);
  Vector ax(n, 0.0);
  uoi::linalg::gemv(1.0, spd, x, 0.0, ax);
  EXPECT_LT(uoi::linalg::max_abs_diff(ax, b), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyParam,
                         ::testing::Values(1, 2, 5, 17, 40, 100, 150));

TEST(Cholesky, RejectsNonSpd) {
  Matrix not_spd{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(uoi::linalg::CholeskyFactor factor(not_spd),
               uoi::support::InvalidArgument);
}

TEST(Cholesky, SolveMatrixMultipleRhs) {
  Matrix spd{{4.0, 1.0}, {1.0, 3.0}};
  Matrix b{{1.0, 0.0}, {0.0, 1.0}};
  const uoi::linalg::CholeskyFactor factor(spd);
  Matrix x;
  factor.solve_matrix(b, x);
  // spd * x should equal identity.
  const Matrix prod = naive_gemm(spd, x);
  EXPECT_NEAR(prod(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(prod(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(prod(1, 1), 1.0, 1e-12);
}

TEST(Sparse, FromTripletsSumsDuplicates) {
  auto s = SparseMatrix::from_triplets(
      2, 3, {{0, 1, 1.5}, {1, 2, 2.0}, {0, 1, 0.5}});
  EXPECT_EQ(s.nnz(), 2u);
  EXPECT_DOUBLE_EQ(s.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(s.at(1, 2), 2.0);
  EXPECT_DOUBLE_EQ(s.at(0, 0), 0.0);
}

TEST(Sparse, FromDenseRoundTrip) {
  Matrix dense{{0.0, 1.0}, {2.0, 0.0}};
  const auto s = SparseMatrix::from_dense(dense);
  EXPECT_EQ(s.nnz(), 2u);
  EXPECT_EQ(uoi::linalg::max_abs_diff(s.to_dense(), dense), 0.0);
}

TEST(Sparse, GemvMatchesDense) {
  const Matrix dense = random_matrix(10, 8, 20);
  const auto s = SparseMatrix::from_dense(dense);
  const Vector x = random_vector(8, 21);
  Vector y_sparse(10, 0.0), y_dense(10, 0.0);
  s.gemv(1.0, x, 0.0, y_sparse);
  uoi::linalg::gemv(1.0, dense, x, 0.0, y_dense);
  EXPECT_LT(uoi::linalg::max_abs_diff(y_sparse, y_dense), 1e-12);
}

TEST(Sparse, GemvTransposedMatchesDense) {
  const Matrix dense = random_matrix(10, 8, 22);
  const auto s = SparseMatrix::from_dense(dense);
  const Vector x = random_vector(10, 23);
  Vector y_sparse(8, 0.0), y_dense(8, 0.0);
  s.gemv_transposed(1.0, x, 0.0, y_sparse);
  uoi::linalg::gemv_transposed(1.0, dense, x, 0.0, y_dense);
  EXPECT_LT(uoi::linalg::max_abs_diff(y_sparse, y_dense), 1e-12);
}

TEST(Sparse, GramMatchesDense) {
  const Matrix dense = random_matrix(12, 5, 24);
  const auto s = SparseMatrix::from_dense(dense);
  Matrix expect(5, 5);
  uoi::linalg::syrk_at_a(1.0, dense, 0.0, expect);
  EXPECT_LT(uoi::linalg::max_abs_diff(s.gram(), expect), 1e-11);
}

TEST(Sparse, BlockDiagonalSparsityFormula) {
  // The paper §IV-B1: I (x) X has sparsity exactly 1 - 1/p for dense X.
  const std::size_t p = 16;
  const Matrix x = random_matrix(6, 4, 25);
  const auto s = SparseMatrix::block_diagonal(x, p);
  EXPECT_EQ(s.rows(), 6 * p);
  EXPECT_EQ(s.cols(), 4 * p);
  EXPECT_NEAR(s.sparsity(), 1.0 - 1.0 / static_cast<double>(p), 1e-12);
}

TEST(Sparse, AppendRowStreaming) {
  SparseMatrix s(0, 4);
  const std::vector<std::size_t> cols{1, 3};
  const std::vector<double> vals{2.0, -1.0};
  s.append_row(cols, vals);
  s.append_row({}, {});
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_DOUBLE_EQ(s.at(0, 3), -1.0);
  EXPECT_DOUBLE_EQ(s.at(1, 2), 0.0);
}

TEST(Sparse, EmptyRowsAndZeroNnzEdgeCases) {
  // Rows with no stored entries must overwrite y under beta == 0 even when
  // y starts as NaN (BLAS overwrite semantics), matching gemv_transposed.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto s = SparseMatrix::from_triplets(3, 2, {{1, 0, 2.0}});
  const Vector x{1.5, -1.0};
  Vector y(3, nan);
  s.gemv(1.0, x, 0.0, y);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);

  // Zero-nnz matrix: both spmv directions, gram, and at() are well defined.
  const SparseMatrix empty(4, 3);
  EXPECT_EQ(empty.nnz(), 0u);
  EXPECT_DOUBLE_EQ(empty.sparsity(), 1.0);
  Vector ye(4, nan);
  empty.gemv(1.0, Vector(3, 1.0), 0.0, ye);
  for (const double v : ye) EXPECT_DOUBLE_EQ(v, 0.0);
  Vector yt(3, nan);
  empty.gemv_transposed(1.0, Vector(4, 1.0), 0.0, yt);
  for (const double v : yt) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_EQ(uoi::linalg::max_abs_diff(empty.gram(), Matrix(3, 3)), 0.0);
  EXPECT_DOUBLE_EQ(empty.at(3, 2), 0.0);

  // 0 x n and degenerate 0 x 0 shapes round-trip through the kernels.
  const SparseMatrix zero_rows(0, 3);
  Vector yz(3, nan);
  zero_rows.gemv_transposed(1.0, Vector{}, 0.0, yz);
  for (const double v : yz) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_DOUBLE_EQ(SparseMatrix().sparsity(), 0.0);

  // Trailing all-empty rows from triplets keep the row pointers coherent.
  auto trailing = SparseMatrix::from_triplets(5, 2, {{0, 1, 4.0}});
  EXPECT_EQ(trailing.row_offsets().size(), 6u);
  EXPECT_EQ(trailing.row_offsets()[5], 1u);
  EXPECT_DOUBLE_EQ(trailing.at(4, 1), 0.0);
}

TEST(Sparse, AppendRowRejectsDuplicateColumns) {
  SparseMatrix s(0, 4);
  const std::vector<std::size_t> dup{1, 1, 3};
  const std::vector<double> vals{1.0, 2.0, 3.0};
  EXPECT_THROW(s.append_row(dup, vals), uoi::support::InvalidArgument);
  const std::vector<std::size_t> unsorted{3, 1};
  const std::vector<double> two{1.0, 2.0};
  EXPECT_THROW(s.append_row(unsorted, two), uoi::support::InvalidArgument);
  EXPECT_EQ(s.rows(), 0u);
  EXPECT_EQ(s.nnz(), 0u);
}

TEST(Kron, VecUnvecRoundTrip) {
  const Matrix m = random_matrix(4, 3, 26);
  const Vector v = uoi::linalg::vec(m);
  // Column-major stacking: v[c * rows + r] = m(r, c).
  EXPECT_DOUBLE_EQ(v[0], m(0, 0));
  EXPECT_DOUBLE_EQ(v[4], m(0, 1));
  const Matrix back = uoi::linalg::unvec(v, 4, 3);
  EXPECT_EQ(uoi::linalg::max_abs_diff(back, m), 0.0);
}

TEST(Kron, ImplicitOpMatchesExplicitSparse) {
  const Matrix x = random_matrix(5, 3, 27);
  const std::size_t count = 4;
  const uoi::linalg::KroneckerIdentityOp op(x, count);
  const auto explicit_sparse = uoi::linalg::kron_identity_sparse(x, count);

  const Vector v = random_vector(op.cols(), 28);
  Vector y_op(op.rows(), 0.0), y_sparse(op.rows(), 0.0);
  op.gemv(1.0, v, 0.0, y_op);
  explicit_sparse.gemv(1.0, v, 0.0, y_sparse);
  EXPECT_LT(uoi::linalg::max_abs_diff(y_op, y_sparse), 1e-12);

  const Vector w = random_vector(op.rows(), 29);
  Vector z_op(op.cols(), 0.0), z_sparse(op.cols(), 0.0);
  op.gemv_transposed(1.0, w, 0.0, z_op);
  explicit_sparse.gemv_transposed(1.0, w, 0.0, z_sparse);
  EXPECT_LT(uoi::linalg::max_abs_diff(z_op, z_sparse), 1e-12);
}

TEST(Kron, BlockGramIsXtX) {
  const Matrix x = random_matrix(6, 4, 30);
  const uoi::linalg::KroneckerIdentityOp op(x, 3);
  Matrix expect(4, 4);
  uoi::linalg::syrk_at_a(1.0, x, 0.0, expect);
  EXPECT_LT(uoi::linalg::max_abs_diff(op.block_gram(), expect), 1e-11);
}

// --------------------------------------------------- SIMD kernel dispatch

// Every compiled ISA level must produce bit-identical results: the same 8
// accumulator lanes, tail handling, and reduction tree, with FP contraction
// disabled. Sizes straddle the vector width (tails of every length) and the
// dispatch boundaries (0, 1, below/at/above 8, and a large odd size).
TEST(Simd, KernelsAreBitIdenticalAcrossLevels) {
  namespace simd = uoi::linalg::simd;
  const simd::SimdLevel detected = simd::detect_simd_level();
  const std::vector<std::size_t> sizes{0, 1, 3, 7, 8, 9, 15, 16, 17,
                                       63, 64, 65, 257, 1001};
  for (const std::size_t n : sizes) {
    const Vector x = random_vector(n, 1000 + n);
    const Vector y = random_vector(n, 2000 + n);
    const auto& scalar = simd::kernel_table(simd::SimdLevel::kScalar);
    for (const simd::SimdLevel level :
         {simd::SimdLevel::kAvx2, simd::SimdLevel::kAvx512}) {
      if (level > detected || !simd::level_compiled(level)) continue;
      const auto& table = simd::kernel_table(level);
      EXPECT_EQ(scalar.dot(x.data(), y.data(), n),
                table.dot(x.data(), y.data(), n))
          << simd::simd_level_name(level) << " dot n=" << n;
      EXPECT_EQ(scalar.dist2_squared(x.data(), y.data(), n),
                table.dist2_squared(x.data(), y.data(), n))
          << simd::simd_level_name(level) << " dist2 n=" << n;
      EXPECT_EQ(scalar.nrm1(x.data(), n), table.nrm1(x.data(), n))
          << simd::simd_level_name(level) << " nrm1 n=" << n;
      Vector y_scalar = y, y_vec = y;
      scalar.axpy(0.37, x.data(), y_scalar.data(), n);
      table.axpy(0.37, x.data(), y_vec.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(y_scalar[i], y_vec[i])
            << simd::simd_level_name(level) << " axpy n=" << n << " i=" << i;
      }
    }
  }
}

TEST(Simd, GatherScatterRoundTripAcrossLevels) {
  namespace simd = uoi::linalg::simd;
  const simd::SimdLevel detected = simd::detect_simd_level();
  const std::size_t p = 97;
  const Vector full = random_vector(p, 31);
  // A strided working set whose size exercises the vector tail.
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < p; i += 3) idx.push_back(i);
  for (const simd::SimdLevel level :
       {simd::SimdLevel::kScalar, simd::SimdLevel::kAvx2,
        simd::SimdLevel::kAvx512}) {
    if (level > detected) continue;
    const auto& table = simd::kernel_table(level);
    Vector packed(idx.size(), 0.0);
    table.gather(full.data(), idx.data(), idx.size(), packed.data());
    for (std::size_t i = 0; i < idx.size(); ++i) {
      ASSERT_EQ(packed[i], full[idx[i]])
          << simd::simd_level_name(level) << " gather i=" << i;
    }
    Vector expanded(p, 0.0);
    table.scatter(packed.data(), idx.data(), idx.size(), expanded.data());
    for (std::size_t i = 0; i < idx.size(); ++i) {
      ASSERT_EQ(expanded[idx[i]], full[idx[i]])
          << simd::simd_level_name(level) << " scatter i=" << i;
    }
    // Empty working set: both directions are no-ops.
    table.gather(full.data(), idx.data(), 0, packed.data());
    table.scatter(packed.data(), idx.data(), 0, expanded.data());
  }
}

TEST(Simd, ResolutionIsClampedAndNamed) {
  namespace simd = uoi::linalg::simd;
  EXPECT_LE(simd::resolve_simd_level(), simd::detect_simd_level());
  EXPECT_TRUE(simd::level_compiled(simd::SimdLevel::kScalar));
  EXPECT_STREQ(simd::simd_level_name(simd::SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(simd::simd_level_name(simd::SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(simd::simd_level_name(simd::SimdLevel::kAvx512), "avx512");
  // The active table is exactly the resolved level's table.
  EXPECT_EQ(&simd::active_kernels(),
            &simd::kernel_table(simd::resolve_simd_level()));
}

}  // namespace
