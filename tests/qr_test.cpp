// Tests for the pivoted-QR least-squares solver and the roofline model.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "perfmodel/roofline.hpp"
#include "solvers/ols.hpp"
#include "support/rng.hpp"

namespace {

using uoi::linalg::Matrix;
using uoi::linalg::QrFactorization;
using uoi::linalg::Vector;

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  uoi::support::Xoshiro256 rng(seed);
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal();
  }
  return m;
}

class QrParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(QrParam, FullRankLeastSquaresMatchesNormalEquations) {
  const auto [m, n] = GetParam();
  const Matrix a = random_matrix(m, n, m * 31 + n);
  Vector b(m);
  uoi::support::Xoshiro256 rng(m + n);
  for (auto& v : b) v = rng.normal();

  const QrFactorization qr(a);
  EXPECT_EQ(qr.rank(), n);
  Vector x_qr(n);
  qr.solve(b, x_qr);

  const Vector x_ne = uoi::solvers::ols_direct(a, b);
  EXPECT_LT(uoi::linalg::max_abs_diff(x_qr, x_ne), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrParam,
    ::testing::Values(std::make_tuple(8, 8), std::make_tuple(20, 5),
                      std::make_tuple(100, 30), std::make_tuple(50, 50)));

TEST(Qr, ResidualIsOrthogonalToColumns) {
  // Least-squares optimality: A'(b - A x) = 0.
  const Matrix a = random_matrix(40, 10, 7);
  Vector b(40);
  uoi::support::Xoshiro256 rng(8);
  for (auto& v : b) v = rng.normal();
  const Vector x = uoi::linalg::qr_least_squares(a, b);
  Vector residual(b);
  uoi::linalg::gemv(1.0, a, x, -1.0, residual);  // r = A x - b... sign ok
  Vector grad(10, 0.0);
  uoi::linalg::gemv_transposed(1.0, a, residual, 0.0, grad);
  for (const double g : grad) EXPECT_NEAR(g, 0.0, 1e-8);
}

TEST(Qr, DetectsRankDeficiency) {
  // Third column = first + second.
  Matrix a = random_matrix(20, 3, 9);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    a(r, 2) = a(r, 0) + a(r, 1);
  }
  const QrFactorization qr(a);
  EXPECT_EQ(qr.rank(), 2u);

  // The solve is still consistent: predictions match the best fit.
  Vector b(20);
  for (std::size_t r = 0; r < 20; ++r) b[r] = a(r, 0) - a(r, 1);
  Vector x(3);
  qr.solve(b, x);
  Vector pred(20, 0.0);
  uoi::linalg::gemv(1.0, a, x, 0.0, pred);
  EXPECT_LT(uoi::linalg::max_abs_diff(pred, b), 1e-8);
}

TEST(Qr, ExactlyDuplicatedColumns) {
  Matrix a = random_matrix(15, 4, 11);
  for (std::size_t r = 0; r < a.rows(); ++r) a(r, 3) = a(r, 1);
  const QrFactorization qr(a);
  EXPECT_EQ(qr.rank(), 3u);
}

TEST(Qr, ZeroMatrixRankZeroSolvesToZero) {
  Matrix a(10, 3);
  const QrFactorization qr(a);
  EXPECT_EQ(qr.rank(), 0u);
  Vector b(10, 1.0), x(3, 99.0);
  qr.solve(b, x);
  for (const double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Qr, OlsFallsBackOnSingularGram) {
  // OLS on a design with duplicated columns must not throw and must fit.
  Matrix a = random_matrix(30, 4, 13);
  for (std::size_t r = 0; r < a.rows(); ++r) a(r, 3) = 2.0 * a(r, 0);
  Vector b(30);
  for (std::size_t r = 0; r < 30; ++r) b[r] = a(r, 1) * 3.0;
  const Vector x = uoi::solvers::ols_direct(a, b);
  Vector pred(30, 0.0);
  uoi::linalg::gemv(1.0, a, x, 0.0, pred);
  EXPECT_LT(uoi::linalg::max_abs_diff(pred, b), 1e-6);
}

TEST(Qr, RejectsWideMatrices) {
  const Matrix a = random_matrix(3, 5, 15);
  EXPECT_THROW(QrFactorization qr(a), uoi::support::InvalidArgument);
}

// ---- roofline ----

TEST(Roofline, AttainableAndRidge) {
  const auto knl = uoi::perf::knl_node();
  // Below the ridge: bandwidth-limited.
  EXPECT_DOUBLE_EQ(knl.attainable_gflops(1.0), 90.0);
  // Far above the ridge: compute-limited.
  EXPECT_DOUBLE_EQ(knl.attainable_gflops(1000.0), 2600.0);
  EXPECT_NEAR(knl.ridge_point(), 2600.0 / 90.0, 1e-12);
}

TEST(Roofline, PaperKernelsAreAllMemoryBound) {
  // §IV-A1: "Both the BLAS operations were found to be DRAM memory bound";
  // the sparse kernels' AI (0.15/0.33) sits far below the ridge too.
  const auto knl = uoi::perf::knl_node();
  for (const auto& kernel : uoi::perf::paper_kernel_points()) {
    EXPECT_TRUE(uoi::perf::is_memory_bound(knl, kernel)) << kernel.name;
    const double eff = uoi::perf::roofline_efficiency(knl, kernel);
    EXPECT_GT(eff, 0.0) << kernel.name;
    EXPECT_LT(eff, 1.0) << kernel.name;  // nobody beats the roof
  }
}

TEST(Roofline, GemmIsClosestToTheRoof) {
  // The paper's gemm (30.83 GFLOPS at AI 3.59) achieves the highest
  // fraction of attainable performance among the measured kernels.
  const auto knl = uoi::perf::knl_node();
  const auto kernels = uoi::perf::paper_kernel_points();
  double gemm_eff = 0.0, best_other = 0.0;
  for (const auto& kernel : kernels) {
    const double eff = uoi::perf::roofline_efficiency(knl, kernel);
    if (kernel.name.find("gemm") != std::string::npos) {
      gemm_eff = eff;
    } else {
      best_other = std::max(best_other, eff);
    }
  }
  EXPECT_GT(gemm_eff, best_other);
}

}  // namespace
