// Hang/stall failure detection: the progress-heartbeat watchdog
// (suspect -> confirm -> agreed-failed), slow-but-alive false-positive
// boundaries, CRC-guarded one-sided payloads, jittered retry backoff, and
// quorum-degraded driver completion.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/uoi_lasso_distributed.hpp"
#include "data/synthetic_regression.hpp"
#include "data/synthetic_var.hpp"
#include "linalg/matrix.hpp"
#include "report/run_report.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/window.hpp"
#include "support/crc32.hpp"
#include "var/var_distributed.hpp"

namespace {

using uoi::linalg::Matrix;
using uoi::sim::Cluster;
using uoi::sim::Comm;
using uoi::sim::FaultPlan;
using uoi::sim::RankFailedError;
using uoi::sim::ReduceOp;
using uoi::sim::RetryOptions;
using uoi::sim::WatchdogConfig;
using uoi::sim::Window;

// Arm the one-sided CRC guard for this whole binary. The gate caches its
// env read at the first window operation, so it must be set before any
// test runs; a process-wide guard is harmless for the non-CRC tests (it
// only adds a checksum pass over clean payloads).
const bool kCrcArmed = [] {
  ::setenv("UOI_ONESIDED_CRC", "1", 1);
  return true;
}();

std::uint64_t total_hangs(const std::vector<uoi::sim::RankReport>& reports) {
  std::uint64_t hangs = 0;
  for (const auto& r : reports) hangs += r.recovery.hangs_detected;
  return hangs;
}

std::uint64_t total_cleared(const std::vector<uoi::sim::RankReport>& reports) {
  std::uint64_t cleared = 0;
  for (const auto& r : reports) cleared += r.recovery.suspects_cleared;
  return cleared;
}

// ---- watchdog on the raw runtime ----

TEST(Watchdog, HangDetectShrinkResumeEightRanks) {
  auto plan = std::make_shared<FaultPlan>();
  plan->hangs.push_back({/*rank=*/5, /*at_collective=*/4});
  const auto reports = Cluster::run_collect_reports(8, [&](Comm& comm) {
    comm.set_fault_plan(plan);
    comm.set_watchdog({/*timeout_ms=*/200});
    bool detected = false;
    try {
      for (int i = 0; i < 10; ++i) {
        double sum = 1.0;
        comm.allreduce(std::span<double>(&sum, 1), ReduceOp::kSum);
      }
    } catch (const RankFailedError&) {
      detected = true;
    }
    // Only survivors get here: the hung rank parks until its death is
    // certified and unwinds as a planned kill.
    ASSERT_TRUE(detected);
    EXPECT_FALSE(comm.is_alive(5));
    Comm shrunk = comm.shrink();
    EXPECT_EQ(shrunk.size(), 7);
    double sum = 1.0;
    shrunk.allreduce(std::span<double>(&sum, 1), ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(sum, 7.0);
  });
  // The claim CAS guarantees exactly one waiter accounts the detection.
  EXPECT_EQ(total_hangs(reports), 1u);
  double detect_seconds = 0.0;
  for (const auto& r : reports) {
    detect_seconds = std::max(detect_seconds, r.recovery.detect_seconds);
  }
  EXPECT_GT(detect_seconds, 0.0);
  EXPECT_LT(detect_seconds, 5.0);  // well within the ctest timeout
}

TEST(Watchdog, DisarmedWatchdogIgnoresDeadline) {
  // Without set_watchdog and without $UOI_COMM_TIMEOUT_MS the barrier is
  // the seed's plain wait: a slow rank is simply waited out.
  auto plan = std::make_shared<FaultPlan>();
  plan->slows.push_back({/*rank=*/1, /*at_collective=*/2,
                         /*stall_seconds=*/0.05});
  const auto reports = Cluster::run_collect_reports(3, [&](Comm& comm) {
    comm.set_fault_plan(plan);
    for (int i = 0; i < 4; ++i) {
      double sum = 1.0;
      comm.allreduce(std::span<double>(&sum, 1), ReduceOp::kSum);
      EXPECT_DOUBLE_EQ(sum, 3.0);
    }
  });
  EXPECT_EQ(total_hangs(reports), 0u);
  EXPECT_EQ(total_cleared(reports), 0u);
}

TEST(Watchdog, HeartbeatSuppressesFalsePositive) {
  // Rank 0 computes for ~3x the watchdog timeout while the other ranks
  // wait in an armed barrier; explicit heartbeats keep its progress epoch
  // moving so no waiter can ever confirm a suspicion.
  const auto reports = Cluster::run_collect_reports(4, [&](Comm& comm) {
    comm.set_watchdog({/*timeout_ms=*/150});
    comm.barrier();
    if (comm.rank() == 0) {
      for (int i = 0; i < 18; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        comm.heartbeat();
      }
    }
    double sum = 1.0;
    comm.allreduce(std::span<double>(&sum, 1), ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(sum, 4.0);
  });
  EXPECT_EQ(total_hangs(reports), 0u);
}

TEST(Watchdog, SlowRankBelowTimeoutIsNotKilled) {
  // Stall = half the timeout: the stalled rank always arrives before any
  // waiter reaches its confirmation deadline, so the run completes with
  // zero detections — the false-positive boundary the ISSUE pins down.
  auto plan = std::make_shared<FaultPlan>();
  plan->slows.push_back({/*rank=*/2, /*at_collective=*/3,
                         /*stall_seconds=*/0.15});
  const auto reports = Cluster::run_collect_reports(4, [&](Comm& comm) {
    comm.set_fault_plan(plan);
    comm.set_watchdog({/*timeout_ms=*/300});
    for (int i = 0; i < 6; ++i) {
      double sum = 1.0;
      comm.allreduce(std::span<double>(&sum, 1), ReduceOp::kSum);
      EXPECT_DOUBLE_EQ(sum, 4.0);
    }
  });
  EXPECT_EQ(total_hangs(reports), 0u);
}

TEST(Watchdog, SlowRankBeyondTimeoutIsDetectedAndRecovered) {
  // Stall = ~2.7x the timeout: the stall is indistinguishable from a hang
  // until it ends, so the waiters deterministically confirm the death at
  // ~1x timeout and the stalled rank unwinds when it notices.
  auto plan = std::make_shared<FaultPlan>();
  plan->slows.push_back({/*rank=*/2, /*at_collective=*/3,
                         /*stall_seconds=*/0.4});
  const auto reports = Cluster::run_collect_reports(4, [&](Comm& comm) {
    comm.set_fault_plan(plan);
    comm.set_watchdog({/*timeout_ms=*/150});
    bool detected = false;
    try {
      for (int i = 0; i < 8; ++i) {
        double sum = 1.0;
        comm.allreduce(std::span<double>(&sum, 1), ReduceOp::kSum);
      }
    } catch (const RankFailedError&) {
      detected = true;
    }
    ASSERT_TRUE(detected);
    EXPECT_FALSE(comm.is_alive(2));
    Comm shrunk = comm.shrink();
    double sum = 1.0;
    shrunk.allreduce(std::span<double>(&sum, 1), ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(sum, 3.0);
  });
  EXPECT_EQ(total_hangs(reports), 1u);
}

TEST(Watchdog, RecvDeadlineDetectsHungSender) {
  // The sender hangs at its second collective, before it ever sends; the
  // receiver's deadline-bounded recv must detect the frozen progress
  // epoch rather than block forever.
  auto plan = std::make_shared<FaultPlan>();
  plan->hangs.push_back({/*rank=*/0, /*at_collective=*/1});
  const auto reports = Cluster::run_collect_reports(2, [&](Comm& comm) {
    comm.set_fault_plan(plan);
    comm.set_watchdog({/*timeout_ms=*/150});
    comm.barrier();
    if (comm.rank() == 0) {
      comm.barrier();  // hangs here (collective #1); never reaches send
      double payload = 7.0;
      comm.send(1, std::span<const double>(&payload, 1));
    } else {
      double payload = 0.0;
      EXPECT_THROW(comm.recv(0, std::span<double>(&payload, 1)),
                   RankFailedError);
      EXPECT_FALSE(comm.is_alive(0));
    }
  });
  EXPECT_GE(total_hangs(reports), 1u);
}

TEST(Watchdog, StatsAndConfigSurviveShrink) {
  // Regression: RecoveryStats accrued before a shrink must stay on the
  // parent handle, the shrunk child must inherit the watchdog config, and
  // the child's own stats must start clean.
  auto plan = std::make_shared<FaultPlan>();
  plan->onesided.push_back({/*rank=*/0, /*at_op=*/0, /*count=*/1,
                            FaultPlan::OneSidedKind::kTransient, 0.0});
  plan->kills.push_back({/*rank=*/2, /*at_collective=*/6});
  Cluster::run(4, [&](Comm& comm) {
    comm.set_fault_plan(plan);
    comm.set_watchdog({/*timeout_ms=*/250});
    std::vector<double> buffer(2, 1.0);
    Window window(comm, buffer);
    window.fence();
    if (comm.rank() == 0) {
      std::vector<double> out(2, 0.0);
      uoi::sim::retry_onesided(comm, {}, [&] {
        window.get(1, 0, std::span<double>(out));
      });
    }
    bool detected = false;
    try {
      for (int i = 0; i < 8; ++i) comm.barrier();
    } catch (const RankFailedError&) {
      detected = true;
    }
    ASSERT_TRUE(detected);
    Comm shrunk = comm.shrink();
    EXPECT_EQ(shrunk.watchdog().timeout_ms, 250);
    EXPECT_EQ(comm.recovery_stats().shrinks, 1u);
    EXPECT_EQ(shrunk.recovery_stats().shrinks, 0u);
    if (comm.rank() == 0) {
      EXPECT_EQ(comm.recovery_stats().transient_faults, 1u);
      EXPECT_EQ(comm.recovery_stats().retries, 1u);
    }
  });
}

// ---- CRC payload guard ----

TEST(Crc, KnownVector) {
  const char data[] = "123456789";
  EXPECT_EQ(uoi::support::crc32(data, 9), 0xCBF43926u);
  EXPECT_EQ(uoi::support::crc32(data, 0), 0u);
  // Incremental chaining: crc(a ++ b) == crc(b, seed=crc(a)).
  const auto head = uoi::support::crc32(data, 4);
  EXPECT_EQ(uoi::support::crc32(data + 4, 5, head),
            uoi::support::crc32(data, 9));
}

TEST(Crc, CorruptedGetSurfacesAsRetryableAndRetriesClean) {
  auto plan = std::make_shared<FaultPlan>();
  plan->onesided.push_back({/*rank=*/1, /*at_op=*/0, /*count=*/1,
                            FaultPlan::OneSidedKind::kCorrupt, 0.0});
  const auto reports = Cluster::run_collect_reports(2, [&](Comm& comm) {
    comm.set_fault_plan(plan);
    std::vector<double> buffer(3, comm.rank() == 0 ? 7.0 : 0.0);
    Window window(comm, buffer);
    window.fence();
    if (comm.rank() == 1) {
      std::vector<double> out(3, 0.0);
      // Without the CRC guard the corruption lands silently (see
      // robustness_test's CorruptionFlipsOnePayloadBit); with it the get
      // throws TransientCommError and the retry re-reads clean bytes.
      uoi::sim::retry_onesided(comm, {}, [&] {
        window.get(0, 0, std::span<double>(out));
      });
      for (const double v : out) EXPECT_DOUBLE_EQ(v, 7.0);
    }
    window.fence();
  });
  EXPECT_EQ(reports[1].recovery.crc_detected, 1u);
  EXPECT_EQ(reports[1].recovery.transient_faults, 1u);
  EXPECT_EQ(reports[1].recovery.retries, 1u);
  EXPECT_EQ(reports[1].recovery.giveups, 0u);
}

TEST(Crc, CorruptedPutSurfacesAsRetryableAndRetriesClean) {
  auto plan = std::make_shared<FaultPlan>();
  plan->onesided.push_back({/*rank=*/1, /*at_op=*/0, /*count=*/1,
                            FaultPlan::OneSidedKind::kCorrupt, 0.0});
  const auto reports = Cluster::run_collect_reports(2, [&](Comm& comm) {
    comm.set_fault_plan(plan);
    std::vector<double> buffer(3, 0.0);
    Window window(comm, buffer);
    window.fence();
    if (comm.rank() == 1) {
      const std::vector<double> in(3, 9.0);
      uoi::sim::retry_onesided(comm, {}, [&] {
        window.put(0, 0, std::span<const double>(in));
      });
    }
    window.fence();
    if (comm.rank() == 0) {
      for (const double v : window.local()) EXPECT_DOUBLE_EQ(v, 9.0);
    }
    window.fence();
  });
  EXPECT_EQ(reports[1].recovery.crc_detected, 1u);
  EXPECT_EQ(reports[1].recovery.retries, 1u);
}

// ---- jittered retry backoff ----

TEST(Jitter, DecorrelatedDrawIsDeterministicAndBounded) {
  const double base = 50e-6;
  std::uint64_t state_a = 0x6a177e5ULL | 1ULL;
  std::uint64_t state_b = 0x6a177e5ULL | 1ULL;
  double previous = base;
  for (int i = 0; i < 100; ++i) {
    const double a =
        uoi::sim::detail::decorrelated_jitter(base, previous, state_a);
    const double b =
        uoi::sim::detail::decorrelated_jitter(base, previous, state_b);
    EXPECT_EQ(a, b);  // same seed, same stream
    EXPECT_GE(a, base);
    EXPECT_LE(a, std::max(base, 3.0 * previous));
    previous = a;
  }
  // A different seed must give a different stream.
  std::uint64_t state_c = 0x12345ULL | 1ULL;
  EXPECT_NE(uoi::sim::detail::decorrelated_jitter(base, base, state_c),
            uoi::sim::detail::decorrelated_jitter(base, base, state_a));
}

TEST(Jitter, RetryCountsJitteredBackoffsAndStaysDeterministic) {
  auto plan = std::make_shared<FaultPlan>();
  plan->onesided.push_back({/*rank=*/1, /*at_op=*/0, /*count=*/2,
                            FaultPlan::OneSidedKind::kTransient, 0.0});
  const auto run_once = [&] {
    return Cluster::run_collect_reports(2, [&](Comm& comm) {
      comm.set_fault_plan(plan);
      std::vector<double> buffer(4, comm.rank() == 0 ? 3.0 : 0.0);
      Window window(comm, buffer);
      window.fence();
      if (comm.rank() == 1) {
        RetryOptions options;
        options.jitter = true;
        std::vector<double> out(4, 0.0);
        uoi::sim::retry_onesided(comm, options, [&] {
          window.get(0, 0, std::span<double>(out));
        });
        for (const double v : out) EXPECT_DOUBLE_EQ(v, 3.0);
      }
      window.fence();
    });
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first[1].recovery.retries, 2u);
  EXPECT_EQ(first[1].recovery.retries_after_jitter, 2u);
  EXPECT_GT(first[1].recovery.backoff_seconds, 0.0);
  // The jitter stream is seeded, so the accounted backoff schedule is
  // reproducible run to run.
  EXPECT_EQ(first[1].recovery.backoff_seconds,
            second[1].recovery.backoff_seconds);
  // Default options never jitter (bitwise seed behavior).
  EXPECT_EQ(first[1].recovery.retries_after_jitter,
            first[1].recovery.retries);
  EXPECT_EQ(second[0].recovery.retries_after_jitter, 0u);
}

// ---- run-report health section ----

TEST(Health, RunReportSummarizesRecoveryMetrics) {
  uoi::report::ReportInputs inputs;
  inputs.wall_seconds = 1.0;
  inputs.metrics = {
      {0, "recovery.hangs_detected", 1.0},
      {0, "recovery.hang_detect_seconds", 0.25},
      {0, "recovery.suspects_cleared", 2.0},
      {0, "recovery.crc_detected", 2.0},
      {0, "recovery.transient_faults", 3.0},
      {0, "recovery.retries", 3.0},
      {0, "recovery.shrinks", 1.0},
      {1, "recovery.shrinks", 1.0},
      {0, "recovery.degraded", 1.0},
      {0, "recovery.achieved_quorum", 0.8},
      {0, "recovery.cells_lost", 3.0},
  };
  const auto report = uoi::report::build_run_report(inputs);
  ASSERT_TRUE(report.health.present);
  EXPECT_EQ(report.health.hangs_detected, 1.0);
  EXPECT_EQ(report.health.hang_detect_seconds_max, 0.25);
  EXPECT_EQ(report.health.suspects_cleared, 2.0);
  EXPECT_EQ(report.health.crc_detected, 2.0);
  EXPECT_EQ(report.health.transient_faults, 3.0);
  EXPECT_EQ(report.health.shrinks, 1.0);  // replicated counter: max, not sum
  EXPECT_TRUE(report.health.degraded);
  EXPECT_EQ(report.health.achieved_quorum, 0.8);
  EXPECT_EQ(report.health.cells_lost, 3.0);
  const auto json = report.to_json();
  EXPECT_NE(json.find("\"health\":{\"present\":true"), std::string::npos);
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(json.find("\"schema\":\"uoi-run-report-v2\""), std::string::npos);
  EXPECT_NE(report.to_text().find("health:"), std::string::npos);
}

TEST(Health, AbsentWithoutRecoveryMetrics) {
  uoi::report::ReportInputs inputs;
  inputs.wall_seconds = 1.0;
  const auto report = uoi::report::build_run_report(inputs);
  EXPECT_FALSE(report.health.present);
  EXPECT_NE(report.to_json().find("\"health\":{\"present\":false}"),
            std::string::npos);
  EXPECT_EQ(report.to_text().find("health:"), std::string::npos);
}

}  // namespace

// ---- drivers under hang/stall faults and quorum-degraded completion ----

namespace driver_watchdog_tests {

using uoi::linalg::Matrix;
using uoi::sim::Cluster;
using uoi::sim::Comm;
using uoi::sim::FaultPlan;
using uoi::sim::RankFailedError;
using uoi::sim::WatchdogConfig;

/// Collectives a rank entered in a fault-free run: positions a hang/stall
/// deterministically as a fraction of the clean schedule (same convention
/// as robustness_test).
std::uint64_t collective_calls(const uoi::sim::CommStats& stats) {
  std::uint64_t total = 0;
  for (int c = 0; c < static_cast<int>(uoi::sim::CommCategory::kPointToPoint);
       ++c) {
    total += stats.entries[static_cast<std::size_t>(c)].calls;
  }
  return total;
}

uoi::core::UoiLassoOptions lasso_options() {
  uoi::core::UoiLassoOptions options;
  // Deterministic schedule: the fault points below count a clean run's
  // collectives, which work stealing would make timing-dependent.
  options.schedule = uoi::sched::SchedulePolicy::kCostLpt;
  options.n_selection_bootstraps = 5;
  options.n_estimation_bootstraps = 3;
  options.n_lambdas = 5;
  options.seed = 909;
  options.admm.eps_abs = 1e-8;
  options.admm.eps_rel = 1e-6;
  options.admm.max_iterations = 5000;
  return options;
}

uoi::data::RegressionDataset lasso_data() {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 80;
  spec.n_features = 16;
  spec.support_size = 4;
  spec.noise_stddev = 0.3;
  spec.seed = 44;
  return uoi::data::make_regression(spec);
}

struct LassoRun {
  std::vector<uoi::core::UoiLassoDistributedResult> results;  // index == rank
  std::vector<uoi::sim::RankReport> reports;
};

LassoRun run_lasso(int ranks, const uoi::data::RegressionDataset& data,
                   const uoi::core::UoiLassoOptions& options,
                   const uoi::core::UoiParallelLayout& layout,
                   std::shared_ptr<const FaultPlan> plan,
                   const WatchdogConfig* watchdog = nullptr) {
  LassoRun run;
  run.results.resize(static_cast<std::size_t>(ranks));
  run.reports = Cluster::run_collect_reports(ranks, [&](Comm& comm) {
    if (plan != nullptr) comm.set_fault_plan(plan);
    if (watchdog != nullptr) comm.set_watchdog(*watchdog);
    run.results[static_cast<std::size_t>(comm.rank())] =
        uoi::core::uoi_lasso_distributed(comm, data.x, data.y, options,
                                         layout);
  });
  return run;
}

void expect_same_model(const uoi::core::UoiLassoDistributedResult& actual,
                       const uoi::core::UoiLassoDistributedResult& expected) {
  EXPECT_EQ(uoi::linalg::max_abs_diff(actual.selection_counts,
                                      expected.selection_counts),
            0.0);
  ASSERT_EQ(actual.model.candidate_supports.size(),
            expected.model.candidate_supports.size());
  for (std::size_t j = 0; j < expected.model.candidate_supports.size(); ++j) {
    EXPECT_EQ(actual.model.candidate_supports[j],
              expected.model.candidate_supports[j])
        << "candidate support mismatch at lambda index " << j;
  }
  EXPECT_EQ(actual.model.support, expected.model.support);
}

TEST(DriverWatchdog, LassoHungRankRecoversBitIdenticalAtEightRanks) {
  const auto data = lasso_data();
  const auto options = lasso_options();
  const uoi::core::UoiParallelLayout layout{4, 1};  // 8 ranks -> C = 2

  const auto clean = run_lasso(8, data, options, layout, nullptr);
  auto plan = std::make_shared<FaultPlan>();
  plan->hangs.push_back(
      {/*rank=*/3, collective_calls(clean.reports[3].comm) / 4});
  const WatchdogConfig watchdog{/*timeout_ms=*/300};
  const auto faulty = run_lasso(8, data, options, layout, plan, &watchdog);

  for (const int r : {0, 1, 2, 4, 5, 6, 7}) {
    expect_same_model(faulty.results[static_cast<std::size_t>(r)],
                      clean.results[0]);
    EXPECT_FALSE(faulty.results[static_cast<std::size_t>(r)].degraded);
    EXPECT_GE(faulty.reports[static_cast<std::size_t>(r)].recovery.shrinks, 1u)
        << "rank " << r;
  }
  std::uint64_t hangs = 0;
  std::uint64_t recovered = 0;
  double detect_seconds = 0.0;
  for (const auto& report : faulty.reports) {
    hangs += report.recovery.hangs_detected;
    recovered += report.recovery.cells_recovered;
    detect_seconds =
        std::max(detect_seconds, report.recovery.detect_seconds);
  }
  EXPECT_GE(hangs, 1u);
  EXPECT_GE(recovered, 1u);
  EXPECT_GT(detect_seconds, 0.0);
}

TEST(DriverWatchdog, LassoSlowRankBelowTimeoutStaysCleanAndBitIdentical) {
  const auto data = lasso_data();
  const auto options = lasso_options();
  const uoi::core::UoiParallelLayout layout{2, 1};

  const auto clean = run_lasso(4, data, options, layout, nullptr);
  auto plan = std::make_shared<FaultPlan>();
  // Stall for half the timeout: slow but alive, must NOT be killed.
  plan->slows.push_back({/*rank=*/2,
                         collective_calls(clean.reports[2].comm) / 3,
                         /*stall_seconds=*/0.15});
  const WatchdogConfig watchdog{/*timeout_ms=*/300};
  const auto slow = run_lasso(4, data, options, layout, plan, &watchdog);

  for (std::size_t r = 0; r < 4; ++r) {
    expect_same_model(slow.results[r], clean.results[0]);
    EXPECT_EQ(slow.reports[r].recovery.hangs_detected, 0u) << "rank " << r;
    EXPECT_EQ(slow.reports[r].recovery.shrinks, 0u) << "rank " << r;
  }
}

TEST(DriverWatchdog, LassoSlowRankBeyondTimeoutRecoversBitIdentical) {
  const auto data = lasso_data();
  const auto options = lasso_options();
  const uoi::core::UoiParallelLayout layout{2, 1};

  const auto clean = run_lasso(4, data, options, layout, nullptr);
  auto plan = std::make_shared<FaultPlan>();
  // Stall for ~2.7x the timeout: indistinguishable from a hang until too
  // late; the survivors must declare the rank failed and recover.
  plan->slows.push_back({/*rank=*/2,
                         collective_calls(clean.reports[2].comm) / 3,
                         /*stall_seconds=*/0.4});
  const WatchdogConfig watchdog{/*timeout_ms=*/150};
  const auto faulty = run_lasso(4, data, options, layout, plan, &watchdog);

  for (const int r : {0, 1, 3}) {
    expect_same_model(faulty.results[static_cast<std::size_t>(r)],
                      clean.results[0]);
    EXPECT_GE(faulty.reports[static_cast<std::size_t>(r)].recovery.shrinks, 1u)
        << "rank " << r;
  }
  std::uint64_t hangs = 0;
  for (const auto& report : faulty.reports) {
    hangs += report.recovery.hangs_detected;
  }
  EXPECT_GE(hangs, 1u);
}

TEST(DriverWatchdog, VarHungRankRecoversBitIdentical) {
  uoi::data::VarSpec spec;
  spec.n_nodes = 4;
  spec.edges_per_node = 1.0;
  spec.seed = 61;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 100;
  sim.seed = 62;
  const Matrix series = uoi::var::simulate(truth, sim);

  uoi::var::UoiVarOptions options;
  options.schedule = uoi::sched::SchedulePolicy::kCostLpt;
  options.n_selection_bootstraps = 4;
  options.n_estimation_bootstraps = 2;
  options.n_lambdas = 4;
  options.seed = 63;
  options.admm.eps_abs = 1e-8;
  options.admm.eps_rel = 1e-6;
  options.admm.max_iterations = 5000;

  std::vector<std::optional<uoi::var::UoiVarDistributedResult>> clean_results(
      4);
  const auto clean_reports = Cluster::run_collect_reports(4, [&](Comm& comm) {
    clean_results[static_cast<std::size_t>(comm.rank())] =
        uoi::var::uoi_var_distributed(comm, series, options, {2, 1}, 2);
  });

  auto plan = std::make_shared<FaultPlan>();
  plan->hangs.push_back(
      {/*rank=*/3, collective_calls(clean_reports[3].comm) / 3});
  std::vector<std::optional<uoi::var::UoiVarDistributedResult>> faulty_results(
      4);
  const auto faulty_reports = Cluster::run_collect_reports(4, [&](Comm& comm) {
    comm.set_fault_plan(plan);
    comm.set_watchdog({/*timeout_ms=*/300});
    faulty_results[static_cast<std::size_t>(comm.rank())] =
        uoi::var::uoi_var_distributed(comm, series, options, {2, 1}, 2);
  });

  std::uint64_t hangs = 0;
  for (const auto& report : faulty_reports) {
    hangs += report.recovery.hangs_detected;
  }
  EXPECT_GE(hangs, 1u);
  for (const int r : {0, 1, 2}) {
    ASSERT_TRUE(faulty_results[static_cast<std::size_t>(r)].has_value());
    const auto& result = *faulty_results[static_cast<std::size_t>(r)];
    const auto& reference = *clean_results[0];
    EXPECT_EQ(uoi::linalg::max_abs_diff(result.selection_counts,
                                        reference.selection_counts),
              0.0);
    ASSERT_EQ(result.model.candidate_supports.size(),
              reference.model.candidate_supports.size());
    for (std::size_t j = 0; j < reference.model.candidate_supports.size();
         ++j) {
      EXPECT_EQ(result.model.candidate_supports[j],
                reference.model.candidate_supports[j])
          << "candidate support mismatch at lambda index " << j;
    }
    EXPECT_EQ(result.model.support, reference.model.support);
    EXPECT_GE(faulty_reports[static_cast<std::size_t>(r)].recovery.shrinks,
              1u)
        << "rank " << r;
  }
}

TEST(QuorumDegraded, LassoCompletesDegradedAndCheckpointStaysClean) {
  const auto data = lasso_data();
  auto options = lasso_options();
  const uoi::core::UoiParallelLayout layout{2, 1};
  const auto path = (std::filesystem::temp_directory_path() /
                     "uoi_quorum_degraded_ckpt.txt")
                        .string();
  std::filesystem::remove(path);

  const auto clean = run_lasso(4, data, options, layout, nullptr);

  // Exhausted budget + quorum floor, same kill point as the established
  // ExhaustedRecoveryBudgetPropagates test (mid-selection): the run must
  // finish degraded instead of throwing, abandoning the cells that died
  // with the failed rank.
  auto degraded_options = options;
  degraded_options.recovery.max_recovery_attempts = 0;
  degraded_options.recovery.min_bootstrap_quorum = 0.2;
  degraded_options.recovery.checkpoint_path = path;
  degraded_options.recovery.checkpoint_interval = 1;
  auto plan = std::make_shared<FaultPlan>();
  plan->kills.push_back(
      {/*rank=*/1, collective_calls(clean.reports[1].comm) / 3});
  const auto degraded = run_lasso(4, data, degraded_options, layout, plan);

  const auto& reference = degraded.results[0];
  ASSERT_TRUE(reference.degraded);
  EXPECT_GE(reference.achieved_quorum, 0.2);
  EXPECT_LT(reference.achieved_quorum, 1.0);
  EXPECT_GE(reference.lost_cells.size(), 1u);
  for (const int r : {2, 3}) {
    const auto& result = degraded.results[static_cast<std::size_t>(r)];
    // Degraded completion is replicated: every survivor reports the same
    // quorum, the same abandoned cells, and the same (renormalized) model.
    EXPECT_TRUE(result.degraded) << "rank " << r;
    EXPECT_EQ(result.achieved_quorum, reference.achieved_quorum);
    EXPECT_EQ(result.lost_cells, reference.lost_cells);
    EXPECT_EQ(uoi::linalg::max_abs_diff(result.selection_counts,
                                        reference.selection_counts),
              0.0);
    ASSERT_EQ(result.model.candidate_supports.size(),
              reference.model.candidate_supports.size());
    for (std::size_t j = 0; j < reference.model.candidate_supports.size();
         ++j) {
      EXPECT_EQ(result.model.candidate_supports[j],
                reference.model.candidate_supports[j]);
    }
    EXPECT_EQ(result.model.support, reference.model.support);
  }

  // The degraded run must not have persisted its abandoned cells: resuming
  // from its checkpoint with full quorum and no faults must rebuild the
  // missing cells and land bit-identical on the fault-free model.
  auto resume_options = options;
  resume_options.recovery.checkpoint_path = path;
  const auto resumed = run_lasso(4, data, resume_options, layout, nullptr);
  for (std::size_t r = 0; r < 4; ++r) {
    expect_same_model(resumed.results[r], clean.results[0]);
    EXPECT_FALSE(resumed.results[r].degraded);
  }
  std::filesystem::remove(path);
}

TEST(QuorumDegraded, InsufficientQuorumStillThrows) {
  const auto data = lasso_data();
  auto options = lasso_options();
  options.recovery.max_recovery_attempts = 0;
  options.recovery.min_bootstrap_quorum = 0.99;
  const uoi::core::UoiParallelLayout layout{2, 1};

  const auto clean = run_lasso(4, data, options, layout, nullptr);
  auto plan = std::make_shared<FaultPlan>();
  // An early kill: far too few bootstraps committed to satisfy a 0.99
  // quorum, so the degraded path must rethrow like the seed did.
  plan->kills.push_back(
      {/*rank=*/1, collective_calls(clean.reports[1].comm) / 4});
  EXPECT_THROW(Cluster::run(4,
                            [&](Comm& comm) {
                              comm.set_fault_plan(plan);
                              (void)uoi::core::uoi_lasso_distributed(
                                  comm, data.x, data.y, options, layout);
                            }),
               RankFailedError);
}

}  // namespace driver_watchdog_tests
