// Unit tests for uoi::support — RNG determinism and statistical sanity,
// formatting, table rendering, and the error-check macros.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "support/error.hpp"
#include "support/format.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace {

using uoi::support::Xoshiro256;

TEST(Rng, SameSeedSameStream) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(123), b(124);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForTaskIsDeterministic) {
  auto a = Xoshiro256::for_task(7, 1, 2, 3);
  auto b = Xoshiro256::for_task(7, 1, 2, 3);
  EXPECT_EQ(a(), b());
}

TEST(Rng, ForTaskCoordinatesMatter) {
  auto a = Xoshiro256::for_task(7, 1, 2, 3);
  auto b = Xoshiro256::for_task(7, 1, 2, 4);
  auto c = Xoshiro256::for_task(7, 2, 2, 3);
  const auto va = a(), vb = b(), vc = c();
  EXPECT_NE(va, vb);
  EXPECT_NE(va, vc);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const double u = rng.uniform();
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_GE(lo, 0.0);
  EXPECT_LT(hi, 1.0);
  EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
}

TEST(Rng, UniformBelowIsUnbiasedish) {
  Xoshiro256 rng(6);
  constexpr std::uint64_t kBound = 7;
  std::vector<int> histogram(kBound, 0);
  constexpr int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.uniform_below(kBound)];
  for (const int count : histogram) {
    EXPECT_NEAR(count, kDraws / static_cast<int>(kBound), 500);
  }
}

TEST(Rng, UniformBelowEdgeCases) {
  Xoshiro256 rng(6);
  // n == 0 is an empty range: Lemire's rejection threshold divides by n,
  // so the old silent `return 0` masked real caller bugs.
  EXPECT_THROW((void)rng.uniform_below(0), uoi::support::InvalidArgument);
  EXPECT_EQ(rng.uniform_below(1), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.uniform_below(6), 6u);
}

TEST(Rng, NormalMoments) {
  Xoshiro256 rng(7);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Xoshiro256 rng(8);
  for (const double mean : {2.5, 80.0}) {
    double sum = 0.0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i) {
      sum += static_cast<double>(rng.poisson(mean));
    }
    EXPECT_NEAR(sum / kDraws, mean, mean * 0.05);
  }
}

TEST(Rng, PoissonZeroMean) {
  Xoshiro256 rng(8);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, BootstrapIndicesInRange) {
  Xoshiro256 rng(9);
  const auto idx = uoi::support::bootstrap_indices(rng, 50, 200);
  ASSERT_EQ(idx.size(), 200u);
  for (const auto i : idx) EXPECT_LT(i, 50u);
}

TEST(Rng, BootstrapHasRepeats) {
  Xoshiro256 rng(9);
  const auto idx = uoi::support::bootstrap_indices(rng, 100, 100);
  const std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_LT(unique.size(), idx.size());  // overwhelmingly likely
}

TEST(Rng, PermutationIsPermutation) {
  Xoshiro256 rng(10);
  const auto perm = uoi::support::random_permutation(rng, 257);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(Rng, SampleWithoutReplacementDistinctSorted) {
  Xoshiro256 rng(11);
  const auto sample = uoi::support::sample_without_replacement(rng, 100, 30);
  ASSERT_EQ(sample.size(), 30u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto i : sample) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Xoshiro256 rng(11);
  const auto sample = uoi::support::sample_without_replacement(rng, 10, 10);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, TrainTestSplitPartitions) {
  Xoshiro256 rng(12);
  const auto split = uoi::support::train_test_split(rng, 100, 0.25);
  EXPECT_EQ(split.test.size(), 25u);
  EXPECT_EQ(split.train.size(), 75u);
  std::set<std::size_t> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(Rng, TrainTestSplitRejectsBadFraction) {
  Xoshiro256 rng(12);
  EXPECT_THROW((void)uoi::support::train_test_split(rng, 10, 1.0),
               uoi::support::InvalidArgument);
}

TEST(Format, Bytes) {
  EXPECT_EQ(uoi::support::format_bytes(512), "512 B");
  EXPECT_EQ(uoi::support::format_bytes(16ULL << 30), "16 GB");
  EXPECT_EQ(uoi::support::format_bytes(1536), "1.50 KB");
  EXPECT_EQ(uoi::support::format_bytes(8ULL << 40), "8 TB");
}

TEST(Format, Seconds) {
  EXPECT_EQ(uoi::support::format_seconds(1.234), "1.23 s");
  EXPECT_EQ(uoi::support::format_seconds(0.0042), "4.20 ms");
  EXPECT_EQ(uoi::support::format_seconds(7201.0), "2h 00m");
}

TEST(Format, Count) {
  EXPECT_EQ(uoi::support::format_count(139264), "139,264");
  EXPECT_EQ(uoi::support::format_count(42), "42");
  EXPECT_EQ(uoi::support::format_count(1000), "1,000");
}

TEST(Table, RendersAlignedColumns) {
  uoi::support::Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("| name "), std::string::npos);
  EXPECT_NE(text.find("| alpha "), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvQuotesCommas) {
  uoi::support::Table t({"a"});
  t.add_row({"x,y"});
  EXPECT_NE(t.to_csv().find("\"x,y\""), std::string::npos);
}

TEST(Table, RejectsRaggedRow) {
  uoi::support::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), uoi::support::InvalidArgument);
}

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    UOI_CHECK(1 == 2, "math is broken");
    FAIL() << "expected a throw";
  } catch (const uoi::support::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken"),
              std::string::npos);
  }
}

TEST(Stopwatch, MeasuresElapsedTime) {
  uoi::support::Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GT(watch.seconds(), 0.0);
}

TEST(Stopwatch, IntervalTimerAccumulates) {
  uoi::support::IntervalTimer timer;
  timer.start();
  timer.stop();
  timer.start();
  timer.stop();
  EXPECT_GE(timer.total_seconds(), 0.0);
  timer.clear();
  EXPECT_EQ(timer.total_seconds(), 0.0);
}

}  // namespace
