// Tests for Comm::dup, nonblocking allreduce, and the pipelined
// convergence check in the consensus solvers.

#include <gtest/gtest.h>

#include <atomic>

#include "data/synthetic_regression.hpp"
#include "linalg/blas.hpp"
#include "simcluster/cluster.hpp"
#include "perfmodel/emulation.hpp"
#include "simcluster/nonblocking.hpp"
#include "solvers/distributed_admm.hpp"
#include "solvers/lambda_grid.hpp"

namespace {

using uoi::sim::Cluster;
using uoi::sim::Comm;
using uoi::sim::NonblockingContext;
using uoi::sim::ReduceOp;

TEST(Dup, IndependentSynchronizationState) {
  Cluster::run(4, [&](Comm& comm) {
    Comm duplicate = comm.dup();
    EXPECT_EQ(duplicate.rank(), comm.rank());
    EXPECT_EQ(duplicate.size(), comm.size());
    // Collectives on the two communicators do not interfere.
    std::vector<double> a{1.0}, b{2.0};
    comm.allreduce(a, ReduceOp::kSum);
    duplicate.allreduce(b, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(a[0], 4.0);
    EXPECT_DOUBLE_EQ(b[0], 8.0);
  });
}

TEST(Nonblocking, IallreduceProducesTheSameResult) {
  Cluster::run(4, [&](Comm& comm) {
    NonblockingContext nb(comm);
    std::vector<double> async_data(64), sync_data(64);
    for (std::size_t i = 0; i < 64; ++i) {
      async_data[i] = static_cast<double>(comm.rank()) + static_cast<double>(i);
      sync_data[i] = async_data[i];
    }
    auto request = nb.iallreduce(async_data, ReduceOp::kSum);
    comm.allreduce(sync_data, ReduceOp::kSum);  // overlapped collective
    request.wait();
    EXPECT_EQ(uoi::linalg::max_abs_diff(async_data, sync_data), 0.0);
  });
}

TEST(Nonblocking, OverlapsComputation) {
  Cluster::run(2, [&](Comm& comm) {
    NonblockingContext nb(comm);
    std::vector<double> data(1024, 1.0);
    auto request = nb.iallreduce(data, ReduceOp::kSum);
    // Do real work while the reduction is in flight.
    volatile double sink = 0.0;
    for (int i = 0; i < 200000; ++i) sink = sink + 1.0;
    request.wait();
    for (const double v : data) EXPECT_DOUBLE_EQ(v, 2.0);
  });
}

TEST(Nonblocking, TestProbeEventuallyReady) {
  Cluster::run(2, [&](Comm& comm) {
    NonblockingContext nb(comm);
    std::vector<double> data{1.0};
    auto request = nb.iallreduce(data, ReduceOp::kSum);
    while (!request.test()) {
    }
    request.wait();
    EXPECT_DOUBLE_EQ(data[0], 2.0);
  });
}

TEST(Nonblocking, SequentialRequestsOnOneContext) {
  Cluster::run(3, [&](Comm& comm) {
    NonblockingContext nb(comm);
    for (int round = 0; round < 5; ++round) {
      std::vector<double> data{static_cast<double>(round)};
      auto request = nb.iallreduce(data, ReduceOp::kSum);
      request.wait();
      EXPECT_DOUBLE_EQ(data[0], 3.0 * round);
    }
  });
}

TEST(PipelinedAdmm, MatchesBlockingSolution) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = 90;
  spec.n_features = 14;
  spec.support_size = 4;
  spec.seed = 5;
  const auto data = uoi::data::make_regression(spec);
  const double lambda = 0.1 * uoi::solvers::lambda_max(data.x, data.y);

  uoi::solvers::AdmmOptions blocking;
  blocking.eps_abs = 1e-9;
  blocking.eps_rel = 1e-7;
  blocking.max_iterations = 20000;
  auto pipelined = blocking;
  pipelined.pipelined_convergence_check = true;

  Cluster::run(4, [&](Comm& comm) {
    const std::size_t n = data.x.rows();
    const std::size_t begin = n * comm.rank() / comm.size();
    const std::size_t end = n * (comm.rank() + 1) / comm.size();
    const auto local_x = data.x.row_block(begin, end - begin);
    const auto local_y =
        std::span<const double>(data.y).subspan(begin, end - begin);

    const auto blocking_fit = uoi::solvers::distributed_lasso_admm(
        comm, local_x, local_y, lambda, blocking);
    const auto pipelined_fit = uoi::solvers::distributed_lasso_admm(
        comm, local_x, local_y, lambda, pipelined);

    EXPECT_TRUE(blocking_fit.converged);
    EXPECT_TRUE(pipelined_fit.converged);
    EXPECT_LT(uoi::linalg::max_abs_diff(blocking_fit.beta,
                                        pipelined_fit.beta),
              1e-4);
    // The stale check may run at most a few extra iterations.
    EXPECT_LE(pipelined_fit.iterations, blocking_fit.iterations + 4);
  });
}

TEST(PipelinedAdmm, ConvergesAtMaxIterationBoundary) {
  // A budget that ends with a pipelined reduction still in flight must be
  // harvested cleanly.
  uoi::data::RegressionSpec spec;
  spec.n_samples = 40;
  spec.n_features = 8;
  spec.support_size = 2;
  spec.seed = 7;
  const auto data = uoi::data::make_regression(spec);
  uoi::solvers::AdmmOptions options;
  options.pipelined_convergence_check = true;
  options.max_iterations = 3;
  Cluster::run(2, [&](Comm& comm) {
    const std::size_t n = data.x.rows();
    const std::size_t begin = n * comm.rank() / comm.size();
    const std::size_t end = n * (comm.rank() + 1) / comm.size();
    const auto fit = uoi::solvers::distributed_lasso_admm(
        comm, data.x.row_block(begin, end - begin),
        std::span<const double>(data.y).subspan(begin, end - begin), 1.0,
        options);
    EXPECT_LE(fit.iterations, 3u);
  });
}

}  // namespace

namespace emulation_tests {

using uoi::sim::Cluster;
using uoi::sim::Comm;
using uoi::sim::ReduceOp;

TEST(LatencyEmulation, InjectedDelayShowsUpInStats) {
  auto stats = Cluster::run_collect_stats(2, [&](Comm& comm) {
    // A flat 2 ms per allreduce regardless of size.
    comm.set_latency_injector([](uoi::sim::CommCategory category,
                                 std::uint64_t, int) {
      return category == uoi::sim::CommCategory::kAllreduce ? 2e-3 : 0.0;
    });
    std::vector<double> v(8, 1.0);
    for (int i = 0; i < 5; ++i) comm.allreduce(v, ReduceOp::kSum);
  });
  for (const auto& s : stats) {
    EXPECT_GE(s.of(uoi::sim::CommCategory::kAllreduce).seconds, 5 * 2e-3);
  }
}

TEST(LatencyEmulation, ResultsAreUnaffected) {
  Cluster::run(3, [&](Comm& comm) {
    comm.set_latency_injector(uoi::perf::make_profile_injector(
        uoi::perf::knl_profile(), /*emulated_cores=*/4352,
        /*time_scale=*/1e-3));
    std::vector<double> v{static_cast<double>(comm.rank())};
    comm.allreduce(v, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(v[0], 3.0);
  });
}

TEST(LatencyEmulation, ProfileInjectorScalesWithEmulatedCores) {
  const auto injector_small = uoi::perf::make_profile_injector(
      uoi::perf::knl_profile(), 68, 1.0);
  const auto injector_large = uoi::perf::make_profile_injector(
      uoi::perf::knl_profile(), 139264, 1.0);
  const double small = injector_small(uoi::sim::CommCategory::kAllreduce,
                                      160000, 8);
  const double large = injector_large(uoi::sim::CommCategory::kAllreduce,
                                      160000, 8);
  EXPECT_GT(large, small);
  EXPECT_GT(small, 0.0);
}

}  // namespace emulation_tests
