// Tests for the SAFE / strong-rule screening layer: working-set rules,
// KKT re-admission on adversarial correlated designs, byte-identity of the
// canonical chain across screening modes (serial and distributed), and
// the reduced consensus payload accounting.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "data/synthetic_regression.hpp"
#include "linalg/blas.hpp"
#include "simcluster/cluster.hpp"
#include "solvers/lambda_grid.hpp"
#include "solvers/screening.hpp"

namespace {

using uoi::linalg::ConstMatrixView;
using uoi::linalg::Matrix;
using uoi::linalg::Vector;
using uoi::solvers::AdmmOptions;
using uoi::solvers::ScreenMode;
using uoi::solvers::ScreenOptions;
using uoi::solvers::ScreenedLassoChain;

uoi::data::RegressionDataset sparse_problem(std::uint64_t seed = 7,
                                            std::size_t n = 80,
                                            std::size_t p = 48,
                                            double correlation = 0.0) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = n;
  spec.n_features = p;
  spec.support_size = 5;
  spec.noise_stddev = 0.2;
  spec.feature_correlation = correlation;
  spec.seed = seed;
  return uoi::data::make_regression(spec);
}

std::vector<double> descending_grid(ConstMatrixView x,
                                    std::span<const double> y, std::size_t q,
                                    double min_ratio) {
  const double hi = uoi::solvers::lambda_max(x, y);
  return uoi::solvers::log_spaced_lambdas(hi, min_ratio, q);
}

/// |x_j'(y - X beta)| <= lambda (+tol) everywhere — optimality of the
/// final beta regardless of which columns were screened away.
void expect_kkt(ConstMatrixView x, std::span<const double> y,
                std::span<const double> beta, double lambda, double tol) {
  Vector residual(y.begin(), y.end());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    residual[r] -= uoi::linalg::dot(x.row(r), beta);
  }
  Vector grad(x.cols(), 0.0);
  uoi::linalg::gemv_transposed(1.0, x, residual, 0.0, grad);
  // The slack scales with lambda: ADMM's stopping test bounds the iterate
  // error, which enters the gradient proportionally to the data scale.
  const double slack = tol * std::max(1.0, lambda);
  for (std::size_t j = 0; j < x.cols(); ++j) {
    EXPECT_LE(std::abs(grad[j]), lambda + slack) << "coordinate " << j;
  }
}

AdmmOptions tight_admm() {
  AdmmOptions options;
  options.eps_abs = 1e-9;
  options.eps_rel = 1e-7;
  options.max_iterations = 20000;
  return options;
}

ScreenOptions screen_with(ScreenMode mode) {
  ScreenOptions screen;
  screen.mode = mode;
  return screen;
}

TEST(ScreenMode, EnvResolution) {
  // Explicit modes win over the environment.
  setenv("UOI_SCREEN", "off", 1);
  EXPECT_EQ(uoi::solvers::resolve_screen_mode(ScreenMode::kSafe),
            ScreenMode::kSafe);
  EXPECT_EQ(uoi::solvers::resolve_screen_mode(ScreenMode::kAuto),
            ScreenMode::kOff);
  setenv("UOI_SCREEN", "safe", 1);
  EXPECT_EQ(uoi::solvers::resolve_screen_mode(ScreenMode::kAuto),
            ScreenMode::kSafe);
  setenv("UOI_SCREEN", "bogus", 1);
  EXPECT_EQ(uoi::solvers::resolve_screen_mode(ScreenMode::kAuto),
            ScreenMode::kStrong);
  unsetenv("UOI_SCREEN");
  EXPECT_EQ(uoi::solvers::resolve_screen_mode(ScreenMode::kAuto),
            ScreenMode::kStrong);
  EXPECT_STREQ(uoi::solvers::screen_mode_name(ScreenMode::kStrong), "strong");
}

TEST(Screening, WorkingSetRulesScreenInactiveColumns) {
  const auto data = sparse_problem();
  const auto lambdas = descending_grid(data.x, data.y, 8, 0.05);
  for (const ScreenMode mode : {ScreenMode::kSafe, ScreenMode::kStrong}) {
    ScreenedLassoChain chain(data.x, data.y, tight_admm(), screen_with(mode));
    for (const double lambda : lambdas) (void)chain.solve(lambda);
    const auto& stats = chain.stats();
    EXPECT_EQ(stats.lambdas, lambdas.size());
    EXPECT_EQ(stats.survivors + stats.gram_cols_saved, stats.total_columns);
    // On a clean sparse problem the strong rule must discard a large
    // fraction of the Gram columns (this is the entire point of the
    // layer); basic SAFE is certified but weak once lambda drops well
    // below lambda_max, so it only has to save something.
    if (mode == ScreenMode::kStrong) {
      EXPECT_GT(stats.gram_cols_saved, stats.total_columns / 4);
    } else {
      EXPECT_GT(stats.gram_cols_saved, 0u);
    }
  }
}

TEST(Screening, ModesAreByteIdenticalOnChain) {
  const auto data = sparse_problem();
  const auto lambdas = descending_grid(data.x, data.y, 6, 0.05);
  std::vector<std::vector<Vector>> betas;
  for (const ScreenMode mode :
       {ScreenMode::kOff, ScreenMode::kSafe, ScreenMode::kStrong}) {
    ScreenedLassoChain chain(data.x, data.y, tight_admm(), screen_with(mode));
    std::vector<Vector> path;
    for (const double lambda : lambdas) {
      auto fit = chain.solve(lambda);
      expect_kkt(data.x, data.y, fit.beta, lambda, 1e-5);
      path.push_back(std::move(fit.beta));
    }
    betas.push_back(std::move(path));
  }
  for (std::size_t m = 1; m < betas.size(); ++m) {
    for (std::size_t i = 0; i < lambdas.size(); ++i) {
      ASSERT_EQ(betas[0][i].size(), betas[m][i].size());
      for (std::size_t j = 0; j < betas[0][i].size(); ++j) {
        EXPECT_EQ(betas[0][i][j], betas[m][i][j])
            << "mode " << m << " lambda " << i << " coord " << j;
      }
    }
  }
}

TEST(Screening, ElasticNetByteIdenticalAcrossModes) {
  const auto data = sparse_problem(11);
  const auto lambdas = descending_grid(data.x, data.y, 5, 0.1);
  const double l1_ratio = 0.7;
  std::vector<std::vector<Vector>> betas;
  for (const ScreenMode mode : {ScreenMode::kOff, ScreenMode::kStrong}) {
    ScreenedLassoChain chain(data.x, data.y, tight_admm(), screen_with(mode));
    std::vector<Vector> path;
    for (const double lambda : lambdas) {
      auto fit = chain.solve(lambda * l1_ratio, lambda * (1.0 - l1_ratio));
      path.push_back(std::move(fit.beta));
    }
    betas.push_back(std::move(path));
  }
  for (std::size_t i = 0; i < lambdas.size(); ++i) {
    for (std::size_t j = 0; j < betas[0][i].size(); ++j) {
      EXPECT_EQ(betas[0][i][j], betas[1][i][j])
          << "lambda " << i << " coord " << j;
    }
  }
}

TEST(Screening, ChainResetsWhenLambdaJumpsUp) {
  // The elastic-net distributed grid walks (ratio, lambda) cells where
  // lambda jumps back up at each ratio boundary; the chain must restart
  // its sequential state instead of applying a bogus strong rule.
  const auto data = sparse_problem(13);
  const auto lambdas = descending_grid(data.x, data.y, 4, 0.1);
  ScreenedLassoChain chain(data.x, data.y, tight_admm(),
                           screen_with(ScreenMode::kStrong));
  for (const double lambda : lambdas) (void)chain.solve(lambda);
  // Jump back to the top of the grid: results must match a fresh chain.
  ScreenedLassoChain fresh(data.x, data.y, tight_admm(),
                           screen_with(ScreenMode::kStrong));
  for (const double lambda : lambdas) {
    const auto restarted = chain.solve(lambda);
    const auto cold = fresh.solve(lambda);
    for (std::size_t j = 0; j < cold.beta.size(); ++j) {
      EXPECT_EQ(restarted.beta[j], cold.beta[j]) << "coord " << j;
    }
  }
}

TEST(Screening, KktReAdmissionOnAdversarialCorrelatedDesign) {
  // Heavily correlated columns with a coarse lambda grid make the strong
  // rule discard active columns; the KKT loop must re-admit them and the
  // final beta must still satisfy optimality everywhere.
  const auto data = sparse_problem(17, 100, 64, /*correlation=*/0.95);
  const auto lambdas = descending_grid(data.x, data.y, 4, 0.01);
  ScreenedLassoChain chain(data.x, data.y, tight_admm(),
                           screen_with(ScreenMode::kStrong));
  for (const double lambda : lambdas) {
    const auto fit = chain.solve(lambda);
    expect_kkt(data.x, data.y, fit.beta, lambda, 1e-5);
  }
  const auto& stats = chain.stats();
  // Violations imply rounds, and both are bounded by the round cap.
  EXPECT_EQ(stats.kkt_violations == 0, stats.kkt_rounds == 0);
  EXPECT_LE(stats.kkt_rounds,
            stats.lambdas * ScreenOptions{}.max_kkt_rounds);
}

TEST(Screening, SafeRuleNeverViolatesKkt) {
  // SAFE is a certificate: discarded columns are provably inactive, so
  // the post-check must never find a violator.
  const auto data = sparse_problem(19, 100, 64, /*correlation=*/0.9);
  const auto lambdas = descending_grid(data.x, data.y, 6, 0.02);
  ScreenedLassoChain chain(data.x, data.y, tight_admm(),
                           screen_with(ScreenMode::kSafe));
  for (const double lambda : lambdas) (void)chain.solve(lambda);
  EXPECT_EQ(chain.stats().kkt_violations, 0u);
}

TEST(Screening, LambdaMaxGivesEmptySolution) {
  const auto data = sparse_problem(23);
  const double lambda = uoi::solvers::lambda_max(data.x, data.y);
  for (const ScreenMode mode :
       {ScreenMode::kOff, ScreenMode::kSafe, ScreenMode::kStrong}) {
    ScreenedLassoChain chain(data.x, data.y, tight_admm(), screen_with(mode));
    const auto fit = chain.solve(lambda * 1.0000001);
    for (const double v : fit.beta) EXPECT_EQ(v, 0.0);
  }
}

TEST(ScreeningDistributed, ModesAreByteIdenticalAndShrinkPayload) {
  const auto data = sparse_problem(29, 96, 64);
  const auto lambdas = descending_grid(data.x, data.y, 6, 0.05);
  const AdmmOptions admm = tight_admm();

  std::vector<std::vector<Vector>> betas;
  std::vector<std::uint64_t> bytes;
  for (const ScreenMode mode :
       {ScreenMode::kOff, ScreenMode::kStrong, ScreenMode::kSafe}) {
    std::vector<Vector> path;
    std::uint64_t mode_bytes = 0;
    uoi::sim::Cluster::run(4, [&](uoi::sim::Comm& comm) {
      const std::size_t n = data.x.rows();
      const std::size_t begin = n * comm.rank() / comm.size();
      const std::size_t end = n * (comm.rank() + 1) / comm.size();
      const auto local_x = data.x.row_block(begin, end - begin);
      const std::span<const double> local_y =
          std::span<const double>(data.y).subspan(begin, end - begin);
      const auto shared =
          uoi::solvers::build_screen_inputs(comm, local_x, local_y);
      uoi::solvers::DistributedScreenedLassoChain chain(
          comm, local_x, local_y, shared, admm, screen_with(mode));
      for (const double lambda : lambdas) {
        auto fit = chain.solve(lambda);
        EXPECT_TRUE(fit.converged);
        if (comm.rank() == 0) {
          mode_bytes += fit.allreduce_bytes;
          path.push_back(std::move(fit.beta));
        }
      }
    });
    betas.push_back(std::move(path));
    bytes.push_back(mode_bytes);
  }
  for (std::size_t m = 1; m < betas.size(); ++m) {
    ASSERT_EQ(betas[0].size(), betas[m].size());
    for (std::size_t i = 0; i < betas[0].size(); ++i) {
      for (std::size_t j = 0; j < betas[0][i].size(); ++j) {
        EXPECT_EQ(betas[0][i][j], betas[m][i][j])
            << "mode " << m << " lambda " << i << " coord " << j;
      }
    }
  }
  // Active-set consensus: screened payloads ((|W|+3) doubles per round,
  // plus the KKT checks) must move fewer bytes than the full-p chain.
  EXPECT_LT(bytes[1], bytes[0]);
}

TEST(ScreeningDistributed, SharedInputsMatchSerialQuantities) {
  const auto data = sparse_problem(31, 64, 32);
  uoi::sim::Cluster::run(3, [&](uoi::sim::Comm& comm) {
    const std::size_t n = data.x.rows();
    const std::size_t begin = n * comm.rank() / comm.size();
    const std::size_t end = n * (comm.rank() + 1) / comm.size();
    const auto shared = uoi::solvers::build_screen_inputs(
        comm, data.x.row_block(begin, end - begin),
        std::span<const double>(data.y).subspan(begin, end - begin));
    Vector atb(data.x.cols(), 0.0);
    uoi::linalg::gemv_transposed(1.0, data.x, data.y, 0.0, atb);
    for (std::size_t j = 0; j < atb.size(); ++j) {
      EXPECT_NEAR(shared.atb[j], atb[j], 1e-9);
    }
    EXPECT_NEAR(shared.b_norm_sq, uoi::linalg::nrm2_squared(data.y), 1e-9);
    EXPECT_NEAR(shared.lambda_max,
                uoi::solvers::lambda_max(data.x, data.y), 1e-9);
  });
}

}  // namespace
