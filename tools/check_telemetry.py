#!/usr/bin/env python3
"""Validate a --live-telemetry JSON-lines stream ("uoi-telemetry-v1").

Checks every line is a standalone JSON object of the documented schema:
monotone seq, non-decreasing t, per-rank buckets with non-negative
cumulative seconds that never decrease across lines, and well-formed
metric entries. Used by the CI smoke leg after a distributed run with
--live-telemetry.

Usage:
  check_telemetry.py TELEMETRY.jsonl [--min-lines N] [--expect-ranks P]

Exit status: 0 ok, 1 validation failure, 2 usage error.
"""

import argparse
import json
import sys

SCHEMA = "uoi-telemetry-v1"
TOP_KEYS = ("schema", "seq", "t", "interval_ms", "dropped_lines", "ranks",
            "metrics")
BUCKET_KEYS = ("calls", "seconds", "delta_seconds")


def fail(lineno, msg):
    print(f"FAIL: line {lineno}: {msg}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="telemetry JSON-lines file")
    parser.add_argument("--min-lines", type=int, default=1,
                        help="require at least this many lines (default 1)")
    parser.add_argument("--expect-ranks", type=int, default=0,
                        help="require the final line to cover at least this "
                             "many ranks (default 0 = no check)")
    args = parser.parse_args()

    try:
        with open(args.path, "r", encoding="utf-8") as f:
            raw_lines = [l for l in f.read().splitlines() if l.strip()]
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if len(raw_lines) < args.min_lines:
        print(f"FAIL: {len(raw_lines)} line(s), expected >= {args.min_lines}",
              file=sys.stderr)
        return 1

    prev_seq = -1
    prev_t = -1.0
    prev_seconds = {}  # (rank, bucket) -> cumulative seconds
    last = None
    for lineno, raw in enumerate(raw_lines, 1):
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as exc:
            return fail(lineno, f"not valid JSON ({exc})")
        for key in TOP_KEYS:
            if key not in doc:
                return fail(lineno, f"missing key '{key}'")
        if doc["schema"] != SCHEMA:
            return fail(lineno, f"schema '{doc['schema']}' != '{SCHEMA}'")
        if not isinstance(doc["seq"], int) or doc["seq"] <= prev_seq:
            return fail(lineno, f"seq {doc['seq']} not monotone "
                                f"(previous {prev_seq})")
        prev_seq = doc["seq"]
        if not isinstance(doc["t"], (int, float)) or doc["t"] < prev_t:
            return fail(lineno, f"t {doc['t']} decreased (previous {prev_t})")
        prev_t = doc["t"]
        if not isinstance(doc["interval_ms"], int) or doc["interval_ms"] <= 0:
            return fail(lineno, f"bad interval_ms {doc['interval_ms']}")
        if not isinstance(doc["ranks"], list):
            return fail(lineno, "ranks is not an array")
        for entry in doc["ranks"]:
            if not isinstance(entry.get("rank"), int):
                return fail(lineno, "rank entry missing integer 'rank'")
            buckets = entry.get("buckets")
            if not isinstance(buckets, dict):
                return fail(lineno, "rank entry missing 'buckets' object")
            for name, bucket in buckets.items():
                for key in BUCKET_KEYS:
                    if not isinstance(bucket.get(key), (int, float)):
                        return fail(lineno,
                                    f"bucket '{name}' missing number '{key}'")
                if bucket["seconds"] < 0 or bucket["delta_seconds"] < 0:
                    return fail(lineno, f"bucket '{name}' negative seconds")
                cum_key = (entry["rank"], name)
                if bucket["seconds"] < prev_seconds.get(cum_key, 0.0) - 1e-12:
                    return fail(lineno,
                                f"bucket '{name}' rank {entry['rank']} "
                                f"cumulative seconds decreased")
                prev_seconds[cum_key] = bucket["seconds"]
        if not isinstance(doc["metrics"], list):
            return fail(lineno, "metrics is not an array")
        for metric in doc["metrics"]:
            if (not isinstance(metric.get("rank"), int)
                    or not isinstance(metric.get("name"), str)
                    or not isinstance(metric.get("value"), (int, float))):
                return fail(lineno, f"malformed metric entry {metric}")
        last = doc

    if args.expect_ranks > 0 and len(last["ranks"]) < args.expect_ranks:
        print(f"FAIL: final line covers {len(last['ranks'])} rank(s), "
              f"expected >= {args.expect_ranks}", file=sys.stderr)
        return 1

    print(f"ok: {len(raw_lines)} line(s), final seq {last['seq']}, "
          f"{len(last['ranks'])} rank(s), {len(last['metrics'])} metric(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
