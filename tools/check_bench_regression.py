#!/usr/bin/env python3
"""Diff BENCH_<figure>.json telemetry against a committed baseline.

Every bench_fig* binary writes machine-readable telemetry (schema
"uoi-bench-v1", emitted by uoi::bench::BenchReport in bench/bench_common.hpp)
into $UOI_BENCH_DIR. This gate compares a fresh run against the baselines in
bench/baselines/ and fails on wall-time or bucket regressions beyond a
relative tolerance.

Timings below --floor seconds in BOTH runs are skipped: at bench scale many
buckets are sub-millisecond and pure scheduler noise, and absolute times are
only comparable on similar hardware anyway. Schema and structural problems
(missing figures, malformed JSON, missing keys) always fail, even in
--informational mode, because they indicate a broken emitter rather than a
slow machine.

Usage:
  check_bench_regression.py --baseline bench/baselines --current out/bench \
      [--tolerance 0.25] [--floor 0.05] [--informational]

Exit status: 0 ok, 1 regression (or structural failure), 2 usage error.
"""

import argparse
import glob
import json
import os
import sys

REQUIRED_TOP_KEYS = ("schema", "figure", "config", "wall_seconds", "buckets",
                     "imbalance", "percentiles")
BUCKET_KEYS = ("computation", "communication", "distribution", "data_io")
SCHEMA = "uoi-bench-v1"


def load_reports(directory):
    reports = {}
    errors = []
    pattern = os.path.join(directory, "BENCH_*.json")
    for path in sorted(glob.glob(pattern)):
        try:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            errors.append(f"{path}: unreadable ({exc})")
            continue
        problems = validate(doc)
        if problems:
            errors.extend(f"{path}: {p}" for p in problems)
            continue
        reports[doc["figure"]] = doc
    return reports, errors


def validate(doc):
    problems = []
    for key in REQUIRED_TOP_KEYS:
        if key not in doc:
            problems.append(f"missing key '{key}'")
    if problems:
        return problems
    if doc["schema"] != SCHEMA:
        problems.append(f"schema '{doc['schema']}' != '{SCHEMA}'")
    for key in BUCKET_KEYS:
        if key not in doc["buckets"]:
            problems.append(f"buckets missing '{key}'")
        elif not isinstance(doc["buckets"][key], (int, float)):
            problems.append(f"buckets['{key}'] is not a number")
    if not isinstance(doc["wall_seconds"], (int, float)):
        problems.append("wall_seconds is not a number")
    if not isinstance(doc["config"], dict):
        problems.append("config is not an object")
    return problems


def compare_metric(figure, name, base, cur, tolerance, floor):
    """Returns (verdict, message). verdict: None=skip/ok, 'regression'."""
    if base < floor and cur < floor:
        return None, None
    if base <= 0.0:
        return None, None  # no meaningful ratio
    ratio = cur / base
    if ratio > 1.0 + tolerance:
        return ("regression",
                f"{figure}: {name} {base:.4f}s -> {cur:.4f}s "
                f"({ratio:.2f}x, tolerance {1.0 + tolerance:.2f}x)")
    if ratio < 1.0 - tolerance:
        return (None,
                f"{figure}: {name} improved {base:.4f}s -> {cur:.4f}s "
                f"({ratio:.2f}x)")
    return None, None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="directory holding baseline BENCH_*.json files")
    parser.add_argument("--current", required=True,
                        help="directory holding the fresh BENCH_*.json files")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative slowdown allowed (default 0.25 = +25%%)")
    parser.add_argument("--floor", type=float, default=0.05,
                        help="ignore timings below this many seconds in both "
                             "runs (default 0.05)")
    parser.add_argument("--informational", action="store_true",
                        help="report regressions but exit 0 for them "
                             "(structural failures still exit 1)")
    parser.add_argument("--subset", action="store_true",
                        help="the current run intentionally covers only some "
                             "figures; baseline figures absent from --current "
                             "are noted instead of failing structurally")
    args = parser.parse_args()

    for d in (args.baseline, args.current):
        if not os.path.isdir(d):
            print(f"error: not a directory: {d}", file=sys.stderr)
            return 2

    baseline, base_errors = load_reports(args.baseline)
    current, cur_errors = load_reports(args.current)

    structural = list(base_errors) + list(cur_errors)
    if not baseline:
        structural.append(f"no valid BENCH_*.json under {args.baseline}")

    regressions = []
    notes = []
    for figure, base in sorted(baseline.items()):
        cur = current.get(figure)
        if cur is None:
            msg = (f"{figure}: present in baseline but missing "
                   f"from {args.current}")
            if args.subset:
                notes.append(f"{msg} (allowed by --subset)")
            else:
                structural.append(msg)
            continue
        verdict, msg = compare_metric(figure, "wall", base["wall_seconds"],
                                      cur["wall_seconds"], args.tolerance,
                                      args.floor)
        if verdict:
            regressions.append(msg)
        elif msg:
            notes.append(msg)
        for key in BUCKET_KEYS:
            verdict, msg = compare_metric(figure, f"buckets.{key}",
                                          base["buckets"][key],
                                          cur["buckets"][key],
                                          args.tolerance, args.floor)
            if verdict:
                regressions.append(msg)
            elif msg:
                notes.append(msg)

    # Live-telemetry emitter gate: figures exporting
    # telemetry_overhead_pct (fig6) must keep the emitter below 2% of
    # wall. Runs shorter than --floor in the telemetry-off configuration
    # are pure noise at that percentage and are skipped like any other
    # sub-floor timing; the bitwise-identity flag is structural either
    # way (a perturbed result means the emitter wrote state it must only
    # read).
    for figure, cur in sorted(current.items()):
        config = cur.get("config", {})
        if "telemetry_bitwise" in config and config["telemetry_bitwise"] != 1:
            structural.append(
                f"{figure}: telemetry run was not bit-identical "
                f"(telemetry_bitwise={config['telemetry_bitwise']})")
        overhead = config.get("telemetry_overhead_pct")
        wall_off = config.get("telemetry_wall_off_seconds", 0.0)
        if overhead is None:
            continue
        if wall_off < args.floor:
            notes.append(f"{figure}: telemetry overhead {overhead:.2f}% "
                         f"unchecked (off-run wall {wall_off:.3f}s below "
                         f"floor {args.floor}s)")
        elif overhead > 2.0:
            regressions.append(
                f"{figure}: telemetry emitter overhead {overhead:.2f}% "
                f"exceeds the 2% gate (off-run wall {wall_off:.3f}s)")

    # Screening / SIMD fast-path gates (fig16). The bitwise flags are
    # structural: a screened or vectorized solve that changes the model
    # violates the canonical two-stage / fixed-reduction-tree contracts
    # regardless of machine speed. The speedup gate is a perf regression
    # (machine-dependent, so it respects --informational).
    for figure, cur in sorted(current.items()):
        config = cur.get("config", {})
        for flag, contract in (
                ("screen_bitwise", "screened solves changed the model"),
                ("simd_bitwise", "dispatched SIMD kernels diverged "
                                 "from scalar")):
            if flag in config and config[flag] != 1:
                structural.append(
                    f"{figure}: {contract} ({flag}={config[flag]})")
        speedup = config.get("screen_speedup")
        if speedup is not None and speedup < 3.0:
            regressions.append(
                f"{figure}: screening selection-compute speedup "
                f"{speedup:.2f}x below the 3x gate")

    for figure in sorted(set(current) - set(baseline)):
        notes.append(f"{figure}: new figure (no baseline yet)")

    compared = sorted(set(baseline) & set(current))
    print(f"compared {len(compared)} figure(s) "
          f"(tolerance +{args.tolerance * 100:.0f}%, floor {args.floor}s)")
    for msg in notes:
        print(f"note: {msg}")
    for msg in structural:
        print(f"FAIL (structural): {msg}")
    for msg in regressions:
        print(f"FAIL (regression): {msg}")

    if structural:
        return 1
    if regressions:
        if args.informational:
            print("informational mode: regressions reported but not fatal")
            return 0
        return 1
    print("ok: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
