#!/usr/bin/env sh
# Build the suite under ThreadSanitizer and run the concurrency-sensitive
# tests. The simulated SPMD cluster runs ranks as std::threads, so TSan
# covers every collective, one-sided window epoch, and fault-recovery path
# that real MPI would exercise across processes.
#
#   tools/run_tsan.sh [build-dir] [ctest -R regex]
#
# Defaults: build-tsan/ next to the source tree; runs every test carrying
# the `tsan` ctest label (the suites with real cross-thread traffic —
# declared in tests/CMakeLists.txt, no name regex to keep in sync). Pass a
# second argument to select by -R regex instead ('.' = everything, slow
# under TSan).
set -eu

src_dir=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"${src_dir}/build-tsan"}
regex=${2:-}

cmake -S "${src_dir}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DUOI_SANITIZE=thread
cmake --build "${build_dir}" -j "$(nproc 2>/dev/null || echo 4)"

if [ -n "${regex}" ]; then
  selector="-R ${regex}"
else
  selector="-L tsan"
fi

# halt_on_error=0: collect every report in one pass instead of dying at the
# first; second_deadlock_stack aids the barrier-vs-window lock ordering.
# shellcheck disable=SC2086  # selector is intentionally two words
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=0 second_deadlock_stack=1}" \
  ctest --test-dir "${build_dir}" ${selector} --output-on-failure
