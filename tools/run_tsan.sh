#!/usr/bin/env sh
# Build the suite under ThreadSanitizer and run the concurrency-sensitive
# tests. The simulated SPMD cluster runs ranks as std::threads, so TSan
# covers every collective, one-sided window epoch, and fault-recovery path
# that real MPI would exercise across processes.
#
#   tools/run_tsan.sh [build-dir] [ctest -R regex]
#
# Defaults: build-tsan/ next to the source tree; runs the simcluster,
# robustness, p2p, and nonblocking suites (the ones with real cross-thread
# traffic). Pass a regex of '.' to run everything (slow under TSan).
set -eu

src_dir=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"${src_dir}/build-tsan"}
regex=${2:-"simcluster|robustness|p2p|nonblocking"}

cmake -S "${src_dir}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DUOI_SANITIZE=thread
cmake --build "${build_dir}" -j "$(nproc 2>/dev/null || echo 4)"

# halt_on_error=0: collect every report in one pass instead of dying at the
# first; second_deadlock_stack aids the barrier-vs-window lock ordering.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=0 second_deadlock_stack=1}" \
  ctest --test-dir "${build_dir}" -R "${regex}" --output-on-failure
