// uoi — command-line front end to the library.
//
//   uoi lasso    --csv data.csv [options]   sparse regression (last column
//                                           of the CSV is the response)
//   uoi logistic --csv data.csv [options]   sparse classification (last
//                                           column holds 0/1 labels)
//   uoi var      --csv series.csv [options] Granger network from a series
//                                           (columns = variables)
//   uoi granger  --csv series.csv [--order D]
//                                           classical pairwise Granger
//                                           F-tests (econometric baseline)
//   uoi order    --csv series.csv [--max-order D]
//                                           VAR order selection (AIC/BIC/HQ)
//   uoi demo                                synthetic end-to-end showcase
//   uoi faultdemo                           fault-injected distributed run:
//                                           kill a rank mid-selection, watch
//                                           the survivors shrink + recover
//   uoi analyze TRACE.json [TRACE2.json...] post-hoc run-report analytics
//                                           (load imbalance, exact critical
//                                           path over the cross-rank event
//                                           DAG, latency percentiles) from
//                                           one or more Chrome-trace files;
//                                           per-rank files are merged on the
//                                           shared collective stamps
//   uoi top TELEMETRY.jsonl [--follow]      render live-telemetry progress
//                                           (per-rank buckets, progress bar,
//                                           cache hit rate, health) from a
//                                           --live-telemetry stream
//   uoi launch --ranks N [--backend socket] [--dir D] -- CMD [ARGS...]
//                                           run CMD once per rank as real OS
//                                           processes wired together by the
//                                           socket transport (rank 0 owns the
//                                           terminal; ranks > 0 log to
//                                           D/rank-<r>.log); --backend thread
//                                           just execs CMD in place
//
// Common options:
//   --b1 N / --b2 N       selection / estimation bootstraps
//   --lambdas Q           lambda grid size
//   --seed S              master seed
//   --checkpoint-path F   persist selection progress to F and resume from it
//   --trace-json F        write a Chrome-trace-event JSON of the run to F
//                         (open in Perfetto / chrome://tracing; pid = rank)
//   --report-json F       write run-report analytics (run_report.json
//                         schema) and print the text summary
//   --live-telemetry S    stream "uoi-telemetry-v1" JSON lines to S (a file
//                         path or unix:/path socket) every
//                         $UOI_TELEMETRY_INTERVAL_MS ms (default 500) while
//                         the command runs; view with `uoi top S`
// analyze-specific:
//   --what-if CAT=FACTOR  replay the event DAG with category CAT's span
//                         durations scaled by FACTOR (repeatable; e.g.
//                         --what-if communication=0 predicts the comm-
//                         avoidance headroom, cross-checked against the
//                         exact critical path's communication share)
// var-specific:
//   --order D             VAR order (default 1)
//   --tolerance T         edge magnitude threshold (default 0.01)
//   --dot FILE            write the Graphviz network
//   --json FILE           write the network as JSON
//   --save-model FILE     write the fitted model (model_io format)
//   --forecast H          print an H-step forecast
// faultdemo-specific:
//   --ranks P             cluster size (default 4)
//   --transport B         communicator backend: "thread" (default; ranks are
//                         threads of this process) or "socket" (the command
//                         re-launches itself as --ranks real processes over
//                         the Unix-socket transport, so an injected fault
//                         SIGKILLs an actual process)
//   --inject-fault R@S    kill global rank R at its S-th collective
//   --hang R@S            hang global rank R at its S-th collective; needs
//                         the watchdog armed (--comm-timeout-ms) so the
//                         survivors can detect the stalled rank and recover
//   --comm-timeout-ms MS  arm the per-rank progress watchdog: a rank whose
//                         progress epoch stays flat for MS milliseconds at a
//                         synchronization point is declared failed
//                         (equivalent to $UOI_COMM_TIMEOUT_MS)
//   --min-bootstrap-quorum F
//                         allow quorum-degraded completion: when the
//                         recovery budget is exhausted mid-selection, finish
//                         anyway if >= F of the selection bootstraps
//                         completed at every lambda (default 1.0 = off)
//   --max-retries N       one-sided retry budget (default 4)
//   --max-recovery-attempts N
//                         shrink-and-resume budget for rank failures
//                         (default 1); 0 + --min-bootstrap-quorum shows
//                         quorum-degraded completion

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/metrics.hpp"
#include "core/uoi_lasso.hpp"
#include "core/uoi_lasso_distributed.hpp"
#include "core/uoi_logistic.hpp"
#include "solvers/logistic.hpp"
#include "data/synthetic_regression.hpp"
#include "data/synthetic_var.hpp"
#include "io/csv.hpp"
#include "linalg/simd.hpp"
#include "report/run_report.hpp"
#include "solvers/screening.hpp"
#include "report/trace_reader.hpp"
#include "sched/schedule_policy.hpp"
#include "simcluster/cluster.hpp"
#include "support/format.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "support/telemetry.hpp"
#include "support/trace.hpp"
#include "transport/launch.hpp"
#include "transport/socket_runtime.hpp"
#include "var/granger.hpp"
#include "var/granger_test.hpp"
#include "var/model_io.hpp"
#include "var/order_selection.hpp"
#include "var/uoi_var.hpp"

namespace {

struct Args {
  std::string command;
  std::string csv_path;
  std::string dot_path;
  std::string json_path;
  std::string model_path;
  std::size_t b1 = 20;
  std::size_t b2 = 10;
  std::size_t n_lambdas = 16;
  std::size_t order = 1;
  std::size_t max_order = 4;
  std::size_t forecast_horizon = 0;
  double tolerance = 0.01;
  std::uint64_t seed = 20200518;
  std::string checkpoint_path;
  std::string trace_json_path;  ///< Chrome-trace output, empty = no trace
  std::string report_json_path;  ///< run-report output, empty = no report
  /// Positional inputs: trace files for `uoi analyze` (merged when more
  /// than one), the telemetry file for `uoi top`.
  std::vector<std::string> inputs;
  std::string live_telemetry;  ///< telemetry sink, empty = off
  std::vector<std::string> what_if;  ///< "CATEGORY=FACTOR" replay scales
  bool top_follow = false;  ///< `uoi top --follow`: keep tailing
  std::string inject_fault;  ///< "rank@step", empty = no fault
  std::string hang_fault;    ///< "rank@step" hang injection, empty = none
  long comm_timeout_ms = -1;  ///< watchdog timeout; < 0 defers to env
  double min_bootstrap_quorum = 1.0;  ///< degraded-completion floor
  int max_retries = 4;
  int max_recovery_attempts = 1;  ///< shrink-and-resume budget
  int ranks = 4;
  std::string transport;  ///< "thread" (default) or "socket"
  /// kAuto defers to $UOI_SCHED_POLICY (default cost_lpt).
  uoi::sched::SchedulePolicy sched_policy = uoi::sched::SchedulePolicy::kAuto;
  /// < 0 defers to $UOI_SOLVER_CACHE_MB (default 256); 0 disables.
  long solver_cache_mb = -1;
  /// ADMM consensus interval k; 0 defers to $UOI_CONSENSUS_INTERVAL
  /// (default 1 = consensus allreduce every iteration).
  std::size_t consensus_interval = 0;
  /// kAuto defers to $UOI_SCREEN (default strong); every mode emits
  /// byte-identical models.
  uoi::solvers::ScreenMode screen_mode = uoi::solvers::ScreenMode::kAuto;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s {lasso|logistic|var|granger|order|demo|faultdemo} "
               "[--csv FILE] [--b1 N] "
               "[--b2 N] [--lambdas Q] [--order D] [--max-order D] "
               "[--tolerance T] [--dot FILE] [--json FILE] [--save-model FILE] "
               "[--forecast H] [--seed S] [--checkpoint-path FILE] "
               "[--trace-json FILE] [--report-json FILE] "
               "[--ranks P] [--inject-fault RANK@STEP] [--hang RANK@STEP] "
               "[--comm-timeout-ms MS] [--min-bootstrap-quorum F] "
               "[--max-retries N] [--max-recovery-attempts N] "
               "[--sched-policy static|cost_lpt|work_steal] "
               "[--solver-cache-mb MB] [--consensus-interval K] "
               "[--screen off|safe|strong] "
               "[--transport thread|socket] "
               "[--live-telemetry SINK]\n"
               "       %s info\n"
               "       %s analyze TRACE.json [TRACE2.json ...] "
               "[--report-json FILE] [--what-if CATEGORY=FACTOR]...\n"
               "       %s top TELEMETRY.jsonl [--follow]\n"
               "       %s launch --ranks N [--backend thread|socket] "
               "[--dir D] [--grace-ms MS] -- CMD [ARGS...]\n",
               argv0, argv0, argv0, argv0, argv0);
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--csv") {
      args.csv_path = value();
    } else if (flag == "--b1") {
      args.b1 = std::strtoul(value(), nullptr, 10);
    } else if (flag == "--b2") {
      args.b2 = std::strtoul(value(), nullptr, 10);
    } else if (flag == "--lambdas") {
      args.n_lambdas = std::strtoul(value(), nullptr, 10);
    } else if (flag == "--order") {
      args.order = std::strtoul(value(), nullptr, 10);
    } else if (flag == "--max-order") {
      args.max_order = std::strtoul(value(), nullptr, 10);
    } else if (flag == "--forecast") {
      args.forecast_horizon = std::strtoul(value(), nullptr, 10);
    } else if (flag == "--tolerance") {
      args.tolerance = std::strtod(value(), nullptr);
    } else if (flag == "--dot") {
      args.dot_path = value();
    } else if (flag == "--json") {
      args.json_path = value();
    } else if (flag == "--save-model") {
      args.model_path = value();
    } else if (flag == "--seed") {
      args.seed = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--checkpoint-path") {
      args.checkpoint_path = value();
    } else if (flag == "--trace-json") {
      args.trace_json_path = value();
    } else if (flag == "--report-json") {
      args.report_json_path = value();
    } else if (flag.rfind("--", 0) != 0 &&
               (args.command == "analyze" || args.command == "top")) {
      args.inputs.push_back(flag);
    } else if (flag == "--live-telemetry") {
      args.live_telemetry = value();
    } else if (flag == "--what-if") {
      args.what_if.push_back(value());
    } else if (flag == "--follow") {
      args.top_follow = true;
    } else if (flag == "--inject-fault") {
      args.inject_fault = value();
    } else if (flag == "--hang") {
      args.hang_fault = value();
    } else if (flag == "--comm-timeout-ms") {
      args.comm_timeout_ms = std::strtol(value(), nullptr, 10);
      if (args.comm_timeout_ms <= 0) {
        std::fprintf(stderr, "--comm-timeout-ms must be > 0\n");
        usage(argv[0]);
      }
    } else if (flag == "--min-bootstrap-quorum") {
      args.min_bootstrap_quorum = std::strtod(value(), nullptr);
      if (args.min_bootstrap_quorum <= 0.0 ||
          args.min_bootstrap_quorum > 1.0) {
        std::fprintf(stderr, "--min-bootstrap-quorum must be in (0, 1]\n");
        usage(argv[0]);
      }
    } else if (flag == "--max-retries") {
      args.max_retries = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (flag == "--max-recovery-attempts") {
      args.max_recovery_attempts =
          static_cast<int>(std::strtol(value(), nullptr, 10));
      if (args.max_recovery_attempts < 0) {
        std::fprintf(stderr, "--max-recovery-attempts must be >= 0\n");
        usage(argv[0]);
      }
    } else if (flag == "--ranks") {
      args.ranks = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (flag == "--transport") {
      args.transport = value();
      if (args.transport != "thread" && args.transport != "socket") {
        std::fprintf(stderr, "--transport must be thread or socket\n");
        usage(argv[0]);
      }
    } else if (flag == "--sched-policy") {
      const char* name = value();
      if (!uoi::sched::policy_from_string(name, args.sched_policy)) {
        std::fprintf(stderr, "unknown --sched-policy: %s\n", name);
        usage(argv[0]);
      }
    } else if (flag == "--solver-cache-mb") {
      args.solver_cache_mb = std::strtol(value(), nullptr, 10);
      if (args.solver_cache_mb < 0) {
        std::fprintf(stderr, "--solver-cache-mb must be >= 0\n");
        usage(argv[0]);
      }
    } else if (flag == "--consensus-interval") {
      const long k = std::strtol(value(), nullptr, 10);
      if (k < 1) {
        std::fprintf(stderr, "--consensus-interval must be >= 1\n");
        usage(argv[0]);
      }
      args.consensus_interval = static_cast<std::size_t>(k);
    } else if (flag == "--screen") {
      const std::string mode = value();
      if (mode == "off") {
        args.screen_mode = uoi::solvers::ScreenMode::kOff;
      } else if (mode == "safe") {
        args.screen_mode = uoi::solvers::ScreenMode::kSafe;
      } else if (mode == "strong") {
        args.screen_mode = uoi::solvers::ScreenMode::kStrong;
      } else {
        std::fprintf(stderr, "--screen must be off, safe, or strong\n");
        usage(argv[0]);
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      usage(argv[0]);
    }
  }
  return args;
}

uoi::io::CsvData require_csv(const Args& args) {
  if (args.csv_path.empty()) {
    std::fprintf(stderr, "--csv FILE is required for this command\n");
    std::exit(2);
  }
  return uoi::io::read_csv(args.csv_path);
}

int run_lasso(const Args& args) {
  const auto csv = require_csv(args);
  const auto& m = csv.values;
  if (m.cols() < 2 || m.rows() < 4) {
    std::fprintf(stderr, "need at least 2 columns and 4 rows\n");
    return 2;
  }
  const std::size_t p = m.cols() - 1;
  const auto x = uoi::linalg::Matrix::from_view(m).gather_cols([&] {
    std::vector<std::size_t> cols(p);
    for (std::size_t c = 0; c < p; ++c) cols[c] = c;
    return cols;
  }());
  const auto y = uoi::linalg::Matrix::from_view(m).col(p);

  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = args.b1;
  options.n_estimation_bootstraps = args.b2;
  options.n_lambdas = args.n_lambdas;
  options.fit_intercept = true;
  options.seed = args.seed;
  options.schedule = args.sched_policy;
  options.solver_cache_mb = args.solver_cache_mb;
  options.admm.consensus_interval = args.consensus_interval;
  options.screen.mode = args.screen_mode;
  const auto fit = [&] {
    uoi::support::TraceScope span("uoi-lasso-fit",
                                  uoi::support::TraceCategory::kComputation);
    return args.checkpoint_path.empty()
               ? uoi::core::UoiLasso(options).fit(x, y)
               : uoi::core::UoiLasso(options).fit_with_checkpoint(
                     x, y, args.checkpoint_path);
  }();

  std::printf("UoI_LASSO fit: %zu samples x %zu features\n", x.rows(), p);
  std::printf("intercept: %.6g\nselected features (|beta| > %g):\n",
              fit.intercept, args.tolerance);
  for (std::size_t i = 0; i < p; ++i) {
    if (std::abs(fit.beta[i]) > args.tolerance) {
      const std::string label = i < csv.column_labels.size()
                                    ? csv.column_labels[i]
                                    : "x" + std::to_string(i);
      std::printf("  %-16s %+.6g\n", label.c_str(), fit.beta[i]);
    }
  }
  return 0;
}

int run_logistic(const Args& args) {
  const auto csv = require_csv(args);
  const auto& m = csv.values;
  if (m.cols() < 2 || m.rows() < 8) {
    std::fprintf(stderr, "need at least 2 columns and 8 rows\n");
    return 2;
  }
  const std::size_t p = m.cols() - 1;
  const auto x = uoi::linalg::Matrix::from_view(m).gather_cols([&] {
    std::vector<std::size_t> cols(p);
    for (std::size_t c = 0; c < p; ++c) cols[c] = c;
    return cols;
  }());
  const auto y = uoi::linalg::Matrix::from_view(m).col(p);
  for (const double v : y) {
    if (v != 0.0 && v != 1.0) {
      std::fprintf(stderr, "last column must hold 0/1 labels\n");
      return 2;
    }
  }

  uoi::core::UoiLogisticOptions options;
  options.n_selection_bootstraps = args.b1;
  options.n_estimation_bootstraps = args.b2;
  options.n_lambdas = args.n_lambdas;
  options.seed = args.seed;
  options.schedule = args.sched_policy;
  options.solver_cache_mb = args.solver_cache_mb;
  options.consensus_interval = args.consensus_interval;
  const auto fit = [&] {
    uoi::support::TraceScope span("uoi-logistic-fit",
                                  uoi::support::TraceCategory::kComputation);
    return uoi::core::UoiLogistic(options).fit(x, y);
  }();

  std::printf("UoI_Logistic fit: %zu samples x %zu features\n", x.rows(), p);
  std::printf("intercept: %.6g\ntraining accuracy: %.3f\n", fit.intercept,
              uoi::solvers::logistic_accuracy(x, y, fit.beta, fit.intercept));
  std::printf("selected features (|beta| > %g):\n", args.tolerance);
  for (std::size_t i = 0; i < p; ++i) {
    if (std::abs(fit.beta[i]) > args.tolerance) {
      const std::string label = i < csv.column_labels.size()
                                    ? csv.column_labels[i]
                                    : "x" + std::to_string(i);
      std::printf("  %-16s %+.6g\n", label.c_str(), fit.beta[i]);
    }
  }
  return 0;
}

int run_var(const Args& args) {
  const auto csv = require_csv(args);
  if (csv.values.rows() < args.order + 4) {
    std::fprintf(stderr, "series too short for order %zu\n", args.order);
    return 2;
  }
  uoi::var::UoiVarOptions options;
  options.order = args.order;
  options.n_selection_bootstraps = args.b1;
  options.n_estimation_bootstraps = args.b2;
  options.n_lambdas = args.n_lambdas;
  options.seed = args.seed;
  options.schedule = args.sched_policy;
  options.solver_cache_mb = args.solver_cache_mb;
  options.admm.consensus_interval = args.consensus_interval;
  options.screen.mode = args.screen_mode;
  const auto fit = [&] {
    uoi::support::TraceScope span("uoi-var-fit",
                                  uoi::support::TraceCategory::kComputation);
    return uoi::var::UoiVar(options).fit(csv.values);
  }();

  const auto network =
      uoi::var::GrangerNetwork::from_model(fit.model, args.tolerance);
  std::printf("UoI_VAR(%zu) fit: %zu samples x %zu variables\n", args.order,
              csv.values.rows(), csv.values.cols());
  std::printf("Granger network: %zu edges (density %.3f)\n",
              network.edge_count(), network.density());
  std::printf("%s", network.to_edge_list(csv.column_labels).c_str());

  if (!args.dot_path.empty()) {
    std::ofstream out(args.dot_path);
    out << network.to_dot(csv.column_labels);
    std::printf("wrote %s\n", args.dot_path.c_str());
  }
  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    out << network.to_json(csv.column_labels);
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  if (!args.model_path.empty()) {
    uoi::var::save_model(args.model_path, fit.model);
    std::printf("wrote %s\n", args.model_path.c_str());
  }
  if (args.forecast_horizon > 0) {
    const auto fc =
        uoi::var::forecast(fit.model, csv.values, args.forecast_horizon);
    std::printf("forecast (%zu steps):\n%s",
                args.forecast_horizon,
                uoi::io::to_csv(fc, csv.column_labels).c_str());
  }
  return 0;
}

int run_granger(const Args& args) {
  // Classical pairwise Granger F-tests (the econometric baseline).
  const auto csv = require_csv(args);
  const auto tests =
      uoi::var::granger_f_tests(csv.values, args.order);
  uoi::support::Table table({"source", "target", "F", "p-value", "signif."});
  const double alpha = 0.05 / static_cast<double>(tests.size());
  for (const auto& t : tests) {
    const auto name = [&](std::size_t i) {
      return i < csv.column_labels.size() ? csv.column_labels[i]
                                          : "x" + std::to_string(i);
    };
    table.add_row({name(t.source), name(t.target),
                   uoi::support::format_fixed(t.f_statistic, 3),
                   uoi::support::format_sci(t.p_value, 2),
                   t.p_value < alpha ? "*" : ""});
  }
  std::printf("%s", table.to_text().c_str());
  std::printf("(* = significant at 5%% with Bonferroni over %zu tests)\n",
              tests.size());
  return 0;
}

int run_order(const Args& args) {
  const auto csv = require_csv(args);
  const auto result = uoi::var::select_var_order(csv.values, args.max_order);
  uoi::support::Table table({"order", "AIC", "BIC", "Hannan-Quinn"});
  for (std::size_t d = 1; d <= args.max_order; ++d) {
    table.add_row({std::to_string(d),
                   uoi::support::format_fixed(result.aic[d - 1], 4),
                   uoi::support::format_fixed(result.bic[d - 1], 4),
                   uoi::support::format_fixed(result.hannan_quinn[d - 1], 4)});
  }
  std::printf("%sbest order by BIC: %zu\n", table.to_text().c_str(),
              result.best_order);
  return 0;
}

int run_demo(const Args& args) {
  std::printf("== synthetic UoI_VAR demo ==\n");
  uoi::data::VarSpec spec;
  spec.n_nodes = 8;
  spec.seed = args.seed;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 500;
  sim.seed = args.seed + 1;
  const auto series = uoi::var::simulate(truth, sim);

  uoi::var::UoiVarOptions options;
  options.n_selection_bootstraps = args.b1;
  options.n_estimation_bootstraps = args.b2;
  options.n_lambdas = args.n_lambdas;
  options.seed = args.seed;
  options.schedule = args.sched_policy;
  options.solver_cache_mb = args.solver_cache_mb;
  options.admm.consensus_interval = args.consensus_interval;
  options.screen.mode = args.screen_mode;
  const auto fit = [&] {
    uoi::support::TraceScope span("uoi-var-fit",
                                  uoi::support::TraceCategory::kComputation);
    return uoi::var::UoiVar(options).fit(series);
  }();

  const auto est = uoi::var::GrangerNetwork::from_model(fit.model, 0.02);
  const auto ref = uoi::var::GrangerNetwork::from_model(truth, 1e-9);
  std::printf("true edges: %zu, estimated edges: %zu\n", ref.edge_count(),
              est.edge_count());
  const auto acc = uoi::core::selection_accuracy(
      uoi::core::SupportSet::from_beta(fit.vec_beta, 0.02),
      uoi::core::SupportSet::from_beta(truth.vec_b(), 1e-9),
      fit.vec_beta.size());
  std::printf("recovery: precision %.2f recall %.2f F1 %.2f\n",
              acc.precision(), acc.recall(), acc.f1());
  return 0;
}

int run_faultdemo(const Args& args) {
  if (args.ranks < 2) {
    std::fprintf(stderr, "faultdemo needs --ranks >= 2\n");
    return 2;
  }
  // Under `--transport socket` every rank is a separate process running
  // this same function; each one knows only its own report, and ranks > 0
  // write to per-rank logs while rank 0 owns the terminal.
  const auto job = uoi::transport::job_config_from_env();
  const bool socket_job = uoi::transport::socket_job_active() && job;
  std::printf("== fault-injection demo: distributed UoI_LASSO on %d %s ==\n",
              args.ranks, socket_job ? "processes" : "ranks");

  uoi::data::RegressionSpec spec;
  spec.n_samples = 120;
  spec.n_features = 16;
  spec.support_size = 4;
  spec.seed = args.seed;
  const auto data = uoi::data::make_regression(spec);

  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = args.b1;
  options.n_estimation_bootstraps = args.b2;
  options.n_lambdas = args.n_lambdas;
  options.seed = args.seed;
  options.schedule = args.sched_policy;
  options.solver_cache_mb = args.solver_cache_mb;
  options.admm.consensus_interval = args.consensus_interval;
  options.screen.mode = args.screen_mode;
  options.recovery.checkpoint_path = args.checkpoint_path;
  options.recovery.checkpoint_interval = 1;
  options.recovery.onesided_max_attempts = args.max_retries;
  options.recovery.max_recovery_attempts = args.max_recovery_attempts;
  options.recovery.min_bootstrap_quorum = args.min_bootstrap_quorum;

  // Parses "RANK@STEP"; returns false (after its own diagnostic) on a
  // malformed or out-of-range spec.
  const auto parse_rank_step = [&](const std::string& spec, const char* flag,
                                   int& rank, std::uint64_t& step) {
    const auto at = spec.find('@');
    if (at == std::string::npos) {
      std::fprintf(stderr, "%s expects RANK@STEP, got %s\n", flag,
                   spec.c_str());
      return false;
    }
    rank = static_cast<int>(
        std::strtol(spec.substr(0, at).c_str(), nullptr, 10));
    step = std::strtoull(spec.substr(at + 1).c_str(), nullptr, 10);
    if (rank < 0 || rank >= args.ranks) {
      std::fprintf(stderr, "%s rank %d outside [0, %d)\n", flag, rank,
                   args.ranks);
      return false;
    }
    return true;
  };

  auto plan = std::make_shared<uoi::sim::FaultPlan>();
  bool have_fault = false;
  std::set<int> planned_victims;
  if (!args.inject_fault.empty()) {
    int victim = -1;
    std::uint64_t step = 0;
    if (!parse_rank_step(args.inject_fault, "--inject-fault", victim, step)) {
      return 2;
    }
    plan->kills.push_back({victim, step});
    planned_victims.insert(victim);
    have_fault = true;
    std::printf("fault plan: kill rank %d at its %llu-th collective\n", victim,
                static_cast<unsigned long long>(step));
  }
  uoi::sim::WatchdogConfig watchdog;
  if (args.comm_timeout_ms > 0) watchdog.timeout_ms = args.comm_timeout_ms;
  if (!args.hang_fault.empty()) {
    int victim = -1;
    std::uint64_t step = 0;
    if (!parse_rank_step(args.hang_fault, "--hang", victim, step)) return 2;
    if (!watchdog.armed() && !uoi::sim::WatchdogConfig::from_env().armed()) {
      std::fprintf(stderr,
                   "--hang needs the progress watchdog armed "
                   "(--comm-timeout-ms or $UOI_COMM_TIMEOUT_MS), or the "
                   "hung rank would stall the run forever\n");
      return 2;
    }
    plan->hangs.push_back({victim, step});
    planned_victims.insert(victim);
    have_fault = true;
    std::printf("fault plan: hang rank %d at its %llu-th collective\n", victim,
                static_cast<unsigned long long>(step));
  }

  std::vector<std::optional<uoi::core::UoiLassoDistributedResult>> results(
      static_cast<std::size_t>(args.ranks));
  const auto reports = uoi::sim::Cluster::run_collect_reports(
      args.ranks, [&](uoi::sim::Comm& comm) {
        if (have_fault) comm.set_fault_plan(plan);
        if (watchdog.armed()) comm.set_watchdog(watchdog);
        results[static_cast<std::size_t>(comm.rank())] =
            uoi::core::uoi_lasso_distributed(comm, data.x, data.y, options,
                                             {1, 1});
      });

  uoi::support::Table table({"rank", "outcome", "failures seen", "hangs",
                             "shrinks", "cells redone", "retries",
                             "ckpt resumes"});
  for (int r = 0; r < args.ranks; ++r) {
    // Each socket-job process knows only its own report; the other rows
    // live in the other processes' logs.
    if (socket_job && r != job->rank) continue;
    const auto& recovery = reports[static_cast<std::size_t>(r)].recovery;
    table.add_row({std::to_string(r),
                   results[static_cast<std::size_t>(r)].has_value()
                       ? "finished"
                       : "killed (planned)",
                   std::to_string(recovery.rank_failures_detected),
                   std::to_string(recovery.hangs_detected),
                   std::to_string(recovery.shrinks),
                   std::to_string(recovery.cells_recovered),
                   std::to_string(recovery.retries),
                   std::to_string(recovery.checkpoint_resumes)});
  }
  std::printf("%s", table.to_text().c_str());

  for (int r = 0; r < args.ranks; ++r) {
    if (!results[static_cast<std::size_t>(r)].has_value()) continue;
    const auto& result = *results[static_cast<std::size_t>(r)];
    const auto& fit = result.model;
    std::printf("survivor rank %d: final support {", r);
    const auto& indices = fit.support.indices();
    for (std::size_t i = 0; i < indices.size(); ++i) {
      std::printf("%s%zu", i == 0 ? "" : ", ", indices[i]);
    }
    std::printf("} (true support size %zu)\n", spec.support_size);
    if (result.degraded) {
      std::printf(
          "degraded completion: achieved quorum %.3f, %zu selection "
          "cell(s) abandoned\n",
          result.achieved_quorum, result.lost_cells.size());
    }
    // The fitted coefficients are replicated across survivors; dump them
    // in full precision when asked so CI can assert bit-identity between
    // telemetry-on and telemetry-off runs. In a socket job every surviving
    // process reaches this block, so only the lowest-ranked planned
    // survivor writes — the processes share a working directory.
    const int writer_rank = [&] {
      int w = 0;
      while (planned_victims.count(w) != 0) ++w;
      return w;
    }();
    if (!args.model_path.empty() && (!socket_job || job->rank == writer_rank)) {
      std::ofstream out(args.model_path);
      out.precision(17);
      out << "intercept " << result.model.intercept << "\n";
      for (std::size_t i = 0; i < result.model.beta.size(); ++i) {
        out << "beta[" << i << "] " << result.model.beta[i] << "\n";
      }
      std::printf("wrote %s (%zu coefficients, %%.17g)\n",
                  args.model_path.c_str(), result.model.beta.size());
    }
    break;  // replicated result: one survivor speaks for all
  }
  if (!args.checkpoint_path.empty()) {
    std::printf("selection progress persisted to %s\n",
                args.checkpoint_path.c_str());
  }
  return 0;
}

int run_analyze(const Args& args) {
  // Post-hoc analytics over previously captured Chrome-trace file(s);
  // multiple per-rank files are merged on shared collective stamps.
  if (args.inputs.empty()) {
    std::fprintf(stderr, "analyze needs a TRACE.json argument\n");
    return 2;
  }
  const auto events = uoi::report::read_and_merge_trace_files(args.inputs);
  if (events.empty()) {
    std::fprintf(stderr, "no span events in the given trace file(s)\n");
    return 2;
  }
  const auto report =
      uoi::report::build_run_report(uoi::report::inputs_from_events(events));
  std::printf("run report for %s%s (%zu events)\n%s",
              args.inputs.front().c_str(),
              args.inputs.size() > 1
                  ? (" + " + std::to_string(args.inputs.size() - 1) +
                     " more file(s)")
                        .c_str()
                  : "",
              events.size(), report.to_text().c_str());

  if (!args.what_if.empty()) {
    std::vector<uoi::report::WhatIfScale> scales;
    for (const std::string& spec : args.what_if) {
      const auto eq = spec.find('=');
      uoi::report::WhatIfScale scale;
      if (eq == std::string::npos ||
          !uoi::support::trace_category_from_string(spec.substr(0, eq),
                                                    scale.category)) {
        std::fprintf(stderr,
                     "--what-if expects CATEGORY=FACTOR (e.g. "
                     "communication=0), got %s\n",
                     spec.c_str());
        return 2;
      }
      scale.factor = std::strtod(spec.substr(eq + 1).c_str(), nullptr);
      if (scale.factor < 0.0) {
        std::fprintf(stderr, "--what-if factor must be >= 0\n");
        return 2;
      }
      scales.push_back(scale);
    }
    const auto what_if = uoi::report::what_if_replay(events, scales);
    if (!what_if.valid) {
      std::fprintf(stderr, "what-if replay failed: %s\n",
                   what_if.failure.c_str());
      return 2;
    }
    std::printf("what-if replay:");
    for (const auto& s : scales) {
      std::printf(" %s x%g", uoi::support::to_string(s.category), s.factor);
    }
    std::printf("\n  measured  %s\n  baseline  %s (factor-1 self-check)\n"
                "  predicted %s (speedup %.3fx)\n",
                uoi::support::format_seconds(what_if.measured_seconds).c_str(),
                uoi::support::format_seconds(what_if.baseline_seconds).c_str(),
                uoi::support::format_seconds(what_if.predicted_seconds).c_str(),
                what_if.speedup());
    if (report.exact_path.valid) {
      // Cross-check against the exact critical path: removing a category
      // entirely can at best strip its on-path share, so the predicted
      // wall must stay above window - sum(on-path share of scaled-down
      // categories). This is the same bound the perfmodel's comm-avoidance
      // analysis places on Allreduce restructuring.
      double removable = 0.0;
      for (const auto& s : scales) {
        if (s.factor < 1.0) {
          removable +=
              (1.0 - s.factor) * report.exact_path.category(s.category);
        }
      }
      const double floor_seconds =
          report.exact_path.window_seconds - removable;
      std::printf("  critical-path floor %s (%s)\n",
                  uoi::support::format_seconds(floor_seconds).c_str(),
                  what_if.predicted_seconds >= floor_seconds - 1e-9
                      ? "consistent"
                      : "INCONSISTENT with exact critical path");
    }
  }

  if (!args.report_json_path.empty()) {
    uoi::report::write_run_report(report, args.report_json_path);
    std::printf("wrote %s\n", args.report_json_path.c_str());
  }
  return 0;
}

int run_top(const Args& args) {
  // Tails a --live-telemetry JSON-lines stream and renders a dashboard.
  if (args.inputs.empty()) {
    std::fprintf(stderr, "top needs a TELEMETRY.jsonl argument\n");
    return 2;
  }
  const std::string& path = args.inputs.front();
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  uoi::support::TelemetrySample latest;
  std::string line;
  const auto drain = [&] {
    bool any = false;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      auto sample = uoi::support::parse_telemetry_line(line);
      if (sample.valid) {
        latest = std::move(sample);
        any = true;
      }
    }
    in.clear();  // clear EOF so follow mode sees appended lines
    return any;
  };
  bool fresh = drain();
  if (!args.top_follow) {
    if (!fresh) {
      std::fprintf(stderr, "no valid uoi-telemetry-v1 lines in %s\n",
                   path.c_str());
      return 2;
    }
    std::printf("%s", uoi::support::render_top(latest).c_str());
    return 0;
  }
  while (true) {  // follow mode: redraw on new lines until interrupted
    if (fresh) {
      std::printf("\033[H\033[2J%s", uoi::support::render_top(latest).c_str());
      std::fflush(stdout);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    fresh = drain();
  }
}

int run_launch(int argc, char** argv) {
  // `uoi launch --ranks N [--backend socket] [--dir D] -- CMD [ARGS...]`:
  // run CMD once per rank as real OS processes wired together by the
  // socket transport. Flags before `--` belong to launch; everything after
  // is the command.
  uoi::transport::LaunchOptions options;
  std::string backend = "socket";
  std::vector<std::string> command;
  int i = 2;
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--") {
      ++i;
      break;
    }
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--ranks") {
      options.ranks = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (flag == "--backend") {
      backend = value();
    } else if (flag == "--dir") {
      options.job_dir = value();
    } else if (flag == "--grace-ms") {
      options.grace_ms = std::strtol(value(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown launch flag: %s\n", flag.c_str());
      usage(argv[0]);
    }
  }
  for (; i < argc; ++i) command.emplace_back(argv[i]);
  if (command.empty()) {
    std::fprintf(stderr, "launch needs a command after --\n");
    usage(argv[0]);
  }
  if (options.ranks < 1) {
    std::fprintf(stderr, "--ranks must be >= 1\n");
    return 2;
  }
  if (backend == "thread") {
    // The thread backend needs no processes: exec the command in place and
    // let it build its usual in-process cluster.
    std::vector<char*> cargv;
    cargv.reserve(command.size() + 1);
    for (auto& arg : command) cargv.push_back(arg.data());
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    std::fprintf(stderr, "launch: cannot exec %s: %s\n", command[0].c_str(),
                 std::strerror(errno));
    return 127;
  }
  if (backend != "socket") {
    std::fprintf(stderr, "unknown --backend: %s (expected thread or socket)\n",
                 backend.c_str());
    return 2;
  }
  return uoi::transport::launch_job(options, command);
}

int run_info(const Args&) {
  namespace simd = uoi::linalg::simd;
  const auto detected = simd::detect_simd_level();
  const auto active = simd::resolve_simd_level();
  const char* simd_env = std::getenv("UOI_SIMD");
  const char* screen_env = std::getenv("UOI_SCREEN");
  std::printf("uoi build/runtime info\n");
  std::printf("  simd detected:   %s\n", simd::simd_level_name(detected));
  std::printf("  simd active:     %s  (UOI_SIMD=%s)\n",
              simd::simd_level_name(active),
              simd_env != nullptr && simd_env[0] != '\0' ? simd_env : "auto");
  std::printf("  levels compiled: scalar=%s avx2=%s avx512=%s\n",
              simd::level_compiled(simd::SimdLevel::kScalar) ? "yes" : "no",
              simd::level_compiled(simd::SimdLevel::kAvx2) ? "yes" : "no",
              simd::level_compiled(simd::SimdLevel::kAvx512) ? "yes" : "no");
  const auto caches = simd::cache_sizes();
  auto kib = [](long bytes) { return bytes >= 0 ? bytes / 1024 : -1; };
  std::printf("  data caches:     L1d %ld KiB, L2 %ld KiB, L3 %ld KiB "
              "(-1 = unknown)\n",
              kib(caches.l1d), kib(caches.l2), kib(caches.l3));
  std::printf("  screen default:  %s  (UOI_SCREEN=%s)\n",
              uoi::solvers::screen_mode_name(uoi::solvers::resolve_screen_mode(
                  uoi::solvers::ScreenMode::kAuto)),
              screen_env != nullptr && screen_env[0] != '\0' ? screen_env
                                                            : "unset");
  std::printf("  compiler:        %s\n", __VERSION__);
#ifdef NDEBUG
  const char* build_kind = "release (NDEBUG)";
#else
  const char* build_kind = "debug (asserts on)";
#endif
#ifdef __OPTIMIZE__
  const bool optimized = true;
#else
  const bool optimized = false;
#endif
  std::printf("  build flags:     %s, optimized=%s, fp-contract kernels "
              "pinned off\n",
              build_kind, optimized ? "yes" : "no");
  return 0;
}

int dispatch(const Args& args) {
  if (args.command == "lasso") return run_lasso(args);
  if (args.command == "logistic") return run_logistic(args);
  if (args.command == "var") return run_var(args);
  if (args.command == "granger") return run_granger(args);
  if (args.command == "order") return run_order(args);
  if (args.command == "demo") return run_demo(args);
  if (args.command == "faultdemo") return run_faultdemo(args);
  if (args.command == "analyze") return run_analyze(args);
  if (args.command == "top") return run_top(args);
  if (args.command == "info") return run_info(args);
  return -1;  // unknown command
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "launch") == 0) {
    return run_launch(argc, argv);
  }
  const Args args = parse_args(argc, argv);
  if (args.transport == "socket" && !uoi::transport::socket_job_active()) {
    // `--transport socket` outside a job: re-launch this exact invocation
    // as a --ranks-process socket job. Only faultdemo builds a cluster from
    // the CLI; the library drivers pick the backend up from the job
    // environment in their own harnesses.
    if (args.command != "faultdemo") {
      std::fprintf(stderr,
                   "--transport socket only applies to faultdemo (the other "
                   "commands run single-process); use `%s launch` to run an "
                   "arbitrary command as a socket job\n",
                   argv[0]);
      return 2;
    }
    uoi::transport::LaunchOptions options;
    options.ranks = args.ranks;
    return uoi::transport::launch_job(
        options, std::vector<std::string>(argv, argv + argc));
  }
  const bool tracing = !args.trace_json_path.empty();
  const bool reporting =
      !args.report_json_path.empty() && args.command != "analyze";
  // Reporting also captures span events so the critical-path bound can use
  // the aligned-collective method instead of the coarser totals fallback.
  if (tracing || reporting) {
    uoi::support::Tracer::instance().set_capture_events(true);
  }
  // Live telemetry streams while the command runs; the emitter only reads
  // the tracer/metrics singletons, so results are bit-identical on/off.
  uoi::support::TelemetryEmitter telemetry(
      uoi::support::telemetry_options_from_env(
          args.command == "analyze" || args.command == "top"
              ? std::string()
              : args.live_telemetry));
  telemetry.start();
  uoi::support::Stopwatch wall;
  int status = -1;
  try {
    status = dispatch(args);
  } catch (const std::exception& e) {
    telemetry.stop();
    UOI_LOG_ERROR.field("command", args.command) << e.what();
    return 1;
  }
  const double wall_seconds = wall.seconds();
  telemetry.stop();
  if (telemetry.lines_written() > 0) {
    std::printf("telemetry: %llu line(s) to %s (%llu dropped)\n",
                static_cast<unsigned long long>(telemetry.lines_written()),
                args.live_telemetry.c_str(),
                static_cast<unsigned long long>(telemetry.lines_dropped()));
  }
  if (status < 0) usage(argv[0]);
  if (tracing) {
    try {
      auto& tracer = uoi::support::Tracer::instance();
      tracer.write_chrome_trace(args.trace_json_path);
      std::printf("wrote trace to %s (%zu events)\n",
                  args.trace_json_path.c_str(), tracer.event_count());
    } catch (const std::exception& e) {
      UOI_LOG_ERROR.field("path", args.trace_json_path) << e.what();
      return 1;
    }
  }
  if (reporting) {
    try {
      const auto report = uoi::report::build_run_report(
          uoi::report::collect_inputs(wall_seconds));
      std::printf("%s", report.to_text().c_str());
      uoi::report::write_run_report(report, args.report_json_path);
      std::printf("wrote %s\n", args.report_json_path.c_str());
    } catch (const std::exception& e) {
      UOI_LOG_ERROR.field("path", args.report_json_path) << e.what();
      return 1;
    }
  }
  return status;
}
