// Sparse classification with UoI_Logistic: feature selection for a binary
// outcome (e.g. "did the neuron spike in this bin?" / "did the stock move
// up this week?") with a known ground truth, compared against a single
// L1-logistic fit at a cross-validated-ish lambda.
//
// Usage: classification [n_samples] [n_features] [support_size]

#include <cstdio>
#include <cstdlib>

#include "core/metrics.hpp"
#include "core/uoi_logistic.hpp"
#include "data/synthetic_regression.hpp"
#include "solvers/logistic.hpp"
#include "support/format.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  uoi::data::ClassificationSpec spec;
  spec.n_samples = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 500;
  spec.n_features = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 30;
  spec.support_size = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 5;
  spec.intercept = -0.5;

  std::printf("UoI_Logistic: n=%zu, p=%zu, true support=%zu\n\n",
              spec.n_samples, spec.n_features, spec.support_size);
  const auto data = uoi::data::make_classification(spec);
  const auto truth = uoi::core::SupportSet::from_beta(data.beta_true);

  uoi::core::UoiLogisticOptions options;
  options.n_selection_bootstraps = 12;
  options.n_estimation_bootstraps = 6;
  options.n_lambdas = 12;
  uoi::support::Stopwatch watch;
  const auto uoi_fit = uoi::core::UoiLogistic(options).fit(data.x, data.y);
  const double uoi_seconds = watch.seconds();

  // Baseline: one l1-logistic fit at a moderate lambda.
  watch.reset();
  const double lambda =
      0.05 * uoi::solvers::logistic_lambda_max(data.x, data.y);
  const auto l1_fit = uoi::solvers::logistic_lasso(data.x, data.y, lambda);
  const double l1_seconds = watch.seconds();

  uoi::support::Table table({"method", "selected", "FP", "FN", "accuracy",
                             "log loss", "time"});
  auto report = [&](const char* name, const uoi::linalg::Vector& beta,
                    double intercept, double seconds) {
    const auto support = uoi::core::SupportSet::from_beta(beta, 0.15);
    const auto acc =
        uoi::core::selection_accuracy(support, truth, spec.n_features);
    table.add_row(
        {name, std::to_string(support.size()),
         std::to_string(acc.false_positives),
         std::to_string(acc.false_negatives),
         uoi::support::format_fixed(
             uoi::solvers::logistic_accuracy(data.x, data.y, beta, intercept),
             3),
         uoi::support::format_fixed(
             uoi::solvers::logistic_log_loss(data.x, data.y, beta, intercept),
             3),
         uoi::support::format_seconds(seconds)});
  };
  report("UoI_Logistic", uoi_fit.beta, uoi_fit.intercept, uoi_seconds);
  report("L1-logistic", l1_fit.beta, l1_fit.intercept, l1_seconds);
  std::printf("%s\n", table.to_text().c_str());

  std::printf("true intercept %.2f, estimated %.2f\n", spec.intercept,
              uoi_fit.intercept);
  std::printf("true support:      %s\nUoI support:       %s\n",
              truth.to_string().c_str(),
              uoi::core::SupportSet::from_beta(uoi_fit.beta, 0.15)
                  .to_string()
                  .c_str());
  return 0;
}
