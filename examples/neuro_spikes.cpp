// Neural-coupling inference from multi-electrode spike counts — the
// paper's §VI neuroscience application (O'Doherty et al. reaching data,
// 192 electrodes) on the synthetic spike substitute.
//
// The paper only reports runtime for this dataset; with a synthetic
// ground-truth coupling network we can also score recovery. The default
// channel count is scaled down so the example runs in seconds; pass 192
// to match the paper's electrode count.
//
// Usage: neuro_spikes [n_channels] [n_samples]

#include <cstdio>
#include <cstdlib>

#include "core/metrics.hpp"
#include "core/uoi_poisson.hpp"
#include "data/spikes.hpp"
#include "perfmodel/var_cost.hpp"
#include "support/format.hpp"
#include "support/stopwatch.hpp"
#include "var/granger.hpp"
#include "var/uoi_var.hpp"

int main(int argc, char** argv) {
  uoi::data::SpikeSpec spec;
  spec.n_channels = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 32;
  spec.n_samples = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1500;

  std::printf(
      "Neural spike-coupling analysis: %zu channels x %zu bins\n"
      "(paper: 192 electrodes x 51,111 samples -> a ~1.3 TB VAR problem)\n\n",
      spec.n_channels, spec.n_samples);
  const auto recording = uoi::data::make_spikes(spec);

  uoi::var::UoiVarOptions options;
  options.order = 1;
  options.n_selection_bootstraps = 15;
  options.n_estimation_bootstraps = 8;
  options.n_lambdas = 15;
  options.lambda_min_ratio = 1e-2;  // spike data favors sparse pressure
  uoi::support::Stopwatch watch;
  const auto fit = uoi::var::UoiVar(options).fit(recording.series);
  std::printf("UoI_VAR fit in %s (problem sparsity %.3f)\n\n",
              uoi::support::format_seconds(watch.seconds()).c_str(),
              fit.design_sparsity);

  const auto network =
      uoi::var::GrangerNetwork::from_model(fit.model, /*tolerance=*/0.02);
  std::printf("Estimated coupling network: %zu directed edges, density %.3f\n",
              network.edge_count(), network.density());

  const auto est_support =
      uoi::core::SupportSet::from_beta(fit.vec_beta, 0.02);
  const auto true_support =
      uoi::core::SupportSet::from_beta(recording.truth.vec_b(), 1e-6);
  const auto acc = uoi::core::selection_accuracy(est_support, true_support,
                                                 fit.vec_beta.size());
  std::printf(
      "Recovery vs ground truth: precision %.2f, recall %.2f, F1 %.2f\n\n",
      acc.precision(), acc.recall(), acc.f1());

  // Beyond the paper: refit one neuron's *counts* with the Poisson
  // likelihood (UoI_Poisson) on the population's lagged counts — the
  // statistically right model for spikes, versus the sqrt-Gaussian
  // surrogate above.
  {
    const std::size_t target = 0;
    const std::size_t t_max = recording.counts.rows() - 1;
    uoi::linalg::Matrix lagged(t_max, spec.n_channels);
    uoi::linalg::Vector counts(t_max);
    for (std::size_t t = 0; t < t_max; ++t) {
      const auto prev = recording.counts.row(t);
      std::copy(prev.begin(), prev.end(), lagged.row(t).begin());
      counts[t] = recording.counts(t + 1, target);
    }
    uoi::core::UoiPoissonOptions poisson_options;
    poisson_options.n_selection_bootstraps = 8;
    poisson_options.n_estimation_bootstraps = 5;
    poisson_options.n_lambdas = 8;
    const auto pfit =
        uoi::core::UoiPoisson(poisson_options).fit(lagged, counts);
    const auto pin = uoi::core::SupportSet::from_beta(pfit.beta, 0.02);
    std::size_t true_in = 0;
    for (std::size_t j = 0; j < spec.n_channels; ++j) {
      if (recording.truth.coefficient(0)(target, j) != 0.0) ++true_in;
    }
    std::printf(
        "Poisson refit of neuron %zu's counts: %zu lagged inputs selected "
        "(truth has %zu in-edges)\n\n",
        target, pin.size(), true_in);
  }

  // What would the paper-scale version of this analysis cost? Reuse the
  // calibrated cost model with the real dataset's dimensions.
  uoi::perf::UoiVarWorkload paper_scale;
  paper_scale.n_features = 192;
  paper_scale.n_samples = 51111;
  const uoi::perf::UoiVarCostModel model;
  const auto breakdown = model.run(paper_scale, 81600);
  std::printf(
      "Modeled paper-scale run (192 ch, 51,111 samples, 81,600 KNL cores):\n"
      "  computation   %s   (paper measured:   96.9 s)\n"
      "  communication %s   (paper measured: 1598.7 s)\n"
      "  distribution  %s   (paper measured: 3034.4 s)\n",
      uoi::support::format_seconds(breakdown.computation).c_str(),
      uoi::support::format_seconds(breakdown.communication).c_str(),
      uoi::support::format_seconds(breakdown.distribution).c_str());
  return 0;
}
