// The distributed stack end to end on the simulated cluster: write a
// dataset to the H5-lite store, distribute it with the paper's randomized
// three-tier strategy, and run distributed UoI_LASSO under different
// P_B x P_lambda layouts, reporting the per-rank runtime buckets and
// communication statistics (a laptop-scale Fig. 2/3 rehearsal).
//
// Usage: cluster_scaling [ranks] [n_samples] [n_features]

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/uoi_lasso_distributed.hpp"
#include "data/synthetic_regression.hpp"
#include "io/distribution.hpp"
#include "io/h5lite.hpp"
#include "simcluster/cluster.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 8;
  uoi::data::RegressionSpec spec;
  spec.n_samples = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 512;
  spec.n_features = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 64;
  spec.support_size = 8;

  std::printf("Simulated cluster: %d ranks, dataset %zu x %zu\n\n", ranks,
              spec.n_samples, spec.n_features);
  const auto data = uoi::data::make_regression(spec);

  // ---- the I/O path: write, then both distribution strategies ----
  const std::string base =
      (std::filesystem::temp_directory_path() / "uoi_cluster_demo").string();
  uoi::io::write_dataset(base, data.x, /*chunk_rows=*/64, /*n_stripes=*/4);
  std::printf("Wrote %s (%s, 4 stripes)\n", base.c_str(),
              uoi::support::format_bytes(data.x.size() * sizeof(double))
                  .c_str());

  uoi::sim::Cluster::run(ranks, [&](uoi::sim::Comm& comm) {
    uoi::io::DistributionTiming conventional, randomized;
    (void)uoi::io::conventional_distribute(comm, base, &conventional);
    (void)uoi::io::randomized_distribute(comm, base, 7, &randomized);
    if (comm.rank() == 0) {
      std::printf(
          "  conventional: read %s + distribute %s\n"
          "  randomized:   read %s + distribute %s (3-tier, one-sided)\n\n",
          uoi::support::format_seconds(conventional.read_seconds).c_str(),
          uoi::support::format_seconds(conventional.distribute_seconds)
              .c_str(),
          uoi::support::format_seconds(randomized.read_seconds).c_str(),
          uoi::support::format_seconds(randomized.distribute_seconds)
              .c_str());
    }
  });

  // ---- distributed UoI_LASSO under different layouts ----
  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 8;
  options.n_estimation_bootstraps = 4;
  options.n_lambdas = 8;

  uoi::support::Table table({"layout (PB x PL x C)", "support", "compute",
                             "comm", "distr", "allreduce calls",
                             "allreduce bytes"});
  for (const auto& [pb, pl] :
       {std::pair<int, int>{1, 1}, {2, 1}, {1, 2}, {2, 2}}) {
    if (ranks % (pb * pl) != 0) continue;
    uoi::core::UoiDistributedBreakdown breakdown;
    std::size_t support_size = 0;
    auto stats =
        uoi::sim::Cluster::run_collect_stats(ranks, [&](uoi::sim::Comm& comm) {
          const auto result = uoi::core::uoi_lasso_distributed(
              comm, data.x, data.y, options, {pb, pl});
          if (comm.rank() == 0) {
            breakdown = result.breakdown;
            support_size = result.model.support.size();
          }
        });
    std::uint64_t calls = 0, bytes = 0;
    for (const auto& s : stats) {
      calls += s.of(uoi::sim::CommCategory::kAllreduce).calls;
      bytes += s.of(uoi::sim::CommCategory::kAllreduce).bytes;
    }
    table.add_row(
        {std::to_string(pb) + " x " + std::to_string(pl) + " x " +
             std::to_string(ranks / (pb * pl)),
         std::to_string(support_size),
         uoi::support::format_seconds(breakdown.computation_seconds),
         uoi::support::format_seconds(breakdown.communication_seconds),
         uoi::support::format_seconds(breakdown.distribution_seconds),
         uoi::support::format_count(calls),
         uoi::support::format_bytes(bytes)});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "Rank-0 breakdown buckets mirror the paper's Fig. 2: computation\n"
      "dominates at a single node; Allreduce carries the communication.\n");

  for (std::uint64_t k = 0; k < 4; ++k) {
    std::error_code ec;
    std::filesystem::remove(uoi::io::stripe_path(base, k), ec);
  }
  return 0;
}
