// Quickstart: sparse regression with UoI_LASSO.
//
// Generates a synthetic dataset with a known sparse coefficient vector,
// fits UoI_LASSO (Algorithm 1 of the paper), and compares selection and
// estimation accuracy against a cross-validated LASSO baseline — the
// comparison that motivates UoI: similar recall with far fewer false
// positives and less coefficient shrinkage.
//
// Usage: quickstart [n_samples] [n_features] [support_size]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/metrics.hpp"
#include "core/uoi_lasso.hpp"
#include "data/synthetic_regression.hpp"
#include "solvers/cd_lasso.hpp"
#include "support/format.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  uoi::data::RegressionSpec spec;
  spec.n_samples = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  spec.n_features = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 60;
  spec.support_size = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 10;
  spec.noise_stddev = 0.5;
  spec.feature_correlation = 0.3;

  std::printf("UoI_LASSO quickstart: n=%zu, p=%zu, true support=%zu\n\n",
              spec.n_samples, spec.n_features, spec.support_size);
  const auto data = uoi::data::make_regression(spec);
  const auto truth = uoi::core::SupportSet::from_beta(data.beta_true);

  // --- UoI_LASSO ---
  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 20;
  options.n_estimation_bootstraps = 10;
  options.n_lambdas = 20;
  uoi::support::Stopwatch watch;
  const auto uoi_fit = uoi::core::UoiLasso(options).fit(data.x, data.y);
  const double uoi_seconds = watch.seconds();

  // --- cross-validated LASSO baseline ---
  watch.reset();
  const auto cv_fit = uoi::solvers::cv_lasso(data.x, data.y, 30, 5);
  const double cv_seconds = watch.seconds();

  auto report = [&](const char* name, const uoi::linalg::Vector& beta,
                    double seconds, uoi::support::Table& table) {
    // Count a feature as selected when it carries non-negligible weight.
    const auto support = uoi::core::SupportSet::from_beta(beta, 1e-3);
    const auto acc =
        uoi::core::selection_accuracy(support, truth, spec.n_features);
    const auto est = uoi::core::estimation_accuracy(beta, data.beta_true);
    table.add_row({name, std::to_string(support.size()),
                   std::to_string(acc.false_positives),
                   std::to_string(acc.false_negatives),
                   uoi::support::format_fixed(acc.f1(), 3),
                   uoi::support::format_fixed(est.relative_l2, 3),
                   uoi::support::format_fixed(est.bias_on_support, 4),
                   uoi::support::format_seconds(seconds)});
  };

  uoi::support::Table table({"method", "selected", "FP", "FN", "F1",
                             "rel-L2", "bias", "time"});
  report("UoI_LASSO", uoi_fit.beta, uoi_seconds, table);
  report("CV-LASSO", cv_fit.beta, cv_seconds, table);
  std::printf("%s\n", table.to_text().c_str());

  std::printf("UoI candidate supports along the lambda path:\n");
  for (std::size_t j = 0; j < uoi_fit.lambdas.size(); ++j) {
    std::printf("  lambda %8.3f -> |S| = %zu\n", uoi_fit.lambdas[j],
                uoi_fit.candidate_supports[j].size());
  }
  std::printf(
      "\nTrue support:      %s\nUoI support:       %s\n"
      "(UoI keeps low false positives by intersecting bootstrap supports,\n"
      " and low bias by averaging OLS re-estimates — eqs. 3 and 4.)\n",
      truth.to_string().c_str(),
      uoi::core::SupportSet::from_beta(uoi_fit.beta, 1e-3)
          .to_string()
          .c_str());
  return 0;
}
