// End-to-end forecasting workflow: order selection -> UoI_VAR fit ->
// stability-scored Granger network -> h-step forecast -> model archive.
// Demonstrates the full downstream-user API surface on synthetic equity
// data (swap in `uoi::io::read_csv` for real data).
//
// Usage: forecasting [n_companies] [n_weeks] [horizon]

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "data/equity.hpp"
#include "io/csv.hpp"
#include "support/format.hpp"
#include "support/table.hpp"
#include "var/diagnostics.hpp"
#include "var/granger.hpp"
#include "var/model_io.hpp"
#include "var/order_selection.hpp"
#include "var/uoi_var.hpp"

int main(int argc, char** argv) {
  uoi::data::EquitySpec spec;
  spec.n_companies = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;
  spec.n_weeks = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 200;
  const std::size_t horizon =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 4;

  std::printf("Forecasting workflow: %zu companies, %zu weeks\n\n",
              spec.n_companies, spec.n_weeks);
  const auto market = uoi::data::make_equity(spec);
  const auto& series = market.weekly_differences;

  // 1. Order selection by information criteria.
  const auto order = uoi::var::select_var_order(series, 3);
  uoi::support::Table ic({"order", "AIC", "BIC"});
  for (std::size_t d = 1; d <= 3; ++d) {
    ic.add_row({std::to_string(d),
                uoi::support::format_fixed(order.aic[d - 1], 3),
                uoi::support::format_fixed(order.bic[d - 1], 3)});
  }
  std::printf("%sselected order (BIC): %zu\n\n", ic.to_text().c_str(),
              order.best_order);

  // 2. UoI_VAR fit at the selected order.
  uoi::var::UoiVarOptions options;
  options.order = order.best_order;
  options.n_selection_bootstraps = 15;
  options.n_estimation_bootstraps = 8;
  options.n_lambdas = 12;
  const auto fit = uoi::var::UoiVar(options).fit(series);

  // 3. Network with stability scores: edges that only a minority of
  // estimation bootstraps selected are flagged.
  const auto network =
      uoi::var::GrangerNetwork::from_model(fit.model, /*tolerance=*/0.02);
  std::printf("Granger network: %zu edges (density %.3f)\n",
              network.edge_count(), network.density());
  for (const auto& edge : network.edges()) {
    const double stability = fit.edge_stability(edge.target, edge.source);
    std::printf("  %-5s -> %-5s weight %+7.4f stability %.2f%s\n",
                market.tickers[edge.source].c_str(),
                market.tickers[edge.target].c_str(), edge.weight, stability,
                stability < 0.5 ? "  (low confidence)" : "");
  }

  // 3b. Residual diagnostics: are the fitted model's residuals white?
  const auto diagnostics =
      uoi::var::residual_diagnostics(fit.model, series, 8);
  std::size_t whiteness_failures = 0;
  for (const auto& d : diagnostics) {
    if (d.p_value < 0.05) ++whiteness_failures;
  }
  std::printf(
      "\nLjung-Box residual check: %zu of %zu variables reject whiteness "
      "at 5%%\n",
      whiteness_failures, diagnostics.size());

  // 4. Forecast the next weeks' differences.
  const auto fc = uoi::var::forecast(fit.model, series, horizon);
  std::printf("\n%zu-step forecast of the weekly differences:\n%s", horizon,
              uoi::io::to_csv(fc, market.tickers).c_str());

  // 5. Archive the fitted model.
  const std::string path =
      (std::filesystem::temp_directory_path() / "uoi_forecasting_model.txt")
          .string();
  uoi::var::save_model(path, fit.model);
  const auto reloaded = uoi::var::load_model(path);
  std::printf("\nmodel archived to %s (round trip OK: %s)\n", path.c_str(),
              uoi::linalg::max_abs_diff(reloaded.coefficient(0),
                                        fit.model.coefficient(0)) == 0.0
                  ? "yes"
                  : "NO");
  return 0;
}
