// Granger-causal network inference from equity time series — the paper's
// §VI / Fig. 11 analysis on the synthetic S&P-style dataset.
//
// Pipeline (identical to the paper's): weekly closes -> first differences
// -> VAR(1) fit by UoI_VAR with hyperparameters B1 = 40, B2 = 5 ("selected
// to create a strong pressure toward sparse parameter estimates") ->
// directed graph with edge j -> i for each nonzero a_ij.
//
// Usage: stock_network [n_companies] [n_weeks] [--dot file.dot]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "core/metrics.hpp"
#include "data/equity.hpp"
#include "support/format.hpp"
#include "var/granger.hpp"
#include "var/uoi_var.hpp"

int main(int argc, char** argv) {
  uoi::data::EquitySpec spec;
  spec.n_companies = argc > 1 && argv[1][0] != '-'
                         ? std::strtoul(argv[1], nullptr, 10)
                         : 50;
  spec.n_weeks =
      argc > 2 && argv[2][0] != '-' ? std::strtoul(argv[2], nullptr, 10) : 104;
  const char* dot_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--dot") == 0) dot_path = argv[i + 1];
  }

  std::printf(
      "S&P-style Granger analysis: %zu companies, %zu weekly closes "
      "(2 years),\nfirst differences -> VAR(1) via UoI_VAR (B1=40, B2=5)\n\n",
      spec.n_companies, spec.n_weeks);
  spec.cross_edge_probability = 0.02;  // sparse truth, as §VI's data implies
  const auto market = uoi::data::make_equity(spec);

  uoi::var::UoiVarOptions options;
  options.order = 1;
  options.n_selection_bootstraps = 40;  // paper's Fig. 11 hyperparameters
  options.n_estimation_bootstraps = 5;
  options.n_lambdas = 16;
  options.lambda_min_ratio = 3e-2;  // "strong pressure toward sparsity"
  const auto fit =
      uoi::var::UoiVar(options).fit(market.weekly_differences);

  const auto network =
      uoi::var::GrangerNetwork::from_model(fit.model, /*tolerance=*/0.03);
  const std::size_t possible = spec.n_companies * spec.n_companies;
  std::printf("Estimated network: %zu edges out of %zu possible (%.1f%%)\n",
              network.edge_count(), possible,
              100.0 * static_cast<double>(network.edge_count()) /
                  static_cast<double>(possible));
  std::printf("(The paper reports < 40 of 2,500 for its 50-company fit.)\n\n");

  // Hub companies, as Fig. 11 sizes nodes by degree.
  const auto degrees = network.degrees();
  std::printf("Highest-degree companies:\n");
  for (int shown = 0; shown < 5; ++shown) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < degrees.size(); ++i) {
      if (degrees[i] > degrees[best]) best = i;
    }
    if (degrees[best] == 0) break;
    std::printf("  %-5s degree %zu (sector %zu)\n",
                market.tickers[best].c_str(), degrees[best],
                market.sector_of[best]);
    const_cast<std::vector<std::size_t>&>(degrees)[best] = 0;
  }

  std::printf("\nEdges (source Granger-causes target):\n%s\n",
              network.to_edge_list(market.tickers).c_str());

  // Unlike the paper we know the generating network — score the recovery.
  const auto truth_net =
      uoi::var::GrangerNetwork::from_model(market.truth, 1e-6);
  const auto est_support =
      uoi::core::SupportSet::from_beta(fit.vec_beta, 0.03);
  const auto true_support =
      uoi::core::SupportSet::from_beta(market.truth.vec_b(), 1e-6);
  const auto acc = uoi::core::selection_accuracy(est_support, true_support,
                                                 fit.vec_beta.size());
  std::printf(
      "Against the generating network (%zu true edges): precision %.2f, "
      "recall %.2f, F1 %.2f\n",
      truth_net.edge_count(), acc.precision(), acc.recall(), acc.f1());

  if (dot_path != nullptr) {
    std::ofstream out(dot_path);
    out << network.to_dot(market.tickers);
    std::printf("Wrote Graphviz rendering to %s\n", dot_path);
  }
  return 0;
}
