// Fig. 11 + §VI — real-data applications of UoI_VAR.
//
// Three parts:
//  (a) the Fig. 11 Granger analysis: 50 equities, weekly first differences,
//      VAR(1), B1 = 40, B2 = 5 — the estimated graph must be sparse (the
//      paper: fewer than 40 of 2,500 possible edges);
//  (b) the §VI S&P runtime point: 470 companies / 195 samples on 2,176
//      cores through the calibrated model vs the paper's measurements;
//  (c) the §VI neuroscience runtime point: 192 electrodes / 51,111 samples
//      on 81,600 cores, same comparison.

#include <cstdio>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "data/equity.hpp"
#include "perfmodel/var_cost.hpp"
#include "support/format.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "var/granger.hpp"
#include "var/uoi_var.hpp"

using uoi::support::format_seconds;

int main() {
  uoi::bench::FigureTrace trace("fig11_applications");
  uoi::bench::BenchReport telemetry("fig11_applications");
  telemetry.config("n_companies", 50)
      .config("n_weeks", 104)
      .config("b1", 40)
      .config("b2", 5)
      .config("q", 16);
  std::printf("== Fig. 11 / SVI: UoI_VAR applications ==\n\n");

  // ---- (a) the Granger network analysis ----
  std::printf("-- (a) 50-equity Granger network (B1=40, B2=5, VAR(1)) --\n\n");
  uoi::data::EquitySpec spec;
  spec.n_companies = 50;
  spec.n_weeks = 104;
  spec.cross_edge_probability = 0.02;
  const auto market = uoi::data::make_equity(spec);

  uoi::var::UoiVarOptions options;
  options.order = 1;
  options.n_selection_bootstraps = 40;
  options.n_estimation_bootstraps = 5;
  options.n_lambdas = 16;
  options.lambda_min_ratio = 3e-2;
  uoi::support::Stopwatch watch;
  const auto fit = uoi::var::UoiVar(options).fit(market.weekly_differences);
  const double fit_seconds = watch.seconds();

  const auto network =
      uoi::var::GrangerNetwork::from_model(fit.model, /*tolerance=*/0.03);
  std::printf(
      "estimated edges: %zu of 2,500 possible  (paper: fewer than 40)\n"
      "fit time (laptop, serial): %s\n",
      network.edge_count(), format_seconds(fit_seconds).c_str());

  const auto est_support = uoi::core::SupportSet::from_beta(fit.vec_beta, 0.03);
  const auto true_support =
      uoi::core::SupportSet::from_beta(market.truth.vec_b(), 1e-6);
  const auto acc = uoi::core::selection_accuracy(est_support, true_support,
                                                 fit.vec_beta.size());
  std::printf(
      "vs synthetic ground truth: precision %.2f, recall %.2f, F1 %.2f\n"
      "(the paper could not score recovery — its truth is unknown)\n\n",
      acc.precision(), acc.recall(), acc.f1());

  // ---- (b) + (c): the runtime calibration points ----
  std::printf("-- (b/c) paper-scale runtime points, model vs measured --\n\n");
  const uoi::perf::UoiVarCostModel model;
  uoi::support::Table table({"application", "bucket", "model", "paper"});

  uoi::perf::UoiVarWorkload stock;
  stock.n_features = 470;
  stock.n_samples = 195;
  const auto sp = model.run(stock, 2176);
  table.add_row({"S&P 470 @ 2,176 cores", "computation",
                 format_seconds(sp.computation), "376.87 s"});
  table.add_row({"", "communication", format_seconds(sp.communication),
                 "4.74 s"});
  table.add_row({"", "Kron+vec distribution", format_seconds(sp.distribution),
                 "16.409 s"});

  uoi::perf::UoiVarWorkload neuro;
  neuro.n_features = 192;
  neuro.n_samples = 51111;
  const auto nh = model.run(neuro, 81600);
  table.add_row({"M1/S1 192 ch @ 81,600 cores", "computation",
                 format_seconds(nh.computation), "96.9 s"});
  table.add_row({"", "communication", format_seconds(nh.communication),
                 "1,598.72 s"});
  table.add_row({"", "distribution", format_seconds(nh.distribution),
                 "3,034.4 s"});
  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "shape check: compute-dominated at 2,176 cores; communication +\n"
      "distribution dominate at 81,600 cores, matching the paper's story.\n");
  return 0;
}
