// Fig. 12 (repo extension) — compute-load imbalance of the bootstrap x
// lambda task grid under the three schedule policies.
//
// Setup: a deliberately skewed grid on 8 ranks split into 4 task groups
// (P_B = 2, P_lambda = 2). Cells belonging to even bootstraps cost 10x
// their odd-bootstrap siblings, which the static (k % P_B, c % P_lambda)
// ownership map concentrates onto the two even-bootstrap groups — the
// worst case the cost-guided scheduler exists to fix. Each policy runs the
// identical cell set through sched::run_pass with a calibrated busy-work
// execute, and per-rank compute imbalance (max/mean of traced compute
// seconds) comes from the standard run-report pipeline.
//
// The bench also fits distributed UoI_LASSO under all three policies on
// the same data and verifies the models are bit-identical — the scheduler
// moves work, never numerics. Telemetry (BENCH_fig12_sched_imbalance.json)
// snapshots the final work_steal pass; the cross-policy imbalance numbers
// ride along in the config block for the regression gate.

#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_common.hpp"
#include "core/distributed_common.hpp"
#include "core/uoi_lasso_distributed.hpp"
#include "data/synthetic_regression.hpp"
#include "linalg/matrix.hpp"
#include "sched/scheduler.hpp"
#include "sched/task_grid.hpp"
#include "simcluster/cluster.hpp"
#include "support/format.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace {

constexpr int kRanks = 8;
constexpr int kPb = 2;
constexpr int kPl = 2;
constexpr int kGroups = kPb * kPl;
constexpr std::size_t kBootstraps = 8;
constexpr std::size_t kLambdas = 8;
constexpr double kHeavySeconds = 4e-3;
constexpr double kLightSeconds = 4e-4;

void busy_wait(double seconds) {
  uoi::support::Stopwatch watch;
  while (watch.seconds() < seconds) {
  }
}

/// Runs the skewed grid once under `policy` and returns the per-rank
/// compute max/mean from the traced totals.
double measure_imbalance(uoi::sched::SchedulePolicy policy) {
  auto& tracer = uoi::support::Tracer::instance();
  tracer.clear();
  uoi::support::MetricsRegistry::instance().clear();
  uoi::support::Stopwatch wall;

  uoi::sim::Cluster::run(kRanks, [&](uoi::sim::Comm& comm) {
    const auto tl = uoi::core::detail::make_task_layout(
        comm.rank(), comm.size(), kPb, kPl);
    uoi::sim::Comm task_comm = comm.split(tl.task_group, comm.rank());
    const uoi::sched::GroupInfo info{kGroups, tl.task_group, tl.task_rank,
                                     kPb, kPl};
    const uoi::sched::TaskGrid grid(kBootstraps, kLambdas, kPl, 7);
    std::vector<double> costs(grid.n_cells());
    for (std::size_t id = 0; id < costs.size(); ++id) {
      costs[id] = grid.cell(id).bootstrap % 2 == 0 ? kHeavySeconds
                                                   : kLightSeconds;
    }
    std::vector<std::size_t> cells(grid.n_cells());
    std::iota(cells.begin(), cells.end(), 0u);
    const auto placement = uoi::sched::plan_placement(
        policy, grid, cells, costs, info,
        uoi::sched::group_widths(comm.size(), kGroups));
    const auto execute = [&](const uoi::sched::TaskCell& cell) {
      uoi::support::TraceScope span(
          "sched-cell", uoi::support::TraceCategory::kComputation);
      busy_wait(costs[grid.cell_id(cell.bootstrap, cell.chain)]);
    };
    const auto stats =
        uoi::sched::run_pass(comm, task_comm, info, policy, grid, placement,
                             costs, {}, execute);
    uoi::sched::export_pass_metrics(comm.rank(), info, policy, stats);
  });

  const auto report =
      uoi::report::build_run_report(uoi::report::collect_inputs(
          wall.seconds()));
  return report.compute_max_over_mean;
}

/// Distributed UoI_LASSO beta under `policy` (rank 0 copy).
uoi::linalg::Vector fit_beta(uoi::sched::SchedulePolicy policy,
                             const uoi::data::RegressionDataset& data) {
  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 6;
  options.n_estimation_bootstraps = 4;
  options.n_lambdas = 6;
  options.seed = 2026;
  options.schedule = policy;
  uoi::linalg::Vector beta;
  uoi::sim::Cluster::run(kRanks, [&](uoi::sim::Comm& comm) {
    const auto result = uoi::core::uoi_lasso_distributed(
        comm, data.x, data.y, options, {kPb, kPl});
    if (comm.rank() == 0) beta = result.model.beta;
  });
  return beta;
}

}  // namespace

int main() {
  uoi::bench::FigureTrace trace("fig12_sched_imbalance");
  uoi::bench::BenchReport telemetry("fig12_sched_imbalance");
  telemetry.config("ranks", kRanks)
      .config("groups", kGroups)
      .config("bootstraps", kBootstraps)
      .config("lambdas", kLambdas)
      .config("cost_skew", kHeavySeconds / kLightSeconds);
  std::printf(
      "== Fig. 12: scheduler imbalance on a skewed bootstrap x lambda "
      "grid ==\n\n");

  // Model-identity gate first: the scheduler must not change the numbers.
  uoi::data::RegressionSpec spec;
  spec.n_samples = 60;
  spec.n_features = 12;
  spec.support_size = 4;
  spec.seed = 31;
  const auto data = uoi::data::make_regression(spec);
  const auto beta_static =
      fit_beta(uoi::sched::SchedulePolicy::kStatic, data);
  const auto beta_lpt = fit_beta(uoi::sched::SchedulePolicy::kCostLpt, data);
  const auto beta_steal =
      fit_beta(uoi::sched::SchedulePolicy::kWorkSteal, data);
  const bool bit_identical =
      uoi::linalg::max_abs_diff(beta_static, beta_lpt) == 0.0 &&
      uoi::linalg::max_abs_diff(beta_static, beta_steal) == 0.0;
  std::printf("model.beta bit-identical across policies: %s\n\n",
              bit_identical ? "yes" : "NO — SCHEDULER BUG");

  // Imbalance sweep. The last run (work_steal) is the one the telemetry
  // destructor snapshots, so its sched.* counters land in the report.
  const double imbalance_static =
      measure_imbalance(uoi::sched::SchedulePolicy::kStatic);
  const double imbalance_lpt =
      measure_imbalance(uoi::sched::SchedulePolicy::kCostLpt);
  const double imbalance_steal =
      measure_imbalance(uoi::sched::SchedulePolicy::kWorkSteal);
  const double reduction =
      imbalance_static > 0.0
          ? 100.0 * (imbalance_static - imbalance_steal) / imbalance_static
          : 0.0;

  uoi::support::Table table({"policy", "compute max/mean"});
  table.add_row({"static", uoi::support::format_fixed(imbalance_static, 3)});
  table.add_row({"cost_lpt", uoi::support::format_fixed(imbalance_lpt, 3)});
  table.add_row(
      {"work_steal", uoi::support::format_fixed(imbalance_steal, 3)});
  std::printf("%s\n", table.to_text().c_str());
  std::printf("work_steal vs static imbalance reduction: %.1f%%\n",
              reduction);

  telemetry.config("imbalance_static", imbalance_static)
      .config("imbalance_cost_lpt", imbalance_lpt)
      .config("imbalance_work_steal", imbalance_steal)
      .config("imbalance_reduction_pct", reduction)
      .config("beta_bit_identical", bit_identical ? "yes" : "no");

  // Fail loudly if either acceptance property regresses: the scheduler
  // exists to cut the skew (>= 25%) without touching the model.
  if (!bit_identical || reduction < 25.0) {
    std::printf("FAIL: acceptance thresholds not met\n");
    return 1;
  }
  return 0;
}
