// Statistical-accuracy bench (the paper's §I claims, demonstrated rather
// than cited): UoI_LASSO vs cross-validated LASSO vs Ridge on selection
// (false positives / false negatives) and estimation (bias, relative L2),
// and UoI_VAR vs per-equation CV-LASSO on Granger-support recovery.
//
// Replicates the qualitative result of the UoI papers the evaluation
// leans on: comparable recall, far fewer false positives, lower bias.

#include <cstdio>

#include "core/metrics.hpp"
#include "core/uoi_lasso.hpp"
#include "data/synthetic_regression.hpp"
#include "data/synthetic_var.hpp"
#include "solvers/cd_lasso.hpp"
#include "solvers/ridge.hpp"
#include "support/format.hpp"
#include "support/table.hpp"
#include "var/granger_test.hpp"
#include "var/lag_matrix.hpp"
#include "var/uoi_var.hpp"

using uoi::core::SupportSet;
using uoi::support::format_fixed;

namespace {

struct Scores {
  double fp = 0.0, fn = 0.0, f1 = 0.0, rel_l2 = 0.0, bias = 0.0;
};

void add_scores(Scores& acc, std::span<const double> beta,
                std::span<const double> truth_beta, double tolerance) {
  const auto support = SupportSet::from_beta(beta, tolerance);
  const auto truth = SupportSet::from_beta(truth_beta, 1e-9);
  const auto sel =
      uoi::core::selection_accuracy(support, truth, truth_beta.size());
  const auto est = uoi::core::estimation_accuracy(beta, truth_beta);
  acc.fp += static_cast<double>(sel.false_positives);
  acc.fn += static_cast<double>(sel.false_negatives);
  acc.f1 += sel.f1();
  acc.rel_l2 += est.relative_l2;
  acc.bias += est.bias_on_support;
}

void print_scores(uoi::support::Table& table, const char* name,
                  const Scores& s, int trials) {
  const double n = trials;
  table.add_row({name, format_fixed(s.fp / n, 1), format_fixed(s.fn / n, 1),
                 format_fixed(s.f1 / n, 3), format_fixed(s.rel_l2 / n, 3),
                 format_fixed(s.bias / n, 4)});
}

}  // namespace

int main() {
  constexpr int kTrials = 5;

  std::printf("== Statistical accuracy: UoI vs baselines ==\n\n");
  std::printf("-- sparse regression (n=300, p=50, k=8, %d trials) --\n\n",
              kTrials);
  Scores uoi_scores, cv_scores, ridge_scores;
  for (int trial = 0; trial < kTrials; ++trial) {
    uoi::data::RegressionSpec spec;
    spec.n_samples = 300;
    spec.n_features = 50;
    spec.support_size = 8;
    spec.noise_stddev = 0.5;
    spec.feature_correlation = 0.3;
    spec.seed = 1000 + static_cast<std::uint64_t>(trial);
    const auto data = uoi::data::make_regression(spec);

    uoi::core::UoiLassoOptions options;
    options.n_selection_bootstraps = 15;
    options.n_estimation_bootstraps = 8;
    options.n_lambdas = 15;
    options.seed = 77 + static_cast<std::uint64_t>(trial);
    // Selection threshold 0.02: a feature "is selected" when it carries
    // non-negligible weight (true coefficients are >= 0.5; UoI's union
    // averaging dilutes minority-vote features well below this).
    const auto uoi_fit = uoi::core::UoiLasso(options).fit(data.x, data.y);
    add_scores(uoi_scores, uoi_fit.beta, data.beta_true, 0.02);

    const auto cv = uoi::solvers::cv_lasso(data.x, data.y, 25, 5,
                                           7 + static_cast<std::uint64_t>(trial));
    add_scores(cv_scores, cv.beta, data.beta_true, 0.02);

    const auto ridge_beta = uoi::solvers::ridge(data.x, data.y, 10.0);
    add_scores(ridge_scores, ridge_beta, data.beta_true, 0.02);
  }
  uoi::support::Table reg_table(
      {"method", "FP (avg)", "FN (avg)", "F1", "rel-L2", "bias"});
  print_scores(reg_table, "UoI_LASSO", uoi_scores, kTrials);
  print_scores(reg_table, "CV-LASSO", cv_scores, kTrials);
  print_scores(reg_table, "Ridge", ridge_scores, kTrials);
  std::printf("%s\n", reg_table.to_text().c_str());
  std::printf(
      "expected: UoI FP << CV-LASSO FP at comparable FN; Ridge selects "
      "everything.\n\n");

  std::printf("-- VAR Granger recovery (p=12, 500 samples, %d trials) --\n\n",
              kTrials);
  Scores uoi_var_scores, lasso_var_scores, ftest_scores;
  for (int trial = 0; trial < kTrials; ++trial) {
    uoi::data::VarSpec spec;
    spec.n_nodes = 12;
    spec.edges_per_node = 2.0;
    spec.seed = 2000 + static_cast<std::uint64_t>(trial);
    const auto truth = uoi::data::make_sparse_var(spec);
    uoi::var::SimulateOptions sim;
    sim.n_samples = 500;
    sim.seed = 3000 + static_cast<std::uint64_t>(trial);
    const auto series = uoi::var::simulate(truth, sim);

    uoi::var::UoiVarOptions options;
    options.n_selection_bootstraps = 12;
    options.n_estimation_bootstraps = 6;
    options.n_lambdas = 12;
    options.seed = 99 + static_cast<std::uint64_t>(trial);
    const auto fit = uoi::var::UoiVar(options).fit(series);
    add_scores(uoi_var_scores, fit.vec_beta, truth.vec_b(), 0.03);

    // Baseline: per-equation CV-LASSO on the same lag regression (the
    // vectorized problem decomposes per equation).
    const auto lag = uoi::var::build_lag_regression(series, 1);
    uoi::linalg::Vector lasso_beta(fit.vec_beta.size(), 0.0);
    for (std::size_t e = 0; e < truth.dim(); ++e) {
      const auto y_e = lag.y.col(e);
      const auto cv = uoi::solvers::cv_lasso(
          lag.x, y_e, 20, 4, 5 + e + static_cast<std::uint64_t>(trial));
      for (std::size_t c = 0; c < lag.x.cols(); ++c) {
        lasso_beta[e * lag.x.cols() + c] = cv.beta[c];
      }
    }
    add_scores(lasso_var_scores, lasso_beta, truth.vec_b(), 0.03);

    // Classical baseline: pairwise Granger F-tests (Bonferroni at 5%).
    // Selection-only (no coefficient estimates): encode the selected
    // edges as +-1 indicators aligned with the truth's signs so the
    // selection columns are comparable and the estimation columns are
    // read as "n/a".
    const auto tests = uoi::var::granger_f_tests(series, 1);
    const auto f_net = uoi::var::granger_network_from_tests(
        tests, truth.dim(), 0.05, true);
    uoi::linalg::Vector f_beta(fit.vec_beta.size(), 0.0);
    const std::size_t dp = truth.dim();
    for (const auto& edge : f_net.edges()) {
      // vec index of a_{target,source} at lag 0.
      f_beta[edge.target * dp + edge.source] = 1.0;
    }
    // Keep diagonal (self) terms out of the comparison for the F-test row
    // by copying the truth's diagonal selections.
    for (std::size_t i = 0; i < truth.dim(); ++i) {
      f_beta[i * dp + i] = truth.coefficient(0)(i, i) != 0.0 ? 1.0 : 0.0;
    }
    add_scores(ftest_scores, f_beta, truth.vec_b(), 0.5);
  }
  uoi::support::Table var_table(
      {"method", "FP (avg)", "FN (avg)", "F1", "rel-L2", "bias"});
  print_scores(var_table, "UoI_VAR", uoi_var_scores, kTrials);
  print_scores(var_table, "CV-LASSO/eq", lasso_var_scores, kTrials);
  print_scores(var_table, "F-test (5%, Bonf.)", ftest_scores, kTrials);
  std::printf("%s\n", var_table.to_text().c_str());
  std::printf(
      "expected: UoI_VAR selects far fewer spurious edges at similar "
      "recall,\nwith less coefficient shrinkage (the [11] companion-paper "
      "claim).\n");
  return 0;
}
