// Fig. 10 — UoI_VAR strong scaling (1 TB fixed, 4,352 -> 34,816 cores).
//
// Paper shape: computation nearly ideal (halves per doubling, thanks to
// the sparse kernels); communication grows but barely affects the total;
// the distributed Kronecker+vectorization grows steeply with cores, as in
// weak scaling.

#include <cstdio>

#include "bench_common.hpp"
#include "data/synthetic_var.hpp"
#include "perfmodel/var_cost.hpp"
#include "simcluster/cluster.hpp"
#include "var/var_distributed.hpp"

int main() {
  uoi::bench::FigureTrace trace("fig10_var_strong");
  uoi::bench::BenchReport telemetry("fig10_var_strong");
  telemetry.config("rank_sweep", "2,4,8")
      .config("n_nodes", 10)
      .config("n_samples", 360)
      .config("b1", 4)
      .config("b2", 3)
      .config("q", 5);
  std::printf("== Fig. 10: UoI_VAR strong scaling (1 TB fixed) ==\n");

  uoi::bench::banner("modeled at paper scale");
  const uoi::perf::UoiVarCostModel model;
  const auto w = uoi::perf::UoiVarWorkload::from_problem_gb(1024);
  auto table = uoi::bench::breakdown_table("cores");
  double first_compute = 0.0;
  std::uint64_t first_cores = 0;
  for (const auto& point : uoi::perf::table1_var_strong_scaling()) {
    const auto b = model.run(w, point.cores);
    if (first_cores == 0) {
      first_cores = point.cores;
      first_compute = b.computation;
    }
    const double ideal = first_compute *
                         static_cast<double>(first_cores) /
                         static_cast<double>(point.cores);
    auto row = uoi::bench::breakdown_row(
        uoi::support::format_count(point.cores), b);
    row.back() =
        uoi::support::format_fixed(b.computation / ideal, 2) + "x ideal";
    table.add_row(row);
  }
  std::printf("%s", table.to_text().c_str());
  std::printf(
      "\npaper shape: compute ~1.0x ideal throughout; distribution grows "
      "with cores.\n");

  uoi::bench::banner("functional strong scaling (fixed 360-sample series)");
  uoi::data::VarSpec spec;
  spec.n_nodes = 10;
  spec.seed = 11;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 360;
  sim.seed = 12;
  const auto series = uoi::var::simulate(truth, sim);
  uoi::var::UoiVarOptions options;
  options.n_selection_bootstraps = 4;
  options.n_estimation_bootstraps = 3;
  options.n_lambdas = 5;

  uoi::support::Table func({"ranks", "compute (rank 0)", "comm (rank 0)",
                            "distribution (rank 0)"});
  for (const int ranks : {2, 4, 8}) {
    uoi::core::UoiDistributedBreakdown breakdown;
    uoi::sim::Cluster::run(ranks, [&](uoi::sim::Comm& comm) {
      const auto result =
          uoi::var::uoi_var_distributed(comm, series, options, {}, 2);
      if (comm.rank() == 0) breakdown = result.breakdown;
    });
    func.add_row(
        {std::to_string(ranks),
         uoi::support::format_seconds(breakdown.computation_seconds),
         uoi::support::format_seconds(breakdown.communication_seconds),
         uoi::support::format_seconds(breakdown.distribution_seconds)});
  }
  std::printf("%s", func.to_text().c_str());
  return 0;
}
