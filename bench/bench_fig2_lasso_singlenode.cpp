// Fig. 2 — UoI_LASSO single-node runtime breakdown.
//
// Paper setup: 16 GB, 68 KNL cores, B1 = B2 = 5, q = 8. Reported shape:
// ~90% computation, < 10% communication (of which > 99% is MPI_Allreduce),
// small distribution and data-I/O slivers.
//
// We print (a) the calibrated model at exactly the paper's configuration
// and (b) a functional run on the simulated cluster with the same
// B1/B2/q, measuring real buckets and verifying the Allreduce share.

#include <cstdio>

#include "bench_common.hpp"
#include "core/uoi_lasso_distributed.hpp"
#include "data/synthetic_regression.hpp"
#include "perfmodel/emulation.hpp"
#include "perfmodel/lasso_cost.hpp"
#include "simcluster/cluster.hpp"

int main() {
  uoi::bench::FigureTrace trace("fig2_lasso_singlenode");
  uoi::bench::BenchReport telemetry("fig2_lasso_singlenode");
  telemetry.config("ranks", 8)
      .config("n_samples", 1024)
      .config("n_features", 64)
      .config("b1", 5)
      .config("b2", 5)
      .config("q", 8);
  std::printf("== Fig. 2: UoI_LASSO single-node runtime breakdown ==\n");

  uoi::bench::banner("modeled at paper scale (16 GB, 68 cores, B1=B2=5, q=8)");
  const uoi::perf::UoiLassoCostModel model;
  uoi::perf::UoiLassoWorkload w;
  w.data_bytes = 16ULL << 30;
  w.b1 = 5;
  w.b2 = 5;
  w.q = 8;
  w.striped = false;  // the 16 GB dataset was not striped (Table II)
  const auto breakdown = model.run(w, 68);
  auto table = uoi::bench::breakdown_table("configuration");
  table.add_row(uoi::bench::breakdown_row("16 GB / 68 cores", breakdown));
  std::printf("%s", table.to_text().c_str());
  std::printf(
      "\npaper shape: computation ~90%%, communication <10%% "
      "(>99%% of it MPI_Allreduce)\n");

  uoi::bench::banner("functional (8 sim ranks, 0.5 MB dataset, B1=B2=5, q=8)");
  uoi::data::RegressionSpec spec;
  spec.n_samples = 1024;
  spec.n_features = 64;
  spec.support_size = 8;
  const auto data = uoi::data::make_regression(spec);

  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 5;
  options.n_estimation_bootstraps = 5;
  options.n_lambdas = 8;

  uoi::core::UoiDistributedBreakdown measured;
  auto stats = uoi::sim::Cluster::run_collect_stats(8, [&](uoi::sim::Comm& comm) {
    const auto result =
        uoi::core::uoi_lasso_distributed(comm, data.x, data.y, options);
    if (comm.rank() == 0) measured = result.breakdown;
  });

  double allreduce_seconds = 0.0, collective_seconds = 0.0;
  std::uint64_t allreduce_calls = 0;
  for (const auto& s : stats) {
    allreduce_seconds += s.of(uoi::sim::CommCategory::kAllreduce).seconds;
    allreduce_calls += s.of(uoi::sim::CommCategory::kAllreduce).calls;
    collective_seconds += s.collective_seconds();
  }
  const double total = measured.computation_seconds +
                       measured.communication_seconds +
                       measured.distribution_seconds;
  std::printf(
      "rank-0 buckets: computation %s (%.1f%%), communication %s, "
      "distribution %s\n",
      uoi::support::format_seconds(measured.computation_seconds).c_str(),
      total > 0 ? 100.0 * measured.computation_seconds / total : 0.0,
      uoi::support::format_seconds(measured.communication_seconds).c_str(),
      uoi::support::format_seconds(measured.distribution_seconds).c_str());
  std::printf(
      "Allreduce share of collective time (all ranks): %.1f%% across %s "
      "calls\n",
      collective_seconds > 0 ? 100.0 * allreduce_seconds / collective_seconds
                             : 0.0,
      uoi::support::format_count(allreduce_calls).c_str());
  std::printf(
      "note: threads-as-ranks on an oversubscribed host count barrier wait\n"
      "as communication, inflating that bucket relative to a real cluster;\n"
      "the Allreduce share (>99%% per the paper) is the meaningful check.\n");

  uoi::bench::banner(
      "functional with latency emulation (68-core network model injected)");
  // Same run with every collective busy-waiting its modeled 68-core cost.
  // The local problem is ~30,000x smaller than the paper's per-core share,
  // so the emulated run is communication-dominated — the strong-scaling
  // intuition (tiny per-core work -> network-bound) made tangible. The
  // paper's ~90% compute share corresponds to the modeled row above.
  uoi::core::UoiDistributedBreakdown emulated;
  uoi::sim::Cluster::run(4, [&](uoi::sim::Comm& comm) {
    comm.set_latency_injector(uoi::perf::make_profile_injector(
        uoi::perf::knl_profile(), /*emulated_cores=*/68,
        /*time_scale=*/1.0));
    const auto result =
        uoi::core::uoi_lasso_distributed(comm, data.x, data.y, options);
    if (comm.rank() == 0) emulated = result.breakdown;
  });
  const double emulated_total = emulated.computation_seconds +
                                emulated.communication_seconds +
                                emulated.distribution_seconds;
  std::printf(
      "emulated buckets: computation %s (%.1f%%), communication %s "
      "(%.1f%%), distribution %s\n",
      uoi::support::format_seconds(emulated.computation_seconds).c_str(),
      emulated_total > 0
          ? 100.0 * emulated.computation_seconds / emulated_total
          : 0.0,
      uoi::support::format_seconds(emulated.communication_seconds).c_str(),
      emulated_total > 0
          ? 100.0 * emulated.communication_seconds / emulated_total
          : 0.0,
      uoi::support::format_seconds(emulated.distribution_seconds).c_str());
  return 0;
}
