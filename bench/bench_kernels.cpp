// google-benchmark microbenchmarks of the computational kernels the
// solvers are built on — the laptop-scale analogue of the paper's Intel
// Advisor single-node profiling (§IV-A1, §IV-B1). Reports GFLOPS per
// kernel so the local machine can be compared against the paper's KNL
// measurements (gemm 30.83, gemv 1.12, trsv 0.011, spmv 2.08 GFLOPS).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/kron.hpp"
#include "linalg/simd.hpp"
#include "linalg/sparse.hpp"
#include "solvers/admm_lasso.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"
#include "support/trace.hpp"

namespace {

using uoi::linalg::Matrix;
using uoi::linalg::Vector;

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  uoi::support::Xoshiro256 rng(seed);
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal();
  }
  return m;
}

Vector random_vector(std::size_t n, std::uint64_t seed) {
  uoi::support::Xoshiro256 rng(seed);
  Vector v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 1);
  const Matrix b = random_matrix(n, n, 2);
  Matrix c(n, n);
  for (auto _ : state) {
    uoi::linalg::gemm(1.0, a, b, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(uoi::linalg::gemm_flops(n, n, n)) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Gemv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 3);
  const Vector x = random_vector(n, 4);
  Vector y(n, 0.0);
  for (auto _ : state) {
    uoi::linalg::gemv(1.0, a, x, 0.0, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(uoi::linalg::gemv_flops(n, n)) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Gemv)->Arg(256)->Arg(1024);

void BM_SyrkAtA(benchmark::State& state) {
  // The Gram build A'A — the dominant setup cost the factorization cache
  // amortizes across lambda chains (blocked, packed, 2x4 micro-kernel).
  const auto p = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(4 * p, p, 15);
  Matrix gram(p, p);
  for (auto _ : state) {
    uoi::linalg::syrk_at_a(1.0, a, 0.0, gram);
    benchmark::DoNotOptimize(gram.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(uoi::linalg::gemm_flops(p, 4 * p, p)) / 2.0 * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_SyrkAtA)->Arg(64)->Arg(160)->Arg(256);

void BM_CholeskyFactorOnly(benchmark::State& state) {
  // The rho-refactorization cost: with the Gram cached, an adaptive-rho
  // step pays exactly this (shift constructor), never the syrk above.
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n + 8, n, 16);
  Matrix spd(n, n);
  uoi::linalg::syrk_at_a(1.0, a, 0.0, spd);
  for (auto _ : state) {
    const uoi::linalg::CholeskyFactor factor(spd, 1.0);
    benchmark::DoNotOptimize(factor.lower().data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(uoi::linalg::cholesky_flops(n)) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_CholeskyFactorOnly)->Arg(64)->Arg(160)->Arg(256);

void BM_Dist2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Vector a = random_vector(n, 17);
  const Vector b = random_vector(n, 18);
  for (auto _ : state) {
    double d = uoi::linalg::dist2(a, b);
    benchmark::DoNotOptimize(d);
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      3.0 * static_cast<double>(n) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Dist2)->Arg(1024)->Arg(16384);

// Per-ISA level-1 kernels: the same benchmark body run through each
// entry of the runtime dispatch table (arg 1 = SimdLevel), so the
// scalar / AVX2 / AVX-512 implementations can be compared on one
// machine. Levels the CPU lacks clamp to the detected level (the label
// shows which table actually ran).
uoi::linalg::simd::SimdLevel bench_simd_level(benchmark::State& state) {
  auto requested =
      static_cast<uoi::linalg::simd::SimdLevel>(state.range(1));
  const auto effective = std::min(requested,
                                  uoi::linalg::simd::detect_simd_level());
  state.SetLabel(uoi::linalg::simd::simd_level_name(effective));
  return requested;
}

void BM_SimdDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& kernels =
      uoi::linalg::simd::kernel_table(bench_simd_level(state));
  const Vector x = random_vector(n, 19);
  const Vector y = random_vector(n, 20);
  for (auto _ : state) {
    double d = kernels.dot(x.data(), y.data(), n);
    benchmark::DoNotOptimize(d);
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_SimdDot)->ArgsProduct({{1024, 16384, 262144}, {0, 1, 2}});

void BM_SimdAxpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto& kernels =
      uoi::linalg::simd::kernel_table(bench_simd_level(state));
  const Vector x = random_vector(n, 21);
  Vector y = random_vector(n, 22);
  for (auto _ : state) {
    kernels.axpy(0.37, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_SimdAxpy)->ArgsProduct({{1024, 16384, 262144}, {0, 1, 2}});

void BM_SimdGatherScatter(benchmark::State& state) {
  // The working-set compact/expand pair the screening path runs per ADMM
  // iteration: stride-8 survivors model a ~12% survivor fraction.
  const auto p = static_cast<std::size_t>(state.range(0));
  const auto& kernels =
      uoi::linalg::simd::kernel_table(bench_simd_level(state));
  const Vector full = random_vector(p, 23);
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < p; i += 8) idx.push_back(i);
  Vector compact(idx.size(), 0.0);
  Vector expanded(p, 0.0);
  for (auto _ : state) {
    kernels.gather(full.data(), idx.data(), idx.size(), compact.data());
    kernels.scatter(compact.data(), idx.data(), idx.size(),
                    expanded.data());
    benchmark::DoNotOptimize(expanded.data());
  }
}
BENCHMARK(BM_SimdGatherScatter)->ArgsProduct({{16384, 262144}, {0, 1, 2}});

void BM_CholeskyFactorAndSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n + 8, n, 5);
  Matrix spd(n, n);
  uoi::linalg::syrk_at_a(1.0, a, 0.0, spd);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 1.0;
  const Vector b = random_vector(n, 6);
  Vector x(n);
  for (auto _ : state) {
    const uoi::linalg::CholeskyFactor factor(spd);
    factor.solve(b, x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_CholeskyFactorAndSolve)->Arg(64)->Arg(256);

void BM_TriangularSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n + 8, n, 7);
  Matrix spd(n, n);
  uoi::linalg::syrk_at_a(1.0, a, 0.0, spd);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 1.0;
  const uoi::linalg::CholeskyFactor factor(spd);
  const Vector b = random_vector(n, 8);
  Vector x(n);
  for (auto _ : state) {
    factor.solve(b, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(uoi::linalg::trsv_flops(n)) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_TriangularSolve)->Arg(256)->Arg(1024);

void BM_SparseGemv(benchmark::State& state) {
  // A block-diagonal I (x) X operator at the VAR sparsity 1 - 1/p.
  const auto p = static_cast<std::size_t>(state.range(0));
  const Matrix x_block = random_matrix(2 * p, p, 9);
  const auto design = uoi::linalg::SparseMatrix::block_diagonal(x_block, p);
  const Vector v = random_vector(design.cols(), 10);
  Vector y(design.rows(), 0.0);
  for (auto _ : state) {
    design.gemv(1.0, v, 0.0, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(design.nnz()) * 1e-9,
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["sparsity"] = design.sparsity();
}
BENCHMARK(BM_SparseGemv)->Arg(16)->Arg(32);

void BM_KronImplicitGemv(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const Matrix x_block = random_matrix(2 * p, p, 11);
  const uoi::linalg::KroneckerIdentityOp op(x_block, p);
  const Vector v = random_vector(op.cols(), 12);
  Vector y(op.rows(), 0.0);
  for (auto _ : state) {
    op.gemv(1.0, v, 0.0, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_KronImplicitGemv)->Arg(16)->Arg(32);

void BM_LassoAdmmSolve(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const Matrix x = random_matrix(4 * p, p, 13);
  Vector beta(p, 0.0);
  uoi::support::Xoshiro256 rng(14);
  for (std::size_t i = 0; i < p / 8; ++i) beta[i] = rng.normal();
  Vector y(4 * p, 0.0);
  uoi::linalg::gemv(1.0, x, beta, 0.0, y);
  for (auto& v : y) v += 0.1 * rng.normal();
  const uoi::solvers::LassoAdmmSolver solver(x, y);
  const double lambda = 0.1 * 4 * p;
  for (auto _ : state) {
    auto fit = solver.solve(lambda);
    benchmark::DoNotOptimize(fit.beta.data());
  }
}
BENCHMARK(BM_LassoAdmmSolve)->Arg(32)->Arg(128);

// Observability overhead: one TraceScope span with event capture off
// (totals + histogram update only — the always-on cost every traced
// communication call pays) vs. on (adds the event-buffer append the
// --trace-json / --report-json paths enable).
void BM_TracerSpan(benchmark::State& state) {
  auto& tracer = uoi::support::Tracer::instance();
  tracer.clear();
  tracer.set_capture_events(false);
  for (auto _ : state) {
    uoi::support::TraceScope span(
        "bench-span", uoi::support::TraceCategory::kCommunication);
    benchmark::ClobberMemory();
  }
  tracer.clear();
}
BENCHMARK(BM_TracerSpan);

void BM_TracerSpanCaptured(benchmark::State& state) {
  auto& tracer = uoi::support::Tracer::instance();
  tracer.clear();
  tracer.set_capture_events(true);
  std::size_t recorded = 0;
  for (auto _ : state) {
    uoi::support::TraceScope span(
        "bench-span", uoi::support::TraceCategory::kCommunication);
    benchmark::ClobberMemory();
    if (++recorded % (1 << 16) == 0) tracer.clear();  // bound the buffer
  }
  tracer.set_capture_events(false);
  tracer.clear();
}
BENCHMARK(BM_TracerSpanCaptured);

// One live-telemetry snapshot line (what the emitter thread does per
// interval): short-lock tracer/metrics snapshot + JSON-line build.
void BM_TelemetrySnapshot(benchmark::State& state) {
  auto& tracer = uoi::support::Tracer::instance();
  tracer.clear();
  for (int rank = 0; rank < 8; ++rank) {
    for (int c = 0; c < 4; ++c) {
      tracer.record("warm", static_cast<uoi::support::TraceCategory>(c), rank,
                    0.0, 1e-6);
    }
  }
  std::map<int, uoi::support::TraceTotals> prev;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    const auto line = uoi::support::TelemetryEmitter::build_snapshot_line(
        seq++, 0.0, 500, 0, prev);
    benchmark::DoNotOptimize(line.data());
  }
  tracer.clear();
}
BENCHMARK(BM_TelemetrySnapshot);

}  // namespace

BENCHMARK_MAIN();
