// Fig. 7 — UoI_VAR single-node runtime breakdown.
//
// Paper setup: ~16 GB problem, 68 cores, B1 = B2 = 5, q = 8, sparse
// solver. Reported shape: computation ~88% of runtime; the distributed
// Kronecker product + vectorization is > 98% of the distribution bucket;
// Allreduce communication visible because of the problem-size explosion.

#include <cstdio>

#include "bench_common.hpp"
#include "data/synthetic_var.hpp"
#include "perfmodel/var_cost.hpp"
#include "simcluster/cluster.hpp"
#include "var/var_distributed.hpp"

int main() {
  uoi::bench::FigureTrace trace("fig7_var_singlenode");
  uoi::bench::BenchReport telemetry("fig7_var_singlenode");
  telemetry.config("ranks", 8)
      .config("n_nodes", 12)
      .config("n_samples", 300)
      .config("b1", 5)
      .config("b2", 5)
      .config("q", 8);
  std::printf("== Fig. 7: UoI_VAR single-node runtime breakdown ==\n");

  uoi::bench::banner(
      "modeled at paper scale (16 GB problem, 68 cores, B1=B2=5, q=8)");
  const uoi::perf::UoiVarCostModel model;
  auto w = uoi::perf::UoiVarWorkload::from_problem_gb(16);
  w.b1 = 5;
  w.b2 = 5;
  w.q = 8;
  w.n_readers = 8;
  const auto breakdown = model.run(w, 68);
  auto table = uoi::bench::breakdown_table("configuration");
  table.add_row(uoi::bench::breakdown_row(
      "16 GB problem (p = " + std::to_string(w.n_features) + ") / 68 cores",
      breakdown));
  std::printf("%s", table.to_text().c_str());
  std::printf(
      "\npaper shape: computation ~88%% of runtime; Kron+vec dominates "
      "distribution; sparsity = 1 - 1/p = %.4f\n",
      w.design_sparsity());

  uoi::bench::banner(
      "functional (8 sim ranks, p=12 series, distributed Kron+vec)");
  uoi::data::VarSpec spec;
  spec.n_nodes = 12;
  spec.seed = 5;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 300;
  sim.seed = 6;
  const auto series = uoi::var::simulate(truth, sim);

  uoi::var::UoiVarOptions options;
  options.n_selection_bootstraps = 5;
  options.n_estimation_bootstraps = 5;
  options.n_lambdas = 8;

  uoi::core::UoiDistributedBreakdown measured;
  auto stats = uoi::sim::Cluster::run_collect_stats(8, [&](uoi::sim::Comm& comm) {
    const auto result =
        uoi::var::uoi_var_distributed(comm, series, options, {}, 2);
    if (comm.rank() == 0) measured = result.breakdown;
  });
  double onesided_bytes = 0.0;
  for (const auto& s : stats) {
    onesided_bytes +=
        static_cast<double>(s.of(uoi::sim::CommCategory::kOneSided).bytes);
  }
  const double total = measured.computation_seconds +
                       measured.communication_seconds +
                       measured.distribution_seconds;
  std::printf(
      "rank-0 buckets: computation %s (%.1f%%), communication %s, "
      "distribution (Kron+vec one-sided) %s\n"
      "one-sided traffic across ranks: %s\n",
      uoi::support::format_seconds(measured.computation_seconds).c_str(),
      total > 0 ? 100.0 * measured.computation_seconds / total : 0.0,
      uoi::support::format_seconds(measured.communication_seconds).c_str(),
      uoi::support::format_seconds(measured.distribution_seconds).c_str(),
      uoi::support::format_bytes(static_cast<std::uint64_t>(onesided_bytes))
          .c_str());
  return 0;
}
