#pragma once
// Shared helpers for the paper-replication bench binaries: breakdown-row
// formatting, the functional/model section banners, opt-in per-figure
// trace capture, and standardized machine-readable telemetry
// (BENCH_<figure>.json, consumed by tools/check_bench_regression.py).

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "linalg/simd.hpp"
#include "perfmodel/lasso_cost.hpp"
#include "report/run_report.hpp"
#include "support/error.hpp"
#include "support/format.hpp"
#include "support/json.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"

namespace uoi::bench {

inline std::vector<std::string> breakdown_row(
    const std::string& label, const uoi::perf::RuntimeBreakdown& b) {
  using uoi::support::format_seconds;
  return {label,
          format_seconds(b.computation),
          format_seconds(b.communication),
          format_seconds(b.distribution),
          format_seconds(b.data_io),
          format_seconds(b.total()),
          uoi::support::format_fixed(
              b.total() > 0.0 ? 100.0 * b.computation / b.total() : 0.0, 1) +
              "%"};
}

inline uoi::support::Table breakdown_table(const std::string& first_column) {
  return uoi::support::Table({first_column, "computation", "communication",
                              "distribution", "data I/O", "total",
                              "compute %"});
}

inline void banner(const char* text) { std::printf("\n-- %s --\n\n", text); }

/// Opt-in per-figure tracing: when the UOI_TRACE_DIR environment variable
/// is set, captures every span of the enclosing scope and writes
/// `$UOI_TRACE_DIR/<figure>.trace.json` (Chrome trace event format, one
/// pid per rank) on destruction. A no-op otherwise, so bench runs stay
/// allocation-free on the trace path by default.
class FigureTrace {
 public:
  explicit FigureTrace(const char* figure) : figure_(figure) {
    const char* dir = std::getenv("UOI_TRACE_DIR");
    if (dir == nullptr || dir[0] == '\0') return;
    // Create the trace directory up front: losing an opted-in trace to a
    // missing directory at exit is the worst possible failure mode.
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      UOI_LOG_ERROR.field("dir", dir).field("error", ec.message())
          << "cannot create UOI_TRACE_DIR; figure trace will not be written";
      return;
    }
    path_ = std::string(dir) + "/" + figure_ + ".trace.json";
    auto& tracer = uoi::support::Tracer::instance();
    tracer.clear();
    tracer.set_capture_events(true);
  }
  FigureTrace(const FigureTrace&) = delete;
  FigureTrace& operator=(const FigureTrace&) = delete;
  ~FigureTrace() {
    if (path_.empty()) return;
    auto& tracer = uoi::support::Tracer::instance();
    try {
      tracer.write_chrome_trace(path_);
      std::printf("trace: wrote %s (%zu events)\n", path_.c_str(),
                  tracer.event_count());
    } catch (const std::exception& e) {
      UOI_LOG_ERROR.field("path", path_)
          << "failed to write figure trace: " << e.what();
    }
    tracer.set_capture_events(false);
  }

 private:
  std::string figure_;
  std::string path_;
};

/// Standardized machine-readable bench telemetry. Construct at the top of a
/// bench main() (after FigureTrace, if any), describe the configuration
/// with config(), and on destruction it snapshots the Tracer /
/// MetricsRegistry through uoi::report::build_run_report and writes
///
///   $UOI_BENCH_DIR/BENCH_<figure>.json     (UOI_BENCH_DIR default: ".")
///
/// with schema "uoi-bench-v1": figure, config, wall_seconds, the four
/// runtime buckets, load-imbalance metrics, and per-category span-latency
/// percentiles. tools/check_bench_regression.py diffs these files against
/// the committed baselines in bench/baselines/.
class BenchReport {
 public:
  explicit BenchReport(const char* figure) : figure_(figure) {}
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  BenchReport& config(const std::string& key, const std::string& value) {
    config_.emplace_back(key, uoi::support::json_quote(value));
    return *this;
  }
  BenchReport& config(const std::string& key, const char* value) {
    return config(key, std::string(value));
  }
  BenchReport& config(const std::string& key, double value) {
    config_.emplace_back(key, uoi::support::json_number(value));
    return *this;
  }
  BenchReport& config(const std::string& key, std::size_t value) {
    config_.emplace_back(key, std::to_string(value));
    return *this;
  }
  BenchReport& config(const std::string& key, int value) {
    config_.emplace_back(key, std::to_string(value));
    return *this;
  }

  ~BenchReport() {
    try {
      write();
    } catch (const std::exception& e) {
      UOI_LOG_ERROR.field("figure", figure_)
          << "failed to write bench telemetry: " << e.what();
    }
  }

 private:
  void write() const {
    namespace js = uoi::support;
    const double wall = watch_.seconds();
    const auto report =
        uoi::report::build_run_report(uoi::report::collect_inputs(wall));

    std::string out;
    out += "{\"schema\":\"uoi-bench-v1\",\"figure\":";
    out += js::json_quote(figure_);
    out += ",\"config\":{";
    for (std::size_t i = 0; i < config_.size(); ++i) {
      if (i > 0) out += ',';
      out += js::json_quote(config_[i].first);
      out += ':';
      out += config_[i].second;
    }
    // Every figure records the SIMD dispatch level it actually ran with,
    // so baseline diffs across machines / UOI_SIMD legs are attributable.
    if (!config_.empty()) out += ',';
    out += "\"simd\":";
    out += js::json_quote(uoi::linalg::simd::simd_level_name(
        uoi::linalg::simd::resolve_simd_level()));
    out += "},\"wall_seconds\":";
    out += js::json_number(report.wall_seconds);
    out += ",\"n_ranks\":" + std::to_string(report.n_ranks);
    out += ",\"buckets\":{\"computation\":";
    out += js::json_number(report.computation_seconds);
    out += ",\"communication\":";
    out += js::json_number(report.communication_seconds);
    out += ",\"distribution\":";
    out += js::json_number(report.distribution_seconds);
    out += ",\"data_io\":";
    out += js::json_number(report.data_io_seconds);
    out += "},\"imbalance\":{\"compute_max_over_mean\":";
    out += js::json_number(report.compute_max_over_mean);
    out += ",\"compute_cv\":";
    out += js::json_number(report.compute_cv);
    out += ",\"straggler_rank\":" + std::to_string(report.straggler_rank);
    out += ",\"allreduce_skew_seconds\":";
    out += js::json_number(report.allreduce_skew_seconds);
    out += ",\"allreduce_max_over_mean\":";
    out += js::json_number(report.allreduce_max_over_mean);
    out += ",\"critical_path_seconds\":";
    out += js::json_number(report.critical_path_seconds);
    out += ",\"critical_path_fraction\":";
    out += js::json_number(report.critical_path_fraction);
    out += "},\"percentiles\":{";
    for (std::size_t i = 0; i < report.latency.size(); ++i) {
      const auto& lat = report.latency[i];
      if (i > 0) out += ',';
      out += js::json_quote(uoi::support::to_string(lat.category));
      out += ":{\"count\":" + std::to_string(lat.count);
      out += ",\"mean\":" + js::json_number(lat.mean_seconds);
      out += ",\"p50\":" + js::json_number(lat.p50_seconds);
      out += ",\"p95\":" + js::json_number(lat.p95_seconds);
      out += ",\"p99\":" + js::json_number(lat.p99_seconds);
      out += ",\"max\":" + js::json_number(lat.max_seconds);
      out += '}';
    }
    out += "}}\n";

    const char* env = std::getenv("UOI_BENCH_DIR");
    const std::string dir = (env != nullptr && env[0] != '\0') ? env : ".";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      throw uoi::support::IoError("cannot create UOI_BENCH_DIR '" + dir +
                                  "': " + ec.message());
    }
    const std::string path = dir + "/BENCH_" + figure_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      throw uoi::support::IoError("cannot open bench telemetry file: " + path);
    }
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    std::fclose(f);
    if (!ok) {
      throw uoi::support::IoError("short write to bench telemetry file: " +
                                  path);
    }
    std::printf("bench telemetry: wrote %s\n", path.c_str());
  }

  std::string figure_;
  std::vector<std::pair<std::string, std::string>> config_;
  uoi::support::Stopwatch watch_;
};

}  // namespace uoi::bench
