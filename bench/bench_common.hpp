#pragma once
// Shared helpers for the paper-replication bench binaries: breakdown-row
// formatting, the functional/model section banners, and opt-in per-figure
// trace capture.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "perfmodel/lasso_cost.hpp"
#include "support/format.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"

namespace uoi::bench {

inline std::vector<std::string> breakdown_row(
    const std::string& label, const uoi::perf::RuntimeBreakdown& b) {
  using uoi::support::format_seconds;
  return {label,
          format_seconds(b.computation),
          format_seconds(b.communication),
          format_seconds(b.distribution),
          format_seconds(b.data_io),
          format_seconds(b.total()),
          uoi::support::format_fixed(
              b.total() > 0.0 ? 100.0 * b.computation / b.total() : 0.0, 1) +
              "%"};
}

inline uoi::support::Table breakdown_table(const std::string& first_column) {
  return uoi::support::Table({first_column, "computation", "communication",
                              "distribution", "data I/O", "total",
                              "compute %"});
}

inline void banner(const char* text) { std::printf("\n-- %s --\n\n", text); }

/// Opt-in per-figure tracing: when the UOI_TRACE_DIR environment variable
/// is set, captures every span of the enclosing scope and writes
/// `$UOI_TRACE_DIR/<figure>.trace.json` (Chrome trace event format, one
/// pid per rank) on destruction. A no-op otherwise, so bench runs stay
/// allocation-free on the trace path by default.
class FigureTrace {
 public:
  explicit FigureTrace(const char* figure) : figure_(figure) {
    const char* dir = std::getenv("UOI_TRACE_DIR");
    if (dir == nullptr || dir[0] == '\0') return;
    path_ = std::string(dir) + "/" + figure_ + ".trace.json";
    auto& tracer = uoi::support::Tracer::instance();
    tracer.clear();
    tracer.set_capture_events(true);
  }
  FigureTrace(const FigureTrace&) = delete;
  FigureTrace& operator=(const FigureTrace&) = delete;
  ~FigureTrace() {
    if (path_.empty()) return;
    auto& tracer = uoi::support::Tracer::instance();
    try {
      tracer.write_chrome_trace(path_);
      std::printf("trace: wrote %s (%zu events)\n", path_.c_str(),
                  tracer.event_count());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trace: %s\n", e.what());
    }
    tracer.set_capture_events(false);
  }

 private:
  std::string figure_;
  std::string path_;
};

}  // namespace uoi::bench
