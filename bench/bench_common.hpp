#pragma once
// Shared helpers for the paper-replication bench binaries: breakdown-row
// formatting and the functional/model section banners.

#include <cstdio>
#include <string>

#include "perfmodel/lasso_cost.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

namespace uoi::bench {

inline std::vector<std::string> breakdown_row(
    const std::string& label, const uoi::perf::RuntimeBreakdown& b) {
  using uoi::support::format_seconds;
  return {label,
          format_seconds(b.computation),
          format_seconds(b.communication),
          format_seconds(b.distribution),
          format_seconds(b.data_io),
          format_seconds(b.total()),
          uoi::support::format_fixed(
              b.total() > 0.0 ? 100.0 * b.computation / b.total() : 0.0, 1) +
              "%"};
}

inline uoi::support::Table breakdown_table(const std::string& first_column) {
  return uoi::support::Table({first_column, "computation", "communication",
                              "distribution", "data I/O", "total",
                              "compute %"});
}

inline void banner(const char* text) { std::printf("\n-- %s --\n\n", text); }

}  // namespace uoi::bench
