// Fig. 15 (repo extension) — transport backend comparison: latency and
// bandwidth of the collectives and one-sided windows on the in-process
// thread backend vs the multi-process socket backend, at 4 and 8 ranks.
//
// The socket backend pays real kernel round-trips per frame (Unix-domain
// sockets, one OS process per rank), so its per-operation latency is
// expected to sit orders of magnitude above the shared-memory thread
// backend. The interesting outputs are the socket-side absolute numbers
// and the thread/socket ratio, both recorded as informational config
// entries; the regression gate compares only the wall/bucket timings of
// the thread-backend section, which runs in this process.
//
// Socket sections fork one child per rank with the $UOI_JOB_* environment
// the launcher would set (the same technique as tests/transport_e2e_test)
// and read rank 0's measurements back over a pipe.

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bench_common.hpp"
#include "simcluster/cluster.hpp"
#include "simcluster/window.hpp"
#include "support/format.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace {

using uoi::sim::Cluster;
using uoi::sim::Comm;
using uoi::sim::ReduceOp;

constexpr int kLatencyIters = 100;
constexpr int kBandwidthIters = 10;
constexpr std::size_t kSmallDoubles = 8;
constexpr std::size_t kLargeDoubles = 1 << 15;  // 256 KiB payload

/// Mean seconds per operation measured on rank 0, in a fixed order:
/// {allreduce small, allreduce large, window get, window put}.
constexpr std::size_t kMetricCount = 4;

std::vector<double> measure_ops(Comm& comm) {
  const int rank = comm.rank();
  const int size = comm.size();
  const int next = (rank + 1) % size;
  std::vector<double> metrics(kMetricCount, 0.0);

  {
    std::vector<double> payload(kSmallDoubles, 1.0);
    comm.barrier();
    uoi::support::Stopwatch watch;
    for (int i = 0; i < kLatencyIters; ++i) {
      comm.allreduce(payload, ReduceOp::kSum);
    }
    metrics[0] = watch.seconds() / kLatencyIters;
  }
  {
    std::vector<double> payload(kLargeDoubles, 1.0);
    comm.barrier();
    uoi::support::Stopwatch watch;
    for (int i = 0; i < kBandwidthIters; ++i) {
      comm.allreduce(payload, ReduceOp::kSum);
    }
    metrics[1] = watch.seconds() / kBandwidthIters;
  }
  {
    std::vector<double> local(kSmallDoubles, static_cast<double>(rank));
    uoi::sim::Window window(comm, local);
    window.fence();
    std::vector<double> remote(kSmallDoubles);
    {
      uoi::support::Stopwatch watch;
      for (int i = 0; i < kLatencyIters; ++i) {
        window.get(next, 0, remote);
      }
      metrics[2] = watch.seconds() / kLatencyIters;
    }
    window.fence();
    {
      const std::vector<double> payload(kSmallDoubles, 42.0);
      uoi::support::Stopwatch watch;
      for (int i = 0; i < kLatencyIters; ++i) {
        window.put(next, 0, payload);
      }
      metrics[3] = watch.seconds() / kLatencyIters;
    }
    window.fence();
  }
  comm.barrier();
  return metrics;
}

std::vector<double> run_thread_backend(int ranks) {
  std::vector<double> metrics;
  Cluster::run(ranks, [&](Comm& comm) {
    auto m = measure_ops(comm);
    if (comm.rank() == 0) metrics = std::move(m);
  });
  return metrics;
}

/// Forks `ranks` processes wired as one socket job; rank 0 pipes its
/// measurements back. Returns nullopt if any child fails or the deadline
/// expires.
std::optional<std::vector<double>> run_socket_backend(int ranks) {
  char dir_template[] = "/tmp/uoi-bench15-XXXXXX";
  const char* dir = ::mkdtemp(dir_template);
  if (dir == nullptr) return std::nullopt;

  int result_pipe[2];
  if (::pipe(result_pipe) != 0) return std::nullopt;

  std::vector<pid_t> children;
  for (int rank = 0; rank < ranks; ++rank) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::close(result_pipe[0]);
      ::setenv("UOI_TRANSPORT", "socket", 1);
      ::setenv("UOI_JOB_RANK", std::to_string(rank).c_str(), 1);
      ::setenv("UOI_JOB_SIZE", std::to_string(ranks).c_str(), 1);
      ::setenv("UOI_JOB_DIR", dir, 1);
      try {
        std::vector<double> metrics;
        Cluster::run(ranks, [&](Comm& comm) {
          auto m = measure_ops(comm);
          if (comm.rank() == 0) metrics = std::move(m);
        });
        if (rank == 0) {
          const auto* bytes =
              reinterpret_cast<const std::uint8_t*>(metrics.data());
          std::size_t total = metrics.size() * sizeof(double);
          std::size_t written = 0;
          while (written < total) {
            const ssize_t w =
                ::write(result_pipe[1], bytes + written, total - written);
            if (w < 0 && errno == EINTR) continue;
            if (w <= 0) ::_exit(4);
            written += static_cast<std::size_t>(w);
          }
        }
        ::_exit(0);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[bench rank %d] %s\n", rank, e.what());
        ::_exit(3);
      }
    }
    if (pid < 0) return std::nullopt;
    children.push_back(pid);
  }
  ::close(result_pipe[1]);

  std::vector<std::uint8_t> raw;
  std::uint8_t chunk[256];
  for (;;) {
    const ssize_t r = ::read(result_pipe[0], chunk, sizeof(chunk));
    if (r > 0) {
      raw.insert(raw.end(), chunk, chunk + r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    break;
  }
  ::close(result_pipe[0]);

  bool ok = true;
  const time_t deadline = ::time(nullptr) + 120;
  for (const pid_t child : children) {
    int status = 0;
    for (;;) {
      const pid_t w = ::waitpid(child, &status, WNOHANG);
      if (w == child) break;
      if (::time(nullptr) > deadline) {
        ::kill(child, SIGKILL);
        ::waitpid(child, &status, 0);
        ok = false;
        break;
      }
      ::usleep(10 * 1000);
    }
    if (!(WIFEXITED(status) && WEXITSTATUS(status) == 0)) ok = false;
  }

  std::string cleanup = "rm -rf " + std::string(dir);
  (void)::system(cleanup.c_str());

  if (!ok || raw.size() != kMetricCount * sizeof(double)) return std::nullopt;
  std::vector<double> metrics(kMetricCount);
  std::memcpy(metrics.data(), raw.data(), raw.size());
  return metrics;
}

std::string format_bandwidth(double seconds, std::size_t payload_doubles) {
  if (seconds <= 0.0) return "n/a";
  const double mib = static_cast<double>(payload_doubles * sizeof(double)) /
                     (1024.0 * 1024.0);
  return uoi::support::format_fixed(mib / seconds, 1) + " MiB/s";
}

}  // namespace

int main() {
  uoi::bench::FigureTrace trace("fig15_transport");
  uoi::bench::BenchReport telemetry("fig15_transport");
  telemetry.config("rank_sweep", "4,8")
      .config("latency_payload_doubles", kSmallDoubles)
      .config("bandwidth_payload_doubles", kLargeDoubles)
      .config("latency_iters", kLatencyIters)
      .config("bandwidth_iters", kBandwidthIters);
  std::printf("== Fig. 15: transport backends — thread vs socket ==\n\n");

  const char* kMetricNames[kMetricCount] = {
      "allreduce 8d", "allreduce 32Ki d", "window get 8d", "window put 8d"};

  for (const int ranks : {4, 8}) {
    std::printf("-- %d ranks --\n\n", ranks);
    const auto thread_metrics = run_thread_backend(ranks);
    const auto socket_metrics = run_socket_backend(ranks);

    uoi::support::Table table(
        {"operation", "thread", "socket", "socket/thread", "socket bw"});
    for (std::size_t i = 0; i < kMetricCount; ++i) {
      const double t = thread_metrics[i];
      const double s = socket_metrics ? (*socket_metrics)[i] : 0.0;
      const bool bandwidth_row = (i == 1);
      table.add_row(
          {kMetricNames[i], uoi::support::format_seconds(t),
           socket_metrics ? uoi::support::format_seconds(s) : "failed",
           (socket_metrics && t > 0.0)
               ? uoi::support::format_fixed(s / t, 1) + "x"
               : "n/a",
           bandwidth_row ? format_bandwidth(s, kLargeDoubles) : "-"});
    }
    std::printf("%s\n", table.to_text().c_str());

    // Informational telemetry: socket numbers vary with kernel/socket
    // buffers and machine load, so they ride along in config (which the
    // regression gate reports but never compares numerically).
    const std::string prefix = "p" + std::to_string(ranks) + "_";
    telemetry.config(prefix + "thread_allreduce_small_s", thread_metrics[0])
        .config(prefix + "thread_allreduce_large_s", thread_metrics[1])
        .config(prefix + "thread_window_get_s", thread_metrics[2])
        .config(prefix + "thread_window_put_s", thread_metrics[3]);
    if (socket_metrics) {
      telemetry.config(prefix + "socket_allreduce_small_s", (*socket_metrics)[0])
          .config(prefix + "socket_allreduce_large_s", (*socket_metrics)[1])
          .config(prefix + "socket_window_get_s", (*socket_metrics)[2])
          .config(prefix + "socket_window_put_s", (*socket_metrics)[3])
          .config(prefix + "socket_ok", 1);
    } else {
      telemetry.config(prefix + "socket_ok", 0);
      std::printf("socket backend run FAILED at %d ranks\n\n", ranks);
    }
  }

  std::printf(
      "The socket backend trades per-op latency (every frame is a kernel\n"
      "round-trip) for real process isolation: a SIGKILLed rank is a dead\n"
      "process the survivors detect and shrink around, which the thread\n"
      "backend can only simulate.\n");
  return 0;
}
