// Fig. 8 — exploiting UoI_VAR's algorithmic parallelism.
//
// Paper setup: problem sizes 16-128 GB, ADMM cores doubling with size,
// B1 = B2 = 32, q = 16, P_B x P_lambda swept. Reported shape: computation
// falls as P_lambda grows; the Kronecker+vectorization (distribution) time
// *rises* as P_B shrinks, because each task group re-assembles the problem
// for every bootstrap it owns.

#include <cstdio>

#include "bench_common.hpp"
#include "data/synthetic_var.hpp"
#include "perfmodel/var_cost.hpp"
#include "simcluster/cluster.hpp"
#include "var/var_distributed.hpp"

int main() {
  uoi::bench::FigureTrace trace("fig8_var_parallelism");
  uoi::bench::BenchReport telemetry("fig8_var_parallelism");
  telemetry.config("ranks", 8)
      .config("n_nodes", 10)
      .config("n_samples", 240)
      .config("b1", 8)
      .config("b2", 4)
      .config("q", 8)
      .config("layouts", "4x1,2x2,1x4,1x1");
  std::printf("== Fig. 8: UoI_VAR P_B x P_lambda parallelism ==\n");

  uoi::bench::banner("modeled at paper scale (B1=B2=32, q=16)");
  const uoi::perf::UoiVarCostModel model;
  const std::pair<std::size_t, std::size_t> configs[] = {
      {16, 2}, {8, 4}, {4, 8}, {2, 16}};
  auto table = uoi::bench::breakdown_table("size / cores / PB x PL");
  std::uint64_t cores = 2176;
  for (std::uint64_t gb = 16; gb <= 128; gb *= 2, cores *= 2) {
    for (const auto& [pb, pl] : configs) {
      auto w = uoi::perf::UoiVarWorkload::from_problem_gb(
          static_cast<double>(gb));
      w.b1 = 32;
      w.b2 = 32;
      w.q = 16;
      table.add_row(uoi::bench::breakdown_row(
          std::to_string(gb) + " GB / " + std::to_string(cores) + " / " +
              std::to_string(pb) + "x" + std::to_string(pl),
          model.run(w, cores, pb, pl)));
    }
  }
  std::printf("%s", table.to_text().c_str());
  std::printf(
      "\npaper shape: within each size, distribution (Kron+vec) falls as "
      "P_B grows\n(16x2 cheapest distribution, 2x16 dearest) while "
      "computation falls with P_lambda.\n");

  uoi::bench::banner("functional (8 sim ranks, p=10, layouts over Kron+vec)");
  uoi::data::VarSpec spec;
  spec.n_nodes = 10;
  spec.seed = 7;
  const auto truth = uoi::data::make_sparse_var(spec);
  uoi::var::SimulateOptions sim;
  sim.n_samples = 240;
  sim.seed = 8;
  const auto series = uoi::var::simulate(truth, sim);
  uoi::var::UoiVarOptions options;
  options.n_selection_bootstraps = 8;
  options.n_estimation_bootstraps = 4;
  options.n_lambdas = 8;

  uoi::support::Table func({"PB x PL x C", "compute (rank 0)",
                            "distribution (rank 0)", "one-sided bytes"});
  for (const auto& [pb, pl] :
       {std::pair<int, int>{4, 1}, {2, 2}, {1, 4}, {1, 1}}) {
    uoi::core::UoiDistributedBreakdown breakdown;
    auto stats =
        uoi::sim::Cluster::run_collect_stats(8, [&](uoi::sim::Comm& comm) {
          const auto result = uoi::var::uoi_var_distributed(
              comm, series, options, {pb, pl}, 2);
          if (comm.rank() == 0) breakdown = result.breakdown;
        });
    std::uint64_t bytes = 0;
    for (const auto& s : stats) {
      bytes += s.of(uoi::sim::CommCategory::kOneSided).bytes;
    }
    func.add_row(
        {std::to_string(pb) + " x " + std::to_string(pl) + " x " +
             std::to_string(8 / (pb * pl)),
         uoi::support::format_seconds(breakdown.computation_seconds),
         uoi::support::format_seconds(breakdown.distribution_seconds),
         uoi::support::format_bytes(bytes)});
  }
  std::printf("%s", func.to_text().c_str());
  std::printf(
      "\n(one-sided bytes shrink as P_B grows: fewer bootstraps assembled "
      "per task group)\n");
  return 0;
}
