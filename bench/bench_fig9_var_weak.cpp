// Fig. 9 — UoI_VAR weak scaling (128 GB / 2,176 cores -> 8 TB / 139,264
// cores; B1 = 30, B2 = 20, q = 20; log-scale y axis in the paper).
//
// Paper shape: computation nearly ideal (flat); communication grows with
// cores; the distributed Kronecker+vectorization (distribution) grows
// steeply — proportional to cores x problem size — and *dominates the
// runtime for problems >= 2 TB* (the paper's central UoI_VAR finding).

#include <cstdio>

#include "bench_common.hpp"
#include "data/synthetic_var.hpp"
#include "perfmodel/var_cost.hpp"
#include "simcluster/cluster.hpp"
#include "var/var_distributed.hpp"

int main() {
  uoi::bench::FigureTrace trace("fig9_var_weak");
  uoi::bench::BenchReport telemetry("fig9_var_weak");
  telemetry.config("rank_sweep", "2,4,8")
      .config("n_nodes", 10)
      .config("samples_per_rank", 60)
      .config("b1", 4)
      .config("b2", 3)
      .config("q", 5);
  std::printf("== Fig. 9: UoI_VAR weak scaling (B1=30, B2=20, q=20) ==\n");

  uoi::bench::banner("modeled at paper scale");
  const uoi::perf::UoiVarCostModel model;
  auto table = uoi::bench::breakdown_table("problem / cores / p");
  for (const auto& point : uoi::perf::table1_var_weak_scaling()) {
    const auto w = uoi::perf::UoiVarWorkload::from_problem_gb(
        static_cast<double>(point.data_gb));
    const auto b = model.run(w, point.cores);
    auto row = uoi::bench::breakdown_row(
        uoi::support::format_bytes(point.data_gb << 30) + " / " +
            uoi::support::format_count(point.cores) + " / p=" +
            std::to_string(w.n_features),
        b);
    row.back() = b.distribution > b.computation ? "distr-bound" : "compute-bound";
    table.add_row(row);
  }
  std::printf("%s", table.to_text().c_str());
  std::printf(
      "\npaper shape: compute ~flat; distribution overtakes compute at "
      ">= 2 TB (\"UoI_VAR is distribution bound\").\n");

  uoi::bench::banner(
      "functional weak scaling (series length grows with ranks)");
  uoi::support::Table func({"ranks", "samples", "compute (rank 0)",
                            "comm (rank 0)", "distribution (rank 0)"});
  uoi::var::UoiVarOptions options;
  options.n_selection_bootstraps = 4;
  options.n_estimation_bootstraps = 3;
  options.n_lambdas = 5;
  for (const int ranks : {2, 4, 8}) {
    uoi::data::VarSpec spec;
    spec.n_nodes = 10;
    spec.seed = 9;
    const auto truth = uoi::data::make_sparse_var(spec);
    uoi::var::SimulateOptions sim;
    sim.n_samples = static_cast<std::size_t>(ranks) * 60;
    sim.seed = 10;
    const auto series = uoi::var::simulate(truth, sim);
    uoi::core::UoiDistributedBreakdown breakdown;
    uoi::sim::Cluster::run(ranks, [&](uoi::sim::Comm& comm) {
      const auto result =
          uoi::var::uoi_var_distributed(comm, series, options, {}, 2);
      if (comm.rank() == 0) breakdown = result.breakdown;
    });
    func.add_row({std::to_string(ranks), std::to_string(sim.n_samples),
                  uoi::support::format_seconds(breakdown.computation_seconds),
                  uoi::support::format_seconds(
                      breakdown.communication_seconds),
                  uoi::support::format_seconds(
                      breakdown.distribution_seconds)});
  }
  std::printf("%s", func.to_text().c_str());
  return 0;
}
