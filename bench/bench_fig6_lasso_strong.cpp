// Fig. 6 — UoI_LASSO strong scaling (1 TB fixed, 17,408 -> 139,264 cores).
//
// Paper shape: computation drops with cores and goes *below* the ideal
// trend at 139,264 cores (AVX-512 + cache effects once the per-core panel
// is small); communication grows but the ADMM converges faster beyond
// 69,632 cores.
//
// Functional validation: fixed dataset, growing rank counts; measured
// compute must shrink and communication grow.

#include <cstdio>

#include "bench_common.hpp"
#include "core/uoi_lasso_distributed.hpp"
#include "data/synthetic_regression.hpp"
#include "perfmodel/lasso_cost.hpp"
#include "simcluster/cluster.hpp"

int main() {
  uoi::bench::FigureTrace trace("fig6_lasso_strong");
  uoi::bench::BenchReport telemetry("fig6_lasso_strong");
  telemetry.config("rank_sweep", "2,4,8,16")
      .config("n_samples", 1536)
      .config("n_features", 48)
      .config("b1", 5)
      .config("b2", 3)
      .config("q", 6);
  std::printf("== Fig. 6: UoI_LASSO strong scaling (1 TB fixed) ==\n");

  uoi::bench::banner("modeled at paper scale");
  const uoi::perf::UoiLassoCostModel model;
  auto table = uoi::bench::breakdown_table("cores");
  double first_compute = 0.0;
  std::uint64_t first_cores = 0;
  for (const auto& point : uoi::perf::table1_lasso_strong_scaling()) {
    uoi::perf::UoiLassoWorkload w;
    w.data_bytes = point.data_gb << 30;
    const auto b = model.run(w, point.cores);
    if (first_cores == 0) {
      first_cores = point.cores;
      first_compute = b.computation;
    }
    const double ideal =
        first_compute * static_cast<double>(first_cores) /
        static_cast<double>(point.cores);
    auto row = uoi::bench::breakdown_row(
        uoi::support::format_count(point.cores), b);
    row.back() = uoi::support::format_fixed(b.computation / ideal, 2) +
                 "x ideal";
    table.add_row(row);
  }
  // Re-label the last column for this bench.
  std::printf("%s", table.to_text().c_str());
  std::printf(
      "\npaper shape: compute/ideal ratio dips below 1.0 at the largest "
      "core count\n(superlinear: AVX-512 + reduced DRAM traffic on small "
      "panels).\n");

  uoi::bench::banner("functional strong scaling (fixed 1,536 x 48 dataset)");
  uoi::data::RegressionSpec spec;
  spec.n_samples = 1536;
  spec.n_features = 48;
  spec.support_size = 6;
  const auto data = uoi::data::make_regression(spec);
  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 5;
  options.n_estimation_bootstraps = 3;
  options.n_lambdas = 6;

  uoi::support::Table func(
      {"ranks", "compute (rank 0)", "comm (rank 0)", "allreduce calls"});
  for (const int ranks : {2, 4, 8, 16}) {
    uoi::core::UoiDistributedBreakdown breakdown;
    auto stats =
        uoi::sim::Cluster::run_collect_stats(ranks, [&](uoi::sim::Comm& comm) {
          const auto result = uoi::core::uoi_lasso_distributed(
              comm, data.x, data.y, options);
          if (comm.rank() == 0) breakdown = result.breakdown;
        });
    func.add_row(
        {std::to_string(ranks),
         uoi::support::format_seconds(breakdown.computation_seconds),
         uoi::support::format_seconds(breakdown.communication_seconds),
         uoi::support::format_count(
             stats[0].of(uoi::sim::CommCategory::kAllreduce).calls)});
  }
  std::printf("%s", func.to_text().c_str());
  return 0;
}
