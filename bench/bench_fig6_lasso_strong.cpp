// Fig. 6 — UoI_LASSO strong scaling (1 TB fixed, 17,408 -> 139,264 cores).
//
// Paper shape: computation drops with cores and goes *below* the ideal
// trend at 139,264 cores (AVX-512 + cache effects once the per-core panel
// is small); communication grows but the ADMM converges faster beyond
// 69,632 cores.
//
// Functional validation: fixed dataset, growing rank counts; measured
// compute must shrink and communication grow.

#include <cstdio>

#include <cmath>

#include "bench_common.hpp"
#include "core/uoi_lasso_distributed.hpp"
#include "data/synthetic_regression.hpp"
#include "perfmodel/lasso_cost.hpp"
#include "simcluster/cluster.hpp"
#include "solvers/distributed_admm.hpp"
#include "support/stopwatch.hpp"
#include "support/telemetry.hpp"

int main() {
  uoi::bench::FigureTrace trace("fig6_lasso_strong");
  uoi::bench::BenchReport telemetry("fig6_lasso_strong");
  telemetry.config("rank_sweep", "2,4,8,16")
      .config("n_samples", 1536)
      .config("n_features", 48)
      .config("b1", 5)
      .config("b2", 3)
      .config("q", 6);
  std::printf("== Fig. 6: UoI_LASSO strong scaling (1 TB fixed) ==\n");

  uoi::bench::banner("modeled at paper scale");
  const uoi::perf::UoiLassoCostModel model;
  auto table = uoi::bench::breakdown_table("cores");
  double first_compute = 0.0;
  std::uint64_t first_cores = 0;
  for (const auto& point : uoi::perf::table1_lasso_strong_scaling()) {
    uoi::perf::UoiLassoWorkload w;
    w.data_bytes = point.data_gb << 30;
    const auto b = model.run(w, point.cores);
    if (first_cores == 0) {
      first_cores = point.cores;
      first_compute = b.computation;
    }
    const double ideal =
        first_compute * static_cast<double>(first_cores) /
        static_cast<double>(point.cores);
    auto row = uoi::bench::breakdown_row(
        uoi::support::format_count(point.cores), b);
    row.back() = uoi::support::format_fixed(b.computation / ideal, 2) +
                 "x ideal";
    table.add_row(row);
  }
  // Re-label the last column for this bench.
  std::printf("%s", table.to_text().c_str());
  std::printf(
      "\npaper shape: compute/ideal ratio dips below 1.0 at the largest "
      "core count\n(superlinear: AVX-512 + reduced DRAM traffic on small "
      "panels).\n");

  uoi::bench::banner("functional strong scaling (fixed 1,536 x 48 dataset)");
  uoi::data::RegressionSpec spec;
  spec.n_samples = 1536;
  spec.n_features = 48;
  spec.support_size = 6;
  const auto data = uoi::data::make_regression(spec);
  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 5;
  options.n_estimation_bootstraps = 3;
  options.n_lambdas = 6;

  uoi::support::Table func(
      {"ranks", "compute (rank 0)", "comm (rank 0)", "allreduce calls"});
  for (const int ranks : {2, 4, 8, 16}) {
    uoi::core::UoiDistributedBreakdown breakdown;
    auto stats =
        uoi::sim::Cluster::run_collect_stats(ranks, [&](uoi::sim::Comm& comm) {
          const auto result = uoi::core::uoi_lasso_distributed(
              comm, data.x, data.y, options);
          if (comm.rank() == 0) breakdown = result.breakdown;
        });
    func.add_row(
        {std::to_string(ranks),
         uoi::support::format_seconds(breakdown.computation_seconds),
         uoi::support::format_seconds(breakdown.communication_seconds),
         uoi::support::format_count(
             stats[0].of(uoi::sim::CommCategory::kAllreduce).calls)});
  }
  std::printf("%s\n", func.to_text().c_str());

  // -- communication-avoiding consensus ADMM (fused reductions + k-step
  // lazy consensus) --
  //
  // One distributed LASSO fit at 8 ranks, three configurations:
  //   unfused k=1 : classic loop, separate p-length + 3-double reductions
  //   fused   k=1 : one (p+3)-double reduction per iteration (bitwise
  //                 identical trajectory)
  //   fused   k=4 : consensus + stopping test every 4th iteration only
  // Gates: fusion must cut reduction rounds >= 40%, k=4 must cut payload
  // bytes >= 30%, and the k=4 solution must stay within 1e-6 of k=1.
  uoi::bench::banner("communication-avoiding consensus ADMM (8 ranks)");
  struct CommAvoidPoint {
    uoi::linalg::Vector beta;
    std::uint64_t calls = 0;
    std::uint64_t bytes = 0;
    std::uint64_t rounds = 0;
    std::uint64_t lazy = 0;
    std::size_t iterations = 0;
  };
  const auto run_fit = [&](bool fused, std::size_t k) {
    CommAvoidPoint point;
    uoi::sim::Cluster::run(8, [&](uoi::sim::Comm& comm) {
      uoi::solvers::AdmmOptions admm;
      admm.fused_residual_reduction = fused;
      admm.consensus_interval = k;
      admm.eps_abs = 1e-8;
      admm.eps_rel = 1e-6;
      admm.max_iterations = 20000;
      const std::size_t n = data.x.rows();
      const std::size_t begin = n * comm.rank() / comm.size();
      const std::size_t end = n * (comm.rank() + 1) / comm.size();
      const auto local_x = data.x.row_block(begin, end - begin);
      const auto local_y =
          std::span<const double>(data.y).subspan(begin, end - begin);
      const auto fit = uoi::solvers::distributed_lasso_admm(
          comm, local_x, local_y, /*lambda=*/0.1, admm);
      if (comm.rank() == 0) {
        point.beta = fit.beta;
        point.calls = fit.allreduce_calls;
        point.bytes = fit.allreduce_bytes;
        point.rounds = fit.consensus_rounds;
        point.lazy = fit.lazy_iterations;
        point.iterations = fit.iterations;
      }
    });
    return point;
  };
  const auto unfused1 = run_fit(false, 1);
  const auto fused1 = run_fit(true, 1);
  const auto fused4 = run_fit(true, 4);

  uoi::support::Table ca({"config", "iters", "reduction rounds",
                          "payload bytes", "lazy iters"});
  const auto add_ca = [&](const char* name, const CommAvoidPoint& pt) {
    ca.add_row({name, std::to_string(pt.iterations),
                uoi::support::format_count(pt.calls),
                uoi::support::format_count(pt.bytes),
                uoi::support::format_count(pt.lazy)});
  };
  add_ca("unfused k=1", unfused1);
  add_ca("fused   k=1", fused1);
  add_ca("fused   k=4", fused4);
  std::printf("%s\n", ca.to_text().c_str());

  double beta_diff_fused = 0.0;   // fused k=1 vs unfused k=1: must be 0
  double beta_diff_lazy = 0.0;    // fused k=4 vs fused k=1: <= 1e-6
  for (std::size_t i = 0; i < fused1.beta.size(); ++i) {
    beta_diff_fused = std::max(
        beta_diff_fused, std::abs(fused1.beta[i] - unfused1.beta[i]));
    beta_diff_lazy = std::max(beta_diff_lazy,
                              std::abs(fused4.beta[i] - fused1.beta[i]));
  }
  const double round_reduction =
      100.0 * (1.0 - static_cast<double>(fused1.calls) /
                         static_cast<double>(unfused1.calls));
  const double byte_reduction =
      100.0 * (1.0 - static_cast<double>(fused4.bytes) /
                         static_cast<double>(fused1.bytes));
  std::printf("fusion round reduction:   %.1f%% (gate: >= 40%%)\n",
              round_reduction);
  std::printf("k=4 payload-byte cut:     %.1f%% (gate: >= 30%%)\n",
              byte_reduction);
  std::printf("fused k=1 max |dbeta|:    %.3g (gate: bitwise 0)\n",
              beta_diff_fused);
  std::printf("fused k=4 max |dbeta|:    %.3g (gate: <= 1e-6)\n",
              beta_diff_lazy);
  telemetry.config("comm_avoid_round_reduction_pct", round_reduction)
      .config("comm_avoid_byte_reduction_pct", byte_reduction)
      .config("comm_avoid_fused_bitwise", beta_diff_fused == 0.0 ? 1 : 0)
      .config("comm_avoid_lazy_max_dbeta", beta_diff_lazy);
  if (beta_diff_fused != 0.0 || beta_diff_lazy > 1e-6 ||
      round_reduction < 40.0 || byte_reduction < 30.0) {
    std::printf("\nFAIL: communication-avoiding gates not met\n");
    return 1;
  }

  // -- live-telemetry overhead (the emitter must stay off the hot path) --
  //
  // The same 8-rank fit with the telemetry emitter streaming at a 50 ms
  // interval vs. off. Gates: the fitted beta must be bitwise identical
  // (the emitter only reads), checked here; the wall overhead lands in
  // the BENCH json (telemetry_overhead_pct) where the regression checker
  // enforces < 2% on runs long enough to measure.
  uoi::bench::banner("live-telemetry overhead (8 ranks)");
  const auto timed_fit = [&](const char* sink) {
    uoi::support::TelemetryOptions topt;
    topt.sink = sink == nullptr ? "" : sink;
    topt.interval_ms = 50;
    uoi::support::TelemetryEmitter emitter(topt);
    emitter.start();
    uoi::linalg::Vector beta;
    uoi::support::Stopwatch watch;
    uoi::sim::Cluster::run(8, [&](uoi::sim::Comm& comm) {
      const auto result =
          uoi::core::uoi_lasso_distributed(comm, data.x, data.y, options);
      if (comm.rank() == 0) beta = result.model.beta;
    });
    const double wall = watch.seconds();
    emitter.stop();
    return std::make_pair(wall, beta);
  };
  double wall_off = 0.0;
  double wall_on = 0.0;
  uoi::linalg::Vector beta_off;
  uoi::linalg::Vector beta_on;
  for (int rep = 0; rep < 3; ++rep) {  // min-of-3: suppress OS noise
    const auto off = timed_fit(nullptr);
    const auto on = timed_fit("BENCH_fig6_telemetry.jsonl");
    if (rep == 0 || off.first < wall_off) wall_off = off.first;
    if (rep == 0 || on.first < wall_on) wall_on = on.first;
    beta_off = off.second;
    beta_on = on.second;
  }
  double beta_diff_telemetry = 0.0;
  for (std::size_t i = 0; i < beta_on.size(); ++i) {
    beta_diff_telemetry = std::max(beta_diff_telemetry,
                                   std::abs(beta_on[i] - beta_off[i]));
  }
  const double overhead_pct =
      wall_off > 0.0 ? 100.0 * (wall_on - wall_off) / wall_off : 0.0;
  std::printf("telemetry off: %s, on: %s, overhead %.2f%%\n",
              uoi::support::format_seconds(wall_off).c_str(),
              uoi::support::format_seconds(wall_on).c_str(), overhead_pct);
  std::printf("telemetry max |dbeta|:    %.3g (gate: bitwise 0)\n",
              beta_diff_telemetry);
  telemetry.config("telemetry_overhead_pct", overhead_pct)
      .config("telemetry_wall_off_seconds", wall_off)
      .config("telemetry_bitwise", beta_diff_telemetry == 0.0 ? 1 : 0);
  if (beta_diff_telemetry != 0.0) {
    std::printf("\nFAIL: telemetry perturbed the fitted coefficients\n");
    return 1;
  }
  return 0;
}
