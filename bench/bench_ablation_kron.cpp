// Ablation — the paper's Discussion (§V) proposes avoiding the
// distributed-Kronecker bottleneck with "communication avoiding algorithms
// and ... local computation modules". Our structured backend implements
// exactly that: the Gram identity (I (x) X)'(I (x) X) = I (x) (X'X) lets
// one dp x dp factorization serve all p blocks, with no materialization.
//
// This bench quantifies the ablation three ways:
//  (1) serial solver cost: structured vs materialized-sparse backend;
//  (2) solve-quality equivalence (identical estimates);
//  (3) modeled paper-scale distribution time avoided.

#include <cmath>
#include <cstdio>

#include "data/synthetic_var.hpp"
#include "linalg/kron.hpp"
#include "linalg/sparse.hpp"
#include "perfmodel/var_cost.hpp"
#include "solvers/admm_lasso_sparse.hpp"
#include "support/format.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "var/lag_matrix.hpp"
#include "var/uoi_var.hpp"

using uoi::support::format_seconds;

int main() {
  std::printf(
      "== Ablation: structured (communication-avoiding) vs materialized "
      "sparse Kronecker ==\n\n");

  uoi::support::Table table({"p", "backend", "solver setup+solve",
                             "design memory", "max |beta diff|"});
  for (const std::size_t p : {8u, 16u, 24u, 32u}) {
    uoi::data::VarSpec spec;
    spec.n_nodes = p;
    spec.seed = p;
    const auto truth = uoi::data::make_sparse_var(spec);
    uoi::var::SimulateOptions sim;
    sim.n_samples = 4 * p;
    sim.seed = p + 1;
    const auto series = uoi::var::simulate(truth, sim);
    const auto lag = uoi::var::build_lag_regression(series, 1);
    const auto problem = uoi::var::vectorize(lag);
    const double lambda = 2.0;

    uoi::solvers::AdmmOptions options;
    options.max_iterations = 5000;

    uoi::support::Stopwatch watch;
    const uoi::solvers::KronLassoAdmmSolver structured(problem.design,
                                                       problem.vec_y, options);
    const auto structured_fit = structured.solve(lambda);
    const double structured_seconds = watch.seconds();
    // The implicit operator stores only X: (N-d) x dp doubles.
    const std::uint64_t structured_bytes =
        lag.x.size() * sizeof(double);

    watch.reset();
    const auto csr = uoi::linalg::kron_identity_sparse(lag.x, p);
    const uoi::solvers::SparseLassoAdmmSolver sparse(csr, problem.vec_y,
                                                     options);
    const auto sparse_fit = sparse.solve(lambda);
    const double sparse_seconds = watch.seconds();
    const std::uint64_t sparse_bytes =
        csr.nnz() * (sizeof(double) + sizeof(std::size_t)) +
        (csr.rows() + 1) * sizeof(std::size_t);

    const double diff =
        uoi::linalg::max_abs_diff(structured_fit.beta, sparse_fit.beta);
    table.add_row({std::to_string(p), "structured (I x X implicit)",
                   format_seconds(structured_seconds),
                   uoi::support::format_bytes(structured_bytes),
                   uoi::support::format_sci(diff, 1)});
    table.add_row({std::to_string(p), "materialized sparse CSR",
                   format_seconds(sparse_seconds),
                   uoi::support::format_bytes(sparse_bytes), "-"});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "identical estimates; the structured backend stores X once instead "
      "of p copies\nand factors one dp x dp Gram for all p blocks.\n\n");

  std::printf("-- modeled paper-scale distribution avoided --\n\n");
  const uoi::perf::UoiVarCostModel model;
  uoi::support::Table avoided({"problem", "cores",
                               "Kron+vec distribution (paper design)",
                               "with structured backend"});
  for (const auto& point : uoi::perf::table1_var_weak_scaling()) {
    const auto w = uoi::perf::UoiVarWorkload::from_problem_gb(
        static_cast<double>(point.data_gb));
    const auto b = model.run(w, point.cores);
    // The structured backend ships only X ((N-d) x dp doubles) to each
    // rank once per bootstrap: a bcast, not a hotspot.
    const double structured_distr =
        static_cast<double>(w.b1) *
        static_cast<double>(w.lag_rows() * w.order * w.n_features *
                            sizeof(double)) /
        model.profile().network_bandwidth *
        std::log2(static_cast<double>(point.cores));
    avoided.add_row({uoi::support::format_bytes(point.data_gb << 30),
                     uoi::support::format_count(point.cores),
                     format_seconds(b.distribution),
                     format_seconds(structured_distr)});
  }
  std::printf("%s", avoided.to_text().c_str());
  std::printf(
      "\nThe 8 TB point drops from hours to seconds: the \"local "
      "computation + one-time\ncommunication\" design the Discussion "
      "anticipates removes the distribution bound.\n");
  return 0;
}
