// Single-node roofline analysis (paper §IV-A1/§IV-B1) — the Intel Advisor
// table reproduced from the paper's measured (GFLOPS, arithmetic
// intensity) points, classified against a KNL-node roofline.

#include <cstdio>

#include "perfmodel/roofline.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

int main() {
  std::printf("== Roofline analysis of the paper's measured kernels ==\n\n");
  const auto knl = uoi::perf::knl_node();
  std::printf(
      "platform: %.0f GFLOPS FP64 peak, %.0f GB/s DRAM "
      "(ridge at AI = %.1f FLOPs/byte)\n\n",
      knl.peak_gflops, knl.dram_bandwidth_gbs, knl.ridge_point());

  uoi::support::Table table({"kernel", "measured GFLOPS", "AI (FLOPs/B)",
                             "attainable", "roof fraction", "bound"});
  for (const auto& kernel : uoi::perf::paper_kernel_points()) {
    const double attainable =
        knl.attainable_gflops(kernel.arithmetic_intensity);
    table.add_row(
        {kernel.name, uoi::support::format_fixed(kernel.measured_gflops, 2),
         uoi::support::format_fixed(kernel.arithmetic_intensity, 2),
         uoi::support::format_fixed(attainable, 1),
         uoi::support::format_fixed(
             100.0 * uoi::perf::roofline_efficiency(knl, kernel), 1) +
             "%",
         uoi::perf::is_memory_bound(knl, kernel) ? "memory" : "compute"});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "paper finding reproduced: every kernel in the UoI pipeline sits\n"
      "under the DRAM bandwidth slope (memory bound), which is why the\n"
      "cost model charges kernels at the paper's measured rates rather\n"
      "than at peak FLOPS.\n");
  return 0;
}
