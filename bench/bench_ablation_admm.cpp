// Ablation — ADMM engineering choices DESIGN.md calls out:
//   (1) residual-balancing adaptive rho vs a fixed penalty,
//   (2) blocking vs pipelined (nonblocking) convergence checks — the
//       paper's §IV-A4 future-work direction,
//   (3) warm starts along the lambda path vs cold starts.
// Each is measured functionally (iteration/Allreduce counts on the
// simulated cluster) and projected to paper scale through the collective
// model (fewer blocking collectives x modeled Allreduce time).

#include <cstdio>

#include "data/synthetic_regression.hpp"
#include "perfmodel/collectives.hpp"
#include "perfmodel/machine.hpp"
#include "simcluster/cluster.hpp"
#include "solvers/admm_lasso.hpp"
#include "solvers/distributed_admm.hpp"
#include "solvers/lambda_grid.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

int main() {
  std::printf("== Ablation: ADMM engineering choices ==\n\n");

  uoi::data::RegressionSpec spec;
  spec.n_samples = 512;
  spec.n_features = 64;
  spec.support_size = 8;
  spec.noise_stddev = 0.5;
  const auto data = uoi::data::make_regression(spec);
  const double lambda_hi = uoi::solvers::lambda_max(data.x, data.y);

  // ---- (1) adaptive vs fixed rho ----
  std::printf("-- (1) adaptive vs fixed rho (serial path, 8 lambdas) --\n\n");
  uoi::support::Table rho_table(
      {"rho policy", "total iterations", "converged lambdas"});
  for (const bool adaptive : {false, true}) {
    uoi::solvers::AdmmOptions options;
    options.adaptive_rho = adaptive;
    const uoi::solvers::LassoAdmmSolver solver(data.x, data.y, options);
    std::size_t iterations = 0, converged = 0;
    const auto grid = uoi::solvers::log_spaced_lambdas(lambda_hi, 1e-3, 8);
    for (const double lambda : grid) {
      const auto fit = solver.solve(lambda);
      iterations += fit.iterations;
      converged += fit.converged ? 1 : 0;
    }
    rho_table.add_row({adaptive ? "adaptive (residual balancing)" : "fixed",
                       uoi::support::format_count(iterations),
                       std::to_string(converged) + "/8"});
  }
  std::printf("%s\n", rho_table.to_text().c_str());

  // ---- (2) blocking vs pipelined convergence check ----
  std::printf("-- (2) blocking vs pipelined stopping test (8 ranks) --\n\n");
  uoi::support::Table pipe_table({"stopping test", "iterations",
                                  "blocking collectives/iter",
                                  "modeled comm @ 34,816 cores"});
  const auto machine = uoi::perf::knl_profile();
  for (const bool pipelined : {false, true}) {
    uoi::solvers::AdmmOptions options;
    options.pipelined_convergence_check = pipelined;
    std::size_t iterations = 0;
    uoi::sim::Cluster::run(8, [&](uoi::sim::Comm& comm) {
      const std::size_t n = data.x.rows();
      const std::size_t begin = n * comm.rank() / comm.size();
      const std::size_t end = n * (comm.rank() + 1) / comm.size();
      const auto fit = uoi::solvers::distributed_lasso_admm(
          comm, data.x.row_block(begin, end - begin),
          std::span<const double>(data.y).subspan(begin, end - begin),
          0.05 * lambda_hi, options);
      if (comm.rank() == 0) iterations = fit.iterations;
    });
    // Blocking collectives per iteration: consensus (always) + residual
    // test (only when not pipelined).
    const double per_iter =
        uoi::perf::allreduce_time(machine, 34816,
                                  spec.n_features * sizeof(double)) +
        (pipelined ? 0.0
                   : uoi::perf::allreduce_time(machine, 34816,
                                               3 * sizeof(double)));
    pipe_table.add_row(
        {pipelined ? "pipelined (1-iter stale)" : "blocking",
         uoi::support::format_count(iterations),
         pipelined ? "1" : "2",
         uoi::support::format_seconds(per_iter *
                                      static_cast<double>(iterations))});
  }
  std::printf("%s\n", pipe_table.to_text().c_str());

  // ---- (3) warm vs cold starts along the lambda path ----
  std::printf("-- (3) warm vs cold starts along an 8-lambda path --\n\n");
  uoi::support::Table warm_table({"start policy", "total iterations"});
  {
    const uoi::solvers::LassoAdmmSolver solver(data.x, data.y);
    const auto grid = uoi::solvers::log_spaced_lambdas(lambda_hi, 1e-3, 8);
    std::size_t cold = 0, warm = 0;
    uoi::solvers::AdmmResult previous;
    bool have_previous = false;
    for (const double lambda : grid) {
      cold += solver.solve(lambda).iterations;
      auto fit = solver.solve(lambda, have_previous ? &previous : nullptr);
      warm += fit.iterations;
      previous = std::move(fit);
      have_previous = true;
    }
    warm_table.add_row({"cold", uoi::support::format_count(cold)});
    warm_table.add_row({"warm (path)", uoi::support::format_count(warm)});
  }
  std::printf("%s\n", warm_table.to_text().c_str());
  std::printf(
      "The production configuration (adaptive rho + warm starts, with the\n"
      "pipelined check available for large-scale runs) is the default.\n");
  return 0;
}
