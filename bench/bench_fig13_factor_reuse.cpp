// Fig. 13 (repo extension) — factorization reuse across lambda chains of
// one bootstrap resample.
//
// Setup: 8 ranks in 2 task groups of 4 ADMM cores; a 4-bootstrap x
// 16-lambda selection grid carved into 4 lambda chains per bootstrap, so
// each group owns every chain of its two bootstraps. Without the solver
// cache each (bootstrap, chain) cell re-gathers the resample and rebuilds
// the Gram + Cholesky from scratch — 4x per bootstrap; with the cache the
// group pays setup once per resample and every later chain starts at the
// factor stage. The measured quantity is the summed per-rank seconds spent
// inside selection cells (gather + setup + ADMM solves), cold vs cached.
//
// The bench also fits distributed UoI_LASSO with the cache enabled and
// disabled under all three schedule policies and verifies the models are
// bit-identical — the cache moves setup work, never numerics. Telemetry
// (BENCH_fig13_factor_reuse.json) carries the acceptance numbers for the
// regression gate.

#include <cstdio>
#include <numeric>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "core/distributed_common.hpp"
#include "core/uoi_lasso_distributed.hpp"
#include "data/synthetic_regression.hpp"
#include "linalg/matrix.hpp"
#include "sched/scheduler.hpp"
#include "sched/task_grid.hpp"
#include "simcluster/cluster.hpp"
#include "solvers/distributed_admm.hpp"
#include "solvers/lambda_grid.hpp"
#include "solvers/solver_cache.hpp"
#include "support/format.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace {

constexpr int kRanks = 8;
constexpr int kGroups = 2;
constexpr std::size_t kBootstraps = 4;
constexpr std::size_t kLambdas = 16;
constexpr std::size_t kChains = 4;  ///< lambda chains per bootstrap
constexpr std::size_t kSamples = 1920;
constexpr std::size_t kFeatures = 160;
constexpr std::size_t kCacheMb = 256;

struct SelectionEntry {
  uoi::linalg::Matrix x_local;
  uoi::linalg::Vector y_local;
  std::optional<uoi::solvers::DistributedLassoAdmmSolver> solver;
  std::size_t bytes_estimate = 0;
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_estimate; }
};

struct SelectionMeasurement {
  double cell_seconds_total = 0.0;  ///< summed over ranks
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

/// Runs the selection grid once with a per-rank cache budget of
/// `cache_mb` (0 = the cold, build-per-cell path) and returns the summed
/// per-rank seconds spent inside selection cells.
SelectionMeasurement measure_selection(
    std::size_t cache_mb, const uoi::data::RegressionDataset& data,
    const std::vector<double>& lambdas) {
  const uoi::linalg::ConstMatrixView x = data.x;
  const std::span<const double> y = data.y;
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  uoi::core::UoiLassoOptions resampling;
  resampling.n_selection_bootstraps = kBootstraps;
  resampling.seed = 2026;
  // Few iterations per lambda: the regime the cache targets is short
  // warm-started chains where the O(np^2 + p^3) setup dominates the
  // O(p^2)-per-iteration solves.
  uoi::solvers::AdmmOptions admm;
  admm.max_iterations = 12;

  std::vector<double> cell_seconds(kRanks, 0.0);
  std::vector<std::uint64_t> hits(kRanks, 0), misses(kRanks, 0);
  uoi::sim::Cluster::run(kRanks, [&](uoi::sim::Comm& comm) {
    const auto tl = uoi::core::detail::make_task_layout(
        comm.rank(), comm.size(), kGroups, 1);
    uoi::sim::Comm task_comm = comm.split(tl.task_group, comm.rank());
    const uoi::sched::GroupInfo info{kGroups, tl.task_group, tl.task_rank,
                                     kGroups, 1};
    const uoi::sched::TaskGrid grid(kBootstraps, kLambdas, kChains, 7);
    uoi::solvers::BootstrapCache cache(cache_mb << 20);

    const auto execute = [&](const uoi::sched::TaskCell& cell) {
      uoi::support::Stopwatch cell_watch;
      const std::size_t k = cell.bootstrap;
      const auto entry = cache.get_or_build<SelectionEntry>(
          uoi::solvers::kSelectionPass, k, [&] {
            auto fresh = std::make_shared<SelectionEntry>();
            const auto idx =
                uoi::core::selection_bootstrap_indices(resampling, n, k);
            uoi::core::detail::gather_local_block(
                x, y, idx,
                uoi::core::detail::block_slice(idx.size(), tl.c_ranks,
                                               tl.task_rank),
                fresh->x_local, fresh->y_local);
            fresh->solver.emplace(task_comm, fresh->x_local, fresh->y_local,
                                  admm);
            fresh->bytes_estimate = (n * (p + 1) + p * p) * sizeof(double);
            return fresh;
          });
      uoi::solvers::DistributedAdmmResult previous;
      bool have_previous = false;
      for (std::size_t j : grid.chain_lambdas(cell.chain)) {
        auto fit =
            entry->solver->solve(lambdas[j], have_previous ? &previous
                                                           : nullptr);
        previous = std::move(fit);
        have_previous = true;
      }
      cell_seconds[static_cast<std::size_t>(comm.rank())] +=
          cell_watch.seconds();
    };

    // Static placement: group = bootstrap % kGroups, so every group owns
    // all four chains of its bootstraps — the maximal-reuse layout.
    const std::vector<double> costs(grid.n_cells(), 1.0);
    std::vector<std::size_t> cells(grid.n_cells());
    std::iota(cells.begin(), cells.end(), 0u);
    const auto placement = uoi::sched::plan_placement(
        uoi::sched::SchedulePolicy::kStatic, grid, cells, costs, info,
        uoi::sched::group_widths(comm.size(), kGroups));
    (void)uoi::sched::run_pass(comm, task_comm, info,
                               uoi::sched::SchedulePolicy::kStatic, grid,
                               placement, costs, {}, execute);
    hits[static_cast<std::size_t>(comm.rank())] = cache.stats().hits;
    misses[static_cast<std::size_t>(comm.rank())] = cache.stats().misses;
  });

  SelectionMeasurement out;
  for (int r = 0; r < kRanks; ++r) {
    out.cell_seconds_total += cell_seconds[static_cast<std::size_t>(r)];
    out.cache_hits += hits[static_cast<std::size_t>(r)];
    out.cache_misses += misses[static_cast<std::size_t>(r)];
  }
  return out;
}

/// Distributed UoI_LASSO beta under `policy` with the given cache budget.
uoi::linalg::Vector fit_beta(uoi::sched::SchedulePolicy policy,
                             long cache_mb,
                             const uoi::data::RegressionDataset& data) {
  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 6;
  options.n_estimation_bootstraps = 4;
  options.n_lambdas = 8;
  options.seed = 2026;
  options.schedule = policy;
  options.solver_cache_mb = cache_mb;
  uoi::linalg::Vector beta;
  uoi::sim::Cluster::run(kRanks, [&](uoi::sim::Comm& comm) {
    const auto result = uoi::core::uoi_lasso_distributed(
        comm, data.x, data.y, options, {2, 2});
    if (comm.rank() == 0) beta = result.model.beta;
  });
  return beta;
}

}  // namespace

int main() {
  uoi::bench::FigureTrace trace("fig13_factor_reuse");
  uoi::bench::BenchReport telemetry("fig13_factor_reuse");
  telemetry.config("ranks", kRanks)
      .config("groups", kGroups)
      .config("bootstraps", kBootstraps)
      .config("lambdas", kLambdas)
      .config("chains_per_bootstrap", kChains)
      .config("samples", kSamples)
      .config("features", kFeatures)
      .config("cache_mb", kCacheMb);
  std::printf(
      "== Fig. 13: factorization reuse across lambda chains "
      "(solver cache) ==\n\n");

  // Model-identity gate first: the cache must not change the numbers.
  uoi::data::RegressionSpec fit_spec;
  fit_spec.n_samples = 60;
  fit_spec.n_features = 12;
  fit_spec.support_size = 4;
  fit_spec.seed = 31;
  const auto fit_data = uoi::data::make_regression(fit_spec);
  bool bit_identical = true;
  const auto reference =
      fit_beta(uoi::sched::SchedulePolicy::kStatic, kCacheMb, fit_data);
  for (const auto policy : {uoi::sched::SchedulePolicy::kStatic,
                            uoi::sched::SchedulePolicy::kCostLpt,
                            uoi::sched::SchedulePolicy::kWorkSteal}) {
    for (const long cache_mb : {static_cast<long>(kCacheMb), 0L}) {
      const auto beta = fit_beta(policy, cache_mb, fit_data);
      if (uoi::linalg::max_abs_diff(reference, beta) != 0.0) {
        bit_identical = false;
      }
    }
  }
  std::printf("model.beta bit-identical across policies x cache on/off: %s\n\n",
              bit_identical ? "yes" : "NO — CACHE BUG");

  // Selection-pass compute sweep: cold (cache disabled) vs cached.
  uoi::data::RegressionSpec spec;
  spec.n_samples = kSamples;
  spec.n_features = kFeatures;
  spec.support_size = 16;
  spec.seed = 47;
  const auto data = uoi::data::make_regression(spec);
  const auto lambdas = uoi::solvers::lambda_grid_for(
      data.x, data.y, kLambdas, 0.05);

  // Warm-up pass (thread pools, allocator), then the measured pair.
  (void)measure_selection(0, data, lambdas);
  const auto cold = measure_selection(0, data, lambdas);
  const auto cached = measure_selection(kCacheMb, data, lambdas);
  const double reduction =
      cold.cell_seconds_total > 0.0
          ? 100.0 *
                (cold.cell_seconds_total - cached.cell_seconds_total) /
                cold.cell_seconds_total
          : 0.0;

  uoi::support::Table table(
      {"variant", "cell seconds (sum)", "hits", "misses"});
  table.add_row({"cold (cache off)",
                 uoi::support::format_fixed(cold.cell_seconds_total, 4),
                 std::to_string(cold.cache_hits),
                 std::to_string(cold.cache_misses)});
  table.add_row({"cached",
                 uoi::support::format_fixed(cached.cell_seconds_total, 4),
                 std::to_string(cached.cache_hits),
                 std::to_string(cached.cache_misses)});
  std::printf("%s\n", table.to_text().c_str());
  std::printf("selection compute reduction (cached vs cold): %.1f%%\n",
              reduction);

  telemetry.config("selection_seconds_cold", cold.cell_seconds_total)
      .config("selection_seconds_cached", cached.cell_seconds_total)
      .config("reduction_pct", reduction)
      .config("cache_hits", cached.cache_hits)
      .config("cache_misses", cached.cache_misses)
      .config("beta_bit_identical", bit_identical ? "yes" : "no");

  // Acceptance: >= 25% selection compute reduction with >= 4 chains per
  // bootstrap, bit-identical models either way.
  if (!bit_identical || reduction < 25.0) {
    std::printf("FAIL: acceptance thresholds not met\n");
    return 1;
  }
  return 0;
}
