// Fig. 5 — T_min / T_max envelope of one MPI_Allreduce across the weak-
// scaling core counts (performance variability of the collective).
//
// Paper setup: one Allreduce of the p = 20,101-double estimate array at
// every weak-scaling configuration; the T_max/T_min gap widens with scale
// but "despite this we observe good scalability".
//
// Functional part: repeated Allreduces on the simulated cluster, reporting
// the min/max measured per rank count.

#include <cstdio>

#include "bench_common.hpp"
#include "perfmodel/collectives.hpp"
#include "perfmodel/lasso_cost.hpp"
#include "simcluster/cluster.hpp"
#include "support/format.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

int main() {
  uoi::bench::FigureTrace trace("fig5_allreduce_minmax");
  uoi::bench::BenchReport telemetry("fig5_allreduce_minmax");
  telemetry.config("rank_sweep", "2,4,8,16")
      .config("payload_doubles", 20101)
      .config("allreduces_per_config", 50)
      .config("hierarchical_sweep", "2,4,8,16");
  std::printf("== Fig. 5: Allreduce T_min / T_max across weak scaling ==\n\n");

  const auto m = uoi::perf::knl_profile();
  const std::uint64_t bytes = 20101 * sizeof(double);

  std::printf("-- modeled (20,101-double array, paper core counts) --\n\n");
  uoi::support::Table table(
      {"cores", "T_min", "T_mean", "T_max", "spread (max/min)"});
  for (const auto& point : uoi::perf::table1_lasso_weak_scaling()) {
    const auto envelope =
        uoi::perf::allreduce_minmax(m, point.cores, bytes);
    table.add_row({uoi::support::format_count(point.cores),
                   uoi::support::format_seconds(envelope.t_min),
                   uoi::support::format_seconds(envelope.t_mean),
                   uoi::support::format_seconds(envelope.t_max),
                   uoi::support::format_fixed(
                       envelope.t_max / envelope.t_min, 2) +
                       "x"});
  }
  std::printf("%s\n", table.to_text().c_str());

  std::printf("-- functional (50 Allreduces per rank count, measured) --\n\n");
  uoi::support::Table func({"ranks", "T_min", "T_max"});
  for (const int ranks : {2, 4, 8, 16}) {
    double t_min = 1e300, t_max = 0.0;
    uoi::sim::Cluster::run(ranks, [&](uoi::sim::Comm& comm) {
      std::vector<double> payload(20101, 1.0);
      for (int i = 0; i < 50; ++i) {
        uoi::support::Stopwatch watch;
        comm.allreduce(payload, uoi::sim::ReduceOp::kSum);
        const double t = watch.seconds();
        if (comm.rank() == 0) {
          t_min = std::min(t_min, t);
          t_max = std::max(t_max, t);
        }
      }
    });
    func.add_row({std::to_string(ranks),
                  uoi::support::format_seconds(t_min),
                  uoi::support::format_seconds(t_max)});
  }
  std::printf("%s\n", func.to_text().c_str());

  // -- hierarchical allreduce: modeled crossover at paper scale --
  //
  // Splitting the flat algorithms' P-wide straggler chain into an
  // intra-group level (g ~ sqrt(P)) and a leaders-only level (P/g ranks)
  // turns the P^1.5 straggler term into g^1.5 + (P/g)^1.5, which is where
  // the two-level tree overtakes the best flat algorithm at large P.
  std::printf(
      "-- modeled hierarchical crossover (20,101-double array) --\n\n");
  uoi::support::Table hier({"cores", "flat best", "hierarchical (g)",
                            "speedup"});
  double largest_speedup = 0.0;
  for (const auto& point : uoi::perf::table1_lasso_weak_scaling()) {
    const double flat = uoi::perf::allreduce_best_time(m, point.cores, bytes);
    const double two_level =
        uoi::perf::allreduce_hierarchical_time(m, point.cores, bytes);
    const auto g = uoi::perf::hierarchical_group_size(point.cores);
    largest_speedup = flat / two_level;
    hier.add_row({uoi::support::format_count(point.cores),
                  uoi::support::format_seconds(flat),
                  uoi::support::format_seconds(two_level) + " (g=" +
                      uoi::support::format_count(g) + ")",
                  uoi::support::format_fixed(flat / two_level, 2) + "x"});
  }
  std::printf("%s\n", hier.to_text().c_str());
  telemetry.config("hier_speedup_at_largest_scale", largest_speedup);

  // Functional: staged vs hierarchical on the simulated cluster, with a
  // correctness cross-check on the reduced values (integer payloads make
  // every reduction order exact).
  std::printf(
      "-- functional (staged vs hierarchical, 20 Allreduces each) --\n\n");
  uoi::support::Table algo_table({"ranks", "staged T_min", "hier T_min"});
  bool algos_agree = true;
  for (const int ranks : {8, 16}) {
    double staged_min = 1e300, hier_min = 1e300;
    double staged_sum = 0.0, hier_sum = 0.0;
    for (const auto algo : {uoi::sim::AllreduceAlgo::kStaged,
                            uoi::sim::AllreduceAlgo::kHierarchical}) {
      double local_min = 1e300;
      double checksum = 0.0;
      uoi::sim::Cluster::run(ranks, [&](uoi::sim::Comm& comm) {
        comm.set_allreduce_algo(algo);
        std::vector<double> payload(20101);
        for (int i = 0; i < 20; ++i) {
          for (std::size_t j = 0; j < payload.size(); ++j) {
            payload[j] = static_cast<double>(comm.rank() + 1) +
                         static_cast<double>(j % 7);
          }
          uoi::support::Stopwatch watch;
          comm.allreduce(payload, uoi::sim::ReduceOp::kSum);
          const double t = watch.seconds();
          if (comm.rank() == 0) {
            local_min = std::min(local_min, t);
            if (i == 0) {
              checksum = payload[0] + payload[1] + payload.back();
            }
          }
        }
      });
      if (algo == uoi::sim::AllreduceAlgo::kStaged) {
        staged_min = local_min;
        staged_sum = checksum;
      } else {
        hier_min = local_min;
        hier_sum = checksum;
      }
    }
    if (staged_sum != hier_sum) algos_agree = false;
    algo_table.add_row({std::to_string(ranks),
                        uoi::support::format_seconds(staged_min),
                        uoi::support::format_seconds(hier_min)});
  }
  std::printf("%s", algo_table.to_text().c_str());
  telemetry.config("hier_matches_staged", algos_agree ? 1 : 0);
  if (!algos_agree) {
    std::printf("\nFAIL: hierarchical allreduce disagrees with staged\n");
    return 1;
  }
  return 0;
}
