// Fig. 5 — T_min / T_max envelope of one MPI_Allreduce across the weak-
// scaling core counts (performance variability of the collective).
//
// Paper setup: one Allreduce of the p = 20,101-double estimate array at
// every weak-scaling configuration; the T_max/T_min gap widens with scale
// but "despite this we observe good scalability".
//
// Functional part: repeated Allreduces on the simulated cluster, reporting
// the min/max measured per rank count.

#include <cstdio>

#include "bench_common.hpp"
#include "perfmodel/collectives.hpp"
#include "perfmodel/lasso_cost.hpp"
#include "simcluster/cluster.hpp"
#include "support/format.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

int main() {
  uoi::bench::FigureTrace trace("fig5_allreduce_minmax");
  uoi::bench::BenchReport telemetry("fig5_allreduce_minmax");
  telemetry.config("rank_sweep", "2,4,8,16")
      .config("payload_doubles", 20101)
      .config("allreduces_per_config", 50);
  std::printf("== Fig. 5: Allreduce T_min / T_max across weak scaling ==\n\n");

  const auto m = uoi::perf::knl_profile();
  const std::uint64_t bytes = 20101 * sizeof(double);

  std::printf("-- modeled (20,101-double array, paper core counts) --\n\n");
  uoi::support::Table table(
      {"cores", "T_min", "T_mean", "T_max", "spread (max/min)"});
  for (const auto& point : uoi::perf::table1_lasso_weak_scaling()) {
    const auto envelope =
        uoi::perf::allreduce_minmax(m, point.cores, bytes);
    table.add_row({uoi::support::format_count(point.cores),
                   uoi::support::format_seconds(envelope.t_min),
                   uoi::support::format_seconds(envelope.t_mean),
                   uoi::support::format_seconds(envelope.t_max),
                   uoi::support::format_fixed(
                       envelope.t_max / envelope.t_min, 2) +
                       "x"});
  }
  std::printf("%s\n", table.to_text().c_str());

  std::printf("-- functional (50 Allreduces per rank count, measured) --\n\n");
  uoi::support::Table func({"ranks", "T_min", "T_max"});
  for (const int ranks : {2, 4, 8, 16}) {
    double t_min = 1e300, t_max = 0.0;
    uoi::sim::Cluster::run(ranks, [&](uoi::sim::Comm& comm) {
      std::vector<double> payload(20101, 1.0);
      for (int i = 0; i < 50; ++i) {
        uoi::support::Stopwatch watch;
        comm.allreduce(payload, uoi::sim::ReduceOp::kSum);
        const double t = watch.seconds();
        if (comm.rank() == 0) {
          t_min = std::min(t_min, t);
          t_max = std::max(t_max, t);
        }
      }
    });
    func.add_row({std::to_string(ranks),
                  uoi::support::format_seconds(t_min),
                  uoi::support::format_seconds(t_max)});
  }
  std::printf("%s", func.to_text().c_str());
  return 0;
}
