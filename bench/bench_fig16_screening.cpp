// Fig. 16 — sparsity-exploiting solver fast paths: SAFE / strong-rule
// screening along the selection lambda chain, active-set ADMM over the
// surviving columns, and the runtime-dispatched SIMD level-1 kernels.
//
// Three gate groups, all hard failures (exit 1):
//   speedup  : serial chain at p = 2048, >= 90% of columns screened out
//              and >= 3x less selection compute than the unscreened
//              two-stage chain — with byte-identical betas per lambda.
//   bitwise  : the distributed driver across all three scheduling
//              policies x {off, strong} emits one byte-identical model.
//   simd     : every dispatched kernel agrees bit-for-bit with the
//              scalar reference on long, unaligned-length vectors.

#include <cstdio>

#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/uoi_lasso_distributed.hpp"
#include "data/synthetic_regression.hpp"
#include "linalg/simd.hpp"
#include "simcluster/cluster.hpp"
#include "solvers/lambda_grid.hpp"
#include "solvers/screening.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

int main() {
  uoi::bench::FigureTrace trace("fig16_screening");
  uoi::bench::BenchReport telemetry("fig16_screening");
  std::printf("== Fig. 16: screening + active-set + SIMD fast paths ==\n");

  // -- selection-compute reduction (serial chain, p = 2048) --
  //
  // The regime the screening rules target: p >> true support, a
  // descending lambda chain, and the Gram/Cholesky pair dominating. Off
  // mode runs the canonical two-stage chain on a cached full-p
  // factorization; strong mode never touches the full Gram at all.
  uoi::bench::banner("selection-compute reduction (n=512, p=2048)");
  uoi::data::RegressionSpec spec;
  spec.n_samples = 512;
  spec.n_features = 2048;
  spec.support_size = 16;
  spec.seed = 1602;
  const auto data = uoi::data::make_regression(spec);
  // One decade, 16 points: a chain fine enough that the sequential
  // strong-rule threshold 2*l_k - l_{k-1} stays positive (step ratio
  // > 0.5); coarser chains degrade the rule to a no-op by design.
  const auto lambdas = uoi::solvers::lambda_grid_for(
      data.x, data.y, /*q=*/16, /*eps=*/1e-1);

  uoi::solvers::AdmmOptions admm;
  admm.eps_abs = 1e-5;
  admm.eps_rel = 1e-3;

  struct ChainPoint {
    std::vector<uoi::linalg::Vector> betas;
    uoi::solvers::ScreenStats stats;
    double seconds = 0.0;
  };
  const auto run_chain = [&](uoi::solvers::ScreenMode mode) {
    uoi::solvers::ScreenOptions screen;
    screen.mode = mode;
    ChainPoint point;
    uoi::support::Stopwatch watch;
    uoi::solvers::ScreenedLassoChain chain(data.x, data.y, admm, screen);
    for (const double lambda : lambdas) {
      point.betas.push_back(chain.solve(lambda).beta);
    }
    point.seconds = watch.seconds();
    point.stats = chain.stats();
    return point;
  };
  const auto off = run_chain(uoi::solvers::ScreenMode::kOff);
  const auto strong = run_chain(uoi::solvers::ScreenMode::kStrong);

  double chain_dbeta = 0.0;
  for (std::size_t j = 0; j < lambdas.size(); ++j) {
    chain_dbeta = std::max(
        chain_dbeta,
        uoi::linalg::max_abs_diff(off.betas[j], strong.betas[j]));
  }
  const double survivor_fraction =
      strong.stats.total_columns > 0
          ? static_cast<double>(strong.stats.survivors) /
                static_cast<double>(strong.stats.total_columns)
          : 1.0;
  const double speedup =
      strong.seconds > 0.0 ? off.seconds / strong.seconds : 0.0;

  uoi::support::Table chain_table(
      {"mode", "chain seconds", "survivors", "gram cols saved",
       "kkt violations"});
  const auto add_chain = [&](const char* name, const ChainPoint& pt) {
    chain_table.add_row(
        {name, uoi::support::format_seconds(pt.seconds),
         uoi::support::format_count(pt.stats.survivors),
         uoi::support::format_count(pt.stats.gram_cols_saved),
         uoi::support::format_count(pt.stats.kkt_violations)});
  };
  add_chain("off", off);
  add_chain("strong", strong);
  std::printf("%s\n", chain_table.to_text().c_str());
  std::printf("screening speedup:        %.2fx (gate: >= 3x)\n", speedup);
  std::printf("survivor fraction:        %.4f (gate: <= 0.10)\n",
              survivor_fraction);
  std::printf("off vs strong max |dbeta|: %.3g (gate: bitwise 0)\n",
              chain_dbeta);
  telemetry.config("n_samples", spec.n_samples)
      .config("n_features", spec.n_features)
      .config("q", lambdas.size())
      .config("screen_speedup", speedup)
      .config("screen_survivor_fraction", survivor_fraction)
      .config("screen_kkt_violations",
              static_cast<std::size_t>(strong.stats.kkt_violations));
  if (speedup < 3.0 || survivor_fraction > 0.10 || chain_dbeta != 0.0) {
    std::printf("\nFAIL: screening speedup gates not met\n");
    telemetry.config("screen_bitwise", 0);
    return 1;
  }

  // -- distributed byte-identity across scheduling policies (4 ranks) --
  //
  // One small UoI_LASSO fit, {static, cost_lpt, work_steal} x
  // {off, strong}: all six runs must land on one byte-identical model.
  // This is the end-to-end form of screening.hpp's canonical two-stage
  // contract — screening must never change what the pipeline selects.
  uoi::bench::banner("distributed byte-identity (4 ranks, 3 policies x 2 modes)");
  uoi::data::RegressionSpec dist_spec;
  dist_spec.n_samples = 200;
  dist_spec.n_features = 64;
  dist_spec.support_size = 8;
  dist_spec.seed = 1603;
  const auto dist_data = uoi::data::make_regression(dist_spec);
  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 4;
  options.n_estimation_bootstraps = 3;
  options.n_lambdas = 5;

  const auto run_distributed = [&](uoi::sched::SchedulePolicy policy,
                                   uoi::solvers::ScreenMode mode) {
    auto opts = options;
    opts.schedule = policy;
    opts.screen.mode = mode;
    uoi::linalg::Vector beta;
    uoi::sim::Cluster::run(4, [&](uoi::sim::Comm& comm) {
      const auto result = uoi::core::uoi_lasso_distributed(
          comm, dist_data.x, dist_data.y, opts);
      if (comm.rank() == 0) beta = result.model.beta;
    });
    return beta;
  };
  const uoi::sched::SchedulePolicy policies[] = {
      uoi::sched::SchedulePolicy::kStatic,
      uoi::sched::SchedulePolicy::kCostLpt,
      uoi::sched::SchedulePolicy::kWorkSteal,
  };
  const uoi::solvers::ScreenMode modes[] = {
      uoi::solvers::ScreenMode::kOff,
      uoi::solvers::ScreenMode::kStrong,
  };
  const auto reference = run_distributed(policies[0], modes[0]);
  double dist_dbeta = 0.0;
  for (const auto policy : policies) {
    for (const auto mode : modes) {
      if (policy == policies[0] && mode == modes[0]) continue;
      const auto beta = run_distributed(policy, mode);
      dist_dbeta = std::max(dist_dbeta,
                            uoi::linalg::max_abs_diff(beta, reference));
    }
  }
  std::printf("cross-policy/mode max |dbeta|: %.3g (gate: bitwise 0)\n",
              dist_dbeta);
  telemetry.config("screen_bitwise", dist_dbeta == 0.0 ? 1 : 0);
  if (dist_dbeta != 0.0) {
    std::printf("\nFAIL: screening or scheduling changed the model\n");
    return 1;
  }

  // -- SIMD dispatch bit-identity (scalar reference vs active table) --
  //
  // UOI_SIMD is resolved once per process, so the cross-level comparison
  // goes through kernel_table(level) directly. Lengths straddle the
  // 8-lane main loop and its scalar tail.
  uoi::bench::banner("SIMD kernel bit-identity (scalar vs dispatched)");
  const auto& scalar =
      uoi::linalg::simd::kernel_table(uoi::linalg::simd::SimdLevel::kScalar);
  const auto& active = uoi::linalg::simd::active_kernels();
  std::printf("detected level: %s, active level: %s\n",
              uoi::linalg::simd::simd_level_name(
                  uoi::linalg::simd::detect_simd_level()),
              uoi::linalg::simd::simd_level_name(
                  uoi::linalg::simd::resolve_simd_level()));
  bool simd_bitwise = true;
  for (const std::size_t n : {std::size_t{1001}, std::size_t{65536},
                              std::size_t{65543}}) {
    uoi::support::Xoshiro256 rng(1604 + n);
    uoi::linalg::Vector x(n);
    uoi::linalg::Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = rng.normal();
      y[i] = rng.normal();
    }
    simd_bitwise &=
        scalar.dot(x.data(), y.data(), n) == active.dot(x.data(), y.data(), n);
    simd_bitwise &= scalar.dist2_squared(x.data(), y.data(), n) ==
                    active.dist2_squared(x.data(), y.data(), n);
    simd_bitwise &= scalar.nrm1(x.data(), n) == active.nrm1(x.data(), n);
    uoi::linalg::Vector ys = y;
    uoi::linalg::Vector ya = y;
    scalar.axpy(0.37, x.data(), ys.data(), n);
    active.axpy(0.37, x.data(), ya.data(), n);
    simd_bitwise &= uoi::linalg::max_abs_diff(ys, ya) == 0.0;
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < n; i += 7) idx.push_back(i);
    uoi::linalg::Vector gs(idx.size(), 0.0);
    uoi::linalg::Vector ga(idx.size(), 0.0);
    scalar.gather(x.data(), idx.data(), idx.size(), gs.data());
    active.gather(x.data(), idx.data(), idx.size(), ga.data());
    simd_bitwise &= uoi::linalg::max_abs_diff(gs, ga) == 0.0;
    uoi::linalg::Vector ss(n, 0.0);
    uoi::linalg::Vector sa(n, 0.0);
    scalar.scatter(gs.data(), idx.data(), idx.size(), ss.data());
    active.scatter(ga.data(), idx.data(), idx.size(), sa.data());
    simd_bitwise &= uoi::linalg::max_abs_diff(ss, sa) == 0.0;
  }
  std::printf("scalar vs dispatched kernels: %s (gate: bitwise)\n",
              simd_bitwise ? "bit-identical" : "DIVERGED");
  telemetry.config("simd_bitwise", simd_bitwise ? 1 : 0);
  if (!simd_bitwise) {
    std::printf("\nFAIL: dispatched SIMD kernels diverged from scalar\n");
    return 1;
  }
  return 0;
}
