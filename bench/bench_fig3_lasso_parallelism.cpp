// Fig. 3 — exploiting UoI_LASSO's P_B x P_lambda algorithmic parallelism.
//
// Paper setup: B1 = B2 = q = 48; configurations 16x2, 8x4, 4x8, 2x16;
// data and ADMM cores doubling together from 16 GB / 2,176 cores to
// 128 GB / 17,408 cores. Reported: all configurations comparable with
// 2x16 slightly best; communication rises as ADMM_cores reach 272/544.
//
// Model caveat (documented in EXPERIMENTS.md): our cost model treats the
// four configurations symmetrically (identical task counts per group), so
// it reproduces the "all configurations comparable + communication grows
// with ADMM_cores" shape but not the paper's small 2x16 edge, which stems
// from implementation-level effects the model does not capture. The
// functional section measures real layout differences at laptop scale.

#include <cstdio>

#include "bench_common.hpp"
#include "core/uoi_lasso_distributed.hpp"
#include "data/synthetic_regression.hpp"
#include "perfmodel/lasso_cost.hpp"
#include "simcluster/cluster.hpp"

int main() {
  uoi::bench::FigureTrace trace("fig3_lasso_parallelism");
  uoi::bench::BenchReport telemetry("fig3_lasso_parallelism");
  telemetry.config("ranks", 8)
      .config("n_samples", 768)
      .config("n_features", 48)
      .config("b1", 8)
      .config("b2", 8)
      .config("q", 8)
      .config("layouts", "4x2,2x4,2x2,1x1");
  std::printf("== Fig. 3: P_B x P_lambda parallelism (B1=B2=q=48) ==\n");

  uoi::bench::banner("modeled at paper scale");
  const uoi::perf::UoiLassoCostModel model;
  const std::pair<std::size_t, std::size_t> configs[] = {
      {16, 2}, {8, 4}, {4, 8}, {2, 16}};
  auto table = uoi::bench::breakdown_table("size / cores / PB x PL");
  std::uint64_t cores = 2176;
  for (std::uint64_t gb = 16; gb <= 128; gb *= 2, cores *= 2) {
    for (const auto& [pb, pl] : configs) {
      uoi::perf::UoiLassoWorkload w;
      w.data_bytes = gb << 30;
      w.b1 = 48;
      w.b2 = 48;
      w.q = 48;
      table.add_row(uoi::bench::breakdown_row(
          std::to_string(gb) + " GB / " + std::to_string(cores) + " / " +
              std::to_string(pb) + "x" + std::to_string(pl),
          model.run(w, cores, pb, pl)));
    }
  }
  std::printf("%s", table.to_text().c_str());

  uoi::bench::banner(
      "functional (8 sim ranks, B1=B2=8, q=8, layouts on real data)");
  uoi::data::RegressionSpec spec;
  spec.n_samples = 768;
  spec.n_features = 48;
  spec.support_size = 6;
  const auto data = uoi::data::make_regression(spec);
  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 8;
  options.n_estimation_bootstraps = 8;
  options.n_lambdas = 8;

  uoi::support::Table func(
      {"PB x PL x C", "compute (rank 0)", "comm (rank 0)", "total allreduce"});
  for (const auto& [pb, pl] :
       {std::pair<int, int>{4, 2}, {2, 4}, {2, 2}, {1, 1}}) {
    uoi::core::UoiDistributedBreakdown breakdown;
    auto stats =
        uoi::sim::Cluster::run_collect_stats(8, [&](uoi::sim::Comm& comm) {
          const auto result = uoi::core::uoi_lasso_distributed(
              comm, data.x, data.y, options, {pb, pl});
          if (comm.rank() == 0) breakdown = result.breakdown;
        });
    double allreduce = 0.0;
    for (const auto& s : stats) {
      allreduce += s.of(uoi::sim::CommCategory::kAllreduce).seconds;
    }
    func.add_row(
        {std::to_string(pb) + " x " + std::to_string(pl) + " x " +
             std::to_string(8 / (pb * pl)),
         uoi::support::format_seconds(breakdown.computation_seconds),
         uoi::support::format_seconds(breakdown.communication_seconds),
         uoi::support::format_seconds(allreduce)});
  }
  std::printf("%s", func.to_text().c_str());
  return 0;
}
