// Fig. 14 (repo extension) — hang detection and shrink-resume recovery
// under the progress-heartbeat watchdog.
//
// Setup: distributed UoI_LASSO at 8 and 16 ranks with a deterministic
// (cost-LPT) schedule. For each scale the bench fits once fault-free,
// then re-fits with one rank hung a third of the way through its clean
// collective schedule and a 400 ms watchdog armed. Measured quantities:
//
//   - time-to-detect: the worst per-rank watchdog confirmation latency
//     (RecoveryStats::detect_seconds), which should sit near one timeout;
//   - recovery overhead: faulty wall minus clean wall — detection wait
//     plus the shrink protocol plus the redo of the dead rank's cells;
//   - correctness: every survivor's selection counts, per-lambda candidate
//     supports, and final support must be bit-identical to the fault-free
//     model (the requeued cells replay the same seeded resamples).
//
// The acceptance gate (exit 1) requires bit-identical models at both
// scales, exactly one watchdog confirmation per faulty run, and detection
// within 10x the armed timeout. Telemetry (BENCH_fig14_detect_recover.json)
// carries the numbers for tools/check_bench_regression.py.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/uoi_lasso_distributed.hpp"
#include "data/synthetic_regression.hpp"
#include "linalg/matrix.hpp"
#include "sched/scheduler.hpp"
#include "simcluster/cluster.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace {

constexpr long kTimeoutMs = 400;
constexpr std::size_t kSamples = 160;
constexpr std::size_t kFeatures = 24;

uoi::core::UoiLassoOptions bench_options() {
  uoi::core::UoiLassoOptions options;
  // Deterministic placement: the hang point below is a position in the
  // clean run's collective schedule, which work stealing would blur.
  options.schedule = uoi::sched::SchedulePolicy::kCostLpt;
  options.n_selection_bootstraps = 6;
  options.n_estimation_bootstraps = 3;
  options.n_lambdas = 6;
  options.seed = 1402;
  options.admm.eps_abs = 1e-8;
  options.admm.eps_rel = 1e-6;
  options.admm.max_iterations = 5000;
  return options;
}

std::uint64_t collective_calls(const uoi::sim::CommStats& stats) {
  std::uint64_t total = 0;
  for (int c = 0; c < static_cast<int>(uoi::sim::CommCategory::kPointToPoint);
       ++c) {
    total += stats.entries[static_cast<std::size_t>(c)].calls;
  }
  return total;
}

struct CaseResult {
  std::vector<uoi::core::UoiLassoDistributedResult> results;  // index == rank
  std::vector<uoi::sim::RankReport> reports;
  double wall_seconds = 0.0;
};

CaseResult run_case(int ranks, const uoi::data::RegressionDataset& data,
                    const uoi::core::UoiParallelLayout& layout,
                    std::shared_ptr<const uoi::sim::FaultPlan> plan) {
  const auto options = bench_options();
  CaseResult out;
  out.results.resize(static_cast<std::size_t>(ranks));
  uoi::support::Stopwatch watch;
  out.reports =
      uoi::sim::Cluster::run_collect_reports(ranks, [&](uoi::sim::Comm& comm) {
        if (plan != nullptr) {
          comm.set_fault_plan(plan);
          comm.set_watchdog({kTimeoutMs});
        }
        out.results[static_cast<std::size_t>(comm.rank())] =
            uoi::core::uoi_lasso_distributed(comm, data.x, data.y, options,
                                             layout);
      });
  out.wall_seconds = watch.seconds();
  return out;
}

bool same_model(const uoi::core::UoiLassoDistributedResult& actual,
                const uoi::core::UoiLassoDistributedResult& expected) {
  if (uoi::linalg::max_abs_diff(actual.selection_counts,
                                expected.selection_counts) != 0.0) {
    return false;
  }
  if (actual.model.candidate_supports != expected.model.candidate_supports) {
    return false;
  }
  return actual.model.support == expected.model.support;
}

struct ScaleMeasurement {
  int ranks = 0;
  double clean_wall = 0.0;
  double faulty_wall = 0.0;
  double detect_seconds = 0.0;  ///< max over ranks
  std::uint64_t hangs_detected = 0;
  std::uint64_t cells_recovered = 0;
  bool bit_identical = false;
};

ScaleMeasurement measure_scale(int ranks,
                               const uoi::core::UoiParallelLayout& layout,
                               int victim,
                               const uoi::data::RegressionDataset& data) {
  ScaleMeasurement m;
  m.ranks = ranks;
  const auto clean = run_case(ranks, data, layout, nullptr);
  m.clean_wall = clean.wall_seconds;

  auto plan = std::make_shared<uoi::sim::FaultPlan>();
  plan->hangs.push_back(
      {victim,
       collective_calls(clean.reports[static_cast<std::size_t>(victim)].comm) /
           3});
  const auto faulty = run_case(ranks, data, layout, plan);
  m.faulty_wall = faulty.wall_seconds;

  m.bit_identical = true;
  for (int r = 0; r < ranks; ++r) {
    const auto& report = faulty.reports[static_cast<std::size_t>(r)];
    m.hangs_detected += report.recovery.hangs_detected;
    m.cells_recovered =
        std::max(m.cells_recovered, report.recovery.cells_recovered);
    m.detect_seconds = std::max(m.detect_seconds, report.recovery.detect_seconds);
    if (r == victim) continue;
    if (!same_model(faulty.results[static_cast<std::size_t>(r)],
                    clean.results[0])) {
      m.bit_identical = false;
    }
  }
  return m;
}

}  // namespace

int main() {
  uoi::bench::FigureTrace trace("fig14_detect_recover");
  uoi::bench::BenchReport telemetry("fig14_detect_recover");
  telemetry.config("timeout_ms", static_cast<int>(kTimeoutMs))
      .config("samples", kSamples)
      .config("features", kFeatures)
      .config("selection_bootstraps", std::size_t{6})
      .config("lambdas", std::size_t{6});
  std::printf(
      "== Fig. 14: hang detection and shrink-resume recovery "
      "(progress watchdog, %ld ms timeout) ==\n\n",
      kTimeoutMs);

  uoi::data::RegressionSpec spec;
  spec.n_samples = kSamples;
  spec.n_features = kFeatures;
  spec.support_size = 6;
  spec.noise_stddev = 0.3;
  spec.seed = 1403;
  const auto data = uoi::data::make_regression(spec);

  const auto eight = measure_scale(8, {4, 1}, /*victim=*/3, data);
  const auto sixteen = measure_scale(16, {8, 1}, /*victim=*/11, data);

  uoi::support::Table table({"ranks", "clean wall", "faulty wall",
                             "detect (s)", "hangs", "cells redone",
                             "bit-identical"});
  for (const auto& m : {eight, sixteen}) {
    table.add_row({std::to_string(m.ranks),
                   uoi::support::format_seconds(m.clean_wall),
                   uoi::support::format_seconds(m.faulty_wall),
                   uoi::support::format_fixed(m.detect_seconds, 3),
                   std::to_string(m.hangs_detected),
                   std::to_string(m.cells_recovered),
                   m.bit_identical ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_text().c_str());

  telemetry.config("clean_wall_8", eight.clean_wall)
      .config("faulty_wall_8", eight.faulty_wall)
      .config("detect_seconds_8", eight.detect_seconds)
      .config("hangs_detected_8", static_cast<std::size_t>(eight.hangs_detected))
      .config("clean_wall_16", sixteen.clean_wall)
      .config("faulty_wall_16", sixteen.faulty_wall)
      .config("detect_seconds_16", sixteen.detect_seconds)
      .config("hangs_detected_16",
              static_cast<std::size_t>(sixteen.hangs_detected))
      .config("bit_identical",
              eight.bit_identical && sixteen.bit_identical ? "yes" : "no");

  // Acceptance: one watchdog confirmation per faulty run (the claim CAS
  // makes double-detections impossible by construction — treat any other
  // count as a bug), detection within 10x the timeout, bit-identical
  // recovered models at both scales.
  const double detect_bound = 10.0 * static_cast<double>(kTimeoutMs) / 1000.0;
  bool ok = true;
  for (const auto& m : {eight, sixteen}) {
    if (!m.bit_identical || m.hangs_detected != 1 ||
        m.detect_seconds <= 0.0 || m.detect_seconds > detect_bound) {
      ok = false;
    }
  }
  if (!ok) {
    std::printf("FAIL: acceptance thresholds not met\n");
    return 1;
  }
  return 0;
}
