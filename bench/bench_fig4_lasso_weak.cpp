// Fig. 4 — UoI_LASSO weak scaling (128 GB / 4,352 cores -> 8 TB /
// 278,528 cores; fixed bytes per core, p = 20,101 features).
//
// Paper shape: computation nearly ideal (flat, slight rise at 8 TB);
// communication (~99% MPI_Allreduce) grows with core count.
//
// Functional validation: the same driver on the simulated cluster with
// rank counts 2..16 and data scaled with ranks — the measured Allreduce
// time must grow with ranks while per-rank compute stays flat.

#include <cstdio>

#include "bench_common.hpp"
#include "core/uoi_lasso_distributed.hpp"
#include "data/synthetic_regression.hpp"
#include "perfmodel/lasso_cost.hpp"
#include "simcluster/cluster.hpp"

int main() {
  uoi::bench::FigureTrace trace("fig4_lasso_weak");
  uoi::bench::BenchReport telemetry("fig4_lasso_weak");
  telemetry.config("rank_sweep", "2,4,8,16")
      .config("rows_per_rank", 96)
      .config("n_features", 48)
      .config("b1", 5)
      .config("b2", 3)
      .config("q", 6);
  std::printf("== Fig. 4: UoI_LASSO weak scaling ==\n");

  uoi::bench::banner("modeled at paper scale (bytes/core fixed)");
  const uoi::perf::UoiLassoCostModel model;
  auto table = uoi::bench::breakdown_table("size / cores");
  for (const auto& point : uoi::perf::table1_lasso_weak_scaling()) {
    uoi::perf::UoiLassoWorkload w;
    w.data_bytes = point.data_gb << 30;
    table.add_row(uoi::bench::breakdown_row(
        uoi::support::format_bytes(w.data_bytes) + " / " +
            uoi::support::format_count(point.cores),
        model.run(w, point.cores)));
  }
  std::printf("%s", table.to_text().c_str());
  std::printf(
      "\npaper shape: computation ~flat across the row; communication "
      "strictly grows with cores.\n");

  uoi::bench::banner("functional weak scaling (rows grow with ranks)");
  uoi::support::Table func({"ranks", "rows", "compute (rank 0)",
                            "comm (rank 0)", "allreduce bytes/rank"});
  uoi::core::UoiLassoOptions options;
  options.n_selection_bootstraps = 5;
  options.n_estimation_bootstraps = 3;
  options.n_lambdas = 6;
  for (const int ranks : {2, 4, 8, 16}) {
    uoi::data::RegressionSpec spec;
    spec.n_samples = static_cast<std::size_t>(ranks) * 96;
    spec.n_features = 48;
    spec.support_size = 6;
    const auto data = uoi::data::make_regression(spec);
    uoi::core::UoiDistributedBreakdown breakdown;
    auto stats =
        uoi::sim::Cluster::run_collect_stats(ranks, [&](uoi::sim::Comm& comm) {
          const auto result = uoi::core::uoi_lasso_distributed(
              comm, data.x, data.y, options);
          if (comm.rank() == 0) breakdown = result.breakdown;
        });
    func.add_row({std::to_string(ranks), std::to_string(spec.n_samples),
                  uoi::support::format_seconds(breakdown.computation_seconds),
                  uoi::support::format_seconds(
                      breakdown.communication_seconds),
                  uoi::support::format_bytes(
                      stats[0].of(uoi::sim::CommCategory::kAllreduce).bytes)});
  }
  std::printf("%s", func.to_text().c_str());
  return 0;
}
