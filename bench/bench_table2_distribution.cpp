// Table II — randomized vs conventional data read + distribution time.
//
// Two parts:
//  (a) functional: real H5-lite datasets on disk, both strategies timed on
//      the simulated cluster (MB scale — the *ratio* is the result);
//  (b) modeled: the paper's 16 GB - 1 TB grid through the calibrated I/O
//      model, printed next to the paper's measured numbers.

#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "data/synthetic_regression.hpp"
#include "io/distribution.hpp"
#include "io/h5lite.hpp"
#include "perfmodel/io_model.hpp"
#include "simcluster/cluster.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

using uoi::support::format_bytes;
using uoi::support::format_seconds;

int main() {
  uoi::bench::FigureTrace trace("table2_distribution");
  std::printf("== Table II: data read + distribution time ==\n\n");

  // ---- (a) functional runs ----
  std::printf("-- functional (on-disk H5-lite, 8 simulated ranks) --\n\n");
  uoi::support::Table func({"size", "conv read", "conv distr", "rand read",
                            "rand distr", "read speedup"});
  for (const std::size_t rows : {2000u, 8000u, 32000u}) {
    uoi::data::RegressionSpec spec;
    spec.n_samples = rows;
    spec.n_features = 64;
    spec.support_size = 4;
    const auto data = uoi::data::make_regression(spec);
    const std::string base =
        (std::filesystem::temp_directory_path() /
         ("uoi_table2_" + std::to_string(rows)))
            .string();
    // Small chunks make the conventional reader reopen the file many
    // times, the behaviour Table II attributes the 10^3x slowdown to.
    uoi::io::write_dataset(base, data.x, /*chunk_rows=*/128, /*n_stripes=*/4);

    uoi::io::DistributionTiming conventional{}, randomized{};
    uoi::sim::Cluster::run(8, [&](uoi::sim::Comm& comm) {
      uoi::io::DistributionTiming conv_local, rand_local;
      (void)uoi::io::conventional_distribute(comm, base, &conv_local);
      (void)uoi::io::randomized_distribute(comm, base, 11, &rand_local);
      if (comm.rank() == 0) {
        conventional = conv_local;
        randomized = rand_local;
      }
    });
    func.add_row(
        {format_bytes(rows * 64 * sizeof(double)),
         format_seconds(conventional.read_seconds),
         format_seconds(conventional.distribute_seconds),
         format_seconds(randomized.read_seconds),
         format_seconds(randomized.distribute_seconds),
         uoi::support::format_fixed(
             conventional.read_seconds /
                 std::max(randomized.read_seconds, 1e-9),
             1) +
             "x"});
    for (std::uint64_t k = 0; k < 4; ++k) {
      std::error_code ec;
      std::filesystem::remove(uoi::io::stripe_path(base, k), ec);
    }
  }
  std::printf("%s\n", func.to_text().c_str());

  // ---- (b) modeled paper-scale grid vs the paper's measurements ----
  std::printf("-- modeled at paper scale (vs paper's measured values) --\n\n");
  struct PaperRow {
    std::uint64_t gb;
    std::uint64_t cores;
    double conv_read, conv_distr, rand_read, rand_distr;
  };
  // The measured values from Table II of the paper.
  const PaperRow paper[] = {
      {16, 1088, 204.71, 1.276, 11.3191, 0.33},
      {128, 4352, 1200.81, 17.596, 0.52, 5.718},
      {256, 8704, 2204.52, 36.46, 1.46, 2.62},
      {512, 17408, 5323.486, 74.274, 8.043, 3.64},
      {1024, 34816, 11732.48, 158.016, 8.781, 3.774},
  };
  const auto m = uoi::perf::knl_profile();
  uoi::support::Table modeled(
      {"size", "conv read (model/paper)", "conv distr (model/paper)",
       "rand read (model/paper)", "rand distr (model/paper)"});
  for (const auto& row : paper) {
    const std::uint64_t bytes = row.gb << 30;
    // Table II's footnote: the 16 GB dataset was not striped into OSTs.
    const bool striped = row.gb > 16;
    const double conv_read =
        uoi::perf::conventional_read_time(m, bytes, 64ULL << 20);
    const double conv_distr = uoi::perf::conventional_distribute_time(m, bytes);
    const double rand_read =
        uoi::perf::randomized_read_time(m, bytes, row.cores, striped);
    const double rand_distr =
        uoi::perf::randomized_distribute_time(m, bytes, row.cores);
    auto pair = [](double model, double measured) {
      return format_seconds(model) + " / " + format_seconds(measured);
    };
    modeled.add_row({format_bytes(bytes), pair(conv_read, row.conv_read),
                     pair(conv_distr, row.conv_distr),
                     pair(rand_read, row.rand_read),
                     pair(rand_distr, row.rand_distr)});
  }
  std::printf("%s\n", modeled.to_text().c_str());
  std::printf(
      "Shape check: conventional read grows linearly with size into the\n"
      "10^4-second range while the randomized design stays below 100 s\n"
      "(beyond 1 TB the paper reports > 5 hours conventional vs < 100 s).\n");
  return 0;
}
