// Table I — the performance-analysis setup grid.
//
// Prints (a) the paper's configuration grid (data sizes vs core counts for
// both algorithms) with the problem dimensions our models derive from it,
// and (b) the scaled-down functional configurations the laptop-scale
// benches in this repository use. This is the reference card the other
// bench binaries share.

#include <cstdio>

#include "perfmodel/lasso_cost.hpp"
#include "perfmodel/var_cost.hpp"
#include "support/format.hpp"
#include "support/table.hpp"

using uoi::support::format_bytes;
using uoi::support::format_count;

int main() {
  std::printf(
      "== Table I: performance-analysis setup (paper grid + derived "
      "dimensions) ==\n\n");

  uoi::support::Table grid({"analysis", "size", "cores (UoI_LASSO)",
                            "cores (UoI_VAR)", "LASSO samples (p=20,101)",
                            "VAR features p", "VAR parameters"});
  grid.add_row({"single node", "16 GB", "68", "68", "99,000", "211", "44,521"});

  const auto lasso_weak = uoi::perf::table1_lasso_weak_scaling();
  const auto var_weak = uoi::perf::table1_var_weak_scaling();
  for (std::size_t i = 0; i < lasso_weak.size(); ++i) {
    uoi::perf::UoiLassoWorkload lasso;
    lasso.data_bytes = lasso_weak[i].data_gb << 30;
    const auto var = uoi::perf::UoiVarWorkload::from_problem_gb(
        static_cast<double>(var_weak[i].data_gb));
    grid.add_row({"weak scaling",
                  format_bytes(lasso.data_bytes),
                  format_count(lasso_weak[i].cores),
                  format_count(var_weak[i].cores),
                  format_count(lasso.n_samples()),
                  format_count(var.n_features),
                  format_count(var.n_coefficients())});
  }
  for (const auto& point : uoi::perf::table1_lasso_strong_scaling()) {
    uoi::perf::UoiLassoWorkload lasso;
    lasso.data_bytes = point.data_gb << 30;
    grid.add_row({"strong scaling (LASSO)", format_bytes(lasso.data_bytes),
                  format_count(point.cores), "-",
                  format_count(lasso.n_samples()), "-", "-"});
  }
  for (const auto& point : uoi::perf::table1_var_strong_scaling()) {
    const auto var = uoi::perf::UoiVarWorkload::from_problem_gb(
        static_cast<double>(point.data_gb));
    grid.add_row({"strong scaling (VAR)",
                  format_bytes(point.data_gb << 30), "-",
                  format_count(point.cores), "-",
                  format_count(var.n_features),
                  format_count(var.n_coefficients())});
  }
  std::printf("%s\n", grid.to_text().c_str());

  std::printf(
      "Headline check: the paper's largest VAR problem (8 TB) corresponds "
      "to p = %s features\n= %s parameters (the paper's \"1000 nodes, 1M "
      "parameters\").\n\n",
      format_count(
          uoi::perf::UoiVarWorkload::from_problem_gb(8192).n_features)
          .c_str(),
      format_count(
          uoi::perf::UoiVarWorkload::from_problem_gb(8192).n_coefficients())
          .c_str());

  // Node-hours of the paper's campaign (68 cores per KNL node; wall time
  // from the calibrated models): what this evaluation would cost to rerun.
  std::printf("== Modeled node-hours per weak-scaling point ==\n\n");
  {
    const uoi::perf::UoiLassoCostModel lasso_model;
    const uoi::perf::UoiVarCostModel var_model;
    uoi::support::Table cost({"point", "UoI_LASSO node-hours",
                              "UoI_VAR node-hours"});
    const auto lasso_points = uoi::perf::table1_lasso_weak_scaling();
    const auto var_points = uoi::perf::table1_var_weak_scaling();
    double lasso_total = 0.0, var_total = 0.0;
    for (std::size_t i = 0; i < lasso_points.size(); ++i) {
      uoi::perf::UoiLassoWorkload lw;
      lw.data_bytes = lasso_points[i].data_gb << 30;
      const double lasso_hours =
          lasso_model.run(lw, lasso_points[i].cores).total() / 3600.0 *
          (static_cast<double>(lasso_points[i].cores) / 68.0);
      const auto vw = uoi::perf::UoiVarWorkload::from_problem_gb(
          static_cast<double>(var_points[i].data_gb));
      const double var_hours =
          var_model.run(vw, var_points[i].cores).total() / 3600.0 *
          (static_cast<double>(var_points[i].cores) / 68.0);
      lasso_total += lasso_hours;
      var_total += var_hours;
      cost.add_row({format_bytes(lasso_points[i].data_gb << 30),
                    uoi::support::format_fixed(lasso_hours, 1),
                    uoi::support::format_fixed(var_hours, 1)});
    }
    cost.add_row({"TOTAL (weak-scaling rows)",
                  uoi::support::format_fixed(lasso_total, 1),
                  uoi::support::format_fixed(var_total, 1)});
    std::printf("%s\n", cost.to_text().c_str());
  }

  std::printf(
      "== Functional (laptop-scale) configurations used by this repo's "
      "benches ==\n\n");
  uoi::support::Table func({"bench", "functional configuration"});
  func.add_row({"fig2/fig7 single node", "4-8 sim ranks, MB-scale data"});
  func.add_row({"fig3/fig8 parallelism", "8 sim ranks, P_B x P_L in {1,2,4}"});
  func.add_row({"fig4/6/9/10 scaling", "2-16 sim ranks + calibrated model"});
  func.add_row({"table2 distribution", "on-disk H5-lite files, 4-8 ranks"});
  func.add_row({"fig11 applications", "50-ticker equity / 24-ch spikes"});
  std::printf("%s", func.to_text().c_str());
  return 0;
}
