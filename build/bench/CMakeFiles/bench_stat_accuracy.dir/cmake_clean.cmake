file(REMOVE_RECURSE
  "CMakeFiles/bench_stat_accuracy.dir/bench_stat_accuracy.cpp.o"
  "CMakeFiles/bench_stat_accuracy.dir/bench_stat_accuracy.cpp.o.d"
  "bench_stat_accuracy"
  "bench_stat_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stat_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
