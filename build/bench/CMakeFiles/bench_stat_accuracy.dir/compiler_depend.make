# Empty compiler generated dependencies file for bench_stat_accuracy.
# This may be replaced when dependencies are built.
