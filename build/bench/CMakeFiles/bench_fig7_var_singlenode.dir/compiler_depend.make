# Empty compiler generated dependencies file for bench_fig7_var_singlenode.
# This may be replaced when dependencies are built.
