# Empty dependencies file for bench_fig6_lasso_strong.
# This may be replaced when dependencies are built.
