file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_lasso_weak.dir/bench_fig4_lasso_weak.cpp.o"
  "CMakeFiles/bench_fig4_lasso_weak.dir/bench_fig4_lasso_weak.cpp.o.d"
  "bench_fig4_lasso_weak"
  "bench_fig4_lasso_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_lasso_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
