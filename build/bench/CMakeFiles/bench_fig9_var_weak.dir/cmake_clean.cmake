file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_var_weak.dir/bench_fig9_var_weak.cpp.o"
  "CMakeFiles/bench_fig9_var_weak.dir/bench_fig9_var_weak.cpp.o.d"
  "bench_fig9_var_weak"
  "bench_fig9_var_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_var_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
