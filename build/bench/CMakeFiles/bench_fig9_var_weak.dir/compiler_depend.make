# Empty compiler generated dependencies file for bench_fig9_var_weak.
# This may be replaced when dependencies are built.
