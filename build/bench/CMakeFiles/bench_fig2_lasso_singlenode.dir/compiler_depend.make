# Empty compiler generated dependencies file for bench_fig2_lasso_singlenode.
# This may be replaced when dependencies are built.
