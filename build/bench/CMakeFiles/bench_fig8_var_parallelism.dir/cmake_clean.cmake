file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_var_parallelism.dir/bench_fig8_var_parallelism.cpp.o"
  "CMakeFiles/bench_fig8_var_parallelism.dir/bench_fig8_var_parallelism.cpp.o.d"
  "bench_fig8_var_parallelism"
  "bench_fig8_var_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_var_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
