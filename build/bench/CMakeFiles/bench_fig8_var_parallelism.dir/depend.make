# Empty dependencies file for bench_fig8_var_parallelism.
# This may be replaced when dependencies are built.
