file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_admm.dir/bench_ablation_admm.cpp.o"
  "CMakeFiles/bench_ablation_admm.dir/bench_ablation_admm.cpp.o.d"
  "bench_ablation_admm"
  "bench_ablation_admm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_admm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
