# Empty compiler generated dependencies file for bench_ablation_admm.
# This may be replaced when dependencies are built.
