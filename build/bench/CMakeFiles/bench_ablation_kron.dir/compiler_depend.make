# Empty compiler generated dependencies file for bench_ablation_kron.
# This may be replaced when dependencies are built.
