file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_kron.dir/bench_ablation_kron.cpp.o"
  "CMakeFiles/bench_ablation_kron.dir/bench_ablation_kron.cpp.o.d"
  "bench_ablation_kron"
  "bench_ablation_kron.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
