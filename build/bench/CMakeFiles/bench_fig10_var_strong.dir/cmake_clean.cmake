file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_var_strong.dir/bench_fig10_var_strong.cpp.o"
  "CMakeFiles/bench_fig10_var_strong.dir/bench_fig10_var_strong.cpp.o.d"
  "bench_fig10_var_strong"
  "bench_fig10_var_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_var_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
