# Empty compiler generated dependencies file for bench_fig10_var_strong.
# This may be replaced when dependencies are built.
