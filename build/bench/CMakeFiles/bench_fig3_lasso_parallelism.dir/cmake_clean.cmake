file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_lasso_parallelism.dir/bench_fig3_lasso_parallelism.cpp.o"
  "CMakeFiles/bench_fig3_lasso_parallelism.dir/bench_fig3_lasso_parallelism.cpp.o.d"
  "bench_fig3_lasso_parallelism"
  "bench_fig3_lasso_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_lasso_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
