# Empty dependencies file for bench_fig5_allreduce_minmax.
# This may be replaced when dependencies are built.
