file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_allreduce_minmax.dir/bench_fig5_allreduce_minmax.cpp.o"
  "CMakeFiles/bench_fig5_allreduce_minmax.dir/bench_fig5_allreduce_minmax.cpp.o.d"
  "bench_fig5_allreduce_minmax"
  "bench_fig5_allreduce_minmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_allreduce_minmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
