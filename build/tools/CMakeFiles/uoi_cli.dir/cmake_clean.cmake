file(REMOVE_RECURSE
  "CMakeFiles/uoi_cli.dir/uoi_cli.cpp.o"
  "CMakeFiles/uoi_cli.dir/uoi_cli.cpp.o.d"
  "uoi"
  "uoi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uoi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
