
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/uoi_cli.cpp" "tools/CMakeFiles/uoi_cli.dir/uoi_cli.cpp.o" "gcc" "tools/CMakeFiles/uoi_cli.dir/uoi_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/uoi_data.dir/DependInfo.cmake"
  "/root/repo/build/src/var/CMakeFiles/uoi_var.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/uoi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solvers/CMakeFiles/uoi_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/uoi_io.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/uoi_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/simcluster/CMakeFiles/uoi_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/uoi_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/uoi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
