# Empty dependencies file for uoi_cli.
# This may be replaced when dependencies are built.
