# Empty dependencies file for stock_network.
# This may be replaced when dependencies are built.
