file(REMOVE_RECURSE
  "CMakeFiles/stock_network.dir/stock_network.cpp.o"
  "CMakeFiles/stock_network.dir/stock_network.cpp.o.d"
  "stock_network"
  "stock_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stock_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
