file(REMOVE_RECURSE
  "CMakeFiles/neuro_spikes.dir/neuro_spikes.cpp.o"
  "CMakeFiles/neuro_spikes.dir/neuro_spikes.cpp.o.d"
  "neuro_spikes"
  "neuro_spikes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuro_spikes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
