# Empty compiler generated dependencies file for neuro_spikes.
# This may be replaced when dependencies are built.
