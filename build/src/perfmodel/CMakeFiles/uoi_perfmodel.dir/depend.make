# Empty dependencies file for uoi_perfmodel.
# This may be replaced when dependencies are built.
