
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfmodel/collectives.cpp" "src/perfmodel/CMakeFiles/uoi_perfmodel.dir/collectives.cpp.o" "gcc" "src/perfmodel/CMakeFiles/uoi_perfmodel.dir/collectives.cpp.o.d"
  "/root/repo/src/perfmodel/emulation.cpp" "src/perfmodel/CMakeFiles/uoi_perfmodel.dir/emulation.cpp.o" "gcc" "src/perfmodel/CMakeFiles/uoi_perfmodel.dir/emulation.cpp.o.d"
  "/root/repo/src/perfmodel/io_model.cpp" "src/perfmodel/CMakeFiles/uoi_perfmodel.dir/io_model.cpp.o" "gcc" "src/perfmodel/CMakeFiles/uoi_perfmodel.dir/io_model.cpp.o.d"
  "/root/repo/src/perfmodel/kernels.cpp" "src/perfmodel/CMakeFiles/uoi_perfmodel.dir/kernels.cpp.o" "gcc" "src/perfmodel/CMakeFiles/uoi_perfmodel.dir/kernels.cpp.o.d"
  "/root/repo/src/perfmodel/lasso_cost.cpp" "src/perfmodel/CMakeFiles/uoi_perfmodel.dir/lasso_cost.cpp.o" "gcc" "src/perfmodel/CMakeFiles/uoi_perfmodel.dir/lasso_cost.cpp.o.d"
  "/root/repo/src/perfmodel/machine.cpp" "src/perfmodel/CMakeFiles/uoi_perfmodel.dir/machine.cpp.o" "gcc" "src/perfmodel/CMakeFiles/uoi_perfmodel.dir/machine.cpp.o.d"
  "/root/repo/src/perfmodel/roofline.cpp" "src/perfmodel/CMakeFiles/uoi_perfmodel.dir/roofline.cpp.o" "gcc" "src/perfmodel/CMakeFiles/uoi_perfmodel.dir/roofline.cpp.o.d"
  "/root/repo/src/perfmodel/var_cost.cpp" "src/perfmodel/CMakeFiles/uoi_perfmodel.dir/var_cost.cpp.o" "gcc" "src/perfmodel/CMakeFiles/uoi_perfmodel.dir/var_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcluster/CMakeFiles/uoi_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/uoi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
