file(REMOVE_RECURSE
  "libuoi_perfmodel.a"
)
