file(REMOVE_RECURSE
  "CMakeFiles/uoi_perfmodel.dir/collectives.cpp.o"
  "CMakeFiles/uoi_perfmodel.dir/collectives.cpp.o.d"
  "CMakeFiles/uoi_perfmodel.dir/emulation.cpp.o"
  "CMakeFiles/uoi_perfmodel.dir/emulation.cpp.o.d"
  "CMakeFiles/uoi_perfmodel.dir/io_model.cpp.o"
  "CMakeFiles/uoi_perfmodel.dir/io_model.cpp.o.d"
  "CMakeFiles/uoi_perfmodel.dir/kernels.cpp.o"
  "CMakeFiles/uoi_perfmodel.dir/kernels.cpp.o.d"
  "CMakeFiles/uoi_perfmodel.dir/lasso_cost.cpp.o"
  "CMakeFiles/uoi_perfmodel.dir/lasso_cost.cpp.o.d"
  "CMakeFiles/uoi_perfmodel.dir/machine.cpp.o"
  "CMakeFiles/uoi_perfmodel.dir/machine.cpp.o.d"
  "CMakeFiles/uoi_perfmodel.dir/roofline.cpp.o"
  "CMakeFiles/uoi_perfmodel.dir/roofline.cpp.o.d"
  "CMakeFiles/uoi_perfmodel.dir/var_cost.cpp.o"
  "CMakeFiles/uoi_perfmodel.dir/var_cost.cpp.o.d"
  "libuoi_perfmodel.a"
  "libuoi_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uoi_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
