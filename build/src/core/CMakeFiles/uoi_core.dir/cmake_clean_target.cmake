file(REMOVE_RECURSE
  "libuoi_core.a"
)
