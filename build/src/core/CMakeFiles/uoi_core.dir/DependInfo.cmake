
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint.cpp" "src/core/CMakeFiles/uoi_core.dir/checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/uoi_core.dir/checkpoint.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/uoi_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/uoi_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/predict.cpp" "src/core/CMakeFiles/uoi_core.dir/predict.cpp.o" "gcc" "src/core/CMakeFiles/uoi_core.dir/predict.cpp.o.d"
  "/root/repo/src/core/standardize.cpp" "src/core/CMakeFiles/uoi_core.dir/standardize.cpp.o" "gcc" "src/core/CMakeFiles/uoi_core.dir/standardize.cpp.o.d"
  "/root/repo/src/core/support_set.cpp" "src/core/CMakeFiles/uoi_core.dir/support_set.cpp.o" "gcc" "src/core/CMakeFiles/uoi_core.dir/support_set.cpp.o.d"
  "/root/repo/src/core/uoi_elastic_net.cpp" "src/core/CMakeFiles/uoi_core.dir/uoi_elastic_net.cpp.o" "gcc" "src/core/CMakeFiles/uoi_core.dir/uoi_elastic_net.cpp.o.d"
  "/root/repo/src/core/uoi_elastic_net_distributed.cpp" "src/core/CMakeFiles/uoi_core.dir/uoi_elastic_net_distributed.cpp.o" "gcc" "src/core/CMakeFiles/uoi_core.dir/uoi_elastic_net_distributed.cpp.o.d"
  "/root/repo/src/core/uoi_lasso.cpp" "src/core/CMakeFiles/uoi_core.dir/uoi_lasso.cpp.o" "gcc" "src/core/CMakeFiles/uoi_core.dir/uoi_lasso.cpp.o.d"
  "/root/repo/src/core/uoi_lasso_distributed.cpp" "src/core/CMakeFiles/uoi_core.dir/uoi_lasso_distributed.cpp.o" "gcc" "src/core/CMakeFiles/uoi_core.dir/uoi_lasso_distributed.cpp.o.d"
  "/root/repo/src/core/uoi_logistic.cpp" "src/core/CMakeFiles/uoi_core.dir/uoi_logistic.cpp.o" "gcc" "src/core/CMakeFiles/uoi_core.dir/uoi_logistic.cpp.o.d"
  "/root/repo/src/core/uoi_logistic_distributed.cpp" "src/core/CMakeFiles/uoi_core.dir/uoi_logistic_distributed.cpp.o" "gcc" "src/core/CMakeFiles/uoi_core.dir/uoi_logistic_distributed.cpp.o.d"
  "/root/repo/src/core/uoi_poisson.cpp" "src/core/CMakeFiles/uoi_core.dir/uoi_poisson.cpp.o" "gcc" "src/core/CMakeFiles/uoi_core.dir/uoi_poisson.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solvers/CMakeFiles/uoi_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/simcluster/CMakeFiles/uoi_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/uoi_support.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/uoi_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
