file(REMOVE_RECURSE
  "CMakeFiles/uoi_core.dir/checkpoint.cpp.o"
  "CMakeFiles/uoi_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/uoi_core.dir/metrics.cpp.o"
  "CMakeFiles/uoi_core.dir/metrics.cpp.o.d"
  "CMakeFiles/uoi_core.dir/predict.cpp.o"
  "CMakeFiles/uoi_core.dir/predict.cpp.o.d"
  "CMakeFiles/uoi_core.dir/standardize.cpp.o"
  "CMakeFiles/uoi_core.dir/standardize.cpp.o.d"
  "CMakeFiles/uoi_core.dir/support_set.cpp.o"
  "CMakeFiles/uoi_core.dir/support_set.cpp.o.d"
  "CMakeFiles/uoi_core.dir/uoi_elastic_net.cpp.o"
  "CMakeFiles/uoi_core.dir/uoi_elastic_net.cpp.o.d"
  "CMakeFiles/uoi_core.dir/uoi_elastic_net_distributed.cpp.o"
  "CMakeFiles/uoi_core.dir/uoi_elastic_net_distributed.cpp.o.d"
  "CMakeFiles/uoi_core.dir/uoi_lasso.cpp.o"
  "CMakeFiles/uoi_core.dir/uoi_lasso.cpp.o.d"
  "CMakeFiles/uoi_core.dir/uoi_lasso_distributed.cpp.o"
  "CMakeFiles/uoi_core.dir/uoi_lasso_distributed.cpp.o.d"
  "CMakeFiles/uoi_core.dir/uoi_logistic.cpp.o"
  "CMakeFiles/uoi_core.dir/uoi_logistic.cpp.o.d"
  "CMakeFiles/uoi_core.dir/uoi_logistic_distributed.cpp.o"
  "CMakeFiles/uoi_core.dir/uoi_logistic_distributed.cpp.o.d"
  "CMakeFiles/uoi_core.dir/uoi_poisson.cpp.o"
  "CMakeFiles/uoi_core.dir/uoi_poisson.cpp.o.d"
  "libuoi_core.a"
  "libuoi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uoi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
