# Empty dependencies file for uoi_core.
# This may be replaced when dependencies are built.
