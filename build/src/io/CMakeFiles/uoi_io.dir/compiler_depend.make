# Empty compiler generated dependencies file for uoi_io.
# This may be replaced when dependencies are built.
