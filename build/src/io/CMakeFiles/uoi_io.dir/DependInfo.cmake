
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/csv.cpp" "src/io/CMakeFiles/uoi_io.dir/csv.cpp.o" "gcc" "src/io/CMakeFiles/uoi_io.dir/csv.cpp.o.d"
  "/root/repo/src/io/distribution.cpp" "src/io/CMakeFiles/uoi_io.dir/distribution.cpp.o" "gcc" "src/io/CMakeFiles/uoi_io.dir/distribution.cpp.o.d"
  "/root/repo/src/io/h5lite.cpp" "src/io/CMakeFiles/uoi_io.dir/h5lite.cpp.o" "gcc" "src/io/CMakeFiles/uoi_io.dir/h5lite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/uoi_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/simcluster/CMakeFiles/uoi_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/uoi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
