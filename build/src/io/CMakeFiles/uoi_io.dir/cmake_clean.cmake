file(REMOVE_RECURSE
  "CMakeFiles/uoi_io.dir/csv.cpp.o"
  "CMakeFiles/uoi_io.dir/csv.cpp.o.d"
  "CMakeFiles/uoi_io.dir/distribution.cpp.o"
  "CMakeFiles/uoi_io.dir/distribution.cpp.o.d"
  "CMakeFiles/uoi_io.dir/h5lite.cpp.o"
  "CMakeFiles/uoi_io.dir/h5lite.cpp.o.d"
  "libuoi_io.a"
  "libuoi_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uoi_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
