file(REMOVE_RECURSE
  "libuoi_io.a"
)
