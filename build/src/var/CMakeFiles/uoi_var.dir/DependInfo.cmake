
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/var/analysis.cpp" "src/var/CMakeFiles/uoi_var.dir/analysis.cpp.o" "gcc" "src/var/CMakeFiles/uoi_var.dir/analysis.cpp.o.d"
  "/root/repo/src/var/backtest.cpp" "src/var/CMakeFiles/uoi_var.dir/backtest.cpp.o" "gcc" "src/var/CMakeFiles/uoi_var.dir/backtest.cpp.o.d"
  "/root/repo/src/var/block_bootstrap.cpp" "src/var/CMakeFiles/uoi_var.dir/block_bootstrap.cpp.o" "gcc" "src/var/CMakeFiles/uoi_var.dir/block_bootstrap.cpp.o.d"
  "/root/repo/src/var/diagnostics.cpp" "src/var/CMakeFiles/uoi_var.dir/diagnostics.cpp.o" "gcc" "src/var/CMakeFiles/uoi_var.dir/diagnostics.cpp.o.d"
  "/root/repo/src/var/granger.cpp" "src/var/CMakeFiles/uoi_var.dir/granger.cpp.o" "gcc" "src/var/CMakeFiles/uoi_var.dir/granger.cpp.o.d"
  "/root/repo/src/var/granger_test.cpp" "src/var/CMakeFiles/uoi_var.dir/granger_test.cpp.o" "gcc" "src/var/CMakeFiles/uoi_var.dir/granger_test.cpp.o.d"
  "/root/repo/src/var/lag_matrix.cpp" "src/var/CMakeFiles/uoi_var.dir/lag_matrix.cpp.o" "gcc" "src/var/CMakeFiles/uoi_var.dir/lag_matrix.cpp.o.d"
  "/root/repo/src/var/model_io.cpp" "src/var/CMakeFiles/uoi_var.dir/model_io.cpp.o" "gcc" "src/var/CMakeFiles/uoi_var.dir/model_io.cpp.o.d"
  "/root/repo/src/var/order_selection.cpp" "src/var/CMakeFiles/uoi_var.dir/order_selection.cpp.o" "gcc" "src/var/CMakeFiles/uoi_var.dir/order_selection.cpp.o.d"
  "/root/repo/src/var/uoi_var.cpp" "src/var/CMakeFiles/uoi_var.dir/uoi_var.cpp.o" "gcc" "src/var/CMakeFiles/uoi_var.dir/uoi_var.cpp.o.d"
  "/root/repo/src/var/var_distributed.cpp" "src/var/CMakeFiles/uoi_var.dir/var_distributed.cpp.o" "gcc" "src/var/CMakeFiles/uoi_var.dir/var_distributed.cpp.o.d"
  "/root/repo/src/var/var_model.cpp" "src/var/CMakeFiles/uoi_var.dir/var_model.cpp.o" "gcc" "src/var/CMakeFiles/uoi_var.dir/var_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/uoi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/uoi_io.dir/DependInfo.cmake"
  "/root/repo/build/src/solvers/CMakeFiles/uoi_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/simcluster/CMakeFiles/uoi_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/uoi_support.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/uoi_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
