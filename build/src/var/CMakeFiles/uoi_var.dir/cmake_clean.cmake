file(REMOVE_RECURSE
  "CMakeFiles/uoi_var.dir/analysis.cpp.o"
  "CMakeFiles/uoi_var.dir/analysis.cpp.o.d"
  "CMakeFiles/uoi_var.dir/backtest.cpp.o"
  "CMakeFiles/uoi_var.dir/backtest.cpp.o.d"
  "CMakeFiles/uoi_var.dir/block_bootstrap.cpp.o"
  "CMakeFiles/uoi_var.dir/block_bootstrap.cpp.o.d"
  "CMakeFiles/uoi_var.dir/diagnostics.cpp.o"
  "CMakeFiles/uoi_var.dir/diagnostics.cpp.o.d"
  "CMakeFiles/uoi_var.dir/granger.cpp.o"
  "CMakeFiles/uoi_var.dir/granger.cpp.o.d"
  "CMakeFiles/uoi_var.dir/granger_test.cpp.o"
  "CMakeFiles/uoi_var.dir/granger_test.cpp.o.d"
  "CMakeFiles/uoi_var.dir/lag_matrix.cpp.o"
  "CMakeFiles/uoi_var.dir/lag_matrix.cpp.o.d"
  "CMakeFiles/uoi_var.dir/model_io.cpp.o"
  "CMakeFiles/uoi_var.dir/model_io.cpp.o.d"
  "CMakeFiles/uoi_var.dir/order_selection.cpp.o"
  "CMakeFiles/uoi_var.dir/order_selection.cpp.o.d"
  "CMakeFiles/uoi_var.dir/uoi_var.cpp.o"
  "CMakeFiles/uoi_var.dir/uoi_var.cpp.o.d"
  "CMakeFiles/uoi_var.dir/var_distributed.cpp.o"
  "CMakeFiles/uoi_var.dir/var_distributed.cpp.o.d"
  "CMakeFiles/uoi_var.dir/var_model.cpp.o"
  "CMakeFiles/uoi_var.dir/var_model.cpp.o.d"
  "libuoi_var.a"
  "libuoi_var.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uoi_var.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
