file(REMOVE_RECURSE
  "libuoi_var.a"
)
