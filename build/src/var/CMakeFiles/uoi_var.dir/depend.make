# Empty dependencies file for uoi_var.
# This may be replaced when dependencies are built.
