file(REMOVE_RECURSE
  "CMakeFiles/uoi_support.dir/error.cpp.o"
  "CMakeFiles/uoi_support.dir/error.cpp.o.d"
  "CMakeFiles/uoi_support.dir/format.cpp.o"
  "CMakeFiles/uoi_support.dir/format.cpp.o.d"
  "CMakeFiles/uoi_support.dir/logging.cpp.o"
  "CMakeFiles/uoi_support.dir/logging.cpp.o.d"
  "CMakeFiles/uoi_support.dir/rng.cpp.o"
  "CMakeFiles/uoi_support.dir/rng.cpp.o.d"
  "CMakeFiles/uoi_support.dir/table.cpp.o"
  "CMakeFiles/uoi_support.dir/table.cpp.o.d"
  "libuoi_support.a"
  "libuoi_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uoi_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
