# Empty dependencies file for uoi_support.
# This may be replaced when dependencies are built.
