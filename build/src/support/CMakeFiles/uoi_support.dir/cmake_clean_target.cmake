file(REMOVE_RECURSE
  "libuoi_support.a"
)
