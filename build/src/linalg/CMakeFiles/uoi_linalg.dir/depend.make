# Empty dependencies file for uoi_linalg.
# This may be replaced when dependencies are built.
