file(REMOVE_RECURSE
  "CMakeFiles/uoi_linalg.dir/blas.cpp.o"
  "CMakeFiles/uoi_linalg.dir/blas.cpp.o.d"
  "CMakeFiles/uoi_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/uoi_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/uoi_linalg.dir/kron.cpp.o"
  "CMakeFiles/uoi_linalg.dir/kron.cpp.o.d"
  "CMakeFiles/uoi_linalg.dir/matrix.cpp.o"
  "CMakeFiles/uoi_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/uoi_linalg.dir/qr.cpp.o"
  "CMakeFiles/uoi_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/uoi_linalg.dir/sparse.cpp.o"
  "CMakeFiles/uoi_linalg.dir/sparse.cpp.o.d"
  "libuoi_linalg.a"
  "libuoi_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uoi_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
