file(REMOVE_RECURSE
  "libuoi_linalg.a"
)
