
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simcluster/cluster.cpp" "src/simcluster/CMakeFiles/uoi_simcluster.dir/cluster.cpp.o" "gcc" "src/simcluster/CMakeFiles/uoi_simcluster.dir/cluster.cpp.o.d"
  "/root/repo/src/simcluster/comm.cpp" "src/simcluster/CMakeFiles/uoi_simcluster.dir/comm.cpp.o" "gcc" "src/simcluster/CMakeFiles/uoi_simcluster.dir/comm.cpp.o.d"
  "/root/repo/src/simcluster/nonblocking.cpp" "src/simcluster/CMakeFiles/uoi_simcluster.dir/nonblocking.cpp.o" "gcc" "src/simcluster/CMakeFiles/uoi_simcluster.dir/nonblocking.cpp.o.d"
  "/root/repo/src/simcluster/window.cpp" "src/simcluster/CMakeFiles/uoi_simcluster.dir/window.cpp.o" "gcc" "src/simcluster/CMakeFiles/uoi_simcluster.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/uoi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
