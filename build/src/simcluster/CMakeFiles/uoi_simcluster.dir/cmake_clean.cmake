file(REMOVE_RECURSE
  "CMakeFiles/uoi_simcluster.dir/cluster.cpp.o"
  "CMakeFiles/uoi_simcluster.dir/cluster.cpp.o.d"
  "CMakeFiles/uoi_simcluster.dir/comm.cpp.o"
  "CMakeFiles/uoi_simcluster.dir/comm.cpp.o.d"
  "CMakeFiles/uoi_simcluster.dir/nonblocking.cpp.o"
  "CMakeFiles/uoi_simcluster.dir/nonblocking.cpp.o.d"
  "CMakeFiles/uoi_simcluster.dir/window.cpp.o"
  "CMakeFiles/uoi_simcluster.dir/window.cpp.o.d"
  "libuoi_simcluster.a"
  "libuoi_simcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uoi_simcluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
