# Empty compiler generated dependencies file for uoi_simcluster.
# This may be replaced when dependencies are built.
