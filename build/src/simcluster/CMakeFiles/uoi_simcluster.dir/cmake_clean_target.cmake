file(REMOVE_RECURSE
  "libuoi_simcluster.a"
)
