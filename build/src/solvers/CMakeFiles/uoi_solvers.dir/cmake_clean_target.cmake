file(REMOVE_RECURSE
  "libuoi_solvers.a"
)
