
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solvers/admm_lasso.cpp" "src/solvers/CMakeFiles/uoi_solvers.dir/admm_lasso.cpp.o" "gcc" "src/solvers/CMakeFiles/uoi_solvers.dir/admm_lasso.cpp.o.d"
  "/root/repo/src/solvers/admm_lasso_sparse.cpp" "src/solvers/CMakeFiles/uoi_solvers.dir/admm_lasso_sparse.cpp.o" "gcc" "src/solvers/CMakeFiles/uoi_solvers.dir/admm_lasso_sparse.cpp.o.d"
  "/root/repo/src/solvers/cd_lasso.cpp" "src/solvers/CMakeFiles/uoi_solvers.dir/cd_lasso.cpp.o" "gcc" "src/solvers/CMakeFiles/uoi_solvers.dir/cd_lasso.cpp.o.d"
  "/root/repo/src/solvers/distributed_admm.cpp" "src/solvers/CMakeFiles/uoi_solvers.dir/distributed_admm.cpp.o" "gcc" "src/solvers/CMakeFiles/uoi_solvers.dir/distributed_admm.cpp.o.d"
  "/root/repo/src/solvers/distributed_logistic.cpp" "src/solvers/CMakeFiles/uoi_solvers.dir/distributed_logistic.cpp.o" "gcc" "src/solvers/CMakeFiles/uoi_solvers.dir/distributed_logistic.cpp.o.d"
  "/root/repo/src/solvers/lambda_grid.cpp" "src/solvers/CMakeFiles/uoi_solvers.dir/lambda_grid.cpp.o" "gcc" "src/solvers/CMakeFiles/uoi_solvers.dir/lambda_grid.cpp.o.d"
  "/root/repo/src/solvers/logistic.cpp" "src/solvers/CMakeFiles/uoi_solvers.dir/logistic.cpp.o" "gcc" "src/solvers/CMakeFiles/uoi_solvers.dir/logistic.cpp.o.d"
  "/root/repo/src/solvers/ols.cpp" "src/solvers/CMakeFiles/uoi_solvers.dir/ols.cpp.o" "gcc" "src/solvers/CMakeFiles/uoi_solvers.dir/ols.cpp.o.d"
  "/root/repo/src/solvers/poisson.cpp" "src/solvers/CMakeFiles/uoi_solvers.dir/poisson.cpp.o" "gcc" "src/solvers/CMakeFiles/uoi_solvers.dir/poisson.cpp.o.d"
  "/root/repo/src/solvers/ridge.cpp" "src/solvers/CMakeFiles/uoi_solvers.dir/ridge.cpp.o" "gcc" "src/solvers/CMakeFiles/uoi_solvers.dir/ridge.cpp.o.d"
  "/root/repo/src/solvers/ridge_system.cpp" "src/solvers/CMakeFiles/uoi_solvers.dir/ridge_system.cpp.o" "gcc" "src/solvers/CMakeFiles/uoi_solvers.dir/ridge_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/uoi_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/simcluster/CMakeFiles/uoi_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/uoi_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
