file(REMOVE_RECURSE
  "CMakeFiles/uoi_solvers.dir/admm_lasso.cpp.o"
  "CMakeFiles/uoi_solvers.dir/admm_lasso.cpp.o.d"
  "CMakeFiles/uoi_solvers.dir/admm_lasso_sparse.cpp.o"
  "CMakeFiles/uoi_solvers.dir/admm_lasso_sparse.cpp.o.d"
  "CMakeFiles/uoi_solvers.dir/cd_lasso.cpp.o"
  "CMakeFiles/uoi_solvers.dir/cd_lasso.cpp.o.d"
  "CMakeFiles/uoi_solvers.dir/distributed_admm.cpp.o"
  "CMakeFiles/uoi_solvers.dir/distributed_admm.cpp.o.d"
  "CMakeFiles/uoi_solvers.dir/distributed_logistic.cpp.o"
  "CMakeFiles/uoi_solvers.dir/distributed_logistic.cpp.o.d"
  "CMakeFiles/uoi_solvers.dir/lambda_grid.cpp.o"
  "CMakeFiles/uoi_solvers.dir/lambda_grid.cpp.o.d"
  "CMakeFiles/uoi_solvers.dir/logistic.cpp.o"
  "CMakeFiles/uoi_solvers.dir/logistic.cpp.o.d"
  "CMakeFiles/uoi_solvers.dir/ols.cpp.o"
  "CMakeFiles/uoi_solvers.dir/ols.cpp.o.d"
  "CMakeFiles/uoi_solvers.dir/poisson.cpp.o"
  "CMakeFiles/uoi_solvers.dir/poisson.cpp.o.d"
  "CMakeFiles/uoi_solvers.dir/ridge.cpp.o"
  "CMakeFiles/uoi_solvers.dir/ridge.cpp.o.d"
  "CMakeFiles/uoi_solvers.dir/ridge_system.cpp.o"
  "CMakeFiles/uoi_solvers.dir/ridge_system.cpp.o.d"
  "libuoi_solvers.a"
  "libuoi_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uoi_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
