# Empty dependencies file for uoi_solvers.
# This may be replaced when dependencies are built.
