file(REMOVE_RECURSE
  "libuoi_data.a"
)
