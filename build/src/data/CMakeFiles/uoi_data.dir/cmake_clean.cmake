file(REMOVE_RECURSE
  "CMakeFiles/uoi_data.dir/equity.cpp.o"
  "CMakeFiles/uoi_data.dir/equity.cpp.o.d"
  "CMakeFiles/uoi_data.dir/spikes.cpp.o"
  "CMakeFiles/uoi_data.dir/spikes.cpp.o.d"
  "CMakeFiles/uoi_data.dir/synthetic_regression.cpp.o"
  "CMakeFiles/uoi_data.dir/synthetic_regression.cpp.o.d"
  "CMakeFiles/uoi_data.dir/synthetic_var.cpp.o"
  "CMakeFiles/uoi_data.dir/synthetic_var.cpp.o.d"
  "libuoi_data.a"
  "libuoi_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uoi_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
