# Empty dependencies file for uoi_data.
# This may be replaced when dependencies are built.
