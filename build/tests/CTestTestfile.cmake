# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/simcluster_test[1]_include.cmake")
include("/root/repo/build/tests/solvers_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/var_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/perfmodel_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/qr_test[1]_include.cmake")
include("/root/repo/build/tests/forecast_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/p2p_test[1]_include.cmake")
include("/root/repo/build/tests/serialization_test[1]_include.cmake")
include("/root/repo/build/tests/elastic_net_test[1]_include.cmake")
include("/root/repo/build/tests/nonblocking_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/logistic_test[1]_include.cmake")
include("/root/repo/build/tests/standardize_test[1]_include.cmake")
include("/root/repo/build/tests/backtest_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/network_export_test[1]_include.cmake")
include("/root/repo/build/tests/statistical_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/poisson_test[1]_include.cmake")
