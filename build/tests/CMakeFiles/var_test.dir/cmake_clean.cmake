file(REMOVE_RECURSE
  "CMakeFiles/var_test.dir/var_test.cpp.o"
  "CMakeFiles/var_test.dir/var_test.cpp.o.d"
  "var_test"
  "var_test.pdb"
  "var_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/var_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
