# Empty dependencies file for var_test.
# This may be replaced when dependencies are built.
