file(REMOVE_RECURSE
  "CMakeFiles/network_export_test.dir/network_export_test.cpp.o"
  "CMakeFiles/network_export_test.dir/network_export_test.cpp.o.d"
  "network_export_test"
  "network_export_test.pdb"
  "network_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
