# Empty dependencies file for network_export_test.
# This may be replaced when dependencies are built.
