# Empty dependencies file for statistical_sweep_test.
# This may be replaced when dependencies are built.
