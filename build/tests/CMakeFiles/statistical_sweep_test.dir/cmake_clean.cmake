file(REMOVE_RECURSE
  "CMakeFiles/statistical_sweep_test.dir/statistical_sweep_test.cpp.o"
  "CMakeFiles/statistical_sweep_test.dir/statistical_sweep_test.cpp.o.d"
  "statistical_sweep_test"
  "statistical_sweep_test.pdb"
  "statistical_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statistical_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
