file(REMOVE_RECURSE
  "CMakeFiles/poisson_test.dir/poisson_test.cpp.o"
  "CMakeFiles/poisson_test.dir/poisson_test.cpp.o.d"
  "poisson_test"
  "poisson_test.pdb"
  "poisson_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
