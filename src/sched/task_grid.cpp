#include "sched/task_grid.hpp"

#include "support/error.hpp"
#include "support/rng.hpp"

namespace uoi::sched {

TaskGrid::TaskGrid(std::size_t n_bootstraps, std::size_t n_lambdas,
                   std::size_t n_chains, std::uint64_t master_seed)
    : n_bootstraps_(n_bootstraps),
      n_lambdas_(n_lambdas),
      n_chains_(n_chains),
      master_seed_(master_seed) {
  UOI_CHECK(n_chains_ >= 1, "task grid needs at least one lambda chain");
  UOI_CHECK(n_chains_ <= n_lambdas_ || n_lambdas_ == 0,
            "more lambda chains than lambdas");
}

std::vector<std::size_t> TaskGrid::chain_lambdas(std::size_t chain) const {
  UOI_CHECK(chain < n_chains_, "chain index out of range");
  std::vector<std::size_t> out;
  out.reserve(n_lambdas_ / n_chains_ + 1);
  for (std::size_t j = chain; j < n_lambdas_; j += n_chains_) {
    out.push_back(j);
  }
  return out;
}

std::uint64_t TaskGrid::cell_seed(std::size_t id) const {
  // Two SplitMix64 steps decorrelate (seed, id) pairs; the golden-ratio
  // stride keeps adjacent ids far apart in state space.
  std::uint64_t state =
      master_seed_ + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(id) + 1);
  (void)support::splitmix64(state);
  return support::splitmix64(state);
}

}  // namespace uoi::sched
