#include "sched/work_queue.hpp"

#include "support/error.hpp"

namespace uoi::sched {

TicketBoard::TicketBoard(sim::Comm& comm, int n_groups,
                         sim::RetryOptions retry)
    : comm_(&comm), retry_(retry), n_groups_(n_groups) {
  UOI_CHECK(n_groups_ >= 1, "ticket board needs at least one group");
  auto holder = std::make_shared<std::vector<double>>();
  if (comm.rank() == 0) {
    holder->assign(static_cast<std::size_t>(n_groups_), 0.0);
  }
  // Publish rank 0's allocation the same way the thread Window shares its
  // state: the encoded pointer travels by bcast and the closing barrier
  // keeps the source alive until every rank copied the shared_ptr. Across
  // processes the pointer is meaningless — every counter access already
  // goes through the window to rank 0, so non-zero ranks just keep their
  // (empty) local allocation. The bcast+barrier still run on both
  // backends, keeping FaultPlan collective-op indices aligned.
  std::size_t encoded = reinterpret_cast<std::size_t>(&holder);
  comm.bcast(std::span<std::size_t>(&encoded, 1), 0);
  if (comm.shared_address_space()) {
    const auto* source =
        reinterpret_cast<const std::shared_ptr<std::vector<double>>*>(encoded);
    counters_ = *source;
  } else {
    counters_ = std::move(holder);
  }
  comm.barrier();
  window_.emplace(comm, comm.rank() == 0
                            ? std::span<double>(*counters_)
                            : std::span<double>());
}

std::size_t TicketBoard::take_ticket(int group) {
  UOI_CHECK(group >= 0 && group < n_groups_, "ticket group out of range");
  double previous = 0.0;
  sim::retry_onesided(*comm_, retry_, [&] {
    previous = window_->fetch_add(0, static_cast<std::size_t>(group), 1.0);
  });
  return static_cast<std::size_t>(previous);
}

std::size_t TicketBoard::peek(int group) {
  UOI_CHECK(group >= 0 && group < n_groups_, "ticket group out of range");
  double value = 0.0;
  sim::retry_onesided(*comm_, retry_, [&] {
    value = window_->fetch_add(0, static_cast<std::size_t>(group), 0.0);
  });
  return static_cast<std::size_t>(value);
}

void TicketBoard::fence() { window_->fence(); }

}  // namespace uoi::sched
