#pragma once
// The (bootstrap x lambda-chain) task grid shared by every distributed UoI
// driver. A *cell* is one schedulable unit: bootstrap k paired with chain c,
// where chain c owns the lambda indices {j : j % n_chains == c} in grid
// order. Warm starts flow along a chain (cold at its head), so a cell is
// internally sequential but independent of every other cell — which is what
// makes placement a pure performance decision.
//
// Determinism contract: the chain structure is fixed once per driver entry
// (n_chains = the entry layout's P_lambda) and NEVER changes afterwards,
// even across fault recovery shrinks. Cell seeds are derived from the
// master seed and the cell id alone — never from the executing rank or
// group — so any placement, steal order, or replay executes bit-identical
// work (see DESIGN.md on cell-id-keyed seeds).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace uoi::sched {

struct TaskCell {
  std::size_t bootstrap = 0;  ///< resample index k
  std::size_t chain = 0;      ///< lambda-chain index c
};

class TaskGrid {
 public:
  TaskGrid(std::size_t n_bootstraps, std::size_t n_lambdas,
           std::size_t n_chains, std::uint64_t master_seed);

  [[nodiscard]] std::size_t n_bootstraps() const { return n_bootstraps_; }
  [[nodiscard]] std::size_t n_lambdas() const { return n_lambdas_; }
  [[nodiscard]] std::size_t n_chains() const { return n_chains_; }
  [[nodiscard]] std::size_t n_cells() const {
    return n_bootstraps_ * n_chains_;
  }

  [[nodiscard]] std::size_t cell_id(std::size_t bootstrap,
                                    std::size_t chain) const {
    return bootstrap * n_chains_ + chain;
  }
  [[nodiscard]] TaskCell cell(std::size_t id) const {
    return {id / n_chains_, id % n_chains_};
  }

  /// Lambda indices owned by chain c, ascending: {j : j % n_chains == c}.
  [[nodiscard]] std::vector<std::size_t> chain_lambdas(
      std::size_t chain) const;

  /// Deterministic per-cell seed: SplitMix64 over (master_seed, cell id).
  /// Keyed by cell id — not rank, not group — so any scheduler-internal
  /// randomness stays bit-identical under every placement.
  [[nodiscard]] std::uint64_t cell_seed(std::size_t id) const;

 private:
  std::size_t n_bootstraps_;
  std::size_t n_lambdas_;
  std::size_t n_chains_;
  std::uint64_t master_seed_;
};

}  // namespace uoi::sched
