#include "sched/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "perfmodel/lasso_cost.hpp"
#include "perfmodel/var_cost.hpp"
#include "support/error.hpp"

namespace uoi::sched {

std::vector<double> lambda_weights(std::span<const double> lambdas) {
  std::vector<double> weights(lambdas.size(), 1.0);
  if (lambdas.empty()) return weights;
  double lambda_max = 0.0;
  for (double l : lambdas) lambda_max = std::max(lambda_max, l);
  if (!(lambda_max > 0.0)) return weights;
  double sum = 0.0;
  for (std::size_t j = 0; j < lambdas.size(); ++j) {
    const double l = lambdas[j];
    weights[j] = (l > 0.0) ? 1.0 + std::log(lambda_max / l) : 1.0;
    sum += weights[j];
  }
  const double mean = sum / static_cast<double>(lambdas.size());
  if (mean > 0.0) {
    for (double& w : weights) w /= mean;
  }
  return weights;
}

std::vector<double> seeded_costs(const TaskGrid& grid,
                                 std::span<const double> lambdas,
                                 double pass_seconds_estimate) {
  const std::vector<double> weights = lambda_weights(lambdas);
  std::vector<double> costs(grid.n_cells(), 0.0);
  double total = 0.0;
  for (std::size_t c = 0; c < grid.n_chains(); ++c) {
    double chain_weight = 0.0;
    for (std::size_t j : grid.chain_lambdas(c)) {
      chain_weight += (j < weights.size()) ? weights[j] : 1.0;
    }
    chain_weight = std::max(chain_weight, 1e-12);
    for (std::size_t k = 0; k < grid.n_bootstraps(); ++k) {
      costs[grid.cell_id(k, c)] = chain_weight;
      total += chain_weight;
    }
  }
  if (total > 0.0 && pass_seconds_estimate > 0.0) {
    const double scale = pass_seconds_estimate / total;
    for (double& cost : costs) cost *= scale;
  }
  return costs;
}

double lasso_pass_seconds_estimate(std::size_t n_samples,
                                   std::size_t n_features, std::size_t b1,
                                   std::size_t b2, std::size_t q,
                                   std::size_t admm_iterations, int cores) {
  perf::UoiLassoWorkload workload;
  workload.n_features = std::max<std::uint64_t>(1, n_features);
  workload.data_bytes =
      sizeof(double) * std::max<std::uint64_t>(1, n_samples) *
      (workload.n_features + 1);
  workload.b1 = std::max<std::size_t>(1, b1);
  workload.b2 = std::max<std::size_t>(1, b2);
  workload.q = std::max<std::size_t>(1, q);
  workload.admm_iterations = std::max<std::size_t>(1, admm_iterations);
  const perf::UoiLassoCostModel model;
  return model.run(workload, static_cast<std::uint64_t>(std::max(1, cores)))
      .total();
}

double var_pass_seconds_estimate(std::size_t n_features,
                                 std::size_t n_samples, std::size_t order,
                                 std::size_t b1, std::size_t b2,
                                 std::size_t q, std::size_t admm_iterations,
                                 int cores) {
  perf::UoiVarWorkload workload;
  workload.n_features = std::max<std::uint64_t>(1, n_features);
  workload.n_samples =
      std::max<std::uint64_t>(workload.n_features + order + 1, n_samples);
  workload.order = std::max<std::size_t>(1, order);
  workload.b1 = std::max<std::size_t>(1, b1);
  workload.b2 = std::max<std::size_t>(1, b2);
  workload.q = std::max<std::size_t>(1, q);
  workload.admm_iterations = std::max<std::size_t>(1, admm_iterations);
  const perf::UoiVarCostModel model;
  return model.run(workload, static_cast<std::uint64_t>(std::max(1, cores)))
      .total();
}

Calibration calibrate(const TaskGrid& grid, std::span<const double> predicted,
                      std::span<const double> measured) {
  UOI_CHECK_DIMS(predicted.size() == grid.n_cells() &&
                     measured.size() == grid.n_cells(),
                 "calibration vectors must cover the whole grid");
  Calibration out;
  out.chain_multiplier.assign(grid.n_chains(), 1.0);

  double sum_predicted = 0.0;
  double sum_measured = 0.0;
  for (std::size_t id = 0; id < grid.n_cells(); ++id) {
    if (measured[id] > 0.0 && predicted[id] > 0.0) {
      sum_predicted += predicted[id];
      sum_measured += measured[id];
    }
  }
  if (sum_predicted > 0.0 && sum_measured > 0.0) {
    out.scale = sum_measured / sum_predicted;
  }

  double error_sum = 0.0;
  std::size_t error_n = 0;
  for (std::size_t id = 0; id < grid.n_cells(); ++id) {
    if (measured[id] > 0.0 && predicted[id] > 0.0) {
      error_sum +=
          std::abs(out.scale * predicted[id] - measured[id]) / measured[id];
      ++error_n;
    }
  }
  if (error_n > 0) {
    out.mean_abs_rel_error = error_sum / static_cast<double>(error_n);
  }

  for (std::size_t c = 0; c < grid.n_chains(); ++c) {
    double chain_predicted = 0.0;
    double chain_measured = 0.0;
    for (std::size_t k = 0; k < grid.n_bootstraps(); ++k) {
      const std::size_t id = grid.cell_id(k, c);
      if (measured[id] > 0.0 && predicted[id] > 0.0) {
        chain_predicted += predicted[id];
        chain_measured += measured[id];
      }
    }
    if (chain_predicted > 0.0 && chain_measured > 0.0) {
      const double multiplier =
          chain_measured / (out.scale * chain_predicted);
      out.chain_multiplier[c] = std::clamp(multiplier, 0.1, 10.0);
    }
  }
  return out;
}

void apply_calibration(const TaskGrid& grid, const Calibration& calibration,
                       std::span<double> costs) {
  UOI_CHECK_DIMS(costs.size() == grid.n_cells() &&
                     calibration.chain_multiplier.size() == grid.n_chains(),
                 "calibration does not match the grid");
  for (std::size_t id = 0; id < grid.n_cells(); ++id) {
    costs[id] *= calibration.chain_multiplier[grid.cell(id).chain];
  }
}

void apply_survivor_weights(const TaskGrid& grid,
                            std::span<const double> survivors_per_lambda,
                            std::span<double> costs) {
  UOI_CHECK_DIMS(costs.size() == grid.n_cells(),
                 "survivor weighting does not match the grid");
  std::vector<double> chain_weight(grid.n_chains(), 1.0);
  std::vector<bool> chain_measured(grid.n_chains(), false);
  double weight_sum = 0.0;
  std::size_t measured_chains = 0;
  for (std::size_t c = 0; c < grid.n_chains(); ++c) {
    double survivor_sum = 0.0;
    std::size_t measured = 0;
    for (std::size_t j : grid.chain_lambdas(c)) {
      if (j < survivors_per_lambda.size() && survivors_per_lambda[j] >= 0.0) {
        survivor_sum += survivors_per_lambda[j];
        ++measured;
      }
    }
    if (measured == 0) continue;
    chain_weight[c] = 1.0 + survivor_sum / static_cast<double>(measured);
    chain_measured[c] = true;
    weight_sum += chain_weight[c];
    ++measured_chains;
  }
  if (measured_chains == 0) return;
  const double mean =
      weight_sum / static_cast<double>(measured_chains);
  if (!(mean > 0.0)) return;
  for (std::size_t c = 0; c < grid.n_chains(); ++c) {
    if (!chain_measured[c]) continue;
    chain_weight[c] = std::clamp(chain_weight[c] / mean, 0.1, 10.0);
  }
  for (std::size_t id = 0; id < grid.n_cells(); ++id) {
    costs[id] *= chain_weight[grid.cell(id).chain];
  }
}

}  // namespace uoi::sched
