#include "sched/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "sched/work_queue.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace uoi::sched {

int group_width(int comm_size, int n_groups, int group) {
  UOI_CHECK(n_groups >= 1 && group >= 0 && group < n_groups,
            "group index out of range");
  const int base = comm_size / n_groups;
  const int extra = comm_size % n_groups;
  return base + (group < extra ? 1 : 0);
}

std::vector<int> group_widths(int comm_size, int n_groups) {
  std::vector<int> widths(static_cast<std::size_t>(n_groups), 0);
  for (int g = 0; g < n_groups; ++g) {
    widths[static_cast<std::size_t>(g)] = group_width(comm_size, n_groups, g);
  }
  return widths;
}

std::vector<std::vector<std::size_t>> plan_placement(
    SchedulePolicy policy, const TaskGrid& grid,
    std::span<const std::size_t> cells, std::span<const double> costs,
    const GroupInfo& info, std::span<const int> group_widths) {
  UOI_CHECK(policy != SchedulePolicy::kAuto,
            "resolve the schedule policy before planning placement");
  UOI_CHECK_DIMS(costs.size() == grid.n_cells(),
                 "cost vector must cover the whole grid");
  UOI_CHECK_DIMS(group_widths.size() ==
                     static_cast<std::size_t>(info.n_groups),
                 "one width per group required");
  std::vector<std::vector<std::size_t>> placement(
      static_cast<std::size_t>(info.n_groups));

  if (policy == SchedulePolicy::kStatic) {
    const bool entry_layout = info.n_groups == info.pb * info.pl;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const TaskCell cell = grid.cell(cells[i]);
      std::size_t group;
      if (entry_layout) {
        group = (cell.bootstrap % static_cast<std::size_t>(info.pb)) *
                    static_cast<std::size_t>(info.pl) +
                cell.chain % static_cast<std::size_t>(info.pl);
      } else {
        group = i % static_cast<std::size_t>(info.n_groups);
      }
      placement[group].push_back(cells[i]);
    }
    return placement;
  }

  // LPT greedy: heaviest cell first onto the group with the least load per
  // rank; ties break toward the lower cell id / group id so every rank
  // derives the identical plan.
  std::vector<std::size_t> order(cells.begin(), cells.end());
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              if (costs[a] != costs[b]) return costs[a] > costs[b];
              return a < b;
            });
  std::vector<double> load(static_cast<std::size_t>(info.n_groups), 0.0);
  for (std::size_t id : order) {
    int best = 0;
    double best_load = std::numeric_limits<double>::infinity();
    for (int g = 0; g < info.n_groups; ++g) {
      const double width = std::max(1, group_widths[static_cast<std::size_t>(g)]);
      const double projected =
          (load[static_cast<std::size_t>(g)] + costs[id]) / width;
      if (projected < best_load) {
        best_load = projected;
        best = g;
      }
    }
    load[static_cast<std::size_t>(best)] += costs[id];
    placement[static_cast<std::size_t>(best)].push_back(id);
  }
  if (policy == SchedulePolicy::kCostLpt) {
    // Ascending cell order keeps per-bootstrap gathers adjacent; execution
    // order within a group never affects results.
    for (auto& queue : placement) std::sort(queue.begin(), queue.end());
  }
  // work_steal keeps the LPT (heaviest-first) queue order so the expensive
  // cells start early and the tail is cheap to steal.
  return placement;
}

namespace {

enum RoundAction : std::size_t {
  kRun = 0,
  kDone = 1,
  kAbortFailed = 2,
  kAbortTransient = 3,
};

PassStats run_work_steal(sim::Comm& c, sim::Comm& task_comm,
                         const GroupInfo& info, const TaskGrid& grid,
                         const std::vector<std::vector<std::size_t>>& placement,
                         std::span<const double> costs,
                         const sim::RetryOptions& retry,
                         const std::function<void(const TaskCell&)>& execute) {
  PassStats stats;
  stats.cell_seconds.assign(grid.n_cells(), 0.0);
  const auto group = static_cast<std::size_t>(info.group);
  stats.queue_depth_max = placement[group].size();

  // Remaining-cost suffix sums per group queue: suffix[g][t] is the cost
  // still unclaimed once t tickets are gone — the victim-selection key.
  std::vector<std::vector<double>> suffix(placement.size());
  for (std::size_t g = 0; g < placement.size(); ++g) {
    const auto& queue = placement[g];
    suffix[g].assign(queue.size() + 1, 0.0);
    for (std::size_t t = queue.size(); t-- > 0;) {
      suffix[g][t] = suffix[g][t + 1] + costs[queue[t]];
    }
  }

  TicketBoard board(c, info.n_groups, retry);
  bool own_drained = false;
  for (;;) {
    std::size_t round[2] = {kDone, 0};
    if (info.group_rank == 0) {
      try {
        for (;;) {
          if (!own_drained) {
            const std::size_t ticket =
                board.take_ticket(info.group);
            if (ticket < placement[group].size()) {
              round[0] = kRun;
              round[1] = placement[group][ticket];
              break;
            }
            own_drained = true;
          }
          int victim = -1;
          double best_remaining = 0.0;
          for (int g = 0; g < info.n_groups; ++g) {
            if (g == info.group) continue;
            const auto gu = static_cast<std::size_t>(g);
            const std::size_t claimed =
                std::min(board.peek(g), placement[gu].size());
            const double remaining = suffix[gu][claimed];
            if (remaining > best_remaining) {
              best_remaining = remaining;
              victim = g;
            }
          }
          if (victim < 0) {
            round[0] = kDone;
            break;
          }
          ++stats.steals_attempted;
          const std::size_t ticket = board.take_ticket(victim);
          const auto vu = static_cast<std::size_t>(victim);
          if (ticket < placement[vu].size()) {
            ++stats.steals_succeeded;
            round[0] = kRun;
            round[1] = placement[vu][ticket];
            break;
          }
          // Lost the race for the victim's tail; re-select. Counters only
          // grow, so this terminates once every queue is drained.
        }
      } catch (const sim::RankFailedError&) {
        round[0] = kAbortFailed;
      } catch (const sim::TransientCommError&) {
        round[0] = kAbortTransient;
      }
    }
    task_comm.bcast(std::span<std::size_t>(round, 2), 0);
    if (round[0] == kRun) {
      support::Stopwatch watch;
      execute(grid.cell(round[1]));
      stats.cell_seconds[round[1]] = watch.seconds();
      ++stats.tasks_executed;
      // Live-telemetry progress: the agent counts the cell once for the
      // whole group (one coarse counter add per ADMM solve — negligible).
      if (info.group_rank == 0) {
        support::MetricsRegistry::instance().add(
            support::Tracer::thread_rank(), "progress.cells_done", 1.0);
      }
    } else if (round[0] == kDone) {
      break;
    } else if (round[0] == kAbortFailed) {
      // A peer death normally raises inside the round bcast itself (the
      // snapshot check) on every group member; probing is the backstop so
      // the group can never keep scheduling against a dead rank.
      task_comm.probe_failures();
      throw sim::RankFailedError("scheduler abort after a peer failure");
    } else {
      throw sim::TransientCommError(
          "work-queue retry budget exhausted; aborting the pass group-wide");
    }
  }
  // Keep every rank's board (and comm state) alive until all groups have
  // drained; the following driver-side merge collective needs everyone
  // anyway, so this barrier never adds a serialization point.
  board.fence();
  return stats;
}

}  // namespace

PassStats run_pass(sim::Comm& c, sim::Comm& task_comm, const GroupInfo& info,
                   SchedulePolicy policy, const TaskGrid& grid,
                   const std::vector<std::vector<std::size_t>>& placement,
                   std::span<const double> costs,
                   const sim::RetryOptions& retry,
                   const std::function<void(const TaskCell&)>& execute) {
  UOI_CHECK_DIMS(placement.size() == static_cast<std::size_t>(info.n_groups),
                 "placement must have one queue per group");
  if (policy == SchedulePolicy::kWorkSteal) {
    return run_work_steal(c, task_comm, info, grid, placement, costs, retry,
                          execute);
  }

  PassStats stats;
  stats.cell_seconds.assign(grid.n_cells(), 0.0);
  const auto& queue = placement[static_cast<std::size_t>(info.group)];
  stats.queue_depth_max = queue.size();
  for (std::size_t id : queue) {
    support::Stopwatch watch;
    execute(grid.cell(id));
    stats.cell_seconds[id] = watch.seconds();
    ++stats.tasks_executed;
    if (info.group_rank == 0) {
      support::MetricsRegistry::instance().add(
          support::Tracer::thread_rank(), "progress.cells_done", 1.0);
    }
  }
  return stats;
}

void accumulate_stats(PassStats& total, const PassStats& pass) {
  total.tasks_executed += pass.tasks_executed;
  total.steals_attempted += pass.steals_attempted;
  total.steals_succeeded += pass.steals_succeeded;
  total.queue_depth_max =
      std::max(total.queue_depth_max, pass.queue_depth_max);
  if (total.cell_seconds.size() < pass.cell_seconds.size()) {
    total.cell_seconds.resize(pass.cell_seconds.size(), 0.0);
  }
  for (std::size_t i = 0; i < pass.cell_seconds.size(); ++i) {
    total.cell_seconds[i] += pass.cell_seconds[i];
  }
}

void export_pass_metrics(int trace_rank, const GroupInfo& info,
                         SchedulePolicy policy, const PassStats& stats) {
  if (info.group_rank != 0) return;
  auto& metrics = support::MetricsRegistry::instance();
  metrics.set(trace_rank, "sched.policy",
              static_cast<double>(static_cast<int>(policy)));
  metrics.add(trace_rank, "sched.tasks_executed",
              static_cast<double>(stats.tasks_executed));
  metrics.add(trace_rank, "sched.steals_attempted",
              static_cast<double>(stats.steals_attempted));
  metrics.add(trace_rank, "sched.steals_succeeded",
              static_cast<double>(stats.steals_succeeded));
  const auto depth = static_cast<double>(stats.queue_depth_max);
  if (depth > metrics.value(trace_rank, "sched.queue_depth_max")) {
    metrics.set(trace_rank, "sched.queue_depth_max", depth);
  }
}

}  // namespace uoi::sched
