#include "sched/schedule_policy.hpp"

#include <cstdlib>

#include "support/log.hpp"

namespace uoi::sched {

SchedulePolicy resolve_policy(SchedulePolicy requested) {
  if (requested != SchedulePolicy::kAuto) return requested;
  const char* env = std::getenv("UOI_SCHED_POLICY");
  if (env == nullptr || *env == '\0') return SchedulePolicy::kCostLpt;
  SchedulePolicy out;
  if (policy_from_string(env, out) && out != SchedulePolicy::kAuto) {
    return out;
  }
  UOI_LOG_WARN.field("UOI_SCHED_POLICY", env)
      << "unknown schedule policy; falling back to cost_lpt";
  return SchedulePolicy::kCostLpt;
}

const char* to_string(SchedulePolicy policy) {
  switch (policy) {
    case SchedulePolicy::kAuto:
      return "auto";
    case SchedulePolicy::kStatic:
      return "static";
    case SchedulePolicy::kCostLpt:
      return "cost_lpt";
    case SchedulePolicy::kWorkSteal:
      return "work_steal";
  }
  return "unknown";
}

bool policy_from_string(std::string_view name, SchedulePolicy& out) {
  if (name == "auto") {
    out = SchedulePolicy::kAuto;
  } else if (name == "static") {
    out = SchedulePolicy::kStatic;
  } else if (name == "cost_lpt" || name == "lpt") {
    out = SchedulePolicy::kCostLpt;
  } else if (name == "work_steal" || name == "steal") {
    out = SchedulePolicy::kWorkSteal;
  } else {
    return false;
  }
  return true;
}

}  // namespace uoi::sched
