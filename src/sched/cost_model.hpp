#pragma once
// Per-cell cost estimates for the task grid.
//
// Initial placement is seeded analytically: the perfmodel cost models
// (perfmodel/lasso_cost, perfmodel/var_cost) give a pass-level seconds
// estimate, and a per-lambda weight captures the dominant within-grid skew —
// smaller lambda means a weaker prox contraction and therefore more
// ADMM iterations. Between passes the estimates are calibrated against the
// measured per-cell seconds of the previous pass (replicated across ranks
// with an Allreduce-max by the caller), yielding per-chain multipliers and
// the placement-vs-actual error surfaced through MetricsRegistry.
//
// Costs are inputs to placement only; they can be arbitrarily wrong without
// affecting results (placement never enters the numerics).

#include <cstddef>
#include <span>
#include <vector>

#include "sched/task_grid.hpp"

namespace uoi::sched {

/// Relative per-lambda iteration weight, normalized to mean 1:
/// w(lambda) ~ 1 + log(lambda_max / lambda). Degenerate grids (empty,
/// non-positive entries) fall back to uniform weights.
[[nodiscard]] std::vector<double> lambda_weights(
    std::span<const double> lambdas);

/// Seeds per-cell costs: cell (k, c) costs the sum of its chain's lambda
/// weights, scaled so the whole grid sums to `pass_seconds_estimate`.
[[nodiscard]] std::vector<double> seeded_costs(const TaskGrid& grid,
                                               std::span<const double> lambdas,
                                               double pass_seconds_estimate);

/// Analytic pass-seconds seed for the LASSO / elastic-net / logistic grids
/// from perfmodel/lasso_cost (selection + estimation share the same scale;
/// only relative cell weights matter for placement).
[[nodiscard]] double lasso_pass_seconds_estimate(
    std::size_t n_samples, std::size_t n_features, std::size_t b1,
    std::size_t b2, std::size_t q, std::size_t admm_iterations, int cores);

/// Analytic pass-seconds seed for the VAR grid from perfmodel/var_cost.
[[nodiscard]] double var_pass_seconds_estimate(
    std::size_t n_features, std::size_t n_samples, std::size_t order,
    std::size_t b1, std::size_t b2, std::size_t q,
    std::size_t admm_iterations, int cores);

/// Online refinement computed from one finished pass.
struct Calibration {
  double scale = 1.0;                    ///< sum(measured) / sum(predicted)
  double mean_abs_rel_error = 0.0;       ///< |scale*pred - meas| / meas, mean
  std::vector<double> chain_multiplier;  ///< per chain; 1.0 when unmeasured
};

/// Compares predicted costs against measured per-cell seconds (entries <= 0
/// mean "not measured"; callers replicate measurements across ranks first so
/// every rank computes the identical calibration).
[[nodiscard]] Calibration calibrate(const TaskGrid& grid,
                                    std::span<const double> predicted,
                                    std::span<const double> measured);

/// Applies the per-chain multipliers in place to a cost vector laid out on
/// `grid` (typically the next pass's seeded costs).
void apply_calibration(const TaskGrid& grid, const Calibration& calibration,
                       std::span<double> costs);

/// Reweights per-cell costs by the per-lambda survivor counts the screened
/// selection pass measured: the estimation pass solves problems restricted
/// to the selected columns, so a chain whose lambdas kept few survivors is
/// proportionally cheaper than the analytic seed (which assumes all p
/// columns) predicts. Each chain's weight is 1 + the mean survivor count
/// over its measured lambdas, normalized to mean 1 across measured chains
/// and clamped to [0.1, 10]; entries < 0 mean "not measured" and chains
/// with no measured lambda keep weight 1. Placement-only, like every cost
/// input.
void apply_survivor_weights(const TaskGrid& grid,
                            std::span<const double> survivors_per_lambda,
                            std::span<double> costs);

}  // namespace uoi::sched
