#pragma once
// Distributed work queue over simcluster one-sided windows: one monotonic
// ticket counter per task group, hosted on rank 0 of the enclosing
// communicator. A group's agent pops its own queue — and steals from
// victims — through the same fetch-and-add counter, so every ticket is
// claimed exactly once no matter how pops and steals interleave.
//
// All accesses (take_ticket and peek) go through Window::fetch_add, which
// serializes on the target's per-rank lock: the board is data-race free
// (covered by the TSan-labeled queue suite). The counter storage is shared
// between every rank's board instance, so a rank unwinding through fault
// recovery cannot free memory a surviving thief is still decrementing.

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "simcluster/comm.hpp"
#include "simcluster/fault.hpp"
#include "simcluster/window.hpp"

namespace uoi::sched {

class TicketBoard {
 public:
  /// Collective over `comm`: rank 0 hosts one zero-initialized counter per
  /// group. Transient one-sided faults are retried under `retry`.
  TicketBoard(sim::Comm& comm, int n_groups, sim::RetryOptions retry);

  [[nodiscard]] int n_groups() const { return n_groups_; }

  /// Atomically claims the next ticket from `group`'s counter and returns
  /// its index (monotonic from 0). The caller compares the index against
  /// the group's queue length; an index past the end means the queue is
  /// drained (the counter keeps counting — that is harmless).
  std::size_t take_ticket(int group);

  /// Current counter value without claiming (a zero-delta fetch_add, so the
  /// read takes the same lock as concurrent claims).
  std::size_t peek(int group);

  /// Barrier over the enclosing communicator. Call once per pass after the
  /// drain loop so no rank tears down comm-level state while a peer is
  /// still polling.
  void fence();

 private:
  sim::Comm* comm_;
  sim::RetryOptions retry_;
  int n_groups_;
  /// Host allocation, shared by every rank's board (see header comment).
  std::shared_ptr<std::vector<double>> counters_;
  std::optional<sim::Window> window_;
};

}  // namespace uoi::sched
