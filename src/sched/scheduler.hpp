#pragma once
// Pass-level orchestration: deterministic placement of grid cells onto task
// groups plus the execution loop for each SchedulePolicy.
//
// Determinism contract (docs/ARCHITECTURE.md §8): the `execute` callback
// does the same work for a cell no matter which group runs it, so placement
// and steal interleavings are pure performance decisions. run_pass only
// decides *where* and *when* a cell runs — never *what* it computes.
//
// Group protocol under work_steal: the group's agent (group_rank 0) talks
// to the ticket board and broadcasts one {action, cell} decision per round
// over the group communicator, keeping the whole group in lockstep. Fault
// detection therefore stays collective: a peer death surfaces at the round
// broadcast (snapshot check) on every group member simultaneously, and the
// recovery path in the drivers unwinds exactly as it does for the static
// schedule.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "sched/schedule_policy.hpp"
#include "sched/task_grid.hpp"
#include "simcluster/comm.hpp"
#include "simcluster/fault.hpp"

namespace uoi::sched {

/// Rank count of group `group` under the contiguous remainder-tolerant
/// split of `comm_size` ranks into `n_groups` groups (the first
/// comm_size % n_groups groups are one rank wider).
[[nodiscard]] int group_width(int comm_size, int n_groups, int group);

/// All group widths at once, for plan_placement.
[[nodiscard]] std::vector<int> group_widths(int comm_size, int n_groups);

/// This rank's position in the group structure, plus the entry-layout
/// (P_B, P_lambda) factors the static map is defined against.
struct GroupInfo {
  int n_groups = 1;
  int group = 0;       ///< this rank's group id
  int group_rank = 0;  ///< rank within the group; 0 is the agent
  int pb = 1;          ///< entry-layout bootstrap groups
  int pl = 1;          ///< entry-layout lambda groups
};

struct PassStats {
  std::size_t tasks_executed = 0;    ///< cells this rank's group ran
  std::size_t steals_attempted = 0;  ///< agent only; victim tickets taken
  std::size_t steals_succeeded = 0;  ///< agent only; tickets that held work
  std::size_t queue_depth_max = 0;   ///< this group's initial queue depth
  /// Per-cell wall seconds measured on this rank (full grid size; > 0 only
  /// for cells this group executed). Feed through Allreduce-max and
  /// cost_model::calibrate to refine the next pass's placement.
  std::vector<double> cell_seconds;
};

/// Deterministic placement of `cells` (cell ids, ascending) onto groups.
/// static: the historical (k % P_B, c % P_lambda) ownership map when
/// n_groups still equals P_B * P_lambda, round-robin otherwise (post-shrink
/// layouts); cost_lpt / work_steal: longest-processing-time greedy onto the
/// group with the least load per rank (`group_widths` weights uneven
/// groups). Every rank computes the identical placement from replicated
/// inputs — no communication.
[[nodiscard]] std::vector<std::vector<std::size_t>> plan_placement(
    SchedulePolicy policy, const TaskGrid& grid,
    std::span<const std::size_t> cells, std::span<const double> costs,
    const GroupInfo& info, std::span<const int> group_widths);

/// Executes one pass (or one checkpoint epoch) of a precomputed placement
/// across all groups. Plan the placement ONCE over every pending cell of
/// the pass and filter it per epoch — planning each epoch separately would
/// let LPT collapse small epochs onto group 0. Collective over `c`;
/// `execute` may run collectives on `task_comm`. `policy` must already be
/// resolved (not kAuto).
PassStats run_pass(sim::Comm& c, sim::Comm& task_comm, const GroupInfo& info,
                   SchedulePolicy policy, const TaskGrid& grid,
                   const std::vector<std::vector<std::size_t>>& placement,
                   std::span<const double> costs,
                   const sim::RetryOptions& retry,
                   const std::function<void(const TaskCell&)>& execute);

/// Folds a pass's counters into `total` (cell_seconds merged element-wise).
void accumulate_stats(PassStats& total, const PassStats& pass);

/// Publishes the scheduler counters for this rank into MetricsRegistry
/// (sched.policy, sched.tasks_executed, sched.steals_attempted,
/// sched.steals_succeeded, sched.queue_depth_max). Counters are recorded on
/// agent ranks only so job-wide sums do not multiply by group width.
void export_pass_metrics(int trace_rank, const GroupInfo& info,
                         SchedulePolicy policy, const PassStats& stats);

}  // namespace uoi::sched
