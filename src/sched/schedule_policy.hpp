#pragma once
// Schedule policy selection for the (bootstrap x lambda-chain) task grid.
//
// Three policies, all producing bit-identical models on identical seeds
// (placement never enters the numerics — see docs/ARCHITECTURE.md §8):
//   static     — the historical fixed (b_group, l_group) ownership map;
//                kept for A/B comparison and as the zero-overhead baseline.
//   cost_lpt   — deterministic longest-processing-time greedy placement
//                driven by the perfmodel-seeded (and, between passes,
//                calibrated) per-cell cost estimates. The default.
//   work_steal — cost_lpt initial placement plus intra-pass rebalancing
//                through a one-sided ticket queue with victim selection.

#include <string_view>

namespace uoi::sched {

enum class SchedulePolicy {
  kAuto = 0,   ///< resolve from $UOI_SCHED_POLICY, falling back to cost_lpt
  kStatic,
  kCostLpt,
  kWorkSteal,
};

/// Resolves kAuto against the UOI_SCHED_POLICY environment variable
/// ("static", "cost_lpt", "work_steal"); unknown values log a warning and
/// fall back to cost_lpt. Non-auto requests pass through unchanged.
[[nodiscard]] SchedulePolicy resolve_policy(SchedulePolicy requested);

/// "static" / "cost_lpt" / "work_steal" / "auto".
[[nodiscard]] const char* to_string(SchedulePolicy policy);

/// Inverse of to_string (also accepts "auto"); returns false and leaves
/// `out` untouched on unknown names.
[[nodiscard]] bool policy_from_string(std::string_view name,
                                      SchedulePolicy& out);

}  // namespace uoi::sched
