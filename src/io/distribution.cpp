#include "io/distribution.hpp"

#include <algorithm>

#include "simcluster/window.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

namespace uoi::io {

using uoi::linalg::Matrix;
using uoi::sim::Comm;
using uoi::sim::Window;

namespace {

struct Range {
  std::size_t begin;
  std::size_t end;
  [[nodiscard]] std::size_t size() const { return end - begin; }
};

Range even_slice(std::size_t total, int parts, int index) {
  const auto k = static_cast<std::size_t>(parts);
  const auto i = static_cast<std::size_t>(index);
  return {total * i / k, total * (i + 1) / k};
}

/// Rank owning global position `pos` under even slicing. O(P) worst case
/// but loops at most twice in practice thanks to the initial guess.
int owner_of(std::size_t pos, std::size_t total, int parts) {
  int guess = static_cast<int>(pos * static_cast<std::size_t>(parts) / total);
  guess = std::min(guess, parts - 1);
  while (pos < even_slice(total, parts, guess).begin) --guess;
  while (pos >= even_slice(total, parts, guess).end) ++guess;
  return guess;
}

}  // namespace

LocalRows conventional_distribute(Comm& comm, const std::string& base,
                                  DistributionTiming* timing,
                                  const uoi::sim::RetryOptions& retry) {
  support::Stopwatch watch;
  DatasetInfo info;
  Matrix full;
  if (comm.rank() == 0) {
    // The conventional pattern: one reader, chunk-at-a-time, reopening the
    // file for each chunk (serial HDF5 hyperslab reads in a loop).
    DatasetReader reader(base);
    info = reader.info();
    full.resize(info.rows, info.cols);
    Matrix chunk;
    for (std::uint64_t c = 0; c < info.n_chunks(); ++c) {
      reader.read_chunk_reopening(c, chunk);
      const std::uint64_t row_begin = c * info.chunk_rows;
      for (std::size_t r = 0; r < chunk.rows(); ++r) {
        const auto src = chunk.row(r);
        std::copy(src.begin(), src.end(), full.row(row_begin + r).begin());
      }
    }
  }
  std::size_t dims[2] = {full.rows(), full.cols()};
  comm.bcast(std::span<std::size_t>(dims, 2), 0);
  const std::size_t n = dims[0];
  const std::size_t cols = dims[1];
  const double read_seconds = watch.seconds();

  // Distribute: rank 0 exposes the full matrix; everyone pulls its block.
  watch.reset();
  Window window(comm, {full.data(), full.size()});
  const Range mine = even_slice(n, comm.size(), comm.rank());
  LocalRows out;
  out.rows.resize(mine.size(), cols);
  out.global_indices.resize(mine.size());
  window.fence();
  if (!out.rows.empty()) {
    uoi::sim::retry_onesided(comm, retry, [&] {
      window.get(0, mine.begin * cols, {out.rows.data(), out.rows.size()});
    });
  }
  window.fence();
  for (std::size_t i = 0; i < mine.size(); ++i) {
    out.global_indices[i] = mine.begin + i;
  }
  if (timing != nullptr) {
    timing->read_seconds = read_seconds;
    timing->distribute_seconds = watch.seconds();
  }
  return out;
}

LocalRows randomized_distribute(Comm& comm, const std::string& base,
                                std::uint64_t seed,
                                DistributionTiming* timing,
                                const uoi::sim::RetryOptions& retry) {
  // ---- T1: parallel contiguous hyperslab reads ----
  support::Stopwatch watch;
  DatasetReader reader(base);
  const auto n = static_cast<std::size_t>(reader.info().rows);
  const auto cols = static_cast<std::size_t>(reader.info().cols);
  const Range slab = even_slice(n, comm.size(), comm.rank());
  Matrix slab_rows;
  reader.read_rows(slab.begin, slab.size(), slab_rows);
  const double read_seconds = watch.seconds();

  // ---- T2: one-sided random redistribution ----
  watch.reset();
  auto rng = uoi::support::Xoshiro256::for_task(seed, 0x7e1e2ULL);
  const auto perm = uoi::support::random_permutation(rng, n);

  const Range mine = slab;  // destination counts mirror the source slicing
  LocalRows out;
  out.rows.resize(mine.size(), cols);
  out.global_indices.resize(mine.size());
  Window window(comm, {out.rows.data(), out.rows.size()});
  window.fence();
  for (std::size_t i = 0; i < slab.size(); ++i) {
    const std::size_t g = slab.begin + i;     // global source row
    const std::size_t dest_pos = perm[g];     // shuffled position
    const int dest = owner_of(dest_pos, n, comm.size());
    const Range dest_range = even_slice(n, comm.size(), dest);
    uoi::sim::retry_onesided(comm, retry, [&] {
      window.put(dest, (dest_pos - dest_range.begin) * cols, slab_rows.row(i));
    });
  }
  window.fence();
  // Invert the permutation to label what we received.
  for (std::size_t g = 0; g < n; ++g) {
    const std::size_t pos = perm[g];
    if (pos >= mine.begin && pos < mine.end) {
      out.global_indices[pos - mine.begin] = g;
    }
  }
  if (timing != nullptr) {
    timing->read_seconds = read_seconds;
    timing->distribute_seconds = watch.seconds();
  }
  return out;
}

LocalRows reshuffle(Comm& comm, const LocalRows& held, std::size_t total_rows,
                    std::uint64_t seed, const uoi::sim::RetryOptions& retry) {
  UOI_CHECK_DIMS(held.rows.rows() == held.global_indices.size(),
                 "reshuffle: inconsistent LocalRows");
  const std::size_t cols = held.rows.cols();
  auto rng = uoi::support::Xoshiro256::for_task(seed, 0x5bffe1ULL);
  const auto perm = uoi::support::random_permutation(rng, total_rows);

  const Range mine = even_slice(total_rows, comm.size(), comm.rank());
  LocalRows out;
  out.rows.resize(mine.size(), cols);
  out.global_indices.resize(mine.size());
  Window window(comm, {out.rows.data(), out.rows.size()});
  window.fence();
  for (std::size_t i = 0; i < held.global_indices.size(); ++i) {
    const std::size_t g = held.global_indices[i];
    UOI_CHECK_DIMS(g < total_rows, "reshuffle: global index out of range");
    const std::size_t dest_pos = perm[g];
    const int dest = owner_of(dest_pos, total_rows, comm.size());
    const Range dest_range = even_slice(total_rows, comm.size(), dest);
    uoi::sim::retry_onesided(comm, retry, [&] {
      window.put(dest, (dest_pos - dest_range.begin) * cols, held.rows.row(i));
    });
  }
  window.fence();
  for (std::size_t g = 0; g < total_rows; ++g) {
    const std::size_t pos = perm[g];
    if (pos >= mine.begin && pos < mine.end) {
      out.global_indices[pos - mine.begin] = g;
    }
  }
  return out;
}

}  // namespace uoi::io
