#include "io/h5lite.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <memory>

#include "support/error.hpp"
#include "support/trace.hpp"

namespace uoi::io {

namespace {

constexpr std::uint64_t kMagic = 0x4c35485f494f55ULL;  // "UOI_H5L"
constexpr std::uint64_t kVersion = 1;

struct Header {
  std::uint64_t magic;
  std::uint64_t version;
  std::uint64_t rows;
  std::uint64_t cols;
  std::uint64_t chunk_rows;
  std::uint64_t n_stripes;
};
static_assert(sizeof(Header) == 48);

Header make_header(const DatasetInfo& info) {
  return {kMagic, kVersion, info.rows, info.cols, info.chunk_rows,
          info.n_stripes};
}

DatasetInfo parse_header(const Header& h, const std::string& path) {
  if (h.magic != kMagic) {
    throw uoi::support::IoError(path + ": not an H5-lite dataset");
  }
  if (h.version != kVersion) {
    throw uoi::support::IoError(path + ": unsupported H5-lite version");
  }
  return {h.rows, h.cols, h.chunk_rows, h.n_stripes};
}

}  // namespace

std::string stripe_path(const std::string& base, std::uint64_t k) {
  return base + ".stripe" + std::to_string(k);
}

void write_dataset(const std::string& base, uoi::linalg::ConstMatrixView data,
                   std::uint64_t chunk_rows, std::uint64_t n_stripes) {
  uoi::support::TraceScope span("h5lite-write",
                                uoi::support::TraceCategory::kDataIo);
  UOI_CHECK(chunk_rows >= 1, "chunk_rows must be >= 1");
  UOI_CHECK(n_stripes >= 1, "n_stripes must be >= 1");
  DatasetInfo info{data.rows(), data.cols(), chunk_rows, n_stripes};
  const Header header = make_header(info);

  std::vector<std::ofstream> stripes;
  stripes.reserve(n_stripes);
  for (std::uint64_t k = 0; k < n_stripes; ++k) {
    auto& f = stripes.emplace_back(stripe_path(base, k),
                                   std::ios::binary | std::ios::trunc);
    if (!f) {
      throw uoi::support::IoError("cannot open for writing: " +
                                  stripe_path(base, k));
    }
    f.write(reinterpret_cast<const char*>(&header), sizeof(header));
  }

  for (std::uint64_t c = 0; c < info.n_chunks(); ++c) {
    auto& f = stripes[c % n_stripes];
    const std::uint64_t row_begin = c * chunk_rows;
    const std::uint64_t row_end = std::min(info.rows, row_begin + chunk_rows);
    for (std::uint64_t r = row_begin; r < row_end; ++r) {
      const auto row = data.row(r);
      f.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size_bytes()));
    }
  }
  for (auto& f : stripes) {
    if (!f) throw uoi::support::IoError("short write to " + base);
  }
}

DatasetInfo read_info(const std::string& base) {
  uoi::support::TraceScope span("h5lite-read-info",
                                uoi::support::TraceCategory::kDataIo);
  std::ifstream f(stripe_path(base, 0), std::ios::binary);
  if (!f) {
    throw uoi::support::IoError("cannot open dataset: " + stripe_path(base, 0));
  }
  Header header{};
  f.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!f) throw uoi::support::IoError("truncated header in " + base);
  return parse_header(header, base);
}

DatasetReader::DatasetReader(std::string base) : base_(std::move(base)) {
  info_ = read_info(base_);
}

std::uint64_t DatasetReader::chunk_row_count(std::uint64_t chunk) const {
  UOI_CHECK(chunk < info_.n_chunks(), "chunk index out of range");
  const std::uint64_t begin = chunk * info_.chunk_rows;
  return std::min(info_.rows, begin + info_.chunk_rows) - begin;
}

std::uint64_t DatasetReader::chunk_offset_in_stripe(
    std::uint64_t chunk) const {
  // Payload offset = header + rows of all earlier chunks in this stripe.
  std::uint64_t rows_before = 0;
  for (std::uint64_t c = chunk % info_.n_stripes; c < chunk;
       c += info_.n_stripes) {
    rows_before += chunk_row_count(c);
  }
  return sizeof(Header) + rows_before * info_.cols * sizeof(double);
}

void DatasetReader::read_chunk_from(std::ifstream& file, std::uint64_t chunk,
                                    uoi::linalg::Matrix& out) const {
  const std::uint64_t rows = chunk_row_count(chunk);
  out.resize(rows, info_.cols);
  file.seekg(static_cast<std::streamoff>(chunk_offset_in_stripe(chunk)));
  file.read(reinterpret_cast<char*>(out.data()),
            static_cast<std::streamsize>(rows * info_.cols * sizeof(double)));
  if (!file) {
    throw uoi::support::IoError("short read of chunk " +
                                std::to_string(chunk) + " in " + base_);
  }
}

void DatasetReader::read_chunk(std::uint64_t chunk,
                               uoi::linalg::Matrix& out) const {
  uoi::support::TraceScope span("h5lite-read-chunk",
                                uoi::support::TraceCategory::kDataIo);
  std::ifstream f(stripe_path(base_, chunk % info_.n_stripes),
                  std::ios::binary);
  if (!f) throw uoi::support::IoError("cannot open stripe for " + base_);
  read_chunk_from(f, chunk, out);
}

void DatasetReader::read_chunk_reopening(std::uint64_t chunk,
                                         uoi::linalg::Matrix& out) const {
  // Deliberately identical to read_chunk: the reopening *is* the point —
  // kept as a separate named entry so the conventional-distribution path
  // documents its access pattern at the call site.
  read_chunk(chunk, out);
}

void DatasetReader::read_rows(std::uint64_t row_begin, std::uint64_t n_rows,
                              uoi::linalg::Matrix& out) const {
  uoi::support::TraceScope span("h5lite-read-rows",
                                uoi::support::TraceCategory::kDataIo);
  UOI_CHECK(row_begin + n_rows <= info_.rows, "hyperslab out of range");
  out.resize(n_rows, info_.cols);
  if (n_rows == 0) return;

  // Open each needed stripe once; copy the overlapping part of each chunk.
  std::vector<std::unique_ptr<std::ifstream>> stripes(info_.n_stripes);
  uoi::linalg::Matrix chunk_data;
  const std::uint64_t first_chunk = row_begin / info_.chunk_rows;
  const std::uint64_t last_chunk = (row_begin + n_rows - 1) / info_.chunk_rows;
  for (std::uint64_t c = first_chunk; c <= last_chunk; ++c) {
    const std::uint64_t stripe = c % info_.n_stripes;
    if (!stripes[stripe]) {
      stripes[stripe] = std::make_unique<std::ifstream>(
          stripe_path(base_, stripe), std::ios::binary);
      if (!*stripes[stripe]) {
        throw uoi::support::IoError("cannot open stripe for " + base_);
      }
    }
    read_chunk_from(*stripes[stripe], c, chunk_data);
    const std::uint64_t chunk_begin = c * info_.chunk_rows;
    const std::uint64_t copy_begin = std::max(chunk_begin, row_begin);
    const std::uint64_t copy_end =
        std::min(chunk_begin + chunk_data.rows(), row_begin + n_rows);
    for (std::uint64_t r = copy_begin; r < copy_end; ++r) {
      const auto src = chunk_data.row(r - chunk_begin);
      std::copy(src.begin(), src.end(), out.row(r - row_begin).begin());
    }
  }
}

}  // namespace uoi::io
