#pragma once
// Minimal CSV reader/writer for numeric matrices — the interchange format
// the command-line tool and the examples use for real-world data
// (e.g. a downloaded table of closing prices).
//
// Dialect: one row per line; fields separated by commas (with optional
// surrounding whitespace) or plain whitespace; '#'-prefixed lines are
// comments; an optional first header line of non-numeric labels is
// detected, skipped, and returned.

#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace uoi::io {

struct CsvData {
  uoi::linalg::Matrix values;
  std::vector<std::string> column_labels;  ///< empty when no header
};

/// Parses CSV text. Throws uoi::support::IoError on ragged rows or
/// unparsable fields.
[[nodiscard]] CsvData parse_csv(const std::string& text);

/// Reads and parses a CSV file.
[[nodiscard]] CsvData read_csv(const std::string& path);

/// Serializes a matrix (with an optional header row) as CSV text.
[[nodiscard]] std::string to_csv(uoi::linalg::ConstMatrixView values,
                                 const std::vector<std::string>& labels = {});

/// Writes a matrix to a CSV file.
void write_csv(const std::string& path, uoi::linalg::ConstMatrixView values,
               const std::vector<std::string>& labels = {});

}  // namespace uoi::io
