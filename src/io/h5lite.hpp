#pragma once
// "H5-lite": a chunked, stripable binary container for 2-D double datasets.
//
// Stands in for HDF5-on-Lustre in the paper's data pipeline (DESIGN.md §2):
//   * datasets are stored row-major in fixed-size row chunks;
//   * a dataset may be striped over K files (emulating Lustre OSTs — the
//     paper stripes over 160 OSTs to make TB-scale reads take seconds);
//   * readers address arbitrary contiguous row ranges ("hyperslabs");
//   * the conventional reader reopens the file for every chunk, exactly the
//     behaviour Table II blames for 10^4-second read times.
//
// Layout of stripe k of K: a 48-byte header (magic, version, rows, cols,
// chunk_rows, n_stripes) followed by the payload of every chunk c with
// c % K == k, in ascending c.

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace uoi::io {

struct DatasetInfo {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t chunk_rows = 0;
  std::uint64_t n_stripes = 1;

  [[nodiscard]] std::uint64_t n_chunks() const {
    return chunk_rows == 0 ? 0 : (rows + chunk_rows - 1) / chunk_rows;
  }
  [[nodiscard]] std::uint64_t bytes() const {
    return rows * cols * sizeof(double);
  }
};

/// Stripe file path for stripe `k` of dataset `base`.
[[nodiscard]] std::string stripe_path(const std::string& base, std::uint64_t k);

/// Writes `data` as a dataset at `base` (one file per stripe).
void write_dataset(const std::string& base, uoi::linalg::ConstMatrixView data,
                   std::uint64_t chunk_rows, std::uint64_t n_stripes = 1);

/// Reads only the header of stripe 0.
[[nodiscard]] DatasetInfo read_info(const std::string& base);

/// Random-access reader. Thread-compatible: distinct Reader instances may
/// read the same dataset concurrently (each owns its file handles).
class DatasetReader {
 public:
  explicit DatasetReader(std::string base);

  [[nodiscard]] const DatasetInfo& info() const noexcept { return info_; }

  /// Hyperslab: rows [row_begin, row_begin + n_rows) into `out`.
  void read_rows(std::uint64_t row_begin, std::uint64_t n_rows,
                 uoi::linalg::Matrix& out) const;

  /// Reads one whole chunk (the last chunk may be short).
  void read_chunk(std::uint64_t chunk, uoi::linalg::Matrix& out) const;

  /// As read_chunk, but opens and closes the stripe file per call — the
  /// conventional serial-HDF5 access pattern Table II measures.
  void read_chunk_reopening(std::uint64_t chunk,
                            uoi::linalg::Matrix& out) const;

  /// Number of rows in `chunk`.
  [[nodiscard]] std::uint64_t chunk_row_count(std::uint64_t chunk) const;

 private:
  /// Byte offset of `chunk`'s payload within its stripe file.
  [[nodiscard]] std::uint64_t chunk_offset_in_stripe(std::uint64_t chunk) const;
  void read_chunk_from(std::ifstream& file, std::uint64_t chunk,
                       uoi::linalg::Matrix& out) const;

  std::string base_;
  DatasetInfo info_;
};

}  // namespace uoi::io
