#include "io/csv.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/trace.hpp"

namespace uoi::io {

namespace {

/// Splits one line into trimmed fields (commas, or whitespace when the
/// line has no comma).
std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  const bool comma = line.find(',') != std::string::npos;
  std::string current;
  auto flush = [&] {
    // Trim.
    std::size_t begin = 0, end = current.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(
                              current[begin]))) {
      ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(
                              current[end - 1]))) {
      --end;
    }
    fields.push_back(current.substr(begin, end - begin));
    current.clear();
  };
  for (const char c : line) {
    if ((comma && c == ',') ||
        (!comma && std::isspace(static_cast<unsigned char>(c)))) {
      if (comma || !current.empty()) flush();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty() || comma) flush();
  // Drop a trailing empty field from whitespace-split lines.
  while (!comma && !fields.empty() && fields.back().empty()) {
    fields.pop_back();
  }
  return fields;
}

bool parse_double(const std::string& field, double& out) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

CsvData parse_csv(const std::string& text) {
  CsvData out;
  std::vector<std::vector<double>> rows;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_number = 0;
  bool header_checked = false;
  std::size_t width = 0;

  while (std::getline(stream, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Skip blanks and comments.
    std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;

    const auto fields = split_fields(line);
    if (fields.empty()) continue;

    if (!header_checked) {
      header_checked = true;
      double probe;
      if (!parse_double(fields[0], probe)) {
        out.column_labels = fields;
        width = fields.size();
        continue;
      }
    }

    std::vector<double> row(fields.size());
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (!parse_double(fields[i], row[i])) {
        throw uoi::support::IoError("CSV line " + std::to_string(line_number) +
                                    ": cannot parse field '" + fields[i] +
                                    "'");
      }
    }
    if (width == 0) width = row.size();
    if (row.size() != width) {
      throw uoi::support::IoError("CSV line " + std::to_string(line_number) +
                                  ": expected " + std::to_string(width) +
                                  " fields, got " +
                                  std::to_string(row.size()));
    }
    rows.push_back(std::move(row));
  }

  out.values.resize(rows.size(), width);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::copy(rows[r].begin(), rows[r].end(), out.values.row(r).begin());
  }
  return out;
}

CsvData read_csv(const std::string& path) {
  uoi::support::TraceScope span("csv-read",
                                uoi::support::TraceCategory::kDataIo);
  std::ifstream f(path);
  if (!f) throw uoi::support::IoError("cannot open CSV file: " + path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return parse_csv(buffer.str());
}

std::string to_csv(uoi::linalg::ConstMatrixView values,
                   const std::vector<std::string>& labels) {
  std::ostringstream out;
  out.precision(17);
  if (!labels.empty()) {
    UOI_CHECK_DIMS(labels.size() == values.cols(),
                   "CSV header width mismatch");
    for (std::size_t c = 0; c < labels.size(); ++c) {
      if (c != 0) out << ",";
      out << labels[c];
    }
    out << "\n";
  }
  for (std::size_t r = 0; r < values.rows(); ++r) {
    const auto row = values.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ",";
      out << row[c];
    }
    out << "\n";
  }
  return out.str();
}

void write_csv(const std::string& path, uoi::linalg::ConstMatrixView values,
               const std::vector<std::string>& labels) {
  std::ofstream f(path);
  if (!f) throw uoi::support::IoError("cannot open for writing: " + path);
  f << to_csv(values, labels);
  if (!f) throw uoi::support::IoError("short write to " + path);
}

}  // namespace uoi::io
