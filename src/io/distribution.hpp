#pragma once
// Data-distribution strategies from the paper (§III-B, Table II, Fig. 1a).
//
// Conventional: one rank reads the dataset chunk by chunk — reopening the
// file each time, as serial HDF5 with hyperslabs forces — and scatters
// row blocks to the other ranks. Read time scales with the full dataset
// through a single stream; this is the Table II baseline.
//
// Randomized three-tier (the paper's contribution):
//   T0: the (striped) dataset on disk;
//   T1: every rank reads its contiguous hyperslab in parallel;
//   T2: rows are scattered to pseudo-random owners through one-sided puts,
//       so each rank ends up holding a uniformly random subsample — which
//       is what the bootstrap Map steps need.
//
// Both return the same LocalRows structure so the UoI drivers can consume
// either. All functions are collective over their communicator.

#include <cstdint>
#include <vector>

#include "io/h5lite.hpp"
#include "linalg/matrix.hpp"
#include "simcluster/comm.hpp"

namespace uoi::io {

/// A rank's share of the dataset after distribution.
struct LocalRows {
  uoi::linalg::Matrix rows;                 ///< local row payload
  std::vector<std::size_t> global_indices;  ///< source row of each local row
};

/// Timing breakdown matching Table II's two columns.
struct DistributionTiming {
  double read_seconds = 0.0;
  double distribute_seconds = 0.0;
};

/// Conventional strategy: rank 0 reads every chunk (reopening the file per
/// chunk) and scatters contiguous row blocks. Transient one-sided faults
/// are absorbed by bounded exponential-backoff retries (`retry`).
[[nodiscard]] LocalRows conventional_distribute(
    uoi::sim::Comm& comm, const std::string& base,
    DistributionTiming* timing = nullptr,
    const uoi::sim::RetryOptions& retry = {});

/// Randomized three-tier strategy: parallel hyperslab reads (T1) followed
/// by one-sided random redistribution (T2). `seed` fixes the permutation;
/// all ranks must pass the same value. T2 puts are retried under `retry`'s
/// bounded backoff budget when a fault plan injects transient failures.
[[nodiscard]] LocalRows randomized_distribute(
    uoi::sim::Comm& comm, const std::string& base, std::uint64_t seed,
    DistributionTiming* timing = nullptr,
    const uoi::sim::RetryOptions& retry = {});

/// Tier-2 reshuffle of already-loaded local rows (the paper reuses it to
/// re-randomize between model selection and model estimation, Fig. 1c).
[[nodiscard]] LocalRows reshuffle(uoi::sim::Comm& comm, const LocalRows& held,
                                  std::size_t total_rows, std::uint64_t seed,
                                  const uoi::sim::RetryOptions& retry = {});

}  // namespace uoi::io
