#pragma once
// Distributed UoI_LASSO (paper §III, Fig. 1) on the uoi::sim runtime.
//
// Three-level parallelism, exactly the paper's decomposition:
//
//   P = P_B x P_lambda x C ranks
//   - P_B     bootstrap groups   (selection bootstraps round-robin over them)
//   - P_lambda lambda groups     (lambda indices round-robin over them)
//   - C       "ADMM cores" per task group: the bootstrap sample is
//             row-block-distributed over them and solved by the distributed
//             consensus LASSO-ADMM.
//
// Reductions (the paper's Reduce steps) map onto collectives:
//   - selection intersection (eq. 3): supports are encoded as 0/1 indicator
//     matrices and combined with an elementwise-min Allreduce over the
//     global communicator (AND == min over {0,1}; ranks contribute the
//     neutral element 1 for (k, j) pairs they did not compute);
//   - estimation: per-(bootstrap, support) evaluation losses are min-reduced
//     globally, every rank then knows each bootstrap's winner, and the
//     winning OLS estimates are sum-reduced and averaged (eq. 4's union).
//
// Given the same options/seed, the result matches the serial UoiLasso up to
// solver tolerance (identical resamples by construction).

#include <utility>
#include <vector>

#include "core/uoi_lasso.hpp"
#include "simcluster/comm.hpp"

namespace uoi::core {

/// How the ranks of a communicator are arranged (paper Fig. 3's
/// "P_B x P_lambda" configurations). C is derived: comm.size() / (pb * pl).
struct UoiParallelLayout {
  int bootstrap_groups = 1;  ///< P_B
  int lambda_groups = 1;     ///< P_lambda
};

/// Per-rank timing breakdown, mirroring the paper's runtime buckets.
/// Derived from the process-wide Tracer: communication / distribution /
/// data-I/O / Gram-setup are the rank's span totals over the phase,
/// computation is the wall-time remainder (clamped at zero), so the
/// buckets sum to the phase wall time.
struct UoiDistributedBreakdown {
  double computation_seconds = 0.0;
  double communication_seconds = 0.0;  ///< collectives (Allreduce-dominated)
  double distribution_seconds = 0.0;   ///< data movement into task groups
  double data_io_seconds = 0.0;        ///< dataset reads/writes (uoi::io)
  double gram_seconds = 0.0;  ///< Gram + Cholesky setup (solver-cache misses)
};

struct UoiLassoDistributedResult {
  UoiLassoResult model;                 ///< same contents as the serial result
  UoiDistributedBreakdown breakdown;    ///< this rank's timing
  /// Final merged q x p selection-count matrix (bootstraps that selected
  /// feature i at lambda_j). Replicated; exposed so fault-injection tests
  /// can assert bit-identical counts against a fault-free run.
  uoi::linalg::Matrix selection_counts;
  /// Quorum-degraded completion record (see UoiRecoveryOptions::
  /// min_bootstrap_quorum). When `degraded` is set, the run exhausted its
  /// recovery budget during selection and finished on a partial bootstrap
  /// set: `achieved_quorum` is the smallest per-lambda completed fraction,
  /// and `lost_cells` lists the abandoned (bootstrap, lambda) pairs whose
  /// selection counts are missing from `selection_counts`. Candidate
  /// supports were thresholded against the achieved per-lambda denominator
  /// instead of B1.
  bool degraded = false;
  double achieved_quorum = 1.0;
  std::vector<std::pair<std::size_t, std::size_t>> lost_cells;
};

/// Runs distributed UoI_LASSO. Collective: every rank of `comm` must call it
/// with identical options/layout and the same (replicated) data views.
/// `x`/`y` are the full dataset; each task group's ranks extract only their
/// own row blocks of each bootstrap sample (in the paper the randomized
/// HDF5 distribution delivers those blocks; see uoi::io for that path).
///
/// Fault tolerance (options.recovery): when a rank dies mid-run, survivors
/// detect the failure at their next synchronization point, shrink the
/// communicator, merge every survivor's accumulated selection counts, and
/// resume — recomputing only the (bootstrap, lambda) cells the dead rank's
/// group had not committed. Warm-start chains are committed atomically per
/// (bootstrap, lambda-group), so recomputed cells replay the exact ADMM
/// trajectories of a fault-free run and the final selection counts are
/// bit-identical. With `recovery.checkpoint_path` set, merged selection
/// progress also persists to disk (atomic, fsync'd) and a compatible
/// checkpoint is resumed on startup. After `max_recovery_attempts`
/// failures the RankFailedError propagates to the caller.
[[nodiscard]] UoiLassoDistributedResult uoi_lasso_distributed(
    uoi::sim::Comm& comm, uoi::linalg::ConstMatrixView x,
    std::span<const double> y, const UoiLassoOptions& options = {},
    const UoiParallelLayout& layout = {});

}  // namespace uoi::core
