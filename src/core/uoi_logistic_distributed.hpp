#pragma once
// Distributed UoI_Logistic on the uoi::sim runtime — the same
// P_B x P_lambda x C decomposition as uoi_lasso_distributed, with the
// consensus logistic solver in the Solve slots and held-out log loss as
// the estimation criterion. Completes the "UoI family at scale" picture:
// every estimator in this library runs under the paper's parallel
// structure.

#include "core/uoi_lasso_distributed.hpp"  // UoiParallelLayout, breakdown
#include "core/uoi_logistic.hpp"
#include "simcluster/comm.hpp"

namespace uoi::core {

struct UoiLogisticDistributedResult {
  UoiLogisticResult model;
  UoiDistributedBreakdown breakdown;
};

/// Collective over `comm`; `x`/`y` replicated as in uoi_lasso_distributed.
/// Matches the serial UoiLogistic's candidate supports given the same
/// options (identical resamples by construction).
[[nodiscard]] UoiLogisticDistributedResult uoi_logistic_distributed(
    uoi::sim::Comm& comm, uoi::linalg::ConstMatrixView x,
    std::span<const double> y, const UoiLogisticOptions& options = {},
    const UoiParallelLayout& layout = {});

}  // namespace uoi::core
