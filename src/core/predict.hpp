#pragma once
// Prediction helpers for fitted UoI models: the small amount of glue
// between a fit result and new data that every caller otherwise rewrites.

#include <span>

#include "core/uoi_lasso.hpp"
#include "core/uoi_logistic.hpp"
#include "linalg/matrix.hpp"

namespace uoi::core {

/// X beta + intercept for each row of X.
[[nodiscard]] uoi::linalg::Vector predict(uoi::linalg::ConstMatrixView x,
                                          std::span<const double> beta,
                                          double intercept = 0.0);

/// Linear predictions from a UoI_LASSO fit.
[[nodiscard]] uoi::linalg::Vector predict(const UoiLassoResult& fit,
                                          uoi::linalg::ConstMatrixView x);

/// Class-1 probabilities from a UoI_Logistic fit.
[[nodiscard]] uoi::linalg::Vector predict_proba(
    const UoiLogisticResult& fit, uoi::linalg::ConstMatrixView x);

/// Hard 0/1 labels at the given probability threshold.
[[nodiscard]] uoi::linalg::Vector predict_labels(
    const UoiLogisticResult& fit, uoi::linalg::ConstMatrixView x,
    double threshold = 0.5);

}  // namespace uoi::core
