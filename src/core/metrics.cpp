#include "core/metrics.hpp"

#include <cmath>

#include "support/error.hpp"

namespace uoi::core {

double SelectionAccuracy::precision() const {
  const auto denom = true_positives + false_positives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double SelectionAccuracy::recall() const {
  const auto denom = true_positives + false_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double SelectionAccuracy::f1() const {
  const double prec = precision();
  const double rec = recall();
  return prec + rec == 0.0 ? 0.0 : 2.0 * prec * rec / (prec + rec);
}

double SelectionAccuracy::mcc() const {
  const double tp = static_cast<double>(true_positives);
  const double fp = static_cast<double>(false_positives);
  const double fn = static_cast<double>(false_negatives);
  const double tn = static_cast<double>(true_negatives);
  const double denom =
      std::sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn));
  return denom == 0.0 ? 0.0 : (tp * tn - fp * fn) / denom;
}

SelectionAccuracy selection_accuracy(const SupportSet& estimated,
                                     const SupportSet& truth, std::size_t p) {
  SelectionAccuracy acc;
  for (std::size_t i = 0; i < p; ++i) {
    const bool in_est = estimated.contains(i);
    const bool in_truth = truth.contains(i);
    if (in_est && in_truth) {
      ++acc.true_positives;
    } else if (in_est) {
      ++acc.false_positives;
    } else if (in_truth) {
      ++acc.false_negatives;
    } else {
      ++acc.true_negatives;
    }
  }
  return acc;
}

EstimationAccuracy estimation_accuracy(std::span<const double> estimated,
                                       std::span<const double> truth) {
  UOI_CHECK_DIMS(estimated.size() == truth.size(),
                 "estimation_accuracy length mismatch");
  EstimationAccuracy out;
  double err_sq = 0.0, truth_sq = 0.0, bias_sum = 0.0;
  std::size_t support_count = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = estimated[i] - truth[i];
    err_sq += d * d;
    truth_sq += truth[i] * truth[i];
    out.max_abs_error = std::max(out.max_abs_error, std::abs(d));
    if (truth[i] != 0.0) {
      bias_sum += d;
      ++support_count;
    }
  }
  out.l2_error = std::sqrt(err_sq);
  out.relative_l2 = truth_sq > 0.0 ? out.l2_error / std::sqrt(truth_sq) : 0.0;
  out.bias_on_support =
      support_count > 0 ? bias_sum / static_cast<double>(support_count) : 0.0;
  return out;
}

}  // namespace uoi::core
