#include "core/standardize.hpp"

#include <cmath>

#include "support/error.hpp"

namespace uoi::core {

using uoi::linalg::Matrix;
using uoi::linalg::Vector;

Standardizer Standardizer::fit(uoi::linalg::ConstMatrixView x) {
  UOI_CHECK(x.rows() >= 2, "standardizer needs at least two rows");
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  Standardizer out;
  out.means_.assign(p, 0.0);
  out.scales_.assign(p, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < p; ++c) out.means_[c] += row[c];
  }
  for (auto& m : out.means_) m /= static_cast<double>(n);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < p; ++c) {
      const double d = row[c] - out.means_[c];
      out.scales_[c] += d * d;
    }
  }
  for (auto& s : out.scales_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s == 0.0) s = 1.0;  // constant column: transforms to zeros
  }
  return out;
}

Matrix Standardizer::transform(uoi::linalg::ConstMatrixView x) const {
  UOI_CHECK_DIMS(x.cols() == means_.size(),
                 "standardizer width mismatch");
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto src = x.row(r);
    auto dst = out.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) {
      dst[c] = (src[c] - means_[c]) / scales_[c];
    }
  }
  return out;
}

Vector Standardizer::coefficients_to_original(
    std::span<const double> beta_standardized) const {
  UOI_CHECK_DIMS(beta_standardized.size() == scales_.size(),
                 "coefficient width mismatch");
  Vector out(beta_standardized.size());
  for (std::size_t c = 0; c < out.size(); ++c) {
    out[c] = beta_standardized[c] / scales_[c];
  }
  return out;
}

double Standardizer::intercept_to_original(
    std::span<const double> beta_standardized,
    double intercept_standardized) const {
  UOI_CHECK_DIMS(beta_standardized.size() == scales_.size(),
                 "coefficient width mismatch");
  double shift = 0.0;
  for (std::size_t c = 0; c < means_.size(); ++c) {
    shift += beta_standardized[c] * means_[c] / scales_[c];
  }
  return intercept_standardized - shift;
}

}  // namespace uoi::core
