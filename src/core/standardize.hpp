#pragma once
// Column standardization (z-scoring) with coefficient back-transformation.
//
// LASSO-family penalties are not scale-invariant: a feature measured in
// cents gets penalized 100x harder than the same feature in dollars.
// Standard practice is to fit on z-scored columns and map the coefficients
// back to the original units — this module does both directions and keeps
// the fitted scaler around so new data can be transformed consistently.

#include <span>

#include "linalg/matrix.hpp"

namespace uoi::core {

class Standardizer {
 public:
  /// Learns per-column means and standard deviations from `x`.
  /// Zero-variance columns get scale 1 (they transform to all-zeros).
  static Standardizer fit(uoi::linalg::ConstMatrixView x);

  /// (x - mean) / scale, column-wise.
  [[nodiscard]] uoi::linalg::Matrix transform(
      uoi::linalg::ConstMatrixView x) const;

  /// Maps coefficients fitted on standardized features back to the
  /// original units: beta_orig_i = beta_std_i / scale_i. The matching
  /// intercept shift is `intercept_adjustment(beta_std)`:
  /// b_orig = b_std - sum_i beta_std_i * mean_i / scale_i.
  [[nodiscard]] uoi::linalg::Vector coefficients_to_original(
      std::span<const double> beta_standardized) const;
  [[nodiscard]] double intercept_to_original(
      std::span<const double> beta_standardized,
      double intercept_standardized) const;

  [[nodiscard]] const uoi::linalg::Vector& means() const noexcept {
    return means_;
  }
  [[nodiscard]] const uoi::linalg::Vector& scales() const noexcept {
    return scales_;
  }

 private:
  uoi::linalg::Vector means_;
  uoi::linalg::Vector scales_;
};

}  // namespace uoi::core
