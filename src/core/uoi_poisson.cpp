#include "core/uoi_poisson.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "solvers/lambda_grid.hpp"
#include "support/error.hpp"

namespace uoi::core {

using uoi::linalg::ConstMatrixView;
using uoi::linalg::Matrix;
using uoi::linalg::Vector;

namespace {

UoiLassoOptions resample_options(const UoiPoissonOptions& options) {
  UoiLassoOptions out;
  out.n_selection_bootstraps = options.n_selection_bootstraps;
  out.n_estimation_bootstraps = options.n_estimation_bootstraps;
  out.estimation_train_fraction = options.estimation_train_fraction;
  out.intersection_fraction = options.intersection_fraction;
  out.seed = options.seed;
  return out;
}

Vector gather(std::span<const double> y, std::span<const std::size_t> idx) {
  Vector out(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) out[i] = y[idx[i]];
  return out;
}

}  // namespace

UoiPoisson::UoiPoisson(UoiPoissonOptions options)
    : options_(std::move(options)) {
  UOI_CHECK(options_.n_selection_bootstraps >= 1, "B1 must be >= 1");
  UOI_CHECK(options_.n_estimation_bootstraps >= 1, "B2 must be >= 1");
}

UoiPoissonResult UoiPoisson::fit(ConstMatrixView x,
                                 std::span<const double> y) const {
  UOI_CHECK_DIMS(x.rows() == y.size(), "UoI_Poisson: X rows != y size");
  for (const double v : y) {
    UOI_CHECK(v >= 0.0, "Poisson responses must be non-negative counts");
  }
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  const Matrix x_owned = Matrix::from_view(x);
  const UoiLassoOptions resampling = resample_options(options_);

  UoiPoissonResult result;
  const double hi = uoi::solvers::poisson_lambda_max(x, y);
  UOI_CHECK(hi > 0.0, "degenerate counts: lambda_max is zero");
  result.lambdas = uoi::solvers::log_spaced_lambdas(
      hi, options_.lambda_min_ratio, options_.n_lambdas);
  const std::size_t q = result.lambdas.size();

  // ---- selection ----
  Matrix counts(q, p, 0.0);
  for (std::size_t k = 0; k < options_.n_selection_bootstraps; ++k) {
    const auto idx = selection_bootstrap_indices(resampling, n, k);
    const Matrix x_boot = x_owned.gather_rows(idx);
    const Vector y_boot = gather(y, idx);
    for (std::size_t j = 0; j < q; ++j) {
      const auto fit = uoi::solvers::poisson_lasso(
          x_boot, y_boot, result.lambdas[j], options_.solver);
      auto row = counts.row(j);
      for (std::size_t i = 0; i < p; ++i) {
        if (std::abs(fit.beta[i]) > options_.support_tolerance) row[i] += 1.0;
      }
    }
  }
  const double threshold = std::max(
      1.0, std::ceil(options_.intersection_fraction *
                         static_cast<double>(options_.n_selection_bootstraps) -
                     1e-12));
  result.candidate_supports.reserve(q);
  for (std::size_t j = 0; j < q; ++j) {
    std::vector<std::size_t> selected;
    const auto row = counts.row(j);
    for (std::size_t i = 0; i < p; ++i) {
      if (row[i] >= threshold) selected.push_back(i);
    }
    result.candidate_supports.emplace_back(std::move(selected));
  }

  // ---- estimation: IRLS refits scored by held-out deviance ----
  const std::size_t b2 = options_.n_estimation_bootstraps;
  result.chosen_support_per_bootstrap.assign(b2, 0);
  result.best_loss_per_bootstrap.assign(
      b2, std::numeric_limits<double>::infinity());
  std::vector<Vector> winners;
  winners.reserve(b2);
  double intercept_sum = 0.0;

  for (std::size_t k = 0; k < b2; ++k) {
    const auto split = estimation_split(resampling, n, k);
    const Matrix x_train = x_owned.gather_rows(split.train);
    const Matrix x_eval = x_owned.gather_rows(split.eval);
    const Vector y_train = gather(y, split.train);
    const Vector y_eval = gather(y, split.eval);

    Vector best_beta(p, 0.0);
    double best_intercept = 0.0;
    for (std::size_t j = 0; j < q; ++j) {
      const auto& support = result.candidate_supports[j].indices();
      const auto fit = uoi::solvers::poisson_irls_on_support(
          x_train, y_train, support, options_.solver);
      const double loss = uoi::solvers::poisson_deviance(
          x_eval, y_eval, fit.beta, fit.intercept);
      if (loss < result.best_loss_per_bootstrap[k]) {
        result.best_loss_per_bootstrap[k] = loss;
        result.chosen_support_per_bootstrap[k] = j;
        best_beta = fit.beta;
        best_intercept = fit.intercept;
      }
    }
    winners.push_back(std::move(best_beta));
    intercept_sum += best_intercept;
  }

  result.beta = aggregate_estimates(winners, options_.aggregation);
  result.intercept = intercept_sum / static_cast<double>(b2);
  result.support =
      SupportSet::from_beta(result.beta, options_.support_tolerance);
  return result;
}

}  // namespace uoi::core
