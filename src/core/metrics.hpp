#pragma once
// Selection- and estimation-accuracy metrics used by the statistical
// benches (UoI vs LASSO/Ridge comparisons) and the integration tests.

#include <span>

#include "core/support_set.hpp"

namespace uoi::core {

/// Confusion counts of an estimated support against the ground truth.
struct SelectionAccuracy {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
  std::size_t true_negatives = 0;

  [[nodiscard]] double precision() const;
  [[nodiscard]] double recall() const;
  [[nodiscard]] double f1() const;
  /// Matthews correlation coefficient (balanced even for sparse truths).
  [[nodiscard]] double mcc() const;
};

/// Compares supports over a feature space of size p.
[[nodiscard]] SelectionAccuracy selection_accuracy(const SupportSet& estimated,
                                                   const SupportSet& truth,
                                                   std::size_t p);

/// Estimation-accuracy summary against the true coefficients.
struct EstimationAccuracy {
  double l2_error = 0.0;        ///< ||beta_hat - beta*||_2
  double relative_l2 = 0.0;     ///< l2_error / ||beta*||_2
  double max_abs_error = 0.0;
  double bias_on_support = 0.0; ///< mean (beta_hat - beta*) over true support
};
[[nodiscard]] EstimationAccuracy estimation_accuracy(
    std::span<const double> estimated, std::span<const double> truth);

}  // namespace uoi::core
