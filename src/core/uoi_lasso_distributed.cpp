#include "core/uoi_lasso_distributed.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/distributed_common.hpp"
#include "sched/cost_model.hpp"
#include "sched/scheduler.hpp"
#include "sched/task_grid.hpp"
#include "solvers/distributed_admm.hpp"
#include "solvers/screening.hpp"
#include "solvers/solver_cache.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace uoi::core {

using uoi::linalg::ConstMatrixView;
using uoi::linalg::Matrix;
using uoi::linalg::Vector;
using uoi::sim::Comm;
using uoi::sim::CommStats;
using uoi::sim::RecoveryStats;
using uoi::sim::ReduceOp;

namespace {

using detail::block_slice;
using detail::gather_local_block;
using detail::make_task_layout;
using detail::TaskLayout;

/// Distributed evaluation over a task group: each rank scores its own
/// evaluation rows, (sq_err, count) is sum-reduced, and the MSE plus the
/// global evaluation count come back identical on every group rank.
struct DistributedEvaluation {
  double mse;
  double n_eval;
};
DistributedEvaluation distributed_mse(Comm& task_comm,
                                      ConstMatrixView x_local,
                                      std::span<const double> y_local,
                                      std::span<const double> beta) {
  double acc[2] = {0.0, static_cast<double>(x_local.rows())};
  for (std::size_t r = 0; r < x_local.rows(); ++r) {
    double pred = 0.0;
    const auto row = x_local.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) pred += row[c] * beta[c];
    const double err = pred - y_local[r];
    acc[0] += err * err;
  }
  task_comm.allreduce(std::span<double>(acc, 2), ReduceOp::kSum);
  return {acc[1] > 0.0 ? acc[0] / acc[1] : 0.0, acc[1]};
}

// Cached per-bootstrap state. `bytes()` must be a deterministic function of
// the GLOBAL problem shape (never this rank's local row count): cache
// misses run collective code (the solver constructor Allreduces A'b), so a
// hit/miss or eviction decision that diverged across a task group's ranks
// would deadlock the group.
struct LassoSelectionEntry {
  Matrix x_local;
  Vector y_local;
  /// Replicated screening quantities (A'b, column norms, lambda_max);
  /// built collectively once per bootstrap, shared by every chain.
  uoi::solvers::DistributedScreenInputs screen_inputs;
  /// Full-p factorization; built only in off mode (screened chains build
  /// reduced factorizations per lambda instead).
  std::optional<uoi::solvers::DistributedLassoAdmmSolver> solver;
  std::size_t bytes_estimate = 0;
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_estimate; }
};

struct LassoEstimationEntry {
  Matrix x_train, x_eval;
  Vector y_train, y_eval;
  std::size_t bytes_estimate = 0;
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_estimate; }
};

}  // namespace

UoiLassoDistributedResult uoi_lasso_distributed(
    Comm& comm, ConstMatrixView x_view, std::span<const double> y_view,
    const UoiLassoOptions& options, const UoiParallelLayout& layout) {
  UOI_CHECK_DIMS(x_view.rows() == y_view.size(),
                 "UoI_LASSO: X rows != y size");
  UOI_CHECK(layout.bootstrap_groups >= 1 && layout.lambda_groups >= 1,
            "layout group counts must be >= 1");
  UOI_CHECK(comm.size() >= layout.bootstrap_groups * layout.lambda_groups,
            "communicator smaller than P_B * P_lambda task groups");

  const std::size_t n = x_view.rows();
  const std::size_t p = x_view.cols();

  // Intercept handling mirrors the serial driver: deterministic centering
  // replicated on every rank.
  Matrix x_owned = Matrix::from_view(x_view);
  Vector y_owned(y_view.begin(), y_view.end());
  Vector x_means(p, 0.0);
  double y_mean = 0.0;
  if (options.fit_intercept) {
    for (std::size_t r = 0; r < n; ++r) {
      const auto row = x_owned.row(r);
      for (std::size_t c = 0; c < p; ++c) x_means[c] += row[c];
      y_mean += y_owned[r];
    }
    for (auto& m : x_means) m /= static_cast<double>(n);
    y_mean /= static_cast<double>(n);
    for (std::size_t r = 0; r < n; ++r) {
      auto row = x_owned.row(r);
      for (std::size_t c = 0; c < p; ++c) row[c] -= x_means[c];
      y_owned[r] -= y_mean;
    }
  }
  const ConstMatrixView x = x_owned;
  const std::span<const double> y = y_owned;

  UoiLassoDistributedResult out;
  UoiLassoResult& model = out.model;
  model.lambdas = resolve_lambda_grid(options, x, y);
  const std::size_t q = model.lambdas.size();
  const std::size_t b1 = options.n_selection_bootstraps;
  const std::size_t b2 = options.n_estimation_bootstraps;

  const UoiRecoveryOptions& recovery = options.recovery;
  const bool checkpointing = !recovery.checkpoint_path.empty();
  const std::uint64_t fingerprint =
      UoiLasso(options).selection_fingerprint(n, p, model.lambdas);

  support::Stopwatch phase_watch;
  // Bucket attribution is tracer-based: spans are keyed by this rank's
  // *global* rank, so collectives on split/dup/shrunk communicators — the
  // pipelined convergence check's duplicate comm in particular, which
  // comm.stats() never saw — are all accounted.
  auto& tracer = support::Tracer::instance();
  const int trace_rank = comm.global_rank();
  const double phase_start_seconds = tracer.now_seconds();
  const support::TraceTotals trace_before = tracer.totals(trace_rank);
  support::IntervalTimer distribution_timer;
  std::uint64_t local_flops = 0;
  std::uint64_t admm_iterations = 0;
  std::uint64_t admm_rho_updates = 0;
  std::uint64_t admm_allreduce_calls = 0;
  std::uint64_t admm_allreduce_bytes = 0;
  std::uint64_t admm_consensus_rounds = 0;
  std::uint64_t admm_lazy_iterations = 0;
  const std::size_t cache_budget =
      uoi::solvers::resolve_solver_cache_bytes(options.solver_cache_mb);
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t setup_flops_charged = 0;
  std::uint64_t setup_flops_amortized = 0;
  // Screening mode is resolved once up front: the cache entry's shape
  // (full solver or not) and bytes_estimate must be identical on every
  // rank, and all ranks see the same environment in-process.
  uoi::solvers::ScreenOptions screen_opts = options.screen;
  screen_opts.mode = uoi::solvers::resolve_screen_mode(options.screen.mode);
  const bool screening_on =
      screen_opts.mode != uoi::solvers::ScreenMode::kOff;
  uoi::solvers::ScreenStats screen_stats;

  // Selection state. `*_merged` is replicated and globally consistent;
  // `*_local` holds this rank's contributions not yet committed by a
  // merge. A (bootstrap, lambda) cell's count and done flag live on the
  // same rank (the owning group's task rank 0) until merged, so a rank
  // death loses them together — `done` never claims counts that died with
  // a failed rank.
  Matrix counts_merged(q, p, 0.0);
  Matrix done_merged(b1, q, 0.0);
  Matrix counts_local(q, p, 0.0);
  Matrix done_local(b1, q, 0.0);

  if (checkpointing) {
    // Every rank reads the same stable file (in-process cluster: one
    // filesystem), so the restored state is replicated by construction.
    if (auto restored =
            try_load_checkpoint(recovery.checkpoint_path, fingerprint)) {
      const bool shape_ok =
          restored->lambdas == model.lambdas &&
          restored->counts.rows() == q && restored->counts.cols() == p &&
          (restored->done.rows() == 0 ||
           (restored->done.rows() == b1 && restored->done.cols() == q)) &&
          restored->completed_bootstraps <= b1;
      if (shape_ok) {
        counts_merged = std::move(restored->counts);
        if (restored->done.rows() != 0) {
          done_merged = std::move(restored->done);
        } else {
          for (std::size_t k = 0; k < restored->completed_bootstraps; ++k) {
            for (std::size_t j = 0; j < q; ++j) done_merged(k, j) = 1.0;
          }
        }
        ++comm.mutable_recovery_stats().checkpoint_resumes;
        UOI_LOG_INFO.field("path", recovery.checkpoint_path)
            << "resumed selection progress from checkpoint";
      }
    }
  }

  // ---- Scheduler state ----
  // Chains are fixed at entry (n_chains = the entry layout's P_lambda,
  // chain c owns {j : j % n_chains == c}) and survive every shrink, so a
  // replayed cell rebuilds the exact warm-start trajectory of a fault-free
  // run. The group count is what shrinks: survivors regroup into
  // min(P_B * P_lambda, alive) groups of near-even width instead of the old
  // largest-divisor fallback that collapsed prime sizes to one group.
  const int pb = layout.bootstrap_groups;
  const int pl = layout.lambda_groups;
  int n_groups = pb * pl;
  const sched::SchedulePolicy policy =
      sched::resolve_policy(options.schedule);
  const std::size_t n_chains = std::max<std::size_t>(
      1, std::min(static_cast<std::size_t>(pl), q));
  const sched::TaskGrid selection_grid(b1, q, n_chains, options.seed);
  const sched::TaskGrid estimation_grid(b2, q, n_chains, options.seed + 1);
  // Live-telemetry progress denominator (`uoi top` sums cells_done against
  // this); one rank owns it so the cross-rank sum counts the grid once.
  if (comm.rank() == 0) {
    support::MetricsRegistry::instance().set(
        trace_rank, "progress.cells_total",
        static_cast<double>(selection_grid.n_cells() +
                            estimation_grid.n_cells()));
  }
  const double pass_seconds_seed = sched::lasso_pass_seconds_estimate(
      n, p, b1, b2, q, options.admm.max_iterations, comm.size());
  const std::vector<double> selection_costs =
      sched::seeded_costs(selection_grid, model.lambdas, pass_seconds_seed);
  std::vector<double> estimation_costs =
      sched::seeded_costs(estimation_grid, model.lambdas, pass_seconds_seed);
  sched::PassStats selection_stats;
  bool estimation_costs_calibrated = false;

  CommStats folded;
  RecoveryStats folded_rec;
  std::optional<Comm> owned;  // current shrunk communicator, if any
  Comm* active = &comm;

  const auto save = [&](Comm& c) {
    if (!checkpointing || c.rank() != 0) return;
    // A degraded run marks its lost cells done so the scheduler skips
    // them; persisting that state would poison a later full-quorum resume
    // into silently inheriting the losses.
    if (out.degraded) return;
    SelectionCheckpoint checkpoint;
    checkpoint.fingerprint = fingerprint;
    checkpoint.lambdas = model.lambdas;
    checkpoint.counts = counts_merged;
    checkpoint.done = done_merged;
    checkpoint.completed_bootstraps = checkpoint.completed_prefix();
    save_checkpoint(recovery.checkpoint_path, checkpoint);
  };

  // Commits every rank's unmerged contributions into the replicated merged
  // state. Collective over `c`. Atomic with respect to rank failures: the
  // fused allreduce either completes on every survivor or raises on every
  // survivor before the commit, so locals are never half-applied.
  const auto merge = [&](Comm& c) {
    std::vector<double> buffer(counts_local.size() + done_local.size());
    std::copy(counts_local.data(), counts_local.data() + counts_local.size(),
              buffer.begin());
    std::copy(done_local.data(), done_local.data() + done_local.size(),
              buffer.begin() + static_cast<std::ptrdiff_t>(
                                   counts_local.size()));
    c.allreduce(std::span<double>(buffer), ReduceOp::kSum);
    for (std::size_t i = 0; i < counts_merged.size(); ++i) {
      counts_merged.data()[i] += buffer[i];
    }
    for (std::size_t i = 0; i < done_merged.size(); ++i) {
      done_merged.data()[i] = std::min(
          1.0, done_merged.data()[i] + buffer[counts_merged.size() + i]);
    }
    std::fill(counts_local.data(), counts_local.data() + counts_local.size(),
              0.0);
    std::fill(done_local.data(), done_local.data() + done_local.size(), 0.0);
  };

  const auto run_selection = [&](Comm& c) {
    const TaskLayout tl = make_task_layout(c.rank(), c.size(), n_groups, 1);
    Comm task_comm = c.split(tl.task_group, c.rank());
    const sched::GroupInfo group_info{n_groups, tl.task_group, tl.task_rank,
                                      pb, pl};
    // One cache per pass attempt: entries hold views of this attempt's
    // task_comm, so they must not outlive it. Declared (with the stats
    // fold) before the try so the catch path accounts hits too.
    uoi::solvers::BootstrapCache cache(cache_budget);
    const auto fold_cache_stats = [&] {
      cache_hits += cache.stats().hits;
      cache_misses += cache.stats().misses;
      cache_evictions += cache.stats().evictions;
    };
    try {
      // One cell = (bootstrap k, lambda chain): the group fits the chain's
      // still-missing lambdas warm-started in grid order, exactly as the
      // historical per-group loop did.
      const auto execute = [&](const sched::TaskCell& task) {
        const std::size_t k = task.bootstrap;
        std::vector<std::size_t> chain;
        for (std::size_t j : selection_grid.chain_lambdas(task.chain)) {
          if (done_merged(k, j) == 0.0) chain.push_back(j);
        }
        if (chain.empty()) return;
        // All chains of bootstrap k share one gather + one Gram/Cholesky
        // setup: the factorization depends on (X_k, rho) only, not lambda.
        const std::uint64_t hits_before = cache.stats().hits;
        const auto entry = cache.get_or_build<LassoSelectionEntry>(
            uoi::solvers::kSelectionPass, k, [&] {
              auto fresh = std::make_shared<LassoSelectionEntry>();
              {
                support::TraceScope distr_span(
                    "selection-gather", support::TraceCategory::kDistribution,
                    trace_rank, &distribution_timer);
                const auto idx = selection_bootstrap_indices(options, n, k);
                gather_local_block(x, y, idx,
                                   block_slice(idx.size(), tl.c_ranks,
                                               tl.task_rank),
                                   fresh->x_local, fresh->y_local);
              }
              {
                support::TraceScope gram_span(
                    "selection-gram", support::TraceCategory::kGram,
                    trace_rank);
                fresh->screen_inputs = uoi::solvers::build_screen_inputs(
                    task_comm, fresh->x_local, fresh->y_local);
                if (!screening_on) {
                  // Only off mode pays the full-p Gram/Cholesky up front;
                  // screened chains factorize the survivors per lambda.
                  // Refined options: cached full solvers must match the
                  // chain's internal stopping rules.
                  fresh->solver.emplace(
                      task_comm, fresh->x_local, fresh->y_local,
                      uoi::solvers::detail::refined_admm_options(
                          options.admm, screen_opts));
                }
              }
              fresh->bytes_estimate =
                  (n * (p + 1) + (screening_on ? 0 : p * p) + 2 * p + 1) *
                  sizeof(double);
              return fresh;
            });
        if (entry->solver.has_value()) {
          if (cache.stats().hits > hits_before) {
            setup_flops_amortized += entry->solver->setup_flops();
          } else {
            setup_flops_charged += entry->solver->setup_flops();
          }
        }
        // The screened chain owns the warm start: every rank derives the
        // identical working set from the replicated screen inputs, so the
        // reduced consensus payload is (|W|+3) doubles instead of (p+3).
        uoi::solvers::DistributedScreenedLassoChain screened(
            task_comm, entry->x_local, entry->y_local, entry->screen_inputs,
            options.admm, screen_opts,
            entry->solver.has_value() ? &*entry->solver : nullptr);
        // Indicators are staged and committed only once the whole
        // chain finished: a failure mid-chain must leave no partial
        // contribution, so the chain reruns cold — replaying exactly
        // the warm-start trajectory a fault-free run produces.
        Matrix staged(chain.size(), p, 0.0);
        for (std::size_t m = 0; m < chain.size(); ++m) {
          auto fit = screened.solve(model.lambdas[chain[m]]);
          local_flops += fit.local_flops;
          admm_iterations += fit.iterations;
          admm_rho_updates += fit.rho_updates;
          admm_allreduce_calls += fit.allreduce_calls;
          admm_allreduce_bytes += fit.allreduce_bytes;
          admm_consensus_rounds += fit.consensus_rounds;
          admm_lazy_iterations += fit.lazy_iterations;
          if (tl.task_rank == 0) {
            auto row = staged.row(m);
            for (std::size_t i = 0; i < p; ++i) {
              if (std::abs(fit.beta[i]) > options.support_tolerance) {
                row[i] = 1.0;
              }
            }
          }
        }
        screen_stats += screened.stats();
        if (tl.task_rank == 0) {
          for (std::size_t m = 0; m < chain.size(); ++m) {
            auto dest = counts_local.row(chain[m]);
            const auto src = staged.row(m);
            for (std::size_t i = 0; i < p; ++i) dest[i] += src[i];
            done_local(k, chain[m]) = 1.0;
          }
        }
      };

      // Checkpoint epochs: `interval` bootstraps per scheduled pass, with a
      // merge + save between epochs (single epoch when not checkpointing).
      // Placement is planned once over every pending cell of the pass and
      // filtered per epoch: planning tiny epochs individually would let the
      // LPT greedy put each one onto group 0 and starve the rest.
      const std::size_t interval =
          checkpointing
              ? std::max<std::size_t>(1, recovery.checkpoint_interval)
              : b1;
      std::vector<std::size_t> pass_cells;
      for (std::size_t k = 0; k < b1; ++k) {
        for (std::size_t chain = 0; chain < n_chains; ++chain) {
          bool pending = false;
          for (std::size_t j : selection_grid.chain_lambdas(chain)) {
            if (done_merged(k, j) == 0.0) {
              pending = true;
              break;
            }
          }
          if (pending) pass_cells.push_back(selection_grid.cell_id(k, chain));
        }
      }
      const auto placement = sched::plan_placement(
          policy, selection_grid, pass_cells, selection_costs, group_info,
          sched::group_widths(c.size(), n_groups));
      sched::PassStats call_stats;
      for (std::size_t k0 = 0; k0 < b1; k0 += interval) {
        const std::size_t k1 = std::min(b1, k0 + interval);
        auto epoch = placement;
        std::size_t epoch_cells = 0;
        for (auto& queue : epoch) {
          std::erase_if(queue, [&](std::size_t id) {
            const std::size_t k = selection_grid.cell(id).bootstrap;
            return k < k0 || k >= k1;
          });
          epoch_cells += queue.size();
        }
        if (epoch_cells > 0) {
          const auto pass = sched::run_pass(
              c, task_comm, group_info, policy, selection_grid, epoch,
              selection_costs, recovery.retry_options(), execute);
          sched::accumulate_stats(call_stats, pass);
        }
        if (checkpointing && k1 < b1) {
          merge(c);
          save(c);
        }
      }
      merge(c);  // the final commit doubles as eq. 3's Reduce
      save(c);
      sched::accumulate_stats(selection_stats, call_stats);
      sched::export_pass_metrics(trace_rank, group_info, policy, call_stats);
      fold_cache_stats();
      folded += task_comm.stats();
      folded_rec += task_comm.recovery_stats();
    } catch (const uoi::sim::RankFailedError&) {
      fold_cache_stats();
      folded += task_comm.stats();
      folded_rec += task_comm.recovery_stats();
      throw;
    }
  };

  const auto run_estimation = [&](Comm& c) {
    const TaskLayout tl = make_task_layout(c.rank(), c.size(), n_groups, 1);
    Comm task_comm = c.split(tl.task_group, c.rank());
    const sched::GroupInfo group_info{n_groups, tl.task_group, tl.task_rank,
                                      pb, pl};
    uoi::solvers::BootstrapCache cache(cache_budget);
    const auto fold_cache_stats = [&] {
      cache_hits += cache.stats().hits;
      cache_misses += cache.stats().misses;
      cache_evictions += cache.stats().evictions;
    };
    try {
      // Refine the estimation placement once from the measured selection
      // pass: the Allreduce-max replicates every group's per-cell seconds,
      // so all ranks derive the identical calibrated plan.
      if (policy != sched::SchedulePolicy::kStatic &&
          !estimation_costs_calibrated) {
        if (selection_stats.cell_seconds.size() != selection_grid.n_cells()) {
          selection_stats.cell_seconds.assign(selection_grid.n_cells(), 0.0);
        }
        c.allreduce(std::span<double>(selection_stats.cell_seconds),
                    ReduceOp::kMax);
        const auto calibration = sched::calibrate(
            selection_grid, selection_costs, selection_stats.cell_seconds);
        sched::apply_calibration(estimation_grid, calibration,
                                 std::span<double>(estimation_costs));
        // Estimation solves OLS restricted to each lambda's candidate
        // support, so reweight the per-chain costs by the survivor counts
        // the screened selection pass produced (replicated: the supports
        // derive from the merged counts every rank holds).
        std::vector<double> survivors(q, 0.0);
        for (std::size_t j = 0; j < q; ++j) {
          survivors[j] = static_cast<double>(
              model.candidate_supports[j].indices().size());
        }
        sched::apply_survivor_weights(estimation_grid, survivors,
                                      std::span<double>(estimation_costs));
        if (tl.task_rank == 0) {
          support::MetricsRegistry::instance().set(
              trace_rank, "sched.placement_error",
              calibration.mean_abs_rel_error);
        }
        estimation_costs_calibrated = true;
      }

      Matrix losses(b2, q, std::numeric_limits<double>::infinity());
      // betas_by_task[k * q + j] exists only for tasks this group computed.
      std::vector<Vector> computed_betas(b2 * q);

      // The gather is per bootstrap; the cache generalizes the old
      // last-bootstrap sentinel so a group revisiting a resample — several
      // chains, or interleaved work-stolen cells — still gathers once.
      const auto execute = [&](const sched::TaskCell& task) {
        const std::size_t k = task.bootstrap;
        const auto entry = cache.get_or_build<LassoEstimationEntry>(
            uoi::solvers::kEstimationPass, k, [&] {
              auto fresh = std::make_shared<LassoEstimationEntry>();
              support::TraceScope distr_span(
                  "estimation-gather", support::TraceCategory::kDistribution,
                  trace_rank, &distribution_timer);
              const auto split = estimation_split(options, n, k);
              gather_local_block(
                  x, y, split.train,
                  block_slice(split.train.size(), tl.c_ranks, tl.task_rank),
                  fresh->x_train, fresh->y_train);
              gather_local_block(
                  x, y, split.eval,
                  block_slice(split.eval.size(), tl.c_ranks, tl.task_rank),
                  fresh->x_eval, fresh->y_eval);
              fresh->bytes_estimate =
                  (split.train.size() + split.eval.size()) * (p + 1) *
                  sizeof(double);
              return fresh;
            });
        const Matrix& x_train = entry->x_train;
        const Matrix& x_eval = entry->x_eval;
        const Vector& y_train = entry->y_train;
        const Vector& y_eval = entry->y_eval;

        for (std::size_t j : estimation_grid.chain_lambdas(task.chain)) {
          const auto& support = model.candidate_supports[j].indices();
          Vector beta(p, 0.0);
          if (!support.empty()) {
            // Distributed OLS: consensus ADMM with lambda = 0 on the
            // support columns (paper §II-C), row-distributed over the
            // task group.
            const Matrix x_train_s = x_train.gather_cols(support);
            auto fit = uoi::solvers::distributed_lasso_admm(
                task_comm, x_train_s, y_train, /*lambda=*/0.0, options.admm);
            local_flops += fit.local_flops;
            admm_iterations += fit.iterations;
            admm_rho_updates += fit.rho_updates;
            admm_allreduce_calls += fit.allreduce_calls;
            admm_allreduce_bytes += fit.allreduce_bytes;
            admm_consensus_rounds += fit.consensus_rounds;
            admm_lazy_iterations += fit.lazy_iterations;
            for (std::size_t i = 0; i < support.size(); ++i) {
              beta[support[i]] = fit.beta[i];
            }
          }
          const auto eval = distributed_mse(task_comm, x_eval, y_eval, beta);
          losses(k, j) = estimation_score(options.criterion, eval.mse,
                                          eval.n_eval, support.size());
          computed_betas[k * q + j] = std::move(beta);
        }
      };

      std::vector<std::size_t> cells(estimation_grid.n_cells());
      for (std::size_t i = 0; i < cells.size(); ++i) cells[i] = i;
      const auto placement = sched::plan_placement(
          policy, estimation_grid, cells, estimation_costs, group_info,
          sched::group_widths(c.size(), n_groups));
      const auto pass = sched::run_pass(
          c, task_comm, group_info, policy, estimation_grid, placement,
          estimation_costs, recovery.retry_options(), execute);
      sched::export_pass_metrics(trace_rank, group_info, policy, pass);

      // Share all losses; every rank then knows each bootstrap's winner.
      c.allreduce(std::span<double>(losses.data(), losses.size()),
                  ReduceOp::kMin);

      model.chosen_support_per_bootstrap.assign(b2, 0);
      model.best_loss_per_bootstrap.assign(b2, 0.0);
      // winners(k, :) is assembled globally: the owning group's rank 0
      // deposits its estimate, then one sum-reduction replicates the
      // matrix.
      Matrix winners(b2, p, 0.0);
      for (std::size_t k = 0; k < b2; ++k) {
        std::size_t best_j = 0;
        double best_loss = losses(k, 0);
        for (std::size_t j = 1; j < q; ++j) {
          if (losses(k, j) < best_loss) {
            best_loss = losses(k, j);
            best_j = j;
          }
        }
        model.chosen_support_per_bootstrap[k] = best_j;
        model.best_loss_per_bootstrap[k] = best_loss;
        if (!computed_betas[k * q + best_j].empty() && tl.task_rank == 0) {
          const auto& beta = computed_betas[k * q + best_j];
          std::copy(beta.begin(), beta.end(), winners.row(k).begin());
        }
      }
      c.allreduce(std::span<double>(winners.data(), winners.size()),
                  ReduceOp::kSum);

      std::vector<Vector> winner_rows;
      winner_rows.reserve(b2);
      for (std::size_t k = 0; k < b2; ++k) {
        const auto row = winners.row(k);
        winner_rows.emplace_back(row.begin(), row.end());
      }
      model.beta = aggregate_estimates(winner_rows, options.aggregation);
      model.support =
          SupportSet::from_beta(model.beta, options.support_tolerance);
      if (options.fit_intercept) {
        double dot = 0.0;
        for (std::size_t i = 0; i < p; ++i) dot += x_means[i] * model.beta[i];
        model.intercept = y_mean - dot;
      }

      std::uint64_t flops = local_flops;
      c.allreduce(std::span<std::uint64_t>(&flops, 1), ReduceOp::kSum);
      model.total_flops = flops;

      fold_cache_stats();
      folded += task_comm.stats();
      folded_rec += task_comm.recovery_stats();
    } catch (const uoi::sim::RankFailedError&) {
      fold_cache_stats();
      folded += task_comm.stats();
      folded_rec += task_comm.recovery_stats();
      throw;
    }
  };

  // ---- Recovery attempt loop ----
  // Each pass runs selection (skipping merged cells) and estimation on the
  // current communicator. A RankFailedError triggers shrink + merge +
  // layout fallback; the estimation phase is redone wholesale (its fits
  // are cold, so a redo is deterministic), selection resumes cell-wise.
  bool selection_complete = false;
  int attempts_left = recovery.max_recovery_attempts;
  // Per-lambda completed-bootstrap counts of a quorum-degraded run; the
  // intersection thresholds renormalize to these instead of B1.
  std::vector<double> degraded_achieved;
  for (;;) {
    try {
      if (!selection_complete) {
        run_selection(*active);
        // Build the (possibly soft) intersection from the merged counts
        // (eq. 3); identical on every rank. A degraded run thresholds each
        // lambda against its achieved bootstrap count so a feature's bar
        // is not inflated by bootstraps that were never computed.
        const auto base_threshold =
            static_cast<double>(intersection_count_threshold(options));
        model.candidate_supports.clear();
        model.candidate_supports.reserve(q);
        for (std::size_t j = 0; j < q; ++j) {
          const double threshold =
              out.degraded
                  ? std::max(1.0, std::ceil(options.intersection_fraction *
                                                degraded_achieved[j] -
                                            1e-12))
                  : base_threshold;
          std::vector<std::size_t> selected;
          const auto row = counts_merged.row(j);
          for (std::size_t i = 0; i < p; ++i) {
            if (row[i] >= threshold) selected.push_back(i);
          }
          model.candidate_supports.emplace_back(std::move(selected));
        }
        selection_complete = true;
      }
      run_estimation(*active);
      break;
    } catch (const uoi::sim::RankFailedError&) {
      const bool out_of_attempts = attempts_left-- <= 0;
      // Quorum-degraded completion is a selection-phase escape hatch only:
      // estimation fits are cold recomputes, so exhausting the budget
      // there still rethrows.
      const bool try_degraded = out_of_attempts && !selection_complete &&
                                recovery.min_bootstrap_quorum < 1.0;
      if (out_of_attempts && !try_degraded) {
        // Give up symmetrically: uneven groups detect a death at different
        // collectives, so a rank that exits here could leave a peer blocked
        // in a comm-wide barrier forever. Revoking wakes it to follow.
        active->revoke();
        throw;
      }
      UOI_LOG_WARN.field("attempts_left", attempts_left)
              .field("phase", selection_complete ? "estimation" : "selection")
          << "rank failure in distributed UoI_LASSO; shrinking and resuming";
      // Survivors converge here (any rank still blocked in a collective of
      // the revoked communicator raises and follows); the shrink is
      // collective over the alive ranks only.
      Comm next = active->shrink();
      if (owned.has_value()) {
        folded += owned->stats();
        folded_rec += owned->recovery_stats();
      }
      owned = std::move(next);
      active = &*owned;
      // Regroup the survivors: as many groups as the entry layout had, as
      // long as each keeps at least one rank. Uneven widths are fine — the
      // remainder-tolerant split spreads the extra ranks — and the chain
      // structure is untouched, so replays stay bit-identical.
      n_groups = std::min(n_groups, active->size());
      // Commit what every survivor already finished, then account the
      // cells that died with the failed rank and must be redistributed.
      merge(*active);
      if (try_degraded) {
        // Decide from the replicated done matrix, so every survivor takes
        // the same branch. The achieved counts are captured BEFORE the
        // lost cells are marked done below.
        degraded_achieved.assign(q, 0.0);
        for (std::size_t k = 0; k < b1; ++k) {
          for (std::size_t j = 0; j < q; ++j) {
            degraded_achieved[j] += done_merged(k, j);
          }
        }
        double min_fraction = 1.0;
        for (std::size_t j = 0; j < q; ++j) {
          min_fraction = std::min(
              min_fraction, degraded_achieved[j] / static_cast<double>(b1));
        }
        if (min_fraction < recovery.min_bootstrap_quorum) {
          active->revoke();
          throw;
        }
        // Abandon the missing cells: record them, then mark them done so
        // the resumed selection pass schedules nothing for them. The
        // checkpoint save is skipped (see `save`), so the abandonment
        // never leaks into a later full-quorum run.
        for (std::size_t k = 0; k < b1; ++k) {
          for (std::size_t j = 0; j < q; ++j) {
            if (done_merged(k, j) == 0.0) {
              out.lost_cells.emplace_back(k, j);
              done_merged(k, j) = 1.0;
            }
          }
        }
        out.degraded = true;
        out.achieved_quorum = min_fraction;
        UOI_LOG_WARN.field("achieved_quorum", min_fraction)
                .field("cells_lost",
                       static_cast<std::uint64_t>(out.lost_cells.size()))
            << "recovery budget exhausted; completing selection degraded "
               "under bootstrap quorum";
      } else {
        if (!selection_complete) {
          std::uint64_t missing = 0;
          for (std::size_t i = 0; i < done_merged.size(); ++i) {
            if (done_merged.data()[i] == 0.0) ++missing;
          }
          folded_rec.cells_recovered += missing;
        }
        save(*active);
      }
    }
  }

  out.selection_counts = counts_merged;

  // Fold every child communicator's traffic into the caller's accounting
  // so Cluster::run_collect_reports sees the consensus Allreduces and the
  // recovery activity.
  if (owned.has_value()) {
    folded += owned->stats();
    folded_rec += owned->recovery_stats();
  }
  comm.mutable_stats() += folded;
  comm.mutable_recovery_stats() += folded_rec;

  // Tracer-derived bucket totals over the phase. Computation is the
  // remainder (clamped at zero against scheduler jitter), so the
  // buckets sum to the phase wall time by construction.
  support::TraceTotals delta = tracer.totals(trace_rank);
  delta -= trace_before;
  out.breakdown.communication_seconds =
      delta.seconds(support::TraceCategory::kCommunication);
  out.breakdown.distribution_seconds =
      delta.seconds(support::TraceCategory::kDistribution);
  out.breakdown.data_io_seconds =
      delta.seconds(support::TraceCategory::kDataIo);
  out.breakdown.gram_seconds = delta.seconds(support::TraceCategory::kGram);
  out.breakdown.computation_seconds =
      std::max(0.0, phase_watch.seconds() -
                        out.breakdown.communication_seconds -
                        out.breakdown.distribution_seconds -
                        out.breakdown.data_io_seconds -
                        out.breakdown.gram_seconds);
  tracer.record("uoi-lasso-computation", support::TraceCategory::kComputation,
                trace_rank, phase_start_seconds,
                out.breakdown.computation_seconds);

  auto& metrics = support::MetricsRegistry::instance();
  metrics.add(trace_rank, "admm.iterations",
              static_cast<double>(admm_iterations));
  metrics.add(trace_rank, "admm.rho_updates",
              static_cast<double>(admm_rho_updates));
  metrics.add(trace_rank, "admm.allreduce_calls",
              static_cast<double>(admm_allreduce_calls));
  metrics.add(trace_rank, "admm.allreduce_bytes",
              static_cast<double>(admm_allreduce_bytes));
  metrics.add(trace_rank, "admm.consensus_rounds",
              static_cast<double>(admm_consensus_rounds));
  metrics.add(trace_rank, "admm.lazy_iterations",
              static_cast<double>(admm_lazy_iterations));
  metrics.add(trace_rank, "admm.consensus_interval",
              static_cast<double>(uoi::solvers::resolve_consensus_interval(
                  options.admm.consensus_interval)));
  metrics.set(trace_rank, "screen.mode",
              static_cast<double>(static_cast<int>(screen_opts.mode)));
  metrics.add(trace_rank, "screen.lambdas",
              static_cast<double>(screen_stats.lambdas));
  metrics.add(trace_rank, "screen.survivors",
              static_cast<double>(screen_stats.survivors));
  metrics.add(trace_rank, "screen.kkt_violations",
              static_cast<double>(screen_stats.kkt_violations));
  metrics.add(trace_rank, "screen.kkt_rounds",
              static_cast<double>(screen_stats.kkt_rounds));
  metrics.add(trace_rank, "screen.gram_cols_saved",
              static_cast<double>(screen_stats.gram_cols_saved));
  metrics.add(trace_rank, "screen.canonical_solves",
              static_cast<double>(screen_stats.canonical_solves));
  metrics.add(trace_rank, "screen.total_columns",
              static_cast<double>(screen_stats.total_columns));
  metrics.add(trace_rank, "solver_cache.hits",
              static_cast<double>(cache_hits));
  metrics.add(trace_rank, "solver_cache.misses",
              static_cast<double>(cache_misses));
  metrics.add(trace_rank, "solver_cache.evictions",
              static_cast<double>(cache_evictions));
  metrics.add(trace_rank, "solver.setup_flops_charged",
              static_cast<double>(setup_flops_charged));
  metrics.add(trace_rank, "solver.setup_flops_amortized",
              static_cast<double>(setup_flops_amortized));
  if (out.degraded) {
    metrics.add(trace_rank, "recovery.degraded", 1.0);
    metrics.add(trace_rank, "recovery.achieved_quorum", out.achieved_quorum);
    metrics.add(trace_rank, "recovery.cells_lost",
                static_cast<double>(out.lost_cells.size()));
  }
  return out;
}

}  // namespace uoi::core
