#include "core/uoi_lasso_distributed.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "solvers/distributed_admm.hpp"
#include "solvers/ols.hpp"
#include "support/error.hpp"
#include "core/distributed_common.hpp"
#include "support/stopwatch.hpp"

namespace uoi::core {

using uoi::linalg::ConstMatrixView;
using uoi::linalg::Matrix;
using uoi::linalg::Vector;
using uoi::sim::Comm;
using uoi::sim::ReduceOp;

namespace {

using detail::block_slice;
using detail::gather_local_block;


/// Distributed evaluation over a task group: each rank scores its own
/// evaluation rows, (sq_err, count) is sum-reduced, and the MSE plus the
/// global evaluation count come back identical on every group rank.
struct DistributedEvaluation {
  double mse;
  double n_eval;
};
DistributedEvaluation distributed_mse(Comm& task_comm,
                                      ConstMatrixView x_local,
                                      std::span<const double> y_local,
                                      std::span<const double> beta) {
  double acc[2] = {0.0, static_cast<double>(x_local.rows())};
  for (std::size_t r = 0; r < x_local.rows(); ++r) {
    double pred = 0.0;
    const auto row = x_local.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) pred += row[c] * beta[c];
    const double err = pred - y_local[r];
    acc[0] += err * err;
  }
  task_comm.allreduce(std::span<double>(acc, 2), ReduceOp::kSum);
  return {acc[1] > 0.0 ? acc[0] / acc[1] : 0.0, acc[1]};
}

}  // namespace

UoiLassoDistributedResult uoi_lasso_distributed(
    Comm& comm, ConstMatrixView x_view, std::span<const double> y_view,
    const UoiLassoOptions& options, const UoiParallelLayout& layout) {
  UOI_CHECK_DIMS(x_view.rows() == y_view.size(),
                 "UoI_LASSO: X rows != y size");
  const int pb = layout.bootstrap_groups;
  const int pl = layout.lambda_groups;
  UOI_CHECK(pb >= 1 && pl >= 1, "layout group counts must be >= 1");
  UOI_CHECK(comm.size() % (pb * pl) == 0,
            "communicator size must be divisible by P_B * P_lambda");
  const int c_ranks = comm.size() / (pb * pl);

  const int task_group = comm.rank() / c_ranks;
  const int task_rank = comm.rank() % c_ranks;
  const int b_group = task_group / pl;
  const int l_group = task_group % pl;
  Comm task_comm = comm.split(task_group, comm.rank());

  const std::size_t n = x_view.rows();
  const std::size_t p = x_view.cols();

  // Intercept handling mirrors the serial driver: deterministic centering
  // replicated on every rank.
  Matrix x_owned = Matrix::from_view(x_view);
  Vector y_owned(y_view.begin(), y_view.end());
  Vector x_means(p, 0.0);
  double y_mean = 0.0;
  if (options.fit_intercept) {
    for (std::size_t r = 0; r < n; ++r) {
      const auto row = x_owned.row(r);
      for (std::size_t c = 0; c < p; ++c) x_means[c] += row[c];
      y_mean += y_owned[r];
    }
    for (auto& m : x_means) m /= static_cast<double>(n);
    y_mean /= static_cast<double>(n);
    for (std::size_t r = 0; r < n; ++r) {
      auto row = x_owned.row(r);
      for (std::size_t c = 0; c < p; ++c) row[c] -= x_means[c];
      y_owned[r] -= y_mean;
    }
  }
  const ConstMatrixView x = x_owned;
  const std::span<const double> y = y_owned;

  UoiLassoDistributedResult out;
  UoiLassoResult& model = out.model;
  model.lambdas = resolve_lambda_grid(options, x, y);
  const std::size_t q = model.lambdas.size();

  support::Stopwatch phase_watch;
  const auto comm_seconds = [&] {
    return comm.stats().collective_seconds() +
           task_comm.stats().collective_seconds();
  };
  double comm_before = comm_seconds();
  std::uint64_t local_flops = 0;

  // ---- Model selection ----
  // counts(j, i): how many bootstraps selected feature i at lambda_j.
  // Every rank of a task group computes identical fits, so only the
  // group's rank 0 contributes its counts to the global sum-reduction.
  Matrix counts(q, p, 0.0);

  for (std::size_t k = 0; k < options.n_selection_bootstraps; ++k) {
    if (static_cast<int>(k % static_cast<std::size_t>(pb)) != b_group) continue;

    support::Stopwatch distr_watch;
    const auto idx = selection_bootstrap_indices(options, n, k);
    Matrix x_local;
    Vector y_local;
    gather_local_block(x, y, idx, block_slice(idx.size(), c_ranks, task_rank),
                       x_local, y_local);
    out.breakdown.distribution_seconds += distr_watch.seconds();

    const uoi::solvers::DistributedLassoAdmmSolver solver(
        task_comm, x_local, y_local, options.admm);
    uoi::solvers::DistributedAdmmResult previous;
    bool have_previous = false;
    for (std::size_t j = 0; j < q; ++j) {
      if (static_cast<int>(j % static_cast<std::size_t>(pl)) != l_group)
        continue;
      auto fit =
          solver.solve(model.lambdas[j], have_previous ? &previous : nullptr);
      local_flops += fit.local_flops;
      if (task_rank == 0) {
        auto row = counts.row(j);
        for (std::size_t i = 0; i < p; ++i) {
          if (std::abs(fit.beta[i]) > options.support_tolerance) {
            row[i] += 1.0;
          }
        }
      }
      previous = std::move(fit);
      have_previous = true;
    }
  }

  // Complete the (possibly soft) intersection across bootstrap groups and
  // share all candidate supports with every rank (eq. 3's Reduce).
  comm.allreduce(std::span<double>(counts.data(), counts.size()),
                 ReduceOp::kSum);
  const auto threshold =
      static_cast<double>(intersection_count_threshold(options));
  model.candidate_supports.reserve(q);
  for (std::size_t j = 0; j < q; ++j) {
    std::vector<std::size_t> selected;
    const auto row = counts.row(j);
    for (std::size_t i = 0; i < p; ++i) {
      if (row[i] >= threshold) selected.push_back(i);
    }
    model.candidate_supports.emplace_back(std::move(selected));
  }

  // ---- Model estimation ----
  const std::size_t b2 = options.n_estimation_bootstraps;
  Matrix losses(b2, q, std::numeric_limits<double>::infinity());
  // betas_by_task[k * q + j] exists only for tasks this group computed.
  std::vector<Vector> computed_betas(b2 * q);

  for (std::size_t k = 0; k < b2; ++k) {
    if (static_cast<int>(k % static_cast<std::size_t>(pb)) != b_group) continue;

    support::Stopwatch distr_watch;
    const auto split = estimation_split(options, n, k);
    Matrix x_train, x_eval;
    Vector y_train, y_eval;
    gather_local_block(x, y, split.train,
                       block_slice(split.train.size(), c_ranks, task_rank),
                       x_train, y_train);
    gather_local_block(x, y, split.eval,
                       block_slice(split.eval.size(), c_ranks, task_rank),
                       x_eval, y_eval);
    out.breakdown.distribution_seconds += distr_watch.seconds();

    for (std::size_t j = 0; j < q; ++j) {
      if (static_cast<int>(j % static_cast<std::size_t>(pl)) != l_group)
        continue;
      const auto& support = model.candidate_supports[j].indices();
      Vector beta(p, 0.0);
      if (!support.empty()) {
        // Distributed OLS: consensus ADMM with lambda = 0 on the support
        // columns (paper §II-C), row-distributed over the task group.
        const Matrix x_train_s = x_train.gather_cols(support);
        auto fit = uoi::solvers::distributed_lasso_admm(
            task_comm, x_train_s, y_train, /*lambda=*/0.0, options.admm);
        local_flops += fit.local_flops;
        for (std::size_t i = 0; i < support.size(); ++i) {
          beta[support[i]] = fit.beta[i];
        }
      }
      const auto eval = distributed_mse(task_comm, x_eval, y_eval, beta);
      losses(k, j) = estimation_score(options.criterion, eval.mse,
                                      eval.n_eval, support.size());
      computed_betas[k * q + j] = std::move(beta);
    }
  }

  // Share all losses; every rank then knows each bootstrap's winner.
  comm.allreduce(std::span<double>(losses.data(), losses.size()),
                 ReduceOp::kMin);

  model.chosen_support_per_bootstrap.assign(b2, 0);
  model.best_loss_per_bootstrap.assign(b2, 0.0);
  // winners(k, :) is assembled globally: the owning group's rank 0
  // deposits its estimate, then one sum-reduction replicates the matrix.
  Matrix winners(b2, p, 0.0);
  for (std::size_t k = 0; k < b2; ++k) {
    std::size_t best_j = 0;
    double best_loss = losses(k, 0);
    for (std::size_t j = 1; j < q; ++j) {
      if (losses(k, j) < best_loss) {
        best_loss = losses(k, j);
        best_j = j;
      }
    }
    model.chosen_support_per_bootstrap[k] = best_j;
    model.best_loss_per_bootstrap[k] = best_loss;
    if (!computed_betas[k * q + best_j].empty() && task_rank == 0) {
      const auto& beta = computed_betas[k * q + best_j];
      std::copy(beta.begin(), beta.end(), winners.row(k).begin());
    }
  }
  comm.allreduce(std::span<double>(winners.data(), winners.size()),
                 ReduceOp::kSum);

  std::vector<Vector> winner_rows;
  winner_rows.reserve(b2);
  for (std::size_t k = 0; k < b2; ++k) {
    const auto row = winners.row(k);
    winner_rows.emplace_back(row.begin(), row.end());
  }
  model.beta = aggregate_estimates(winner_rows, options.aggregation);
  model.support =
      SupportSet::from_beta(model.beta, options.support_tolerance);
  if (options.fit_intercept) {
    double dot = 0.0;
    for (std::size_t i = 0; i < p; ++i) dot += x_means[i] * model.beta[i];
    model.intercept = y_mean - dot;
  }

  std::uint64_t flops = local_flops;
  comm.allreduce(std::span<std::uint64_t>(&flops, 1), ReduceOp::kSum);
  model.total_flops = flops;

  out.breakdown.communication_seconds = comm_seconds() - comm_before;
  out.breakdown.computation_seconds = phase_watch.seconds() -
                                      out.breakdown.communication_seconds -
                                      out.breakdown.distribution_seconds;
  // Fold the task group's traffic into the caller's accounting so
  // Cluster::run_collect_stats sees the consensus Allreduces.
  comm.mutable_stats() += task_comm.stats();
  return out;
}

}  // namespace uoi::core
