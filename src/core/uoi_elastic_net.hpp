#pragma once
// UoI_ElasticNet: the UoI framework over the elastic-net estimator
// (PyUoI's UoI_ElasticNet; the natural extension of Algorithm 1 to
// correlated designs, where the pure LASSO arbitrarily drops members of
// correlated groups).
//
// Selection sweeps a 2-D grid: q lambda values x the given l1_ratio
// values; for each pair, the penalty is
//   lambda * l1_ratio * ||z||_1 + lambda * (1 - l1_ratio) / 2 * ||z||_2^2.
// Supports are intersected across bootstraps per (lambda, l1_ratio) cell;
// estimation is the usual prediction-scored OLS + union averaging, reusing
// the UoI_LASSO machinery.

#include "core/uoi_lasso.hpp"

namespace uoi::core {

struct UoiElasticNetOptions {
  std::size_t n_selection_bootstraps = 20;   ///< B1
  std::size_t n_estimation_bootstraps = 10;  ///< B2
  std::size_t n_lambdas = 12;                ///< q
  std::vector<double> l1_ratios = {1.0, 0.75, 0.5};  ///< alpha mix values
  double lambda_min_ratio = 1e-3;
  double estimation_train_fraction = 0.75;
  double intersection_fraction = 1.0;
  double support_tolerance = 1e-7;
  EstimationAggregation aggregation = EstimationAggregation::kMean;
  EstimationCriterion criterion = EstimationCriterion::kMse;
  std::uint64_t seed = 20200518;
  uoi::solvers::AdmmOptions admm;
  /// Screening along each (bootstrap, l1_ratio) lambda chain; byte-
  /// identical across modes (see UoiLassoOptions::screen).
  uoi::solvers::ScreenOptions screen;
  /// Distributed-driver task placement (see UoiLassoOptions::schedule).
  uoi::sched::SchedulePolicy schedule = uoi::sched::SchedulePolicy::kAuto;
  /// Per-rank solver/gather cache budget in MB for the distributed driver.
  /// < 0 defers to UOI_SOLVER_CACHE_MB (default 256); 0 disables.
  long solver_cache_mb = -1;
};

struct UoiElasticNetResult {
  uoi::linalg::Vector beta;
  SupportSet support;
  std::vector<double> lambdas;              ///< descending
  std::vector<double> l1_ratios;
  /// candidate_supports[r * lambdas.size() + j] is the intersected
  /// support for (l1_ratios[r], lambdas[j]).
  std::vector<SupportSet> candidate_supports;
  std::vector<std::size_t> chosen_support_per_bootstrap;
  std::vector<double> best_loss_per_bootstrap;
};

class UoiElasticNet {
 public:
  explicit UoiElasticNet(UoiElasticNetOptions options = {});

  [[nodiscard]] UoiElasticNetResult fit(uoi::linalg::ConstMatrixView x,
                                        std::span<const double> y) const;

 private:
  UoiElasticNetOptions options_;
};

}  // namespace uoi::core
