#pragma once
// Serial UoI_LASSO (paper Algorithm 1).
//
// Model selection: B1 bootstrap resamples x q lambda values of LASSO-ADMM;
// per-lambda supports are intersected across bootstraps (eq. 3), producing a
// family of candidate supports of decreasing size.
//
// Model estimation: B2 train/evaluation resamples; each candidate support is
// refit by OLS on the training part and scored on the evaluation part; the
// best support per resample wins, and the winners' OLS estimates are
// averaged (the union operation, eq. 4).
//
// The serial driver is the reference implementation the distributed driver
// (uoi_lasso_distributed.hpp) must agree with.

#include <cstdint>
#include <string>
#include <vector>

#include "core/support_set.hpp"
#include "linalg/matrix.hpp"
#include "sched/schedule_policy.hpp"
#include "simcluster/fault.hpp"
#include "solvers/admm_lasso.hpp"
#include "solvers/screening.hpp"

namespace uoi::core {

/// How the winning per-bootstrap estimates are combined (eq. 4's union).
enum class EstimationAggregation {
  kMean,    ///< the paper's averaging (Algorithm 1 line 24)
  kMedian,  ///< elementwise median: robust to occasional bad winners
};

/// How a candidate support is scored on the held-out evaluation split
/// (Algorithm 1 line 19). MSE is the paper's choice; the information
/// criteria additionally penalize support size, trading a little
/// prediction accuracy for parsimony.
enum class EstimationCriterion {
  kMse,  ///< held-out mean squared error (the paper)
  kAic,  ///< n ln(mse) + 2 k
  kBic,  ///< n ln(mse) + k ln(n)
};

/// Scores one (support, evaluation) pair under the chosen criterion.
[[nodiscard]] double estimation_score(EstimationCriterion criterion,
                                      double mse, double n_eval,
                                      std::size_t support_size);

/// Fault-tolerance knobs shared by the distributed drivers. Defaults are
/// conservative: no checkpointing, one shrink-and-resume attempt, and a
/// small bounded retry budget for transient one-sided failures.
struct UoiRecoveryOptions {
  /// How many times a driver may shrink the communicator and resume after
  /// a rank failure before giving up and rethrowing RankFailedError.
  int max_recovery_attempts = 1;
  /// Retry budget for transient one-sided (window) failures; forwarded to
  /// uoi::sim::retry_onesided around Tier-2 distribution and Kronecker
  /// assembly traffic.
  int onesided_max_attempts = 4;
  double onesided_base_backoff_seconds = 50e-6;
  double onesided_backoff_multiplier = 2.0;
  double onesided_backoff_budget_seconds = 0.25;
  /// Decorrelated jitter on the one-sided retry backoff (seeded,
  /// deterministic; off by default so the backoff schedule is unchanged).
  bool onesided_jitter = false;
  std::uint64_t onesided_jitter_seed = 0x6a177e5ULL;
  /// When non-empty, selection progress is persisted here (atomic, fsync'd
  /// rewrite) every `checkpoint_interval` bootstraps and on recovery, and a
  /// compatible checkpoint is resumed from at startup.
  std::string checkpoint_path;
  std::size_t checkpoint_interval = 1;
  /// Quorum-degraded completion: once the recovery-attempt budget is
  /// exhausted during *selection*, the drivers may finish anyway if at
  /// least this fraction of the B1 selection bootstraps completed at every
  /// lambda. Selection-count thresholds are renormalized per lambda to the
  /// achieved denominator, and the result carries a `degraded` record.
  /// 1.0 (the default) disables degraded completion: any unrecoverable
  /// failure rethrows RankFailedError, the seed behavior.
  double min_bootstrap_quorum = 1.0;

  [[nodiscard]] uoi::sim::RetryOptions retry_options() const {
    uoi::sim::RetryOptions retry;
    retry.max_attempts = onesided_max_attempts;
    retry.base_backoff_seconds = onesided_base_backoff_seconds;
    retry.backoff_multiplier = onesided_backoff_multiplier;
    retry.backoff_budget_seconds = onesided_backoff_budget_seconds;
    retry.jitter = onesided_jitter;
    retry.jitter_seed = onesided_jitter_seed;
    return retry;
  }
};

struct UoiLassoOptions {
  std::size_t n_selection_bootstraps = 20;   ///< B1
  std::size_t n_estimation_bootstraps = 10;  ///< B2
  std::size_t n_lambdas = 16;                ///< q (ignored if lambdas set)
  std::vector<double> lambdas;               ///< explicit grid (optional)
  double lambda_min_ratio = 1e-3;            ///< grid spans this * lambda_max
  /// Fraction of each selection bootstrap drawn (with replacement).
  double selection_fraction = 1.0;
  /// Fraction of samples used for training in each estimation resample.
  double estimation_train_fraction = 0.75;
  /// Soft intersection: a feature enters S_j when selected in at least
  /// this fraction of the B1 bootstraps. 1.0 is the paper's strict
  /// intersection (eq. 3); lower values trade false negatives for false
  /// positives on noisy data (PyUoI's `selection_frac`).
  double intersection_fraction = 1.0;
  /// |beta_i| above this counts as selected.
  double support_tolerance = 1e-7;
  /// Use ADMM with lambda=0 for OLS (paper §II-C) instead of the direct
  /// normal-equations solve; both give the same estimates.
  bool ols_via_admm = false;
  /// Estimate an intercept by centering X and y before fitting; the
  /// returned intercept is y_bar - x_bar' beta.
  bool fit_intercept = false;
  EstimationAggregation aggregation = EstimationAggregation::kMean;
  EstimationCriterion criterion = EstimationCriterion::kMse;
  std::uint64_t seed = 20200518;  ///< master seed for all resampling
  uoi::solvers::AdmmOptions admm;
  /// SAFE / strong-rule screening along each selection lambda chain.
  /// kAuto resolves $UOI_SCREEN (default: strong); every mode produces
  /// byte-identical models (screening.hpp's canonical two-stage contract).
  uoi::solvers::ScreenOptions screen;
  /// Fault tolerance (used by the distributed drivers; the serial driver
  /// honors only `checkpoint_path` semantics via fit_with_checkpoint).
  UoiRecoveryOptions recovery;
  /// Task placement for the distributed driver's (bootstrap x lambda-chain)
  /// grid. kAuto resolves $UOI_SCHED_POLICY and defaults to cost_lpt; every
  /// policy produces bit-identical models on identical seeds.
  uoi::sched::SchedulePolicy schedule = uoi::sched::SchedulePolicy::kAuto;
  /// Per-rank solver/gather cache budget in MB for the distributed driver.
  /// < 0 defers to UOI_SOLVER_CACHE_MB (default 256); 0 disables.
  long solver_cache_mb = -1;
};

struct UoiLassoResult {
  uoi::linalg::Vector beta;                ///< final aggregated estimate
  double intercept = 0.0;                  ///< 0 unless fit_intercept
  SupportSet support;                      ///< nonzeros of beta
  std::vector<double> lambdas;             ///< the grid used (descending)
  std::vector<SupportSet> candidate_supports;  ///< S_j per lambda (eq. 3)
  /// Index into candidate_supports chosen by each estimation bootstrap.
  std::vector<std::size_t> chosen_support_per_bootstrap;
  /// Evaluation loss of the winning model per estimation bootstrap.
  std::vector<double> best_loss_per_bootstrap;
  std::uint64_t total_flops = 0;           ///< aggregate solver FLOPs
};

class UoiLasso {
 public:
  explicit UoiLasso(UoiLassoOptions options = {});

  /// Fits y ~ X beta. X is n x p, y has n entries.
  [[nodiscard]] UoiLassoResult fit(uoi::linalg::ConstMatrixView x,
                                   std::span<const double> y) const;

  /// As fit(), but persists selection progress to `checkpoint_path` after
  /// every bootstrap (atomic rewrite) and resumes from a compatible
  /// checkpoint — same options, data shape, and lambda grid — when one
  /// exists. The final result is identical to an uninterrupted fit().
  [[nodiscard]] UoiLassoResult fit_with_checkpoint(
      uoi::linalg::ConstMatrixView x, std::span<const double> y,
      const std::string& checkpoint_path) const;

  /// Fingerprint of everything that influences the selection counts for
  /// this (options, data-shape) pair; exposed for checkpoint tooling.
  [[nodiscard]] std::uint64_t selection_fingerprint(
      std::size_t n, std::size_t p, std::span<const double> lambdas) const;

  [[nodiscard]] const UoiLassoOptions& options() const noexcept {
    return options_;
  }

 private:
  UoiLassoOptions options_;

  [[nodiscard]] UoiLassoResult fit_impl(
      uoi::linalg::ConstMatrixView x, std::span<const double> y,
      const std::string* checkpoint_path) const;
};

/// Deterministic per-task bootstrap index sets; shared with the distributed
/// driver so both produce identical resamples from the same seed.
/// Selection bootstrap k draws floor(n * fraction) indices with replacement.
[[nodiscard]] std::vector<std::size_t> selection_bootstrap_indices(
    const UoiLassoOptions& options, std::size_t n, std::size_t k);

/// Estimation resample k: a disjoint train/evaluation split of [0, n).
struct EstimationSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> eval;
};
[[nodiscard]] EstimationSplit estimation_split(const UoiLassoOptions& options,
                                               std::size_t n, std::size_t k);

/// The lambda grid the drivers use (explicit grid or data-driven).
[[nodiscard]] std::vector<double> resolve_lambda_grid(
    const UoiLassoOptions& options, uoi::linalg::ConstMatrixView x,
    std::span<const double> y);

/// Minimum number of bootstraps that must select a feature for it to enter
/// a candidate support (ceil(intersection_fraction * B1), at least 1).
[[nodiscard]] std::size_t intersection_count_threshold(
    const UoiLassoOptions& options);

/// Combines the winning per-bootstrap estimates (mean or elementwise
/// median). Shared by the serial and distributed drivers.
[[nodiscard]] uoi::linalg::Vector aggregate_estimates(
    const std::vector<uoi::linalg::Vector>& winners,
    EstimationAggregation aggregation);

}  // namespace uoi::core
