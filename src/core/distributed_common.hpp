#pragma once
// Shared helpers for the distributed UoI drivers (internal): the
// P_B x P_lambda x C layout arithmetic and the local row-block gathering
// every driver performs when materializing its share of a resample.

#include <span>

#include "linalg/matrix.hpp"

namespace uoi::core::detail {

/// This rank's slice [begin, end) of a length-m index list split over C.
struct Slice {
  std::size_t begin;
  std::size_t end;
};

inline Slice block_slice(std::size_t m, int c_ranks, int c_rank) {
  const auto c = static_cast<std::size_t>(c_ranks);
  const auto r = static_cast<std::size_t>(c_rank);
  return {m * r / c, m * (r + 1) / c};
}

/// Gathers the rows of `x` (and entries of `y`) listed in idx[begin, end).
inline void gather_local_block(uoi::linalg::ConstMatrixView x,
                               std::span<const double> y,
                               std::span<const std::size_t> idx, Slice slice,
                               uoi::linalg::Matrix& x_out,
                               uoi::linalg::Vector& y_out) {
  const std::size_t m = slice.end - slice.begin;
  x_out.resize(m, x.cols());
  y_out.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t src = idx[slice.begin + i];
    const auto row = x.row(src);
    std::copy(row.begin(), row.end(), x_out.row(i).begin());
    y_out[i] = y[src];
  }
}

/// The three-level layout derived from a communicator rank.
struct TaskLayout {
  int c_ranks;     ///< ADMM cores per task group
  int task_group;  ///< this rank's group id
  int task_rank;   ///< rank within the group
  int b_group;     ///< bootstrap-group index (owns k with k % P_B == b)
  int l_group;     ///< lambda-group index (owns j with j % P_L == l)

  [[nodiscard]] bool owns_bootstrap(std::size_t k, int pb) const {
    return static_cast<int>(k % static_cast<std::size_t>(pb)) == b_group;
  }
  [[nodiscard]] bool owns_lambda(std::size_t j, int pl) const {
    return static_cast<int>(j % static_cast<std::size_t>(pl)) == l_group;
  }
};

inline TaskLayout make_task_layout(int rank, int comm_size, int pb, int pl) {
  TaskLayout out{};
  out.c_ranks = comm_size / (pb * pl);
  out.task_group = rank / out.c_ranks;
  out.task_rank = rank % out.c_ranks;
  out.b_group = out.task_group / pl;
  out.l_group = out.task_group % pl;
  return out;
}

}  // namespace uoi::core::detail
