#pragma once
// Shared helpers for the distributed UoI drivers (internal): the
// P_B x P_lambda x C layout arithmetic and the local row-block gathering
// every driver performs when materializing its share of a resample.

#include <span>

#include "linalg/matrix.hpp"

namespace uoi::core::detail {

/// This rank's slice [begin, end) of a length-m index list split over C.
struct Slice {
  std::size_t begin;
  std::size_t end;
};

inline Slice block_slice(std::size_t m, int c_ranks, int c_rank) {
  const auto c = static_cast<std::size_t>(c_ranks);
  const auto r = static_cast<std::size_t>(c_rank);
  return {m * r / c, m * (r + 1) / c};
}

/// Gathers the rows of `x` (and entries of `y`) listed in idx[begin, end).
inline void gather_local_block(uoi::linalg::ConstMatrixView x,
                               std::span<const double> y,
                               std::span<const std::size_t> idx, Slice slice,
                               uoi::linalg::Matrix& x_out,
                               uoi::linalg::Vector& y_out) {
  const std::size_t m = slice.end - slice.begin;
  x_out.resize(m, x.cols());
  y_out.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t src = idx[slice.begin + i];
    const auto row = x.row(src);
    std::copy(row.begin(), row.end(), x_out.row(i).begin());
    y_out[i] = y[src];
  }
}

/// The three-level layout derived from a communicator rank.
struct TaskLayout {
  int n_groups;    ///< total task groups (P_B * P_lambda)
  int c_ranks;     ///< ADMM cores in THIS rank's group
  int task_group;  ///< this rank's group id
  int task_rank;   ///< rank within the group
  int b_group;     ///< bootstrap-group index (owns k with k % P_B == b)
  int l_group;     ///< lambda-group index (owns j with j % P_L == l)

  [[nodiscard]] bool owns_bootstrap(std::size_t k, int pb) const {
    return static_cast<int>(k % static_cast<std::size_t>(pb)) == b_group;
  }
  [[nodiscard]] bool owns_lambda(std::size_t j, int pl) const {
    return static_cast<int>(j % static_cast<std::size_t>(pl)) == l_group;
  }
};

/// Remainder-tolerant group split: G = pb * pl contiguous groups; the first
/// `comm_size % G` groups get one extra rank. When G divides comm_size this
/// reproduces the historical even split exactly. Requires comm_size >= G so
/// every group has at least one rank (prime sizes no longer degenerate to a
/// single group — they yield G groups of uneven width).
inline TaskLayout make_task_layout(int rank, int comm_size, int pb, int pl) {
  TaskLayout out{};
  out.n_groups = pb * pl;
  const int base = comm_size / out.n_groups;
  const int extra = comm_size % out.n_groups;
  const int wide_span = extra * (base + 1);  // ranks covered by wide groups
  if (rank < wide_span) {
    out.c_ranks = base + 1;
    out.task_group = rank / (base + 1);
    out.task_rank = rank % (base + 1);
  } else {
    out.c_ranks = base;
    out.task_group = extra + (rank - wide_span) / base;
    out.task_rank = (rank - wide_span) % base;
  }
  out.b_group = out.task_group / pl;
  out.l_group = out.task_group % pl;
  return out;
}

}  // namespace uoi::core::detail
