#pragma once
// UoI_Logistic: the UoI framework over L1-regularized logistic regression
// (PyUoI's UoI_Logistic). Same two-pass structure as Algorithm 1:
// bootstrapped l1-logistic fits intersected per lambda, then unpenalized
// IRLS refits on candidate supports scored by held-out log loss, and a
// union-by-aggregation of the winners.

#include "core/uoi_lasso.hpp"
#include "solvers/logistic.hpp"

namespace uoi::core {

struct UoiLogisticOptions {
  std::size_t n_selection_bootstraps = 20;   ///< B1
  std::size_t n_estimation_bootstraps = 10;  ///< B2
  std::size_t n_lambdas = 16;                ///< q
  double lambda_min_ratio = 1e-3;
  double estimation_train_fraction = 0.75;
  double intersection_fraction = 1.0;
  double support_tolerance = 1e-7;
  EstimationAggregation aggregation = EstimationAggregation::kMean;
  std::uint64_t seed = 20200518;
  uoi::solvers::LogisticOptions solver;
  /// Distributed-driver task placement (see UoiLassoOptions::schedule).
  uoi::sched::SchedulePolicy schedule = uoi::sched::SchedulePolicy::kAuto;
  /// Per-rank gather cache budget in MB for the distributed driver.
  /// < 0 defers to UOI_SOLVER_CACHE_MB (default 256); 0 disables.
  long solver_cache_mb = -1;
  /// Consensus interval k for the distributed l1-logistic ADMM fits
  /// (see AdmmOptions::consensus_interval). 0 defers to
  /// $UOI_CONSENSUS_INTERVAL (default 1 = consensus every iteration).
  std::size_t consensus_interval = 0;
};

struct UoiLogisticResult {
  uoi::linalg::Vector beta;
  double intercept = 0.0;
  SupportSet support;
  std::vector<double> lambdas;  ///< descending
  std::vector<SupportSet> candidate_supports;
  std::vector<std::size_t> chosen_support_per_bootstrap;
  std::vector<double> best_loss_per_bootstrap;  ///< held-out log loss
};

class UoiLogistic {
 public:
  explicit UoiLogistic(UoiLogisticOptions options = {});

  /// Fits y in {0, 1} ~ Bernoulli(sigmoid(X beta + b)).
  [[nodiscard]] UoiLogisticResult fit(uoi::linalg::ConstMatrixView x,
                                      std::span<const double> y) const;

 private:
  UoiLogisticOptions options_;
};

}  // namespace uoi::core
