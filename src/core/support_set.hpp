#pragma once
// Support sets (the sets of selected feature indices) and the intersection /
// union algebra at the heart of UoI (paper eqs. 3-4):
//
//   selection:  S_j = INTERSECT_k S_j^k   (feature compression)
//   estimation: S*  = UNION_l S_{j_l}     (feature expansion via averaging)

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace uoi::core {

/// An immutable sorted set of selected feature indices.
class SupportSet {
 public:
  SupportSet() = default;

  /// From arbitrary indices (sorted + deduplicated internally).
  explicit SupportSet(std::vector<std::size_t> indices);

  /// Indices i with |beta_i| > tolerance.
  static SupportSet from_beta(std::span<const double> beta,
                              double tolerance = 0.0);

  /// The full support {0, ..., p-1}.
  static SupportSet full(std::size_t p);

  [[nodiscard]] const std::vector<std::size_t>& indices() const noexcept {
    return indices_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return indices_.size(); }
  [[nodiscard]] bool empty() const noexcept { return indices_.empty(); }
  [[nodiscard]] bool contains(std::size_t i) const;

  /// Set intersection (eq. 3's Reduce step).
  [[nodiscard]] SupportSet intersect(const SupportSet& other) const;

  /// Set union (eq. 4's Reduce step).
  [[nodiscard]] SupportSet unite(const SupportSet& other) const;

  [[nodiscard]] bool is_subset_of(const SupportSet& other) const;

  /// 0/1 indicator of length p (used to reduce supports across ranks with
  /// an elementwise-min Allreduce: AND == min over {0,1}).
  [[nodiscard]] std::vector<double> indicator(std::size_t p) const;
  static SupportSet from_indicator(std::span<const double> indicator,
                                   double threshold = 0.5);

  [[nodiscard]] std::string to_string() const;

  bool operator==(const SupportSet& other) const = default;

 private:
  std::vector<std::size_t> indices_;
};

/// Intersection over a family of supports; the empty family yields the
/// full support over p features (neutral element of intersection).
[[nodiscard]] SupportSet intersect_all(std::span<const SupportSet> supports,
                                       std::size_t p);

/// Union over a family of supports (empty family -> empty support).
[[nodiscard]] SupportSet unite_all(std::span<const SupportSet> supports);

/// Deduplicates a family of supports, preserving first-occurrence order.
[[nodiscard]] std::vector<SupportSet> dedupe_supports(
    std::vector<SupportSet> supports);

}  // namespace uoi::core
