#include "core/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace uoi::core {

namespace {
constexpr const char* kMagic = "uoi-lasso-checkpoint v1";

[[noreturn]] void malformed(const std::string& detail) {
  throw uoi::support::IoError("malformed checkpoint: " + detail);
}
}  // namespace

FingerprintBuilder& FingerprintBuilder::add(std::uint64_t value) {
  // FNV-1a over the 8 bytes.
  for (int b = 0; b < 8; ++b) {
    state_ ^= (value >> (8 * b)) & 0xffULL;
    state_ *= 0x100000001b3ULL;
  }
  return *this;
}

FingerprintBuilder& FingerprintBuilder::add(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return add(bits);
}

std::string SelectionCheckpoint::to_text() const {
  std::ostringstream out;
  out.precision(17);
  out << kMagic << "\n";
  out << "fingerprint " << fingerprint << "\n";
  out << "completed " << completed_bootstraps << "\n";
  out << "q " << lambdas.size() << " p " << counts.cols() << "\n";
  out << "lambdas";
  for (const double l : lambdas) out << " " << l;
  out << "\n";
  for (std::size_t j = 0; j < counts.rows(); ++j) {
    const auto row = counts.row(j);
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << " ";
      out << row[i];
    }
    out << "\n";
  }
  return out.str();
}

SelectionCheckpoint SelectionCheckpoint::from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) malformed("magic line");

  SelectionCheckpoint out;
  std::string keyword;
  in >> keyword >> out.fingerprint;
  if (!in || keyword != "fingerprint") malformed("fingerprint");
  in >> keyword >> out.completed_bootstraps;
  if (!in || keyword != "completed") malformed("completed");
  std::size_t q = 0, p = 0;
  in >> keyword >> q;
  if (!in || keyword != "q") malformed("q");
  in >> keyword >> p;
  if (!in || keyword != "p") malformed("p");
  in >> keyword;
  if (!in || keyword != "lambdas") malformed("lambdas");
  out.lambdas.resize(q);
  for (auto& l : out.lambdas) in >> l;
  out.counts.resize(q, p);
  for (std::size_t j = 0; j < q; ++j) {
    for (std::size_t i = 0; i < p; ++i) in >> out.counts(j, i);
  }
  if (!in) malformed("truncated payload");
  return out;
}

void save_checkpoint(const std::string& path,
                     const SelectionCheckpoint& checkpoint) {
  const std::string temp = path + ".tmp";
  {
    std::ofstream f(temp, std::ios::trunc);
    if (!f) throw uoi::support::IoError("cannot open for writing: " + temp);
    f << checkpoint.to_text();
    if (!f) throw uoi::support::IoError("short write to " + temp);
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    throw uoi::support::IoError("cannot rename checkpoint into place: " +
                                ec.message());
  }
}

std::optional<SelectionCheckpoint> try_load_checkpoint(
    const std::string& path, std::uint64_t expected_fingerprint) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  std::ostringstream buffer;
  buffer << f.rdbuf();
  try {
    auto checkpoint = SelectionCheckpoint::from_text(buffer.str());
    if (checkpoint.fingerprint != expected_fingerprint) return std::nullopt;
    return checkpoint;
  } catch (const uoi::support::IoError&) {
    return std::nullopt;  // corrupt checkpoint: restart from scratch
  }
}

}  // namespace uoi::core
