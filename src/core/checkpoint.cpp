#include "core/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "support/error.hpp"

namespace uoi::core {

namespace {
constexpr const char* kMagic = "uoi-lasso-checkpoint v1";

[[noreturn]] void malformed(const std::string& detail) {
  throw uoi::support::IoError("malformed checkpoint: " + detail);
}
}  // namespace

FingerprintBuilder& FingerprintBuilder::add(std::uint64_t value) {
  // FNV-1a over the 8 bytes.
  for (int b = 0; b < 8; ++b) {
    state_ ^= (value >> (8 * b)) & 0xffULL;
    state_ *= 0x100000001b3ULL;
  }
  return *this;
}

FingerprintBuilder& FingerprintBuilder::add(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return add(bits);
}

std::size_t SelectionCheckpoint::completed_prefix() const {
  if (done.rows() == 0) return completed_bootstraps;
  for (std::size_t k = 0; k < done.rows(); ++k) {
    for (std::size_t j = 0; j < done.cols(); ++j) {
      if (done(k, j) == 0.0) return k;
    }
  }
  return done.rows();
}

bool SelectionCheckpoint::is_prefix_consistent() const {
  if (done.rows() == 0) return true;
  for (std::size_t k = 0; k < done.rows(); ++k) {
    for (std::size_t j = 0; j < done.cols(); ++j) {
      const bool expected = k < completed_bootstraps;
      if ((done(k, j) != 0.0) != expected) return false;
    }
  }
  return true;
}

std::string SelectionCheckpoint::to_text() const {
  std::ostringstream out;
  out.precision(17);
  out << kMagic << "\n";
  out << "fingerprint " << fingerprint << "\n";
  out << "completed " << completed_bootstraps << "\n";
  out << "q " << lambdas.size() << " p " << counts.cols() << "\n";
  out << "lambdas";
  for (const double l : lambdas) out << " " << l;
  out << "\n";
  for (std::size_t j = 0; j < counts.rows(); ++j) {
    const auto row = counts.row(j);
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << " ";
      out << row[i];
    }
    out << "\n";
  }
  if (done.rows() > 0) {
    out << "done " << done.rows() << "\n";
    for (std::size_t k = 0; k < done.rows(); ++k) {
      for (std::size_t j = 0; j < done.cols(); ++j) {
        if (j != 0) out << " ";
        out << (done(k, j) != 0.0 ? 1 : 0);
      }
      out << "\n";
    }
  }
  return out.str();
}

SelectionCheckpoint SelectionCheckpoint::from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) malformed("magic line");

  SelectionCheckpoint out;
  std::string keyword;
  in >> keyword >> out.fingerprint;
  if (!in || keyword != "fingerprint") malformed("fingerprint");
  in >> keyword >> out.completed_bootstraps;
  if (!in || keyword != "completed") malformed("completed");
  std::size_t q = 0, p = 0;
  in >> keyword >> q;
  if (!in || keyword != "q") malformed("q");
  in >> keyword >> p;
  if (!in || keyword != "p") malformed("p");
  in >> keyword;
  if (!in || keyword != "lambdas") malformed("lambdas");
  out.lambdas.resize(q);
  for (auto& l : out.lambdas) in >> l;
  out.counts.resize(q, p);
  for (std::size_t j = 0; j < q; ++j) {
    for (std::size_t i = 0; i < p; ++i) in >> out.counts(j, i);
  }
  if (!in) malformed("truncated payload");
  // Optional trailing cell-completion section (absent in v1 files).
  if (in >> keyword) {
    if (keyword != "done") malformed("unexpected trailing section");
    std::size_t b1 = 0;
    in >> b1;
    if (!in) malformed("done header");
    out.done.resize(b1, q);
    for (std::size_t k = 0; k < b1; ++k) {
      for (std::size_t j = 0; j < q; ++j) in >> out.done(k, j);
    }
    if (!in) malformed("truncated done section");
  }
  return out;
}

void save_checkpoint(const std::string& path,
                     const SelectionCheckpoint& checkpoint) {
  const std::string temp = path + ".tmp";
  const std::string text = checkpoint.to_text();
#if defined(__unix__) || defined(__APPLE__)
  // Write + flush + fsync the temp file so its bytes are on stable
  // storage before the rename makes them visible under `path`.
  {
    std::FILE* f = std::fopen(temp.c_str(), "wb");
    if (f == nullptr) {
      throw uoi::support::IoError("cannot open for writing: " + temp);
    }
    const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
    const bool flushed = std::fflush(f) == 0;
    const bool synced = ::fsync(::fileno(f)) == 0;
    const bool closed = std::fclose(f) == 0;
    if (written != text.size() || !flushed || !synced || !closed) {
      std::remove(temp.c_str());
      throw uoi::support::IoError("short or unsynced write to " + temp);
    }
  }
#else
  {
    std::ofstream f(temp, std::ios::trunc | std::ios::binary);
    if (!f) throw uoi::support::IoError("cannot open for writing: " + temp);
    f << text;
    f.flush();
    if (!f) throw uoi::support::IoError("short write to " + temp);
  }
#endif
  // Verify the bytes that actually landed before clobbering a good
  // checkpoint: a truncated or corrupted temp must never win the rename.
  {
    std::ifstream f(temp, std::ios::binary);
    std::ostringstream buffer;
    buffer << f.rdbuf();
    if (!f || buffer.str() != text) {
      std::remove(temp.c_str());
      throw uoi::support::IoError("checkpoint verification failed for " +
                                  temp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    throw uoi::support::IoError("cannot rename checkpoint into place: " +
                                ec.message());
  }
#if defined(__unix__) || defined(__APPLE__)
  // Best effort: persist the rename itself by syncing the directory.
  const auto parent = std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
#endif
}

std::optional<SelectionCheckpoint> try_load_checkpoint(
    const std::string& path, std::uint64_t expected_fingerprint) {
  std::ifstream f(path);
  if (!f) return std::nullopt;
  std::ostringstream buffer;
  buffer << f.rdbuf();
  try {
    auto checkpoint = SelectionCheckpoint::from_text(buffer.str());
    if (checkpoint.fingerprint != expected_fingerprint) return std::nullopt;
    return checkpoint;
  } catch (const uoi::support::IoError&) {
    return std::nullopt;  // corrupt checkpoint: restart from scratch
  }
}

}  // namespace uoi::core
