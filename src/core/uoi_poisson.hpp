#pragma once
// UoI_Poisson: the UoI framework over L1-penalized Poisson regression
// (PyUoI's UoI_Poisson) — count responses, log link. The natural model
// for the paper's neuroscience application: per-neuron spike counts
// regressed on the population's lagged activity give a Poisson Granger
// network without the sqrt-transform surrogate.

#include "core/uoi_lasso.hpp"
#include "solvers/poisson.hpp"

namespace uoi::core {

struct UoiPoissonOptions {
  std::size_t n_selection_bootstraps = 20;   ///< B1
  std::size_t n_estimation_bootstraps = 10;  ///< B2
  std::size_t n_lambdas = 16;                ///< q
  double lambda_min_ratio = 1e-3;
  double estimation_train_fraction = 0.75;
  double intersection_fraction = 1.0;
  double support_tolerance = 1e-7;
  EstimationAggregation aggregation = EstimationAggregation::kMean;
  std::uint64_t seed = 20200518;
  uoi::solvers::PoissonOptions solver;
};

struct UoiPoissonResult {
  uoi::linalg::Vector beta;
  double intercept = 0.0;
  SupportSet support;
  std::vector<double> lambdas;                 ///< descending
  std::vector<SupportSet> candidate_supports;
  std::vector<std::size_t> chosen_support_per_bootstrap;
  std::vector<double> best_loss_per_bootstrap;  ///< held-out deviance
};

class UoiPoisson {
 public:
  explicit UoiPoisson(UoiPoissonOptions options = {});

  /// Fits y ~ Poisson(exp(X beta + b)); y must hold non-negative counts.
  [[nodiscard]] UoiPoissonResult fit(uoi::linalg::ConstMatrixView x,
                                     std::span<const double> y) const;

 private:
  UoiPoissonOptions options_;
};

}  // namespace uoi::core
