#pragma once
// Checkpoint/restart for the UoI selection pass.
//
// On a large machine the selection phase (B1 bootstraps x q lambda fits)
// is hours of work; a node failure should not discard it. Because the
// resampling streams are deterministic functions of (seed, k), selection
// can resume at any bootstrap boundary given the accumulated selection
// counts. The checkpoint stores those counts plus a fingerprint of every
// option that influences them — a mismatched fingerprint means the file
// belongs to a different run and is ignored.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace uoi::core {

struct SelectionCheckpoint {
  std::uint64_t fingerprint = 0;
  std::size_t completed_bootstraps = 0;
  std::vector<double> lambdas;           ///< descending grid (q entries)
  uoi::linalg::Matrix counts;            ///< q x p selection counts

  /// Serializes to the versioned text format.
  [[nodiscard]] std::string to_text() const;

  /// Parses; throws uoi::support::IoError on malformed input.
  static SelectionCheckpoint from_text(const std::string& text);
};

/// Writes atomically (temp file + rename) so a crash mid-write never
/// corrupts an existing checkpoint.
void save_checkpoint(const std::string& path,
                     const SelectionCheckpoint& checkpoint);

/// Loads a checkpoint if the file exists, parses, and matches
/// `expected_fingerprint`; otherwise returns nullopt (a missing or
/// foreign checkpoint simply restarts from scratch).
[[nodiscard]] std::optional<SelectionCheckpoint> try_load_checkpoint(
    const std::string& path, std::uint64_t expected_fingerprint);

/// Order-sensitive FNV-style fingerprint of the run configuration.
class FingerprintBuilder {
 public:
  FingerprintBuilder& add(std::uint64_t value);
  FingerprintBuilder& add(double value);
  [[nodiscard]] std::uint64_t value() const noexcept { return state_; }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ULL;
};

}  // namespace uoi::core
