#pragma once
// Checkpoint/restart for the UoI selection pass.
//
// On a large machine the selection phase (B1 bootstraps x q lambda fits)
// is hours of work; a node failure should not discard it. Because the
// resampling streams are deterministic functions of (seed, k), selection
// can resume at any bootstrap boundary given the accumulated selection
// counts. The checkpoint stores those counts plus a fingerprint of every
// option that influences them — a mismatched fingerprint means the file
// belongs to a different run and is ignored.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace uoi::core {

struct SelectionCheckpoint {
  std::uint64_t fingerprint = 0;
  std::size_t completed_bootstraps = 0;
  std::vector<double> lambdas;           ///< descending grid (q entries)
  uoi::linalg::Matrix counts;            ///< q x p selection counts

  /// Optional cell-completion map (B1 x q of 0/1) written by the
  /// fail-recoverable distributed driver: after a shrink, completed
  /// (bootstrap, lambda) cells are scattered rather than a bootstrap
  /// prefix, and `counts` holds exactly the done cells' contributions.
  /// Empty means prefix semantics: the first `completed_bootstraps`
  /// bootstraps are fully counted. Files without this section parse with
  /// `done` empty, so v1 checkpoints stay readable.
  uoi::linalg::Matrix done;

  /// Longest run of leading bootstraps fully covered by this checkpoint:
  /// `completed_bootstraps` under prefix semantics, else the longest
  /// all-done prefix of `done`'s rows (for consumers that cannot resume
  /// from a scattered cell map).
  [[nodiscard]] std::size_t completed_prefix() const;

  /// True when the checkpoint's coverage is exactly the first
  /// `completed_bootstraps` bootstraps (no scattered cells): the condition
  /// under which a prefix-resuming consumer (the serial driver) may trust
  /// `counts`. Trivially true when `done` is absent.
  [[nodiscard]] bool is_prefix_consistent() const;

  /// Serializes to the versioned text format.
  [[nodiscard]] std::string to_text() const;

  /// Parses; throws uoi::support::IoError on malformed input.
  static SelectionCheckpoint from_text(const std::string& text);
};

/// Writes atomically and durably: the temp file is flushed and fsync'd,
/// read back and verified byte-for-byte, and only then renamed into
/// place — a crash (or lying page cache) mid-write never corrupts an
/// existing checkpoint with a short or empty file.
void save_checkpoint(const std::string& path,
                     const SelectionCheckpoint& checkpoint);

/// Loads a checkpoint if the file exists, parses, and matches
/// `expected_fingerprint`; otherwise returns nullopt (a missing or
/// foreign checkpoint simply restarts from scratch).
[[nodiscard]] std::optional<SelectionCheckpoint> try_load_checkpoint(
    const std::string& path, std::uint64_t expected_fingerprint);

/// Order-sensitive FNV-style fingerprint of the run configuration.
class FingerprintBuilder {
 public:
  FingerprintBuilder& add(std::uint64_t value);
  FingerprintBuilder& add(double value);
  [[nodiscard]] std::uint64_t value() const noexcept { return state_; }

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ULL;
};

}  // namespace uoi::core
