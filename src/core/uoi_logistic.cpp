#include "core/uoi_logistic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "solvers/lambda_grid.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace uoi::core {

using uoi::linalg::ConstMatrixView;
using uoi::linalg::Matrix;
using uoi::linalg::Vector;

namespace {

UoiLassoOptions as_lasso_options(const UoiLogisticOptions& options) {
  UoiLassoOptions out;
  out.n_selection_bootstraps = options.n_selection_bootstraps;
  out.n_estimation_bootstraps = options.n_estimation_bootstraps;
  out.estimation_train_fraction = options.estimation_train_fraction;
  out.intersection_fraction = options.intersection_fraction;
  out.seed = options.seed;
  return out;
}

Vector gather(std::span<const double> y, std::span<const std::size_t> idx) {
  Vector out(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) out[i] = y[idx[i]];
  return out;
}

}  // namespace

UoiLogistic::UoiLogistic(UoiLogisticOptions options)
    : options_(std::move(options)) {
  UOI_CHECK(options_.n_selection_bootstraps >= 1, "B1 must be >= 1");
  UOI_CHECK(options_.n_estimation_bootstraps >= 1, "B2 must be >= 1");
}

UoiLogisticResult UoiLogistic::fit(ConstMatrixView x,
                                   std::span<const double> y) const {
  UOI_CHECK_DIMS(x.rows() == y.size(), "UoI_Logistic: X rows != y size");
  for (const double v : y) {
    UOI_CHECK(v == 0.0 || v == 1.0, "labels must be 0 or 1");
  }
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  const Matrix x_owned = Matrix::from_view(x);
  const UoiLassoOptions lasso_options = as_lasso_options(options_);

  UoiLogisticResult result;
  const double hi = uoi::solvers::logistic_lambda_max(x, y);
  UOI_CHECK(hi > 0.0, "degenerate labels: lambda_max is zero");
  result.lambdas = uoi::solvers::log_spaced_lambdas(
      hi, options_.lambda_min_ratio, options_.n_lambdas);
  const std::size_t q = result.lambdas.size();

  // ---- selection ----
  Matrix counts(q, p, 0.0);
  for (std::size_t k = 0; k < options_.n_selection_bootstraps; ++k) {
    const auto idx = selection_bootstrap_indices(lasso_options, n, k);
    const Matrix x_boot = x_owned.gather_rows(idx);
    const Vector y_boot = gather(y, idx);
    for (std::size_t j = 0; j < q; ++j) {
      const auto fit = uoi::solvers::logistic_lasso(
          x_boot, y_boot, result.lambdas[j], options_.solver);
      auto row = counts.row(j);
      for (std::size_t i = 0; i < p; ++i) {
        if (std::abs(fit.beta[i]) > options_.support_tolerance) row[i] += 1.0;
      }
    }
  }
  const double threshold = std::max(
      1.0, std::ceil(options_.intersection_fraction *
                         static_cast<double>(options_.n_selection_bootstraps) -
                     1e-12));
  result.candidate_supports.reserve(q);
  for (std::size_t j = 0; j < q; ++j) {
    std::vector<std::size_t> selected;
    const auto row = counts.row(j);
    for (std::size_t i = 0; i < p; ++i) {
      if (row[i] >= threshold) selected.push_back(i);
    }
    result.candidate_supports.emplace_back(std::move(selected));
  }

  // ---- estimation ----
  const std::size_t b2 = options_.n_estimation_bootstraps;
  result.chosen_support_per_bootstrap.assign(b2, 0);
  result.best_loss_per_bootstrap.assign(
      b2, std::numeric_limits<double>::infinity());
  std::vector<Vector> winners;
  winners.reserve(b2);
  Vector intercepts;
  intercepts.reserve(b2);

  for (std::size_t k = 0; k < b2; ++k) {
    const auto split = estimation_split(lasso_options, n, k);
    const Matrix x_train = x_owned.gather_rows(split.train);
    const Matrix x_eval = x_owned.gather_rows(split.eval);
    const Vector y_train = gather(y, split.train);
    const Vector y_eval = gather(y, split.eval);

    Vector best_beta(p, 0.0);
    double best_intercept = 0.0;
    for (std::size_t j = 0; j < q; ++j) {
      const auto& support = result.candidate_supports[j].indices();
      const auto fit = uoi::solvers::logistic_irls_on_support(
          x_train, y_train, support, options_.solver);
      const double loss = uoi::solvers::logistic_log_loss(
          x_eval, y_eval, fit.beta, fit.intercept);
      if (loss < result.best_loss_per_bootstrap[k]) {
        result.best_loss_per_bootstrap[k] = loss;
        result.chosen_support_per_bootstrap[k] = j;
        best_beta = fit.beta;
        best_intercept = fit.intercept;
      }
    }
    winners.push_back(std::move(best_beta));
    intercepts.push_back(best_intercept);
  }

  result.beta = aggregate_estimates(winners, options_.aggregation);
  for (const double b : intercepts) result.intercept += b;
  result.intercept /= static_cast<double>(b2);
  result.support =
      SupportSet::from_beta(result.beta, options_.support_tolerance);
  return result;
}

}  // namespace uoi::core
