#include "core/uoi_elastic_net_distributed.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "core/distributed_common.hpp"
#include "sched/cost_model.hpp"
#include "sched/scheduler.hpp"
#include "sched/task_grid.hpp"
#include "solvers/distributed_admm.hpp"
#include "solvers/lambda_grid.hpp"
#include "solvers/ols.hpp"
#include "solvers/screening.hpp"
#include "solvers/solver_cache.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace uoi::core {

using uoi::linalg::ConstMatrixView;
using uoi::linalg::Matrix;
using uoi::linalg::Vector;
using uoi::sim::Comm;
using uoi::sim::ReduceOp;

namespace {

using detail::block_slice;
using detail::gather_local_block;

UoiLassoOptions resample_options(const UoiElasticNetOptions& options) {
  UoiLassoOptions out;
  out.n_selection_bootstraps = options.n_selection_bootstraps;
  out.n_estimation_bootstraps = options.n_estimation_bootstraps;
  out.estimation_train_fraction = options.estimation_train_fraction;
  out.seed = options.seed;
  return out;
}

// Cached per-bootstrap state (see uoi_lasso_distributed.cpp): `bytes()`
// must depend on the GLOBAL problem shape only, because a miss runs the
// collective solver constructor and divergent hit/miss decisions across a
// task group would deadlock it.
struct EnetSelectionEntry {
  Matrix x_local;
  Vector y_local;
  /// Replicated screening quantities shared by every chain of the
  /// bootstrap (one collective build; see screening.hpp).
  uoi::solvers::DistributedScreenInputs screen_inputs;
  /// Full-p factorization; built only in off mode.
  std::optional<uoi::solvers::DistributedLassoAdmmSolver> solver;
  std::size_t bytes_estimate = 0;
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_estimate; }
};

struct EnetEstimationEntry {
  Matrix x_train, x_eval;
  Vector y_train, y_eval;
  std::size_t bytes_estimate = 0;
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_estimate; }
};

}  // namespace

UoiElasticNetDistributedResult uoi_elastic_net_distributed(
    Comm& comm, ConstMatrixView x, std::span<const double> y,
    const UoiElasticNetOptions& options, const UoiParallelLayout& layout) {
  UOI_CHECK_DIMS(x.rows() == y.size(), "UoI_ElasticNet: X rows != y size");
  const int pb = layout.bootstrap_groups;
  const int pl = layout.lambda_groups;
  UOI_CHECK(pb >= 1 && pl >= 1, "layout group counts must be >= 1");
  const int n_groups = pb * pl;
  UOI_CHECK(comm.size() >= n_groups,
            "communicator smaller than P_B * P_lambda task groups");
  const auto task =
      detail::make_task_layout(comm.rank(), comm.size(), pb, pl);
  Comm task_comm = comm.split(task.task_group, comm.rank());
  const sched::GroupInfo group_info{n_groups, task.task_group, task.task_rank,
                                    pb, pl};
  const int trace_rank = comm.global_rank();

  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  const Matrix x_owned = Matrix::from_view(x);
  const UoiLassoOptions resampling = resample_options(options);

  UoiElasticNetDistributedResult out;
  UoiElasticNetResult& model = out.model;
  model.l1_ratios = options.l1_ratios;
  model.lambdas = uoi::solvers::lambda_grid_for(
      x, y, options.n_lambdas, options.lambda_min_ratio);
  const std::size_t q = model.lambdas.size();
  const std::size_t n_ratios = model.l1_ratios.size();
  const std::size_t n_cells = q * n_ratios;
  const std::size_t b1 = options.n_selection_bootstraps;
  const std::size_t b2 = options.n_estimation_bootstraps;

  // ---- Scheduler state over the flattened (ratio, lambda) grid ----
  // A chain owns {cell : cell % n_chains == chain}; the per-cell penalty
  // weight is keyed by the cell's lambda so LPT sees the real skew.
  const sched::SchedulePolicy policy = sched::resolve_policy(options.schedule);
  const std::size_t n_chains = std::max<std::size_t>(
      1, std::min(static_cast<std::size_t>(pl), n_cells));
  const sched::TaskGrid selection_grid(b1, n_cells, n_chains, options.seed);
  const sched::TaskGrid estimation_grid(b2, n_cells, n_chains,
                                        options.seed + 1);
  // Live-telemetry progress denominator; one rank owns it so the
  // cross-rank sum counts the grid once.
  if (comm.rank() == 0) {
    support::MetricsRegistry::instance().set(
        trace_rank, "progress.cells_total",
        static_cast<double>(selection_grid.n_cells() +
                            estimation_grid.n_cells()));
  }
  std::vector<double> cell_lambdas(n_cells, 0.0);
  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    cell_lambdas[cell] = model.lambdas[cell % q];
  }
  const double pass_seconds_seed = sched::lasso_pass_seconds_estimate(
      n, p, b1, b2, n_cells, options.admm.max_iterations, comm.size());
  const std::vector<double> selection_costs =
      sched::seeded_costs(selection_grid, cell_lambdas, pass_seconds_seed);
  std::vector<double> estimation_costs =
      sched::seeded_costs(estimation_grid, cell_lambdas, pass_seconds_seed);
  const auto widths = sched::group_widths(comm.size(), n_groups);
  const uoi::sim::RetryOptions retry;
  const std::size_t cache_budget =
      uoi::solvers::resolve_solver_cache_bytes(options.solver_cache_mb);
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t setup_flops_charged = 0;
  std::uint64_t setup_flops_amortized = 0;
  std::uint64_t admm_iterations = 0;
  std::uint64_t admm_rho_updates = 0;
  std::uint64_t admm_allreduce_calls = 0;
  std::uint64_t admm_allreduce_bytes = 0;
  std::uint64_t admm_consensus_rounds = 0;
  std::uint64_t admm_lazy_iterations = 0;
  // Resolved once: the cache entry's shape must match on every rank.
  uoi::solvers::ScreenOptions screen_opts = options.screen;
  screen_opts.mode = uoi::solvers::resolve_screen_mode(options.screen.mode);
  const bool screening_on =
      screen_opts.mode != uoi::solvers::ScreenMode::kOff;
  uoi::solvers::ScreenStats screen_stats;

  support::Stopwatch phase_watch;
  const auto comm_seconds = [&] {
    return comm.stats().collective_seconds() +
           task_comm.stats().collective_seconds();
  };
  const double comm_before = comm_seconds();

  // ---- selection ----
  Matrix counts(n_cells, p, 0.0);
  sched::PassStats selection_stats;
  {
    // Per-bootstrap gather + factorization cache: every cell of the same
    // bootstrap reuses them — adjacent cells as before, but now also
    // revisits after interleaved work-stolen cells of other bootstraps,
    // which the old single-slot sentinel threw away.
    uoi::solvers::BootstrapCache cache(cache_budget);
    const auto execute = [&](const sched::TaskCell& cell) {
      const std::size_t k = cell.bootstrap;
      const std::uint64_t hits_before = cache.stats().hits;
      const auto entry = cache.get_or_build<EnetSelectionEntry>(
          uoi::solvers::kSelectionPass, k, [&] {
            auto fresh = std::make_shared<EnetSelectionEntry>();
            support::Stopwatch distr_watch;
            const auto idx = selection_bootstrap_indices(resampling, n, k);
            gather_local_block(
                x, y, idx,
                block_slice(idx.size(), task.c_ranks, task.task_rank),
                fresh->x_local, fresh->y_local);
            out.breakdown.distribution_seconds += distr_watch.seconds();
            {
              support::TraceScope gram_span("selection-gram",
                                            support::TraceCategory::kGram,
                                            trace_rank);
              support::Stopwatch gram_watch;
              fresh->screen_inputs = uoi::solvers::build_screen_inputs(
                  task_comm, fresh->x_local, fresh->y_local);
              if (!screening_on) {
                // Cached full solvers must match the chain's refined
                // stopping rules.
                fresh->solver.emplace(
                    task_comm, fresh->x_local, fresh->y_local,
                    uoi::solvers::detail::refined_admm_options(
                        options.admm, screen_opts));
              }
              out.breakdown.gram_seconds += gram_watch.seconds();
            }
            fresh->bytes_estimate =
                (n * (p + 1) + (screening_on ? 0 : p * p) + 2 * p + 1) *
                sizeof(double);
            return fresh;
          });
      if (entry->solver.has_value()) {
        if (cache.stats().hits > hits_before) {
          setup_flops_amortized += entry->solver->setup_flops();
        } else {
          setup_flops_charged += entry->solver->setup_flops();
        }
      }
      // One screened chain per scheduled cell: lambda1 descends within a
      // ratio block and jumps up at ratio boundaries, which resets the
      // chain's screening state (screening.hpp handles the reset).
      uoi::solvers::DistributedScreenedLassoChain screened(
          task_comm, entry->x_local, entry->y_local, entry->screen_inputs,
          options.admm, screen_opts,
          entry->solver.has_value() ? &*entry->solver : nullptr);
      for (std::size_t c : selection_grid.chain_lambdas(cell.chain)) {
        const double lambda = model.lambdas[c % q];
        const double ratio = model.l1_ratios[c / q];
        const auto fit =
            screened.solve(lambda * ratio, lambda * (1.0 - ratio));
        admm_iterations += fit.iterations;
        admm_rho_updates += fit.rho_updates;
        admm_allreduce_calls += fit.allreduce_calls;
        admm_allreduce_bytes += fit.allreduce_bytes;
        admm_consensus_rounds += fit.consensus_rounds;
        admm_lazy_iterations += fit.lazy_iterations;
        if (task.task_rank == 0) {
          auto row = counts.row(c);
          for (std::size_t i = 0; i < p; ++i) {
            if (std::abs(fit.beta[i]) > options.support_tolerance) {
              row[i] += 1.0;
            }
          }
        }
      }
      screen_stats += screened.stats();
    };
    std::vector<std::size_t> cells(selection_grid.n_cells());
    for (std::size_t i = 0; i < cells.size(); ++i) cells[i] = i;
    const auto placement = sched::plan_placement(
        policy, selection_grid, cells, selection_costs, group_info, widths);
    selection_stats =
        sched::run_pass(comm, task_comm, group_info, policy, selection_grid,
                        placement, selection_costs, retry, execute);
    sched::export_pass_metrics(trace_rank, group_info, policy,
                               selection_stats);
    cache_hits += cache.stats().hits;
    cache_misses += cache.stats().misses;
    cache_evictions += cache.stats().evictions;
  }
  comm.allreduce(std::span<double>(counts.data(), counts.size()),
                 ReduceOp::kSum);
  const double threshold = std::max(
      1.0, std::ceil(options.intersection_fraction *
                         static_cast<double>(options.n_selection_bootstraps) -
                     1e-12));
  model.candidate_supports.reserve(n_cells);
  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    std::vector<std::size_t> selected;
    const auto row = counts.row(cell);
    for (std::size_t i = 0; i < p; ++i) {
      if (row[i] >= threshold) selected.push_back(i);
    }
    model.candidate_supports.emplace_back(std::move(selected));
  }

  // ---- estimation (distributed OLS, as in the LASSO driver) ----
  Matrix losses(b2, n_cells, std::numeric_limits<double>::infinity());
  std::vector<Vector> computed(b2 * n_cells);
  {
    // Refine placement from the measured selection pass (replicated so
    // every rank plans the same queues).
    if (policy != sched::SchedulePolicy::kStatic &&
        selection_stats.cell_seconds.size() == selection_grid.n_cells()) {
      comm.allreduce(std::span<double>(selection_stats.cell_seconds.data(),
                                       selection_stats.cell_seconds.size()),
                     ReduceOp::kMax);
      const auto calibration = sched::calibrate(
          selection_grid, selection_costs, selection_stats.cell_seconds);
      sched::apply_calibration(estimation_grid, calibration,
                               estimation_costs);
      // Estimation solves OLS restricted to each cell's candidate
      // support; reweight per-chain costs by the survivor counts of the
      // screened selection pass (supports are replicated on every rank).
      std::vector<double> survivors(n_cells, 0.0);
      for (std::size_t cell = 0; cell < n_cells; ++cell) {
        survivors[cell] = static_cast<double>(
            model.candidate_supports[cell].indices().size());
      }
      sched::apply_survivor_weights(estimation_grid, survivors,
                                    estimation_costs);
      if (task.task_rank == 0) {
        support::MetricsRegistry::instance().set(
            trace_rank, "sched.placement_error",
            calibration.mean_abs_rel_error);
      }
    }

    uoi::solvers::BootstrapCache cache(cache_budget);
    const auto execute = [&](const sched::TaskCell& cell) {
      const std::size_t k = cell.bootstrap;
      const auto entry = cache.get_or_build<EnetEstimationEntry>(
          uoi::solvers::kEstimationPass, k, [&] {
            auto fresh = std::make_shared<EnetEstimationEntry>();
            support::Stopwatch distr_watch;
            const auto split = estimation_split(resampling, n, k);
            gather_local_block(
                x, y, split.train,
                block_slice(split.train.size(), task.c_ranks, task.task_rank),
                fresh->x_train, fresh->y_train);
            gather_local_block(
                x, y, split.eval,
                block_slice(split.eval.size(), task.c_ranks, task.task_rank),
                fresh->x_eval, fresh->y_eval);
            out.breakdown.distribution_seconds += distr_watch.seconds();
            fresh->bytes_estimate =
                (split.train.size() + split.eval.size()) * (p + 1) *
                sizeof(double);
            return fresh;
          });
      const Matrix& x_train = entry->x_train;
      const Matrix& x_eval = entry->x_eval;
      const Vector& y_train = entry->y_train;
      const Vector& y_eval = entry->y_eval;
      for (std::size_t c : estimation_grid.chain_lambdas(cell.chain)) {
        const auto& support = model.candidate_supports[c].indices();
        Vector beta(p, 0.0);
        if (!support.empty()) {
          const Matrix x_train_s = x_train.gather_cols(support);
          const auto fit = uoi::solvers::distributed_lasso_admm(
              task_comm, x_train_s, y_train, /*lambda=*/0.0, options.admm);
          admm_iterations += fit.iterations;
          admm_rho_updates += fit.rho_updates;
          admm_allreduce_calls += fit.allreduce_calls;
          admm_allreduce_bytes += fit.allreduce_bytes;
          admm_consensus_rounds += fit.consensus_rounds;
          admm_lazy_iterations += fit.lazy_iterations;
          for (std::size_t i = 0; i < support.size(); ++i) {
            beta[support[i]] = fit.beta[i];
          }
        }
        // Distributed MSE over the group, then the chosen criterion.
        double acc[2] = {0.0, static_cast<double>(x_eval.rows())};
        for (std::size_t r = 0; r < x_eval.rows(); ++r) {
          double pred = 0.0;
          const auto row = x_eval.row(r);
          for (std::size_t i = 0; i < p; ++i) pred += row[i] * beta[i];
          const double err = pred - y_eval[r];
          acc[0] += err * err;
        }
        task_comm.allreduce(std::span<double>(acc, 2), ReduceOp::kSum);
        const double mse = acc[1] > 0.0 ? acc[0] / acc[1] : 0.0;
        losses(k, c) = estimation_score(options.criterion, mse, acc[1],
                                        support.size());
        computed[k * n_cells + c] = std::move(beta);
      }
    };
    std::vector<std::size_t> cells(estimation_grid.n_cells());
    for (std::size_t i = 0; i < cells.size(); ++i) cells[i] = i;
    const auto placement = sched::plan_placement(
        policy, estimation_grid, cells, estimation_costs, group_info, widths);
    const auto pass =
        sched::run_pass(comm, task_comm, group_info, policy, estimation_grid,
                        placement, estimation_costs, retry, execute);
    sched::export_pass_metrics(trace_rank, group_info, policy, pass);
    cache_hits += cache.stats().hits;
    cache_misses += cache.stats().misses;
    cache_evictions += cache.stats().evictions;
  }
  comm.allreduce(std::span<double>(losses.data(), losses.size()),
                 ReduceOp::kMin);

  model.chosen_support_per_bootstrap.assign(b2, 0);
  model.best_loss_per_bootstrap.assign(b2, 0.0);
  Matrix winners(b2, p, 0.0);
  for (std::size_t k = 0; k < b2; ++k) {
    std::size_t best = 0;
    double best_loss = losses(k, 0);
    for (std::size_t cell = 1; cell < n_cells; ++cell) {
      if (losses(k, cell) < best_loss) {
        best_loss = losses(k, cell);
        best = cell;
      }
    }
    model.chosen_support_per_bootstrap[k] = best;
    model.best_loss_per_bootstrap[k] = best_loss;
    if (!computed[k * n_cells + best].empty() && task.task_rank == 0) {
      const auto& beta = computed[k * n_cells + best];
      std::copy(beta.begin(), beta.end(), winners.row(k).begin());
    }
  }
  comm.allreduce(std::span<double>(winners.data(), winners.size()),
                 ReduceOp::kSum);

  std::vector<Vector> winner_rows;
  winner_rows.reserve(b2);
  for (std::size_t k = 0; k < b2; ++k) {
    const auto row = winners.row(k);
    winner_rows.emplace_back(row.begin(), row.end());
  }
  model.beta = aggregate_estimates(winner_rows, options.aggregation);
  model.support =
      SupportSet::from_beta(model.beta, options.support_tolerance);

  out.breakdown.communication_seconds = comm_seconds() - comm_before;
  out.breakdown.computation_seconds = std::max(
      0.0, phase_watch.seconds() - out.breakdown.communication_seconds -
               out.breakdown.distribution_seconds -
               out.breakdown.gram_seconds);
  comm.mutable_stats() += task_comm.stats();

  auto& metrics = support::MetricsRegistry::instance();
  metrics.add(trace_rank, "admm.iterations",
              static_cast<double>(admm_iterations));
  metrics.add(trace_rank, "admm.rho_updates",
              static_cast<double>(admm_rho_updates));
  metrics.add(trace_rank, "admm.allreduce_calls",
              static_cast<double>(admm_allreduce_calls));
  metrics.add(trace_rank, "admm.allreduce_bytes",
              static_cast<double>(admm_allreduce_bytes));
  metrics.add(trace_rank, "admm.consensus_rounds",
              static_cast<double>(admm_consensus_rounds));
  metrics.add(trace_rank, "admm.lazy_iterations",
              static_cast<double>(admm_lazy_iterations));
  metrics.add(trace_rank, "admm.consensus_interval",
              static_cast<double>(uoi::solvers::resolve_consensus_interval(
                  options.admm.consensus_interval)));
  metrics.set(trace_rank, "screen.mode",
              static_cast<double>(static_cast<int>(screen_opts.mode)));
  metrics.add(trace_rank, "screen.lambdas",
              static_cast<double>(screen_stats.lambdas));
  metrics.add(trace_rank, "screen.survivors",
              static_cast<double>(screen_stats.survivors));
  metrics.add(trace_rank, "screen.kkt_violations",
              static_cast<double>(screen_stats.kkt_violations));
  metrics.add(trace_rank, "screen.kkt_rounds",
              static_cast<double>(screen_stats.kkt_rounds));
  metrics.add(trace_rank, "screen.gram_cols_saved",
              static_cast<double>(screen_stats.gram_cols_saved));
  metrics.add(trace_rank, "screen.canonical_solves",
              static_cast<double>(screen_stats.canonical_solves));
  metrics.add(trace_rank, "screen.total_columns",
              static_cast<double>(screen_stats.total_columns));
  metrics.add(trace_rank, "solver_cache.hits",
              static_cast<double>(cache_hits));
  metrics.add(trace_rank, "solver_cache.misses",
              static_cast<double>(cache_misses));
  metrics.add(trace_rank, "solver_cache.evictions",
              static_cast<double>(cache_evictions));
  metrics.add(trace_rank, "solver.setup_flops_charged",
              static_cast<double>(setup_flops_charged));
  metrics.add(trace_rank, "solver.setup_flops_amortized",
              static_cast<double>(setup_flops_amortized));
  return out;
}

}  // namespace uoi::core
