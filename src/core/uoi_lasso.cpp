#include "core/uoi_lasso.hpp"

#include "core/checkpoint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/blas.hpp"
#include "solvers/lambda_grid.hpp"
#include "solvers/ols.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace uoi::core {

using uoi::linalg::ConstMatrixView;
using uoi::linalg::Matrix;
using uoi::linalg::Vector;

namespace {

// Distinct stream tags for the two resampling stages, mixed into the RNG
// task coordinates so selection and estimation draws never collide.
constexpr std::uint64_t kSelectionStream = 0x5e1ec7;
constexpr std::uint64_t kEstimationStream = 0xe571a7e;

Vector gather(std::span<const double> y, std::span<const std::size_t> idx) {
  Vector out(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) out[i] = y[idx[i]];
  return out;
}

}  // namespace

std::vector<std::size_t> selection_bootstrap_indices(
    const UoiLassoOptions& options, std::size_t n, std::size_t k) {
  auto rng =
      uoi::support::Xoshiro256::for_task(options.seed, kSelectionStream, k);
  const auto draw = static_cast<std::size_t>(std::max(
      1.0, std::floor(options.selection_fraction * static_cast<double>(n))));
  return uoi::support::bootstrap_indices(rng, n, draw);
}

EstimationSplit estimation_split(const UoiLassoOptions& options,
                                 std::size_t n, std::size_t k) {
  auto rng =
      uoi::support::Xoshiro256::for_task(options.seed, kEstimationStream, k);
  const auto split = uoi::support::train_test_split(
      rng, n, 1.0 - options.estimation_train_fraction);
  return {split.train, split.test};
}

std::vector<double> resolve_lambda_grid(const UoiLassoOptions& options,
                                        ConstMatrixView x,
                                        std::span<const double> y) {
  if (!options.lambdas.empty()) {
    auto grid = options.lambdas;
    std::sort(grid.rbegin(), grid.rend());  // descending for warm starts
    return grid;
  }
  return uoi::solvers::lambda_grid_for(x, y, options.n_lambdas,
                                       options.lambda_min_ratio);
}

double estimation_score(EstimationCriterion criterion, double mse,
                        double n_eval, std::size_t support_size) {
  if (criterion == EstimationCriterion::kMse) return mse;
  // Guard the log: a perfect fit on the evaluation split.
  const double log_mse = std::log(std::max(mse, 1e-300));
  const double k = static_cast<double>(support_size);
  if (criterion == EstimationCriterion::kAic) {
    return n_eval * log_mse + 2.0 * k;
  }
  return n_eval * log_mse + k * std::log(std::max(n_eval, 2.0));
}

std::size_t intersection_count_threshold(const UoiLassoOptions& options) {
  const double b1 = static_cast<double>(options.n_selection_bootstraps);
  const auto needed = static_cast<std::size_t>(
      std::ceil(options.intersection_fraction * b1 - 1e-12));
  return std::max<std::size_t>(1, needed);
}

Vector aggregate_estimates(const std::vector<Vector>& winners,
                           EstimationAggregation aggregation) {
  UOI_CHECK(!winners.empty(), "no estimates to aggregate");
  const std::size_t p = winners.front().size();
  Vector out(p, 0.0);
  if (aggregation == EstimationAggregation::kMean) {
    for (const auto& w : winners) {
      for (std::size_t i = 0; i < p; ++i) out[i] += w[i];
    }
    const double inv = 1.0 / static_cast<double>(winners.size());
    for (auto& v : out) v *= inv;
    return out;
  }
  // Elementwise median.
  Vector column(winners.size());
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t k = 0; k < winners.size(); ++k) column[k] = winners[k][i];
    const auto mid = column.begin() +
                     static_cast<std::ptrdiff_t>(column.size() / 2);
    std::nth_element(column.begin(), mid, column.end());
    if (column.size() % 2 == 1) {
      out[i] = *mid;
    } else {
      const double hi = *mid;
      const double lo = *std::max_element(column.begin(), mid);
      out[i] = 0.5 * (lo + hi);
    }
  }
  return out;
}

UoiLasso::UoiLasso(UoiLassoOptions options) : options_(std::move(options)) {
  UOI_CHECK(options_.n_selection_bootstraps >= 1, "B1 must be >= 1");
  UOI_CHECK(options_.n_estimation_bootstraps >= 1, "B2 must be >= 1");
  UOI_CHECK(options_.estimation_train_fraction > 0.0 &&
                options_.estimation_train_fraction < 1.0,
            "train fraction must be in (0, 1)");
  UOI_CHECK(options_.selection_fraction > 0.0 &&
                options_.selection_fraction <= 1.0,
            "selection fraction must be in (0, 1]");
  UOI_CHECK(options_.intersection_fraction > 0.0 &&
                options_.intersection_fraction <= 1.0,
            "intersection fraction must be in (0, 1]");
}

UoiLassoResult UoiLasso::fit(ConstMatrixView x_view,
                             std::span<const double> y_view) const {
  return fit_impl(x_view, y_view, nullptr);
}

UoiLassoResult UoiLasso::fit_with_checkpoint(
    ConstMatrixView x_view, std::span<const double> y_view,
    const std::string& checkpoint_path) const {
  return fit_impl(x_view, y_view, &checkpoint_path);
}

std::uint64_t UoiLasso::selection_fingerprint(
    std::size_t n, std::size_t p, std::span<const double> lambdas) const {
  FingerprintBuilder fp;
  fp.add(options_.seed)
      .add(static_cast<std::uint64_t>(options_.n_selection_bootstraps))
      .add(static_cast<std::uint64_t>(n))
      .add(static_cast<std::uint64_t>(p))
      .add(options_.selection_fraction)
      .add(options_.support_tolerance)
      .add(static_cast<std::uint64_t>(options_.fit_intercept ? 1 : 0))
      .add(options_.admm.rho)
      .add(options_.admm.eps_abs)
      .add(options_.admm.eps_rel)
      .add(static_cast<std::uint64_t>(options_.admm.max_iterations))
      .add(static_cast<std::uint64_t>(
          uoi::solvers::resolve_screen_mode(options_.screen.mode)));
  for (const double l : lambdas) fp.add(l);
  return fp.value();
}

UoiLassoResult UoiLasso::fit_impl(ConstMatrixView x_view,
                                  std::span<const double> y_view,
                                  const std::string* checkpoint_path) const {
  UOI_CHECK_DIMS(x_view.rows() == y_view.size(),
                 "UoI_LASSO: X rows != y size");
  const std::size_t n = x_view.rows();
  const std::size_t p = x_view.cols();

  // Optional intercept handling: center X's columns and y; refit the
  // intercept from the means at the end.
  Matrix x_owned = Matrix::from_view(x_view);
  Vector y_owned(y_view.begin(), y_view.end());
  Vector x_means(p, 0.0);
  double y_mean = 0.0;
  if (options_.fit_intercept) {
    for (std::size_t r = 0; r < n; ++r) {
      const auto row = x_owned.row(r);
      for (std::size_t c = 0; c < p; ++c) x_means[c] += row[c];
      y_mean += y_owned[r];
    }
    for (auto& m : x_means) m /= static_cast<double>(n);
    y_mean /= static_cast<double>(n);
    for (std::size_t r = 0; r < n; ++r) {
      auto row = x_owned.row(r);
      for (std::size_t c = 0; c < p; ++c) row[c] -= x_means[c];
      y_owned[r] -= y_mean;
    }
  }
  const ConstMatrixView x = x_owned;
  const std::span<const double> y = y_owned;

  UoiLassoResult result;
  result.lambdas = resolve_lambda_grid(options_, x, y);
  const std::size_t q = result.lambdas.size();

  // ---- Model selection (Algorithm 1, lines 1-11) ----
  // counts(j, i): how many bootstraps selected feature i at lambda_j.
  Matrix counts(q, p, 0.0);
  std::size_t k_begin = 0;
  const std::uint64_t fingerprint =
      selection_fingerprint(n, p, result.lambdas);
  if (checkpoint_path != nullptr) {
    if (auto restored = try_load_checkpoint(*checkpoint_path, fingerprint)) {
      if (restored->lambdas == result.lambdas &&
          restored->counts.rows() == q && restored->counts.cols() == p &&
          restored->completed_bootstraps <=
              options_.n_selection_bootstraps &&
          restored->is_prefix_consistent()) {
        counts = std::move(restored->counts);
        k_begin = restored->completed_bootstraps;
      }
    }
  }
  for (std::size_t k = k_begin; k < options_.n_selection_bootstraps; ++k) {
    const auto idx = selection_bootstrap_indices(options_, n, k);
    const Matrix x_boot = x_owned.gather_rows(idx);
    const Vector y_boot = gather(y, idx);
    // Screened chain: warm starts down the descending lambda path and
    // solves over the surviving columns only (screening.hpp).
    uoi::solvers::ScreenedLassoChain chain(x_boot, y_boot, options_.admm,
                                           options_.screen);
    for (std::size_t j = 0; j < q; ++j) {
      const auto fit = chain.solve(result.lambdas[j]);
      result.total_flops += fit.flops;
      auto row = counts.row(j);
      for (std::size_t i = 0; i < p; ++i) {
        if (std::abs(fit.beta[i]) > options_.support_tolerance) row[i] += 1.0;
      }
    }
    if (checkpoint_path != nullptr) {
      SelectionCheckpoint checkpoint;
      checkpoint.fingerprint = fingerprint;
      checkpoint.completed_bootstraps = k + 1;
      checkpoint.lambdas = result.lambdas;
      checkpoint.counts = counts;
      save_checkpoint(*checkpoint_path, checkpoint);
    }
  }
  const auto threshold =
      static_cast<double>(intersection_count_threshold(options_));
  result.candidate_supports.reserve(q);
  for (std::size_t j = 0; j < q; ++j) {
    std::vector<std::size_t> selected;
    const auto row = counts.row(j);
    for (std::size_t i = 0; i < p; ++i) {
      if (row[i] >= threshold) selected.push_back(i);
    }
    result.candidate_supports.emplace_back(std::move(selected));
  }

  // ---- Model estimation (Algorithm 1, lines 12-24) ----
  const std::size_t b2 = options_.n_estimation_bootstraps;
  result.chosen_support_per_bootstrap.assign(b2, 0);
  result.best_loss_per_bootstrap.assign(
      b2, std::numeric_limits<double>::infinity());
  std::vector<Vector> winners;
  winners.reserve(b2);

  for (std::size_t k = 0; k < b2; ++k) {
    const auto split = estimation_split(options_, n, k);
    const Matrix x_train = x_owned.gather_rows(split.train);
    const Matrix x_eval = x_owned.gather_rows(split.eval);
    const Vector y_train = gather(y, split.train);
    const Vector y_eval = gather(y, split.eval);

    Vector best_beta(p, 0.0);
    for (std::size_t j = 0; j < q; ++j) {
      const auto& support = result.candidate_supports[j].indices();
      const Vector beta =
          options_.ols_via_admm
              ? uoi::solvers::ols_admm_on_support(x_train, y_train, support,
                                                  options_.admm)
              : uoi::solvers::ols_direct_on_support(x_train, y_train, support);
      const double mse =
          uoi::solvers::mean_squared_error(x_eval, y_eval, beta);
      const double loss =
          estimation_score(options_.criterion, mse,
                           static_cast<double>(y_eval.size()), support.size());
      if (loss < result.best_loss_per_bootstrap[k]) {
        result.best_loss_per_bootstrap[k] = loss;
        result.chosen_support_per_bootstrap[k] = j;
        best_beta = beta;
      }
    }
    winners.push_back(std::move(best_beta));
  }

  result.beta = aggregate_estimates(winners, options_.aggregation);
  result.support =
      SupportSet::from_beta(result.beta, options_.support_tolerance);
  if (options_.fit_intercept) {
    result.intercept = y_mean - uoi::linalg::dot(x_means, result.beta);
  }
  return result;
}

}  // namespace uoi::core
