#include "core/uoi_logistic_distributed.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/distributed_common.hpp"
#include "sched/cost_model.hpp"
#include "sched/scheduler.hpp"
#include "sched/task_grid.hpp"
#include "solvers/distributed_logistic.hpp"
#include "solvers/lambda_grid.hpp"
#include "solvers/logistic.hpp"
#include "solvers/solver_cache.hpp"
#include "support/error.hpp"
#include "support/stopwatch.hpp"
#include "support/trace.hpp"

namespace uoi::core {

using uoi::linalg::ConstMatrixView;
using uoi::linalg::Matrix;
using uoi::linalg::Vector;
using uoi::sim::Comm;
using uoi::sim::ReduceOp;

namespace {

using detail::block_slice;
using detail::gather_local_block;


UoiLassoOptions resample_options(const UoiLogisticOptions& options) {
  UoiLassoOptions out;
  out.n_selection_bootstraps = options.n_selection_bootstraps;
  out.n_estimation_bootstraps = options.n_estimation_bootstraps;
  out.estimation_train_fraction = options.estimation_train_fraction;
  out.seed = options.seed;
  return out;
}

// Gather-only cache entries (IRLS has no reusable factorization). As in
// the other drivers, `bytes()` depends only on the global shape so every
// group rank makes the same hit/miss/evict decisions.
struct LogisticSelectionEntry {
  Matrix x_local;
  Vector y_local;
  std::size_t bytes_estimate = 0;
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_estimate; }
};

struct LogisticEstimationEntry {
  Matrix x_train, x_eval_local;
  Vector y_train, y_eval_local;
  std::size_t bytes_estimate = 0;
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_estimate; }
};

}  // namespace

UoiLogisticDistributedResult uoi_logistic_distributed(
    Comm& comm, ConstMatrixView x, std::span<const double> y,
    const UoiLogisticOptions& options, const UoiParallelLayout& layout) {
  UOI_CHECK_DIMS(x.rows() == y.size(), "UoI_Logistic: X rows != y size");
  const int pb = layout.bootstrap_groups;
  const int pl = layout.lambda_groups;
  UOI_CHECK(pb >= 1 && pl >= 1, "layout group counts must be >= 1");
  const int n_groups = pb * pl;
  UOI_CHECK(comm.size() >= n_groups,
            "communicator smaller than P_B * P_lambda task groups");
  const auto task =
      detail::make_task_layout(comm.rank(), comm.size(), pb, pl);
  Comm task_comm = comm.split(task.task_group, comm.rank());
  const sched::GroupInfo group_info{n_groups, task.task_group, task.task_rank,
                                    pb, pl};
  const int trace_rank = comm.global_rank();

  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  const Matrix x_owned = Matrix::from_view(x);
  const UoiLassoOptions resampling = resample_options(options);

  UoiLogisticDistributedResult out;
  UoiLogisticResult& model = out.model;
  const double hi = uoi::solvers::logistic_lambda_max(x, y);
  UOI_CHECK(hi > 0.0, "degenerate labels: lambda_max is zero");
  model.lambdas = uoi::solvers::log_spaced_lambdas(
      hi, options.lambda_min_ratio, options.n_lambdas);
  const std::size_t q = model.lambdas.size();
  const std::size_t b1 = options.n_selection_bootstraps;
  const std::size_t b2 = options.n_estimation_bootstraps;

  // ---- Scheduler state (see the LASSO driver for the full contract) ----
  const sched::SchedulePolicy policy = sched::resolve_policy(options.schedule);
  const std::size_t n_chains =
      std::max<std::size_t>(1, std::min(static_cast<std::size_t>(pl), q));
  const sched::TaskGrid selection_grid(b1, q, n_chains, options.seed);
  const sched::TaskGrid estimation_grid(b2, q, n_chains, options.seed + 1);
  // Live-telemetry progress denominator; one rank owns it so the
  // cross-rank sum counts the grid once.
  if (comm.rank() == 0) {
    support::MetricsRegistry::instance().set(
        trace_rank, "progress.cells_total",
        static_cast<double>(selection_grid.n_cells() +
                            estimation_grid.n_cells()));
  }
  const double pass_seconds_seed = sched::lasso_pass_seconds_estimate(
      n, p, b1, b2, q, /*admm_iterations=*/2000, comm.size());
  const std::vector<double> selection_costs =
      sched::seeded_costs(selection_grid, model.lambdas, pass_seconds_seed);
  std::vector<double> estimation_costs =
      sched::seeded_costs(estimation_grid, model.lambdas, pass_seconds_seed);
  const auto widths = sched::group_widths(comm.size(), n_groups);
  const uoi::sim::RetryOptions retry;
  const std::size_t cache_budget =
      uoi::solvers::resolve_solver_cache_bytes(options.solver_cache_mb);
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t admm_iterations = 0;
  std::uint64_t admm_rho_updates = 0;
  std::uint64_t admm_allreduce_calls = 0;
  std::uint64_t admm_allreduce_bytes = 0;
  std::uint64_t admm_consensus_rounds = 0;
  std::uint64_t admm_lazy_iterations = 0;

  support::Stopwatch phase_watch;
  const auto comm_seconds = [&] {
    return comm.stats().collective_seconds() +
           task_comm.stats().collective_seconds();
  };
  const double comm_before = comm_seconds();

  uoi::solvers::AdmmOptions admm;
  admm.eps_abs = 1e-7;
  admm.eps_rel = 1e-5;
  admm.max_iterations = 2000;
  admm.consensus_interval = options.consensus_interval;

  // ---- selection ----
  Matrix counts(q, p, 0.0);
  sched::PassStats selection_stats;
  {
    uoi::solvers::BootstrapCache cache(cache_budget);
    const auto execute = [&](const sched::TaskCell& cell) {
      const std::size_t k = cell.bootstrap;
      const auto entry = cache.get_or_build<LogisticSelectionEntry>(
          uoi::solvers::kSelectionPass, k, [&] {
            auto fresh = std::make_shared<LogisticSelectionEntry>();
            support::Stopwatch distr_watch;
            const auto idx = selection_bootstrap_indices(resampling, n, k);
            gather_local_block(
                x, y, idx,
                block_slice(idx.size(), task.c_ranks, task.task_rank),
                fresh->x_local, fresh->y_local);
            out.breakdown.distribution_seconds += distr_watch.seconds();
            fresh->bytes_estimate = n * (p + 1) * sizeof(double);
            return fresh;
          });
      for (std::size_t j : selection_grid.chain_lambdas(cell.chain)) {
        const auto fit = uoi::solvers::distributed_logistic_lasso(
            task_comm, entry->x_local, entry->y_local, model.lambdas[j], admm);
        admm_iterations += fit.iterations;
        admm_rho_updates += fit.rho_updates;
        admm_allreduce_calls += fit.allreduce_calls;
        admm_allreduce_bytes += fit.allreduce_bytes;
        admm_consensus_rounds += fit.consensus_rounds;
        admm_lazy_iterations += fit.lazy_iterations;
        if (task.task_rank == 0) {
          auto row = counts.row(j);
          for (std::size_t i = 0; i < p; ++i) {
            if (std::abs(fit.beta[i]) > options.support_tolerance) {
              row[i] += 1.0;
            }
          }
        }
      }
    };
    std::vector<std::size_t> cells(selection_grid.n_cells());
    for (std::size_t i = 0; i < cells.size(); ++i) cells[i] = i;
    const auto placement = sched::plan_placement(
        policy, selection_grid, cells, selection_costs, group_info, widths);
    selection_stats =
        sched::run_pass(comm, task_comm, group_info, policy, selection_grid,
                        placement, selection_costs, retry, execute);
    sched::export_pass_metrics(trace_rank, group_info, policy,
                               selection_stats);
    cache_hits += cache.stats().hits;
    cache_misses += cache.stats().misses;
    cache_evictions += cache.stats().evictions;
  }
  comm.allreduce(std::span<double>(counts.data(), counts.size()),
                 ReduceOp::kSum);
  const double threshold = std::max(
      1.0, std::ceil(options.intersection_fraction *
                         static_cast<double>(options.n_selection_bootstraps) -
                     1e-12));
  model.candidate_supports.reserve(q);
  for (std::size_t j = 0; j < q; ++j) {
    std::vector<std::size_t> selected;
    const auto row = counts.row(j);
    for (std::size_t i = 0; i < p; ++i) {
      if (row[i] >= threshold) selected.push_back(i);
    }
    model.candidate_supports.emplace_back(std::move(selected));
  }

  // ---- estimation ----
  // Each task group scores its (bootstrap, support) pairs with held-out
  // log loss; losses and winners reduce globally as in the LASSO driver.
  Matrix losses(b2, q, std::numeric_limits<double>::infinity());
  std::vector<Vector> computed(b2 * q);       // beta + intercept appended
  {
    if (policy != sched::SchedulePolicy::kStatic &&
        selection_stats.cell_seconds.size() == selection_grid.n_cells()) {
      comm.allreduce(std::span<double>(selection_stats.cell_seconds.data(),
                                       selection_stats.cell_seconds.size()),
                     ReduceOp::kMax);
      const auto calibration = sched::calibrate(
          selection_grid, selection_costs, selection_stats.cell_seconds);
      sched::apply_calibration(estimation_grid, calibration,
                               estimation_costs);
      if (task.task_rank == 0) {
        support::MetricsRegistry::instance().set(
            trace_rank, "sched.placement_error",
            calibration.mean_abs_rel_error);
      }
    }

    uoi::solvers::BootstrapCache cache(cache_budget);
    const auto execute = [&](const sched::TaskCell& cell) {
      const std::size_t k = cell.bootstrap;
      const auto entry = cache.get_or_build<LogisticEstimationEntry>(
          uoi::solvers::kEstimationPass, k, [&] {
            auto fresh = std::make_shared<LogisticEstimationEntry>();
            support::Stopwatch distr_watch;
            const auto split = estimation_split(resampling, n, k);
            // IRLS refits run on the full training split (they are cheap:
            // support columns only); evaluation rows are partitioned for
            // the loss.
            fresh->x_train = x_owned.gather_rows(split.train);
            fresh->y_train = Vector(split.train.size());
            for (std::size_t i = 0; i < split.train.size(); ++i) {
              fresh->y_train[i] = y[split.train[i]];
            }
            gather_local_block(
                x, y, split.eval,
                block_slice(split.eval.size(), task.c_ranks, task.task_rank),
                fresh->x_eval_local, fresh->y_eval_local);
            out.breakdown.distribution_seconds += distr_watch.seconds();
            fresh->bytes_estimate =
                (split.train.size() + split.eval.size()) * (p + 1) *
                sizeof(double);
            return fresh;
          });
      const Matrix& x_train = entry->x_train;
      const Matrix& x_eval_local = entry->x_eval_local;
      const Vector& y_train = entry->y_train;
      const Vector& y_eval_local = entry->y_eval_local;
      for (std::size_t j : estimation_grid.chain_lambdas(cell.chain)) {
        const auto& support = model.candidate_supports[j].indices();
        const auto fit = uoi::solvers::logistic_irls_on_support(
            x_train, y_train, support, options.solver);
        // Distributed held-out log loss: local sums reduced over the group.
        double acc[2] = {0.0, static_cast<double>(x_eval_local.rows())};
        if (x_eval_local.rows() > 0) {
          acc[0] = uoi::solvers::logistic_log_loss(x_eval_local,
                                                   y_eval_local, fit.beta,
                                                   fit.intercept) *
                   static_cast<double>(x_eval_local.rows());
        }
        task_comm.allreduce(std::span<double>(acc, 2), ReduceOp::kSum);
        losses(k, j) = acc[1] > 0.0 ? acc[0] / acc[1] : 0.0;
        Vector packed(p + 1);
        std::copy(fit.beta.begin(), fit.beta.end(), packed.begin());
        packed[p] = fit.intercept;
        computed[k * q + j] = std::move(packed);
      }
    };
    std::vector<std::size_t> cells(estimation_grid.n_cells());
    for (std::size_t i = 0; i < cells.size(); ++i) cells[i] = i;
    const auto placement = sched::plan_placement(
        policy, estimation_grid, cells, estimation_costs, group_info, widths);
    const auto pass =
        sched::run_pass(comm, task_comm, group_info, policy, estimation_grid,
                        placement, estimation_costs, retry, execute);
    sched::export_pass_metrics(trace_rank, group_info, policy, pass);
    cache_hits += cache.stats().hits;
    cache_misses += cache.stats().misses;
    cache_evictions += cache.stats().evictions;
  }
  comm.allreduce(std::span<double>(losses.data(), losses.size()),
                 ReduceOp::kMin);

  model.chosen_support_per_bootstrap.assign(b2, 0);
  model.best_loss_per_bootstrap.assign(b2, 0.0);
  Matrix winners(b2, p + 1, 0.0);
  for (std::size_t k = 0; k < b2; ++k) {
    std::size_t best_j = 0;
    double best_loss = losses(k, 0);
    for (std::size_t j = 1; j < q; ++j) {
      if (losses(k, j) < best_loss) {
        best_loss = losses(k, j);
        best_j = j;
      }
    }
    model.chosen_support_per_bootstrap[k] = best_j;
    model.best_loss_per_bootstrap[k] = best_loss;
    if (!computed[k * q + best_j].empty() && task.task_rank == 0) {
      const auto& packed = computed[k * q + best_j];
      std::copy(packed.begin(), packed.end(), winners.row(k).begin());
    }
  }
  comm.allreduce(std::span<double>(winners.data(), winners.size()),
                 ReduceOp::kSum);

  std::vector<Vector> winner_betas;
  winner_betas.reserve(b2);
  double intercept_sum = 0.0;
  for (std::size_t k = 0; k < b2; ++k) {
    const auto row = winners.row(k);
    winner_betas.emplace_back(row.begin(), row.end() - 1);
    intercept_sum += row[p];
  }
  model.beta = aggregate_estimates(winner_betas, options.aggregation);
  model.intercept = intercept_sum / static_cast<double>(b2);
  model.support =
      SupportSet::from_beta(model.beta, options.support_tolerance);

  out.breakdown.communication_seconds = comm_seconds() - comm_before;
  out.breakdown.computation_seconds = std::max(
      0.0, phase_watch.seconds() - out.breakdown.communication_seconds -
               out.breakdown.distribution_seconds);
  comm.mutable_stats() += task_comm.stats();

  auto& metrics = support::MetricsRegistry::instance();
  metrics.add(trace_rank, "admm.iterations",
              static_cast<double>(admm_iterations));
  metrics.add(trace_rank, "admm.rho_updates",
              static_cast<double>(admm_rho_updates));
  metrics.add(trace_rank, "admm.allreduce_calls",
              static_cast<double>(admm_allreduce_calls));
  metrics.add(trace_rank, "admm.allreduce_bytes",
              static_cast<double>(admm_allreduce_bytes));
  metrics.add(trace_rank, "admm.consensus_rounds",
              static_cast<double>(admm_consensus_rounds));
  metrics.add(trace_rank, "admm.lazy_iterations",
              static_cast<double>(admm_lazy_iterations));
  metrics.add(trace_rank, "admm.consensus_interval",
              static_cast<double>(uoi::solvers::resolve_consensus_interval(
                  options.consensus_interval)));
  metrics.add(trace_rank, "solver_cache.hits",
              static_cast<double>(cache_hits));
  metrics.add(trace_rank, "solver_cache.misses",
              static_cast<double>(cache_misses));
  metrics.add(trace_rank, "solver_cache.evictions",
              static_cast<double>(cache_evictions));
  return out;
}

}  // namespace uoi::core
