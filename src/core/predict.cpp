#include "core/predict.hpp"

#include "linalg/blas.hpp"
#include "solvers/logistic.hpp"
#include "support/error.hpp"

namespace uoi::core {

using uoi::linalg::ConstMatrixView;
using uoi::linalg::Vector;

Vector predict(ConstMatrixView x, std::span<const double> beta,
               double intercept) {
  UOI_CHECK_DIMS(x.cols() == beta.size(), "predict: width mismatch");
  Vector out(x.rows(), intercept);
  uoi::linalg::gemv(1.0, x, beta, /*beta=*/intercept == 0.0 ? 0.0 : 1.0, out);
  return out;
}

Vector predict(const UoiLassoResult& fit, ConstMatrixView x) {
  return predict(x, fit.beta, fit.intercept);
}

Vector predict_proba(const UoiLogisticResult& fit, ConstMatrixView x) {
  Vector out = predict(x, fit.beta, fit.intercept);
  for (auto& v : out) v = uoi::solvers::sigmoid(v);
  return out;
}

Vector predict_labels(const UoiLogisticResult& fit, ConstMatrixView x,
                      double threshold) {
  Vector out = predict_proba(fit, x);
  for (auto& v : out) v = v >= threshold ? 1.0 : 0.0;
  return out;
}

}  // namespace uoi::core
