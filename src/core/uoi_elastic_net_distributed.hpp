#pragma once
// Distributed UoI_ElasticNet — the last member of the UoI family to get a
// distributed twin. Identical structure to uoi_lasso_distributed with the
// 2-D (lambda, l1_ratio) selection grid flattened into the task
// assignment: cell c = r * q + j is handled by the lambda-group
// c % P_lambda.

#include "core/uoi_elastic_net.hpp"
#include "core/uoi_lasso_distributed.hpp"  // UoiParallelLayout, breakdown
#include "simcluster/comm.hpp"

namespace uoi::core {

struct UoiElasticNetDistributedResult {
  UoiElasticNetResult model;
  UoiDistributedBreakdown breakdown;
};

/// Collective over `comm`; data replicated as in the other drivers.
/// Matches the serial UoiElasticNet's candidate supports given the same
/// options (identical resamples; same consensus-vs-serial tolerance
/// caveats as UoI_LASSO).
[[nodiscard]] UoiElasticNetDistributedResult uoi_elastic_net_distributed(
    uoi::sim::Comm& comm, uoi::linalg::ConstMatrixView x,
    std::span<const double> y, const UoiElasticNetOptions& options = {},
    const UoiParallelLayout& layout = {});

}  // namespace uoi::core
