#include "core/support_set.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace uoi::core {

SupportSet::SupportSet(std::vector<std::size_t> indices)
    : indices_(std::move(indices)) {
  std::sort(indices_.begin(), indices_.end());
  indices_.erase(std::unique(indices_.begin(), indices_.end()),
                 indices_.end());
}

SupportSet SupportSet::from_beta(std::span<const double> beta,
                                 double tolerance) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < beta.size(); ++i) {
    if (std::abs(beta[i]) > tolerance) idx.push_back(i);
  }
  SupportSet out;
  out.indices_ = std::move(idx);  // already sorted and unique
  return out;
}

SupportSet SupportSet::full(std::size_t p) {
  SupportSet out;
  out.indices_.resize(p);
  for (std::size_t i = 0; i < p; ++i) out.indices_[i] = i;
  return out;
}

bool SupportSet::contains(std::size_t i) const {
  return std::binary_search(indices_.begin(), indices_.end(), i);
}

SupportSet SupportSet::intersect(const SupportSet& other) const {
  SupportSet out;
  std::set_intersection(indices_.begin(), indices_.end(),
                        other.indices_.begin(), other.indices_.end(),
                        std::back_inserter(out.indices_));
  return out;
}

SupportSet SupportSet::unite(const SupportSet& other) const {
  SupportSet out;
  std::set_union(indices_.begin(), indices_.end(), other.indices_.begin(),
                 other.indices_.end(), std::back_inserter(out.indices_));
  return out;
}

bool SupportSet::is_subset_of(const SupportSet& other) const {
  return std::includes(other.indices_.begin(), other.indices_.end(),
                       indices_.begin(), indices_.end());
}

std::vector<double> SupportSet::indicator(std::size_t p) const {
  std::vector<double> out(p, 0.0);
  for (const std::size_t i : indices_) {
    UOI_CHECK_DIMS(i < p, "support index exceeds feature count");
    out[i] = 1.0;
  }
  return out;
}

SupportSet SupportSet::from_indicator(std::span<const double> indicator,
                                      double threshold) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < indicator.size(); ++i) {
    if (indicator[i] > threshold) idx.push_back(i);
  }
  SupportSet out;
  out.indices_ = std::move(idx);
  return out;
}

std::string SupportSet::to_string() const {
  std::ostringstream oss;
  oss << "{";
  for (std::size_t i = 0; i < indices_.size(); ++i) {
    if (i != 0) oss << ", ";
    oss << indices_[i];
  }
  oss << "}";
  return oss.str();
}

SupportSet intersect_all(std::span<const SupportSet> supports, std::size_t p) {
  SupportSet acc = SupportSet::full(p);
  for (const auto& s : supports) acc = acc.intersect(s);
  return acc;
}

SupportSet unite_all(std::span<const SupportSet> supports) {
  SupportSet acc;
  for (const auto& s : supports) acc = acc.unite(s);
  return acc;
}

std::vector<SupportSet> dedupe_supports(std::vector<SupportSet> supports) {
  std::vector<SupportSet> out;
  for (auto& s : supports) {
    if (std::find(out.begin(), out.end(), s) == out.end()) {
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace uoi::core
