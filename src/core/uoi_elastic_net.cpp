#include "core/uoi_elastic_net.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "solvers/lambda_grid.hpp"
#include "solvers/ols.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace uoi::core {

using uoi::linalg::ConstMatrixView;
using uoi::linalg::Matrix;
using uoi::linalg::Vector;

namespace {

/// The elastic-net resampling reuses the UoI_LASSO streams so that, with
/// matching seeds, l1_ratios = {1.0} reproduces UoI_LASSO's bootstraps.
UoiLassoOptions as_lasso_options(const UoiElasticNetOptions& options) {
  UoiLassoOptions out;
  out.n_selection_bootstraps = options.n_selection_bootstraps;
  out.n_estimation_bootstraps = options.n_estimation_bootstraps;
  out.estimation_train_fraction = options.estimation_train_fraction;
  out.intersection_fraction = options.intersection_fraction;
  out.seed = options.seed;
  return out;
}

Vector gather(std::span<const double> y, std::span<const std::size_t> idx) {
  Vector out(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) out[i] = y[idx[i]];
  return out;
}

}  // namespace

UoiElasticNet::UoiElasticNet(UoiElasticNetOptions options)
    : options_(std::move(options)) {
  UOI_CHECK(options_.n_selection_bootstraps >= 1, "B1 must be >= 1");
  UOI_CHECK(options_.n_estimation_bootstraps >= 1, "B2 must be >= 1");
  UOI_CHECK(!options_.l1_ratios.empty(), "need at least one l1 ratio");
  for (const double r : options_.l1_ratios) {
    UOI_CHECK(r > 0.0 && r <= 1.0, "l1 ratios must be in (0, 1]");
  }
}

UoiElasticNetResult UoiElasticNet::fit(ConstMatrixView x,
                                       std::span<const double> y) const {
  UOI_CHECK_DIMS(x.rows() == y.size(), "UoI_ElasticNet: X rows != y size");
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  const Matrix x_owned = Matrix::from_view(x);
  const UoiLassoOptions lasso_options = as_lasso_options(options_);

  UoiElasticNetResult result;
  result.l1_ratios = options_.l1_ratios;
  result.lambdas = uoi::solvers::lambda_grid_for(
      x, y, options_.n_lambdas, options_.lambda_min_ratio);
  const std::size_t q = result.lambdas.size();
  const std::size_t n_ratios = result.l1_ratios.size();
  const std::size_t n_cells = q * n_ratios;

  // ---- selection over the (l1_ratio, lambda) grid ----
  Matrix counts(n_cells, p, 0.0);
  for (std::size_t k = 0; k < options_.n_selection_bootstraps; ++k) {
    const auto idx = selection_bootstrap_indices(lasso_options, n, k);
    const Matrix x_boot = x_owned.gather_rows(idx);
    const Vector y_boot = gather(y, idx);
    for (std::size_t r = 0; r < n_ratios; ++r) {
      const double ratio = result.l1_ratios[r];
      // One screened chain per (bootstrap, ratio): each ratio traverses
      // its own descending lambda1 path (screening.hpp).
      uoi::solvers::ScreenedLassoChain chain(x_boot, y_boot, options_.admm,
                                             options_.screen);
      for (std::size_t j = 0; j < q; ++j) {
        const double lambda1 = result.lambdas[j] * ratio;
        const double lambda2 = result.lambdas[j] * (1.0 - ratio);
        const auto fit = chain.solve(lambda1, lambda2);
        auto row = counts.row(r * q + j);
        for (std::size_t i = 0; i < p; ++i) {
          if (std::abs(fit.beta[i]) > options_.support_tolerance) {
            row[i] += 1.0;
          }
        }
      }
    }
  }
  const double threshold = std::max(
      1.0, std::ceil(options_.intersection_fraction *
                         static_cast<double>(options_.n_selection_bootstraps) -
                     1e-12));
  result.candidate_supports.reserve(n_cells);
  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    std::vector<std::size_t> selected;
    const auto row = counts.row(cell);
    for (std::size_t i = 0; i < p; ++i) {
      if (row[i] >= threshold) selected.push_back(i);
    }
    result.candidate_supports.emplace_back(std::move(selected));
  }

  // ---- estimation (identical to UoI_LASSO over the larger family) ----
  const std::size_t b2 = options_.n_estimation_bootstraps;
  result.chosen_support_per_bootstrap.assign(b2, 0);
  result.best_loss_per_bootstrap.assign(
      b2, std::numeric_limits<double>::infinity());
  std::vector<Vector> winners;
  winners.reserve(b2);

  for (std::size_t k = 0; k < b2; ++k) {
    const auto split = estimation_split(lasso_options, n, k);
    const Matrix x_train = x_owned.gather_rows(split.train);
    const Matrix x_eval = x_owned.gather_rows(split.eval);
    const Vector y_train = gather(y, split.train);
    const Vector y_eval = gather(y, split.eval);

    Vector best_beta(p, 0.0);
    for (std::size_t cell = 0; cell < n_cells; ++cell) {
      const auto& support = result.candidate_supports[cell].indices();
      const Vector beta =
          uoi::solvers::ols_direct_on_support(x_train, y_train, support);
      const double mse =
          uoi::solvers::mean_squared_error(x_eval, y_eval, beta);
      const double loss =
          estimation_score(options_.criterion, mse,
                           static_cast<double>(y_eval.size()), support.size());
      if (loss < result.best_loss_per_bootstrap[k]) {
        result.best_loss_per_bootstrap[k] = loss;
        result.chosen_support_per_bootstrap[k] = cell;
        best_beta = beta;
      }
    }
    winners.push_back(std::move(best_beta));
  }

  result.beta = aggregate_estimates(winners, options_.aggregation);
  result.support =
      SupportSet::from_beta(result.beta, options_.support_tolerance);
  return result;
}

}  // namespace uoi::core
