#include "report/trace_reader.hpp"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <iterator>
#include <map>
#include <sstream>
#include <tuple>

#include "support/error.hpp"

namespace uoi::report {

using support::TraceCategory;
using support::TraceEvent;

namespace {

/// Minimal recursive-descent JSON parser, specialized to what a trace
/// document needs: it materializes event objects as flat key -> scalar
/// maps and skips everything else (nested containers in unknown keys are
/// consumed structurally). Errors carry the byte offset.
class TraceJsonParser {
 public:
  explicit TraceJsonParser(std::string text) : text_(std::move(text)) {}

  std::vector<TraceEvent> parse() {
    skip_ws();
    std::vector<TraceEvent> events;
    if (peek() == '{') {
      // {"traceEvents": [...], ...}: scan top-level keys.
      expect('{');
      if (skip_ws(); peek() == '}') {
        ++pos_;
        return events;
      }
      for (;;) {
        const std::string key = parse_string();
        skip_ws();
        expect(':');
        skip_ws();
        if (key == "traceEvents") {
          parse_event_array(events);
        } else {
          skip_value();
        }
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          skip_ws();
          continue;
        }
        expect('}');
        break;
      }
    } else {
      parse_event_array(events);
    }
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return events;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw support::IoError("malformed trace JSON at byte " +
                           std::to_string(pos_) + ": " + what);
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape digit");
            }
          }
          // The writer only \u-escapes control characters; decode the
          // Latin-1 range directly and UTF-8-encode the rest.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected number");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number: " + token);
    return value;
  }

  void skip_literal(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("invalid literal");
      ++pos_;
    }
  }

  /// Consumes any JSON value without materializing it.
  void skip_value() {
    skip_ws();
    switch (peek()) {
      case '"':
        (void)parse_string();
        return;
      case '{': {
        ++pos_;
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          return;
        }
        for (;;) {
          (void)parse_string();
          skip_ws();
          expect(':');
          skip_value();
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            skip_ws();
            continue;
          }
          expect('}');
          return;
        }
      }
      case '[': {
        ++pos_;
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          return;
        }
        for (;;) {
          skip_value();
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            skip_ws();
            continue;
          }
          expect(']');
          return;
        }
      }
      case 't':
        skip_literal("true");
        return;
      case 'f':
        skip_literal("false");
        return;
      case 'n':
        skip_literal("null");
        return;
      default:
        (void)parse_number();
        return;
    }
  }

  /// Reads the causal stamp the writer puts in "args" (unknown args keys
  /// are skipped so foreign traces still parse).
  void parse_args(support::TraceStamp& stamp) {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    for (;;) {
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "comm") {
        stamp.comm = static_cast<std::int64_t>(parse_number());
      } else if (key == "seq") {
        stamp.seq = static_cast<std::int64_t>(parse_number());
      } else if (key == "peer") {
        stamp.peer = static_cast<int>(parse_number());
      } else if (key == "tag") {
        stamp.tag = static_cast<int>(parse_number());
      } else if (key == "edge") {
        stamp.edge = static_cast<std::int64_t>(parse_number());
      } else if (key == "flow") {
        stamp.flow = static_cast<int>(parse_number());
      } else {
        skip_value();
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        skip_ws();
        continue;
      }
      expect('}');
      return;
    }
  }

  void parse_event_array(std::vector<TraceEvent>& events) {
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    for (;;) {
      parse_event(events);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        skip_ws();
        continue;
      }
      expect(']');
      return;
    }
  }

  void parse_event(std::vector<TraceEvent>& events) {
    expect('{');
    TraceEvent event;
    std::string phase = "X";
    bool has_category = false;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;  // empty object: tolerated (some writers emit a trailing {})
    }
    for (;;) {
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "name") {
        event.name = parse_string();
      } else if (key == "cat") {
        has_category =
            support::trace_category_from_string(parse_string(), event.category);
      } else if (key == "ph") {
        phase = parse_string();
      } else if (key == "pid") {
        event.rank = static_cast<int>(parse_number());
      } else if (key == "tid") {
        event.tid = static_cast<int>(parse_number());
      } else if (key == "ts") {
        event.start_seconds = parse_number() * 1e-6;
      } else if (key == "dur") {
        event.duration_seconds = parse_number() * 1e-6;
      } else if (key == "args") {
        parse_args(event.stamp);
      } else {
        skip_value();
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        skip_ws();
        continue;
      }
      expect('}');
      break;
    }
    if (!has_category) event.category = TraceCategory::kComputation;
    if (phase == "X" || phase == "i" || phase == "I") {
      if (phase != "X") event.duration_seconds = 0.0;
      events.push_back(std::move(event));
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<TraceEvent> read_chrome_trace(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return TraceJsonParser(buffer.str()).parse();
}

std::vector<TraceEvent> read_chrome_trace_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw support::IoError("cannot open trace file for reading: " + path);
  }
  return read_chrome_trace(file);
}

namespace {

/// Key identifying one collective occurrence across ranks (and files).
using CollectiveKey = std::tuple<std::int64_t, std::int64_t, std::string>;

/// Latest exit time per collective key within one file.
std::map<CollectiveKey, double> collective_exits(
    const std::vector<TraceEvent>& events) {
  std::map<CollectiveKey, double> exits;
  for (const auto& e : events) {
    if (!e.stamp.stamped() || e.stamp.edge < 0 || e.stamp.flow != 0 ||
        e.stamp.peer >= 0) {
      continue;
    }
    const CollectiveKey key{e.stamp.comm, e.stamp.edge, e.name};
    const double end = e.start_seconds + e.duration_seconds;
    auto [it, inserted] = exits.emplace(key, end);
    if (!inserted && end > it->second) it->second = end;
  }
  return exits;
}

double min_start(const std::vector<TraceEvent>& events) {
  double t = 0.0;
  bool first = true;
  for (const auto& e : events) {
    if (first || e.start_seconds < t) t = e.start_seconds;
    first = false;
  }
  return t;
}

}  // namespace

std::vector<TraceEvent> read_and_merge_trace_files(
    const std::vector<std::string>& paths) {
  std::vector<std::vector<TraceEvent>> files;
  files.reserve(paths.size());
  for (const auto& path : paths) {
    files.push_back(read_chrome_trace_file(path));
  }
  if (files.size() > 1) {
    // Shared collective keys across every file, and the reference exits of
    // the first file.
    std::vector<std::map<CollectiveKey, double>> exits;
    exits.reserve(files.size());
    for (const auto& f : files) exits.push_back(collective_exits(f));
    const CollectiveKey* anchor = nullptr;
    double anchor_exit = 0.0;
    for (const auto& [key, exit] : exits.front()) {
      bool shared = true;
      for (std::size_t f = 1; f < exits.size() && shared; ++f) {
        shared = exits[f].count(key) > 0;
      }
      // Anchor on the earliest shared collective: later ones accumulate
      // more per-file clock drift.
      if (shared && (anchor == nullptr || exit < anchor_exit)) {
        anchor = &key;
        anchor_exit = exit;
      }
    }
    for (std::size_t f = 1; f < files.size(); ++f) {
      const double offset =
          anchor != nullptr
              ? anchor_exit - exits[f].at(*anchor)
              : min_start(files.front()) - min_start(files[f]);
      if (offset != 0.0) {
        for (auto& e : files[f]) e.start_seconds += offset;
      }
    }
  }
  std::vector<TraceEvent> merged;
  for (auto& f : files) {
    merged.insert(merged.end(), std::make_move_iterator(f.begin()),
                  std::make_move_iterator(f.end()));
  }
  return merged;
}

}  // namespace uoi::report
