#pragma once
// Run-report analytics: turns raw observability signal (Tracer totals +
// histograms + optional span events, MetricsRegistry counters) into the
// decisions the paper's scaling analysis is built on:
//
//   - per-rank load imbalance of compute time (max/mean, coefficient of
//     variation) across the bootstrap x lambda task groups;
//   - Allreduce wait-time skew across ranks (the follow-up optimization
//     work, arXiv:1808.06992, traces most scaling loss to exactly this);
//   - straggler-rank identification;
//   - a critical-path lower bound over the span DAG: no schedule can beat
//     max_r(work_r) + sum_k min_r(k-th collective span on r), so
//     wall / critical_path measures the slack recoverable by balancing;
//   - span-latency percentiles per category (from the tracer's streaming
//     histograms — no event capture required).
//
// The report serializes to run_report.json (--report-json on every CLI
// command, or `uoi analyze TRACE.json` for a post-hoc trace file) and to a
// support/table text summary. Bench binaries embed the same structure in
// their BENCH_<figure>.json telemetry.

#include <array>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "report/event_dag.hpp"
#include "support/histogram.hpp"
#include "support/trace.hpp"

namespace uoi::report {

/// Everything a report is computed from. Decoupled from the Tracer /
/// MetricsRegistry singletons so tests and the trace-file analyzer can
/// feed synthetic inputs.
struct ReportInputs {
  double wall_seconds = 0.0;  ///< phase wall time (max rank timeline)
  std::map<int, support::TraceTotals> totals;          ///< per rank
  std::map<int, support::CategoryHistograms> histograms;  ///< per rank
  std::vector<support::TraceEvent> events;  ///< optional (capture on)
  std::vector<support::MetricsRegistry::Entry> metrics;  ///< optional
};

/// Snapshots the live Tracer + MetricsRegistry. `wall_seconds` is the
/// caller-measured phase wall time (e.g. around the CLI command).
[[nodiscard]] ReportInputs collect_inputs(double wall_seconds);

/// Derives totals, histograms, and the wall time from a span-event list
/// (the `uoi analyze TRACE.json` path).
[[nodiscard]] ReportInputs inputs_from_events(
    std::vector<support::TraceEvent> events);

/// Per-rank traced bucket seconds.
struct RankBuckets {
  int rank = 0;
  double computation = 0.0;
  double communication = 0.0;
  double distribution = 0.0;
  double data_io = 0.0;
  double fault = 0.0;
  double recovery = 0.0;
  double gram = 0.0;  ///< Gram + Cholesky setup (solver-cache misses)
};

/// Latency summary of one span category, merged across ranks.
struct CategoryLatency {
  support::TraceCategory category = support::TraceCategory::kComputation;
  std::uint64_t count = 0;
  double mean_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  double max_seconds = 0.0;
};

/// Scheduler counters aggregated from the sched.* metrics the task
/// scheduler exports on agent ranks. `present` is false (and the JSON
/// section says so) when the run had no scheduled pass — e.g. a v1-era
/// trace replayed through `uoi analyze`.
struct SchedulerSummary {
  bool present = false;
  std::string policy;                ///< "static" / "cost_lpt" / "work_steal"
  int agent_ranks = 0;               ///< agent ranks reporting counters
  double tasks_executed = 0.0;       ///< sum over agents
  double steals_attempted = 0.0;     ///< sum over agents
  double steals_succeeded = 0.0;     ///< sum over agents
  double queue_depth_max = 0.0;      ///< max over agents
  double tasks_max_over_mean = 0.0;  ///< placement imbalance across agents
  double placement_error = 0.0;      ///< calibration mean |rel error| (max)
};

/// Screening counters aggregated from the screen.* metrics the lasso /
/// elastic-net / VAR drivers export per selection pass: how many columns
/// the SAFE / strong rules admitted to the working sets, how many KKT
/// violators had to be re-admitted, and how many Gram columns the gather
/// path avoided. `present` is false (and the JSON section says so) when
/// the run recorded no screened chain — e.g. a replayed v1-era trace.
struct ScreeningSummary {
  bool present = false;
  std::string mode;                 ///< "off" / "safe" / "strong"
  double lambdas = 0.0;             ///< sum: chain steps across ranks
  double survivors = 0.0;           ///< sum: working-set columns admitted
  double kkt_violations = 0.0;      ///< sum: violators re-admitted
  double kkt_rounds = 0.0;          ///< sum: KKT re-check rounds run
  double gram_cols_saved = 0.0;     ///< sum: columns never gathered
  double canonical_solves = 0.0;    ///< sum: restricted polish solves
  double total_columns = 0.0;       ///< sum: p x chain steps (denominator)
  /// survivors / total_columns when the denominator is positive; the
  /// headline "how aggressive was screening" number (1.0 == no pruning).
  double survivor_fraction = 1.0;
};

/// Fault/recovery health aggregated from the recovery.* metrics the
/// cluster exports per rank: transient-fault retries, hang detections by
/// the progress watchdog, CRC payload rejections, shrink-and-resume
/// activity, and quorum-degraded completion. `present` is false (and the
/// JSON section says so) when the run recorded no recovery activity — the
/// common fault-free case.
struct HealthSummary {
  bool present = false;
  double transient_faults = 0.0;       ///< sum over ranks
  double retries = 0.0;                ///< sum over ranks
  double giveups = 0.0;                ///< sum over ranks
  double rank_failures_detected = 0.0; ///< sum over ranks
  double shrinks = 0.0;                ///< max over ranks (replicated count)
  double cells_recovered = 0.0;        ///< max over ranks (replicated count)
  double hangs_detected = 0.0;         ///< sum: watchdog-confirmed hangs
  double suspects_cleared = 0.0;       ///< sum: slow-but-alive exonerations
  double hang_detect_seconds_max = 0.0;  ///< worst time-to-detect
  double crc_detected = 0.0;           ///< sum: one-sided CRC rejections
  double retries_after_jitter = 0.0;   ///< sum: jittered backoff retries
  bool degraded = false;               ///< any rank completed under quorum
  double achieved_quorum = 1.0;        ///< min over ranks reporting
  double cells_lost = 0.0;             ///< max over ranks (replicated)
};

struct RunReport {
  double wall_seconds = 0.0;
  int n_ranks = 0;

  /// Headline buckets: communication / distribution / data-I/O / Gram
  /// setup are the per-rank means of the traced totals; computation is the
  /// wall-time remainder (clamped at zero), so the buckets sum to the
  /// phase wall time by construction — the same convention the distributed
  /// drivers use.
  double computation_seconds = 0.0;
  double communication_seconds = 0.0;
  double distribution_seconds = 0.0;
  double data_io_seconds = 0.0;
  double gram_seconds = 0.0;
  [[nodiscard]] double buckets_sum() const {
    return computation_seconds + communication_seconds +
           distribution_seconds + data_io_seconds + gram_seconds;
  }

  std::vector<RankBuckets> per_rank;

  // ---- Load imbalance (traced compute seconds across ranks) ----
  double compute_max_over_mean = 0.0;  ///< 1.0 == perfectly balanced
  double compute_cv = 0.0;             ///< coefficient of variation
  int straggler_rank = -1;             ///< argmax compute (-1: < 2 ranks)
  double straggler_excess_seconds = 0.0;  ///< max - mean compute
  bool straggler_flagged = false;  ///< max/mean > 1.25 and excess > 1 ms

  // ---- Allreduce / communication wait skew across ranks ----
  double allreduce_skew_seconds = 0.0;   ///< max - min across ranks
  double allreduce_max_over_mean = 0.0;  ///< 1.0 == no skew

  // ---- Critical-path lower bound ----
  double critical_path_seconds = 0.0;
  double critical_path_fraction = 0.0;  ///< of wall; low == slack/imbalance
  std::size_t sync_points = 0;  ///< aligned collective spans used
  std::string critical_path_method;  ///< "events" or "totals"

  /// Exact longest path over the cross-rank event DAG (event_dag.hpp).
  /// Valid when the captured events carry causal stamps; the JSON adds it
  /// under critical_path.exact without touching the lower-bound keys.
  ExactCriticalPath exact_path;

  std::vector<CategoryLatency> latency;  ///< categories with any spans

  SchedulerSummary scheduler;

  ScreeningSummary screening;

  HealthSummary health;

  std::vector<support::MetricsRegistry::Entry> metrics;

  /// {"schema":"uoi-run-report-v2", ...}. v2 adds the "scheduler",
  /// "screening", and "health" sections; every v1 key is preserved
  /// unchanged, so v1 consumers keep working by ignoring the new
  /// sections.
  [[nodiscard]] std::string to_json() const;
  /// Human summary: per-rank bucket table, imbalance and critical-path
  /// lines, latency-percentile table.
  [[nodiscard]] std::string to_text() const;
};

/// Computes the full report from `inputs`.
[[nodiscard]] RunReport build_run_report(const ReportInputs& inputs);

/// Writes report.to_json() to `path`; throws uoi::support::IoError on
/// failure.
void write_run_report(const RunReport& report, const std::string& path);

}  // namespace uoi::report
